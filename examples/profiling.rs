//! Profiling quickstart: turn on the cycle-driven sampling profiler,
//! run a two-tenant traffic mix, and read the session's metrics surface —
//! latency histograms with tail quantiles, per-kernel hot-PC profiles
//! with warp-state breakdowns, the per-tenant SLO table, and the same
//! numbers re-rendered as a Prometheus exposition and a JSON snapshot.
//!
//! Sampling is driven by *simulated* cycles (here every 64), so the
//! profile below is bit-identical at any `LMI_SIM_THREADS` setting.
//!
//! Run with: `cargo run --example profiling`

use lmi::runtime::Session;
use lmi::sim::GpuConfig;
use lmi::telemetry::{parse_prometheus, Scope, WARP_STATE_NAMES};
use lmi::workloads::{prepare_in, runtime_mixes};

fn main() {
    // `with_sample_period(64)` is the only knob: 0 (the default) keeps
    // the profiler off and the simulation byte-for-byte unchanged.
    let mix = runtime_mixes().into_iter().find(|m| m.name == "dual-tenant").unwrap();
    let mut rt = Session::new(GpuConfig::small().with_sample_period(64));

    let tenants: Vec<usize> = mix.tenants.iter().map(|&p| rt.add_tenant(p)).collect();

    // Snapshots are cheap owned values, so the idiomatic pattern is
    // before/after + diff: the delta is exactly this workload's activity.
    let before = rt.metrics_snapshot();

    for (i, traffic) in mix.streams.iter().enumerate() {
        let spec = mix.spec_of(i);
        let tenant = tenants[traffic.tenant];
        let prepared = prepare_in(&spec, &mut rt.tenant_mut(tenant).allocator);
        let stream = rt.create_stream(tenant).unwrap();
        let buf = prepared.launch.params[0];
        let words: Vec<u64> = (0..traffic.h2d_words as u64).collect();
        rt.memcpy_h2d(stream, buf, &words).unwrap();
        rt.launch(stream, prepared.launch).unwrap();
        rt.memcpy_d2h(stream, buf, traffic.d2h_bytes).unwrap();
    }
    rt.synchronize().unwrap();

    let snap = rt.metrics_snapshot().diff(&before);

    // 1. Latency histograms: queue wait, execution, and copy durations
    //    are recorded per GPU, per stream, and per tenant.
    println!("== session latency ({} cycles total) ==", snap.total_cycles);
    for name in ["kernel_queue_wait", "kernel_exec_cycles", "copy_cycles"] {
        let h = snap.frame.histograms.get(Scope::Gpu, name).unwrap();
        println!(
            "  {name:<18} n={:<3} p50={:<6} p95={:<6} p99={:<6} max={}",
            h.count(),
            h.p50(),
            h.p95(),
            h.p99(),
            h.max()
        );
    }

    // 2. Sampling profiles: every 64 simulated cycles each SM records
    //    which PCs issued and why stalled warps were waiting.
    println!("\n== kernel profiles (sampled every 64 cycles) ==");
    for (kernel, profile) in &snap.frame.profiles {
        let states = profile.states();
        let total: u64 = states.iter().sum::<u64>().max(1);
        let busiest = WARP_STATE_NAMES
            .iter()
            .zip(&states)
            .max_by_key(|(_, &n)| n)
            .map(|(name, &n)| format!("{name} {:.0}%", 100.0 * n as f64 / total as f64))
            .unwrap();
        println!(
            "  {kernel:<10} {:>4} samples, avg occupancy {:>4.1} warps/SM, dominant state {busiest}",
            profile.samples(),
            profile.avg_occupancy()
        );
        for (pc, n) in profile.top_pcs(3) {
            println!("      hot pc {pc:>3}: {n} samples");
        }
    }
    assert!(snap.frame.profiles.values().all(|p| p.samples() > 0));

    // 3. The SLO table: serving-style per-tenant signals.
    println!("\n== tenant SLO ==");
    for t in &snap.tenants {
        println!(
            "  tenant{} kernels={} violations={} (rate {:.2}) exec p99={} queue p99={}",
            t.tenant, t.kernels, t.violations, t.violation_rate, t.exec_p99, t.queue_p99
        );
    }

    // 4. Exports: the same snapshot renders as Prometheus text exposition
    //    (scrapeable) and JSON — and the exposition round-trips through
    //    the crate's own parser with the same values.
    let samples = parse_prometheus(&snap.to_prometheus()).unwrap();
    let cycles = samples.iter().find(|s| s.name == "lmi_session_total_cycles").unwrap();
    assert_eq!(cycles.value, snap.total_cycles as f64);
    println!(
        "\nexports: {} Prometheus samples, {} bytes of JSON — \
         try `profile --quick` for the full report bin",
        samples.len(),
        snap.to_json().to_compact().len()
    );
}
