//! Quickstart: the LMI pointer life cycle, end to end.
//!
//! Run with: `cargo run --example quickstart`

use lmi::core::{DevicePtr, ExtentChecker, Ocu, PtrConfig, Violation};
use lmi::isa::{abi, HintBits, Instruction, MemRef, ProgramBuilder, Reg};
use lmi::mem::layout;
use lmi::sim::{Gpu, GpuConfig, Launch, LmiMechanism};

fn main() {
    let cfg = PtrConfig::default();

    // --- 1. Pointer generation (the allocator's job) --------------------
    // cudaMalloc(1000) rounds to 1024 B, places the buffer 1024-aligned,
    // and embeds extent 3 in the top bits of the returned pointer.
    let ptr = DevicePtr::encode(0x1234_5400, 1000, &cfg).expect("aligned");
    println!("allocated:   {ptr}  (size {:?})", ptr.size(&cfg));

    // --- 2. Pointer update (the OCU's job) -------------------------------
    let ocu = Ocu::new(cfg);
    let (ok, outcome) = ocu.check_marked(ptr.raw(), ptr.raw() + 1016);
    println!("p + 1016  -> {} ({outcome:?})", DevicePtr::from_raw(ok));
    let (bad, outcome) = ocu.check_marked(ptr.raw(), ptr.raw() + 1024);
    println!("p + 1024  -> {} ({outcome:?})", DevicePtr::from_raw(bad));

    // --- 3. Pointer dereference (the EC's job) ---------------------------
    let ec = ExtentChecker::new(cfg);
    assert!(ec.check_access(ok).is_ok());
    match ec.check_access(bad) {
        Err(v) => println!("dereference of poisoned pointer: {v}"),
        Ok(_) => unreachable!("the EC faults poisoned pointers"),
    }

    // --- 4. The same flow on the cycle simulator -------------------------
    // A one-thread kernel walks off a 256-byte buffer and dereferences.
    let buf = DevicePtr::encode(layout::GLOBAL_BASE, 256, &cfg).unwrap();
    let mut b = ProgramBuilder::new("oob_demo");
    b.push(Instruction::ldc(Reg(4), abi::LAUNCH_BANK, abi::param_offset(0), 8));
    b.push(Instruction::iadd64(Reg(4), Reg(4), 256).with_hints(HintBits::check_operand(0)));
    b.push(Instruction::stg(MemRef::new(Reg(4), 0, 4), Reg(0)));
    b.push(Instruction::exit());
    let launch = Launch::new(b.build()).grid(1).block(1).param(buf.raw());

    let mut gpu = Gpu::new(GpuConfig::security());
    let mut mech = LmiMechanism::default_config();
    let stats = gpu.run(&launch, &mut mech);
    let event = stats.violations.first().expect("the OOB store faults");
    assert!(matches!(event.violation, Violation::InvalidPointer { .. }));
    println!("simulator:   warp {} at pc {} -> {}", event.warp, event.pc, event.violation);
    println!("simulated cycles: {}", stats.cycles);
}
