//! The LMI compiler pass in action (paper Fig. 7, Fig. 8, §XII-B):
//! pointer-operand analysis, hint-bit codegen, the Fig. 7 stack prologue,
//! and the correct-by-construction cast rejection.
//!
//! Run with: `cargo run --example compiler_pass`

use lmi::compiler::ir::{FunctionBuilder, IBinOp, Region, Ty};
use lmi::compiler::{analyze, compile, CompileOptions};
use lmi::isa::{ComputeCapability, Microcode};

fn main() {
    // __global__ void saxpy(float* x, float* y) { y[tid] += 2*x[tid]; }
    let mut b = FunctionBuilder::new("saxpy");
    let x = b.param(Ty::Ptr(Region::Global));
    let y = b.param(Ty::Ptr(Region::Global));
    let _stack_buf = b.alloca(96); // the Fig. 7 dummy buffer
    let tid = b.tid();
    let xe = b.gep(x, tid, 4);
    let ye = b.gep(y, tid, 4);
    let xv = b.load_f32(xe);
    let two = b.const_f32(2.0);
    let scaled = b.fmul(xv, two);
    let yv = b.load_f32(ye);
    let sum = b.fadd(yv, scaled);
    b.store(ye, sum, 4);
    b.ret();
    let func = b.build();

    // --- Fig. 8: the pointer-operand analysis ----------------------------
    let analysis = analyze(&func).expect("no forbidden casts");
    println!("analysis: {} instructions marked as pointer arithmetic", analysis.marked_count());

    // --- codegen with hint bits (Fig. 9) ----------------------------------
    let compiled = compile(&func, CompileOptions::default()).expect("compiles");
    println!("\n== generated SASS-like code (note the .A hint suffixes) ==");
    print!("{}", compiled.program);

    println!("\n== microcode of the hinted instructions ==");
    for ins in &compiled.program.instructions {
        if ins.hints.activate {
            let word = Microcode::encode(ins, ComputeCapability::Cc80).unwrap();
            println!("  {ins:<32} -> {word}  (A={} S={})", word.activate_bit(), word.select_bit());
        }
    }

    // --- §XII-B: forbidden casts are compile errors ----------------------
    let mut b = FunctionBuilder::new("evil");
    let i = b.const_i64(0xDEAD_BEEF);
    let _p = b.int_to_ptr(i, Region::Global);
    b.ret();
    let err = compile(&b.build(), CompileOptions::default()).unwrap_err();
    println!("\ninttoptr rejected: {err}");

    // --- S-bit demonstration: pointer in the second operand --------------
    let mut b = FunctionBuilder::new("s_bit");
    let p = b.param(Ty::Ptr(Region::Heap));
    let four = b.const_i32(4);
    let _q = b.ibin(IBinOp::Add, four, p); // int + ptr
    b.ret();
    let compiled = compile(&b.build(), CompileOptions::default()).unwrap();
    let marked = compiled.program.instructions.iter().find(|i| i.hints.activate).unwrap();
    println!("\n`4 + p` compiles to `{marked}` with S = {}", marked.hints.select);
}
