//! Tour of the LMI allocators: per-thread heap allocation (paper Fig. 3),
//! CUDA-style buffer groups and chunk units (Fig. 5), power-of-two stack
//! frames (Fig. 7), and the fragmentation trade-off (Fig. 4).
//!
//! Run with: `cargo run --example allocator_tour`

use lmi::alloc::{AlignmentPolicy, DeviceHeap, GlobalAllocator, ThreadStack};
use lmi::core::{DevicePtr, PtrConfig};
use lmi::mem::layout;

fn main() {
    let cfg = PtrConfig::default();

    // --- Fig. 3: each lane of a warp allocates a different size ----------
    println!("== Fig. 3: variable-size heap allocations by one warp ==");
    let heap = DeviceHeap::new(cfg, AlignmentPolicy::PowerOfTwo, layout::HEAP_BASE, 8, 1 << 20);
    for tid in [1usize, 2, 3, 31] {
        let size = tid as u64 * 4;
        let raw = heap.malloc(tid, size).unwrap();
        let p = DevicePtr::from_raw(raw);
        println!(
            "  tid {tid:>2}: malloc({size:>3}) -> {p}  rounded to {} B",
            p.size(&cfg).unwrap()
        );
    }

    // --- Fig. 5: the baseline allocator's own chunk fragmentation --------
    println!("\n== Fig. 5: CUDA-style chunk units in the baseline heap ==");
    let base_heap =
        DeviceHeap::new(cfg, AlignmentPolicy::CudaDefault, layout::HEAP_BASE, 8, 1 << 20);
    for size in [64u64, 500, 1104, 4000] {
        base_heap.malloc(0, size).unwrap();
        println!("  malloc({size:>4}) uses {:>4}-byte chunks", DeviceHeap::chunk_unit(size));
    }
    let stats = base_heap.stats();
    println!(
        "  baseline heap already fragments: requested {} B, reserved {} B (+{:.0}%)",
        stats.requested,
        stats.reserved,
        stats.fragmentation() * 100.0
    );

    // --- Fig. 7: aligned stack frames -------------------------------------
    println!("\n== Fig. 7: power-of-two stack allocation ==");
    let mut stack =
        ThreadStack::new(cfg, AlignmentPolicy::PowerOfTwo, layout::LOCAL_BASE, 64 * 1024);
    let sp0 = stack.sp();
    let buf = DevicePtr::from_raw(stack.push(96).unwrap());
    println!("  stack top {sp0:#x}; alloca(96) -> {buf} (frame reserves 256 B)");
    assert_eq!(sp0 - stack.sp(), 256);

    // --- Fig. 4: the fragmentation cost of 2^n rounding -------------------
    println!("\n== Fig. 4: global-memory fragmentation, base vs LMI ==");
    for (name, sizes) in [
        ("power-of-two workload (hotspot-like) ", vec![1048576u64; 4]),
        ("pow2+header workload (backprop-like) ", vec![65552u64; 16]),
    ] {
        let run = |policy| {
            let mut a = GlobalAllocator::new(cfg, policy, layout::GLOBAL_BASE, 1 << 30);
            for &s in &sizes {
                a.alloc(s).unwrap();
            }
            a.rss().peak
        };
        let base = run(AlignmentPolicy::CudaDefault);
        let lmi = run(AlignmentPolicy::PowerOfTwo);
        println!(
            "  {name}: base RSS {base:>9} B, LMI RSS {lmi:>9} B  (+{:.1}%)",
            (lmi as f64 / base as f64 - 1.0) * 100.0
        );
    }
}
