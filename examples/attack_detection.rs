//! A Mind-Control-style stack-smashing attack (paper §IV-D), written in the
//! kernel IR, compiled twice — unprotected and with the LMI pass — and run
//! on the simulator.
//!
//! The kernel copies `n` words from a global input into a 24-word stack
//! buffer. A malicious launch passes `n = 40`: under the baseline build the
//! overflow silently corrupts stack memory beyond the buffer; under LMI the
//! OCU poisons the pointer at the region boundary and the EC kills the
//! faulting store.
//!
//! Run with: `cargo run --example attack_detection`

use lmi::compiler::ir::{CmpKind, FunctionBuilder, IBinOp, Region, Ty};
use lmi::compiler::{compile, CompileOptions};
use lmi::core::{DevicePtr, PtrConfig};
use lmi::mem::layout;
use lmi::sim::{Gpu, GpuConfig, Launch, LmiMechanism, NullMechanism};

fn vulnerable_kernel() -> lmi::compiler::Function {
    // __global__ void copy(int* input, int n) {
    //     int buf[24];
    //     for (int i = 0; i < n; i++) buf[i] = input[i];   // no bounds check!
    // }
    let mut b = FunctionBuilder::new("vulnerable_copy");
    let input = b.param(Ty::Ptr(Region::Global));
    let n = b.param(Ty::I32);
    let buf = b.alloca(96); // 24 * 4 bytes
    let zero = b.const_i32(0);
    let i = b.var(zero);

    let body = b.new_block();
    let exit = b.new_block();
    b.jump(body);

    b.switch_to(body);
    let iv = b.read_var(i);
    let src = b.gep(input, iv, 4);
    let v = b.load_i32(src);
    let dst = b.gep(buf, iv, 4);
    b.store(dst, v, 4);
    let one = b.const_i32(1);
    let next = b.ibin(IBinOp::Add, iv, one);
    b.write_var(i, next);
    let cond = b.cmp(CmpKind::Lt, next, n);
    b.branch(cond, body, exit);

    b.switch_to(exit);
    b.ret();
    b.build()
}

fn main() {
    let cfg = PtrConfig::default();
    let kernel = vulnerable_kernel();
    // 80 words into a 24-word buffer. Note the two LMI effects: writes into
    // the buffer's power-of-two slack (words 24..63) are *neutralized* —
    // the aligned allocator placed no other object there — and the first
    // write past the 256-byte region boundary (word 64) is *faulted*.
    let n_attack = 80u64;

    // Input buffer holding the attacker's payload.
    let input = DevicePtr::encode(layout::GLOBAL_BASE, 4096, &cfg).unwrap();

    // --- unprotected build ------------------------------------------------
    let base_bin = compile(&kernel, CompileOptions::baseline()).expect("compiles");
    let launch = Launch::new(base_bin.program.clone())
        .grid(1)
        .block(1)
        .param(input.addr()) // baseline pointers carry no extent
        .param(n_attack);
    let mut gpu = Gpu::new(GpuConfig::security());
    // The attacker's payload: a fake return address repeated over the input.
    for i in 0..80 {
        gpu.memory.write(input.addr() + i * 4, 0xDEAD_BEEF, 4);
    }
    let stats = gpu.run(&launch, &mut NullMechanism);
    println!("baseline: {} violations detected", stats.violations.len());
    // The overflow landed: words 24..39 were written past the buffer.
    let frame_base = layout::local_window_base(0, gpu.config().stack_bytes)
        + gpu.config().stack_bytes
        - base_bin.frame_bytes;
    let smashed = gpu.memory.read(frame_base + 24 * 4, 4);
    println!("baseline: word just past the buffer = {smashed:#x} (corrupted)");
    assert!(stats.violations.is_empty(), "the baseline is blind");

    // --- LMI build ---------------------------------------------------------
    let lmi_bin = compile(&kernel, CompileOptions::default()).expect("compiles");
    println!(
        "LMI build: frame {} B (96 B buffer rounded to a power of two), {} hinted instructions",
        lmi_bin.frame_bytes, lmi_bin.hinted
    );
    let launch = Launch::new(lmi_bin.program.clone())
        .grid(1)
        .block(1)
        .param(input.raw()) // extent-carrying pointer
        .param(n_attack);
    let mut gpu = Gpu::new(GpuConfig::security());
    let mut mech = LmiMechanism::default_config();
    let stats = gpu.run(&launch, &mut mech);
    let event = stats.violations.first().expect("LMI faults the overflow");
    println!(
        "LMI: attack stopped at pc {} with `{}` ({} pointer(s) poisoned)",
        event.pc, event.violation, mech.poisoned_count
    );
    assert!(mech.poisoned_count >= 1);
}
