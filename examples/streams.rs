//! Streams quickstart: two tenants share one GPU through the async
//! runtime — copies overlap compute, kernels from different streams run
//! *concurrently* on disjoint SM partitions, and each tenant's LMI
//! mechanism guards its own allocations, so a cross-tenant overflow
//! attempt is caught and attributed to the offending stream and tenant.
//!
//! Run with: `cargo run --example streams`

use lmi::isa::{abi, HintBits, Instruction, MemRef, ProgramBuilder, Reg};
use lmi::runtime::Runtime;
use lmi::sim::{GpuConfig, Launch};
use lmi::telemetry::Scope;

/// `buf[tid] += tid`, `iters` times — an honest worker kernel.
fn worker(name: &str, iters: u32) -> lmi::isa::Program {
    use lmi::isa::instr::CmpOp;
    use lmi::isa::reg::PredReg;
    let mut b = ProgramBuilder::new(name);
    b.push(Instruction::s2r(Reg(0), lmi::isa::op::SpecialReg::TidX));
    b.push(Instruction::ldc(Reg(4), abi::LAUNCH_BANK, abi::param_offset(0), 8));
    b.push(Instruction::lea64(Reg(6), Reg(4), Reg(0), 3));
    b.push(Instruction::mov(Reg(2), 0));
    let top = b.label();
    b.push(Instruction::ldg(Reg(8), MemRef::new(Reg(6), 0, 8)));
    b.push(Instruction::iadd3(Reg(8), Reg(8), Reg(0)));
    b.push(Instruction::stg(MemRef::new(Reg(6), 0, 8), Reg(8)));
    b.push(Instruction::iadd3(Reg(2), Reg(2), 1));
    b.push(Instruction::isetp(PredReg(0), Reg(2), CmpOp::Lt, iters as i32));
    b.branch_if(top, PredReg(0), false);
    b.push(Instruction::exit());
    b.build()
}

/// Takes its own buffer (param 0) and a 64-bit delta (param 1) that aims
/// the pointer into *someone else's* arena, then dereferences. The
/// pointer arithmetic is compiler-marked, so tenant 0's OCU poisons the
/// escaping pointer and the EC faults the store.
fn cross_tenant_attack() -> lmi::isa::Program {
    let mut b = ProgramBuilder::new("oob_attack");
    b.push(Instruction::ldc(Reg(4), abi::LAUNCH_BANK, abi::param_offset(0), 8));
    b.push(Instruction::ldc(Reg(6), abi::LAUNCH_BANK, abi::param_offset(1), 8));
    b.push(Instruction::iadd64(Reg(4), Reg(4), Reg(6)).with_hints(HintBits::check_operand(0)));
    b.push(Instruction::mov(Reg(0), 0xDEAD));
    b.push(Instruction::stg(MemRef::new(Reg(4), 0, 4), Reg(0)));
    b.push(Instruction::exit());
    b.build()
}

fn main() {
    let mut rt = Runtime::new(GpuConfig::small()).with_tracing(1 << 14);

    // Two protected tenants, one stream each: arena-isolated allocators
    // and independent LMI mechanism instances.
    let alice = rt.add_tenant(true);
    let bob = rt.add_tenant(true);
    let s_alice = rt.create_stream(alice).unwrap();
    let s_bob = rt.create_stream(bob).unwrap();

    let buf_a = rt.malloc(alice, 4096).unwrap();
    let buf_b = rt.malloc(bob, 4096).unwrap();

    // Async pipelines on both streams: upload, compute, readback. The
    // uploads serialize on the H2D engine; the kernels run concurrently
    // on disjoint SM partitions.
    rt.memcpy_h2d(s_alice, buf_a, &vec![100u64; 512]).unwrap();
    rt.memcpy_h2d(s_bob, buf_b, &vec![200u64; 512]).unwrap();
    rt.launch(s_alice, Launch::new(worker("alice_worker", 24)).grid(4).block(64).param(buf_a))
        .unwrap();
    rt.launch(s_bob, Launch::new(worker("bob_worker", 24)).grid(4).block(64).param(buf_b)).unwrap();
    let out_a = rt.memcpy_d2h(s_alice, buf_a, 512).unwrap();

    // Cross-stream dependency: Bob's second kernel waits for Alice.
    let ev = rt.create_event();
    rt.record_event(s_alice, ev).unwrap();
    rt.wait_event(s_bob, ev).unwrap();
    rt.launch(s_bob, Launch::new(worker("bob_round2", 8)).grid(4).block(64).param(buf_b)).unwrap();

    rt.synchronize().unwrap();

    let report = rt.report();
    println!("== timeline ({} cycles total) ==", report.total_cycles);
    for c in &report.copies {
        println!(
            "  [{:>6}..{:>6}] stream{} {} {} B",
            c.started_at,
            c.completed_at,
            c.stream,
            if c.h2d { "h2d" } else { "d2h" },
            c.bytes
        );
    }
    for k in &report.kernels {
        println!(
            "  [{:>6}..{:>6}] stream{} kernel {:<12} on SMs {}..{}",
            k.started_at, k.completed_at, k.stream, k.name, k.partition.start, k.partition.end
        );
    }
    let (ka, kb) = (&report.kernels[0], &report.kernels[1]);
    assert!(
        ka.partition.end <= kb.partition.start || kb.partition.end <= ka.partition.start,
        "concurrent kernels own disjoint SM partitions"
    );
    assert!(
        ka.started_at < kb.completed_at && kb.started_at < ka.completed_at,
        "the two workers overlap in time"
    );

    let words = rt.copy_result(out_a).unwrap();
    assert_eq!(words[5], 100 + 24 * 5, "alice's pipeline computed buf[5]");
    println!("alice readback ok: buf[5] = {}", words[5]);

    // The attack: Alice aims her own pointer at Bob's buffer. Her own
    // arena metadata betrays her — the marked add escapes buf_a's extent,
    // the OCU poisons, the EC faults, and nothing lands in Bob's memory.
    let addr_a = lmi::core::DevicePtr::from_raw(buf_a).addr();
    let addr_b = lmi::core::DevicePtr::from_raw(buf_b).addr();
    let delta = addr_b - addr_a;
    rt.launch(
        s_alice,
        Launch::new(cross_tenant_attack()).grid(1).block(1).param(buf_a).param(delta),
    )
    .unwrap();
    rt.synchronize().unwrap();

    let attack = rt.report().kernels.last().unwrap();
    assert_eq!(attack.stats.violations.len(), 1, "the cross-tenant store faulted");
    assert_eq!(rt.read(buf_b, 0, 4), 200, "bob's buffer is untouched");
    assert!(rt.tenant(bob).owns(addr_b), "the target was bob's memory");

    // Attribution: counters pin the violation on Alice's stream + tenant.
    let c = rt.counters();
    assert_eq!(c.get(Scope::Stream(s_alice), "violations"), 1);
    assert_eq!(c.get(Scope::Tenant(alice), "violations"), 1);
    assert_eq!(c.get(Scope::Tenant(bob), "violations"), 0);
    println!(
        "cross-tenant OOB caught: {} (attributed to stream{} / tenant{})",
        attack.stats.violations[0].violation, s_alice, alice
    );
    println!(
        "tenant counters: alice {{kernels: {}, violations: {}}}, bob {{kernels: {}, violations: {}}}",
        c.get(Scope::Tenant(alice), "kernels"),
        c.get(Scope::Tenant(alice), "violations"),
        c.get(Scope::Tenant(bob), "kernels"),
        c.get(Scope::Tenant(bob), "violations"),
    );
}
