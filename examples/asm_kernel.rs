//! Writing a kernel directly in SASS-like assembly, assembling it to
//! 128-bit microcode, and running it under LMI.
//!
//! Run with: `cargo run --example asm_kernel`

use lmi::core::{DevicePtr, PtrConfig};
use lmi::isa::asm::assemble;
use lmi::isa::ComputeCapability;
use lmi::mem::layout;
use lmi::sim::{Gpu, GpuConfig, Launch, LmiMechanism};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // data[tid] = tid * tid, with the pointer op carrying the A/S hints.
    let program = assemble(
        "squares",
        r#"
        S2R  R0, 0                   // tid
        LDC  R4, c[0x0][0x160]       // data pointer (extent-tagged)
        IMAD R1, R0, R0, RZ          // tid^2
        LEA64.A0 R6, R4, R0, 2       // &data[tid], OCU-checked
        STG  [R6], R1
        EXIT
        "#,
    )?;

    // Show the encoded microcode with its hint bits.
    println!("microcode (A/S bits live at positions 28/27):");
    for (ins, word) in program.instructions.iter().zip(program.assemble(ComputeCapability::Cc80)?) {
        println!("  {word}  {ins}");
    }

    let cfg = PtrConfig::default();
    let buf = DevicePtr::encode(layout::GLOBAL_BASE, 4096, &cfg)?;
    let launch = Launch::new(program).grid(1).block(64).param(buf.raw());
    let mut gpu = Gpu::new(GpuConfig::small());
    let mut mech = LmiMechanism::default_config();
    let stats = gpu.run(&launch, &mut mech);
    assert!(!stats.violated());

    println!("\nresults:");
    for tid in [0u64, 1, 7, 63] {
        println!("  data[{tid}] = {}", gpu.memory.read(buf.addr() + tid * 4, 4));
        assert_eq!(gpu.memory.read(buf.addr() + tid * 4, 4), tid * tid);
    }
    println!("\n{} cycles, {} instructions issued", stats.cycles, stats.issued);
    Ok(())
}
