//! A multi-kernel host program: memory and pointers persist across
//! launches, and so does LMI's protection — a use-after-free *across
//! kernels* (the cross-kernel attack surface of the paper's threat model,
//! where any thread in any later kernel can touch global memory) is caught
//! because the freed pointer's extent died with the `cudaFree`.
//!
//! Run with: `cargo run --example multi_kernel`

use lmi::alloc::{AlignmentPolicy, GlobalAllocator};
use lmi::compiler::ir::{FunctionBuilder, IBinOp, Region, Ty};
use lmi::compiler::{compile, CompileOptions};
use lmi::core::{invalidate_extent, PtrConfig};
use lmi::mem::layout;
use lmi::sim::{Gpu, GpuConfig, Launch, LmiMechanism};

/// `out[tid] = in[tid] + k`
fn add_kernel(name: &str) -> lmi::compiler::Function {
    let mut b = FunctionBuilder::new(name);
    let input = b.param(Ty::Ptr(Region::Global));
    let output = b.param(Ty::Ptr(Region::Global));
    let k = b.param(Ty::I32);
    let tid = b.tid();
    let ie = b.gep(input, tid, 4);
    let v = b.load_i32(ie);
    let sum = b.ibin(IBinOp::Add, v, k);
    let oe = b.gep(output, tid, 4);
    b.store(oe, sum, 4);
    b.ret();
    b.build()
}

fn main() {
    let cfg = PtrConfig::default();
    // The host side: an LMI-aware cudaMalloc.
    let mut cuda =
        GlobalAllocator::new(cfg, AlignmentPolicy::PowerOfTwo, layout::GLOBAL_BASE, 1 << 30);
    let a = cuda.alloc(4096).unwrap();
    let b_buf = cuda.alloc(4096).unwrap();
    let c_buf = cuda.alloc(4096).unwrap();

    let kernel = compile(&add_kernel("add_k"), CompileOptions::default()).unwrap();
    let mut gpu = Gpu::new(GpuConfig::security());
    let mut mech = LmiMechanism::default_config();

    // Seed input A with tid values via a first kernel (in = out = A, k = 0
    // over zeroed memory, then k = tid is done by a quick store loop here).
    for tid in 0..64u64 {
        gpu.memory.write(lmi::core::DevicePtr::from_raw(a).addr() + tid * 4, tid * 10, 4);
    }

    // Launch 1: B = A + 1.
    let launch =
        Launch::new(kernel.program.clone()).grid(1).block(64).param(a).param(b_buf).param(1);
    let s1 = gpu.run(&launch, &mut mech);
    assert!(!s1.violated());

    // Launch 2: C = B + 100. Memory persisted between launches.
    let launch =
        Launch::new(kernel.program.clone()).grid(1).block(64).param(b_buf).param(c_buf).param(100);
    let s2 = gpu.run(&launch, &mut mech);
    assert!(!s2.violated());
    let c_addr = lmi::core::DevicePtr::from_raw(c_buf).addr();
    println!(
        "pipeline result: C[5] = {} (expected {})",
        gpu.memory.read(c_addr + 20, 4),
        5 * 10 + 101
    );

    // Host frees B; the runtime nullifies the pointer's extent (§VIII).
    cuda.free(b_buf).unwrap();
    let stale_b = invalidate_extent(b_buf);

    // Launch 3: a buggy kernel still reads through the stale B pointer.
    let launch = Launch::new(kernel.program).grid(1).block(64).param(stale_b).param(c_buf).param(0);
    let s3 = gpu.run(&launch, &mut mech);
    let event = s3.violations.first().expect("cross-kernel UAF is caught");
    println!("cross-kernel UAF detected: {} (thread {})", event.violation, event.global_tid);
}
