//! The full GPU: SMs, the shared memory hierarchy, the device heap, and the
//! run loop — plus the resident multi-kernel mode used by `lmi-runtime` to
//! run kernels from different streams/tenants concurrently on disjoint SM
//! partitions.

use std::ops::Range;
use std::sync::Arc;

use lmi_alloc::{AlignmentPolicy, DeviceHeap};
use lmi_core::PtrConfig;
use lmi_isa::DecodedStream;
use lmi_mem::{layout, BankedHierarchy, BankedMemory, Cache, CacheStats};
use lmi_telemetry::{Scope, TelemetrySink};

use crate::config::GpuConfig;
use crate::engine::{self, KernelSlot, SharedCtx};
use crate::launch::{Launch, LaunchError};
use crate::mechanism::Mechanism;
use crate::sm::{LaunchCtx, Sm};
use crate::stats::SimStats;

/// Per-resident-kernel stride separating the *layout* tids that back local
/// windows: concurrent kernels' stacks can never alias as long as one
/// launch stays under a million threads.
const LAYOUT_TID_STRIDE: u64 = 1 << 20;

/// Per-resident-kernel stride separating shared-memory windows, in blocks.
const LAYOUT_BLOCK_STRIDE: u64 = 1 << 12;

/// One kernel of a resident cohort: what to run, under which mechanism and
/// heap, where (an SM partition), and when (an admission offset in cycles).
pub struct ResidentKernel<'a> {
    /// The launch descriptor.
    pub launch: &'a Launch,
    /// The memory-safety mechanism guarding this kernel (per-tenant).
    pub mechanism: &'a mut dyn Mechanism,
    /// Device heap serving this kernel's `malloc`/`free`; `None` uses the
    /// GPU's own heap.
    pub heap: Option<&'a DeviceHeap>,
    /// The SM partition (disjoint from every other cohort member's).
    pub partition: Range<usize>,
    /// Cycle at which the kernel is admitted: added to every warp's
    /// dispatch ramp, so a kernel submitted mid-run starts late without
    /// any engine-level gating.
    pub start_offset: u64,
}

/// Per-kernel result of a resident cohort run.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelOutcome {
    /// This kernel's statistics. `cycles` is measured from the kernel's
    /// `start_offset` to its last warp's retirement; `l1_per_sm` holds the
    /// deltas of the kernel's partition only (index 0 = partition start).
    /// Run-level shared counters (L2, MSHR, DRAM) live on
    /// [`ResidentOutcome`] — the L2 is shared, so per-kernel attribution
    /// would be fiction.
    pub stats: SimStats,
    /// Absolute engine cycle at which the kernel's last warp retired.
    pub completed_at: u64,
}

/// Result of one resident cohort run.
#[derive(Debug, Clone, PartialEq)]
pub struct ResidentOutcome {
    /// Per-kernel outcomes, in submission order.
    pub kernels: Vec<KernelOutcome>,
    /// Final engine cycle (all kernels drained).
    pub makespan: u64,
    /// Shared-L2 delta over the whole cohort.
    pub l2: CacheStats,
    /// MSHR merges over the whole cohort.
    pub mshr_merges: u64,
    /// DRAM transactions over the whole cohort.
    pub dram_transactions: u64,
}

/// A simulated GPU.
///
/// The functional byte store ([`Gpu::memory`]) and the device heap persist
/// across launches, so a host program can allocate, launch, inspect, and
/// launch again — the pattern the security suite and the examples use.
pub struct Gpu {
    cfg: GpuConfig,
    /// Per-SM L1 caches. SM-local state (probed in phase A), but owned
    /// here so warmth and statistics persist across launches; each run
    /// lends the engine one `&mut Cache` per participating SM.
    l1: Vec<Cache>,
    /// The banked shared memory system: L2 slices, MSHRs, DRAM channel
    /// groups (`cfg.mem_banks` address-interleaved banks).
    hierarchy: BankedHierarchy,
    /// Functional backing store for all address spaces, sharded like the
    /// timing hierarchy.
    pub memory: BankedMemory,
    heap: DeviceHeap,
}

/// A functional-memory snapshot of selected address ranges, taken with
/// [`Gpu::snapshot`] and re-applied with [`Gpu::restore`].
///
/// Snapshots are the conformance suite's replay entry point: capture the
/// seeded input image once, restore it into a fresh [`Gpu`] per engine
/// configuration (`sim_threads` × `mem_banks`), run the same launch, and
/// compare post-run snapshots — `PartialEq` makes "bit-identical memory"
/// a single assertion. The capture is bank-layout independent, so images
/// move freely between monolithic and sharded GPUs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemorySnapshot {
    /// `(base address, bytes)` pairs, in capture order.
    pub regions: Vec<(u64, Vec<u8>)>,
}

impl MemorySnapshot {
    /// Total captured bytes.
    pub fn len(&self) -> usize {
        self.regions.iter().map(|(_, b)| b.len()).sum()
    }

    /// `true` if nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }
}

impl Gpu {
    /// Creates a GPU whose device heap uses LMI's power-of-two policy.
    pub fn new(cfg: GpuConfig) -> Gpu {
        Gpu::with_heap_policy(cfg, AlignmentPolicy::PowerOfTwo)
    }

    /// Creates a GPU with an explicit device-heap policy (the unprotected
    /// baseline uses [`AlignmentPolicy::CudaDefault`]).
    pub fn with_heap_policy(cfg: GpuConfig, policy: AlignmentPolicy) -> Gpu {
        let banks = cfg.resolve_mem_banks();
        Gpu {
            cfg,
            l1: (0..cfg.num_sms).map(|_| Cache::new(cfg.hierarchy.l1)).collect(),
            hierarchy: BankedHierarchy::new(cfg.hierarchy, banks),
            memory: BankedMemory::new(banks, cfg.hierarchy.l2.line_bytes),
            heap: DeviceHeap::new(
                PtrConfig::default(),
                policy,
                layout::HEAP_BASE,
                64,
                16 * 1024 * 1024,
            ),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// The device heap (for inspection by tests and the security suite).
    pub fn heap(&self) -> &DeviceHeap {
        &self.heap
    }

    /// Total DRAM transactions issued so far (summed over banks).
    pub fn dram_transactions(&self) -> u64 {
        self.hierarchy.dram_transactions()
    }

    /// L1 statistics for one SM.
    pub fn l1_stats(&self, sm: usize) -> lmi_mem::CacheStats {
        self.l1[sm].stats()
    }

    /// Shared L2 statistics (summed over banks).
    pub fn l2_stats(&self) -> lmi_mem::CacheStats {
        self.hierarchy.l2_stats()
    }

    /// The effective memory-bank count this GPU was built with.
    pub fn mem_banks(&self) -> usize {
        self.hierarchy.num_banks()
    }

    /// Per-bank L2 statistics (index = bank id).
    pub fn l2_stats_per_bank(&self) -> Vec<lmi_mem::CacheStats> {
        self.hierarchy.banks().iter().map(|b| b.l2_stats()).collect()
    }

    /// Per-bank DRAM transaction counts (index = bank id).
    pub fn dram_transactions_per_bank(&self) -> Vec<u64> {
        self.hierarchy.banks().iter().map(|b| b.dram_transactions()).collect()
    }

    /// Captures the functional contents of `(base, len)` address ranges.
    pub fn snapshot(&self, ranges: &[(u64, u64)]) -> MemorySnapshot {
        let regions = ranges
            .iter()
            .map(|&(base, len)| {
                let mut bytes = vec![0u8; len as usize];
                self.memory.read_bytes(base, &mut bytes);
                (base, bytes)
            })
            .collect();
        MemorySnapshot { regions }
    }

    /// Writes a snapshot back into functional memory (replay setup).
    pub fn restore(&mut self, snapshot: &MemorySnapshot) {
        for (base, bytes) in &snapshot.regions {
            self.memory.write_bytes(*base, bytes);
        }
    }

    /// Runs one kernel to completion under `mechanism`; returns statistics.
    ///
    /// # Panics
    ///
    /// Panics if the launch is invalid ([`Launch::validate`]) — use
    /// [`Gpu::try_run`] to get the typed [`LaunchError`] instead.
    pub fn run(&mut self, launch: &Launch, mechanism: &mut dyn Mechanism) -> SimStats {
        self.try_run(launch, mechanism).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Runs one kernel to completion under `mechanism`, rejecting invalid
    /// launches with a typed [`LaunchError`] instead of panicking.
    pub fn try_run(
        &mut self,
        launch: &Launch,
        mechanism: &mut dyn Mechanism,
    ) -> Result<SimStats, LaunchError> {
        // Forensics still flow into `SimStats::forensics` (they only cost
        // time on violations); counters and the tracer stay off.
        let mut sink = TelemetrySink::disabled();
        self.try_run_with_telemetry(launch, mechanism, &mut sink)
    }

    /// Runs one kernel like [`Gpu::run`], additionally recording scoped
    /// counters, timeline events and forensics into `sink`.
    ///
    /// # Panics
    ///
    /// Panics if the launch is invalid ([`Launch::validate`]) — use
    /// [`Gpu::try_run_with_telemetry`] to get the typed [`LaunchError`].
    pub fn run_with_telemetry(
        &mut self,
        launch: &Launch,
        mechanism: &mut dyn Mechanism,
        sink: &mut TelemetrySink,
    ) -> SimStats {
        self.try_run_with_telemetry(launch, mechanism, sink).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Runs one kernel, recording telemetry into `sink`; invalid launches
    /// are rejected with a typed [`LaunchError`].
    ///
    /// The hierarchy's cache/DRAM counters persist across launches (the
    /// host may launch several kernels against the same GPU), so the
    /// returned [`SimStats`] carries the per-run *delta*, snapshotted
    /// around the run loop.
    pub fn try_run_with_telemetry(
        &mut self,
        launch: &Launch,
        mechanism: &mut dyn Mechanism,
        sink: &mut TelemetrySink,
    ) -> Result<SimStats, LaunchError> {
        launch.validate(&self.cfg)?;
        // Lower the program to its flat decoded form exactly once; the
        // cycle loop never decodes again. Corrupt microcode (bad ISETP
        // immediates, unknown S2R selectors) is rejected here.
        let stream = Arc::new(DecodedStream::lower(&launch.program)?);
        let ctx = Arc::new(LaunchCtx {
            params: launch.params.clone(),
            stack_bytes: self.cfg.stack_bytes,
            threads_per_block: launch.threads_per_block,
            layout_tid_base: 0,
            layout_block_base: 0,
        });
        let regs = launch.program.regs_per_thread.max(8) as usize;

        let mut sms: Vec<Sm> = (0..self.cfg.num_sms)
            .map(|id| Sm::new(id, Arc::clone(&stream), Arc::clone(&ctx)))
            .collect();
        for block in 0..launch.grid_blocks {
            sms[block % self.cfg.num_sms].add_block(block, launch, regs);
        }

        // Snapshot the persistent hierarchy counters so the stats report
        // this run's delta, not the GPU's lifetime totals.
        let l1_before: Vec<CacheStats> =
            (0..self.cfg.num_sms).map(|sm| self.l1[sm].stats()).collect();
        let l2_before = self.hierarchy.l2_stats();
        let mshr_before = self.hierarchy.mshr_merges();
        let dram_before = self.hierarchy.dram_transactions();

        let mut stats = SimStats::default();
        let threads = self.cfg.resolve_sim_threads();
        let cycle = {
            // The shared-state context is built once per run (it used to be
            // re-assembled per SM per cycle) and handed to the engine, which
            // picks the serial or the parallel driver; both are
            // bit-identical (see `crate::engine`).
            let mut shared = SharedCtx {
                hierarchy: &mut self.hierarchy,
                memory: &mut self.memory,
                kernels: vec![KernelSlot { mechanism, stats: &mut stats, heap: &self.heap }],
                kernel_of_sm: vec![0; self.cfg.num_sms],
                cfg: &self.cfg,
                sink: &mut *sink,
            };
            engine::run(&mut sms, self.l1.iter_mut().collect(), &mut shared, threads)
        };
        stats.cycles = cycle.max(1);

        let delta = |after: CacheStats, before: CacheStats| CacheStats {
            hits: after.hits - before.hits,
            misses: after.misses - before.misses,
        };
        stats.l1_per_sm =
            (0..self.cfg.num_sms).map(|sm| delta(self.l1[sm].stats(), l1_before[sm])).collect();
        stats.l2 = delta(self.hierarchy.l2_stats(), l2_before);
        stats.mshr_merges = self.hierarchy.mshr_merges() - mshr_before;
        stats.dram_transactions = self.hierarchy.dram_transactions() - dram_before;

        if sink.counters.is_enabled() {
            sink.counters.add(Scope::Gpu, "cycles", stats.cycles);
            sink.counters.add(Scope::Gpu, "mshr_merges", stats.mshr_merges);
            sink.counters.add(Scope::Gpu, "dram_transactions", stats.dram_transactions);
            sink.counters.add(Scope::Gpu, "l2.hits", stats.l2.hits);
            sink.counters.add(Scope::Gpu, "l2.misses", stats.l2.misses);
            for (sm, l1) in stats.l1_per_sm.iter().enumerate() {
                sink.counters.add(Scope::Sm(sm), "l1.hits", l1.hits);
                sink.counters.add(Scope::Sm(sm), "l1.misses", l1.misses);
            }
        }
        Ok(stats)
    }

    /// Runs a *cohort* of kernels resident together: each kernel occupies
    /// its own SM partition, owns its own mechanism/heap/stats, and is
    /// admitted at its `start_offset`, while all of them contend for the
    /// shared L2/MSHR/DRAM. One engine run simulates the whole cohort, so
    /// the result is bit-identical at every `sim_threads` — this is the
    /// primitive `lmi-runtime` builds streams on.
    ///
    /// Every launch is validated against its partition before anything
    /// runs: on error the GPU state is untouched.
    pub fn run_resident(
        &mut self,
        jobs: &mut [ResidentKernel<'_>],
        sink: &mut TelemetrySink,
    ) -> Result<ResidentOutcome, LaunchError> {
        // Validate geometry and partition disjointness up front.
        let mut claimed: Vec<bool> = vec![false; self.cfg.num_sms];
        for job in jobs.iter() {
            let p = &job.partition;
            if p.is_empty() || p.end > self.cfg.num_sms {
                return Err(LaunchError::BadPartition {
                    start: p.start,
                    end: p.end,
                    num_sms: self.cfg.num_sms,
                });
            }
            for sm in p.clone() {
                if claimed[sm] {
                    return Err(LaunchError::BadPartition {
                        start: p.start,
                        end: p.end,
                        num_sms: self.cfg.num_sms,
                    });
                }
                claimed[sm] = true;
            }
            job.launch.validate_on(&self.cfg, p.len())?;
        }

        // Build each kernel's SMs on its partition, dispatch its blocks
        // round-robin within the partition, and delay every warp by the
        // kernel's admission offset.
        let mut sms: Vec<Sm> = Vec::with_capacity(jobs.iter().map(|j| j.partition.len()).sum());
        let mut kernel_of_sm = vec![0usize; self.cfg.num_sms];
        for (k, job) in jobs.iter().enumerate() {
            let launch = job.launch;
            let stream = Arc::new(DecodedStream::lower(&launch.program)?);
            let ctx = Arc::new(LaunchCtx {
                params: launch.params.clone(),
                stack_bytes: self.cfg.stack_bytes,
                threads_per_block: launch.threads_per_block,
                layout_tid_base: k as u64 * LAYOUT_TID_STRIDE,
                layout_block_base: k as u64 * LAYOUT_BLOCK_STRIDE,
            });
            let regs = launch.program.regs_per_thread.max(8) as usize;
            let mut part: Vec<Sm> = job
                .partition
                .clone()
                .map(|id| Sm::new(id, Arc::clone(&stream), Arc::clone(&ctx)))
                .collect();
            let plen = part.len();
            for block in 0..launch.grid_blocks {
                part[block % plen].add_block(block, launch, regs);
            }
            for sm in &mut part {
                kernel_of_sm[sm.id] = k;
                for warp in &mut sm.warps {
                    warp.start_cycle += job.start_offset;
                }
            }
            sms.extend(part);
        }
        // Canonical phase-B order is ascending SM id, independent of the
        // cohort's submission order.
        sms.sort_by_key(|sm| sm.id);

        let l1_before: Vec<CacheStats> =
            (0..self.cfg.num_sms).map(|sm| self.l1[sm].stats()).collect();
        let l2_before = self.hierarchy.l2_stats();
        let mshr_before = self.hierarchy.mshr_merges();
        let dram_before = self.hierarchy.dram_transactions();

        let mut stats: Vec<SimStats> = jobs.iter().map(|_| SimStats::default()).collect();
        let threads = self.cfg.resolve_sim_threads();
        let makespan = {
            let kernels: Vec<KernelSlot> = jobs
                .iter_mut()
                .zip(stats.iter_mut())
                .map(|(job, st)| KernelSlot {
                    mechanism: &mut *job.mechanism,
                    stats: st,
                    heap: job.heap.unwrap_or(&self.heap),
                })
                .collect();
            let mut shared = SharedCtx {
                hierarchy: &mut self.hierarchy,
                memory: &mut self.memory,
                kernels,
                kernel_of_sm,
                cfg: &self.cfg,
                sink: &mut *sink,
            };
            // One L1 per participating SM, aligned with `sms` (both are in
            // ascending SM-id order; partitions are disjoint).
            let used: Vec<bool> = {
                let mut used = vec![false; self.cfg.num_sms];
                for sm in &sms {
                    used[sm.id] = true;
                }
                used
            };
            let l1s: Vec<&mut Cache> = self
                .l1
                .iter_mut()
                .enumerate()
                .filter(|(id, _)| used[*id])
                .map(|(_, c)| c)
                .collect();
            engine::run(&mut sms, l1s, &mut shared, threads)
        };

        let delta = |after: CacheStats, before: CacheStats| CacheStats {
            hits: after.hits - before.hits,
            misses: after.misses - before.misses,
        };
        let l2 = delta(self.hierarchy.l2_stats(), l2_before);
        let mshr_merges = self.hierarchy.mshr_merges() - mshr_before;
        let dram_transactions = self.hierarchy.dram_transactions() - dram_before;

        let mut kernels = Vec::with_capacity(jobs.len());
        for (job, mut st) in jobs.iter().zip(stats) {
            let completed_at = sms
                .iter()
                .filter(|sm| job.partition.contains(&sm.id))
                .filter_map(|sm| sm.done_cycle)
                .max()
                .unwrap_or(job.start_offset);
            st.cycles = completed_at.saturating_sub(job.start_offset).max(1);
            st.l1_per_sm =
                job.partition.clone().map(|sm| delta(self.l1[sm].stats(), l1_before[sm])).collect();
            kernels.push(KernelOutcome { stats: st, completed_at });
        }

        if sink.counters.is_enabled() {
            sink.counters.add(Scope::Gpu, "cycles", makespan.max(1));
            sink.counters.add(Scope::Gpu, "mshr_merges", mshr_merges);
            sink.counters.add(Scope::Gpu, "dram_transactions", dram_transactions);
            sink.counters.add(Scope::Gpu, "l2.hits", l2.hits);
            sink.counters.add(Scope::Gpu, "l2.misses", l2.misses);
            for (job, outcome) in jobs.iter().zip(&kernels) {
                for (i, sm) in job.partition.clone().enumerate() {
                    let l1 = outcome.stats.l1_per_sm[i];
                    sink.counters.add(Scope::Sm(sm), "l1.hits", l1.hits);
                    sink.counters.add(Scope::Sm(sm), "l1.misses", l1.misses);
                }
            }
        }
        Ok(ResidentOutcome {
            kernels,
            makespan: makespan.max(1),
            l2,
            mshr_merges,
            dram_transactions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanism::{LmiMechanism, NullMechanism};
    use lmi_core::PtrConfig;
    use lmi_isa::instr::CmpOp;
    use lmi_isa::reg::PredReg;
    use lmi_isa::{abi, HintBits, Instruction, MemRef, MemSpace, ProgramBuilder, Reg};

    #[test]
    fn corrupted_cmp_immediate_is_rejected_at_launch() {
        // A bit-flipped ISETP comparison immediate used to fall back to
        // `CmpOp::Eq` silently inside the cycle loop. Lowering now rejects
        // the program at launch with a typed error, before any SM runs.
        let mut b = ProgramBuilder::new("corrupt");
        b.push(Instruction::isetp(PredReg(0), Reg(0), CmpOp::Lt, 4));
        b.push(Instruction::exit());
        let mut program = b.build();
        program.instructions[0].srcs[2] = lmi_isa::Operand::Imm(99);
        let launch = Launch::new(program);
        let mut gpu = Gpu::new(GpuConfig::small());
        let err = gpu.try_run(&launch, &mut NullMechanism).unwrap_err();
        assert_eq!(
            err,
            LaunchError::Decode(lmi_isa::DecodeError::BadCmpImmediate { pc: 0, value: 99 })
        );
    }

    #[test]
    fn empty_kernel_terminates() {
        let mut b = ProgramBuilder::new("empty");
        b.push(Instruction::exit());
        let launch = Launch::new(b.build()).grid(4).block(128);
        let mut gpu = Gpu::new(GpuConfig::small());
        let stats = gpu.run(&launch, &mut NullMechanism);
        assert!(stats.cycles >= 1);
        assert_eq!(stats.issued, 16, "16 warps issue one EXIT each");
    }

    #[test]
    fn threads_write_their_tids_to_global_memory() {
        let base = layout::GLOBAL_BASE;
        let mut b = ProgramBuilder::new("wtid");
        b.push(Instruction::s2r(Reg(0), lmi_isa::op::SpecialReg::TidX));
        b.push(Instruction::ldc(Reg(4), abi::LAUNCH_BANK, abi::param_offset(0), 8));
        b.push(Instruction::lea64(Reg(6), Reg(4), Reg(0), 2));
        b.push(Instruction::stg(MemRef::new(Reg(6), 0, 4), Reg(0)));
        b.push(Instruction::exit());
        let launch = Launch::new(b.build()).grid(1).block(64).param(base);
        let mut gpu = Gpu::new(GpuConfig::small());
        let stats = gpu.run(&launch, &mut NullMechanism);
        for tid in 0..64u64 {
            assert_eq!(gpu.memory.read(base + tid * 4, 4), tid, "thread {tid}");
        }
        assert_eq!(stats.mem_count(MemSpace::Global), 2, "two warp-level STGs");
        assert!(stats.transactions >= 2);
    }

    #[test]
    fn loop_executes_the_right_number_of_iterations() {
        // R2 = 0; do { R2++ } while (R2 < 10); store R2.
        let base = layout::GLOBAL_BASE + 0x1000;
        let mut b = ProgramBuilder::new("loop");
        b.push(Instruction::mov(Reg(2), 0));
        let top = b.label();
        b.push(Instruction::iadd3(Reg(2), Reg(2), 1));
        b.push(Instruction::isetp(PredReg(0), Reg(2), CmpOp::Lt, 10));
        b.branch_if(top, PredReg(0), false);
        b.push(Instruction::ldc(Reg(4), abi::LAUNCH_BANK, abi::param_offset(0), 8));
        b.push(Instruction::stg(MemRef::new(Reg(4), 0, 4), Reg(2)));
        b.push(Instruction::exit());
        let launch = Launch::new(b.build()).grid(1).block(32).param(base);
        let mut gpu = Gpu::new(GpuConfig::small());
        gpu.run(&launch, &mut NullMechanism);
        assert_eq!(gpu.memory.read(base, 4), 10);
    }

    #[test]
    fn divergent_branch_executes_both_paths() {
        // if (tid < 16) out[tid] = 1; else out[tid] = 2;
        let base = layout::GLOBAL_BASE + 0x2000;
        let mut b = ProgramBuilder::new("div");
        b.push(Instruction::s2r(Reg(0), lmi_isa::op::SpecialReg::TidX));
        b.push(Instruction::ldc(Reg(4), abi::LAUNCH_BANK, abi::param_offset(0), 8));
        b.push(Instruction::lea64(Reg(6), Reg(4), Reg(0), 2));
        b.push(Instruction::isetp(PredReg(0), Reg(0), CmpOp::Lt, 16));
        let taken = b.forward_branch_if(PredReg(0), false);
        // else path
        b.push(Instruction::mov(Reg(8), 2));
        b.push(Instruction::stg(MemRef::new(Reg(6), 0, 4), Reg(8)));
        b.push(Instruction::exit());
        b.bind(taken);
        b.push(Instruction::mov(Reg(8), 1));
        b.push(Instruction::stg(MemRef::new(Reg(6), 0, 4), Reg(8)));
        b.push(Instruction::exit());
        let launch = Launch::new(b.build()).grid(1).block(32).param(base);
        let mut gpu = Gpu::new(GpuConfig::small());
        gpu.run(&launch, &mut NullMechanism);
        for tid in 0..32u64 {
            let expect = if tid < 16 { 1 } else { 2 };
            assert_eq!(gpu.memory.read(base + tid * 4, 4), expect, "thread {tid}");
        }
    }

    #[test]
    fn kernel_malloc_returns_distinct_valid_pointers() {
        let base = layout::GLOBAL_BASE + 0x3000;
        let mut b = ProgramBuilder::new("km");
        b.push(Instruction::s2r(Reg(0), lmi_isa::op::SpecialReg::TidX));
        b.push(Instruction::mov(Reg(1), 64));
        b.push(Instruction::malloc(Reg(4), Reg(1)));
        // store a marker through the fresh pointer
        b.push(Instruction::stg(MemRef::new(Reg(4), 0, 4), Reg(0)));
        b.push(Instruction::exit());
        let launch = Launch::new(b.build()).grid(1).block(32).param(base);
        let mut gpu = Gpu::new(GpuConfig::small());
        let mut mech = LmiMechanism::default_config();
        let stats = gpu.run(&launch, &mut mech);
        assert_eq!(stats.mallocs, 32);
        assert_eq!(gpu.heap().stats().live, 32);
        assert!(!stats.violated(), "heap pointers carry valid extents");
    }

    #[test]
    fn ocu_poisons_and_ec_faults_an_escaping_pointer() {
        // p = param0 (256 B buffer); p += 256 (marked); *p = 1 -> fault.
        let cfg = PtrConfig::default();
        let buf =
            lmi_core::DevicePtr::encode(layout::GLOBAL_BASE + 0x10000, 256, &cfg).unwrap().raw();
        let mut b = ProgramBuilder::new("oob");
        b.push(Instruction::ldc(Reg(4), abi::LAUNCH_BANK, abi::param_offset(0), 8));
        b.push(Instruction::iadd64(Reg(4), Reg(4), 256).with_hints(HintBits::check_operand(0)));
        b.push(Instruction::mov(Reg(0), 1));
        b.push(Instruction::stg(MemRef::new(Reg(4), 0, 4), Reg(0)));
        b.push(Instruction::exit());
        let launch = Launch::new(b.build()).grid(1).block(1).param(buf);
        let mut gpu = Gpu::new(GpuConfig::security());
        let mut mech = LmiMechanism::default_config();
        let stats = gpu.run(&launch, &mut mech);
        assert!(stats.violated());
        assert_eq!(mech.poisoned_count, 1);
        // The OOB store must not have landed.
        assert_eq!(gpu.memory.read(layout::GLOBAL_BASE + 0x10000 + 256, 4), 0);
        // Forensics: the poison (IADD64 at pc 1) is matched to the fault
        // (STG at pc 3) with its latency, even on the untelemetered path.
        assert_eq!(stats.forensics.len(), 1);
        let rec = &stats.forensics[0];
        assert_eq!(rec.poison.pc, 1);
        assert_eq!(rec.poison.op, "IADD64");
        assert_eq!(rec.fault.pc, 3);
        assert_eq!(rec.fault.lane, 0);
        assert!(rec.latency_cycles() > 0, "poison precedes the fault");
        assert!(rec.latency_instructions() > 0);
    }

    #[test]
    fn telemetry_counters_agree_with_sim_stats() {
        use lmi_telemetry::Scope;
        let base = layout::GLOBAL_BASE + 0x40000;
        let mut b = ProgramBuilder::new("tc");
        b.push(Instruction::s2r(Reg(0), lmi_isa::op::SpecialReg::TidX));
        b.push(Instruction::ldc(Reg(4), abi::LAUNCH_BANK, abi::param_offset(0), 8));
        b.push(Instruction::lea64(Reg(6), Reg(4), Reg(0), 2));
        b.push(Instruction::ldg(Reg(8), MemRef::new(Reg(6), 0, 4)));
        b.push(Instruction::ffma(Reg(9), Reg(8), Reg(8), Reg(8)));
        b.push(Instruction::stg(MemRef::new(Reg(6), 0, 4), Reg(9)));
        b.push(Instruction::exit());
        let launch = Launch::new(b.build()).grid(4).block(64).param(base);
        let mut gpu = Gpu::new(GpuConfig::small());
        let mut sink = TelemetrySink::counters_only();
        let stats = gpu.run_with_telemetry(&launch, &mut NullMechanism, &mut sink);
        assert_eq!(sink.counters.sum_sms("issued"), stats.issued);
        assert_eq!(sink.counters.sum_sms("transactions"), stats.transactions);
        assert_eq!(sink.counters.get(Scope::Gpu, "cycles"), stats.cycles);
        assert_eq!(sink.counters.sum_sms("stall.scoreboard"), stats.stalls.scoreboard);
        assert_eq!(sink.counters.sum_sms("stall.lsu_busy"), stats.stalls.lsu_busy);
        assert_eq!(sink.counters.sum_sms("stall.no_ready_warp"), stats.stalls.no_ready_warp);
        let l1 = stats.l1_total();
        assert_eq!(sink.counters.sum_sms("l1.hits"), l1.hits);
        assert_eq!(sink.counters.sum_sms("l1.misses"), l1.misses);
        assert!(stats.l1_hit_rate() >= 0.0 && stats.l1_hit_rate() <= 1.0);
    }

    #[test]
    fn traced_run_emits_warp_spans_and_memory_transactions() {
        let base = layout::GLOBAL_BASE + 0x50000;
        let mut b = ProgramBuilder::new("spans");
        b.push(Instruction::ldc(Reg(4), abi::LAUNCH_BANK, abi::param_offset(0), 8));
        b.push(Instruction::ldg(Reg(8), MemRef::new(Reg(4), 0, 4)));
        b.push(Instruction::exit());
        let launch = Launch::new(b.build()).grid(2).block(64).param(base);
        let mut gpu = Gpu::new(GpuConfig::small());
        let mut sink = TelemetrySink::with_trace_capacity(1024);
        gpu.run_with_telemetry(&launch, &mut NullMechanism, &mut sink);
        use lmi_telemetry::TraceEventKind;
        let warps = sink.tracer.records().filter(|r| r.kind == TraceEventKind::WarpSpan).count();
        assert_eq!(warps, 4, "one residency span per retired warp");
        assert!(
            sink.tracer.records().any(|r| r.kind == TraceEventKind::MemTransaction),
            "the LDG produced a transaction span"
        );
    }

    #[test]
    fn delayed_termination_no_fault_without_dereference() {
        // p += huge (marked) but never dereferenced: no violation (Fig. 14).
        let cfg = PtrConfig::default();
        let buf =
            lmi_core::DevicePtr::encode(layout::GLOBAL_BASE + 0x20000, 256, &cfg).unwrap().raw();
        let mut b = ProgramBuilder::new("fp");
        b.push(Instruction::ldc(Reg(4), abi::LAUNCH_BANK, abi::param_offset(0), 8));
        b.push(Instruction::iadd64(Reg(4), Reg(4), 4096).with_hints(HintBits::check_operand(0)));
        b.push(Instruction::exit());
        let launch = Launch::new(b.build()).grid(1).block(1).param(buf);
        let mut gpu = Gpu::new(GpuConfig::security());
        let mut mech = LmiMechanism::default_config();
        let stats = gpu.run(&launch, &mut mech);
        assert!(!stats.violated(), "delayed termination: no access, no fault");
        assert_eq!(mech.poisoned_count, 1, "the pointer was still poisoned");
    }

    #[test]
    fn barrier_synchronizes_a_block() {
        let mut b = ProgramBuilder::new("bar");
        b.push(Instruction::bar());
        b.push(Instruction::exit());
        let launch = Launch::new(b.build()).grid(2).block(128);
        let mut gpu = Gpu::new(GpuConfig::small());
        let stats = gpu.run(&launch, &mut NullMechanism);
        assert!(stats.cycles > 0, "barriers release and the kernel finishes");
    }

    #[test]
    fn lmi_overhead_on_pointer_light_kernel_is_negligible() {
        // A compute-heavy kernel with one marked pointer op per loop.
        fn build() -> lmi_isa::Program {
            let mut b = ProgramBuilder::new("compute");
            b.push(Instruction::mov(Reg(2), 0));
            b.push(Instruction::ldc(Reg(4), abi::LAUNCH_BANK, abi::param_offset(0), 8));
            let top = b.label();
            for _ in 0..8 {
                b.push(Instruction::ffma(Reg(8), Reg(8), Reg(9), Reg(10)));
            }
            b.push(Instruction::iadd64(Reg(4), Reg(4), 4).with_hints(HintBits::check_operand(0)));
            b.push(Instruction::iadd3(Reg(2), Reg(2), 1));
            b.push(Instruction::isetp(PredReg(0), Reg(2), CmpOp::Lt, 32));
            b.branch_if(top, PredReg(0), false);
            b.push(Instruction::exit());
            b.build()
        }
        let cfg = PtrConfig::default();
        let buf =
            lmi_core::DevicePtr::encode(layout::GLOBAL_BASE + 0x30000, 4096, &cfg).unwrap().raw();
        let launch = Launch::new(build()).grid(8).block(128).param(buf);
        let mut base_gpu = Gpu::new(GpuConfig::small());
        let base = base_gpu.run(&launch, &mut NullMechanism);
        let mut lmi_gpu = Gpu::new(GpuConfig::small());
        let lmi = lmi_gpu.run(&launch, &mut LmiMechanism::default_config());
        let overhead = lmi.cycles as f64 / base.cycles as f64 - 1.0;
        assert!(overhead < 0.05, "LMI overhead should be small, got {overhead}");
    }
}
