//! A CUDA-runtime-shaped host API.
//!
//! [`HostContext`] bundles the pieces a host program juggles — the device
//! memory allocator, the GPU, and the active protection mechanism — behind
//! `cudaMalloc`/`cudaFree`/launch-shaped calls, so application code reads
//! like the CUDA programs the paper protects.
//!
//! ```
//! use lmi_sim::host::HostContext;
//! use lmi_sim::GpuConfig;
//! use lmi_isa::{Instruction, ProgramBuilder, Reg, MemRef, abi};
//!
//! let mut ctx = HostContext::protected(GpuConfig::small());
//! let buf = ctx.cuda_malloc(4096)?;
//!
//! let mut b = ProgramBuilder::new("fill");
//! b.push(Instruction::s2r(Reg(0), lmi_isa::op::SpecialReg::TidX));
//! b.push(Instruction::ldc(Reg(4), abi::LAUNCH_BANK, abi::param_offset(0), 8));
//! b.push(Instruction::lea64(Reg(6), Reg(4), Reg(0), 2)
//!     .with_hints(lmi_isa::HintBits::check_operand(0)));
//! b.push(Instruction::stg(MemRef::new(Reg(6), 0, 4), Reg(0)));
//! b.push(Instruction::exit());
//!
//! let stats = ctx.launch(&b.build(), 1, 64, &[buf]);
//! assert!(!stats.violated());
//! assert_eq!(ctx.read(buf, 5 * 4, 4), 5);
//! ctx.cuda_free(buf)?;
//! # Ok::<(), lmi_alloc::AllocError>(())
//! ```

use lmi_alloc::{AlignmentPolicy, AllocError, GlobalAllocator, RssStats};
use lmi_core::{DevicePtr, PtrConfig};
use lmi_isa::Program;
use lmi_mem::layout;

use crate::config::GpuConfig;
use crate::launch::Launch;
use crate::mechanism::{LmiMechanism, Mechanism, NullMechanism};
use crate::stats::SimStats;
use crate::Gpu;

/// A host-side context: device allocator + GPU + protection mechanism.
pub struct HostContext {
    gpu: Gpu,
    allocator: GlobalAllocator,
    lmi: Option<LmiMechanism>,
}

impl HostContext {
    /// A context with LMI protection enabled end to end: the allocator
    /// hands out extent-tagged pointers and every launch runs under the
    /// OCU/EC.
    pub fn protected(cfg: GpuConfig) -> HostContext {
        let ptr_cfg = PtrConfig::default();
        HostContext {
            gpu: Gpu::with_heap_policy(cfg, AlignmentPolicy::PowerOfTwo),
            allocator: GlobalAllocator::new(
                ptr_cfg,
                AlignmentPolicy::PowerOfTwo,
                layout::GLOBAL_BASE,
                4 << 30,
            ),
            lmi: Some(LmiMechanism::new(ptr_cfg)),
        }
    }

    /// An unprotected context (the evaluation baseline).
    pub fn unprotected(cfg: GpuConfig) -> HostContext {
        HostContext {
            gpu: Gpu::with_heap_policy(cfg, AlignmentPolicy::CudaDefault),
            allocator: GlobalAllocator::new(
                PtrConfig::default(),
                AlignmentPolicy::CudaDefault,
                layout::GLOBAL_BASE,
                4 << 30,
            ),
            lmi: None,
        }
    }

    /// `cudaMalloc`: allocates device global memory; under protection the
    /// returned pointer carries its extent.
    ///
    /// # Errors
    ///
    /// Propagates [`AllocError`] (out of memory, size over the limit).
    pub fn cuda_malloc(&mut self, size: u64) -> Result<u64, AllocError> {
        self.allocator.alloc(size)
    }

    /// `cudaFree`: releases an allocation. Mirrors the paper's §V-B
    /// semantics — the caller's pointer value is dead afterwards (its
    /// extent would be nullified by the runtime; use the returned raw
    /// value if you need the nullified form explicitly).
    ///
    /// # Errors
    ///
    /// [`AllocError::InvalidFree`] / [`AllocError::DoubleFree`].
    pub fn cuda_free(&mut self, ptr: u64) -> Result<u64, AllocError> {
        self.allocator.free(ptr)?;
        Ok(lmi_core::invalidate_extent(ptr))
    }

    /// Launches `program` over `grid` blocks of `block` threads with the
    /// given parameters; returns the run's statistics.
    pub fn launch(
        &mut self,
        program: &Program,
        grid: usize,
        block: usize,
        params: &[u64],
    ) -> SimStats {
        let mut launch = Launch::new(program.clone()).grid(grid).block(block);
        for &p in params {
            launch = launch.param(p);
        }
        match &mut self.lmi {
            Some(mech) => self.gpu.run(&launch, mech),
            None => self.gpu.run(&launch, &mut NullMechanism),
        }
    }

    /// Launches under a caller-supplied mechanism (for baselines).
    pub fn launch_with(
        &mut self,
        program: &Program,
        grid: usize,
        block: usize,
        params: &[u64],
        mechanism: &mut dyn Mechanism,
    ) -> SimStats {
        let mut launch = Launch::new(program.clone()).grid(grid).block(block);
        for &p in params {
            launch = launch.param(p);
        }
        self.gpu.run(&launch, mechanism)
    }

    /// Reads device memory (like `cudaMemcpy` D→H of one word): `offset`
    /// is relative to the allocation the pointer identifies.
    pub fn read(&self, ptr: u64, offset: u64, width: u8) -> u64 {
        self.gpu.memory.read(DevicePtr::from_raw(ptr).addr() + offset, width)
    }

    /// Writes device memory (like `cudaMemcpy` H→D of one word).
    pub fn write(&mut self, ptr: u64, offset: u64, value: u64, width: u8) {
        self.gpu.memory.write(DevicePtr::from_raw(ptr).addr() + offset, value, width);
    }

    /// Device-memory RSS statistics (the Fig. 4 metric for this context).
    pub fn memory_stats(&self) -> RssStats {
        self.allocator.rss()
    }

    /// Pointers poisoned by the OCU so far (0 for unprotected contexts).
    pub fn poisoned_count(&self) -> u64 {
        self.lmi.map(|m| m.poisoned_count).unwrap_or(0)
    }

    /// The underlying GPU (memory inspection, heap stats).
    pub fn gpu(&self) -> &Gpu {
        &self.gpu
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmi_isa::{abi, HintBits, Instruction, MemRef, ProgramBuilder, Reg};

    fn fill_kernel() -> Program {
        let mut b = ProgramBuilder::new("fill");
        b.push(Instruction::s2r(Reg(0), lmi_isa::op::SpecialReg::TidX));
        b.push(Instruction::ldc(Reg(4), abi::LAUNCH_BANK, abi::param_offset(0), 8));
        b.push(
            Instruction::lea64(Reg(6), Reg(4), Reg(0), 2).with_hints(HintBits::check_operand(0)),
        );
        b.push(Instruction::stg(MemRef::new(Reg(6), 0, 4), Reg(0)));
        b.push(Instruction::exit());
        b.build()
    }

    #[test]
    fn malloc_launch_read_free_round_trip() {
        let mut ctx = HostContext::protected(GpuConfig::small());
        let buf = ctx.cuda_malloc(1024).unwrap();
        let stats = ctx.launch(&fill_kernel(), 1, 64, &[buf]);
        assert!(!stats.violated());
        for tid in 0..64 {
            assert_eq!(ctx.read(buf, tid * 4, 4), tid);
        }
        ctx.cuda_free(buf).unwrap();
        assert_eq!(ctx.memory_stats().current, 0);
    }

    #[test]
    fn stale_pointer_faults_in_a_later_launch() {
        let mut ctx = HostContext::protected(GpuConfig::security());
        let buf = ctx.cuda_malloc(1024).unwrap();
        let stale = ctx.cuda_free(buf).unwrap();
        let stats = ctx.launch(&fill_kernel(), 1, 32, &[stale]);
        assert!(stats.violated(), "UAF across launches is caught");
    }

    #[test]
    fn unprotected_context_misses_the_same_bug() {
        let mut ctx = HostContext::unprotected(GpuConfig::security());
        let buf = ctx.cuda_malloc(1024).unwrap();
        ctx.cuda_free(buf).unwrap();
        let stats = ctx.launch(&fill_kernel(), 1, 32, &[buf]);
        assert!(!stats.violated(), "the baseline is blind to UAF");
    }

    #[test]
    fn double_free_reported_at_the_api() {
        let mut ctx = HostContext::protected(GpuConfig::small());
        let buf = ctx.cuda_malloc(256).unwrap();
        ctx.cuda_free(buf).unwrap();
        assert!(ctx.cuda_free(buf).is_err());
    }
}
