//! The pluggable memory-safety mechanism interface, and the LMI hardware
//! mechanism itself.

use lmi_core::{ExtentChecker, Ocu, PtrConfig, Violation};
use lmi_isa::MemSpace;

/// Result of an integer-ALU check ([`Mechanism::on_marked_int`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntCheck {
    /// The value to write back (possibly poisoned).
    pub value: u64,
    /// Whether the check poisoned the pointer.
    pub poisoned: bool,
}

impl IntCheck {
    /// A passing check.
    pub fn pass(value: u64) -> IntCheck {
        IntCheck { value, poisoned: false }
    }
}

/// Context handed to [`Mechanism::on_mem_access`] for each lane's access.
#[derive(Debug, Clone, Copy)]
pub struct MemAccessCtx {
    /// Target memory space.
    pub space: MemSpace,
    /// The raw register value used as the address (may carry extent bits).
    pub raw: u64,
    /// The virtual address after metadata stripping.
    pub vaddr: u64,
    /// Access width in bytes.
    pub width: u8,
    /// `true` for stores.
    pub is_store: bool,
    /// Flat global thread id of the accessing lane.
    pub global_tid: u64,
    /// Program counter of the issuing instruction.
    pub pc: usize,
    /// Lane index within the warp.
    pub lane: usize,
    /// Global warp-level issue sequence number of the instruction this lane
    /// belongs to. All lanes of one issue share it, so per-pc attribution
    /// can count warp-level issues exactly (see `trace::CountingTap`).
    pub issue_index: u64,
}

/// Result of a memory-access check ([`Mechanism::on_mem_access`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemCheck {
    /// A violation, if the access must fault.
    pub violation: Option<Violation>,
    /// Extra cycles the access costs (e.g. a bounds-cache lookup port
    /// conflict). Metadata *memory* traffic uses `metadata_addr` instead.
    pub extra_cycles: u32,
    /// If set, the LSU must also fetch mechanism metadata at this address
    /// through the L2 before the access can complete (e.g. a GPUShield
    /// RCache miss filling from the bounds table).
    pub metadata_addr: Option<u64>,
}

impl MemCheck {
    /// Allow the access with no extra cost.
    pub fn allow() -> MemCheck {
        MemCheck { violation: None, extra_cycles: 0, metadata_addr: None }
    }

    /// Fault the access.
    pub fn fault(violation: Violation) -> MemCheck {
        MemCheck { violation: Some(violation), extra_cycles: 0, metadata_addr: None }
    }
}

/// A hardware memory-safety mechanism plugged into the pipeline.
pub trait Mechanism {
    /// Mechanism name for reports.
    fn name(&self) -> &'static str;

    /// Called with the selected input operand and the raw result of every
    /// hint-marked integer instruction (per active lane).
    fn on_marked_int(&mut self, _input: u64, result: u64) -> IntCheck {
        IntCheck::pass(result)
    }

    /// Extra writeback latency on hint-marked instructions (the OCU's
    /// pipelined register slices; paper §XI-C).
    fn marked_int_delay(&self) -> u32 {
        0
    }

    /// Called for every lane of every memory access before it issues.
    fn on_mem_access(&mut self, _ctx: &MemAccessCtx) -> MemCheck {
        MemCheck::allow()
    }

    /// Whether a successful device `free` nullifies the freed pointer's
    /// in-pointer metadata (paper §VIII: the LMI pass clears the extent
    /// right after the call). Mechanisms returning `true` get a forensics
    /// poison event recorded at the free site, so a later use-after-free
    /// fault reports its poison-to-fault latency.
    fn nullifies_on_free(&self) -> bool {
        false
    }
}

/// The unprotected baseline: no checks, no cost.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullMechanism;

impl Mechanism for NullMechanism {
    fn name(&self) -> &'static str {
        "baseline"
    }
}

/// LMI in hardware: the OCU on integer ALUs and the EC in the LSU.
#[derive(Debug, Clone, Copy)]
pub struct LmiMechanism {
    ocu: Ocu,
    ec: ExtentChecker,
    /// Statistics: pointers poisoned by the OCU.
    pub poisoned_count: u64,
    /// Statistics: faults raised by the EC.
    pub faults: u64,
}

impl LmiMechanism {
    /// LMI with the given pointer format.
    pub fn new(cfg: PtrConfig) -> LmiMechanism {
        LmiMechanism {
            ocu: Ocu::new(cfg),
            ec: ExtentChecker::new(cfg),
            poisoned_count: 0,
            faults: 0,
        }
    }

    /// LMI with the default pointer format (K = 256, 256 GiB limit).
    pub fn default_config() -> LmiMechanism {
        LmiMechanism::new(PtrConfig::default())
    }

    /// LMI with a custom OCU delay (ablation).
    pub fn with_ocu_delay(cfg: PtrConfig, delay: u32) -> LmiMechanism {
        let mut m = LmiMechanism::new(cfg);
        m.ocu = Ocu::with_delay(cfg, delay);
        m
    }
}

impl Mechanism for LmiMechanism {
    fn name(&self) -> &'static str {
        "lmi"
    }

    fn on_marked_int(&mut self, input: u64, result: u64) -> IntCheck {
        let (value, outcome) = self.ocu.check_marked(input, result);
        let poisoned = !outcome.passed();
        if poisoned {
            self.poisoned_count += 1;
        }
        IntCheck { value, poisoned }
    }

    fn marked_int_delay(&self) -> u32 {
        self.ocu.delay_cycles
    }

    fn nullifies_on_free(&self) -> bool {
        true
    }

    fn on_mem_access(&mut self, ctx: &MemAccessCtx) -> MemCheck {
        // Constant memory is outside the threat model; global/shared/local
        // and heap pointers all carry extents under LMI.
        if ctx.space == MemSpace::Const {
            return MemCheck::allow();
        }
        match self.ec.check_access(ctx.raw) {
            Ok(_) => MemCheck::allow(),
            Err(violation) => {
                self.faults += 1;
                MemCheck::fault(violation)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmi_core::DevicePtr;

    #[test]
    fn null_mechanism_allows_everything() {
        let mut m = NullMechanism;
        let check = m.on_marked_int(0, 0xDEAD);
        assert_eq!(check.value, 0xDEAD);
        assert!(!check.poisoned);
        assert_eq!(m.marked_int_delay(), 0);
    }

    #[test]
    fn lmi_mechanism_poisons_and_faults() {
        let cfg = PtrConfig::default();
        let mut m = LmiMechanism::new(cfg);
        assert_eq!(m.marked_int_delay(), 3, "paper §XI-C: three-cycle OCU delay");
        let p = DevicePtr::encode(0x1_0000, 256, &cfg).unwrap().raw();
        let check = m.on_marked_int(p, p + 256);
        assert!(check.poisoned);
        assert_eq!(m.poisoned_count, 1);
        let ctx = MemAccessCtx {
            space: MemSpace::Global,
            raw: check.value,
            vaddr: DevicePtr::from_raw(check.value).addr(),
            width: 4,
            is_store: false,
            global_tid: 0,
            pc: 0,
            lane: 0,
            issue_index: 0,
        };
        let mem = m.on_mem_access(&ctx);
        assert!(mem.violation.is_some());
        assert_eq!(m.faults, 1);
    }

    #[test]
    fn lmi_allows_const_accesses_without_extents() {
        let mut m = LmiMechanism::default_config();
        let ctx = MemAccessCtx {
            space: MemSpace::Const,
            raw: 0x28,
            vaddr: 0x28,
            width: 8,
            is_store: false,
            global_tid: 0,
            pc: 0,
            lane: 0,
            issue_index: 0,
        };
        assert_eq!(m.on_mem_access(&ctx), MemCheck::allow());
    }
}
