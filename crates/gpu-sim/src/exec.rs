//! Pure functional ALU semantics, shared by the SM issue logic and unit
//! tests.

use lmi_isa::Opcode;

/// Computes a 32-bit integer-ALU result.
///
/// # Panics
///
/// Panics on opcodes that are not 32-bit integer operations.
pub fn alu32(op: Opcode, a: u32, b: u32, c: u32) -> u32 {
    match op {
        Opcode::Iadd3 => a.wrapping_add(b).wrapping_add(c),
        Opcode::Imad => a.wrapping_mul(b).wrapping_add(c),
        Opcode::Mov => a,
        Opcode::Imnmx => {
            if c == 0 {
                (a as i32).min(b as i32) as u32
            } else {
                (a as i32).max(b as i32) as u32
            }
        }
        Opcode::Shl => a.wrapping_shl(b & 31),
        Opcode::Shr => a.wrapping_shr(b & 31),
        Opcode::And => a & b,
        Opcode::Or => a | b,
        Opcode::Xor => a ^ b,
        Opcode::Lop3 => a ^ b ^ c,
        Opcode::Popc => a.count_ones(),
        other => panic!("{other} is not a 32-bit integer op"),
    }
}

/// Computes a 64-bit (register-pair) integer result.
///
/// * `IADD64`: `a + b`;
/// * `MOV64`: `a`;
/// * `LEA64`: `a + (sext(b as i32) << c)`.
///
/// # Panics
///
/// Panics on non-wide opcodes.
pub fn alu64(op: Opcode, a: u64, b: u64, c: u64) -> u64 {
    match op {
        Opcode::Iadd64 => a.wrapping_add(b),
        Opcode::Mov64 => a,
        Opcode::Lea64 => a.wrapping_add(((b as u32 as i32) as i64 as u64).wrapping_shl(c as u32)),
        other => panic!("{other} is not a wide integer op"),
    }
}

/// Computes an FPU result on f32 bit patterns.
///
/// # Panics
///
/// Panics on non-FPU opcodes.
pub fn fpu(op: Opcode, a: u32, b: u32, c: u32) -> u32 {
    let (fa, fb, fc) = (f32::from_bits(a), f32::from_bits(b), f32::from_bits(c));
    let r = match op {
        Opcode::Fadd => fa + fb,
        Opcode::Fmul => fa * fb,
        Opcode::Ffma => fa.mul_add(fb, fc),
        Opcode::Mufu => 1.0 / fa,
        other => panic!("{other} is not an FPU op"),
    };
    r.to_bits()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_semantics() {
        assert_eq!(alu32(Opcode::Iadd3, 1, 2, 3), 6);
        assert_eq!(alu32(Opcode::Imad, 3, 4, 5), 17);
        assert_eq!(alu32(Opcode::Iadd3, u32::MAX, 1, 0), 0, "wrapping");
        assert_eq!(alu32(Opcode::Imnmx, 5, 3, 0), 3);
        assert_eq!(alu32(Opcode::Imnmx, 5, 3, 1), 5);
        assert_eq!(alu32(Opcode::Imnmx, (-5i32) as u32, 3, 0), (-5i32) as u32);
        assert_eq!(alu32(Opcode::Shl, 1, 4, 0), 16);
        assert_eq!(alu32(Opcode::Shr, 0x80000000, 31, 0), 1);
        assert_eq!(alu32(Opcode::And, 0b1100, 0b1010, 0), 0b1000);
        assert_eq!(alu32(Opcode::Popc, 0xFF, 0, 0), 8);
    }

    #[test]
    fn wide_semantics() {
        assert_eq!(alu64(Opcode::Iadd64, 0x1_0000_0000, 0xFFFF_FFFF, 0), 0x1_FFFF_FFFF);
        assert_eq!(alu64(Opcode::Mov64, 42, 0, 0), 42);
        assert_eq!(alu64(Opcode::Lea64, 0x1000, 4, 3), 0x1000 + 32);
        // Negative LEA index sign-extends.
        assert_eq!(alu64(Opcode::Lea64, 0x1000, (-1i32) as u32 as u64, 2), 0x1000 - 4);
    }

    #[test]
    fn fpu_semantics() {
        let two = 2.0f32.to_bits();
        let three = 3.0f32.to_bits();
        assert_eq!(f32::from_bits(fpu(Opcode::Fadd, two, three, 0)), 5.0);
        assert_eq!(f32::from_bits(fpu(Opcode::Fmul, two, three, 0)), 6.0);
        assert_eq!(f32::from_bits(fpu(Opcode::Ffma, two, three, two)), 8.0);
        assert_eq!(f32::from_bits(fpu(Opcode::Mufu, two, 0, 0)), 0.5);
    }
}
