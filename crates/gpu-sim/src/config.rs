//! Simulator configuration (paper Table IV).

use lmi_mem::HierarchyConfig;

/// Warp width (threads per warp).
pub const WARP_SIZE: usize = 32;

/// GPU configuration.
#[derive(Debug, Clone, Copy)]
pub struct GpuConfig {
    /// Number of SM cores (Table IV: 80 @ 2 GHz).
    pub num_sms: usize,
    /// Core clock in GHz (used to convert cycles to time in reports).
    pub clock_ghz: f64,
    /// Warp schedulers per SM (Table IV: 4, GTO).
    pub schedulers_per_sm: usize,
    /// Maximum resident warps per SM.
    pub max_warps_per_sm: usize,
    /// Memory hierarchy parameters.
    pub hierarchy: HierarchyConfig,
    /// Per-thread local (stack) window in bytes.
    pub stack_bytes: u64,
    /// Integer-ALU latency in cycles.
    pub int_latency: u32,
    /// FPU latency in cycles.
    pub fpu_latency: u32,
    /// Constant-cache access latency in cycles.
    pub const_latency: u32,
    /// Latency of a device-runtime `malloc`/`free` call in cycles.
    pub heap_call_latency: u32,
    /// Worker threads for the parallel engine (`crate::engine`). `0` means
    /// "auto": honor the `LMI_SIM_THREADS` environment variable if set,
    /// otherwise run serially. Any value is clamped to `num_sms`. The
    /// engine is deterministic: every thread count produces bit-identical
    /// [`crate::stats::SimStats`].
    pub sim_threads: usize,
    /// Number of address-interleaved memory banks the shared L2 + MSHR +
    /// DRAM + backing store shard into (`crate::engine`'s bank-parallel
    /// apply). `0` means "auto": honor the `LMI_MEM_BANKS` environment
    /// variable if set, otherwise run monolithic (1 bank). Any value is
    /// clamped to the largest count the hierarchy geometry supports
    /// ([`lmi_mem::max_supported_banks`]). Like `sim_threads`, the setting
    /// is perf-only: every bank count produces bit-identical
    /// [`crate::stats::SimStats`].
    pub mem_banks: usize,
    /// Cycles of the LSU front-end (operand collection + address
    /// generation) that overlap the OCU's pipelined verdict: a dependent
    /// memory access only stalls for `max(0, verdict - ready - overlap)`
    /// extra cycles. With the paper's 3-cycle OCU and a ≥3-stage LSU
    /// front end, the verdict arrives in time — the reason LMI's overhead
    /// is near zero (§XI-A). Set to 0 for the no-overlap ablation.
    pub lsu_verdict_overlap: u32,
    /// Stop the faulting warp when a mechanism reports a violation.
    pub halt_on_violation: bool,
    /// Sampling-profiler period in simulated cycles; `0` (the default)
    /// disables sampling. Every `sample_period` cycles each SM records
    /// its warp states, stall reasons and executing PCs into
    /// [`crate::stats::SimStats::profile`]. Samples are taken in phase A
    /// from SM-local state and absorbed canonically in the apply phase,
    /// so profiles are bit-identical across `sim_threads`.
    pub sample_period: u64,
}

impl GpuConfig {
    /// The paper's Table IV configuration.
    pub fn table4() -> GpuConfig {
        GpuConfig {
            num_sms: 80,
            clock_ghz: 2.0,
            schedulers_per_sm: 4,
            max_warps_per_sm: 64,
            hierarchy: HierarchyConfig::table4(80),
            stack_bytes: lmi_mem::layout::DEFAULT_STACK_BYTES,
            int_latency: 4,
            fpu_latency: 4,
            const_latency: 8,
            heap_call_latency: 600,
            sim_threads: 0,
            mem_banks: 0,
            lsu_verdict_overlap: 3,
            halt_on_violation: false,
            sample_period: 0,
        }
    }

    /// A scaled-down configuration (8 SMs) with identical per-SM parameters,
    /// used where full-chip simulation would be needlessly slow. Normalized
    /// overheads are preserved because all latency ratios are unchanged.
    pub fn small() -> GpuConfig {
        let mut cfg = GpuConfig::table4();
        cfg.num_sms = 8;
        cfg.hierarchy = HierarchyConfig::table4(8);
        cfg
    }

    /// `small()` plus violation halting — the security-suite configuration.
    pub fn security() -> GpuConfig {
        let mut cfg = GpuConfig::small();
        cfg.num_sms = 1;
        cfg.hierarchy = HierarchyConfig::table4(1);
        cfg.halt_on_violation = true;
        cfg
    }

    /// Returns a copy with an explicit worker-thread count (`1` = serial).
    pub fn with_sim_threads(mut self, threads: usize) -> GpuConfig {
        self.sim_threads = threads;
        self
    }

    /// Returns a copy with the sampling profiler enabled at `period`
    /// cycles (`0` disables it again).
    pub fn with_sample_period(mut self, period: u64) -> GpuConfig {
        self.sample_period = period;
        self
    }

    /// Returns a copy with an explicit memory-bank count (`1` = monolithic).
    pub fn with_mem_banks(mut self, banks: usize) -> GpuConfig {
        self.mem_banks = banks;
        self
    }

    /// Resolves [`GpuConfig::sim_threads`] to an effective worker count:
    /// an explicit setting wins, then the `LMI_SIM_THREADS` environment
    /// variable, then serial; the result is clamped to `num_sms` (a worker
    /// without an SM would only spin on barriers).
    pub fn resolve_sim_threads(&self) -> usize {
        let requested = if self.sim_threads != 0 {
            self.sim_threads
        } else {
            std::env::var("LMI_SIM_THREADS")
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|&n| n > 0)
                .unwrap_or(1)
        };
        requested.clamp(1, self.num_sms.max(1))
    }

    /// Resolves [`GpuConfig::mem_banks`] to an effective bank count: an
    /// explicit setting wins, then the `LMI_MEM_BANKS` environment
    /// variable, then monolithic; the result is clamped to the largest
    /// count the hierarchy geometry supports (banks must divide the L2 set
    /// count and the DRAM channel count evenly).
    pub fn resolve_mem_banks(&self) -> usize {
        let requested = if self.mem_banks != 0 {
            self.mem_banks
        } else {
            std::env::var("LMI_MEM_BANKS")
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|&n| n > 0)
                .unwrap_or(1)
        };
        lmi_mem::max_supported_banks(&self.hierarchy, requested)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_matches_the_paper() {
        let c = GpuConfig::table4();
        assert_eq!(c.num_sms, 80);
        assert_eq!(c.clock_ghz, 2.0);
        assert_eq!(c.schedulers_per_sm, 4);
        assert_eq!(c.hierarchy.l1.capacity_bytes, 96 * 1024);
        assert_eq!(c.hierarchy.l2.ways, 24);
    }

    #[test]
    fn sim_threads_resolution_clamps_to_sm_count() {
        let cfg = GpuConfig::small().with_sim_threads(3);
        assert_eq!(cfg.resolve_sim_threads(), 3);
        assert_eq!(GpuConfig::small().with_sim_threads(64).resolve_sim_threads(), 8);
        assert_eq!(GpuConfig::security().with_sim_threads(8).resolve_sim_threads(), 1);
    }

    #[test]
    fn mem_banks_resolution_clamps_to_geometry() {
        // Table IV: 1536 L2 sets, 32 DRAM channels — powers of two divide
        // both; 5 divides neither, so it clamps down to 4.
        assert_eq!(GpuConfig::small().with_mem_banks(4).resolve_mem_banks(), 4);
        assert_eq!(GpuConfig::small().with_mem_banks(5).resolve_mem_banks(), 4);
        assert_eq!(GpuConfig::small().with_mem_banks(1000).resolve_mem_banks(), 32);
        assert_eq!(GpuConfig::small().with_mem_banks(1).resolve_mem_banks(), 1);
    }

    #[test]
    fn small_preserves_per_sm_parameters() {
        let t = GpuConfig::table4();
        let s = GpuConfig::small();
        assert_eq!(s.hierarchy.l1, t.hierarchy.l1);
        assert_eq!(s.hierarchy.l2, t.hierarchy.l2);
        assert_eq!(s.int_latency, t.int_latency);
    }
}
