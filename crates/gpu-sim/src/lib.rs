//! # lmi-sim — a cycle-level SIMT GPU simulator
//!
//! The evaluation substrate standing in for MacSim (paper §X): an in-order
//! SIMT simulator with the Table IV configuration — 80 SM cores, four
//! greedy-then-oldest warp schedulers per SM, a per-warp register
//! scoreboard for latency hiding, a coalescing load/store unit, per-SM L1s,
//! a shared L2 and an HBM DRAM model (from `lmi-mem`).
//!
//! Memory-safety mechanisms plug in through the [`Mechanism`] trait:
//!
//! * integer-ALU results of hint-marked instructions pass through
//!   [`Mechanism::on_marked_int`] — where LMI's OCU lives;
//! * every memory access passes through [`Mechanism::on_mem_access`] —
//!   where LMI's EC and GPUShield's RCache live.
//!
//! Software mechanisms (Baggy Bounds, DBI) need no hooks at all: they
//! rewrite the program and their cost emerges from executing the extra
//! instructions.
//!
//! ## Example
//!
//! ```
//! use lmi_sim::{Gpu, GpuConfig, Launch, LmiMechanism};
//! use lmi_isa::{Instruction, ProgramBuilder, Reg};
//!
//! let mut b = ProgramBuilder::new("noop");
//! b.push(Instruction::exit());
//! let program = b.build();
//!
//! let mut gpu = Gpu::new(GpuConfig::small());
//! let stats = gpu.run(
//!     &Launch::new(program).grid(2).block(64),
//!     &mut LmiMechanism::default_config(),
//! );
//! assert!(stats.cycles > 0);
//! ```

pub mod config;
pub(crate) mod engine;
pub mod exec;
pub mod gpu;
pub mod host;
pub mod launch;
pub mod lsu;
pub mod mechanism;
pub mod sm;
pub mod stats;
pub mod trace;
pub mod warp;

pub use config::GpuConfig;
pub use gpu::{Gpu, KernelOutcome, MemorySnapshot, ResidentKernel, ResidentOutcome};
pub use host::HostContext;
pub use launch::{Launch, LaunchError};
pub use mechanism::{IntCheck, LmiMechanism, Mechanism, MemAccessCtx, MemCheck, NullMechanism};
pub use stats::{SimStats, StallBreakdown, ViolationEvent};
