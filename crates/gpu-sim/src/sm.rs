//! The streaming multiprocessor: warp schedulers, issue, and execution.
//!
//! Execution of one cycle is split into three phases so the engine
//! (`crate::engine`) can run SMs on worker threads while staying
//! bit-identical to serial execution:
//!
//! * **Phase A** (`Sm::step_phase_a`) — scheduling, operand fetch, ALU
//!   execution, address generation, and the SM-local L1 probe. Touches
//!   *only* this SM's state (warps, decoded stream, launch context, its
//!   own L1), so any number of SMs can run phase A concurrently. L1 hits
//!   never cross the barrier; L1-missed lines and per-lane data movement
//!   are routed into per-bank queues (`BankReq`) for the bank-parallel
//!   apply. Operations that must touch genuinely global state (the device
//!   heap, the mechanism, statistics, telemetry) are recorded as
//!   `SharedOp`s on the cycle's `IssueEvent` list.
//! * **Phase B** (`engine`) — a thin leader step walks every SM's events
//!   in canonical (sm, scheduler) order: mechanism checks (producing a
//!   `MemVerdict` per memory op), heap calls, stats/counter/tracer
//!   absorption. Then the address-interleaved memory banks apply their
//!   queues concurrently — each bank in canonical order, so cache hit/miss
//!   sequences, heap allocation order, counters and forensics are
//!   independent of both the thread count and the bank count.
//! * **Phase C** (`Sm::apply_results`) — each SM (again concurrently)
//!   writes the phase-B results back into its warps: register writes,
//!   scoreboard ready times, pc advance, retirement, barrier release.
//!   Memory-op timing is assembled here from the bank-written atomics.
//!
//! Deferred results only become architecturally visible at the next cycle
//! (loads have multi-cycle latency; the issuing warp cannot issue again
//! this cycle), so deferring them within the cycle does not change what any
//! phase-A code can observe — the equivalence argument for determinism.
//!
//! ## Allocation discipline
//!
//! The cycle loop is **allocation-free in steady state** (audited by
//! `tests/alloc_audit.rs`): instructions come pre-decoded from an
//! [`lmi_isa::DecodedStream`] lowered once at launch, the GTO scheduler
//! iterates its warp slice in place instead of collecting candidate lists,
//! lane sets walk the execution mask bit-by-bit, and every deferred-op
//! payload (`SharedOp`/`OpResult` lane and line lists) is drawn from the
//! per-SM `EventPool` and returned to it after application.

use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::sync::Arc;

use lmi_core::ptr::ADDR_MASK;
use lmi_isa::{abi, DecodedInstr, DecodedStream, MemSpace, Opcode, OpcodeClass, Operand, Reg};
use lmi_mem::{layout, BankRouter, Cache};
use lmi_telemetry::{SmSample, WarpState};

use crate::config::{GpuConfig, WARP_SIZE};
use crate::exec;
use crate::launch::Launch;
use crate::lsu::coalesce_into;
use crate::warp::{LaneMask, Warp};

/// Per-launch context needed to resolve constant-bank reads.
#[derive(Debug, Clone)]
pub(crate) struct LaunchCtx {
    pub params: Vec<u64>,
    pub stack_bytes: u64,
    pub threads_per_block: usize,
    /// Offset added to a thread's global tid when *backing* its local
    /// window. Semantic ids (tid.x, ctaid.x) are untouched; resident
    /// multi-kernel runs use distinct bases so concurrent kernels' stacks
    /// land in disjoint windows of the functional store.
    pub layout_tid_base: u64,
    /// Same idea for shared-memory windows, in block units.
    pub layout_block_base: u64,
}

impl LaunchCtx {
    fn const_read(&self, block: usize, gtid: u64, offset: u16, width: u8) -> u64 {
        let value = match offset {
            abi::STACK_TOP_OFFSET => {
                layout::local_window_base(gtid + self.layout_tid_base, self.stack_bytes)
                    + self.stack_bytes
            }
            abi::SHARED_BASE_OFFSET => {
                layout::shared_window_base(block as u64 + self.layout_block_base)
            }
            o if o >= abi::PARAM_BASE_OFFSET => {
                let index = ((o - abi::PARAM_BASE_OFFSET) / 8) as usize;
                self.params.get(index).copied().unwrap_or(0)
            }
            _ => 0,
        };
        if width <= 4 {
            value & 0xFFFF_FFFF
        } else {
            value
        }
    }
}

/// Per-block barrier bookkeeping, rebuilt-free: one record per resident
/// block, counters reset and re-accumulated in a single pass per phase C.
#[derive(Debug)]
struct BlockBarrier {
    block: usize,
    resident: usize,
    waiting: usize,
    done: usize,
}

/// One streaming multiprocessor.
pub(crate) struct Sm {
    pub id: usize,
    stream: Arc<DecodedStream>,
    launch: Arc<LaunchCtx>,
    pub warps: Vec<Warp>,
    /// Greedy warp per scheduler (GTO: greedy-then-oldest).
    greedy: Vec<Option<usize>>,
    /// Blocks resident on this SM (for barrier release).
    blocks: Vec<BlockBarrier>,
    /// First cycle at which every resident warp had retired. Set in phase C
    /// with the cycle both drivers pass in, so it is identical at every
    /// thread count; resident multi-kernel runs use it for per-kernel
    /// completion times.
    pub done_cycle: Option<u64>,
}

/// Why a warp could not issue this cycle (the binding constraint of its
/// next instruction). Feeds [`crate::stats::StallBreakdown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StallReason {
    /// Launch-ramp delay, fell off the program, or no candidate at all.
    NoReadyWarp,
    /// Waiting on an ALU-produced register or predicate.
    Scoreboard,
    /// Waiting on an in-flight memory result.
    LsuBusy,
    /// Waiting on a pending OCU verdict (paper §XI-C pipeline delay).
    OcuVerdict,
}

impl StallReason {
    /// Index into [`CycleEvents::stalls`].
    pub fn index(self) -> usize {
        match self {
            StallReason::Scoreboard => 0,
            StallReason::LsuBusy => 1,
            StallReason::OcuVerdict => 2,
            StallReason::NoReadyWarp => 3,
        }
    }
}

/// One lane of a deferred memory access.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LaneMem {
    pub lane: usize,
    /// Raw register value plus offset (may carry extent bits).
    pub raw: u64,
    /// Virtual address after metadata stripping.
    pub vaddr: u64,
    /// Address used for coalescing/timing (local-space interleaving).
    pub timing_addr: u64,
    /// Store data (zero for loads).
    pub store_value: u64,
}

/// A shared-state operation deferred from phase A to phase B.
#[derive(Debug)]
pub(crate) enum SharedOp {
    /// A hint-marked wide integer op with at least one active lane: the
    /// mechanism's OCU check runs in phase B. `(lane, input, raw_result)`.
    MarkedInt { dst: Reg, pair: bool, lanes: Vec<(usize, u64, u64)> },
    /// A device-heap call. `(lane, size_or_ptr)`.
    Heap { dst: Reg, pair: bool, malloc: bool, lanes: Vec<(usize, u64)> },
    /// A non-constant memory access. Timing and data movement were routed
    /// into the per-bank queues during phase A; the leader's B-check only
    /// runs the mechanism and accounting on `lanes`.
    Mem {
        dst: Reg,
        pair: bool,
        width: u8,
        is_store: bool,
        space: MemSpace,
        lanes: Vec<LaneMem>,
        /// Coalesced line count (1 for shared-space ops): the transaction
        /// count charged by the B-check.
        line_count: u64,
        /// At least one coalesced line hit the SM-local L1 in phase A.
        l1_hit: bool,
        /// Bank-queue entries this op contributed (fills + moves), for the
        /// `phase_b_banked_items` stat.
        bank_items: u32,
        /// Per-lane load data, OR-combined by the owning bank(s); indexed
        /// like `lanes`. Empty for stores.
        atoms: Vec<AtomicU64>,
    },
}

/// One entry of a per-SM per-bank queue, enqueued during phase A and
/// applied by the owning bank's worker in canonical (SM, issue, queue)
/// order. `op` indexes the SM's [`CycleEvents::issues`] list; addresses
/// are bank-compacted ([`BankRouter::localize`]).
#[derive(Debug, Clone, Copy)]
pub(crate) enum BankReq {
    /// Timing: an L1-missed coalesced line fill through the bank's
    /// L2/MSHR/DRAM slice.
    Fill { op: u32, local: u64 },
    /// Functional: one lane's data movement (one part of it, if the access
    /// straddles a line boundary). For stores `value` carries the
    /// pre-shifted store bytes; for loads the bank ORs
    /// `read(local, width) << 8*shift` into the op's lane atom.
    Move { op: u32, lane_pos: u16, local: u64, width: u8, shift: u8, value: u64 },
}

/// The leader B-check's verdict on one memory op, consumed by the bank
/// passes (gating) and phase C (assembly).
#[derive(Debug, Clone, Copy)]
pub(crate) struct MemVerdict {
    /// Lanes that passed the mechanism check.
    pub survivors: LaneMask,
    /// The op faulted under `halt_on_violation`: no timing, no data
    /// movement, the warp halts.
    pub cancelled: bool,
    /// Extra completion latency charged by the mechanism.
    pub extra_cycles: u32,
}

/// Phase-B outcome of a deferred op, applied to the warp in phase C.
#[derive(Debug, Clone)]
pub(crate) struct OpResult {
    pub dst: Reg,
    pub pair: bool,
    /// 8 ⇒ `write64` per lane, else 32-bit `write`.
    pub write_width: u8,
    pub writes: Vec<(usize, u64)>,
    pub ready_at: Option<u64>,
    pub verdict_at: Option<u64>,
    pub ready_mem_at: Option<u64>,
    pub advance_pc: bool,
    /// Halt the warp (violation with `halt_on_violation`).
    pub retire: bool,
}

/// One warp-level issue, recorded in phase A for phase B's canonical walk.
#[derive(Debug)]
pub(crate) struct IssueEvent {
    pub warp: usize,
    /// pc of the issued instruction (pre-advance).
    pub pc: usize,
    /// `None`: the warp fell off the program end and retired instead.
    pub opcode: Option<Opcode>,
    pub activate: bool,
    /// Set for every memory instruction, including the locally-executed
    /// constant loads (phase B owns all `SimStats` accounting).
    pub mem_space: Option<MemSpace>,
    pub base_tid: u64,
    pub block: usize,
    pub start_cycle: u64,
    /// Warp retired during phase A (local exit path).
    pub retired_local: bool,
    pub shared: Option<SharedOp>,
    pub result: Option<OpResult>,
    /// B-check verdict for a deferred memory op (`None` otherwise).
    pub verdict: Option<MemVerdict>,
    /// Completion cycle of this op's metadata fetches (`fetch_max`ed by the
    /// banks' metadata pass; 0 when the mechanism fetched none). Atomic
    /// because several banks may fetch for one op concurrently.
    pub meta_done: AtomicU64,
    /// Completion cycle of this op's slowest L1-missed line fill
    /// (`fetch_max`ed by the banks' data pass; 0 when every line hit L1).
    pub data_done: AtomicU64,
}

/// Typed freelists for the deferred-op payload buffers. Phase A draws
/// empty (but capacity-retaining) `Vec`s, phase B/C return them after
/// consumption, so in steady state no cycle touches the heap. Each SM owns
/// one pool inside its [`CycleEvents`]; the single-leader apply phase has
/// exclusive access to the owning SM's pool while applying its events.
#[derive(Debug, Default)]
pub(crate) struct EventPool {
    lane_mem: Vec<Vec<LaneMem>>,
    pairs: Vec<Vec<(usize, u64)>>,
    triples: Vec<Vec<(usize, u64, u64)>>,
    lines: Vec<Vec<u64>>,
    atoms: Vec<Vec<AtomicU64>>,
}

impl EventPool {
    pub fn take_lane_mem(&mut self) -> Vec<LaneMem> {
        self.lane_mem.pop().unwrap_or_default()
    }

    pub fn put_lane_mem(&mut self, mut v: Vec<LaneMem>) {
        v.clear();
        self.lane_mem.push(v);
    }

    pub fn take_pairs(&mut self) -> Vec<(usize, u64)> {
        self.pairs.pop().unwrap_or_default()
    }

    pub fn put_pairs(&mut self, mut v: Vec<(usize, u64)>) {
        v.clear();
        self.pairs.push(v);
    }

    pub fn take_triples(&mut self) -> Vec<(usize, u64, u64)> {
        self.triples.pop().unwrap_or_default()
    }

    pub fn put_triples(&mut self, mut v: Vec<(usize, u64, u64)>) {
        v.clear();
        self.triples.push(v);
    }

    pub fn take_lines(&mut self) -> Vec<u64> {
        self.lines.pop().unwrap_or_default()
    }

    pub fn put_lines(&mut self, mut v: Vec<u64>) {
        v.clear();
        self.lines.push(v);
    }

    pub fn take_atoms(&mut self) -> Vec<AtomicU64> {
        self.atoms.pop().unwrap_or_default()
    }

    pub fn put_atoms(&mut self, mut v: Vec<AtomicU64>) {
        v.clear();
        self.atoms.push(v);
    }
}

/// Everything one SM produced in one cycle.
#[derive(Debug, Default)]
pub(crate) struct CycleEvents {
    pub issues: Vec<IssueEvent>,
    /// Idle scheduler-slot counts, indexed by [`StallReason::index`].
    pub stalls: [u64; 4],
    /// Profiler sample taken this cycle (phase A, SM-local), absorbed by
    /// the apply phase into the kernel's profile. `None` when sampling is
    /// off or the cycle is not on the period.
    pub sample: Option<SmSample>,
    /// Recycled payload buffers; survives `clear()` by design.
    pub pool: EventPool,
    /// Per-bank request queues filled during phase A and drained by the
    /// banks' apply passes, in canonical intra-SM order. Sized once per
    /// run ([`CycleEvents::ensure_banks`]); inner capacity survives
    /// `clear()` so the steady state stays allocation-free.
    pub bank_q: Vec<Vec<BankReq>>,
}

impl CycleEvents {
    pub fn clear(&mut self) {
        self.issues.clear();
        self.stalls = [0; 4];
        self.sample = None;
        for q in &mut self.bank_q {
            q.clear();
        }
    }

    /// Sizes the per-bank queues for `banks` banks (run start).
    pub fn ensure_banks(&mut self, banks: usize) {
        if self.bank_q.len() != banks {
            self.bank_q.resize_with(banks, Vec::new);
        }
    }
}

impl IssueEvent {
    /// Completion cycle of a deferred memory op, assembled from the
    /// bank-written atomics: metadata fetches gate the access start
    /// (check-before-access), then the slowest of the bank fills, the
    /// SM-local L1 hit path and the shared-memory path completes it, plus
    /// the mechanism's extra latency. `None` for non-memory events and for
    /// cancelled (halting) accesses.
    pub fn mem_done_at(&self, now: u64, cfg: &GpuConfig) -> Option<u64> {
        let Some(SharedOp::Mem { space, l1_hit, .. }) = &self.shared else {
            return None;
        };
        let v = self.verdict.as_ref()?;
        if v.cancelled {
            return None;
        }
        let start = now.max(self.meta_done.load(SeqCst));
        let mut done = start.max(self.data_done.load(SeqCst));
        if *l1_hit {
            done = done.max(start + cfg.hierarchy.l1.hit_latency as u64);
        }
        if *space == MemSpace::Shared {
            done = done.max(start + cfg.hierarchy.shared_latency as u64);
        }
        Some(done + v.extra_cycles as u64)
    }
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct StepOutcome {
    pub issued_any: bool,
    /// Earliest future cycle at which a stalled warp could issue.
    pub next_ready: u64,
}

impl Sm {
    pub fn new(id: usize, stream: Arc<DecodedStream>, ctx: Arc<LaunchCtx>) -> Sm {
        Sm {
            id,
            stream,
            launch: ctx,
            warps: Vec::new(),
            greedy: Vec::new(),
            blocks: Vec::new(),
            done_cycle: None,
        }
    }

    /// Adds the warps of block `block` to this SM.
    pub fn add_block(&mut self, block: usize, launch: &Launch, regs_per_thread: usize) {
        let warps = launch.warps_per_block();
        for w in 0..warps {
            let threads_before = w * WARP_SIZE;
            let active = (launch.threads_per_block - threads_before).min(WARP_SIZE);
            let base_tid = (block * launch.threads_per_block + threads_before) as u64;
            let id = self.warps.len();
            let mut warp = Warp::new(id, block, base_tid, regs_per_thread, active);
            // The launch phase selects a different dispatch-stagger pattern,
            // decorrelating warp/program/memory phase alignment between runs.
            warp.start_cycle = ((id as u64 + 1) * (7 + launch.phase * 5)) % 31;
            self.warps.push(warp);
        }
        match self.blocks.iter_mut().find(|b| b.block == block) {
            Some(b) => b.resident += warps,
            None => self.blocks.push(BlockBarrier { block, resident: warps, waiting: 0, done: 0 }),
        }
    }

    pub fn all_done(&self) -> bool {
        self.warps.iter().all(|w| w.done)
    }

    /// Phase A of one cycle: each scheduler issues at most one instruction
    /// (GTO pick), executing SM-local work immediately — including the
    /// probe of this SM's own L1 (`l1`) — and recording shared-state work
    /// into `out` (bank-routed via `router`). Reads no shared state.
    pub fn step_phase_a(
        &mut self,
        now: u64,
        cfg: &GpuConfig,
        out: &mut CycleEvents,
        l1: &mut Cache,
        router: &BankRouter,
    ) -> StepOutcome {
        out.clear();
        if self.greedy.len() != cfg.schedulers_per_sm {
            self.greedy = vec![None; cfg.schedulers_per_sm];
        }
        // One atomic refcount bump per SM-cycle buys `&DecodedStream`
        // borrows inside `&mut self` methods.
        let stream = Arc::clone(&self.stream);
        let mut issued_any = false;
        let mut next_ready = u64::MAX;
        let nwarps = self.warps.len();

        for sched in 0..cfg.schedulers_per_sm {
            // GTO: greedy warp first, then oldest — examined in place, in
            // exactly the order the old candidate-list walk used, stopping
            // at the first ready warp (later candidates are never probed,
            // so they feed neither `next_ready` nor stall attribution).
            let greedy = self.greedy[sched].filter(|&g| {
                let w = &self.warps[g];
                !w.done && !w.at_barrier
            });
            let mut any_candidate = false;
            let mut picked = None;
            // Stall attribution: the binding constraint of the candidate
            // that would issue soonest.
            let mut soonest: Option<(u64, StallReason)> = None;
            if let Some(g) = greedy {
                any_candidate = true;
                let (r, reason) = self.ready_info(g, cfg.lsu_verdict_overlap);
                if r <= now {
                    picked = Some(g);
                } else {
                    next_ready = next_ready.min(r);
                    soonest = Some((r, reason));
                }
            }
            if picked.is_none() {
                let mut w = sched;
                while w < nwarps {
                    if Some(w) != greedy {
                        let warp = &self.warps[w];
                        if !warp.done && !warp.at_barrier {
                            any_candidate = true;
                            let (r, reason) = self.ready_info(w, cfg.lsu_verdict_overlap);
                            if r <= now {
                                picked = Some(w);
                                break;
                            }
                            next_ready = next_ready.min(r);
                            if soonest.is_none_or(|(s, _)| r < s) {
                                soonest = Some((r, reason));
                            }
                        }
                    }
                    w += cfg.schedulers_per_sm;
                }
            }
            if !any_candidate {
                // At a barrier (or between blocks): the slot idles with no
                // candidate, but only count it while work remains.
                let mut w = sched;
                let mut any_live = false;
                while w < nwarps {
                    if !self.warps[w].done {
                        any_live = true;
                        break;
                    }
                    w += cfg.schedulers_per_sm;
                }
                if any_live {
                    out.stalls[StallReason::NoReadyWarp.index()] += 1;
                }
                continue;
            }
            match picked {
                Some(w) => {
                    let CycleEvents { issues, pool, bank_q, .. } = out;
                    let op_idx = issues.len() as u32;
                    let ev =
                        self.issue_phase_a(&stream, w, now, cfg, pool, bank_q, op_idx, l1, router);
                    issues.push(ev);
                    self.greedy[sched] = Some(w);
                    issued_any = true;
                    // The warp can issue again next cycle (in-order).
                    next_ready = next_ready.min(now + 1);
                }
                None => {
                    let reason = soonest.map(|(_, r)| r).unwrap_or(StallReason::NoReadyWarp);
                    out.stalls[reason.index()] += 1;
                }
            }
        }

        if cfg.sample_period > 0 && now.is_multiple_of(cfg.sample_period) {
            out.sample = Some(self.sample_warps(now, cfg, &out.issues));
        }

        StepOutcome { issued_any, next_ready }
    }

    /// Classifies every resident warp for the sampling profiler. Runs in
    /// phase A on SM-local state only (warp flags, scoreboard times, this
    /// cycle's issue list), so the sample is independent of other SMs and
    /// of the worker-thread count.
    fn sample_warps(&self, now: u64, cfg: &GpuConfig, issues: &[IssueEvent]) -> SmSample {
        let mut sample = SmSample::default();
        for (w, warp) in self.warps.iter().enumerate() {
            let state = if warp.done {
                WarpState::Retired
            } else if warp.at_barrier {
                WarpState::Barrier
            } else if let Some(ev) = issues.iter().find(|ev| ev.warp == w) {
                sample.pcs.push((ev.pc as u32, 1));
                WarpState::Issued
            } else {
                let (r, reason) = self.ready_info(w, cfg.lsu_verdict_overlap);
                if r == u64::MAX {
                    // Fell off the program end; retires at next issue.
                    WarpState::Retired
                } else if r <= now {
                    // Eligible, but this cycle's scheduler slots went to
                    // greedier/older warps.
                    WarpState::Ready
                } else {
                    match reason {
                        StallReason::Scoreboard => WarpState::Scoreboard,
                        StallReason::LsuBusy => WarpState::LsuBusy,
                        StallReason::OcuVerdict => WarpState::OcuVerdict,
                        // Only the dispatch ramp leaves no binding hazard.
                        StallReason::NoReadyWarp => WarpState::Ramp,
                    }
                }
            };
            sample.states[state.index()] += 1;
        }
        sample
    }

    /// Phase C: applies phase-B results to the warps (in issue order) and
    /// releases block barriers — the tail of what the serial step used to
    /// do after executing each instruction. Memory-op completion times are
    /// assembled here from the bank-written atomics (SM-local again, so
    /// phase C stays fully parallel). `now` stamps `done_cycle` the first
    /// time the SM drains.
    pub fn apply_results(&mut self, events: &mut CycleEvents, now: u64, cfg: &GpuConfig) {
        let CycleEvents { issues, pool, .. } = events;
        for ev in issues.iter_mut() {
            // Completion time first: `mem_done_at` borrows the shared op
            // this branch consumes.
            let mem_done = ev.mem_done_at(now, cfg);
            if let Some(SharedOp::Mem { dst, pair, width, is_store, lanes, atoms, .. }) =
                ev.shared.take()
            {
                let v = ev.verdict.expect("mem op carries a B-check verdict");
                let warp = &mut self.warps[ev.warp];
                if v.cancelled {
                    // The faulting access never issues: no pc advance, the
                    // warp halts (`halt_on_violation`).
                    warp.stack.clear();
                    warp.retire_lanes(warp.mask);
                } else {
                    if !is_store {
                        let done = mem_done.expect("live mem op has a completion time");
                        for (pos, lm) in lanes.iter().enumerate() {
                            if v.survivors & (1 << lm.lane) != 0 {
                                let value = atoms[pos].load(SeqCst);
                                if width == 8 {
                                    warp.write64(lm.lane, dst, value);
                                } else {
                                    warp.write(lm.lane, dst, value as u32);
                                }
                            }
                        }
                        warp.set_ready_at_mem(dst, done);
                        if pair {
                            warp.set_ready_at_mem(dst.pair_high(), done);
                        }
                    }
                    warp.pc += 1;
                }
                pool.put_lane_mem(lanes);
                pool.put_atoms(atoms);
            }
            if let Some(mut r) = ev.result.take() {
                let warp = &mut self.warps[ev.warp];
                for &(l, v) in &r.writes {
                    if r.write_width == 8 {
                        warp.write64(l, r.dst, v);
                    } else {
                        warp.write(l, r.dst, v as u32);
                    }
                }
                pool.put_pairs(std::mem::take(&mut r.writes));
                if let Some(t) = r.ready_at {
                    warp.set_ready_at(r.dst, t);
                    if r.pair {
                        warp.set_ready_at(r.dst.pair_high(), t);
                    }
                }
                if let Some(t) = r.verdict_at {
                    warp.set_verdict_at(r.dst, t);
                    if r.pair {
                        warp.set_verdict_at(r.dst.pair_high(), t);
                    }
                }
                if let Some(t) = r.ready_mem_at {
                    warp.set_ready_at_mem(r.dst, t);
                    if r.pair {
                        warp.set_ready_at_mem(r.dst.pair_high(), t);
                    }
                }
                if r.advance_pc {
                    warp.pc += 1;
                }
                if r.retire {
                    warp.stack.clear();
                    warp.retire_lanes(warp.mask);
                }
            }
        }
        self.release_barriers();
        if self.done_cycle.is_none() && !self.warps.is_empty() && self.all_done() {
            self.done_cycle = Some(now);
        }
    }

    /// Earliest cycle at which warp `w`'s next instruction can issue, and
    /// the constraint that binds (for stall attribution when it is in the
    /// future).
    fn ready_info(&self, w: usize, verdict_overlap: u32) -> (u64, StallReason) {
        let warp = &self.warps[w];
        let di = match self.stream.get(warp.pc) {
            Some(d) => d,
            // Fell off the program: treated as exit at issue.
            None => return (u64::MAX, StallReason::NoReadyWarp),
        };
        // The launch/dispatch ramp: not a pipeline hazard.
        let mut ready = warp.start_cycle;
        let mut reason = StallReason::NoReadyWarp;
        for &r in di.source_regs() {
            let t = warp.ready_at(r);
            if t > ready {
                ready = t;
                reason = if warp.mem_pending_at(r, t) {
                    StallReason::LsuBusy
                } else {
                    StallReason::Scoreboard
                };
            }
        }
        if di.opcode.is_mem() && di.opcode != Opcode::Ldc {
            // The LSU's EC consumes the final (possibly poisoned) extent, so
            // it must wait for the OCU verdict on the address registers.
            if let Some(mem) = &di.mem {
                let mut verdict = warp.verdict_at(mem.addr);
                if di.mem_addr_pair {
                    verdict = verdict.max(warp.verdict_at(mem.addr.pair_high()));
                }
                let v = verdict.saturating_sub(verdict_overlap as u64);
                if v > ready {
                    ready = v;
                    reason = StallReason::OcuVerdict;
                }
            }
        }
        if let Some(p) = &di.pred {
            let t = warp.pred_ready_at(p.reg);
            if t > ready {
                ready = t;
                reason = StallReason::Scoreboard;
            }
        }
        if di.opcode == Opcode::Isetp {
            // WAW on the destination predicate.
            let t = warp.pred_ready_at(lmi_isa::PredReg(di.dst.0 & 7));
            if t > ready {
                ready = t;
                reason = StallReason::Scoreboard;
            }
        }
        (ready, reason)
    }

    /// Issues warp `w`'s next instruction: local work executes now, shared
    /// work is recorded on the returned event (memory timing/data routed
    /// into `bank_q` under this event's index `op_idx`).
    #[allow(clippy::too_many_arguments)]
    fn issue_phase_a(
        &mut self,
        stream: &DecodedStream,
        w: usize,
        now: u64,
        cfg: &GpuConfig,
        pool: &mut EventPool,
        bank_q: &mut [Vec<BankReq>],
        op_idx: u32,
        l1: &mut Cache,
        router: &BankRouter,
    ) -> IssueEvent {
        let warp = &mut self.warps[w];
        let mut ev = IssueEvent {
            warp: w,
            pc: warp.pc,
            opcode: None,
            activate: false,
            mem_space: None,
            base_tid: warp.base_tid,
            block: warp.block,
            start_cycle: warp.start_cycle,
            retired_local: false,
            shared: None,
            result: None,
            verdict: None,
            meta_done: AtomicU64::new(0),
            data_done: AtomicU64::new(0),
        };
        let di = match stream.get(warp.pc) {
            Some(d) => d,
            None => {
                warp.retire_lanes(warp.mask);
                ev.retired_local = self.warps[w].done;
                return ev;
            }
        };
        warp.last_issue = now;
        ev.opcode = Some(di.opcode);
        ev.activate = di.hints.activate;

        // Per-lane guard predicate. Unpredicated instructions (the common
        // case) take the warp mask verbatim — no per-lane work at all.
        let exec_mask: LaneMask = match di.pred {
            None => warp.mask,
            Some(p) => {
                let mut m: LaneMask = 0;
                let mut bits = warp.mask;
                while bits != 0 {
                    let l = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    if warp.read_pred(l, p.reg) != p.negated {
                        m |= 1 << l;
                    }
                }
                m
            }
        };

        match di.opcode {
            Opcode::Exit => {
                let warp = &mut self.warps[w];
                if exec_mask == 0 {
                    warp.pc += 1;
                } else {
                    warp.retire_lanes(exec_mask);
                }
            }
            Opcode::Nop => self.warps[w].pc += 1,
            Opcode::Bar => {
                let warp = &mut self.warps[w];
                warp.at_barrier = true;
                warp.pc += 1;
            }
            Opcode::Bra => {
                let warp = &mut self.warps[w];
                let target = di.bra_target;
                let active = warp.mask;
                if exec_mask == 0 {
                    warp.pc += 1;
                } else if exec_mask == active {
                    warp.pc = target;
                } else {
                    // Divergence: suspend the fall-through lanes.
                    warp.stack.push((active & !exec_mask, warp.pc + 1));
                    warp.mask = exec_mask;
                    warp.pc = target;
                }
            }
            Opcode::S2r => {
                let warp = &mut self.warps[w];
                let special = di.special;
                let tpb = self.launch.threads_per_block as u64;
                let mut bits = exec_mask;
                while bits != 0 {
                    let l = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let gtid = warp.base_tid + l as u64;
                    let v = match special {
                        lmi_isa::op::SpecialReg::TidX => gtid % tpb,
                        lmi_isa::op::SpecialReg::CtaIdX => gtid / tpb,
                        lmi_isa::op::SpecialReg::NtidX => tpb,
                        lmi_isa::op::SpecialReg::LaneId => l as u64,
                        lmi_isa::op::SpecialReg::WarpId => warp.id as u64,
                    };
                    warp.write(l, di.dst, v as u32);
                }
                warp.set_ready_at(di.dst, now + 2);
                warp.pc += 1;
            }
            Opcode::Isetp => {
                let pred = lmi_isa::PredReg(di.dst.0 & 7);
                let cmp = di.cmp;
                let mut bits = exec_mask;
                while bits != 0 {
                    let l = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let a = self.fetch32(w, l, &di.srcs[0]) as i32 as i64;
                    let b = self.fetch32(w, l, &di.srcs[1]) as i32 as i64;
                    let warp = &mut self.warps[w];
                    warp.write_pred(l, pred, cmp.eval(a, b));
                }
                let warp = &mut self.warps[w];
                warp.set_pred_ready_at(pred, now + 2);
                warp.pc += 1;
            }
            Opcode::Malloc | Opcode::Free => {
                self.issue_heap_phase_a(w, di, exec_mask, &mut ev, pool);
            }
            op if op.class() == OpcodeClass::IntAlu => {
                self.issue_int_phase_a(w, di, exec_mask, now, cfg, &mut ev, pool);
            }
            op if op.class() == OpcodeClass::Fpu => {
                let mut bits = exec_mask;
                while bits != 0 {
                    let l = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let a = self.fetch32(w, l, &di.srcs[0]);
                    let b = self.fetch32(w, l, &di.srcs[1]);
                    let c = self.fetch32(w, l, &di.srcs[2]);
                    let v = exec::fpu(di.opcode, a, b, c);
                    self.warps[w].write(l, di.dst, v);
                }
                let lat =
                    if di.opcode == Opcode::Mufu { cfg.fpu_latency * 2 } else { cfg.fpu_latency };
                let warp = &mut self.warps[w];
                warp.set_ready_at(di.dst, now + lat as u64);
                warp.pc += 1;
            }
            op if op.is_mem() => {
                self.issue_mem_phase_a(
                    w, di, exec_mask, now, cfg, &mut ev, pool, bank_q, op_idx, l1, router,
                );
            }
            other => panic!("unhandled opcode {other}"),
        }
        ev.retired_local = self.warps[w].done;
        ev
    }

    fn fetch32(&self, w: usize, lane: usize, src: &Operand) -> u32 {
        let warp = &self.warps[w];
        match src {
            Operand::None => 0,
            Operand::Reg(r) => warp.read(lane, *r),
            Operand::Imm(v) => *v as u32,
            Operand::Const { offset, .. } => {
                self.launch.const_read(warp.block, warp.base_tid + lane as u64, *offset, 4) as u32
            }
        }
    }

    fn fetch64(&self, w: usize, lane: usize, src: &Operand) -> u64 {
        let warp = &self.warps[w];
        match src {
            Operand::None => 0,
            Operand::Reg(r) => warp.read64(lane, *r),
            Operand::Imm(v) => *v as i64 as u64,
            Operand::Const { offset, .. } => {
                self.launch.const_read(warp.block, warp.base_tid + lane as u64, *offset, 8)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn issue_int_phase_a(
        &mut self,
        w: usize,
        di: &DecodedInstr,
        exec_mask: LaneMask,
        now: u64,
        cfg: &GpuConfig,
        ev: &mut IssueEvent,
        pool: &mut EventPool,
    ) {
        let wide = di.wide;
        if wide && di.hints.activate {
            // The OCU check consults the mechanism — shared state — so the
            // whole writeback defers to phase B.
            let mut checked = pool.take_triples();
            let mut bits = exec_mask;
            while bits != 0 {
                let l = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let a = self.fetch64(w, l, &di.srcs[0]);
                let b = self.fetch64(w, l, &di.srcs[1]);
                let c = match di.srcs[2] {
                    Operand::Imm(v) => v as u64,
                    ref other => self.fetch64(w, l, other),
                };
                let v = exec::alu64(di.opcode, a, b, c);
                let input = if di.hints.select == 0 { a } else { b };
                checked.push((l, input, v));
            }
            if !checked.is_empty() {
                ev.shared =
                    Some(SharedOp::MarkedInt { dst: di.dst, pair: di.dst_pair, lanes: checked });
                return;
            }
            // No active lane: nothing to check, nothing written — the
            // scoreboard update below matches the serial no-lane path.
            pool.put_triples(checked);
        } else {
            let mut bits = exec_mask;
            while bits != 0 {
                let l = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                if wide {
                    let a = self.fetch64(w, l, &di.srcs[0]);
                    let b = self.fetch64(w, l, &di.srcs[1]);
                    let c = match di.srcs[2] {
                        Operand::Imm(v) => v as u64,
                        ref other => self.fetch64(w, l, other),
                    };
                    let v = exec::alu64(di.opcode, a, b, c);
                    self.warps[w].write64(l, di.dst, v);
                } else {
                    let a = self.fetch32(w, l, &di.srcs[0]);
                    let b = self.fetch32(w, l, &di.srcs[1]);
                    let c = self.fetch32(w, l, &di.srcs[2]);
                    let v = exec::alu32(di.opcode, a, b, c);
                    // 32-bit marked ops (hand-written programs) check the low
                    // word only — the compiler marks wide ops exclusively, so
                    // the OCU path above is the one that matters.
                    self.warps[w].write(l, di.dst, v);
                }
            }
        }
        let warp = &mut self.warps[w];
        let done_at = now + cfg.int_latency as u64;
        warp.set_ready_at(di.dst, done_at);
        warp.set_verdict_at(di.dst, done_at);
        if wide && di.dst_pair {
            warp.set_ready_at(di.dst.pair_high(), done_at);
            warp.set_verdict_at(di.dst.pair_high(), done_at);
        }
        warp.pc += 1;
    }

    fn issue_heap_phase_a(
        &mut self,
        w: usize,
        di: &DecodedInstr,
        exec_mask: LaneMask,
        ev: &mut IssueEvent,
        pool: &mut EventPool,
    ) {
        // Heap calls always defer (even with no active lane the serial path
        // still counted the call and advanced pc — phase B reproduces that).
        let malloc = di.opcode == Opcode::Malloc;
        let mut lanes = pool.take_pairs();
        let mut bits = exec_mask;
        while bits != 0 {
            let l = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let value = if malloc {
                self.fetch32(w, l, &di.srcs[0]) as u64
            } else {
                self.fetch64(w, l, &di.srcs[0])
            };
            lanes.push((l, value));
        }
        ev.shared = Some(SharedOp::Heap { dst: di.dst, pair: di.dst_pair, malloc, lanes });
    }

    #[allow(clippy::too_many_arguments)]
    fn issue_mem_phase_a(
        &mut self,
        w: usize,
        di: &DecodedInstr,
        exec_mask: LaneMask,
        now: u64,
        cfg: &GpuConfig,
        ev: &mut IssueEvent,
        pool: &mut EventPool,
        bank_q: &mut [Vec<BankReq>],
        op_idx: u32,
        l1: &mut Cache,
        router: &BankRouter,
    ) {
        let mem = di.mem.expect("memory instruction carries a MemRef");
        let space = di.mem_space.unwrap_or(MemSpace::Global);
        ev.mem_space = Some(space);

        // Constant loads resolve against the launch context — fully local.
        if di.opcode == Opcode::Ldc {
            let mut bits = exec_mask;
            while bits != 0 {
                let l = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let warp = &self.warps[w];
                let v = self.launch.const_read(
                    warp.block,
                    warp.base_tid + l as u64,
                    mem.offset as u16,
                    mem.width,
                );
                let warp = &mut self.warps[w];
                if mem.width == 8 {
                    warp.write64(l, di.dst, v);
                } else {
                    warp.write(l, di.dst, v as u32);
                }
            }
            let warp = &mut self.warps[w];
            let done_at = now + cfg.const_latency as u64;
            warp.set_ready_at_mem(di.dst, done_at);
            if mem.width == 8 && di.dst_pair {
                warp.set_ready_at_mem(di.dst.pair_high(), done_at);
            }
            warp.pc += 1;
            return;
        }

        // Address generation and store-data collection are per-lane local
        // work; the mechanism check, timing and data movement defer.
        let is_store = di.is_store;
        let value_reg = match di.srcs[0] {
            Operand::Reg(r) => r,
            _ => Reg::RZ,
        };
        let stack_bytes = cfg.stack_bytes;
        let layout_tid_base = self.launch.layout_tid_base;
        let warp = &self.warps[w];
        // Layout tids (not semantic tids) back the local windows — resident
        // multi-kernel runs keep concurrent kernels' stacks disjoint.
        let warp_base = warp.base_tid + layout_tid_base;
        // Local memory is physically interleaved per lane (like real GPUs),
        // so a warp spilling the same stack offset coalesces to one
        // transaction; timing addresses reflect that layout.
        let timing_addr = |lane: usize, vaddr: u64| -> u64 {
            if space != MemSpace::Local {
                return vaddr;
            }
            let gtid = warp_base + lane as u64;
            let window = lmi_mem::layout::local_window_base(gtid, stack_bytes);
            let offset = vaddr.wrapping_sub(window);
            if offset >= stack_bytes {
                return vaddr; // escaped the window: keep the flat address
            }
            lmi_mem::layout::LOCAL_BASE + (warp_base * stack_bytes) + offset * 32 + lane as u64 * 4
        };
        let mut lanes = pool.take_lane_mem();
        let mut bits = exec_mask;
        while bits != 0 {
            let l = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let raw = warp.read64(l, mem.addr).wrapping_add(mem.offset as i64 as u64);
            let vaddr = raw & ADDR_MASK;
            let store_value = if is_store {
                if mem.width == 8 {
                    warp.read64(l, value_reg)
                } else {
                    warp.read(l, value_reg) as u64
                }
            } else {
                0
            };
            lanes.push(LaneMem {
                lane: l,
                raw,
                vaddr,
                timing_addr: timing_addr(l, vaddr),
                store_value,
            });
        }
        // Timing: probe this SM's own L1 on the coalesced lines right here
        // in phase A (SM-local state — hits never cross the barrier) and
        // route the misses to their owning banks. Shared-space accesses use
        // the fixed shared-memory path and count as one transaction.
        let mut line_count = 1u64;
        let mut l1_hit = false;
        let mut bank_items = 0u32;
        if space != MemSpace::Shared {
            let mut lines = pool.take_lines();
            coalesce_into(
                lanes.iter().map(|m| m.timing_addr),
                cfg.hierarchy.l1.line_bytes,
                &mut lines,
            );
            line_count = lines.len() as u64;
            for &line in lines.iter() {
                if l1.access(line) {
                    l1_hit = true;
                } else {
                    bank_q[router.bank_of(line)]
                        .push(BankReq::Fill { op: op_idx, local: router.localize(line) });
                    bank_items += 1;
                }
            }
            pool.put_lines(lines);
        }
        // Data movement: route every lane's bytes to the bank(s) owning its
        // virtual address (a straddling access splits at the line boundary).
        // Loads draw a pooled atom per lane for the banks to OR into.
        let mut atoms = pool.take_atoms();
        for (pos, lm) in lanes.iter().enumerate() {
            if !is_store {
                atoms.push(AtomicU64::new(0));
            }
            let (w1, rest) = router.split(lm.vaddr, mem.width as u64);
            bank_q[router.bank_of(lm.vaddr)].push(BankReq::Move {
                op: op_idx,
                lane_pos: pos as u16,
                local: router.localize(lm.vaddr),
                width: w1 as u8,
                shift: 0,
                value: lm.store_value,
            });
            bank_items += 1;
            if let Some((addr2, w2)) = rest {
                bank_q[router.bank_of(addr2)].push(BankReq::Move {
                    op: op_idx,
                    lane_pos: pos as u16,
                    local: router.localize(addr2),
                    width: w2 as u8,
                    shift: w1 as u8,
                    value: lm.store_value >> (8 * w1),
                });
                bank_items += 1;
            }
        }
        ev.shared = Some(SharedOp::Mem {
            dst: di.dst,
            pair: mem.width == 8 && di.dst_pair,
            width: mem.width,
            is_store,
            space,
            lanes,
            line_count,
            l1_hit,
            bank_items,
            atoms,
        });
    }

    fn release_barriers(&mut self) {
        if !self.warps.iter().any(|w| w.at_barrier) {
            return;
        }
        for b in &mut self.blocks {
            b.waiting = 0;
            b.done = 0;
        }
        for warp in &self.warps {
            if let Some(b) = self.blocks.iter_mut().find(|b| b.block == warp.block) {
                if warp.at_barrier {
                    b.waiting += 1;
                } else if warp.done {
                    b.done += 1;
                }
            }
        }
        for i in 0..self.blocks.len() {
            let b = &self.blocks[i];
            if b.waiting > 0 && b.waiting + b.done >= b.resident {
                let block = b.block;
                for warp in &mut self.warps {
                    if warp.block == block {
                        warp.at_barrier = false;
                    }
                }
            }
        }
    }
}
