//! The streaming multiprocessor: warp schedulers, issue, and execution.

use std::collections::HashMap;
use std::sync::Arc;

use lmi_alloc::{AllocError, DeviceHeap};
use lmi_core::error::TemporalKind;
use lmi_core::ptr::ADDR_MASK;
use lmi_core::Violation;
use lmi_isa::op::SpecialReg;
use lmi_isa::{abi, Instruction, MemSpace, Opcode, OpcodeClass, Operand, Program, Reg};
use lmi_mem::{layout, MemoryHierarchy, SparseMemory};
use lmi_telemetry::{FaultEvent, PoisonEvent, Scope, TelemetrySink, TraceEventKind};

use crate::config::{GpuConfig, WARP_SIZE};
use crate::exec;
use crate::launch::Launch;
use crate::lsu::coalesce;
use crate::mechanism::{Mechanism, MemAccessCtx};
use crate::stats::{SimStats, ViolationEvent};
use crate::warp::{LaneMask, Warp};

/// Per-launch context needed to resolve constant-bank reads.
#[derive(Debug, Clone)]
pub(crate) struct LaunchCtx {
    pub params: Vec<u64>,
    pub stack_bytes: u64,
    pub threads_per_block: usize,
}

impl LaunchCtx {
    fn const_read(&self, block: usize, gtid: u64, offset: u16, width: u8) -> u64 {
        let value = match offset {
            abi::STACK_TOP_OFFSET => {
                layout::local_window_base(gtid, self.stack_bytes) + self.stack_bytes
            }
            abi::SHARED_BASE_OFFSET => layout::shared_window_base(block as u64),
            o if o >= abi::PARAM_BASE_OFFSET => {
                let index = ((o - abi::PARAM_BASE_OFFSET) / 8) as usize;
                self.params.get(index).copied().unwrap_or(0)
            }
            _ => 0,
        };
        if width <= 4 {
            value & 0xFFFF_FFFF
        } else {
            value
        }
    }
}

/// One streaming multiprocessor.
pub(crate) struct Sm {
    pub id: usize,
    program: Arc<Program>,
    launch: Arc<LaunchCtx>,
    pub warps: Vec<Warp>,
    /// Greedy warp per scheduler (GTO: greedy-then-oldest).
    greedy: Vec<Option<usize>>,
    /// warps per block resident on this SM (for barrier release).
    block_warps: HashMap<usize, usize>,
}

pub(crate) struct StepResources<'a> {
    pub hierarchy: &'a mut MemoryHierarchy,
    pub memory: &'a mut SparseMemory,
    pub heap: &'a DeviceHeap,
    pub mechanism: &'a mut dyn Mechanism,
    pub stats: &'a mut SimStats,
    pub cfg: &'a GpuConfig,
    pub sink: &'a mut TelemetrySink,
}

/// Why a warp could not issue this cycle (the binding constraint of its
/// next instruction). Feeds [`crate::stats::StallBreakdown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StallReason {
    /// Launch-ramp delay, fell off the program, or no candidate at all.
    NoReadyWarp,
    /// Waiting on an ALU-produced register or predicate.
    Scoreboard,
    /// Waiting on an in-flight memory result.
    LsuBusy,
    /// Waiting on a pending OCU verdict (paper §XI-C pipeline delay).
    OcuVerdict,
}

pub(crate) struct StepOutcome {
    pub issued_any: bool,
    /// Earliest future cycle at which a stalled warp could issue.
    pub next_ready: u64,
}

impl Sm {
    pub fn new(id: usize, program: Arc<Program>, ctx: Arc<LaunchCtx>) -> Sm {
        Sm {
            id,
            program,
            launch: ctx,
            warps: Vec::new(),
            greedy: Vec::new(),
            block_warps: HashMap::new(),
        }
    }

    /// Adds the warps of block `block` to this SM.
    pub fn add_block(&mut self, block: usize, launch: &Launch, regs_per_thread: usize) {
        let warps = launch.warps_per_block();
        for w in 0..warps {
            let threads_before = w * WARP_SIZE;
            let active = (launch.threads_per_block - threads_before).min(WARP_SIZE);
            let base_tid = (block * launch.threads_per_block + threads_before) as u64;
            let id = self.warps.len();
            let mut warp = Warp::new(id, block, base_tid, regs_per_thread, active);
            // The launch phase selects a different dispatch-stagger pattern,
            // decorrelating warp/program/memory phase alignment between runs.
            warp.start_cycle = ((id as u64 + 1) * (7 + launch.phase * 5)) % 31;
            self.warps.push(warp);
        }
        *self.block_warps.entry(block).or_insert(0) += warps;
    }

    pub fn all_done(&self) -> bool {
        self.warps.iter().all(|w| w.done)
    }

    /// One cycle: each scheduler issues at most one instruction (GTO pick).
    pub fn step(&mut self, now: u64, res: &mut StepResources<'_>) -> StepOutcome {
        if self.greedy.len() != res.cfg.schedulers_per_sm {
            self.greedy = vec![None; res.cfg.schedulers_per_sm];
        }
        let mut issued_any = false;
        let mut next_ready = u64::MAX;

        for sched in 0..res.cfg.schedulers_per_sm {
            let candidates: Vec<usize> = (sched..self.warps.len())
                .step_by(res.cfg.schedulers_per_sm)
                .filter(|&w| !self.warps[w].done && !self.warps[w].at_barrier)
                .collect();
            if candidates.is_empty() {
                // At a barrier (or between blocks): the slot idles with no
                // candidate, but only count it while work remains.
                let any_live = (sched..self.warps.len())
                    .step_by(res.cfg.schedulers_per_sm)
                    .any(|w| !self.warps[w].done);
                if any_live {
                    self.record_stall(StallReason::NoReadyWarp, res);
                }
                continue;
            }
            // GTO: greedy warp first, then oldest.
            let mut order = candidates.clone();
            if let Some(g) = self.greedy[sched] {
                if let Some(pos) = order.iter().position(|&w| w == g) {
                    order.remove(pos);
                    order.insert(0, g);
                }
            }
            let mut picked = None;
            // Stall attribution: the binding constraint of the candidate
            // that would issue soonest.
            let mut soonest: Option<(u64, StallReason)> = None;
            for &w in &order {
                let (r, reason) = self.ready_info(w, res.cfg.lsu_verdict_overlap);
                if r <= now {
                    picked = Some(w);
                    break;
                }
                next_ready = next_ready.min(r);
                if soonest.is_none_or(|(s, _)| r < s) {
                    soonest = Some((r, reason));
                }
            }
            match picked {
                Some(w) => {
                    self.issue(w, now, res);
                    res.sink.counters.inc(Scope::Sm(self.id), "issued");
                    res.sink.counters.inc(Scope::Warp { sm: self.id, warp: w }, "issued");
                    if self.warps[w].done && res.sink.tracer.is_enabled() {
                        // The warp just retired: emit its residency span.
                        let start = self.warps[w].start_cycle;
                        res.sink.tracer.complete_with(
                            "warp",
                            TraceEventKind::WarpSpan,
                            self.id,
                            w,
                            start,
                            (now + 1).saturating_sub(start),
                            &[("block", self.warps[w].block as u64)],
                        );
                    }
                    self.greedy[sched] = Some(w);
                    issued_any = true;
                    // The warp can issue again next cycle (in-order).
                    next_ready = next_ready.min(now + 1);
                }
                None => {
                    let reason = soonest.map(|(_, r)| r).unwrap_or(StallReason::NoReadyWarp);
                    self.record_stall(reason, res);
                }
            }
        }

        self.release_barriers();
        StepOutcome { issued_any, next_ready }
    }

    /// Bumps the stall counters for one idle scheduler-slot cycle.
    fn record_stall(&self, reason: StallReason, res: &mut StepResources<'_>) {
        let (field, name) = match reason {
            StallReason::Scoreboard => (&mut res.stats.stalls.scoreboard, "stall.scoreboard"),
            StallReason::LsuBusy => (&mut res.stats.stalls.lsu_busy, "stall.lsu_busy"),
            StallReason::OcuVerdict => (&mut res.stats.stalls.ocu_verdict, "stall.ocu_verdict"),
            StallReason::NoReadyWarp => {
                (&mut res.stats.stalls.no_ready_warp, "stall.no_ready_warp")
            }
        };
        *field += 1;
        res.sink.counters.inc(Scope::Sm(self.id), name);
    }

    /// Earliest cycle at which warp `w`'s next instruction can issue, and
    /// the constraint that binds (for stall attribution when it is in the
    /// future).
    fn ready_info(&self, w: usize, verdict_overlap: u32) -> (u64, StallReason) {
        let warp = &self.warps[w];
        let ins = match self.program.instructions.get(warp.pc) {
            Some(i) => i,
            // Fell off the program: treated as exit at issue.
            None => return (u64::MAX, StallReason::NoReadyWarp),
        };
        // The launch/dispatch ramp: not a pipeline hazard.
        let mut ready = warp.start_cycle;
        let mut reason = StallReason::NoReadyWarp;
        for r in ins.source_regs() {
            let t = warp.ready_at(r);
            if t > ready {
                ready = t;
                reason = if warp.mem_pending_at(r, t) {
                    StallReason::LsuBusy
                } else {
                    StallReason::Scoreboard
                };
            }
        }
        if ins.opcode.is_mem() && ins.opcode != Opcode::Ldc {
            // The LSU's EC consumes the final (possibly poisoned) extent, so
            // it must wait for the OCU verdict on the address registers.
            if let Some(mem) = &ins.mem {
                let mut verdict = warp.verdict_at(mem.addr);
                if mem.addr.is_valid_pair_base() {
                    verdict = verdict.max(warp.verdict_at(mem.addr.pair_high()));
                }
                let v = verdict.saturating_sub(verdict_overlap as u64);
                if v > ready {
                    ready = v;
                    reason = StallReason::OcuVerdict;
                }
            }
        }
        if let Some(p) = &ins.pred {
            let t = warp.pred_ready_at(p.reg);
            if t > ready {
                ready = t;
                reason = StallReason::Scoreboard;
            }
        }
        if ins.opcode == Opcode::Isetp {
            // WAW on the destination predicate.
            let t = warp.pred_ready_at(lmi_isa::PredReg(ins.dst.0 & 7));
            if t > ready {
                ready = t;
                reason = StallReason::Scoreboard;
            }
        }
        (ready, reason)
    }

    fn issue(&mut self, w: usize, now: u64, res: &mut StepResources<'_>) {
        let warp = &mut self.warps[w];
        let ins = match self.program.instructions.get(warp.pc).cloned() {
            Some(i) => i,
            None => {
                warp.retire_lanes(warp.mask);
                return;
            }
        };
        warp.last_issue = now;
        res.stats.issued += 1;
        match ins.opcode.class() {
            OpcodeClass::IntAlu => res.stats.int_issued += 1,
            OpcodeClass::Fpu => res.stats.fpu_issued += 1,
            _ => {}
        }
        if ins.hints.activate {
            res.stats.marked_issued += 1;
        }

        // Per-lane guard predicate.
        let exec_mask: LaneMask = warp
            .active_lanes()
            .filter(|&l| match &ins.pred {
                Some(p) => warp.read_pred(l, p.reg) != p.negated,
                None => true,
            })
            .fold(0, |m, l| m | (1 << l));

        match ins.opcode {
            Opcode::Exit => {
                let mask = if exec_mask == 0 { 0 } else { exec_mask };
                if mask == 0 {
                    warp.pc += 1;
                } else {
                    warp.retire_lanes(mask);
                }
            }
            Opcode::Nop => warp.pc += 1,
            Opcode::Bar => {
                warp.at_barrier = true;
                warp.pc += 1;
            }
            Opcode::Bra => {
                let target = match ins.srcs[0] {
                    Operand::Imm(t) => t.max(0) as usize,
                    _ => warp.pc + 1,
                };
                let active = warp.mask;
                if exec_mask == 0 {
                    warp.pc += 1;
                } else if exec_mask == active {
                    warp.pc = target;
                } else {
                    // Divergence: suspend the fall-through lanes.
                    warp.stack.push((active & !exec_mask, warp.pc + 1));
                    warp.mask = exec_mask;
                    warp.pc = target;
                }
            }
            Opcode::S2r => {
                let sel = match ins.srcs[0] {
                    Operand::Imm(v) => v as i64,
                    _ => 0,
                };
                let special = SpecialReg::from_selector(sel).unwrap_or(SpecialReg::TidX);
                let tpb = self.launch.threads_per_block as u64;
                let lanes: Vec<usize> = warp.active_lanes().collect();
                for l in lanes {
                    if exec_mask & (1 << l) == 0 {
                        continue;
                    }
                    let gtid = warp.base_tid + l as u64;
                    let v = match special {
                        SpecialReg::TidX => gtid % tpb,
                        SpecialReg::CtaIdX => gtid / tpb,
                        SpecialReg::NtidX => tpb,
                        SpecialReg::LaneId => l as u64,
                        SpecialReg::WarpId => warp.id as u64,
                    };
                    warp.write(l, ins.dst, v as u32);
                }
                warp.set_ready_at(ins.dst, now + 2);
                warp.pc += 1;
            }
            Opcode::Isetp => {
                let pred = lmi_isa::PredReg(ins.dst.0 & 7);
                let cmp = match ins.srcs[2] {
                    Operand::Imm(v) => {
                        lmi_isa::instr::CmpOp::decode(v).unwrap_or(lmi_isa::instr::CmpOp::Eq)
                    }
                    _ => lmi_isa::instr::CmpOp::Eq,
                };
                let lanes: Vec<usize> = warp.active_lanes().collect();
                for l in lanes {
                    if exec_mask & (1 << l) == 0 {
                        continue;
                    }
                    let a = self.fetch32(w, l, &ins.srcs[0]) as i32 as i64;
                    let b = self.fetch32(w, l, &ins.srcs[1]) as i32 as i64;
                    let warp = &mut self.warps[w];
                    warp.write_pred(l, pred, cmp.eval(a, b));
                }
                let warp = &mut self.warps[w];
                warp.set_pred_ready_at(pred, now + 2);
                warp.pc += 1;
            }
            Opcode::Malloc | Opcode::Free => {
                self.issue_heap_call(w, &ins, exec_mask, now, res);
            }
            op if op.class() == OpcodeClass::IntAlu => {
                self.issue_int(w, &ins, exec_mask, now, res);
            }
            op if op.class() == OpcodeClass::Fpu => {
                let lanes: Vec<usize> = self.warps[w].active_lanes().collect();
                for l in lanes {
                    if exec_mask & (1 << l) == 0 {
                        continue;
                    }
                    let a = self.fetch32(w, l, &ins.srcs[0]);
                    let b = self.fetch32(w, l, &ins.srcs[1]);
                    let c = self.fetch32(w, l, &ins.srcs[2]);
                    let v = exec::fpu(ins.opcode, a, b, c);
                    self.warps[w].write(l, ins.dst, v);
                }
                let lat = if ins.opcode == Opcode::Mufu {
                    res.cfg.fpu_latency * 2
                } else {
                    res.cfg.fpu_latency
                };
                let warp = &mut self.warps[w];
                warp.set_ready_at(ins.dst, now + lat as u64);
                warp.pc += 1;
            }
            op if op.is_mem() => {
                self.issue_mem(w, &ins, exec_mask, now, res);
            }
            other => panic!("unhandled opcode {other}"),
        }
    }

    fn fetch32(&self, w: usize, lane: usize, src: &Operand) -> u32 {
        let warp = &self.warps[w];
        match src {
            Operand::None => 0,
            Operand::Reg(r) => warp.read(lane, *r),
            Operand::Imm(v) => *v as u32,
            Operand::Const { offset, .. } => {
                self.launch.const_read(warp.block, warp.base_tid + lane as u64, *offset, 4) as u32
            }
        }
    }

    fn fetch64(&self, w: usize, lane: usize, src: &Operand) -> u64 {
        let warp = &self.warps[w];
        match src {
            Operand::None => 0,
            Operand::Reg(r) => warp.read64(lane, *r),
            Operand::Imm(v) => *v as i64 as u64,
            Operand::Const { offset, .. } => {
                self.launch.const_read(warp.block, warp.base_tid + lane as u64, *offset, 8)
            }
        }
    }

    fn issue_int(
        &mut self,
        w: usize,
        ins: &Instruction,
        exec_mask: LaneMask,
        now: u64,
        res: &mut StepResources<'_>,
    ) {
        let wide = ins.opcode.is_wide();
        let pc = self.warps[w].pc;
        let lanes: Vec<usize> = self.warps[w].active_lanes().collect();
        let mut extra_delay = 0u32;
        let mut checked_any = false;
        for l in lanes {
            if exec_mask & (1 << l) == 0 {
                continue;
            }
            if wide {
                let a = self.fetch64(w, l, &ins.srcs[0]);
                let b = self.fetch64(w, l, &ins.srcs[1]);
                let c = match ins.srcs[2] {
                    Operand::Imm(v) => v as u64,
                    ref other => self.fetch64(w, l, other),
                };
                let mut v = exec::alu64(ins.opcode, a, b, c);
                if ins.hints.activate {
                    let input = if ins.hints.select == 0 { a } else { b };
                    let check = res.mechanism.on_marked_int(input, v);
                    v = check.value;
                    extra_delay = extra_delay.max(res.mechanism.marked_int_delay());
                    checked_any = true;
                    if check.poisoned {
                        // Delayed termination (§XII-A): remember where the
                        // pointer died so a later EC fault can report it.
                        res.sink.forensics.record_poison(PoisonEvent {
                            sm: self.id,
                            warp: w,
                            lane: l,
                            pc,
                            op: ins.opcode.mnemonic(),
                            cycle: now,
                            instr_index: res.stats.issued,
                        });
                        res.sink.counters.inc(Scope::Mechanism(res.mechanism.name()), "poisoned");
                        if res.sink.tracer.is_enabled() {
                            res.sink.tracer.instant(
                                "poison",
                                TraceEventKind::OcuPoison,
                                self.id,
                                w,
                                now,
                                &[("pc", pc as u64), ("lane", l as u64)],
                            );
                        }
                    }
                }
                self.warps[w].write64(l, ins.dst, v);
            } else {
                let a = self.fetch32(w, l, &ins.srcs[0]);
                let b = self.fetch32(w, l, &ins.srcs[1]);
                let c = self.fetch32(w, l, &ins.srcs[2]);
                let v = exec::alu32(ins.opcode, a, b, c);
                // 32-bit marked ops (hand-written programs) check the low
                // word only — the compiler marks wide ops exclusively, so
                // the OCU path above is the one that matters.
                self.warps[w].write(l, ins.dst, v);
            }
        }
        if checked_any {
            res.sink.counters.inc(Scope::Mechanism(res.mechanism.name()), "checks");
            if res.sink.tracer.is_enabled() {
                res.sink.tracer.complete_with(
                    ins.opcode.mnemonic(),
                    TraceEventKind::OcuCheck,
                    self.id,
                    w,
                    now,
                    extra_delay as u64,
                    &[("pc", pc as u64)],
                );
            }
        }
        let warp = &mut self.warps[w];
        let done_at = now + res.cfg.int_latency as u64;
        let verdict_at = done_at + extra_delay as u64;
        warp.set_ready_at(ins.dst, done_at);
        warp.set_verdict_at(ins.dst, verdict_at);
        if wide && ins.dst.is_valid_pair_base() {
            warp.set_ready_at(ins.dst.pair_high(), done_at);
            warp.set_verdict_at(ins.dst.pair_high(), verdict_at);
        }
        warp.pc += 1;
    }

    fn issue_heap_call(
        &mut self,
        w: usize,
        ins: &Instruction,
        exec_mask: LaneMask,
        now: u64,
        res: &mut StepResources<'_>,
    ) {
        let lanes: Vec<usize> = self.warps[w].active_lanes().collect();
        let mut violation = None;
        for l in lanes {
            if exec_mask & (1 << l) == 0 {
                continue;
            }
            let gtid = self.warps[w].base_tid + l as u64;
            match ins.opcode {
                Opcode::Malloc => {
                    let size = self.fetch32(w, l, &ins.srcs[0]) as u64;
                    let ptr = res.heap.malloc(gtid as usize, size).unwrap_or(0);
                    self.warps[w].write64(l, ins.dst, ptr);
                    res.stats.mallocs += 1;
                }
                Opcode::Free => {
                    let raw = self.fetch64(w, l, &ins.srcs[0]);
                    res.stats.frees += 1;
                    if let Err(e) = res.heap.free(raw) {
                        let kind = match e {
                            AllocError::DoubleFree(_) => TemporalKind::DoubleFree,
                            _ => TemporalKind::InvalidFree,
                        };
                        violation = Some((l, Violation::Temporal(kind)));
                    }
                }
                _ => unreachable!(),
            }
        }
        let warp = &mut self.warps[w];
        let pc = warp.pc;
        if ins.opcode == Opcode::Malloc {
            let done_at = now + res.cfg.heap_call_latency as u64;
            warp.set_ready_at_mem(ins.dst, done_at);
            if ins.dst.is_valid_pair_base() {
                warp.set_ready_at_mem(ins.dst.pair_high(), done_at);
            }
        }
        res.sink.counters.inc(Scope::Sm(self.id), "heap_calls");
        if res.sink.tracer.is_enabled() {
            res.sink.tracer.complete_with(
                ins.opcode.mnemonic(),
                TraceEventKind::HeapCall,
                self.id,
                w,
                now,
                res.cfg.heap_call_latency as u64,
                &[("pc", pc as u64)],
            );
        }
        warp.pc += 1;
        if let Some((lane, v)) = violation {
            let event = ViolationEvent {
                sm: self.id,
                warp: w,
                pc: warp.pc - 1,
                global_tid: warp.base_tid + lane as u64,
                violation: v,
            };
            res.stats.violations.push(event);
            if res.cfg.halt_on_violation {
                warp.stack.clear();
                warp.retire_lanes(warp.mask);
            }
        }
    }

    fn issue_mem(
        &mut self,
        w: usize,
        ins: &Instruction,
        exec_mask: LaneMask,
        now: u64,
        res: &mut StepResources<'_>,
    ) {
        let mem = ins.mem.expect("memory instruction carries a MemRef");
        let space = ins.opcode.mem_space().unwrap_or(MemSpace::Global);
        res.stats.record_mem(space);
        let pc = self.warps[w].pc;
        // `stats.issued` was already bumped for this instruction, so it is a
        // unique id shared by every lane of this warp-level issue.
        let issue_index = res.stats.issued;
        res.sink.counters.inc(Scope::Sm(self.id), "mem_insts");

        // Constant loads resolve against the launch context.
        if ins.opcode == Opcode::Ldc {
            let lanes: Vec<usize> = self.warps[w].active_lanes().collect();
            for l in lanes {
                if exec_mask & (1 << l) == 0 {
                    continue;
                }
                let warp = &self.warps[w];
                let v = self.launch.const_read(
                    warp.block,
                    warp.base_tid + l as u64,
                    mem.offset as u16,
                    mem.width,
                );
                let warp = &mut self.warps[w];
                if mem.width == 8 {
                    warp.write64(l, ins.dst, v);
                } else {
                    warp.write(l, ins.dst, v as u32);
                }
            }
            let warp = &mut self.warps[w];
            let done_at = now + res.cfg.const_latency as u64;
            warp.set_ready_at_mem(ins.dst, done_at);
            if mem.width == 8 && ins.dst.is_valid_pair_base() {
                warp.set_ready_at_mem(ins.dst.pair_high(), done_at);
            }
            warp.pc += 1;
            return;
        }

        // Per-lane address computation and mechanism check.
        let lanes: Vec<usize> = self.warps[w].active_lanes().collect();
        let mut ok_lanes: Vec<(usize, u64)> = Vec::with_capacity(lanes.len());
        let mut faulted = false;
        let mut extra_cycles = 0u32;
        let mut metadata_addrs: Vec<u64> = Vec::new();
        for l in lanes {
            if exec_mask & (1 << l) == 0 {
                continue;
            }
            let warp = &self.warps[w];
            let raw = warp.read64(l, mem.addr).wrapping_add(mem.offset as i64 as u64);
            let vaddr = raw & ADDR_MASK;
            let ctx = MemAccessCtx {
                space,
                raw,
                vaddr,
                width: mem.width,
                is_store: ins.opcode.is_store(),
                global_tid: warp.base_tid + l as u64,
                pc,
                lane: l,
                issue_index,
            };
            let check = res.mechanism.on_mem_access(&ctx);
            extra_cycles = extra_cycles.max(check.extra_cycles);
            if let Some(addr) = check.metadata_addr {
                metadata_addrs.push(addr);
            }
            match check.violation {
                Some(v) => {
                    faulted = true;
                    res.stats.violations.push(ViolationEvent {
                        sm: self.id,
                        warp: w,
                        pc,
                        global_tid: ctx.global_tid,
                        violation: v,
                    });
                    res.sink.counters.inc(Scope::Mechanism(res.mechanism.name()), "faults");
                    if res.sink.tracer.is_enabled() {
                        res.sink.tracer.instant(
                            "fault",
                            TraceEventKind::EcFault,
                            self.id,
                            w,
                            now,
                            &[("pc", pc as u64), ("lane", l as u64)],
                        );
                    }
                    // Close the poison→fault provenance loop (§XII-A): if
                    // this lane's pointer was poisoned earlier, report the
                    // latency between poisoning and detection.
                    if let Some(record) = res.sink.forensics.record_fault(FaultEvent {
                        sm: self.id,
                        warp: w,
                        lane: l,
                        pc,
                        cycle: now,
                        instr_index: issue_index,
                    }) {
                        res.stats.forensics.push(record);
                    }
                }
                None => ok_lanes.push((l, vaddr)),
            }
        }

        if faulted && res.cfg.halt_on_violation {
            let warp = &mut self.warps[w];
            warp.stack.clear();
            warp.retire_lanes(warp.mask);
            return;
        }

        // Timing: mechanism metadata fetches complete FIRST (bounds must be
        // known before the access may issue — check-before-access), then the
        // coalesced transactions (or the fixed shared-memory path).
        metadata_addrs.sort_unstable();
        metadata_addrs.dedup();
        let issued_at = now;
        let mut access_start = now;
        for addr in &metadata_addrs {
            access_start = access_start.max(res.hierarchy.metadata_fetch(*addr, now));
        }
        let now = access_start;
        let mut done_at = now;
        let mut line_count = 1u64;
        if space == MemSpace::Shared {
            done_at = res.hierarchy.access_shared(now);
            res.stats.transactions += 1;
        } else {
            // Local memory is physically interleaved per lane (like real
            // GPUs), so a warp spilling the same stack offset coalesces to
            // one transaction; timing addresses reflect that layout.
            let stack_bytes = res.cfg.stack_bytes;
            let warp_base = self.warps[w].base_tid;
            let timing_addr = |lane: usize, vaddr: u64| -> u64 {
                if space != MemSpace::Local {
                    return vaddr;
                }
                let gtid = warp_base + lane as u64;
                let window = lmi_mem::layout::local_window_base(gtid, stack_bytes);
                let offset = vaddr.wrapping_sub(window);
                if offset >= stack_bytes {
                    return vaddr; // escaped the window: keep the flat address
                }
                lmi_mem::layout::LOCAL_BASE
                    + (warp_base * stack_bytes)
                    + offset * 32
                    + lane as u64 * 4
            };
            let lines = coalesce(
                ok_lanes.iter().map(|&(l, a)| timing_addr(l, a)),
                res.cfg.hierarchy.l1.line_bytes,
            );
            res.stats.transactions += lines.len() as u64;
            line_count = lines.len() as u64;
            for line in lines {
                done_at = done_at.max(res.hierarchy.access_dram_backed(self.id, line, now));
            }
        }
        done_at += extra_cycles as u64;
        res.sink.counters.add(Scope::Sm(self.id), "transactions", line_count);
        if res.sink.tracer.is_enabled() && !ok_lanes.is_empty() {
            res.sink.tracer.complete_with(
                ins.opcode.mnemonic(),
                TraceEventKind::MemTransaction,
                self.id,
                w,
                issued_at,
                done_at.saturating_sub(issued_at).max(1),
                &[("pc", pc as u64), ("lines", line_count), ("lanes", ok_lanes.len() as u64)],
            );
        }

        // Data movement.
        if ins.opcode.is_store() {
            let value_reg = match ins.srcs[0] {
                Operand::Reg(r) => r,
                _ => Reg::RZ,
            };
            for &(l, vaddr) in &ok_lanes {
                let v = if mem.width == 8 {
                    self.warps[w].read64(l, value_reg)
                } else {
                    self.warps[w].read(l, value_reg) as u64
                };
                res.memory.write(vaddr, v, mem.width);
            }
        } else {
            for &(l, vaddr) in &ok_lanes {
                let v = res.memory.read(vaddr, mem.width);
                let warp = &mut self.warps[w];
                if mem.width == 8 {
                    warp.write64(l, ins.dst, v);
                } else {
                    warp.write(l, ins.dst, v as u32);
                }
            }
            let warp = &mut self.warps[w];
            warp.set_ready_at_mem(ins.dst, done_at);
            if mem.width == 8 && ins.dst.is_valid_pair_base() {
                warp.set_ready_at_mem(ins.dst.pair_high(), done_at);
            }
        }
        self.warps[w].pc += 1;
    }

    fn release_barriers(&mut self) {
        let mut waiting: HashMap<usize, usize> = HashMap::new();
        for warp in &self.warps {
            if warp.at_barrier {
                *waiting.entry(warp.block).or_insert(0) += 1;
            }
        }
        for (block, count) in waiting {
            let resident = self.block_warps.get(&block).copied().unwrap_or(0);
            let done = self.warps.iter().filter(|w| w.block == block && w.done).count();
            if count + done >= resident {
                for warp in &mut self.warps {
                    if warp.block == block {
                        warp.at_barrier = false;
                    }
                }
            }
        }
    }
}
