//! Load/store-unit helpers: warp-wide coalescing.

/// Coalesces per-lane addresses into unique cache-line transactions.
///
/// Returns the sorted list of 128-byte line addresses touched — one memory
/// transaction each, exactly how GPUs turn a warp's 32 scattered accesses
/// into a handful of coalesced requests (or 32 uncoalesced ones).
pub fn coalesce(addrs: impl IntoIterator<Item = u64>, line_bytes: u64) -> Vec<u64> {
    let mut lines = Vec::new();
    coalesce_into(addrs, line_bytes, &mut lines);
    lines
}

/// [`coalesce`] into a caller-provided buffer — the allocation-free form
/// the cycle loop uses with pooled line lists. `out` is cleared first.
pub fn coalesce_into(addrs: impl IntoIterator<Item = u64>, line_bytes: u64, out: &mut Vec<u64>) {
    out.clear();
    out.extend(addrs.into_iter().map(|a| a & !(line_bytes - 1)));
    out.sort_unstable();
    out.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_stride_warp_coalesces_to_one_line() {
        let addrs = (0..32u64).map(|l| 0x1000 + l * 4);
        assert_eq!(coalesce(addrs, 128), vec![0x1000]);
    }

    #[test]
    fn large_stride_warp_needs_a_line_per_lane() {
        let addrs = (0..32u64).map(|l| 0x1000 + l * 256);
        assert_eq!(coalesce(addrs, 128).len(), 32);
    }

    #[test]
    fn straddling_accesses_touch_both_lines() {
        let addrs = (0..32u64).map(|l| 0x1000 + l * 8); // 256 bytes total
        assert_eq!(coalesce(addrs, 128), vec![0x1000, 0x1080]);
    }

    #[test]
    fn duplicate_addresses_merge() {
        let addrs = std::iter::repeat_n(0x2000u64, 32);
        assert_eq!(coalesce(addrs, 128), vec![0x2000]);
    }

    #[test]
    fn coalesce_into_reuses_capacity_without_allocating() {
        let mut out = Vec::with_capacity(32);
        coalesce_into((0..32u64).map(|l| 0x1000 + l * 4), 128, &mut out);
        assert_eq!(out, vec![0x1000]);
        let cap = out.capacity();
        coalesce_into((0..32u64).map(|l| 0x3000 + l * 8), 128, &mut out);
        assert_eq!(out, vec![0x3000, 0x3080]);
        assert_eq!(out.capacity(), cap, "buffer was reused, not regrown");
    }
}
