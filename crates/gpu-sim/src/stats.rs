//! Simulation statistics.

use std::collections::BTreeMap;

use lmi_core::Violation;
use lmi_isa::MemSpace;

/// A recorded memory-safety violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ViolationEvent {
    /// SM where the fault occurred.
    pub sm: usize,
    /// Warp id within the SM.
    pub warp: usize,
    /// Program counter of the faulting instruction.
    pub pc: usize,
    /// Flat global thread id of the faulting lane.
    pub global_tid: u64,
    /// The violation.
    pub violation: Violation,
}

/// Aggregate statistics of one kernel run.
#[derive(Debug, Clone, Default)]
pub struct SimStats {
    /// Total cycles until the last warp retired.
    pub cycles: u64,
    /// Warp-level instructions issued.
    pub issued: u64,
    /// Integer-ALU instructions issued.
    pub int_issued: u64,
    /// FPU instructions issued.
    pub fpu_issued: u64,
    /// Hint-marked (OCU-checked) instructions issued.
    pub marked_issued: u64,
    /// Warp-level loads/stores per memory space.
    pub mem_by_space: BTreeMap<&'static str, u64>,
    /// Coalesced memory transactions issued.
    pub transactions: u64,
    /// Device-heap `malloc` calls executed (thread-level).
    pub mallocs: u64,
    /// Device-heap `free` calls executed (thread-level).
    pub frees: u64,
    /// Cycles a scheduler found no ready warp.
    pub idle_scheduler_cycles: u64,
    /// Detected violations.
    pub violations: Vec<ViolationEvent>,
}

impl SimStats {
    pub(crate) fn record_mem(&mut self, space: MemSpace) {
        let key = match space {
            MemSpace::Global => "global",
            MemSpace::Shared => "shared",
            MemSpace::Local => "local",
            MemSpace::Const => "const",
        };
        *self.mem_by_space.entry(key).or_insert(0) += 1;
    }

    /// Warp-level loads/stores to `space` (Fig. 1's LDG/STG vs LDS/STS vs
    /// LDL/STL classification).
    pub fn mem_count(&self, space: MemSpace) -> u64 {
        let key = match space {
            MemSpace::Global => "global",
            MemSpace::Shared => "shared",
            MemSpace::Local => "local",
            MemSpace::Const => "const",
        };
        self.mem_by_space.get(key).copied().unwrap_or(0)
    }

    /// Total loads/stores to attack-relevant spaces (global+shared+local).
    pub fn mem_total(&self) -> u64 {
        self.mem_count(MemSpace::Global)
            + self.mem_count(MemSpace::Shared)
            + self.mem_count(MemSpace::Local)
    }

    /// Fraction of memory instructions targeting `space` (Fig. 1).
    pub fn mem_ratio(&self, space: MemSpace) -> f64 {
        let total = self.mem_total();
        if total == 0 {
            0.0
        } else {
            self.mem_count(space) as f64 / total as f64
        }
    }

    /// Returns `true` if any violation was recorded.
    pub fn violated(&self) -> bool {
        !self.violations.is_empty()
    }

    /// Warp-level instructions per cycle (the schedulers' utilization).
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.issued as f64 / self.cycles as f64
        }
    }
}

impl std::fmt::Display for SimStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "cycles            {:>12}", self.cycles)?;
        writeln!(f, "issued (warp)     {:>12}  (IPC {:.2})", self.issued, self.ipc())?;
        writeln!(f, "  int alu         {:>12}", self.int_issued)?;
        writeln!(f, "  fpu             {:>12}", self.fpu_issued)?;
        writeln!(f, "  marked (OCU)    {:>12}", self.marked_issued)?;
        writeln!(
            f,
            "mem (G/S/L)       {:>12}  {} / {} / {}",
            self.mem_total(),
            self.mem_count(lmi_isa::MemSpace::Global),
            self.mem_count(lmi_isa::MemSpace::Shared),
            self.mem_count(lmi_isa::MemSpace::Local)
        )?;
        writeln!(f, "transactions      {:>12}", self.transactions)?;
        writeln!(f, "heap malloc/free  {:>12}  / {}", self.mallocs, self.frees)?;
        write!(f, "violations        {:>12}", self.violations.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_ratios_sum_to_one_over_protected_spaces() {
        let mut s = SimStats::default();
        for _ in 0..6 {
            s.record_mem(MemSpace::Global);
        }
        for _ in 0..3 {
            s.record_mem(MemSpace::Shared);
        }
        s.record_mem(MemSpace::Local);
        assert_eq!(s.mem_total(), 10);
        let sum = s.mem_ratio(MemSpace::Global)
            + s.mem_ratio(MemSpace::Shared)
            + s.mem_ratio(MemSpace::Local);
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((s.mem_ratio(MemSpace::Global) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn const_accesses_do_not_skew_fig1_ratios() {
        let mut s = SimStats::default();
        s.record_mem(MemSpace::Const);
        s.record_mem(MemSpace::Global);
        assert_eq!(s.mem_total(), 1);
        assert_eq!(s.mem_ratio(MemSpace::Global), 1.0);
    }
}
