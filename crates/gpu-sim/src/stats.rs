//! Simulation statistics.

use std::collections::BTreeMap;

use lmi_core::Violation;
use lmi_isa::MemSpace;
use lmi_mem::CacheStats;
use lmi_telemetry::{ForensicsRecord, Json, KernelProfile};

/// A recorded memory-safety violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ViolationEvent {
    /// SM where the fault occurred.
    pub sm: usize,
    /// Warp id within the SM.
    pub warp: usize,
    /// Program counter of the faulting instruction.
    pub pc: usize,
    /// Flat global thread id of the faulting lane.
    pub global_tid: u64,
    /// The violation.
    pub violation: Violation,
}

/// Why a warp scheduler could not issue on a given cycle, broken out per
/// scheduler slot (the seed's single `idle_scheduler_cycles` counter hid
/// *why* slots went idle; the breakdown is what Fig. 12-style analysis
/// needs to attribute LMI's slowdown).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    /// A candidate existed, but a source/predicate register written by a
    /// non-memory producer was not ready yet.
    pub scoreboard: u64,
    /// A candidate existed, but its binding wait was an in-flight memory
    /// result (the LSU had not delivered the load yet).
    pub lsu_busy: u64,
    /// A candidate existed, but the OCU verdict of an earlier marked
    /// instruction had not resolved (LMI's §XI-C pipeline delay).
    pub ocu_verdict: u64,
    /// No candidate at all: every warp on the slot was retired, not yet
    /// dispatched, or past the program end.
    pub no_ready_warp: u64,
}

impl StallBreakdown {
    /// Total stalled scheduler-slot cycles.
    pub fn total(&self) -> u64 {
        self.scoreboard + self.lsu_busy + self.ocu_verdict + self.no_ready_warp
    }

    /// JSON export with one field per reason plus the total.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("scoreboard", self.scoreboard)
            .with("lsu_busy", self.lsu_busy)
            .with("ocu_verdict", self.ocu_verdict)
            .with("no_ready_warp", self.no_ready_warp)
            .with("total", self.total())
    }
}

/// Aggregate statistics of one kernel run.
///
/// `PartialEq` is derived so the determinism suite can assert that runs at
/// different `--sim-threads` settings are bit-identical.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    /// Total cycles until the last warp retired.
    pub cycles: u64,
    /// Warp-level instructions issued.
    pub issued: u64,
    /// Integer-ALU instructions issued.
    pub int_issued: u64,
    /// FPU instructions issued.
    pub fpu_issued: u64,
    /// Hint-marked (OCU-checked) instructions issued.
    pub marked_issued: u64,
    /// Warp-level loads/stores per memory space.
    pub mem_by_space: BTreeMap<&'static str, u64>,
    /// Coalesced memory transactions issued.
    pub transactions: u64,
    /// Device-heap `malloc` calls executed (thread-level).
    pub mallocs: u64,
    /// Device-heap `free` calls executed (thread-level).
    pub frees: u64,
    /// Scheduler-slot stall cycles, by reason.
    pub stalls: StallBreakdown,
    /// Per-SM L1 data-cache hits/misses during this run.
    pub l1_per_sm: Vec<CacheStats>,
    /// Shared L2 hits/misses during this run.
    pub l2: CacheStats,
    /// L2 MSHR merges (requests absorbed into an in-flight miss).
    pub mshr_merges: u64,
    /// DRAM transactions issued during this run.
    pub dram_transactions: u64,
    /// Detected violations.
    pub violations: Vec<ViolationEvent>,
    /// Poison-to-fault provenance for each violation whose pointer was
    /// poisoned by the OCU earlier in the run (delayed termination, §XII-A).
    pub forensics: Vec<ForensicsRecord>,
    /// Sampling-profiler output (warp states, stall reasons, hot PCs per
    /// SM). Empty unless [`crate::GpuConfig::sample_period`] is set.
    pub profile: KernelProfile,
    /// Phase-B work units that must run on the single leader thread
    /// (per-event mechanism checks, stats/counter absorption, heap calls).
    /// Counted in deterministic work units — not wall time — so the value
    /// is bit-identical across `sim_threads` and `mem_banks`.
    pub phase_b_serial_items: u64,
    /// Phase-B work units routed to the bank-parallel passes (L1-missed
    /// line fills, per-lane data movement, metadata fetches). Same
    /// determinism guarantee as [`SimStats::phase_b_serial_items`].
    pub phase_b_banked_items: u64,
}

impl SimStats {
    pub(crate) fn record_mem(&mut self, space: MemSpace) {
        let key = match space {
            MemSpace::Global => "global",
            MemSpace::Shared => "shared",
            MemSpace::Local => "local",
            MemSpace::Const => "const",
        };
        *self.mem_by_space.entry(key).or_insert(0) += 1;
    }

    /// Warp-level loads/stores to `space` (Fig. 1's LDG/STG vs LDS/STS vs
    /// LDL/STL classification).
    pub fn mem_count(&self, space: MemSpace) -> u64 {
        let key = match space {
            MemSpace::Global => "global",
            MemSpace::Shared => "shared",
            MemSpace::Local => "local",
            MemSpace::Const => "const",
        };
        self.mem_by_space.get(key).copied().unwrap_or(0)
    }

    /// Total loads/stores to attack-relevant spaces (global+shared+local).
    pub fn mem_total(&self) -> u64 {
        self.mem_count(MemSpace::Global)
            + self.mem_count(MemSpace::Shared)
            + self.mem_count(MemSpace::Local)
    }

    /// Fraction of memory instructions targeting `space` (Fig. 1).
    pub fn mem_ratio(&self, space: MemSpace) -> f64 {
        let total = self.mem_total();
        if total == 0 {
            0.0
        } else {
            self.mem_count(space) as f64 / total as f64
        }
    }

    /// Returns `true` if any violation was recorded.
    pub fn violated(&self) -> bool {
        !self.violations.is_empty()
    }

    /// Warp-level instructions per cycle (the schedulers' utilization).
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.issued as f64 / self.cycles as f64
        }
    }

    /// L1 hits/misses summed over every SM.
    pub fn l1_total(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for s in &self.l1_per_sm {
            total.hits += s.hits;
            total.misses += s.misses;
        }
        total
    }

    /// Aggregate L1 hit rate across all SMs; 0 when nothing was accessed.
    pub fn l1_hit_rate(&self) -> f64 {
        self.l1_total().hit_rate()
    }

    /// L2 hit rate; 0 when nothing was accessed.
    pub fn l2_hit_rate(&self) -> f64 {
        self.l2.hit_rate()
    }

    /// Fraction of phase-B work units that stay on the single leader
    /// thread (the serial section the bank-sharded pipeline shrinks);
    /// 0 when nothing was applied.
    pub fn phase_b_serial_fraction(&self) -> f64 {
        let total = self.phase_b_serial_items + self.phase_b_banked_items;
        if total == 0 {
            0.0
        } else {
            self.phase_b_serial_items as f64 / total as f64
        }
    }

    /// Machine-readable export of the whole record (the body of the bench
    /// binaries' `--json` reports).
    pub fn to_json(&self) -> Json {
        let mut mem = Json::obj();
        for (&space, &n) in &self.mem_by_space {
            mem.set(space, n);
        }
        let mut l1_per_sm = Vec::with_capacity(self.l1_per_sm.len());
        for s in &self.l1_per_sm {
            l1_per_sm.push(Json::obj().with("hits", s.hits).with("misses", s.misses));
        }
        let l1 = self.l1_total();
        let mut violations = Vec::with_capacity(self.violations.len());
        for v in &self.violations {
            violations.push(
                Json::obj()
                    .with("sm", v.sm as u64)
                    .with("warp", v.warp as u64)
                    .with("pc", v.pc as u64)
                    .with("global_tid", v.global_tid)
                    .with("kind", format!("{:?}", v.violation)),
            );
        }
        Json::obj()
            .with("cycles", self.cycles)
            .with("issued", self.issued)
            .with("ipc", self.ipc())
            .with("int_issued", self.int_issued)
            .with("fpu_issued", self.fpu_issued)
            .with("marked_issued", self.marked_issued)
            .with("mem_by_space", mem)
            .with("transactions", self.transactions)
            .with("mallocs", self.mallocs)
            .with("frees", self.frees)
            .with("stalls", self.stalls.to_json())
            .with(
                "l1",
                Json::obj()
                    .with("hits", l1.hits)
                    .with("misses", l1.misses)
                    .with("hit_rate", l1.hit_rate())
                    .with("per_sm", Json::Arr(l1_per_sm)),
            )
            .with(
                "l2",
                Json::obj()
                    .with("hits", self.l2.hits)
                    .with("misses", self.l2.misses)
                    .with("hit_rate", self.l2.hit_rate()),
            )
            .with("mshr_merges", self.mshr_merges)
            .with("dram_transactions", self.dram_transactions)
            .with(
                "phase_b",
                Json::obj()
                    .with("serial_items", self.phase_b_serial_items)
                    .with("banked_items", self.phase_b_banked_items)
                    .with("serial_fraction", self.phase_b_serial_fraction()),
            )
            .with("violations", Json::Arr(violations))
            .with(
                "forensics",
                Json::Arr(self.forensics.iter().map(ForensicsRecord::to_json).collect()),
            )
            .with("profile", self.profile.to_json())
    }
}

impl std::fmt::Display for SimStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "cycles            {:>12}", self.cycles)?;
        writeln!(f, "issued (warp)     {:>12}  (IPC {:.2})", self.issued, self.ipc())?;
        writeln!(f, "  int alu         {:>12}", self.int_issued)?;
        writeln!(f, "  fpu             {:>12}", self.fpu_issued)?;
        writeln!(f, "  marked (OCU)    {:>12}", self.marked_issued)?;
        writeln!(
            f,
            "mem (G/S/L)       {:>12}  {} / {} / {}",
            self.mem_total(),
            self.mem_count(lmi_isa::MemSpace::Global),
            self.mem_count(lmi_isa::MemSpace::Shared),
            self.mem_count(lmi_isa::MemSpace::Local)
        )?;
        writeln!(f, "transactions      {:>12}", self.transactions)?;
        writeln!(f, "heap malloc/free  {:>12}  / {}", self.mallocs, self.frees)?;
        writeln!(
            f,
            "stalls            {:>12}  (sb {} / lsu {} / ocu {} / idle {})",
            self.stalls.total(),
            self.stalls.scoreboard,
            self.stalls.lsu_busy,
            self.stalls.ocu_verdict,
            self.stalls.no_ready_warp
        )?;
        if self.phase_b_serial_items + self.phase_b_banked_items > 0 {
            writeln!(
                f,
                "phase-B serial    {:>12.3}  ({} serial / {} banked units)",
                self.phase_b_serial_fraction(),
                self.phase_b_serial_items,
                self.phase_b_banked_items
            )?;
        }
        let l1 = self.l1_total();
        if l1.accesses() + self.l2.accesses() > 0 {
            writeln!(
                f,
                "L1 / L2 hit rate  {:>11.1}% / {:.1}%  (MSHR merges {}, DRAM {})",
                100.0 * l1.hit_rate(),
                100.0 * self.l2.hit_rate(),
                self.mshr_merges,
                self.dram_transactions
            )?;
        }
        if !self.profile.is_empty() {
            writeln!(
                f,
                "profile           {:>12}  samples (period {}, avg occupancy {:.1} warps)",
                self.profile.samples(),
                self.profile.period,
                self.profile.avg_occupancy()
            )?;
        }
        write!(f, "violations        {:>12}", self.violations.len())?;
        for rec in &self.forensics {
            write!(
                f,
                "\n  poisoned at pc {} ({}) -> faulted at pc {} lane {}: {} cycles, {} instrs",
                rec.poison.pc,
                rec.poison.op,
                rec.fault.pc,
                rec.fault.lane,
                rec.latency_cycles(),
                rec.latency_instructions()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_ratios_sum_to_one_over_protected_spaces() {
        let mut s = SimStats::default();
        for _ in 0..6 {
            s.record_mem(MemSpace::Global);
        }
        for _ in 0..3 {
            s.record_mem(MemSpace::Shared);
        }
        s.record_mem(MemSpace::Local);
        assert_eq!(s.mem_total(), 10);
        let sum = s.mem_ratio(MemSpace::Global)
            + s.mem_ratio(MemSpace::Shared)
            + s.mem_ratio(MemSpace::Local);
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((s.mem_ratio(MemSpace::Global) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn const_accesses_do_not_skew_fig1_ratios() {
        let mut s = SimStats::default();
        s.record_mem(MemSpace::Const);
        s.record_mem(MemSpace::Global);
        assert_eq!(s.mem_total(), 1);
        assert_eq!(s.mem_ratio(MemSpace::Global), 1.0);
    }
}
