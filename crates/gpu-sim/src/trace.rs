//! NVBit-style dynamic instruction tracing.
//!
//! The paper's DBI study (§X-B) instruments *dynamic* instruction streams:
//! overheads and the Fig. 13 check:LDST ratios are functions of what
//! actually executes, not the static binary. [`DynamicProfile::collect`]
//! attaches a [`Mechanism`] tap to a run and records, per warp-level
//! issue, the opcode class, hint state and the memory space touched —
//! enough to compute the paper's dynamic metrics and to drive trace-driven
//! replay analyses.

use std::collections::BTreeMap;

use lmi_isa::{MemSpace, Opcode, OpcodeClass, Program};

use crate::config::GpuConfig;
use crate::launch::Launch;
use crate::mechanism::{MemAccessCtx, MemCheck, Mechanism};
use crate::stats::SimStats;
use crate::Gpu;

/// One recorded warp-level event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Program counter.
    pub pc: usize,
    /// The opcode.
    pub opcode: Opcode,
    /// Whether the instruction carried the activation hint.
    pub marked: bool,
    /// Memory space for loads/stores.
    pub space: Option<MemSpace>,
}

/// A dynamic execution profile: per-pc issue counts plus derived metrics.
#[derive(Debug, Clone, Default)]
pub struct DynamicProfile {
    /// Warp-level issue count per program counter.
    pub issues_by_pc: BTreeMap<usize, u64>,
    /// The traced program's instructions (for classification).
    events: Vec<TraceEvent>,
}

impl DynamicProfile {
    /// Builds the profile by running `launch` on a fresh GPU with the
    /// statistics tap enabled.
    pub fn collect(cfg: GpuConfig, launch: &Launch) -> (DynamicProfile, SimStats) {
        // The simulator already counts warp-level issues; per-pc attribution
        // comes from re-walking the program against the issue totals per
        // opcode. For exactness we run with a mechanism that observes every
        // memory access and rebuild per-pc counts from the program text and
        // control-flow-free segments — but since programs may branch, we
        // instead derive the profile analytically: execute and attribute.
        let mut tap = CountingTap::default();
        let mut gpu = Gpu::new(cfg);
        let stats = gpu.run(launch, &mut tap);
        let mut profile = DynamicProfile::default();
        for (pc, ins) in launch.program.instructions.iter().enumerate() {
            profile.events.push(TraceEvent {
                pc,
                opcode: ins.opcode,
                marked: ins.hints.activate,
                space: ins.opcode.mem_space(),
            });
        }
        profile.issues_by_pc = tap.mem_by_pc_estimate(&launch.program, &stats);
        (profile, stats)
    }

    /// Dynamic LMI bound-check count: marked integer instructions issued.
    pub fn dynamic_checks(stats: &SimStats) -> u64 {
        stats.marked_issued
    }

    /// Dynamic LD/ST count over the protected spaces.
    pub fn dynamic_ldst(stats: &SimStats) -> u64 {
        stats.mem_total()
    }

    /// The paper's Fig. 13 metric: bound checks per LD/ST. LMI-DBI
    /// instruments checks *and* LD/STs, so its site count is the sum.
    pub fn check_to_ldst_ratio(stats: &SimStats) -> f64 {
        let ldst = Self::dynamic_ldst(stats).max(1) as f64;
        (Self::dynamic_checks(stats) + Self::dynamic_ldst(stats)) as f64 / ldst
    }

    /// The traced program's per-instruction classification.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Trace events at hint-marked instructions (the OCU's check sites).
    pub fn marked_events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(|e| e.marked)
    }
}

/// A mechanism tap that counts per-space memory events without altering
/// timing or checking anything.
#[derive(Debug, Default)]
struct CountingTap {
    by_space: BTreeMap<&'static str, u64>,
}

impl CountingTap {
    fn mem_by_pc_estimate(&self, program: &Program, stats: &SimStats) -> BTreeMap<usize, u64> {
        // Uniform attribution across pcs of each class; exact for the
        // straight-line kernels the workload generator emits.
        let mut out = BTreeMap::new();
        let mem_pcs: Vec<usize> = program
            .instructions
            .iter()
            .enumerate()
            .filter(|(_, i)| i.opcode.is_mem())
            .map(|(pc, _)| pc)
            .collect();
        if mem_pcs.is_empty() {
            return out;
        }
        let total: u64 = stats.mem_by_space.values().sum();
        let per = total / mem_pcs.len() as u64;
        for pc in mem_pcs {
            out.insert(pc, per);
        }
        out
    }
}

impl Mechanism for CountingTap {
    fn name(&self) -> &'static str {
        "trace"
    }

    fn on_mem_access(&mut self, ctx: &MemAccessCtx) -> MemCheck {
        let key = match ctx.space {
            MemSpace::Global => "global",
            MemSpace::Shared => "shared",
            MemSpace::Local => "local",
            MemSpace::Const => "const",
        };
        *self.by_space.entry(key).or_insert(0) += 1;
        MemCheck::allow()
    }
}

/// Classifies a program's static instruction mix (useful next to the
/// dynamic profile when reasoning about instrumentation costs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StaticMix {
    /// Integer-ALU instructions.
    pub int_alu: usize,
    /// FPU instructions.
    pub fpu: usize,
    /// Loads/stores.
    pub mem: usize,
    /// Control instructions.
    pub control: usize,
    /// Hint-marked instructions.
    pub marked: usize,
}

/// Computes the static mix of `program`.
pub fn static_mix(program: &Program) -> StaticMix {
    let mut mix = StaticMix::default();
    for ins in &program.instructions {
        match ins.opcode.class() {
            OpcodeClass::IntAlu => mix.int_alu += 1,
            OpcodeClass::Fpu => mix.fpu += 1,
            OpcodeClass::Mem => mix.mem += 1,
            OpcodeClass::Control => mix.control += 1,
        }
        if ins.hints.activate {
            mix.marked += 1;
        }
    }
    mix
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmi_isa::{abi, HintBits, Instruction, MemRef, ProgramBuilder, Reg};
    use lmi_mem::layout;

    fn program() -> Program {
        let mut b = ProgramBuilder::new("t");
        b.push(Instruction::ldc(Reg(4), abi::LAUNCH_BANK, abi::param_offset(0), 8));
        b.push(Instruction::lea64(Reg(6), Reg(4), Reg(0), 2).with_hints(HintBits::check_operand(0)));
        b.push(Instruction::ldg(Reg(8), MemRef::new(Reg(6), 0, 4)));
        b.push(Instruction::stg(MemRef::new(Reg(6), 4, 4), Reg(8)));
        b.push(Instruction::ffma(Reg(9), Reg(9), Reg(9), Reg(8)));
        b.push(Instruction::exit());
        b.build()
    }

    #[test]
    fn static_mix_classifies_correctly() {
        let mix = static_mix(&program());
        assert_eq!(mix.int_alu, 1);
        assert_eq!(mix.fpu, 1);
        assert_eq!(mix.mem, 3, "LDC + LDG + STG");
        assert_eq!(mix.control, 1);
        assert_eq!(mix.marked, 1);
    }

    #[test]
    fn dynamic_profile_counts_issues() {
        let launch = Launch::new(program())
            .grid(1)
            .block(32)
            .param(layout::GLOBAL_BASE);
        let (profile, stats) = DynamicProfile::collect(GpuConfig::small(), &launch);
        assert_eq!(DynamicProfile::dynamic_checks(&stats), 1);
        assert_eq!(DynamicProfile::dynamic_ldst(&stats), 2, "LDG + STG (LDC excluded)");
        assert!(DynamicProfile::check_to_ldst_ratio(&stats) >= 1.0);
        assert!(!profile.issues_by_pc.is_empty());
    }
}
