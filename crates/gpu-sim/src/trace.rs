//! NVBit-style dynamic instruction tracing.
//!
//! The paper's DBI study (§X-B) instruments *dynamic* instruction streams:
//! overheads and the Fig. 13 check:LDST ratios are functions of what
//! actually executes, not the static binary. [`DynamicProfile::collect`]
//! attaches a [`Mechanism`] tap to a run and records, per warp-level
//! issue, the opcode class, hint state and the memory space touched —
//! enough to compute the paper's dynamic metrics and to drive trace-driven
//! replay analyses.

use std::collections::BTreeMap;

use lmi_isa::{MemSpace, Opcode, OpcodeClass, Program};

use crate::config::GpuConfig;
use crate::launch::Launch;
use crate::mechanism::{Mechanism, MemAccessCtx, MemCheck};
use crate::stats::SimStats;
use crate::Gpu;

/// One recorded warp-level event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Program counter.
    pub pc: usize,
    /// The opcode.
    pub opcode: Opcode,
    /// Whether the instruction carried the activation hint.
    pub marked: bool,
    /// Memory space for loads/stores.
    pub space: Option<MemSpace>,
}

/// A dynamic execution profile: per-pc issue counts plus derived metrics.
#[derive(Debug, Clone, Default)]
pub struct DynamicProfile {
    /// Exact warp-level memory-issue count per program counter. `LDC`
    /// resolves against the launch constant bank without consulting the
    /// mechanism, so constant loads do not appear here — matching
    /// [`SimStats::mem_total`], which also excludes them.
    pub issues_by_pc: BTreeMap<usize, u64>,
    /// The traced program's instructions (for classification).
    events: Vec<TraceEvent>,
}

impl DynamicProfile {
    /// Builds the profile by running `launch` on a fresh GPU with the
    /// statistics tap enabled.
    pub fn collect(cfg: GpuConfig, launch: &Launch) -> (DynamicProfile, SimStats) {
        let mut tap = CountingTap::default();
        let mut gpu = Gpu::new(cfg);
        let stats = gpu.run(launch, &mut tap);
        let mut profile = DynamicProfile::default();
        for (pc, ins) in launch.program.instructions.iter().enumerate() {
            profile.events.push(TraceEvent {
                pc,
                opcode: ins.opcode,
                marked: ins.hints.activate,
                space: ins.opcode.mem_space(),
            });
        }
        profile.issues_by_pc = tap.issues_by_pc;
        (profile, stats)
    }

    /// Dynamic LMI bound-check count: marked integer instructions issued.
    pub fn dynamic_checks(stats: &SimStats) -> u64 {
        stats.marked_issued
    }

    /// Dynamic LD/ST count over the protected spaces.
    pub fn dynamic_ldst(stats: &SimStats) -> u64 {
        stats.mem_total()
    }

    /// The paper's Fig. 13 metric: bound checks per LD/ST. LMI-DBI
    /// instruments checks *and* LD/STs, so its site count is the sum.
    pub fn check_to_ldst_ratio(stats: &SimStats) -> f64 {
        let ldst = Self::dynamic_ldst(stats).max(1) as f64;
        (Self::dynamic_checks(stats) + Self::dynamic_ldst(stats)) as f64 / ldst
    }

    /// The traced program's per-instruction classification.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Trace events at hint-marked instructions (the OCU's check sites).
    pub fn marked_events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(|e| e.marked)
    }
}

/// A mechanism tap that counts per-space memory events without altering
/// timing or checking anything.
///
/// Per-pc counts are *exact*: every lane of one warp-level issue shares a
/// [`MemAccessCtx::issue_index`], so the tap counts each issue once at its
/// actual pc. (An earlier version distributed the total uniformly across
/// the program's memory pcs, which misattributed loops and divergent
/// kernels — see the regression tests below.)
#[derive(Debug, Default)]
struct CountingTap {
    by_space: BTreeMap<&'static str, u64>,
    issues_by_pc: BTreeMap<usize, u64>,
    last_issue: Option<u64>,
}

impl Mechanism for CountingTap {
    fn name(&self) -> &'static str {
        "trace"
    }

    fn on_mem_access(&mut self, ctx: &MemAccessCtx) -> MemCheck {
        let key = match ctx.space {
            MemSpace::Global => "global",
            MemSpace::Shared => "shared",
            MemSpace::Local => "local",
            MemSpace::Const => "const",
        };
        *self.by_space.entry(key).or_insert(0) += 1;
        // Lanes of one issue arrive back-to-back with the same index;
        // count the warp-level issue once, at the pc that really executed.
        if self.last_issue != Some(ctx.issue_index) {
            self.last_issue = Some(ctx.issue_index);
            *self.issues_by_pc.entry(ctx.pc).or_insert(0) += 1;
        }
        MemCheck::allow()
    }
}

/// Classifies a program's static instruction mix (useful next to the
/// dynamic profile when reasoning about instrumentation costs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StaticMix {
    /// Integer-ALU instructions.
    pub int_alu: usize,
    /// FPU instructions.
    pub fpu: usize,
    /// Loads/stores.
    pub mem: usize,
    /// Control instructions.
    pub control: usize,
    /// Hint-marked instructions.
    pub marked: usize,
}

/// Computes the static mix of `program`.
pub fn static_mix(program: &Program) -> StaticMix {
    let mut mix = StaticMix::default();
    for ins in &program.instructions {
        match ins.opcode.class() {
            OpcodeClass::IntAlu => mix.int_alu += 1,
            OpcodeClass::Fpu => mix.fpu += 1,
            OpcodeClass::Mem => mix.mem += 1,
            OpcodeClass::Control => mix.control += 1,
        }
        if ins.hints.activate {
            mix.marked += 1;
        }
    }
    mix
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmi_isa::{abi, HintBits, Instruction, MemRef, ProgramBuilder, Reg};
    use lmi_mem::layout;

    fn program() -> Program {
        let mut b = ProgramBuilder::new("t");
        b.push(Instruction::ldc(Reg(4), abi::LAUNCH_BANK, abi::param_offset(0), 8));
        b.push(
            Instruction::lea64(Reg(6), Reg(4), Reg(0), 2).with_hints(HintBits::check_operand(0)),
        );
        b.push(Instruction::ldg(Reg(8), MemRef::new(Reg(6), 0, 4)));
        b.push(Instruction::stg(MemRef::new(Reg(6), 4, 4), Reg(8)));
        b.push(Instruction::ffma(Reg(9), Reg(9), Reg(9), Reg(8)));
        b.push(Instruction::exit());
        b.build()
    }

    #[test]
    fn static_mix_classifies_correctly() {
        let mix = static_mix(&program());
        assert_eq!(mix.int_alu, 1);
        assert_eq!(mix.fpu, 1);
        assert_eq!(mix.mem, 3, "LDC + LDG + STG");
        assert_eq!(mix.control, 1);
        assert_eq!(mix.marked, 1);
    }

    #[test]
    fn dynamic_profile_counts_issues() {
        let launch = Launch::new(program()).grid(1).block(32).param(layout::GLOBAL_BASE);
        let (profile, stats) = DynamicProfile::collect(GpuConfig::small(), &launch);
        assert_eq!(DynamicProfile::dynamic_checks(&stats), 1);
        assert_eq!(DynamicProfile::dynamic_ldst(&stats), 2, "LDG + STG (LDC excluded)");
        assert!(DynamicProfile::check_to_ldst_ratio(&stats) >= 1.0);
        assert_eq!(profile.issues_by_pc.get(&2), Some(&1), "the LDG");
        assert_eq!(profile.issues_by_pc.get(&3), Some(&1), "the STG");
    }

    #[test]
    fn per_pc_attribution_is_exact_in_loops() {
        // A loop issuing the LDG four times per warp, with a single STG
        // after it. Uniform attribution would claim 2.5 issues at each
        // memory pc; the exact profile must report 4 and 1.
        use lmi_isa::instr::CmpOp;
        use lmi_isa::PredReg;
        let mut b = ProgramBuilder::new("loopy");
        b.push(Instruction::ldc(Reg(4), abi::LAUNCH_BANK, abi::param_offset(0), 8));
        b.push(Instruction::mov(Reg(2), 0));
        let top = b.label();
        let ldg_pc = 2usize;
        b.push(Instruction::ldg(Reg(8), MemRef::new(Reg(4), 0, 4)));
        b.push(Instruction::iadd3(Reg(2), Reg(2), 1));
        b.push(Instruction::isetp(PredReg(0), Reg(2), CmpOp::Lt, 4));
        b.branch_if(top, PredReg(0), false);
        let stg_pc = 6usize;
        b.push(Instruction::stg(MemRef::new(Reg(4), 0, 4), Reg(8)));
        b.push(Instruction::exit());
        let launch = Launch::new(b.build()).grid(1).block(32).param(layout::GLOBAL_BASE);
        let (profile, _) = DynamicProfile::collect(GpuConfig::small(), &launch);
        assert_eq!(profile.issues_by_pc.get(&ldg_pc), Some(&4), "LDG issues 4x per warp");
        assert_eq!(profile.issues_by_pc.get(&stg_pc), Some(&1), "STG issues once");
    }

    #[test]
    fn per_pc_attribution_is_exact_under_divergence() {
        // if (tid < 16) store at pc A else store at pc B: each store pc
        // issues exactly once per warp, with a partial mask.
        use lmi_isa::instr::CmpOp;
        use lmi_isa::PredReg;
        let mut b = ProgramBuilder::new("divergent");
        b.push(Instruction::s2r(Reg(0), lmi_isa::op::SpecialReg::TidX));
        b.push(Instruction::ldc(Reg(4), abi::LAUNCH_BANK, abi::param_offset(0), 8));
        b.push(Instruction::lea64(Reg(6), Reg(4), Reg(0), 2));
        b.push(Instruction::isetp(PredReg(0), Reg(0), CmpOp::Lt, 16));
        let taken = b.forward_branch_if(PredReg(0), false);
        let else_stg = 5usize;
        b.push(Instruction::stg(MemRef::new(Reg(6), 0, 4), Reg(0)));
        b.push(Instruction::exit());
        b.bind(taken);
        let then_stg = 7usize;
        b.push(Instruction::stg(MemRef::new(Reg(6), 0, 4), Reg(0)));
        b.push(Instruction::exit());
        let launch = Launch::new(b.build()).grid(1).block(32).param(layout::GLOBAL_BASE);
        let (profile, stats) = DynamicProfile::collect(GpuConfig::small(), &launch);
        assert_eq!(profile.issues_by_pc.get(&else_stg), Some(&1));
        assert_eq!(profile.issues_by_pc.get(&then_stg), Some(&1));
        let counted: u64 = profile.issues_by_pc.values().sum();
        assert_eq!(counted, stats.mem_total(), "every issue attributed exactly once");
    }
}
