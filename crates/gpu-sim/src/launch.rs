//! Kernel launch descriptors.

use lmi_isa::Program;

/// A kernel launch: program, geometry, and parameters.
///
/// Parameters are raw 64-bit values placed in constant bank 0 at
/// [`lmi_isa::abi::param_offset`]; pointer parameters carry their extent
/// bits when produced by an LMI allocator.
#[derive(Debug, Clone)]
pub struct Launch {
    /// The kernel.
    pub program: Program,
    /// Number of thread blocks.
    pub grid_blocks: usize,
    /// Threads per block (rounded up to full warps internally).
    pub threads_per_block: usize,
    /// Kernel parameters (8-byte slots).
    pub params: Vec<u64>,
    /// Launch phase: a fixed cycle offset added to every warp's dispatch
    /// time. Measuring at several phases and averaging marginalizes the
    /// scheduler-resonance sensitivity inherent to deterministic cycle
    /// simulators.
    pub phase: u64,
}

impl Launch {
    /// A launch of one block of one warp, with no parameters.
    pub fn new(program: Program) -> Launch {
        Launch { program, grid_blocks: 1, threads_per_block: 32, params: Vec::new(), phase: 0 }
    }

    /// Sets the launch phase (warp-dispatch cycle offset).
    pub fn phase(mut self, phase: u64) -> Launch {
        self.phase = phase;
        self
    }

    /// Sets the grid size (blocks).
    pub fn grid(mut self, blocks: usize) -> Launch {
        self.grid_blocks = blocks;
        self
    }

    /// Sets the block size (threads).
    pub fn block(mut self, threads: usize) -> Launch {
        self.threads_per_block = threads;
        self
    }

    /// Appends a parameter.
    pub fn param(mut self, value: u64) -> Launch {
        self.params.push(value);
        self
    }

    /// Total threads in the launch.
    pub fn total_threads(&self) -> usize {
        self.grid_blocks * self.threads_per_block
    }

    /// Warps per block.
    pub fn warps_per_block(&self) -> usize {
        self.threads_per_block.div_ceil(crate::config::WARP_SIZE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmi_isa::{Instruction, ProgramBuilder};

    #[test]
    fn builder_style_configuration() {
        let mut b = ProgramBuilder::new("k");
        b.push(Instruction::exit());
        let l = Launch::new(b.build()).grid(4).block(96).param(0xABCD);
        assert_eq!(l.total_threads(), 384);
        assert_eq!(l.warps_per_block(), 3);
        assert_eq!(l.params, vec![0xABCD]);
    }
}
