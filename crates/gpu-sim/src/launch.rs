//! Kernel launch descriptors and launch validation.

use lmi_isa::Program;

use crate::config::GpuConfig;

/// Why a launch cannot run on a given GPU (or SM partition).
///
/// The seed simulator `panic!`ed on these; the runtime layer
/// (`lmi-runtime`) instead surfaces them as rejected submissions, so a
/// misconfigured tenant cannot crash a shared simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaunchError {
    /// `grid_blocks == 0`: nothing to dispatch.
    ZeroGrid,
    /// `threads_per_block == 0`: warps cannot be formed.
    ZeroBlock,
    /// A single block carries more warps than one SM can ever hold.
    BlockTooLarge {
        /// Warps one block needs.
        warps: usize,
        /// Per-SM warp capacity.
        capacity: usize,
    },
    /// Round-robin dispatch over the partition would overflow an SM's
    /// resident-warp capacity.
    WarpCapacityExceeded {
        /// Warps the fullest SM would hold.
        warps: usize,
        /// Per-SM warp capacity.
        capacity: usize,
        /// SMs the launch was dispatched over.
        partition_sms: usize,
    },
    /// The SM partition handed to resident dispatch is empty or out of
    /// range for the configured GPU.
    BadPartition {
        /// Partition start (SM id).
        start: usize,
        /// Partition end (exclusive).
        end: usize,
        /// SMs on the GPU.
        num_sms: usize,
    },
    /// The program failed to lower into a decoded stream: an instruction
    /// carries a malformed immediate (corrupted microcode). Surfacing this
    /// at launch keeps the cycle loop decode-free — it never re-validates.
    Decode(lmi_isa::DecodeError),
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchError::ZeroGrid => write!(f, "launch has zero grid blocks"),
            LaunchError::ZeroBlock => write!(f, "launch has zero threads per block"),
            LaunchError::BlockTooLarge { warps, capacity } => {
                write!(f, "one block needs {warps} warps but an SM holds {capacity}")
            }
            LaunchError::WarpCapacityExceeded { warps, capacity, partition_sms } => write!(
                f,
                "launch exceeds per-SM warp capacity ({warps} > {capacity} over \
                 {partition_sms} SM(s))"
            ),
            LaunchError::BadPartition { start, end, num_sms } => {
                write!(f, "SM partition {start}..{end} is invalid on a {num_sms}-SM GPU")
            }
            LaunchError::Decode(e) => write!(f, "program failed to decode: {e}"),
        }
    }
}

impl std::error::Error for LaunchError {}

impl From<lmi_isa::DecodeError> for LaunchError {
    fn from(e: lmi_isa::DecodeError) -> LaunchError {
        LaunchError::Decode(e)
    }
}

/// A kernel launch: program, geometry, and parameters.
///
/// Parameters are raw 64-bit values placed in constant bank 0 at
/// [`lmi_isa::abi::param_offset`]; pointer parameters carry their extent
/// bits when produced by an LMI allocator.
#[derive(Debug, Clone)]
pub struct Launch {
    /// The kernel.
    pub program: Program,
    /// Number of thread blocks.
    pub grid_blocks: usize,
    /// Threads per block (rounded up to full warps internally).
    pub threads_per_block: usize,
    /// Kernel parameters (8-byte slots).
    pub params: Vec<u64>,
    /// Launch phase: a fixed cycle offset added to every warp's dispatch
    /// time. Measuring at several phases and averaging marginalizes the
    /// scheduler-resonance sensitivity inherent to deterministic cycle
    /// simulators.
    pub phase: u64,
}

impl Launch {
    /// A launch of one block of one warp, with no parameters.
    pub fn new(program: Program) -> Launch {
        Launch { program, grid_blocks: 1, threads_per_block: 32, params: Vec::new(), phase: 0 }
    }

    /// Sets the launch phase (warp-dispatch cycle offset).
    pub fn phase(mut self, phase: u64) -> Launch {
        self.phase = phase;
        self
    }

    /// Sets the grid size (blocks).
    pub fn grid(mut self, blocks: usize) -> Launch {
        self.grid_blocks = blocks;
        self
    }

    /// Sets the block size (threads).
    pub fn block(mut self, threads: usize) -> Launch {
        self.threads_per_block = threads;
        self
    }

    /// Appends a parameter.
    pub fn param(mut self, value: u64) -> Launch {
        self.params.push(value);
        self
    }

    /// Total threads in the launch.
    pub fn total_threads(&self) -> usize {
        self.grid_blocks * self.threads_per_block
    }

    /// Warps per block.
    pub fn warps_per_block(&self) -> usize {
        self.threads_per_block.div_ceil(crate::config::WARP_SIZE)
    }

    /// Validates the launch against a whole-GPU dispatch (all SMs).
    pub fn validate(&self, cfg: &GpuConfig) -> Result<(), LaunchError> {
        self.validate_on(cfg, cfg.num_sms)
    }

    /// Validates the launch against round-robin dispatch over a partition
    /// of `partition_sms` SMs. Mirrors the dispatch arithmetic in
    /// `Gpu::run`: block `b` lands on SM `b % partition_sms`, so the
    /// fullest SM holds `ceil(grid / partition_sms)` blocks.
    pub fn validate_on(&self, cfg: &GpuConfig, partition_sms: usize) -> Result<(), LaunchError> {
        if self.grid_blocks == 0 {
            return Err(LaunchError::ZeroGrid);
        }
        if self.threads_per_block == 0 {
            return Err(LaunchError::ZeroBlock);
        }
        if partition_sms == 0 || partition_sms > cfg.num_sms {
            return Err(LaunchError::BadPartition {
                start: 0,
                end: partition_sms,
                num_sms: cfg.num_sms,
            });
        }
        let wpb = self.warps_per_block();
        if wpb > cfg.max_warps_per_sm {
            return Err(LaunchError::BlockTooLarge { warps: wpb, capacity: cfg.max_warps_per_sm });
        }
        let fullest = self.grid_blocks.div_ceil(partition_sms) * wpb;
        if fullest > cfg.max_warps_per_sm {
            return Err(LaunchError::WarpCapacityExceeded {
                warps: fullest,
                capacity: cfg.max_warps_per_sm,
                partition_sms,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmi_isa::{Instruction, ProgramBuilder};

    #[test]
    fn builder_style_configuration() {
        let mut b = ProgramBuilder::new("k");
        b.push(Instruction::exit());
        let l = Launch::new(b.build()).grid(4).block(96).param(0xABCD);
        assert_eq!(l.total_threads(), 384);
        assert_eq!(l.warps_per_block(), 3);
        assert_eq!(l.params, vec![0xABCD]);
    }

    fn trivial() -> Program {
        let mut b = ProgramBuilder::new("k");
        b.push(Instruction::exit());
        b.build()
    }

    #[test]
    fn validate_accepts_fitting_launch() {
        let cfg = GpuConfig::small();
        let l = Launch::new(trivial()).grid(cfg.num_sms).block(32);
        assert_eq!(l.validate(&cfg), Ok(()));
    }

    #[test]
    fn validate_rejects_degenerate_geometry() {
        let cfg = GpuConfig::small();
        assert_eq!(Launch::new(trivial()).grid(0).validate(&cfg), Err(LaunchError::ZeroGrid));
        assert_eq!(Launch::new(trivial()).block(0).validate(&cfg), Err(LaunchError::ZeroBlock));
    }

    #[test]
    fn validate_rejects_capacity_overflow() {
        let cfg = GpuConfig::small();
        let cap = cfg.max_warps_per_sm;
        // One warp per block, more blocks per SM than the capacity.
        let l = Launch::new(trivial()).grid(cfg.num_sms * (cap + 1)).block(32);
        assert_eq!(
            l.validate(&cfg),
            Err(LaunchError::WarpCapacityExceeded {
                warps: cap + 1,
                capacity: cap,
                partition_sms: cfg.num_sms,
            })
        );
        // A single block too large for any SM.
        let l = Launch::new(trivial()).grid(1).block((cap + 1) * 32);
        assert_eq!(
            l.validate(&cfg),
            Err(LaunchError::BlockTooLarge { warps: cap + 1, capacity: cap })
        );
    }

    #[test]
    fn validate_on_narrower_partition_is_stricter() {
        let cfg = GpuConfig::small();
        let cap = cfg.max_warps_per_sm;
        // Fits across the whole GPU, overflows when squeezed onto one SM.
        let l = Launch::new(trivial()).grid(cfg.num_sms * cap).block(32);
        assert_eq!(l.validate(&cfg), Ok(()));
        assert!(matches!(
            l.validate_on(&cfg, 1),
            Err(LaunchError::WarpCapacityExceeded { partition_sms: 1, .. })
        ));
        assert!(matches!(
            l.validate_on(&cfg, cfg.num_sms + 1),
            Err(LaunchError::BadPartition { .. })
        ));
    }
}
