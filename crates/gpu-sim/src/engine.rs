//! The simulation engine: the deterministic bank-sharded cycle driver.
//!
//! One driver executes the phase protocol described in [`crate::sm`] at any
//! worker-thread count (1 = serial) and any memory-bank count (1 =
//! monolithic), always bit-identically:
//!
//! * **Phase A** — every SM concurrently: schedule, execute ALU work,
//!   probe the SM-local L1, and route L1 misses + per-lane data movement
//!   into per-SM per-bank queues.
//! * **Phase B-check** — the leader (the calling thread) walks every SM's
//!   events in ascending (slot, issue) order: statistics, counters,
//!   mechanism checks (each memory op gets a [`MemVerdict`]), heap calls,
//!   violations and forensics. Mechanism metadata fetches are routed to
//!   their owning banks. This is the only genuinely serial section; its
//!   size is surfaced as [`SimStats::phase_b_serial_items`] vs
//!   [`SimStats::phase_b_banked_items`]
//!   (`crate::stats::SimStats::phase_b_serial_fraction`).
//! * **Metadata pass** (only on cycles with metadata traffic) — each bank,
//!   applied by a fixed worker (`bank % threads`), performs its metadata
//!   fetches in canonical (slot, op) order and publishes each op's
//!   completion via an atomic max.
//! * **Bank pass** (only on cycles with memory traffic) — each bank drains
//!   its queues in canonical (slot, queue) order: L2/MSHR/DRAM line fills
//!   (timing) and byte movement through the bank's shard of the store
//!   (functional), gated on the op's verdict. Banks partition the address
//!   space at line granularity, so no two banks ever touch the same
//!   cache set, DRAM channel group, or store byte — running them
//!   concurrently is exactly the monolithic sequence, reordered across
//!   independent state.
//! * **Phase B-final** (only when tracing) — the leader emits memory
//!   transaction spans from the assembled completion times.
//! * **Phase C** — every SM concurrently applies results to its warps;
//!   memory-op timing is assembled from the bank-published atomics.
//!
//! Every pass is ordered canonically and every inter-pass hand-off is an
//! atomic max over values that are themselves canonical, so cycle counts,
//! cache hit/miss sequences, heap order, counters, trace contents and
//! forensics are **bit-identical at every thread count and bank count**.
//!
//! Synchronization is a sense-reversing spin barrier between passes;
//! memory-quiet cycles skip the bank barriers entirely (the leader decides
//! during B-check and publishes the schedule in atomic flags every thread
//! reads after the B-check barrier). Per-cycle reductions go through
//! double-buffered accumulators indexed by iteration parity, and a panic on
//! any thread poisons the pool, drains every worker out of the barrier
//! protocol, and re-raises on the calling thread.

use std::ops::Range;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering::SeqCst};
use std::sync::{Mutex, RwLock};

use lmi_alloc::{AllocError, DeviceHeap};
use lmi_core::error::TemporalKind;
use lmi_core::Violation;
use lmi_isa::{OpcodeClass, Reg};
use lmi_mem::{BankRouter, BankedHierarchy, BankedMemory, Cache, MemBank, SparseMemory};
use lmi_telemetry::{FaultEvent, PoisonEvent, Scope, TelemetrySink, TraceEventKind};

use crate::config::GpuConfig;
use crate::mechanism::{Mechanism, MemAccessCtx};
use crate::sm::{BankReq, CycleEvents, EventPool, IssueEvent, MemVerdict, SharedOp, Sm};
use crate::stats::{SimStats, ViolationEvent};

/// Per-kernel shared state: each kernel resident on the GPU owns its own
/// mechanism instance, statistics, and device heap. A classic single-kernel
/// run is the one-slot case.
pub(crate) struct KernelSlot<'a> {
    pub mechanism: &'a mut dyn Mechanism,
    pub stats: &'a mut SimStats,
    pub heap: &'a DeviceHeap,
}

/// The shared-state half of the machine, borrowed once per run. The
/// banked hierarchy/store are split into per-bank cells by the engine;
/// kernel-owned state lives in [`KernelSlot`]s, routed by `kernel_of_sm`
/// so concurrent kernels on disjoint SM partitions keep their mechanisms,
/// heaps and stats separate while *sharing* the L2/DRAM — contention
/// between tenants is modeled, isolation of metadata is not compromised.
pub(crate) struct SharedCtx<'a> {
    pub hierarchy: &'a mut BankedHierarchy,
    pub memory: &'a mut BankedMemory,
    pub kernels: Vec<KernelSlot<'a>>,
    /// SM index → index into `kernels`.
    pub kernel_of_sm: Vec<usize>,
    pub cfg: &'a GpuConfig,
    pub sink: &'a mut TelemetrySink,
}

/// Leader-only state: everything phase B-check touches. Only ever accessed
/// by the calling thread, so `&mut dyn Mechanism` / `&mut TelemetrySink`
/// never cross a thread boundary.
struct LeaderCtx<'l, 'a> {
    kernels: &'l mut Vec<KernelSlot<'a>>,
    kernel_of_sm: &'l [usize],
    cfg: &'l GpuConfig,
    sink: &'l mut TelemetrySink,
    /// Reused per-op metadata-address scratch (sorted + deduped).
    meta_scratch: Vec<u64>,
}

impl<'l, 'a> LeaderCtx<'l, 'a> {
    /// The kernel slot owning SM `sm_id`. Borrow is statement-scoped, so
    /// callers interleave slot access with `sink` access freely.
    fn kernel(&mut self, sm_id: usize) -> &mut KernelSlot<'a> {
        &mut self.kernels[self.kernel_of_sm[sm_id]]
    }
}

/// One address-interleaved shard of the shared memory system: the timing
/// model (L2 slice + MSHRs + DRAM channel group) and the matching shard of
/// the functional store. Exclusively owned by one bank worker per pass;
/// the mutex is never contended (fixed bank→worker assignment), it only
/// carries the `&mut` across the thread boundary.
struct BankCell<'m> {
    timing: &'m mut MemBank,
    store: &'m mut SparseMemory,
}

/// One metadata fetch routed to a bank by the B-check (slot = index into
/// the engine's slot list, op = index into that SM's issue list, local =
/// bank-compacted address).
struct MetaReq {
    slot: u32,
    op: u32,
    local: u64,
}

/// The bank-parallel half of the machine, shared by every thread.
struct Machine<'m> {
    cells: Vec<Mutex<BankCell<'m>>>,
    /// Per-bank metadata queues, filled by the leader in canonical order.
    /// Capacity survives the per-cycle `clear()`.
    meta_q: Vec<Mutex<Vec<MetaReq>>>,
    /// Cycle schedule, decided by the leader during B-check: does a
    /// metadata pass / a bank pass run this cycle? Every thread reads the
    /// flags after the B-check barrier, so the barrier count always agrees.
    meta_flag: AtomicBool,
    bank_flag: AtomicBool,
    router: BankRouter,
    banks: usize,
    /// Run-constant: the tracer needs a leader-only B-final step.
    tracer_on: bool,
}

/// One SM's slot: the SM, its own L1 (SM-local phase-A state), and its
/// cycle events. Behind a `RwLock`: phases A/C take the write lock from
/// the owning worker only; the bank passes take read locks (their writes
/// go through the events' atomics).
struct SmSlot<'l> {
    sm: Sm,
    l1: &'l mut Cache,
    events: CycleEvents,
}

/// Runs the machine to completion and returns the final cycle number.
/// `l1s[i]` is SM `sms[i]`'s L1 cache (owned by the GPU so warmth and
/// statistics persist across launches).
pub(crate) fn run(
    sms: &mut Vec<Sm>,
    l1s: Vec<&mut Cache>,
    shared: &mut SharedCtx<'_>,
    threads: usize,
) -> u64 {
    let threads = threads.clamp(1, sms.len().max(1));
    assert_eq!(l1s.len(), sms.len(), "one L1 per SM");
    let SharedCtx { hierarchy, memory, kernels, kernel_of_sm, cfg, sink } = shared;
    let banks = hierarchy.num_banks();
    assert_eq!(banks, memory.num_banks(), "timing and store must shard identically");
    let router = hierarchy.router();
    let machine = Machine {
        cells: hierarchy
            .banks_mut()
            .iter_mut()
            .zip(memory.banks_mut().iter_mut())
            .map(|(timing, store)| Mutex::new(BankCell { timing, store }))
            .collect(),
        meta_q: (0..banks).map(|_| Mutex::new(Vec::new())).collect(),
        meta_flag: AtomicBool::new(false),
        bank_flag: AtomicBool::new(false),
        router,
        banks,
        tracer_on: sink.tracer.is_enabled(),
    };
    let mut leader = LeaderCtx { kernels, kernel_of_sm, cfg, sink, meta_scratch: Vec::new() };

    let slots: Vec<RwLock<SmSlot>> = sms
        .drain(..)
        .zip(l1s)
        .map(|(sm, l1)| {
            let mut events = CycleEvents::default();
            events.ensure_banks(banks);
            RwLock::new(SmSlot { sm, l1, events })
        })
        .collect();
    // Contiguous SM ranges; the remainder goes to the front groups.
    let n = slots.len();
    let (base, rem) = (n / threads, n % threads);
    let mut ranges = Vec::with_capacity(threads);
    let mut start = 0;
    for t in 0..threads {
        let len = base + usize::from(t < rem);
        ranges.push(start..start + len);
        start += len;
    }
    let ctl = Ctl::new(threads);
    let cfg_v = **cfg;
    let mut final_cycle = 0u64;
    if threads == 1 {
        final_cycle = leader_loop(&slots, &machine, ranges[0].clone(), threads, &mut leader, &ctl);
    } else {
        std::thread::scope(|scope| {
            for (t, range) in ranges.iter().enumerate().skip(1) {
                let (slots, machine, ctl, range) = (&slots, &machine, &ctl, range.clone());
                scope.spawn(move || worker_loop(slots, machine, range, t, threads, &cfg_v, ctl));
            }
            final_cycle =
                leader_loop(&slots, &machine, ranges[0].clone(), threads, &mut leader, &ctl);
        });
    }
    sms.extend(slots.into_iter().map(|m| m.into_inner().unwrap_or_else(|e| e.into_inner()).sm));
    if let Some(payload) = ctl.payload.lock().unwrap_or_else(|e| e.into_inner()).take() {
        panic::resume_unwind(payload);
    }
    final_cycle
}

// ---------------------------------------------------------------------------
// Phase B-check: canonical application of one SM's cycle events.

/// Applies everything SM `sm_id` (slot `slot_idx`) deferred this cycle, in
/// issue order, and routes its bank work.
fn apply_cycle(
    sm_id: usize,
    slot_idx: usize,
    events: &mut CycleEvents,
    now: u64,
    machine: &Machine<'_>,
    leader: &mut LeaderCtx<'_, '_>,
) {
    if events.stalls != [0; 4] {
        let s = &events.stalls;
        let stats = &mut *leader.kernel(sm_id).stats;
        stats.stalls.scoreboard += s[0];
        stats.stalls.lsu_busy += s[1];
        stats.stalls.ocu_verdict += s[2];
        stats.stalls.no_ready_warp += s[3];
        const NAMES: [&str; 4] =
            ["stall.scoreboard", "stall.lsu_busy", "stall.ocu_verdict", "stall.no_ready_warp"];
        for (count, name) in s.iter().zip(NAMES) {
            if *count > 0 {
                leader.sink.counters.add(Scope::Sm(sm_id), name, *count);
            }
        }
    }
    if let Some(sample) = events.sample.take() {
        // Absorb the phase-A profiler sample into the owning kernel's
        // profile. Runs here (single thread, ascending SM order) so the
        // merged profile is canonical at every thread count.
        let period = leader.cfg.sample_period;
        let profile = &mut leader.kernel(sm_id).stats.profile;
        profile.period = period;
        profile.absorb(sm_id, &sample);
    }
    let CycleEvents { issues, pool, bank_q, .. } = events;
    for (op_idx, ev) in issues.iter_mut().enumerate() {
        apply_event(sm_id, slot_idx, op_idx as u32, ev, pool, now, machine, leader);
    }
    if bank_q.iter().any(|q| !q.is_empty()) {
        machine.bank_flag.store(true, SeqCst);
    }
}

#[allow(clippy::too_many_arguments)]
fn apply_event(
    sm_id: usize,
    slot_idx: usize,
    op_idx: u32,
    ev: &mut IssueEvent,
    pool: &mut EventPool,
    now: u64,
    machine: &Machine<'_>,
    leader: &mut LeaderCtx<'_, '_>,
) {
    // Every event costs the leader one walk step — the serial half of the
    // `phase_b_serial_fraction` stat. Deterministic: the issue list is
    // identical at every thread and bank count.
    leader.kernel(sm_id).stats.phase_b_serial_items += 1;
    if let Some(op) = ev.opcode {
        let stats = &mut *leader.kernel(sm_id).stats;
        stats.issued += 1;
        match op.class() {
            OpcodeClass::IntAlu => stats.int_issued += 1,
            OpcodeClass::Fpu => stats.fpu_issued += 1,
            _ => {}
        }
        if ev.activate {
            stats.marked_issued += 1;
        }
    }
    if let Some(space) = ev.mem_space {
        leader.kernel(sm_id).stats.record_mem(space);
        leader.sink.counters.inc(Scope::Sm(sm_id), "mem_insts");
    }
    let mnemonic = ev.opcode.map(|op| op.mnemonic()).unwrap_or("");
    ev.result = match ev.shared.take() {
        Some(SharedOp::MarkedInt { dst, pair, lanes }) => {
            let r = apply_marked_int(sm_id, ev, mnemonic, dst, pair, &lanes, pool, now, leader);
            pool.put_triples(lanes);
            Some(r)
        }
        Some(SharedOp::Heap { dst, pair, malloc, lanes }) => {
            let r = apply_heap(sm_id, ev, mnemonic, dst, pair, malloc, &lanes, pool, now, leader);
            pool.put_pairs(lanes);
            Some(r)
        }
        Some(op @ SharedOp::Mem { .. }) => {
            // The mechanism check runs here (serial, canonical); timing and
            // data movement were already routed to the banks in phase A and
            // stay gated on this verdict. The op itself rides to phase C.
            let verdict = check_mem(sm_id, slot_idx, op_idx, ev, &op, machine, leader, now);
            ev.verdict = Some(verdict);
            ev.shared = Some(op);
            None
        }
        None => None,
    };
    leader.sink.counters.inc(Scope::Sm(sm_id), "issued");
    leader.sink.counters.inc(Scope::Warp { sm: sm_id, warp: ev.warp }, "issued");
    let retiring = ev.retired_local
        || ev.result.as_ref().is_some_and(|r| r.retire)
        || ev.verdict.is_some_and(|v| v.cancelled);
    if retiring && leader.sink.tracer.is_enabled() {
        // The warp retires this cycle: emit its residency span.
        leader.sink.tracer.complete_with(
            "warp",
            TraceEventKind::WarpSpan,
            sm_id,
            ev.warp,
            ev.start_cycle,
            (now + 1).saturating_sub(ev.start_cycle),
            &[("block", ev.block as u64)],
        );
    }
}

/// OCU check of a hint-marked wide integer op (LMI's bounds pipeline).
#[allow(clippy::too_many_arguments)]
fn apply_marked_int(
    sm_id: usize,
    ev: &IssueEvent,
    mnemonic: &'static str,
    dst: Reg,
    pair: bool,
    lanes: &[(usize, u64, u64)],
    pool: &mut EventPool,
    now: u64,
    leader: &mut LeaderCtx<'_, '_>,
) -> crate::sm::OpResult {
    let mech_name = leader.kernel(sm_id).mechanism.name();
    let issue_index = leader.kernel(sm_id).stats.issued;
    let mut extra_delay = 0u32;
    let mut writes = pool.take_pairs();
    for &(l, input, raw) in lanes {
        let mech = &mut leader.kernel(sm_id).mechanism;
        let check = mech.on_marked_int(input, raw);
        extra_delay = extra_delay.max(mech.marked_int_delay());
        writes.push((l, check.value));
        if check.poisoned {
            // Delayed termination (§XII-A): remember where the pointer died
            // so a later EC fault can report it.
            leader.sink.forensics.record_poison(PoisonEvent {
                sm: sm_id,
                warp: ev.warp,
                lane: l,
                pc: ev.pc,
                op: mnemonic,
                cycle: now,
                instr_index: issue_index,
            });
            leader.sink.counters.inc(Scope::Mechanism(mech_name), "poisoned");
            if leader.sink.tracer.is_enabled() {
                leader.sink.tracer.instant(
                    "poison",
                    TraceEventKind::OcuPoison,
                    sm_id,
                    ev.warp,
                    now,
                    &[("pc", ev.pc as u64), ("lane", l as u64)],
                );
            }
        }
    }
    leader.sink.counters.inc(Scope::Mechanism(mech_name), "checks");
    if leader.sink.tracer.is_enabled() {
        leader.sink.tracer.complete_with(
            mnemonic,
            TraceEventKind::OcuCheck,
            sm_id,
            ev.warp,
            now,
            extra_delay as u64,
            &[("pc", ev.pc as u64)],
        );
    }
    let done_at = now + leader.cfg.int_latency as u64;
    crate::sm::OpResult {
        dst,
        pair,
        write_width: 8,
        writes,
        ready_at: Some(done_at),
        verdict_at: Some(done_at + extra_delay as u64),
        ready_mem_at: None,
        advance_pc: true,
        retire: false,
    }
}

/// Device-heap `malloc`/`free`, serialized through the shared allocator.
#[allow(clippy::too_many_arguments)]
fn apply_heap(
    sm_id: usize,
    ev: &IssueEvent,
    mnemonic: &'static str,
    dst: Reg,
    pair: bool,
    malloc: bool,
    lanes: &[(usize, u64)],
    pool: &mut EventPool,
    now: u64,
    leader: &mut LeaderCtx<'_, '_>,
) -> crate::sm::OpResult {
    let mut writes = pool.take_pairs();
    let mut violation = None;
    let issue_index = leader.kernel(sm_id).stats.issued;
    for &(l, value) in lanes {
        let gtid = ev.base_tid + l as u64;
        let slot = leader.kernel(sm_id);
        if malloc {
            let ptr = slot.heap.malloc(gtid as usize, value).unwrap_or(0);
            writes.push((l, ptr));
            slot.stats.mallocs += 1;
        } else {
            slot.stats.frees += 1;
            match slot.heap.free(value) {
                Err(e) => {
                    let kind = match e {
                        AllocError::DoubleFree(_) => TemporalKind::DoubleFree,
                        _ => TemporalKind::InvalidFree,
                    };
                    violation = Some((l, Violation::Temporal(kind)));
                }
                // Extent nullification (§VIII): under LMI the pass clears
                // the freed pointer's extent right after this call, so the
                // pointer is poisoned *here*. Remember the site so a later
                // use-after-free fault reports its poison-to-fault latency.
                Ok(()) if slot.mechanism.nullifies_on_free() => {
                    leader.sink.forensics.record_poison(PoisonEvent {
                        sm: sm_id,
                        warp: ev.warp,
                        lane: l,
                        pc: ev.pc,
                        op: mnemonic,
                        cycle: now,
                        instr_index: issue_index,
                    });
                }
                Ok(()) => {}
            }
        }
    }
    let ready_mem_at = if malloc { Some(now + leader.cfg.heap_call_latency as u64) } else { None };
    leader.sink.counters.inc(Scope::Sm(sm_id), "heap_calls");
    if leader.sink.tracer.is_enabled() {
        leader.sink.tracer.complete_with(
            mnemonic,
            TraceEventKind::HeapCall,
            sm_id,
            ev.warp,
            now,
            leader.cfg.heap_call_latency as u64,
            &[("pc", ev.pc as u64)],
        );
    }
    let mut retire = false;
    if let Some((lane, v)) = violation {
        leader.kernel(sm_id).stats.violations.push(ViolationEvent {
            sm: sm_id,
            warp: ev.warp,
            pc: ev.pc,
            global_tid: ev.base_tid + lane as u64,
            violation: v,
        });
        retire = leader.cfg.halt_on_violation;
    }
    crate::sm::OpResult {
        dst,
        pair,
        write_width: 8,
        writes,
        ready_at: None,
        verdict_at: None,
        ready_mem_at,
        advance_pc: true,
        retire,
    }
}

/// The mechanism check of a deferred memory access — the only part of a
/// memory op the leader still runs. Produces the verdict the bank passes
/// and phase C consume, charges the transaction statistics, and routes
/// metadata fetches to their owning banks.
#[allow(clippy::too_many_arguments)]
fn check_mem(
    sm_id: usize,
    slot_idx: usize,
    op_idx: u32,
    ev: &IssueEvent,
    op: &SharedOp,
    machine: &Machine<'_>,
    leader: &mut LeaderCtx<'_, '_>,
    now: u64,
) -> MemVerdict {
    let SharedOp::Mem { width, is_store, space, lanes, line_count, bank_items, .. } = op else {
        unreachable!("check_mem is only called for SharedOp::Mem");
    };
    let pc = ev.pc;
    // `stats.issued` was already bumped for this instruction, so it is a
    // unique id shared by every lane of this warp-level issue.
    let issue_index = leader.kernel(sm_id).stats.issued;
    let mech_name = leader.kernel(sm_id).mechanism.name();
    let mut survivors: crate::warp::LaneMask = 0;
    let mut faulted = false;
    let mut extra_cycles = 0u32;
    leader.meta_scratch.clear();
    for &lm in lanes {
        let ctx = MemAccessCtx {
            space: *space,
            raw: lm.raw,
            vaddr: lm.vaddr,
            width: *width,
            is_store: *is_store,
            global_tid: ev.base_tid + lm.lane as u64,
            pc,
            lane: lm.lane,
            issue_index,
        };
        let check = leader.kernel(sm_id).mechanism.on_mem_access(&ctx);
        extra_cycles = extra_cycles.max(check.extra_cycles);
        if let Some(addr) = check.metadata_addr {
            leader.meta_scratch.push(addr);
        }
        match check.violation {
            Some(v) => {
                faulted = true;
                leader.kernel(sm_id).stats.violations.push(ViolationEvent {
                    sm: sm_id,
                    warp: ev.warp,
                    pc,
                    global_tid: ctx.global_tid,
                    violation: v,
                });
                leader.sink.counters.inc(Scope::Mechanism(mech_name), "faults");
                if leader.sink.tracer.is_enabled() {
                    leader.sink.tracer.instant(
                        "fault",
                        TraceEventKind::EcFault,
                        sm_id,
                        ev.warp,
                        now,
                        &[("pc", pc as u64), ("lane", lm.lane as u64)],
                    );
                }
                // Close the poison→fault provenance loop (§XII-A): if this
                // lane's pointer was poisoned earlier, report the latency
                // between poisoning and detection.
                if let Some(record) = leader.sink.forensics.record_fault(FaultEvent {
                    sm: sm_id,
                    warp: ev.warp,
                    lane: lm.lane,
                    pc,
                    cycle: now,
                    instr_index: issue_index,
                }) {
                    leader.kernel(sm_id).stats.forensics.push(record);
                }
            }
            None => survivors |= 1 << lm.lane,
        }
    }

    if faulted && leader.cfg.halt_on_violation {
        // The faulting access never issues: no timing, no data movement,
        // no pc advance — the warp halts. The bank queues' entries for
        // this op are skipped by the verdict gate.
        return MemVerdict { survivors, cancelled: true, extra_cycles };
    }

    leader.kernel(sm_id).stats.transactions += line_count;
    leader.sink.counters.add(Scope::Sm(sm_id), "transactions", *line_count);

    // Route the mechanism's metadata fetches (bounds must be known before
    // the access may issue — check-before-access; the banks gate the data
    // fills on the published metadata completion).
    leader.meta_scratch.sort_unstable();
    leader.meta_scratch.dedup();
    let metas = leader.meta_scratch.len() as u64;
    if metas > 0 {
        for &addr in &leader.meta_scratch {
            let bank = machine.router.bank_of(addr);
            machine.meta_q[bank].lock().unwrap().push(MetaReq {
                slot: slot_idx as u32,
                op: op_idx,
                local: machine.router.localize(addr),
            });
        }
        machine.meta_flag.store(true, SeqCst);
    }
    leader.kernel(sm_id).stats.phase_b_banked_items += *bank_items as u64 + metas;
    MemVerdict { survivors, cancelled: false, extra_cycles }
}

// ---------------------------------------------------------------------------
// Bank passes.

/// The banks this worker owns: a fixed interleaved assignment, so a bank is
/// applied by the same thread every cycle (cache-warm) and by construction
/// never by two threads at once.
fn owned_banks(banks: usize, t: usize, threads: usize) -> impl Iterator<Item = usize> {
    (t..banks).step_by(threads.max(1))
}

/// Metadata pass: each bank performs its queued metadata fetches in
/// canonical (slot, op, address) order — exactly the order the leader
/// enqueued them — and publishes each op's completion cycle.
fn meta_pass(
    slots: &[RwLock<SmSlot<'_>>],
    machine: &Machine<'_>,
    now: u64,
    t: usize,
    threads: usize,
) {
    for b in owned_banks(machine.banks, t, threads) {
        let mut q = machine.meta_q[b].lock().unwrap();
        if q.is_empty() {
            continue;
        }
        let mut cell = machine.cells[b].lock().unwrap();
        for req in q.iter() {
            let done = cell.timing.access(req.local, now);
            let s = slots[req.slot as usize].read().unwrap();
            s.events.issues[req.op as usize].meta_done.fetch_max(done, SeqCst);
        }
        q.clear();
    }
}

/// Bank pass: each bank drains every SM's queue for it, slots ascending,
/// queue order within a slot — the canonical order restricted to this
/// bank's (disjoint) slice of the address space.
fn bank_pass(
    slots: &[RwLock<SmSlot<'_>>],
    machine: &Machine<'_>,
    now: u64,
    t: usize,
    threads: usize,
) {
    for b in owned_banks(machine.banks, t, threads) {
        let mut cell = machine.cells[b].lock().unwrap();
        let BankCell { timing, store } = &mut *cell;
        for slot in slots {
            let s = slot.read().unwrap();
            for req in &s.events.bank_q[b] {
                match *req {
                    BankReq::Fill { op, local } => {
                        let ev = &s.events.issues[op as usize];
                        let v = ev.verdict.expect("mem op verdict set in B-check");
                        if v.cancelled {
                            continue;
                        }
                        let start = now.max(ev.meta_done.load(SeqCst));
                        let done = timing.access(local, start);
                        ev.data_done.fetch_max(done, SeqCst);
                    }
                    BankReq::Move { op, lane_pos, local, width, shift, value } => {
                        let ev = &s.events.issues[op as usize];
                        let v = ev.verdict.expect("mem op verdict set in B-check");
                        if v.cancelled {
                            continue;
                        }
                        let Some(SharedOp::Mem { is_store, lanes, atoms, .. }) = &ev.shared else {
                            unreachable!("Move targets a memory op");
                        };
                        if v.survivors & (1 << lanes[lane_pos as usize].lane) == 0 {
                            continue;
                        }
                        if *is_store {
                            store.write(local, value, width);
                        } else {
                            let part = store.read(local, width) << (8 * shift as u32);
                            atoms[lane_pos as usize].fetch_or(part, SeqCst);
                        }
                    }
                }
            }
        }
    }
}

/// Phase B-final (tracer runs only): emit one memory-transaction span per
/// live memory op, from the completion times the banks published.
fn b_final(slots: &[RwLock<SmSlot<'_>>], leader: &mut LeaderCtx<'_, '_>, now: u64) {
    for slot in slots {
        let s = slot.read().unwrap();
        for ev in &s.events.issues {
            let Some(SharedOp::Mem { line_count, .. }) = &ev.shared else {
                continue;
            };
            let Some(v) = ev.verdict else { continue };
            if v.cancelled || v.survivors == 0 {
                continue;
            }
            let done = ev.mem_done_at(now, leader.cfg).expect("live mem op completes");
            let mnemonic = ev.opcode.map(|op| op.mnemonic()).unwrap_or("");
            leader.sink.tracer.complete_with(
                mnemonic,
                TraceEventKind::MemTransaction,
                s.sm.id,
                ev.warp,
                now,
                done.saturating_sub(now).max(1),
                &[
                    ("pc", ev.pc as u64),
                    ("lines", *line_count),
                    ("lanes", v.survivors.count_ones() as u64),
                ],
            );
        }
    }
}

// ---------------------------------------------------------------------------
// The cycle loop.

/// Per-cycle reduction accumulator (one of two, indexed by iteration
/// parity: the off-parity buffer is reset by the leader during phase B
/// while every worker is parked between barriers).
struct CycleAcc {
    issued_any: AtomicBool,
    next_ready: AtomicU64,
    all_done: AtomicBool,
}

impl CycleAcc {
    fn new() -> CycleAcc {
        CycleAcc {
            issued_any: AtomicBool::new(false),
            next_ready: AtomicU64::new(u64::MAX),
            all_done: AtomicBool::new(true),
        }
    }

    fn reset(&self) {
        self.issued_any.store(false, SeqCst);
        self.next_ready.store(u64::MAX, SeqCst);
        self.all_done.store(true, SeqCst);
    }
}

/// Decides the next cycle from a fully-accumulated [`CycleAcc`]; `None`
/// terminates. Pure, so every thread reaches the same answer.
fn advance(now: u64, acc: &CycleAcc) -> Option<u64> {
    if acc.all_done.load(SeqCst) {
        return None;
    }
    let next = if acc.issued_any.load(SeqCst) || acc.next_ready.load(SeqCst) == u64::MAX {
        now + 1
    } else {
        // Fast-forward over scoreboard stalls.
        acc.next_ready.load(SeqCst).max(now + 1)
    };
    debug_assert!(next < 1_000_000_000, "runaway simulation");
    Some(next)
}

/// A reusable sense-reversing spin barrier (simulated cycles are far too
/// short for `std::sync::Barrier`'s mutex+condvar round trip).
struct SpinBarrier {
    parties: usize,
    count: AtomicUsize,
    sense: AtomicBool,
}

impl SpinBarrier {
    fn new(parties: usize) -> SpinBarrier {
        SpinBarrier { parties, count: AtomicUsize::new(0), sense: AtomicBool::new(false) }
    }

    fn wait(&self, local_sense: &mut bool) {
        let target = !*local_sense;
        *local_sense = target;
        if self.count.fetch_add(1, SeqCst) == self.parties - 1 {
            // Last arrival: reset the count *before* releasing (a released
            // thread may re-enter the barrier immediately).
            self.count.store(0, SeqCst);
            self.sense.store(target, SeqCst);
        } else {
            let mut spins = 0u32;
            while self.sense.load(std::sync::atomic::Ordering::Acquire) != target {
                spins = spins.wrapping_add(1);
                if spins & 0x3F == 0 {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
    }
}

/// Shared control block of one parallel run.
struct Ctl {
    barrier: SpinBarrier,
    acc: [CycleAcc; 2],
    /// A phase body panicked somewhere; everyone drains out at the next
    /// barrier.
    poisoned: AtomicBool,
    payload: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl Ctl {
    fn new(parties: usize) -> Ctl {
        Ctl {
            barrier: SpinBarrier::new(parties),
            acc: [CycleAcc::new(), CycleAcc::new()],
            poisoned: AtomicBool::new(false),
            payload: Mutex::new(None),
        }
    }

    /// Runs one phase body, converting a panic into pool-wide poisoning
    /// (the thread keeps participating in barriers so nobody deadlocks).
    fn guard(&self, f: impl FnOnce()) {
        if self.poisoned.load(SeqCst) {
            return;
        }
        if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(f)) {
            self.poisoned.store(true, SeqCst);
            let mut slot = self.payload.lock().unwrap_or_else(|e| e.into_inner());
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
    }

    /// Barrier + poison check; `false` means "drain out now".
    fn sync(&self, sense: &mut bool) -> bool {
        self.barrier.wait(sense);
        !self.poisoned.load(SeqCst)
    }
}

fn phase_a_range(
    slots: &[RwLock<SmSlot<'_>>],
    machine: &Machine<'_>,
    range: &Range<usize>,
    now: u64,
    cfg: &GpuConfig,
    acc: &CycleAcc,
) {
    let mut issued = false;
    let mut next = u64::MAX;
    for slot in &slots[range.clone()] {
        let mut s = slot.write().unwrap();
        let SmSlot { sm, l1, events } = &mut *s;
        let outcome = sm.step_phase_a(now, cfg, events, l1, &machine.router);
        issued |= outcome.issued_any;
        next = next.min(outcome.next_ready);
    }
    if issued {
        acc.issued_any.store(true, SeqCst);
    }
    acc.next_ready.fetch_min(next, SeqCst);
}

fn phase_c_range(
    slots: &[RwLock<SmSlot<'_>>],
    range: &Range<usize>,
    now: u64,
    cfg: &GpuConfig,
    acc: &CycleAcc,
) {
    let mut all = true;
    for slot in &slots[range.clone()] {
        let mut s = slot.write().unwrap();
        let SmSlot { sm, events, .. } = &mut *s;
        sm.apply_results(events, now, cfg);
        all &= sm.all_done();
    }
    if !all {
        acc.all_done.store(false, SeqCst);
    }
}

/// The conditional bank barriers of one cycle: every thread reads the
/// schedule flags (published by the leader before the B-check barrier
/// released), so the barrier count always agrees. Returns `false` on
/// poisoning.
fn bank_sync_phases(
    slots: &[RwLock<SmSlot<'_>>],
    machine: &Machine<'_>,
    now: u64,
    t: usize,
    threads: usize,
    ctl: &Ctl,
    sense: &mut bool,
) -> bool {
    if machine.meta_flag.load(SeqCst) {
        ctl.guard(|| meta_pass(slots, machine, now, t, threads));
        if !ctl.sync(sense) {
            return false;
        }
    }
    if machine.bank_flag.load(SeqCst) {
        ctl.guard(|| bank_pass(slots, machine, now, t, threads));
        if !ctl.sync(sense) {
            return false;
        }
    }
    true
}

fn worker_loop(
    slots: &[RwLock<SmSlot<'_>>],
    machine: &Machine<'_>,
    range: Range<usize>,
    t: usize,
    threads: usize,
    cfg: &GpuConfig,
    ctl: &Ctl,
) {
    let mut sense = false;
    let mut now = 0u64;
    let mut parity = 0usize;
    loop {
        ctl.guard(|| phase_a_range(slots, machine, &range, now, cfg, &ctl.acc[parity]));
        if !ctl.sync(&mut sense) {
            break; // A-done
        }
        if !ctl.sync(&mut sense) {
            break; // B-check done (the leader ran the serial section)
        }
        if !bank_sync_phases(slots, machine, now, t, threads, ctl, &mut sense) {
            break;
        }
        if machine.tracer_on && !ctl.sync(&mut sense) {
            break; // B-final done (leader-only span emission)
        }
        ctl.guard(|| phase_c_range(slots, &range, now, cfg, &ctl.acc[parity]));
        if !ctl.sync(&mut sense) {
            break; // C-done
        }
        match advance(now, &ctl.acc[parity]) {
            Some(next) => now = next,
            None => break,
        }
        parity ^= 1;
    }
}

fn leader_loop(
    slots: &[RwLock<SmSlot<'_>>],
    machine: &Machine<'_>,
    range: Range<usize>,
    threads: usize,
    leader: &mut LeaderCtx<'_, '_>,
    ctl: &Ctl,
) -> u64 {
    let cfg = *leader.cfg;
    let mut sense = false;
    let mut now = 0u64;
    let mut parity = 0usize;
    loop {
        ctl.guard(|| phase_a_range(slots, machine, &range, now, &cfg, &ctl.acc[parity]));
        if !ctl.sync(&mut sense) {
            break;
        }
        // Phase B-check: the serial section, ascending slot order. The
        // schedule flags are published before the barrier releases, so
        // every thread agrees on this cycle's barrier count.
        ctl.guard(|| {
            machine.meta_flag.store(false, SeqCst);
            machine.bank_flag.store(false, SeqCst);
            for (slot_idx, slot) in slots.iter().enumerate() {
                let mut s = slot.write().unwrap();
                let SmSlot { sm, events, .. } = &mut *s;
                apply_cycle(sm.id, slot_idx, events, now, machine, leader);
            }
            // Workers are parked between the A and C barriers: safe to
            // recycle the off-parity accumulator for the next cycle.
            ctl.acc[parity ^ 1].reset();
        });
        if !ctl.sync(&mut sense) {
            break;
        }
        if !bank_sync_phases(slots, machine, now, 0, threads, ctl, &mut sense) {
            break;
        }
        if machine.tracer_on {
            ctl.guard(|| b_final(slots, leader, now));
            if !ctl.sync(&mut sense) {
                break;
            }
        }
        ctl.guard(|| phase_c_range(slots, &range, now, &cfg, &ctl.acc[parity]));
        if !ctl.sync(&mut sense) {
            break;
        }
        match advance(now, &ctl.acc[parity]) {
            Some(next) => now = next,
            None => break,
        }
        parity ^= 1;
    }
    now
}
