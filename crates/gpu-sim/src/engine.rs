//! The simulation engine: serial and parallel deterministic drivers.
//!
//! Both drivers execute the three-phase cycle protocol described in
//! [`crate::sm`]:
//!
//! * the **serial** driver interleaves the phases per SM (A, B, C for SM 0,
//!   then SM 1, …) — byte-for-byte the schedule the original single-thread
//!   engine executed;
//! * the **parallel** driver runs phase A for every SM concurrently on a
//!   worker pool, then the leader (the calling thread) applies phase B for
//!   every SM in ascending SM order, then phase C runs concurrently again.
//!
//! Phase A reads and writes only SM-private state, and phase C writes only
//! SM-private state, so reordering them across SMs cannot change anything.
//! All shared state — the memory hierarchy, the functional store, the
//! device heap, the mechanism, statistics, telemetry — is touched only in
//! phase B, always by one thread, always in the same canonical order.
//! Cache hit/miss sequences, heap allocation order, counters, trace-ring
//! contents and forensics are therefore **bit-identical at every thread
//! count**, including 1.
//!
//! Synchronization is three sense-reversing spin barriers per simulated
//! cycle (phase-A done, phase-B done, phase-C done). Per-cycle reductions
//! (did anyone issue? when is the next warp ready? is everyone done?) go
//! through double-buffered atomic accumulators indexed by iteration parity;
//! the leader resets the off-parity buffer during phase B, while every
//! worker is parked between barriers. After the phase-C barrier every
//! thread computes the next cycle number from the same accumulator with the
//! same pure function, so the threads never disagree on the clock.
//!
//! A panic on any thread (simulator bugs, mechanism asserts) is caught,
//! recorded, and re-raised on the calling thread after every worker has
//! drained out of the barrier protocol — a panicking SM cannot deadlock
//! the pool.

use std::ops::Range;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering::SeqCst};
use std::sync::Mutex;

use lmi_alloc::{AllocError, DeviceHeap};
use lmi_core::error::TemporalKind;
use lmi_core::Violation;
use lmi_isa::{MemSpace, OpcodeClass, Reg};
use lmi_mem::{MemoryHierarchy, SparseMemory};
use lmi_telemetry::{FaultEvent, PoisonEvent, Scope, TelemetrySink, TraceEventKind};

use crate::config::GpuConfig;
use crate::lsu::coalesce_into;
use crate::mechanism::{Mechanism, MemAccessCtx};
use crate::sm::{CycleEvents, EventPool, IssueEvent, LaneMem, OpResult, SharedOp, Sm};
use crate::stats::{SimStats, ViolationEvent};

/// Per-kernel shared state: each kernel resident on the GPU owns its own
/// mechanism instance, statistics, and device heap. A classic single-kernel
/// run is the one-slot case.
pub(crate) struct KernelSlot<'a> {
    pub mechanism: &'a mut dyn Mechanism,
    pub stats: &'a mut SimStats,
    pub heap: &'a DeviceHeap,
}

/// The shared-state half of the machine, borrowed once per run (the serial
/// engine used to rebuild an equivalent struct per SM per cycle).
///
/// Machine-wide state (hierarchy, functional store, telemetry) is one
/// instance; kernel-owned state lives in [`KernelSlot`]s, routed by
/// `kernel_of_sm` so concurrent kernels on disjoint SM partitions keep
/// their mechanisms, heaps and stats separate while *sharing* the L2/DRAM
/// — contention between tenants is modeled, isolation of metadata is not
/// compromised.
pub(crate) struct SharedCtx<'a> {
    pub hierarchy: &'a mut MemoryHierarchy,
    pub memory: &'a mut SparseMemory,
    pub kernels: Vec<KernelSlot<'a>>,
    /// SM index → index into `kernels`.
    pub kernel_of_sm: Vec<usize>,
    pub cfg: &'a GpuConfig,
    pub sink: &'a mut TelemetrySink,
}

impl<'a> SharedCtx<'a> {
    /// The kernel slot owning SM `sm_id`. Borrow is statement-scoped, so
    /// callers interleave slot access with `sink`/`hierarchy` access freely.
    fn kernel(&mut self, sm_id: usize) -> &mut KernelSlot<'a> {
        &mut self.kernels[self.kernel_of_sm[sm_id]]
    }
}

/// Runs the machine to completion and returns the final cycle number.
pub(crate) fn run(sms: &mut Vec<Sm>, shared: &mut SharedCtx<'_>, threads: usize) -> u64 {
    let threads = threads.clamp(1, sms.len().max(1));
    if threads <= 1 {
        run_serial(sms, shared)
    } else {
        run_parallel(sms, shared, threads)
    }
}

// ---------------------------------------------------------------------------
// Phase B: canonical application of one SM's cycle events.

/// Applies everything SM `sm_id` deferred this cycle, in issue order.
fn apply_cycle(sm_id: usize, events: &mut CycleEvents, now: u64, shared: &mut SharedCtx<'_>) {
    if events.stalls != [0; 4] {
        let s = &events.stalls;
        let stats = &mut *shared.kernel(sm_id).stats;
        stats.stalls.scoreboard += s[0];
        stats.stalls.lsu_busy += s[1];
        stats.stalls.ocu_verdict += s[2];
        stats.stalls.no_ready_warp += s[3];
        const NAMES: [&str; 4] =
            ["stall.scoreboard", "stall.lsu_busy", "stall.ocu_verdict", "stall.no_ready_warp"];
        for (count, name) in s.iter().zip(NAMES) {
            if *count > 0 {
                shared.sink.counters.add(Scope::Sm(sm_id), name, *count);
            }
        }
    }
    if let Some(sample) = events.sample.take() {
        // Absorb the phase-A profiler sample into the owning kernel's
        // profile. Runs here (single thread, ascending SM order) so the
        // merged profile is canonical at every thread count.
        let period = shared.cfg.sample_period;
        let profile = &mut shared.kernel(sm_id).stats.profile;
        profile.period = period;
        profile.absorb(sm_id, &sample);
    }
    let CycleEvents { issues, pool, .. } = events;
    for ev in issues.iter_mut() {
        apply_event(sm_id, ev, pool, now, shared);
    }
}

fn apply_event(
    sm_id: usize,
    ev: &mut IssueEvent,
    pool: &mut EventPool,
    now: u64,
    shared: &mut SharedCtx<'_>,
) {
    if let Some(op) = ev.opcode {
        let stats = &mut *shared.kernel(sm_id).stats;
        stats.issued += 1;
        match op.class() {
            OpcodeClass::IntAlu => stats.int_issued += 1,
            OpcodeClass::Fpu => stats.fpu_issued += 1,
            _ => {}
        }
        if ev.activate {
            stats.marked_issued += 1;
        }
    }
    if let Some(space) = ev.mem_space {
        shared.kernel(sm_id).stats.record_mem(space);
        shared.sink.counters.inc(Scope::Sm(sm_id), "mem_insts");
    }
    let mnemonic = ev.opcode.map(|op| op.mnemonic()).unwrap_or("");
    ev.result = match ev.shared.take() {
        Some(SharedOp::MarkedInt { dst, pair, lanes }) => {
            let r = apply_marked_int(sm_id, ev, mnemonic, dst, pair, &lanes, pool, now, shared);
            pool.put_triples(lanes);
            Some(r)
        }
        Some(SharedOp::Heap { dst, pair, malloc, lanes }) => {
            let r = apply_heap(sm_id, ev, mnemonic, dst, pair, malloc, &lanes, pool, now, shared);
            pool.put_pairs(lanes);
            Some(r)
        }
        Some(SharedOp::Mem { dst, pair, width, is_store, space, lanes, mut lines }) => {
            let r = apply_mem(
                sm_id, ev, mnemonic, dst, pair, width, is_store, space, &lanes, &mut lines, pool,
                now, shared,
            );
            pool.put_lane_mem(lanes);
            pool.put_lines(lines);
            Some(r)
        }
        None => None,
    };
    shared.sink.counters.inc(Scope::Sm(sm_id), "issued");
    shared.sink.counters.inc(Scope::Warp { sm: sm_id, warp: ev.warp }, "issued");
    let retiring = ev.retired_local || ev.result.as_ref().is_some_and(|r| r.retire);
    if retiring && shared.sink.tracer.is_enabled() {
        // The warp retires this cycle: emit its residency span.
        shared.sink.tracer.complete_with(
            "warp",
            TraceEventKind::WarpSpan,
            sm_id,
            ev.warp,
            ev.start_cycle,
            (now + 1).saturating_sub(ev.start_cycle),
            &[("block", ev.block as u64)],
        );
    }
}

/// OCU check of a hint-marked wide integer op (LMI's bounds pipeline).
#[allow(clippy::too_many_arguments)]
fn apply_marked_int(
    sm_id: usize,
    ev: &IssueEvent,
    mnemonic: &'static str,
    dst: Reg,
    pair: bool,
    lanes: &[(usize, u64, u64)],
    pool: &mut EventPool,
    now: u64,
    shared: &mut SharedCtx<'_>,
) -> OpResult {
    let mech_name = shared.kernel(sm_id).mechanism.name();
    let issue_index = shared.kernel(sm_id).stats.issued;
    let mut extra_delay = 0u32;
    let mut writes = pool.take_pairs();
    for &(l, input, raw) in lanes {
        let mech = &mut shared.kernel(sm_id).mechanism;
        let check = mech.on_marked_int(input, raw);
        extra_delay = extra_delay.max(mech.marked_int_delay());
        writes.push((l, check.value));
        if check.poisoned {
            // Delayed termination (§XII-A): remember where the pointer died
            // so a later EC fault can report it.
            shared.sink.forensics.record_poison(PoisonEvent {
                sm: sm_id,
                warp: ev.warp,
                lane: l,
                pc: ev.pc,
                op: mnemonic,
                cycle: now,
                instr_index: issue_index,
            });
            shared.sink.counters.inc(Scope::Mechanism(mech_name), "poisoned");
            if shared.sink.tracer.is_enabled() {
                shared.sink.tracer.instant(
                    "poison",
                    TraceEventKind::OcuPoison,
                    sm_id,
                    ev.warp,
                    now,
                    &[("pc", ev.pc as u64), ("lane", l as u64)],
                );
            }
        }
    }
    shared.sink.counters.inc(Scope::Mechanism(mech_name), "checks");
    if shared.sink.tracer.is_enabled() {
        shared.sink.tracer.complete_with(
            mnemonic,
            TraceEventKind::OcuCheck,
            sm_id,
            ev.warp,
            now,
            extra_delay as u64,
            &[("pc", ev.pc as u64)],
        );
    }
    let done_at = now + shared.cfg.int_latency as u64;
    OpResult {
        dst,
        pair,
        write_width: 8,
        writes,
        ready_at: Some(done_at),
        verdict_at: Some(done_at + extra_delay as u64),
        ready_mem_at: None,
        advance_pc: true,
        retire: false,
    }
}

/// Device-heap `malloc`/`free`, serialized through the shared allocator.
#[allow(clippy::too_many_arguments)]
fn apply_heap(
    sm_id: usize,
    ev: &IssueEvent,
    mnemonic: &'static str,
    dst: Reg,
    pair: bool,
    malloc: bool,
    lanes: &[(usize, u64)],
    pool: &mut EventPool,
    now: u64,
    shared: &mut SharedCtx<'_>,
) -> OpResult {
    let mut writes = pool.take_pairs();
    let mut violation = None;
    for &(l, value) in lanes {
        let gtid = ev.base_tid + l as u64;
        let slot = shared.kernel(sm_id);
        if malloc {
            let ptr = slot.heap.malloc(gtid as usize, value).unwrap_or(0);
            writes.push((l, ptr));
            slot.stats.mallocs += 1;
        } else {
            slot.stats.frees += 1;
            if let Err(e) = slot.heap.free(value) {
                let kind = match e {
                    AllocError::DoubleFree(_) => TemporalKind::DoubleFree,
                    _ => TemporalKind::InvalidFree,
                };
                violation = Some((l, Violation::Temporal(kind)));
            }
        }
    }
    let ready_mem_at = if malloc { Some(now + shared.cfg.heap_call_latency as u64) } else { None };
    shared.sink.counters.inc(Scope::Sm(sm_id), "heap_calls");
    if shared.sink.tracer.is_enabled() {
        shared.sink.tracer.complete_with(
            mnemonic,
            TraceEventKind::HeapCall,
            sm_id,
            ev.warp,
            now,
            shared.cfg.heap_call_latency as u64,
            &[("pc", ev.pc as u64)],
        );
    }
    let mut retire = false;
    if let Some((lane, v)) = violation {
        shared.kernel(sm_id).stats.violations.push(ViolationEvent {
            sm: sm_id,
            warp: ev.warp,
            pc: ev.pc,
            global_tid: ev.base_tid + lane as u64,
            violation: v,
        });
        retire = shared.cfg.halt_on_violation;
    }
    OpResult {
        dst,
        pair,
        write_width: 8,
        writes,
        ready_at: None,
        verdict_at: None,
        ready_mem_at,
        advance_pc: true,
        retire,
    }
}

/// A non-constant memory access: mechanism check, hierarchy timing, and
/// functional data movement.
#[allow(clippy::too_many_arguments)]
fn apply_mem(
    sm_id: usize,
    ev: &IssueEvent,
    mnemonic: &'static str,
    dst: Reg,
    pair: bool,
    width: u8,
    is_store: bool,
    space: MemSpace,
    lanes: &[LaneMem],
    lines: &mut Vec<u64>,
    pool: &mut EventPool,
    now: u64,
    shared: &mut SharedCtx<'_>,
) -> OpResult {
    let pc = ev.pc;
    // `stats.issued` was already bumped for this instruction, so it is a
    // unique id shared by every lane of this warp-level issue.
    let issue_index = shared.kernel(sm_id).stats.issued;
    let mech_name = shared.kernel(sm_id).mechanism.name();
    let mut ok = pool.take_lane_mem();
    let mut faulted = false;
    let mut extra_cycles = 0u32;
    let mut metadata_addrs = pool.take_lines();
    for &lm in lanes {
        let ctx = MemAccessCtx {
            space,
            raw: lm.raw,
            vaddr: lm.vaddr,
            width,
            is_store,
            global_tid: ev.base_tid + lm.lane as u64,
            pc,
            lane: lm.lane,
            issue_index,
        };
        let check = shared.kernel(sm_id).mechanism.on_mem_access(&ctx);
        extra_cycles = extra_cycles.max(check.extra_cycles);
        if let Some(addr) = check.metadata_addr {
            metadata_addrs.push(addr);
        }
        match check.violation {
            Some(v) => {
                faulted = true;
                shared.kernel(sm_id).stats.violations.push(ViolationEvent {
                    sm: sm_id,
                    warp: ev.warp,
                    pc,
                    global_tid: ctx.global_tid,
                    violation: v,
                });
                shared.sink.counters.inc(Scope::Mechanism(mech_name), "faults");
                if shared.sink.tracer.is_enabled() {
                    shared.sink.tracer.instant(
                        "fault",
                        TraceEventKind::EcFault,
                        sm_id,
                        ev.warp,
                        now,
                        &[("pc", pc as u64), ("lane", lm.lane as u64)],
                    );
                }
                // Close the poison→fault provenance loop (§XII-A): if this
                // lane's pointer was poisoned earlier, report the latency
                // between poisoning and detection.
                if let Some(record) = shared.sink.forensics.record_fault(FaultEvent {
                    sm: sm_id,
                    warp: ev.warp,
                    lane: lm.lane,
                    pc,
                    cycle: now,
                    instr_index: issue_index,
                }) {
                    shared.kernel(sm_id).stats.forensics.push(record);
                }
            }
            None => ok.push(lm),
        }
    }

    if faulted && shared.cfg.halt_on_violation {
        // The faulting access never issues: no timing, no data movement,
        // no pc advance — the warp halts.
        pool.put_lane_mem(ok);
        pool.put_lines(metadata_addrs);
        return OpResult {
            dst,
            pair,
            write_width: width,
            writes: pool.take_pairs(),
            ready_at: None,
            verdict_at: None,
            ready_mem_at: None,
            advance_pc: false,
            retire: true,
        };
    }

    // Timing: mechanism metadata fetches complete FIRST (bounds must be
    // known before the access may issue — check-before-access), then the
    // coalesced transactions (or the fixed shared-memory path).
    metadata_addrs.sort_unstable();
    metadata_addrs.dedup();
    let issued_at = now;
    let mut access_start = now;
    for addr in &metadata_addrs {
        access_start = access_start.max(shared.hierarchy.metadata_fetch(*addr, now));
    }
    let t = access_start;
    let mut done_at = t;
    let mut line_count = 1u64;
    if space == MemSpace::Shared {
        done_at = shared.hierarchy.access_shared(t);
        shared.kernel(sm_id).stats.transactions += 1;
    } else {
        // Phase A coalesced assuming all lanes pass the check; a
        // (non-halting) fault drops lanes, so recompute from the survivors.
        if faulted {
            coalesce_into(
                ok.iter().map(|m| m.timing_addr),
                shared.cfg.hierarchy.l1.line_bytes,
                lines,
            );
        }
        shared.kernel(sm_id).stats.transactions += lines.len() as u64;
        line_count = lines.len() as u64;
        for &line in lines.iter() {
            done_at = done_at.max(shared.hierarchy.access_dram_backed(sm_id, line, t));
        }
    }
    done_at += extra_cycles as u64;
    shared.sink.counters.add(Scope::Sm(sm_id), "transactions", line_count);
    if shared.sink.tracer.is_enabled() && !ok.is_empty() {
        shared.sink.tracer.complete_with(
            mnemonic,
            TraceEventKind::MemTransaction,
            sm_id,
            ev.warp,
            issued_at,
            done_at.saturating_sub(issued_at).max(1),
            &[("pc", pc as u64), ("lines", line_count), ("lanes", ok.len() as u64)],
        );
    }

    // Data movement.
    let mut writes = pool.take_pairs();
    if is_store {
        for lm in &ok {
            shared.memory.write(lm.vaddr, lm.store_value, width);
        }
    } else {
        for lm in &ok {
            writes.push((lm.lane, shared.memory.read(lm.vaddr, width)));
        }
    }
    pool.put_lane_mem(ok);
    pool.put_lines(metadata_addrs);
    OpResult {
        dst,
        pair,
        write_width: width,
        writes,
        ready_at: None,
        verdict_at: None,
        ready_mem_at: if is_store { None } else { Some(done_at) },
        advance_pc: true,
        retire: false,
    }
}

// ---------------------------------------------------------------------------
// Serial driver.

/// The single-thread schedule: phases A, B, C per SM, SMs in order — the
/// exact sequence the original monolithic `Sm::step` executed.
fn run_serial(sms: &mut [Sm], shared: &mut SharedCtx<'_>) -> u64 {
    let mut events: Vec<CycleEvents> = sms.iter().map(|_| CycleEvents::default()).collect();
    let mut cycle: u64 = 0;
    loop {
        let mut issued_any = false;
        let mut next_ready = u64::MAX;
        for (sm, ev) in sms.iter_mut().zip(events.iter_mut()) {
            let outcome = sm.step_phase_a(cycle, shared.cfg, ev);
            issued_any |= outcome.issued_any;
            next_ready = next_ready.min(outcome.next_ready);
            apply_cycle(sm.id, ev, cycle, shared);
            sm.apply_results(ev, cycle);
        }
        if sms.iter().all(|sm| sm.all_done()) {
            break;
        }
        cycle = if issued_any || next_ready == u64::MAX {
            cycle + 1
        } else {
            // Fast-forward over scoreboard stalls.
            next_ready.max(cycle + 1)
        };
        debug_assert!(cycle < 1_000_000_000, "runaway simulation");
    }
    cycle
}

// ---------------------------------------------------------------------------
// Parallel driver.

struct SmSlot {
    sm: Sm,
    events: CycleEvents,
}

/// Per-cycle reduction accumulator (one of two, indexed by iteration
/// parity: the off-parity buffer is reset by the leader during phase B
/// while every worker is parked between barriers).
struct CycleAcc {
    issued_any: AtomicBool,
    next_ready: AtomicU64,
    all_done: AtomicBool,
}

impl CycleAcc {
    fn new() -> CycleAcc {
        CycleAcc {
            issued_any: AtomicBool::new(false),
            next_ready: AtomicU64::new(u64::MAX),
            all_done: AtomicBool::new(true),
        }
    }

    fn reset(&self) {
        self.issued_any.store(false, SeqCst);
        self.next_ready.store(u64::MAX, SeqCst);
        self.all_done.store(true, SeqCst);
    }
}

/// Decides the next cycle from a fully-accumulated [`CycleAcc`]; `None`
/// terminates. Pure, so every thread reaches the same answer. Mirrors the
/// serial loop's advance exactly.
fn advance(now: u64, acc: &CycleAcc) -> Option<u64> {
    if acc.all_done.load(SeqCst) {
        return None;
    }
    let next = if acc.issued_any.load(SeqCst) || acc.next_ready.load(SeqCst) == u64::MAX {
        now + 1
    } else {
        acc.next_ready.load(SeqCst).max(now + 1)
    };
    debug_assert!(next < 1_000_000_000, "runaway simulation");
    Some(next)
}

/// A reusable sense-reversing spin barrier (simulated cycles are far too
/// short for `std::sync::Barrier`'s mutex+condvar round trip).
struct SpinBarrier {
    parties: usize,
    count: AtomicUsize,
    sense: AtomicBool,
}

impl SpinBarrier {
    fn new(parties: usize) -> SpinBarrier {
        SpinBarrier { parties, count: AtomicUsize::new(0), sense: AtomicBool::new(false) }
    }

    fn wait(&self, local_sense: &mut bool) {
        let target = !*local_sense;
        *local_sense = target;
        if self.count.fetch_add(1, SeqCst) == self.parties - 1 {
            // Last arrival: reset the count *before* releasing (a released
            // thread may re-enter the barrier immediately).
            self.count.store(0, SeqCst);
            self.sense.store(target, SeqCst);
        } else {
            let mut spins = 0u32;
            while self.sense.load(std::sync::atomic::Ordering::Acquire) != target {
                spins = spins.wrapping_add(1);
                if spins & 0x3F == 0 {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
    }
}

/// Shared control block of one parallel run.
struct Ctl {
    barrier: SpinBarrier,
    acc: [CycleAcc; 2],
    /// A phase body panicked somewhere; everyone drains out at the next
    /// barrier.
    poisoned: AtomicBool,
    payload: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl Ctl {
    fn new(parties: usize) -> Ctl {
        Ctl {
            barrier: SpinBarrier::new(parties),
            acc: [CycleAcc::new(), CycleAcc::new()],
            poisoned: AtomicBool::new(false),
            payload: Mutex::new(None),
        }
    }

    /// Runs one phase body, converting a panic into pool-wide poisoning
    /// (the thread keeps participating in barriers so nobody deadlocks).
    fn guard(&self, f: impl FnOnce()) {
        if self.poisoned.load(SeqCst) {
            return;
        }
        if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(f)) {
            self.poisoned.store(true, SeqCst);
            let mut slot = self.payload.lock().unwrap_or_else(|e| e.into_inner());
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
    }

    /// Barrier + poison check; `false` means "drain out now".
    fn sync(&self, sense: &mut bool) -> bool {
        self.barrier.wait(sense);
        !self.poisoned.load(SeqCst)
    }
}

fn phase_a_range(
    slots: &[Mutex<SmSlot>],
    range: &Range<usize>,
    now: u64,
    cfg: &GpuConfig,
    acc: &CycleAcc,
) {
    let mut issued = false;
    let mut next = u64::MAX;
    for slot in &slots[range.clone()] {
        let mut s = slot.lock().unwrap();
        let SmSlot { sm, events } = &mut *s;
        let outcome = sm.step_phase_a(now, cfg, events);
        issued |= outcome.issued_any;
        next = next.min(outcome.next_ready);
    }
    if issued {
        acc.issued_any.store(true, SeqCst);
    }
    acc.next_ready.fetch_min(next, SeqCst);
}

fn phase_c_range(slots: &[Mutex<SmSlot>], range: &Range<usize>, now: u64, acc: &CycleAcc) {
    let mut all = true;
    for slot in &slots[range.clone()] {
        let mut s = slot.lock().unwrap();
        let SmSlot { sm, events } = &mut *s;
        sm.apply_results(events, now);
        all &= sm.all_done();
    }
    if !all {
        acc.all_done.store(false, SeqCst);
    }
}

fn worker_loop(slots: &[Mutex<SmSlot>], range: Range<usize>, cfg: &GpuConfig, ctl: &Ctl) {
    let mut sense = false;
    let mut now = 0u64;
    let mut parity = 0usize;
    loop {
        ctl.guard(|| phase_a_range(slots, &range, now, cfg, &ctl.acc[parity]));
        if !ctl.sync(&mut sense) {
            break; // A-done
        }
        if !ctl.sync(&mut sense) {
            break; // B-done (the leader applied shared state)
        }
        ctl.guard(|| phase_c_range(slots, &range, now, &ctl.acc[parity]));
        if !ctl.sync(&mut sense) {
            break; // C-done
        }
        match advance(now, &ctl.acc[parity]) {
            Some(next) => now = next,
            None => break,
        }
        parity ^= 1;
    }
}

fn leader_loop(
    slots: &[Mutex<SmSlot>],
    range: Range<usize>,
    shared: &mut SharedCtx<'_>,
    ctl: &Ctl,
) -> u64 {
    let cfg = *shared.cfg;
    let mut sense = false;
    let mut now = 0u64;
    let mut parity = 0usize;
    loop {
        ctl.guard(|| phase_a_range(slots, &range, now, &cfg, &ctl.acc[parity]));
        if !ctl.sync(&mut sense) {
            break;
        }
        // Phase B: shared state, ascending SM order. The leader is the
        // calling thread, so `&mut dyn Mechanism` / `&mut TelemetrySink`
        // never cross a thread boundary.
        ctl.guard(|| {
            for slot in slots {
                let mut s = slot.lock().unwrap();
                let SmSlot { sm, events } = &mut *s;
                apply_cycle(sm.id, events, now, shared);
            }
            // Workers are parked between the A and C barriers: safe to
            // recycle the off-parity accumulator for the next cycle.
            ctl.acc[parity ^ 1].reset();
        });
        if !ctl.sync(&mut sense) {
            break;
        }
        ctl.guard(|| phase_c_range(slots, &range, now, &ctl.acc[parity]));
        if !ctl.sync(&mut sense) {
            break;
        }
        match advance(now, &ctl.acc[parity]) {
            Some(next) => now = next,
            None => break,
        }
        parity ^= 1;
    }
    now
}

fn run_parallel(sms: &mut Vec<Sm>, shared: &mut SharedCtx<'_>, threads: usize) -> u64 {
    let n = sms.len();
    let slots: Vec<Mutex<SmSlot>> =
        sms.drain(..).map(|sm| Mutex::new(SmSlot { sm, events: CycleEvents::default() })).collect();
    // Contiguous SM ranges; the remainder goes to the front groups.
    let (base, rem) = (n / threads, n % threads);
    let mut ranges = Vec::with_capacity(threads);
    let mut start = 0;
    for t in 0..threads {
        let len = base + usize::from(t < rem);
        ranges.push(start..start + len);
        start += len;
    }
    let ctl = Ctl::new(threads);
    let cfg = *shared.cfg;
    let mut final_cycle = 0u64;
    std::thread::scope(|scope| {
        for range in ranges[1..].iter().cloned() {
            let slots = &slots;
            let ctl = &ctl;
            scope.spawn(move || worker_loop(slots, range, &cfg, ctl));
        }
        final_cycle = leader_loop(&slots, ranges[0].clone(), shared, &ctl);
    });
    sms.extend(slots.into_iter().map(|m| m.into_inner().unwrap_or_else(|e| e.into_inner()).sm));
    if let Some(payload) = ctl.payload.lock().unwrap_or_else(|e| e.into_inner()).take() {
        panic::resume_unwind(payload);
    }
    final_cycle
}
