//! Warp state: per-lane register files, the SIMT divergence stack, and the
//! per-warp register scoreboard used for latency hiding.

use lmi_isa::{PredReg, Reg};

use crate::config::WARP_SIZE;

/// A 32-lane active mask.
pub type LaneMask = u32;

/// All lanes active.
pub const FULL_MASK: LaneMask = u32::MAX;

/// One warp's architectural and micro-architectural state.
#[derive(Debug, Clone)]
pub struct Warp {
    /// Warp id within its SM.
    pub id: usize,
    /// Block index this warp belongs to (global).
    pub block: usize,
    /// Flat global thread id of lane 0.
    pub base_tid: u64,
    /// Program counter (instruction index).
    pub pc: usize,
    /// Active lanes.
    pub mask: LaneMask,
    /// Divergence stack: suspended `(mask, pc)` contexts.
    pub stack: Vec<(LaneMask, usize)>,
    /// Per-lane registers, `regs[lane * regs_per_thread + reg]`.
    regs: Vec<u32>,
    regs_per_thread: usize,
    /// Per-lane predicate registers (bitmask of 8 per lane).
    preds: [u8; WARP_SIZE],
    /// Cycle at which each architectural register becomes readable.
    reg_ready: Vec<u64>,
    /// Cycle at which each register's OCU verdict (final extent) is
    /// available — only memory instructions must wait for it, since the EC
    /// in the LSU is the only consumer of the poisoned extent. ALU
    /// consumers receive the forwarded raw value at `reg_ready`.
    verdict_ready: Vec<u64>,
    /// Cycle at which each predicate register becomes readable.
    pred_ready: [u64; 8],
    /// Cycle until which each register is waiting on an in-flight *memory*
    /// result. A register whose `ready_at` equals its `mem_pending_until`
    /// is blocked by the LSU, not the ALU scoreboard — the distinction the
    /// scheduler's stall-reason breakdown reports.
    mem_pending: Vec<u64>,
    /// Set when the warp has exited.
    pub done: bool,
    /// Set while the warp waits at a block barrier.
    pub at_barrier: bool,
    /// Cycle of the last issue (for GTO greediness bookkeeping).
    pub last_issue: u64,
    /// First cycle this warp may issue (models the launch/dispatch ramp and
    /// decorrelates warps, like real block schedulers do).
    pub start_cycle: u64,
}

impl Warp {
    /// Creates a warp with `active` lanes (the tail warp of a block may be
    /// partial).
    pub fn new(
        id: usize,
        block: usize,
        base_tid: u64,
        regs_per_thread: usize,
        active: usize,
    ) -> Warp {
        let mask = if active >= WARP_SIZE { FULL_MASK } else { (1u32 << active) - 1 };
        Warp {
            id,
            block,
            base_tid,
            pc: 0,
            mask,
            stack: Vec::new(),
            regs: vec![0; WARP_SIZE * regs_per_thread.max(1)],
            regs_per_thread: regs_per_thread.max(1),
            preds: [0; WARP_SIZE],
            reg_ready: vec![0; regs_per_thread.max(1)],
            verdict_ready: vec![0; regs_per_thread.max(1)],
            pred_ready: [0; 8],
            mem_pending: vec![0; regs_per_thread.max(1)],
            done: false,
            at_barrier: false,
            last_issue: 0,
            start_cycle: (id as u64 * 7) % 23,
        }
    }

    /// Reads a 32-bit register for `lane` (RZ reads zero).
    pub fn read(&self, lane: usize, reg: Reg) -> u32 {
        if reg.is_zero_reg() || reg.0 as usize >= self.regs_per_thread {
            return 0;
        }
        self.regs[lane * self.regs_per_thread + reg.0 as usize]
    }

    /// Writes a 32-bit register for `lane` (writes to RZ are discarded).
    pub fn write(&mut self, lane: usize, reg: Reg, value: u32) {
        if reg.is_zero_reg() || reg.0 as usize >= self.regs_per_thread {
            return;
        }
        self.regs[lane * self.regs_per_thread + reg.0 as usize] = value;
    }

    /// Reads a 64-bit register pair.
    pub fn read64(&self, lane: usize, reg: Reg) -> u64 {
        if reg.is_zero_reg() {
            return 0;
        }
        let lo = self.read(lane, reg) as u64;
        let hi = if reg.is_valid_pair_base() { self.read(lane, reg.pair_high()) as u64 } else { 0 };
        (hi << 32) | lo
    }

    /// Writes a 64-bit register pair.
    pub fn write64(&mut self, lane: usize, reg: Reg, value: u64) {
        if reg.is_zero_reg() {
            return;
        }
        self.write(lane, reg, value as u32);
        if reg.is_valid_pair_base() {
            self.write(lane, reg.pair_high(), (value >> 32) as u32);
        }
    }

    /// Reads a predicate register for `lane` (PT reads true).
    pub fn read_pred(&self, lane: usize, pred: PredReg) -> bool {
        pred.is_true_reg() || self.preds[lane] & (1 << pred.0) != 0
    }

    /// Writes a predicate register for `lane`.
    pub fn write_pred(&mut self, lane: usize, pred: PredReg, value: bool) {
        if pred.is_true_reg() {
            return;
        }
        if value {
            self.preds[lane] |= 1 << pred.0;
        } else {
            self.preds[lane] &= !(1 << pred.0);
        }
    }

    /// The cycle at which `reg` becomes readable.
    pub fn ready_at(&self, reg: Reg) -> u64 {
        if reg.is_zero_reg() || reg.0 as usize >= self.regs_per_thread {
            return 0;
        }
        self.reg_ready[reg.0 as usize]
    }

    /// Marks `reg` as busy until `cycle` (verdict time follows unless set
    /// later via [`Warp::set_verdict_at`]).
    pub fn set_ready_at(&mut self, reg: Reg, cycle: u64) {
        if reg.is_zero_reg() || reg.0 as usize >= self.regs_per_thread {
            return;
        }
        let slot = &mut self.reg_ready[reg.0 as usize];
        *slot = (*slot).max(cycle);
        let v = &mut self.verdict_ready[reg.0 as usize];
        *v = (*v).max(cycle);
    }

    /// Marks `reg` busy until `cycle` with an in-flight memory result as
    /// the producer (a load destination or a heap-call return value), so a
    /// later wait on it classifies as an LSU stall rather than a
    /// scoreboard stall.
    pub fn set_ready_at_mem(&mut self, reg: Reg, cycle: u64) {
        self.set_ready_at(reg, cycle);
        if reg.is_zero_reg() || reg.0 as usize >= self.regs_per_thread {
            return;
        }
        let slot = &mut self.mem_pending[reg.0 as usize];
        *slot = (*slot).max(cycle);
    }

    /// `true` if waiting on `reg` at `cycle` is waiting on the LSU: an
    /// in-flight memory result covers that cycle.
    pub fn mem_pending_at(&self, reg: Reg, cycle: u64) -> bool {
        if reg.is_zero_reg() || reg.0 as usize >= self.regs_per_thread {
            return false;
        }
        self.mem_pending[reg.0 as usize] >= cycle
    }

    /// The cycle at which `reg`'s OCU verdict is final (≥ `ready_at`).
    pub fn verdict_at(&self, reg: Reg) -> u64 {
        if reg.is_zero_reg() || reg.0 as usize >= self.regs_per_thread {
            return 0;
        }
        self.verdict_ready[reg.0 as usize]
    }

    /// Delays `reg`'s OCU verdict until `cycle` (the pipelined OCU register
    /// slices of paper §XI-C).
    pub fn set_verdict_at(&mut self, reg: Reg, cycle: u64) {
        if reg.is_zero_reg() || reg.0 as usize >= self.regs_per_thread {
            return;
        }
        let v = &mut self.verdict_ready[reg.0 as usize];
        *v = (*v).max(cycle);
    }

    /// The cycle at which predicate `pred` becomes readable.
    pub fn pred_ready_at(&self, pred: PredReg) -> u64 {
        if pred.is_true_reg() {
            0
        } else {
            self.pred_ready[pred.0 as usize]
        }
    }

    /// Marks predicate `pred` busy until `cycle`.
    pub fn set_pred_ready_at(&mut self, pred: PredReg, cycle: u64) {
        if !pred.is_true_reg() {
            let slot = &mut self.pred_ready[pred.0 as usize];
            *slot = (*slot).max(cycle);
        }
    }

    /// Lanes currently active, as indices.
    pub fn active_lanes(&self) -> impl Iterator<Item = usize> + '_ {
        (0..WARP_SIZE).filter(move |&l| self.mask & (1 << l) != 0)
    }

    /// Retires lanes in `exit_mask`; pops a suspended divergence context
    /// when no lane remains; marks the warp done when the stack empties.
    pub fn retire_lanes(&mut self, exit_mask: LaneMask) {
        self.mask &= !exit_mask;
        if self.mask == 0 {
            match self.stack.pop() {
                Some((mask, pc)) => {
                    self.mask = mask;
                    self.pc = pc;
                }
                None => self.done = true,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn warp() -> Warp {
        Warp::new(0, 0, 0, 16, 32)
    }

    #[test]
    fn rz_reads_zero_and_ignores_writes() {
        let mut w = warp();
        w.write(0, Reg::RZ, 42);
        assert_eq!(w.read(0, Reg::RZ), 0);
        assert_eq!(w.read64(0, Reg::RZ), 0);
    }

    #[test]
    fn pair_round_trip() {
        let mut w = warp();
        w.write64(3, Reg(4), 0x1122_3344_5566_7788);
        assert_eq!(w.read64(3, Reg(4)), 0x1122_3344_5566_7788);
        assert_eq!(w.read(3, Reg(4)), 0x5566_7788);
        assert_eq!(w.read(3, Reg(5)), 0x1122_3344);
    }

    #[test]
    fn lanes_have_independent_registers() {
        let mut w = warp();
        w.write(0, Reg(2), 10);
        w.write(1, Reg(2), 20);
        assert_eq!(w.read(0, Reg(2)), 10);
        assert_eq!(w.read(1, Reg(2)), 20);
    }

    #[test]
    fn predicates_default_false_and_pt_true() {
        let mut w = warp();
        assert!(!w.read_pred(0, PredReg(0)));
        assert!(w.read_pred(0, PredReg::PT));
        w.write_pred(0, PredReg(0), true);
        assert!(w.read_pred(0, PredReg(0)));
        assert!(!w.read_pred(1, PredReg(0)), "per-lane");
        w.write_pred(0, PredReg::PT, false);
        assert!(w.read_pred(0, PredReg::PT), "PT is hardwired");
    }

    #[test]
    fn scoreboard_takes_the_max() {
        let mut w = warp();
        w.set_ready_at(Reg(3), 100);
        w.set_ready_at(Reg(3), 50);
        assert_eq!(w.ready_at(Reg(3)), 100);
    }

    #[test]
    fn partial_tail_warp_masks_inactive_lanes() {
        let w = Warp::new(0, 0, 0, 8, 10);
        assert_eq!(w.active_lanes().count(), 10);
    }

    #[test]
    fn retire_pops_divergence_stack_then_finishes() {
        let mut w = warp();
        w.stack.push((0xFF00_0000, 7));
        w.retire_lanes(FULL_MASK);
        assert!(!w.done);
        assert_eq!(w.mask, 0xFF00_0000);
        assert_eq!(w.pc, 7);
        w.retire_lanes(FULL_MASK);
        assert!(w.done);
    }
}
