//! Randomized property tests on the simulator: soundness and completeness
//! of the LMI pipeline over randomized pointer-walk kernels, and timing
//! monotonicity. Seeded SplitMix64 keeps failures reproducible.

use lmi_core::{DevicePtr, PtrConfig};
use lmi_isa::{abi, HintBits, Instruction, MemRef, ProgramBuilder, Reg};
use lmi_mem::layout;
use lmi_sim::{Gpu, GpuConfig, Launch, LmiMechanism, NullMechanism};
use lmi_telemetry::SplitMix64;

/// Builds a kernel that performs a sequence of marked pointer offsets from
/// the parameter pointer, dereferencing after each step.
fn walk_kernel(offsets: &[i32], deref: bool) -> lmi_isa::Program {
    let mut b = ProgramBuilder::new("walk");
    b.push(Instruction::ldc(Reg(4), abi::LAUNCH_BANK, abi::param_offset(0), 8));
    for &off in offsets {
        b.push(Instruction::iadd64(Reg(4), Reg(4), off).with_hints(HintBits::check_operand(0)));
        if deref {
            b.push(Instruction::ldg(Reg(8), MemRef::new(Reg(4), 0, 4)));
        }
    }
    b.push(Instruction::exit());
    b.build()
}

fn run_lmi(program: lmi_isa::Program, buf: u64) -> (lmi_sim::SimStats, LmiMechanism) {
    let launch = Launch::new(program).grid(1).block(1).param(buf);
    let mut gpu = Gpu::new(GpuConfig::security());
    let mut mech = LmiMechanism::default_config();
    let stats = gpu.run(&launch, &mut mech);
    (stats, mech)
}

/// Completeness: any dereferencing walk that stays inside the buffer
/// never faults.
#[test]
fn in_bounds_walks_never_fault() {
    let mut rng = SplitMix64::new(0x1BFA);
    for _ in 0..60 {
        let cfg = PtrConfig::default();
        let size = 4096u64;
        let buf = DevicePtr::encode(layout::GLOBAL_BASE + 0x40000, size, &cfg).unwrap();
        // Convert absolute in-bounds positions to relative steps.
        let mut offsets = Vec::new();
        let mut pos = 0i64;
        for _ in 0..rng.range(1, 12) {
            let target = (rng.below(1024) % (size / 4)) as i64 * 4;
            offsets.push((target - pos) as i32);
            pos = target;
        }
        let (stats, mech) = run_lmi(walk_kernel(&offsets, true), buf.raw());
        assert!(!stats.violated(), "{:?}", stats.violations.first());
        assert_eq!(mech.poisoned_count, 0);
    }
}

/// Soundness: a walk that leaves the region and then dereferences always
/// faults, regardless of how it wandered before.
#[test]
fn escaping_dereference_always_faults() {
    let mut rng = SplitMix64::new(0xE5CA9E);
    for _ in 0..60 {
        let cfg = PtrConfig::default();
        let buf = DevicePtr::encode(layout::GLOBAL_BASE + 0x80000, 1024, &cfg).unwrap();
        let mut offsets: Vec<i32> = Vec::new();
        let mut pos = 0i64;
        for _ in 0..rng.below(6) {
            let target = rng.below(256) as i64 * 4;
            offsets.push((target - pos) as i32);
            pos = target;
        }
        let escape = rng.range_i64(1024, 100_000);
        offsets.push((escape - pos) as i32); // leaves the 1024-byte region
        let (stats, mech) = run_lmi(walk_kernel(&offsets, true), buf.raw());
        assert!(stats.violated(), "escape {escape} undetected");
        assert!(mech.poisoned_count >= 1);
    }
}

/// Delayed termination: the same escaping walks never fault when nothing
/// is dereferenced.
#[test]
fn escape_without_dereference_never_faults() {
    let mut rng = SplitMix64::new(0xDE1A7);
    for _ in 0..60 {
        let escape = rng.range_i64(1024, 100_000);
        let cfg = PtrConfig::default();
        let buf = DevicePtr::encode(layout::GLOBAL_BASE + 0xC0000, 1024, &cfg).unwrap();
        let (stats, mech) = run_lmi(walk_kernel(&[escape as i32], false), buf.raw());
        assert!(!stats.violated());
        assert!(mech.poisoned_count >= 1, "the pointer was still poisoned");
    }
}

/// Timing sanity: adding compute instructions never makes the kernel
/// finish in fewer issue slots (issued counts are exact).
#[test]
fn issued_instruction_count_is_exact() {
    for extra in 0usize..32 {
        let mut b = ProgramBuilder::new("count");
        for _ in 0..extra {
            b.push(Instruction::ffma(Reg(6), Reg(6), Reg(7), Reg(8)));
        }
        b.push(Instruction::exit());
        let launch = Launch::new(b.build()).grid(1).block(32);
        let mut gpu = Gpu::new(GpuConfig::small());
        let stats = gpu.run(&launch, &mut NullMechanism);
        assert_eq!(stats.issued, extra as u64 + 1);
    }
}
