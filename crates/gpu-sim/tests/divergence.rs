//! SIMT divergence tests: per-lane control flow must execute each lane's
//! path exactly once, including nested and loop-carried divergence.

use lmi_isa::instr::CmpOp;
use lmi_isa::op::SpecialReg;
use lmi_isa::reg::PredReg;
use lmi_isa::{abi, Instruction, MemRef, ProgramBuilder, Reg};
use lmi_mem::layout;
use lmi_sim::{Gpu, GpuConfig, Launch, NullMechanism};

const BUF: u64 = layout::GLOBAL_BASE + 0x50000;

fn run(program: lmi_isa::Program, threads: usize) -> Gpu {
    let launch = Launch::new(program).grid(1).block(threads).param(BUF);
    let mut gpu = Gpu::new(GpuConfig::small());
    let stats = gpu.run(&launch, &mut NullMechanism);
    assert!(!stats.violated());
    gpu
}

fn out(gpu: &Gpu, tid: u64) -> u64 {
    gpu.memory.read(BUF + tid * 4, 4)
}

/// Nested two-level divergence: four lane groups take four different paths.
#[test]
fn nested_divergence_routes_every_lane() {
    // v = (tid < 16 ? (tid < 8 ? 1 : 2) : (tid < 24 ? 3 : 4)); out[tid] = v;
    let mut b = ProgramBuilder::new("nested");
    b.push(Instruction::s2r(Reg(0), SpecialReg::TidX));
    b.push(Instruction::ldc(Reg(4), abi::LAUNCH_BANK, abi::param_offset(0), 8));
    b.push(Instruction::lea64(Reg(6), Reg(4), Reg(0), 2));
    b.push(Instruction::isetp(PredReg(0), Reg(0), CmpOp::Lt, 16));
    let outer_then = b.forward_branch_if(PredReg(0), false);

    // outer else: tid >= 16
    b.push(Instruction::isetp(PredReg(1), Reg(0), CmpOp::Lt, 24));
    let inner2_then = b.forward_branch_if(PredReg(1), false);
    b.push(Instruction::mov(Reg(8), 4));
    b.push(Instruction::stg(MemRef::new(Reg(6), 0, 4), Reg(8)));
    b.push(Instruction::exit());
    b.bind(inner2_then);
    b.push(Instruction::mov(Reg(8), 3));
    b.push(Instruction::stg(MemRef::new(Reg(6), 0, 4), Reg(8)));
    b.push(Instruction::exit());

    // outer then: tid < 16
    b.bind(outer_then);
    b.push(Instruction::isetp(PredReg(2), Reg(0), CmpOp::Lt, 8));
    let inner1_then = b.forward_branch_if(PredReg(2), false);
    b.push(Instruction::mov(Reg(8), 2));
    b.push(Instruction::stg(MemRef::new(Reg(6), 0, 4), Reg(8)));
    b.push(Instruction::exit());
    b.bind(inner1_then);
    b.push(Instruction::mov(Reg(8), 1));
    b.push(Instruction::stg(MemRef::new(Reg(6), 0, 4), Reg(8)));
    b.push(Instruction::exit());

    let gpu = run(b.build(), 32);
    for tid in 0..32u64 {
        let expect = if tid < 8 {
            1
        } else if tid < 16 {
            2
        } else if tid < 24 {
            3
        } else {
            4
        };
        assert_eq!(out(&gpu, tid), expect, "tid {tid}");
    }
}

/// Loop-carried divergence: each lane iterates `tid + 1` times.
#[test]
fn per_lane_trip_counts() {
    // c = 0; do { c++ } while (c < tid + 1); out[tid] = c;
    let mut b = ProgramBuilder::new("trips");
    b.push(Instruction::s2r(Reg(0), SpecialReg::TidX));
    b.push(Instruction::iadd3(Reg(1), Reg(0), 1)); // bound = tid + 1
    b.push(Instruction::ldc(Reg(4), abi::LAUNCH_BANK, abi::param_offset(0), 8));
    b.push(Instruction::lea64(Reg(6), Reg(4), Reg(0), 2));
    b.push(Instruction::mov(Reg(2), 0));
    let top = b.label();
    b.push(Instruction::iadd3(Reg(2), Reg(2), 1));
    b.push(Instruction::isetp(PredReg(0), Reg(2), CmpOp::Lt, Reg(1)));
    b.branch_if(top, PredReg(0), false);
    b.push(Instruction::stg(MemRef::new(Reg(6), 0, 4), Reg(2)));
    b.push(Instruction::exit());

    let gpu = run(b.build(), 32);
    for tid in 0..32u64 {
        assert_eq!(out(&gpu, tid), tid + 1, "tid {tid}");
    }
}

/// A fully-taken branch must not push a divergence context (no phantom
/// re-execution of the fall-through path).
#[test]
fn uniform_branches_do_not_duplicate_work() {
    let mut b = ProgramBuilder::new("uniform");
    b.push(Instruction::s2r(Reg(0), SpecialReg::TidX));
    b.push(Instruction::ldc(Reg(4), abi::LAUNCH_BANK, abi::param_offset(0), 8));
    b.push(Instruction::lea64(Reg(6), Reg(4), Reg(0), 2));
    b.push(Instruction::isetp(PredReg(0), Reg(0), CmpOp::Ge, 0)); // always true
    let taken = b.forward_branch_if(PredReg(0), false);
    // Fall-through (never executes): would write 99.
    b.push(Instruction::mov(Reg(8), 99));
    b.push(Instruction::stg(MemRef::new(Reg(6), 0, 4), Reg(8)));
    b.push(Instruction::exit());
    b.bind(taken);
    // Taken path increments out[tid] so double-execution would show.
    b.push(Instruction::ldg(Reg(9), MemRef::new(Reg(6), 0, 4)));
    b.push(Instruction::iadd3(Reg(9), Reg(9), 1));
    b.push(Instruction::stg(MemRef::new(Reg(6), 0, 4), Reg(9)));
    b.push(Instruction::exit());

    let gpu = run(b.build(), 32);
    for tid in 0..32u64 {
        assert_eq!(out(&gpu, tid), 1, "tid {tid} executed the taken path once");
    }
}

/// Predicated-off memory operations must not touch memory.
#[test]
fn predicated_stores_respect_the_mask() {
    let mut b = ProgramBuilder::new("pred");
    b.push(Instruction::s2r(Reg(0), SpecialReg::TidX));
    b.push(Instruction::ldc(Reg(4), abi::LAUNCH_BANK, abi::param_offset(0), 8));
    b.push(Instruction::lea64(Reg(6), Reg(4), Reg(0), 2));
    b.push(Instruction::mov(Reg(8), 7));
    b.push(Instruction::isetp(PredReg(0), Reg(0), CmpOp::Lt, 10));
    b.push(
        Instruction::stg(MemRef::new(Reg(6), 0, 4), Reg(8))
            .with_pred(lmi_isa::Predicate { reg: PredReg(0), negated: false }),
    );
    b.push(Instruction::exit());

    let gpu = run(b.build(), 32);
    for tid in 0..32u64 {
        let expect = if tid < 10 { 7 } else { 0 };
        assert_eq!(out(&gpu, tid), expect, "tid {tid}");
    }
}
