//! Minimal micro-benchmark harness for the `[[bench]] harness = false`
//! targets. Replaces the external benchmarking framework so the workspace
//! builds offline: auto-calibrated iteration counts, best-of-N sampling,
//! and an ns/op (plus optional elements/sec) report on stdout.
//!
//! Methodology: the closure is timed in batches; the batch size is grown
//! until one batch takes ≥ `BATCH_TARGET`, then `SAMPLES` batches run and
//! the *minimum* per-iteration time is reported (the minimum is the
//! standard robust estimator for microbenchmarks — noise only ever adds
//! time).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const BATCH_TARGET: Duration = Duration::from_millis(20);
const SAMPLES: usize = 7;

/// Times `f` and prints one report line. Returns the best ns/op estimate.
pub fn bench<F: FnMut()>(name: &str, mut f: F) -> f64 {
    // Warm up and calibrate the batch size.
    let mut batch: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..batch {
            f();
        }
        let elapsed = start.elapsed();
        if elapsed >= BATCH_TARGET || batch >= 1 << 30 {
            break;
        }
        // Grow geometrically, with a guess from the observed rate.
        let rate_guess = if elapsed.is_zero() {
            batch * 16
        } else {
            (batch as f64 * BATCH_TARGET.as_secs_f64() / elapsed.as_secs_f64()) as u64
        };
        batch = rate_guess.clamp(batch * 2, batch * 16).max(1);
    }

    let mut best = f64::INFINITY;
    for _ in 0..SAMPLES {
        let start = Instant::now();
        for _ in 0..batch {
            f();
        }
        let per_iter = start.elapsed().as_nanos() as f64 / batch as f64;
        best = best.min(per_iter);
    }
    println!("{name:<40} {:>12} ns/op   ({batch} iters/sample)", format_ns(best));
    best
}

/// Like [`bench()`], but rebuilds fresh state before every call so the
/// measured closure can consume it (the `iter_batched` pattern). Setup
/// time is excluded from the measurement.
pub fn bench_with_setup<S, T, F: FnMut(T)>(name: &str, mut setup: S, mut f: F) -> f64
where
    S: FnMut() -> T,
{
    // Calibrate on a handful of runs (setup excluded from timing).
    let mut total = Duration::ZERO;
    let mut warmup = 0u32;
    while total < BATCH_TARGET && warmup < 1000 {
        let input = setup();
        let start = Instant::now();
        f(input);
        total += start.elapsed();
        warmup += 1;
    }
    let batch = warmup.max(1);

    let mut best = f64::INFINITY;
    for _ in 0..SAMPLES {
        let mut timed = Duration::ZERO;
        for _ in 0..batch {
            let input = setup();
            let start = Instant::now();
            f(input);
            timed += start.elapsed();
        }
        best = best.min(timed.as_nanos() as f64 / batch as f64);
    }
    println!("{name:<40} {:>12} ns/op   ({batch} iters/sample)", format_ns(best));
    best
}

/// Reports throughput alongside latency: `elements` is how many logical
/// items one call of `f` processes.
pub fn bench_throughput<F: FnMut()>(name: &str, elements: u64, f: F) {
    let ns = bench(name, f);
    let per_sec = elements as f64 * 1e9 / ns;
    println!("{name:<40} {:>12.3} Melem/s", per_sec / 1e6);
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.3}m", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3}k", ns / 1e3)
    } else {
        format!("{ns:.1}")
    }
}
