//! `simbench` — reproducible simulator-throughput benchmark.
//!
//! Measures the *simulator's* wall-clock performance (not the modelled
//! GPU's): a fixed matrix of three Table V kernels × three mechanisms is
//! run twice per cell — serially (`sim_threads = 1`, monolithic memory,
//! the reference schedule) and with the parallel engine on the
//! bank-sharded memory pipeline — and the two `SimStats` records are
//! asserted bit-identical, so every benchmark run doubles as a
//! determinism *and bank-invariance* check on real workloads.
//!
//! Output is a JSON document (schema in `EXPERIMENTS.md`): wall-clock per
//! run, kilo-warp-instructions per second, thread count, host core count
//! and git revision, so numbers from different machines and commits stay
//! comparable. Note: the *committed* `BENCH_sim.json` baseline is owned by
//! `runtimebench` (schema v5, simulated-cycle-led); pass `--out` here when
//! you don't want to clobber it.
//!
//! Usage: `simbench [--quick] [--json] [--sim-threads N] [--mem-banks N]
//! [--out PATH]`
//!
//! * `--quick` — small 8-SM config and scaled-down kernels (CI smoke);
//!   the default is the paper's 80-SM Table IV config.
//! * `--sim-threads` — worker threads for the parallel runs (default:
//!   host `available_parallelism`, clamped to the SM count).
//! * `--mem-banks` — memory banks for the parallel runs (default:
//!   `LMI_MEM_BANKS` if set, else the worker-thread count; always clamped
//!   to the hierarchy geometry). The serial reference stays monolithic.
//! * `--out`         report path (default `BENCH_sim.json`).
//! * `--json`        also print the document on stdout.

use std::time::Instant;

use lmi_alloc::AlignmentPolicy;
use lmi_baselines::GpuShield;
use lmi_bench::alloc_audit::CountingAlloc;
use lmi_bench::report::{self, ReportOpts};
use lmi_bench::{format_row, geomean};
use lmi_sim::{Gpu, GpuConfig, LmiMechanism, NullMechanism, SimStats};
use lmi_telemetry::Json;
use lmi_workloads::{all_workloads, prepare, PreparedWorkload, WorkloadSpec};

// Counting the allocator while timing is deliberate: one relaxed atomic
// per allocation is noise, and it lets every benchmark run double as an
// allocation audit (`allocs_per_kcycle` should stay near zero — setup
// only, nothing proportional to cycles).
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

/// The fixed kernel set: compute-heavy, wavefront/barrier-heavy, and
/// memory/traffic-heavy — the three simulator hot paths.
const KERNELS: [&str; 3] = ["hotspot", "needle", "gaussian"];

const MECHANISMS: [Mech; 3] = [Mech::Null, Mech::Lmi, Mech::GpuShield];

#[derive(Clone, Copy, PartialEq)]
enum Mech {
    Null,
    Lmi,
    GpuShield,
}

impl Mech {
    fn name(self) -> &'static str {
        match self {
            Mech::Null => "null",
            Mech::Lmi => "lmi",
            Mech::GpuShield => "gpushield",
        }
    }

    fn policy(self) -> AlignmentPolicy {
        match self {
            Mech::Lmi => AlignmentPolicy::PowerOfTwo,
            _ => AlignmentPolicy::CudaDefault,
        }
    }
}

struct ShieldAdapter<'a>(&'a mut GpuShield);

impl lmi_workloads::prepare::RegisterBuffers for ShieldAdapter<'_> {
    fn register_buffer(&mut self, base: u64, size: u64) {
        self.0.register_buffer(base, size);
    }
}

/// One timed simulation. Returns the stats, the wall-clock seconds of the
/// `Gpu::run` call alone (setup/teardown excluded), and the heap
/// allocations made during that same window.
fn run_once(
    cfg: &GpuConfig,
    threads: usize,
    banks: usize,
    prepared: &PreparedWorkload,
    mech: Mech,
) -> (SimStats, f64, u64) {
    let mut gpu =
        Gpu::with_heap_policy(cfg.with_sim_threads(threads).with_mem_banks(banks), mech.policy());
    let (stats, secs, allocs) = match mech {
        Mech::Null => {
            let a0 = CountingAlloc::allocations();
            let t0 = Instant::now();
            let s = gpu.run(&prepared.launch, &mut NullMechanism);
            (s, t0.elapsed().as_secs_f64(), CountingAlloc::allocations() - a0)
        }
        Mech::Lmi => {
            let mut m = LmiMechanism::default_config();
            let a0 = CountingAlloc::allocations();
            let t0 = Instant::now();
            let s = gpu.run(&prepared.launch, &mut m);
            (s, t0.elapsed().as_secs_f64(), CountingAlloc::allocations() - a0)
        }
        Mech::GpuShield => {
            let mut m = GpuShield::new();
            prepared.register_with(&mut ShieldAdapter(&mut m));
            let a0 = CountingAlloc::allocations();
            let t0 = Instant::now();
            let s = gpu.run(&prepared.launch, &mut m);
            (s, t0.elapsed().as_secs_f64(), CountingAlloc::allocations() - a0)
        }
    };
    assert!(
        stats.violations.is_empty(),
        "{}: benign workload must not fault: {:?}",
        mech.name(),
        stats.violations.first()
    );
    (stats, secs, allocs)
}

fn spec_for(name: &str, quick: bool) -> WorkloadSpec {
    let mut spec = all_workloads().into_iter().find(|w| w.name == name).unwrap();
    if quick {
        spec = spec.scaled_down(4);
    } else {
        // Keep all 80 SMs busy: two blocks per SM instead of Table V's
        // evaluation default of 32 blocks.
        spec.blocks = 160;
    }
    spec
}

fn kips(issued: u64, secs: f64) -> f64 {
    if secs > 0.0 {
        issued as f64 / secs / 1e3
    } else {
        0.0
    }
}

/// Heap allocations per thousand simulated cycles. The hot path is
/// allocation-free (see `tests/alloc_audit.rs`), so this amortizes
/// launch-time setup over the run and should stay near zero for any
/// non-trivial kernel.
fn allocs_per_kcycle(allocs: u64, cycles: u64) -> f64 {
    if cycles > 0 {
        allocs as f64 / (cycles as f64 / 1e3)
    } else {
        0.0
    }
}

fn main() {
    let opts = ReportOpts::from_env();
    let mut quick = false;
    let mut threads_arg: Option<usize> = None;
    let mut banks_arg: Option<usize> = None;
    let mut out_path = "BENCH_sim.json".to_string();
    let mut it = opts.positional.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--sim-threads" => {
                threads_arg = it.next().and_then(|v| v.parse().ok());
                assert!(threads_arg.is_some(), "--sim-threads needs a number");
            }
            "--mem-banks" => {
                banks_arg = it.next().and_then(|v| v.parse().ok());
                assert!(banks_arg.is_some(), "--mem-banks needs a number");
            }
            "--out" => out_path = it.next().expect("--out needs a path").clone(),
            other => panic!("unknown argument: {other}"),
        }
    }

    let cfg = if quick { GpuConfig::small() } else { GpuConfig::table4() };
    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let threads = threads_arg.unwrap_or(host_cores).clamp(1, cfg.num_sms);
    // Parallel-leg bank count: flag, else `LMI_MEM_BANKS`, else shard as
    // widely as the worker count; `resolve_mem_banks` clamps everything to
    // what the hierarchy geometry supports. The serial reference always
    // runs monolithic, so the per-cell `assert_eq!` below is also a
    // monolithic-vs-sharded bank-invariance check.
    let banks_default = match cfg.resolve_mem_banks() {
        1 => threads,
        from_env => from_env,
    };
    let banks = cfg.with_mem_banks(banks_arg.unwrap_or(banks_default)).resolve_mem_banks();
    let rev = report::git_rev();

    // With `--json`, stdout carries the JSON document alone (so
    // `simbench --json | jsonlint` works, like `probe` and `profile`);
    // the human-readable table moves to stderr.
    let json_mode = opts.json;
    let say = |line: String| {
        if json_mode {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    };

    say(format!(
        "simbench: {} SMs, {} worker thread(s) × {} memory bank(s) vs serial, \
         {} host core(s), rev {}{}",
        cfg.num_sms,
        threads,
        banks,
        host_cores,
        rev,
        if quick { " [quick]" } else { "" },
    ));
    say(format_row(
        "kernel/mech",
        &["cycles", "kinsts", "serial ms", "par ms", "speedup", "kips", "alloc/kcyc", "srl frac"]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
    ));

    let mut runs = Vec::new();
    let mut speedups = Vec::new();
    let wall0 = Instant::now();
    for kernel in KERNELS {
        let spec = spec_for(kernel, quick);
        for mech in MECHANISMS {
            let prepared = prepare(&spec, mech.policy());
            let (serial_stats, serial_secs, serial_allocs) = run_once(&cfg, 1, 1, &prepared, mech);
            let (par_stats, par_secs, par_allocs) = run_once(&cfg, threads, banks, &prepared, mech);
            // Free determinism check: the parallel engine on the sharded
            // memory pipeline must reproduce the serial monolithic
            // schedule bit-for-bit on every benchmark cell.
            assert_eq!(
                serial_stats,
                par_stats,
                "{kernel}/{}: parallel run ({threads} threads, {banks} banks) diverged \
                 from serial monolithic",
                mech.name()
            );
            let speedup = if par_secs > 0.0 { serial_secs / par_secs } else { 1.0 };
            speedups.push(speedup);
            say(format_row(
                &format!("{kernel}/{}", mech.name()),
                &[
                    format!("{}", serial_stats.cycles),
                    format!("{:.1}", serial_stats.issued as f64 / 1e3),
                    format!("{:.1}", serial_secs * 1e3),
                    format!("{:.1}", par_secs * 1e3),
                    format!("{speedup:.2}x"),
                    format!("{:.0}", kips(par_stats.issued, par_secs)),
                    format!("{:.2}", allocs_per_kcycle(serial_allocs, serial_stats.cycles)),
                    format!("{:.3}", par_stats.phase_b_serial_fraction()),
                ],
            ));
            runs.push(
                Json::obj()
                    .with("kernel", kernel)
                    .with("mechanism", mech.name())
                    // One kernel at a time; multi-stream rows come from
                    // `runtimebench`, which owns the committed baseline.
                    .with("streams", 1u64)
                    .with("cycles", serial_stats.cycles)
                    .with("instructions", serial_stats.issued)
                    // Identical across both legs (the bit-identity assert
                    // above); reported once per cell. This is the serial
                    // section the bank-sharded pipeline shrinks.
                    .with("phase_b_serial_fraction", par_stats.phase_b_serial_fraction())
                    .with(
                        "serial",
                        Json::obj()
                            .with("wall_ms", serial_secs * 1e3)
                            .with("kips", kips(serial_stats.issued, serial_secs))
                            .with(
                                "allocs_per_kcycle",
                                allocs_per_kcycle(serial_allocs, serial_stats.cycles),
                            ),
                    )
                    .with(
                        "parallel",
                        Json::obj()
                            .with("threads", threads)
                            .with("mem_banks", banks)
                            .with("wall_ms", par_secs * 1e3)
                            .with("kips", kips(par_stats.issued, par_secs))
                            .with(
                                "allocs_per_kcycle",
                                allocs_per_kcycle(par_allocs, par_stats.cycles),
                            ),
                    )
                    .with("speedup", speedup),
            );
        }
    }
    let total_secs = wall0.elapsed().as_secs_f64();

    let gm = geomean(speedups.iter().copied());
    let min = speedups.iter().copied().fold(f64::INFINITY, f64::min);
    let max = speedups.iter().copied().fold(0.0f64, f64::max);
    say(format!(
        "\ngeomean speedup {gm:.2}x (min {min:.2}x, max {max:.2}x) at {threads} thread(s) × \
         {banks} memory bank(s); total {total_secs:.1}s"
    ));
    if host_cores < threads {
        say(format!(
            "note: only {host_cores} host core(s) — thread-level speedup needs real parallelism"
        ));
    }

    let doc = report::envelope(
        "simbench",
        Json::obj()
            .with("git_rev", rev)
            .with("quick", quick)
            .with("num_sms", cfg.num_sms)
            .with("threads", threads)
            .with("mem_banks", banks)
            .with("host_cores", host_cores)
            .with("kernels", Json::Arr(KERNELS.iter().map(|&k| Json::from(k)).collect()))
            .with("runs", Json::Arr(runs))
            .with(
                "summary",
                Json::obj()
                    .with("geomean_speedup", gm)
                    .with("min_speedup", min)
                    .with("max_speedup", max)
                    .with("total_wall_s", total_secs),
            ),
    );
    if let Err(e) = std::fs::write(&out_path, doc.to_pretty()) {
        eprintln!("warning: could not write {out_path}: {e}");
    } else {
        say(format!("report written to {out_path}"));
    }
    if opts.json {
        report::emit(&doc);
    }
}
