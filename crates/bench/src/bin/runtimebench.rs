//! `runtimebench` — multi-stream runtime benchmark and the generator of
//! the committed `BENCH_sim.json` baseline.
//!
//! Sweeps the canned `lmi_workloads::runtime_mixes()` (1, 2 and 4
//! streams) through the `lmi-runtime` scheduler twice per mix:
//!
//! * **concurrent** — streams submitted as written; kernels from
//!   different streams share the GPU on disjoint SM partitions and
//!   copies overlap compute;
//! * **serial** — the identical submissions chained behind events so
//!   every stream waits for the previous one: the back-to-back baseline.
//!
//! The headline metric is **simulated cycles** (overlap speedup =
//! serial / concurrent), which is host-independent — wall-clock numbers
//! are recorded but secondary, since simulated time is what the
//! deterministic engine actually models. Every mix additionally runs at
//! `sim_threads` ∈ {1, 2} (plus 8 in full mode) and asserts the whole
//! `RuntimeReport`, every counter, and all event stamps bit-identical —
//! the benchmark doubles as a determinism check on the runtime layer.
//!
//! Usage: `runtimebench [--quick] [--json] [--out PATH]`
//!
//! * `--quick` — 8-SM config (CI smoke); default is the 80-SM Table IV.
//! * `--out`   — report path (default `BENCH_sim.json`).
//! * `--json`  — also print the document on stdout.

use std::time::Instant;

use lmi_bench::alloc_audit::CountingAlloc;
use lmi_bench::report::{self, ReportOpts};
use lmi_bench::{geomean, print_row};
use lmi_runtime::{MetricsSnapshot, Runtime, RuntimeReport};
use lmi_sim::GpuConfig;
use lmi_telemetry::{Json, Scope};
use lmi_workloads::{prepare_in, runtime_mixes, TrafficMix};

// One relaxed atomic per allocation: cheap enough to keep installed while
// timing, and it makes every baseline regeneration double as an
// allocation audit of the drain loop (`allocs_per_kcycle` per row).
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

/// Builds a runtime, submits the whole mix, synchronizes, and returns
/// the report, the session metrics snapshot, the drain wall-clock, and
/// the heap allocations made during the drain. `serialize` chains each
/// stream behind the previous via events — the back-to-back baseline.
fn run_mix(
    mix: &TrafficMix,
    cfg: GpuConfig,
    serialize: bool,
) -> (RuntimeReport, MetricsSnapshot, f64, u64) {
    let mut rt = Runtime::new(cfg);
    let tenants: Vec<usize> =
        mix.tenants.iter().map(|&protected| rt.add_tenant(protected)).collect();
    let streams: Vec<usize> = mix
        .streams
        .iter()
        .map(|t| rt.create_stream(tenants[t.tenant]).expect("tenant exists"))
        .collect();
    let mut chain: Option<usize> = None;
    for (i, traffic) in mix.streams.iter().enumerate() {
        let spec = mix.spec_of(i);
        let tenant = tenants[traffic.tenant];
        let prepared = prepare_in(&spec, &mut rt.tenant_mut(tenant).allocator);
        let stream = streams[i];
        if serialize {
            if let Some(prev) = chain {
                rt.wait_event(stream, prev).expect("event exists");
            }
        }
        let buf = prepared.launch.params[0];
        let words: Vec<u64> = (0..traffic.h2d_words as u64).collect();
        rt.memcpy_h2d(stream, buf, &words).expect("stream exists");
        rt.launch(stream, prepared.launch).expect("workload launches are valid");
        rt.memcpy_d2h(stream, buf, traffic.d2h_bytes).expect("stream exists");
        if serialize {
            let ev = rt.create_event();
            rt.record_event(stream, ev).expect("event exists");
            chain = Some(ev);
        }
    }
    let a0 = CountingAlloc::allocations();
    let t0 = Instant::now();
    rt.synchronize().expect("mix drains without deadlock");
    let wall = t0.elapsed().as_secs_f64();
    let allocs = CountingAlloc::allocations() - a0;
    (rt.report().clone(), rt.metrics_snapshot(), wall, allocs)
}

/// Session-wide kernel-latency tails (schema v3): p50/p99/max execution
/// cycles and p99 queue wait, from the GPU-scope histograms.
fn latency_json(snap: &MetricsSnapshot) -> Json {
    let exec = snap.frame.histograms.get(Scope::Gpu, "kernel_exec_cycles");
    let queue = snap.frame.histograms.get(Scope::Gpu, "kernel_queue_wait");
    Json::obj()
        .with("exec_p50", exec.map(|h| h.p50()).unwrap_or(0))
        .with("exec_p99", exec.map(|h| h.p99()).unwrap_or(0))
        .with("exec_max", exec.map(|h| h.max()).unwrap_or(0))
        .with("queue_p99", queue.map(|h| h.p99()).unwrap_or(0))
}

/// Collects the determinism fingerprint of a mix at one thread count:
/// the full report, every scoped counter, and all event stamps.
fn fingerprint(mix: &TrafficMix, cfg: GpuConfig, threads: usize) -> (RuntimeReport, String) {
    let mut rt = Runtime::new(cfg.with_sim_threads(threads));
    let tenants: Vec<usize> =
        mix.tenants.iter().map(|&protected| rt.add_tenant(protected)).collect();
    for (i, traffic) in mix.streams.iter().enumerate() {
        let spec = mix.spec_of(i);
        let tenant = tenants[traffic.tenant];
        let prepared = prepare_in(&spec, &mut rt.tenant_mut(tenant).allocator);
        let stream = rt.create_stream(tenant).expect("tenant exists");
        let buf = prepared.launch.params[0];
        let words: Vec<u64> = (0..traffic.h2d_words as u64).collect();
        rt.memcpy_h2d(stream, buf, &words).expect("stream exists");
        rt.launch(stream, prepared.launch).expect("workload launches are valid");
        rt.memcpy_d2h(stream, buf, traffic.d2h_bytes).expect("stream exists");
        let ev = rt.create_event();
        rt.record_event(stream, ev).expect("event exists");
    }
    rt.synchronize().expect("mix drains without deadlock");
    let counters = rt.counters().to_json().to_compact();
    let events: Vec<String> =
        (0..mix.streams.len()).map(|e| format!("{:?}", rt.event_time(e))).collect();
    (rt.report().clone(), format!("{counters}|{}", events.join(",")))
}

fn main() {
    let opts = ReportOpts::from_env();
    let mut quick = false;
    let mut out_path = "BENCH_sim.json".to_string();
    let mut it = opts.positional.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out_path = it.next().expect("--out needs a path").clone(),
            other => panic!("unknown argument: {other}"),
        }
    }

    let cfg = if quick { GpuConfig::small() } else { GpuConfig::table4() };
    let thread_matrix: &[usize] = if quick { &[1, 2] } else { &[1, 2, 8] };
    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    // Bank count of every GPU this process builds (`LMI_MEM_BANKS`, else
    // monolithic); recorded in the envelope because the baseline is
    // bit-identical across bank counts but the wall-clock columns are not.
    let mem_banks = cfg.resolve_mem_banks();

    println!(
        "runtimebench: {} SMs, {mem_banks} memory bank(s), determinism matrix \
         sim_threads={thread_matrix:?}, {host_cores} host core(s){}",
        cfg.num_sms,
        if quick { " [quick]" } else { "" },
    );
    print_row(
        "mix",
        &["streams", "serial cyc", "conc cyc", "overlap", "kernels", "wall ms", "kips", "al/kcyc"]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
    );

    let mut rows = Vec::new();
    let mut overlaps = Vec::new();
    let wall0 = Instant::now();
    for mix in runtime_mixes() {
        let (concurrent, snap, conc_wall, conc_allocs) =
            run_mix(&mix, cfg.with_sim_threads(1), false);
        let (serial, _, _, _) = run_mix(&mix, cfg.with_sim_threads(1), true);
        // Determinism: the concurrent schedule is bit-identical at every
        // worker-thread count — report, counters, and event stamps.
        let (ref_report, ref_counters) = fingerprint(&mix, cfg, thread_matrix[0]);
        for &threads in &thread_matrix[1..] {
            let (rep, ctrs) = fingerprint(&mix, cfg, threads);
            assert_eq!(ref_report, rep, "{}: report diverged at {threads} threads", mix.name);
            assert_eq!(ref_counters, ctrs, "{}: counters diverged at {threads} threads", mix.name);
        }
        let overlap = serial.total_cycles as f64 / concurrent.total_cycles as f64;
        if mix.streams.len() > 1 {
            assert!(
                concurrent.total_cycles < serial.total_cycles,
                "{}: concurrent streams must beat back-to-back ({} vs {})",
                mix.name,
                concurrent.total_cycles,
                serial.total_cycles
            );
        }
        overlaps.push(overlap);
        // Simulator throughput over the concurrent drain: total issued
        // warp-instructions per wall-clock second, in thousands.
        let issued: u64 = concurrent.kernels.iter().map(|k| k.stats.issued).sum();
        let kips = if conc_wall > 0.0 { issued as f64 / conc_wall / 1e3 } else { 0.0 };
        // Leader-serial share of phase-B work units over the whole mix:
        // the serial section the bank-sharded memory pipeline shrinks.
        let (pb_serial, pb_banked) = concurrent.kernels.iter().fold((0u64, 0u64), |(s, b), k| {
            (s + k.stats.phase_b_serial_items, b + k.stats.phase_b_banked_items)
        });
        let phase_b_serial_fraction = if pb_serial + pb_banked > 0 {
            pb_serial as f64 / (pb_serial + pb_banked) as f64
        } else {
            0.0
        };
        let allocs_per_kcycle = if concurrent.total_cycles > 0 {
            conc_allocs as f64 / (concurrent.total_cycles as f64 / 1e3)
        } else {
            0.0
        };
        print_row(
            mix.name,
            &[
                format!("{}", mix.streams.len()),
                format!("{}", serial.total_cycles),
                format!("{}", concurrent.total_cycles),
                format!("{overlap:.2}x"),
                format!("{}", concurrent.kernels.len()),
                format!("{:.1}", conc_wall * 1e3),
                format!("{kips:.0}"),
                format!("{allocs_per_kcycle:.2}"),
            ],
        );
        let kernels = concurrent
            .kernels
            .iter()
            .map(|k| {
                Json::obj()
                    .with("name", k.name.as_str())
                    .with("stream", k.stream as u64)
                    .with("tenant", k.tenant as u64)
                    .with("sm_first", k.partition.start as u64)
                    .with("sm_count", k.partition.len() as u64)
                    .with("cycles", k.stats.cycles)
                    .with("started_at", k.started_at)
                    .with("completed_at", k.completed_at)
            })
            .collect();
        rows.push(
            Json::obj()
                .with("mix", mix.name)
                .with("streams", mix.streams.len() as u64)
                .with("tenants", mix.tenants.len() as u64)
                .with("serial_cycles", serial.total_cycles)
                .with("concurrent_cycles", concurrent.total_cycles)
                .with("overlap_speedup", overlap)
                .with("copies", concurrent.copies.len() as u64)
                .with("kernel_latency", latency_json(&snap))
                .with("kernels", Json::Arr(kernels))
                .with(
                    "determinism",
                    Json::Arr(thread_matrix.iter().map(|&t| Json::from(t as u64)).collect()),
                )
                .with("wall_ms", conc_wall * 1e3)
                .with("kips", kips)
                .with("allocs_per_kcycle", allocs_per_kcycle)
                .with("phase_b_serial_fraction", phase_b_serial_fraction),
        );
    }
    let total_secs = wall0.elapsed().as_secs_f64();

    let gm = geomean(overlaps.iter().copied());
    println!(
        "\ngeomean overlap speedup {gm:.2}x (simulated cycles, serial / concurrent); \
         determinism verified at sim_threads={thread_matrix:?}; total {total_secs:.1}s"
    );

    let mut doc = report::envelope(
        "runtimebench",
        Json::obj()
            .with("git_rev", report::git_rev())
            .with("quick", quick)
            .with("num_sms", cfg.num_sms)
            .with("mem_banks", mem_banks)
            .with("host_cores", host_cores)
            .with(
                "determinism_threads",
                Json::Arr(thread_matrix.iter().map(|&t| Json::from(t as u64)).collect()),
            )
            .with("mixes", Json::Arr(rows))
            .with(
                "summary",
                Json::obj().with("geomean_overlap_speedup", gm).with("total_wall_s", total_secs),
            ),
    );
    // v3: mix rows carry `kernel_latency` (p50/p99/max exec, p99 queue
    // wait) from the session histograms.
    // v4: mix rows carry `kips` (issued warp-instructions per wall-clock
    // second, thousands) and `allocs_per_kcycle` (heap allocations during
    // the drain per thousand simulated cycles — the allocation audit).
    // v5: the envelope carries `mem_banks` and mix rows carry
    // `phase_b_serial_fraction` (leader-serial share of phase-B work
    // units) from the bank-sharded memory pipeline; generated on a GPU
    // whose shared L2/MSHR/DRAM state is address-interleaved across
    // `mem_banks` banks, bit-identical to monolithic.
    doc.set("schema_version", 5u64);
    if let Err(e) = std::fs::write(&out_path, doc.to_pretty()) {
        eprintln!("warning: could not write {out_path}: {e}");
    } else {
        println!("report written to {out_path}");
    }
    if opts.json {
        report::emit(&doc);
    }
}
