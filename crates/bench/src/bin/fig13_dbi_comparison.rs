//! Regenerates paper Fig. 13: normalized execution time (log scale) of the
//! LMI DBI implementation vs. Compute Sanitizer's memcheck. AD benchmarks
//! are excluded, as in the paper (NVBit/compute-sanitizer incompatibility).
//!
//! The per-benchmark crossovers are governed by the ratio of LMI bound
//! checks to LD/ST instructions, also printed (paper: 67.14 for gaussian
//! vs 28.13 for swin — our synthetic kernels have proportionally lower
//! ratios, same ordering).

use lmi_baselines::dbi::check_site_counts;
use lmi_bench::report::{self, ReportOpts};
use lmi_bench::{geomean, normalized, print_row, Mechanism};
use lmi_telemetry::Json;
use lmi_workloads::{all_workloads, generate, Suite};

fn main() {
    let opts = ReportOpts::from_env();
    let rows: Vec<(&'static str, f64, f64, f64)> = all_workloads()
        .iter()
        .filter(|spec| spec.suite != Suite::Ad) // excluded in the paper (footnote 1)
        .map(|spec| {
            let lmi_dbi = normalized(spec, Mechanism::LmiDbi);
            let memcheck = normalized(spec, Mechanism::Memcheck);
            let (sites, mem_sites) = check_site_counts(&generate(spec));
            (spec.name, lmi_dbi, memcheck, sites as f64 / mem_sites as f64)
        })
        .collect();
    let lmi_all: Vec<f64> = rows.iter().map(|r| r.1).collect();
    let mc_all: Vec<f64> = rows.iter().map(|r| r.2).collect();

    if opts.json {
        let mut out = Vec::new();
        for &(name, lmi_dbi, memcheck, ratio) in &rows {
            out.push(
                Json::obj()
                    .with("workload", name)
                    .with("lmi_dbi", lmi_dbi)
                    .with("memcheck", memcheck)
                    .with("checks_per_ldst", ratio),
            );
        }
        let body = Json::obj()
            .with("rows", Json::Arr(out))
            .with(
                "geomean",
                Json::obj()
                    .with("lmi_dbi", geomean(lmi_all.iter().copied()))
                    .with("memcheck", geomean(mc_all.iter().copied())),
            )
            .with("jit_overhead", lmi_baselines::JIT_OVERHEAD);
        report::emit(&report::envelope("fig13_dbi_comparison", body));
        return;
    }

    println!("Fig. 13 — DBI tools, normalized execution time (log scale)\n");
    print_row(
        "workload",
        &["LMI-DBI", "memcheck", "checks:LDST"].iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    );
    for &(name, lmi_dbi, memcheck, ratio) in &rows {
        print_row(
            name,
            &[format!("{lmi_dbi:.2}x"), format!("{memcheck:.2}x"), format!("{ratio:.2}")],
        );
    }
    println!();
    print_row(
        "geometric mean",
        &[
            format!("{:.2}x", geomean(lmi_all.iter().copied())),
            format!("{:.2}x", geomean(mc_all.iter().copied())),
            String::new(),
        ],
    );
    println!(
        "\npaper: LMI-DBI geomean 72.95x, memcheck 32.98x; memcheck wins \
         big on gaussian (check-dense), the gap narrows on swin. JIT \
         overhead ({}x) applied per §XI-B.",
        lmi_baselines::JIT_OVERHEAD
    );
}
