//! Regenerates paper Fig. 13: normalized execution time (log scale) of the
//! LMI DBI implementation vs. Compute Sanitizer's memcheck. AD benchmarks
//! are excluded, as in the paper (NVBit/compute-sanitizer incompatibility).
//!
//! The per-benchmark crossovers are governed by the ratio of LMI bound
//! checks to LD/ST instructions, also printed (paper: 67.14 for gaussian
//! vs 28.13 for swin — our synthetic kernels have proportionally lower
//! ratios, same ordering).

use lmi_baselines::dbi::check_site_counts;
use lmi_bench::{geomean, normalized, print_row, Mechanism};
use lmi_workloads::{all_workloads, generate, Suite};

fn main() {
    println!("Fig. 13 — DBI tools, normalized execution time (log scale)\n");
    print_row(
        "workload",
        &["LMI-DBI", "memcheck", "checks:LDST"]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
    );
    let mut lmi_all = Vec::new();
    let mut mc_all = Vec::new();
    for spec in all_workloads() {
        if spec.suite == Suite::Ad {
            continue; // excluded in the paper (footnote 1)
        }
        let lmi_dbi = normalized(&spec, Mechanism::LmiDbi);
        let memcheck = normalized(&spec, Mechanism::Memcheck);
        let (sites, mem_sites) = check_site_counts(&generate(&spec));
        lmi_all.push(lmi_dbi);
        mc_all.push(memcheck);
        print_row(
            spec.name,
            &[
                format!("{lmi_dbi:.2}x"),
                format!("{memcheck:.2}x"),
                format!("{:.2}", sites as f64 / mem_sites as f64),
            ],
        );
    }
    println!();
    print_row(
        "geometric mean",
        &[
            format!("{:.2}x", geomean(lmi_all.iter().copied())),
            format!("{:.2}x", geomean(mc_all.iter().copied())),
            String::new(),
        ],
    );
    println!(
        "\npaper: LMI-DBI geomean 72.95x, memcheck 32.98x; memcheck wins \
         big on gaussian (check-dense), the gap narrows on swin. JIT \
         overhead ({}x) applied per §XI-B.",
        lmi_baselines::JIT_OVERHEAD
    );
}
