//! Regenerates paper Table II: the qualitative comparison of memory-safety
//! mechanisms, with LMI's quantitative cells (coverage, overhead) filled in
//! from this reproduction's own measurements.

use lmi_bench::report::{self, ReportOpts};
use lmi_bench::{mean, normalized, print_row, Mechanism};
use lmi_security::table::{coverage, run_matrix};
use lmi_telemetry::Json;
use lmi_workloads::all_workloads;

struct Row {
    name: &'static str,
    target: &'static str,
    base: &'static str,
    mechanism: &'static str,
    spatial: &'static str,
    temporal: &'static str,
    metadata_access: &'static str,
    overhead: String,
}

fn main() {
    let opts = ReportOpts::from_env();
    if !opts.json {
        println!("Table II — security coverage and overhead comparison\n");
    }

    // Published rows (from the papers' own reports).
    let mut rows = vec![
        Row {
            name: "Baggy Bounds",
            target: "CPU",
            base: "SW",
            mechanism: "Pointer Aligning",
            spatial: "stack+heap",
            temporal: "partial",
            metadata_access: "no (64-bit)",
            overhead: "72% (SPEC2000)".into(),
        },
        Row {
            name: "No-Fat",
            target: "CPU",
            base: "HW",
            mechanism: "Pointer Aligning",
            spatial: "heap",
            temporal: "partial",
            metadata_access: "yes",
            overhead: "8%".into(),
        },
        Row {
            name: "C3",
            target: "CPU",
            base: "HW",
            mechanism: "Pointer Encryption",
            spatial: "heap",
            temporal: "yes",
            metadata_access: "no",
            overhead: "0.01%".into(),
        },
        Row {
            name: "clArmor",
            target: "GPU",
            base: "SW",
            mechanism: "Canary",
            spatial: "global only",
            temporal: "no",
            metadata_access: "no",
            overhead: "x1.48".into(),
        },
        Row {
            name: "GMOD",
            target: "GPU",
            base: "SW",
            mechanism: "Canary",
            spatial: "global only",
            temporal: "no",
            metadata_access: "no",
            overhead: "x3.06".into(),
        },
        Row {
            name: "Compute Sanitizer",
            target: "GPU",
            base: "SW",
            mechanism: "Tripwires",
            spatial: "all (coarse)",
            temporal: "partial",
            metadata_access: "yes",
            overhead: "x72.29".into(),
        },
        Row {
            name: "GPUShield",
            target: "GPU",
            base: "HW",
            mechanism: "Pointer Tagging",
            spatial: "global",
            temporal: "no",
            metadata_access: "yes",
            overhead: "0.8%".into(),
        },
        Row {
            name: "cuCatch",
            target: "GPU",
            base: "SW",
            mechanism: "Pointer Tagging",
            spatial: "global+stack",
            temporal: "mostly",
            metadata_access: "yes",
            overhead: "19%".into(),
        },
        Row {
            name: "IMT",
            target: "GPU",
            base: "HW",
            mechanism: "Memory Tagging",
            spatial: "global",
            temporal: "partial",
            metadata_access: "yes",
            overhead: "2.69%".into(),
        },
    ];

    // LMI's row, measured by this reproduction (security matrix + a sample
    // of the Fig. 12 runs).
    let matrix = run_matrix();
    let lmi_col = 3;
    let (sd, st) = coverage(&matrix, lmi_col, true);
    let (td, tt) = coverage(&matrix, lmi_col, false);
    let sample: Vec<f64> = all_workloads()
        .iter()
        .filter(|w| ["hotspot", "bert", "lud_cuda", "srad_v1"].contains(&w.name))
        .map(|w| normalized(w, Mechanism::Lmi) - 1.0)
        .collect();
    rows.push(Row {
        name: "LMI (this repo)",
        target: "GPU",
        base: "HW",
        mechanism: "Pointer Aligning",
        spatial: "global+shared+stack+heap",
        temporal: "partial (§VIII)",
        metadata_access: "no",
        overhead: format!(
            "{:.2}% (measured); spatial {}/{}, temporal {}/{}",
            mean(sample.iter().copied()) * 100.0,
            sd,
            st,
            td,
            tt
        ),
    });

    if opts.json {
        let mut out = Vec::new();
        for r in &rows {
            out.push(
                Json::obj()
                    .with("name", r.name)
                    .with("target", r.target)
                    .with("base", r.base)
                    .with("mechanism", r.mechanism)
                    .with("spatial", r.spatial)
                    .with("temporal", r.temporal)
                    .with("metadata_access", r.metadata_access)
                    .with("overhead", r.overhead.as_str()),
            );
        }
        let body = Json::obj().with("rows", Json::Arr(out)).with(
            "lmi_measured",
            Json::obj()
                .with("overhead_pct", mean(sample.iter().copied()) * 100.0)
                .with("spatial_detected", sd as u64)
                .with("spatial_total", st as u64)
                .with("temporal_detected", td as u64)
                .with("temporal_total", tt as u64),
        );
        report::emit(&report::envelope("table2_comparison", body));
        return;
    }

    print_row(
        "name",
        &["target", "base", "mechanism", "spatial", "temporal", "meta", "overhead"]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
    );
    for r in rows {
        print_row(
            r.name,
            &[
                r.target.to_string(),
                r.base.to_string(),
                r.mechanism.to_string(),
                r.spatial.to_string(),
                r.temporal.to_string(),
                r.metadata_access.to_string(),
                r.overhead,
            ],
        );
    }
    println!("\npaper LMI row: spatial coverage 85.7%, temporal 75.0%, perf overhead 0.2%, no metadata access.");
}
