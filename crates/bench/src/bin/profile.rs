//! `profile` — the sampling-profiler report for a multi-tenant session.
//!
//! Replays one of the canned `lmi_workloads::runtime_mixes()` through the
//! `lmi-runtime` scheduler with the cycle-driven sampling profiler
//! enabled, then renders `Session::metrics_snapshot()` three ways:
//!
//! * **human** (default) — per-kernel top-K hot PCs with disassembly,
//!   the warp-state/stall breakdown, session latency tails, and the
//!   per-tenant SLO table;
//! * `--prom` — Prometheus text exposition of every counter, histogram
//!   and profile (scrape-file format);
//! * `--json` — the standard report envelope (pipeable to `jsonlint`).
//!
//! Usage: `profile [--quick] [--mix NAME] [--period N] [--top K]
//!                 [--prom | --json]`
//!
//! * `--quick`  — 8-SM config (CI smoke); default is the 80-SM Table IV.
//! * `--mix`    — traffic mix name (default `quad-stream`, the
//!   two-tenant four-stream mix).
//! * `--period` — sampling period in simulated cycles (default 64).
//! * `--top`    — hot PCs shown per kernel (default 5).
//!
//! Profiles are deterministic: the sampling hook runs on simulated
//! cycles and merges in the engine's apply phase, so this report is
//! bit-identical at any `LMI_SIM_THREADS`.

use std::collections::BTreeMap;

use lmi_bench::print_row;
use lmi_bench::report::{self, ReportOpts};
use lmi_isa::Program;
use lmi_runtime::{MetricsSnapshot, Session};
use lmi_sim::GpuConfig;
use lmi_telemetry::{Scope, WARP_STATE_NAMES};
use lmi_workloads::{prepare_in, runtime_mixes, TrafficMix};

/// Runs `mix` with sampling at `period` and returns the session snapshot
/// plus the programs it executed (for PC → instruction attribution).
fn run_profiled(mix: &TrafficMix, cfg: GpuConfig) -> (MetricsSnapshot, BTreeMap<String, Program>) {
    let mut rt = Session::new(cfg);
    let tenants: Vec<usize> =
        mix.tenants.iter().map(|&protected| rt.add_tenant(protected)).collect();
    let mut programs = BTreeMap::new();
    for (i, traffic) in mix.streams.iter().enumerate() {
        let spec = mix.spec_of(i);
        let tenant = tenants[traffic.tenant];
        let prepared = prepare_in(&spec, &mut rt.tenant_mut(tenant).allocator);
        let stream = rt.create_stream(tenant).expect("tenant exists");
        programs.insert(prepared.launch.program.name.clone(), prepared.launch.program.clone());
        let buf = prepared.launch.params[0];
        let words: Vec<u64> = (0..traffic.h2d_words as u64).collect();
        rt.memcpy_h2d(stream, buf, &words).expect("stream exists");
        rt.launch(stream, prepared.launch).expect("workload launches are valid");
        rt.memcpy_d2h(stream, buf, traffic.d2h_bytes).expect("stream exists");
    }
    rt.synchronize().expect("mix drains without deadlock");
    (rt.metrics_snapshot(), programs)
}

fn human_report(
    snap: &MetricsSnapshot,
    programs: &BTreeMap<String, Program>,
    mix: &TrafficMix,
    period: u64,
    top_k: usize,
) {
    println!(
        "profile: mix {} ({} streams, {} tenants), sampling every {period} cycles",
        mix.name,
        mix.streams.len(),
        mix.tenants.len()
    );
    println!("session: {} cycles total", snap.total_cycles);
    for name in ["kernel_exec_cycles", "kernel_queue_wait", "copy_cycles"] {
        if let Some(h) = snap.frame.histograms.get(Scope::Gpu, name) {
            println!(
                "  {name:<18} n={:<3} p50={} p95={} p99={} max={}",
                h.count(),
                h.p50(),
                h.p95(),
                h.p99(),
                h.max()
            );
        }
    }

    for (kernel, profile) in &snap.frame.profiles {
        println!(
            "\nkernel {kernel}: {} samples, avg occupancy {:.1} warps/SM",
            profile.samples(),
            profile.avg_occupancy()
        );
        // Warp-state / stall breakdown as percentages of warp-samples.
        let states = profile.states();
        let total: u64 = states.iter().sum();
        if total > 0 {
            let line: Vec<String> = WARP_STATE_NAMES
                .iter()
                .zip(&states)
                .filter(|(_, &n)| n > 0)
                .map(|(name, &n)| format!("{name} {:.1}%", 100.0 * n as f64 / total as f64))
                .collect();
            println!("  warp states: {}", line.join(", "));
        }
        let pcs = profile.top_pcs(top_k);
        let pc_total = profile.pcs().total().max(1);
        for (pc, n) in pcs {
            let text = programs
                .get(kernel)
                .and_then(|p| p.instructions.get(pc as usize))
                .map(|ins| ins.to_string())
                .unwrap_or_else(|| "<unknown>".to_string());
            println!(
                "    pc {pc:>4}  {:>5.1}%  {:>8}  {text}",
                100.0 * n as f64 / pc_total as f64,
                n
            );
        }
    }

    println!("\ntenant SLO:");
    print_row(
        "tenant",
        &["kernels", "rejected", "viol", "viol rate", "exec p50", "exec p99", "queue p99"]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
    );
    for t in &snap.tenants {
        print_row(
            &format!("{}", t.tenant),
            &[
                format!("{}", t.kernels),
                format!("{}", t.rejected),
                format!("{}", t.violations),
                format!("{:.3}", t.violation_rate),
                format!("{}", t.exec_p50),
                format!("{}", t.exec_p99),
                format!("{}", t.queue_p99),
            ],
        );
    }
}

fn main() {
    let opts = ReportOpts::from_env();
    let mut quick = false;
    let mut prom = false;
    let mut mix_name = "quad-stream".to_string();
    let mut period = 64u64;
    let mut top_k = 5usize;
    let mut it = opts.positional.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--prom" => prom = true,
            "--mix" => mix_name = it.next().expect("--mix needs a name").clone(),
            "--period" => {
                period = it.next().expect("--period needs a value").parse().expect("cycle count")
            }
            "--top" => top_k = it.next().expect("--top needs a value").parse().expect("a count"),
            other => panic!("unknown argument: {other}"),
        }
    }

    let mix = runtime_mixes()
        .into_iter()
        .find(|m| m.name == mix_name)
        .unwrap_or_else(|| panic!("unknown mix {mix_name:?}"));
    let base = if quick { GpuConfig::small() } else { GpuConfig::table4() };
    let cfg = base.with_sample_period(period);
    let (snap, programs) = run_profiled(&mix, cfg);

    if prom {
        print!("{}", snap.to_prometheus());
        return;
    }
    if opts.json {
        let doc = report::envelope(
            "profile",
            snap.to_json()
                .with("git_rev", report::git_rev())
                .with("mix", mix.name)
                .with("quick", quick)
                .with("sample_period", period),
        );
        report::emit(&doc);
        return;
    }
    human_report(&snap, &programs, &mix, period, top_k);
}
