//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **OCU verdict overlap** (§XI-C / §XI-A): what LMI would cost if the
//!    three-cycle OCU delay were *not* hidden inside the LSU front end.
//! 2. **Minimum alignment K** (§V-A1): fragmentation vs. extent-bit budget
//!    as K sweeps 16 B → 4 KiB.
//! 3. **GPUShield RCache capacity** (§XI-A): needle's overhead as the
//!    RCache grows past the benchmark's buffer working set.
//! 4. **Liveness-tracker page-invalidation** (§XII-C, Algorithm 1):
//!    membership-table pressure with and without `pageInvalidOpt`.

use lmi_alloc::{AlignmentPolicy, GlobalAllocator};
use lmi_baselines::GpuShield;
use lmi_bench::{cycles, print_row, Mechanism};
use lmi_core::{DevicePtr, LivenessTracker, PtrConfig};
use lmi_mem::layout;
use lmi_sim::{Gpu, GpuConfig, LmiMechanism};
use lmi_workloads::{all_workloads, prepare, rodinia_workloads};

fn spec(name: &str) -> lmi_workloads::WorkloadSpec {
    all_workloads().into_iter().find(|w| w.name == name).unwrap()
}

fn main() {
    ablation_verdict_overlap();
    ablation_min_alignment();
    ablation_rcache_capacity();
    ablation_page_invalidation();
    ablation_statelessness();
}

fn ablation_verdict_overlap() {
    println!("== Ablation 1: OCU verdict / LSU overlap ==\n");
    print_row("workload", &["overlap=3".into(), "overlap=1".into(), "overlap=0".into()]);
    for name in ["LSTM", "gaussian", "bert"] {
        let w = spec(name);
        let base = cycles(&w, Mechanism::Baseline);
        let cols: Vec<String> = [3u32, 1, 0]
            .iter()
            .map(|&overlap| {
                let prepared = prepare(&w, AlignmentPolicy::PowerOfTwo);
                let mut cfg = GpuConfig::small();
                cfg.lsu_verdict_overlap = overlap;
                let mut gpu = Gpu::new(cfg);
                let mut m = LmiMechanism::default_config();
                let c = gpu.run(&prepared.launch, &mut m).cycles as f64;
                format!("{:.4}", c / base)
            })
            .collect();
        print_row(name, &cols);
    }
    println!("(overlap=3 is the paper's design; overlap=0 exposes the raw 3-cycle OCU delay)\n");
}

fn ablation_min_alignment() {
    println!("== Ablation 2: minimum alignment K vs fragmentation ==\n");
    print_row("K", &["extent bits".into(), "max size".into(), "rodinia frag".into()]);
    for min_log2 in [4u32, 6, 8, 10, 12] {
        let cfg = PtrConfig { min_align_log2: min_log2, max_size_log2: 38 };
        // Extent values needed to span K..256 GiB.
        let extents = cfg.max_size_extent();
        let bits = 8 - extents.leading_zeros(); // bits to encode 0..=extents
                                                // Fragmentation over the Rodinia profiles at this K.
        let mut lnsum = 0.0;
        let mut n = 0;
        for w in rodinia_workloads() {
            let run = |policy: AlignmentPolicy| {
                let mut a = GlobalAllocator::new(cfg, policy, layout::GLOBAL_BASE, 16 << 30);
                for &(size, count) in w.alloc_profile {
                    for _ in 0..count {
                        a.alloc(size).unwrap();
                    }
                }
                a.rss().peak as f64
            };
            lnsum += (run(AlignmentPolicy::PowerOfTwo) / run(AlignmentPolicy::CudaDefault)).ln();
            n += 1;
        }
        let frag = ((lnsum / n as f64).exp() - 1.0) * 100.0;
        print_row(
            &format!("{} B", 1u64 << min_log2),
            &[format!("{bits}"), format!("{} GiB", (1u64 << 38) >> 30), format!("{frag:.2}%")],
        );
    }
    println!("(K = 256 B is the paper's choice: 5 extent bits, 18.7% fragmentation)\n");
}

fn ablation_rcache_capacity() {
    println!("== Ablation 3: GPUShield RCache capacity on needle ==\n");
    let w = spec("needle");
    let base = cycles(&w, Mechanism::Baseline);
    print_row("RCache entries", &["normalized time".into(), "miss rate".into()]);
    for entries in [8u64, 16, 28, 40, 64] {
        let prepared = prepare(&w, AlignmentPolicy::CudaDefault);
        let mut shield = GpuShield::with_rcache_entries(entries);
        for &(b, s) in &prepared.buffers {
            shield.register_buffer(b, s);
        }
        let mut gpu = Gpu::new(GpuConfig::small());
        let c = gpu.run(&prepared.launch, &mut shield).cycles as f64;
        let miss_rate =
            shield.rcache_misses as f64 / (shield.rcache_hits + shield.rcache_misses).max(1) as f64;
        print_row(
            &format!("{entries}"),
            &[format!("{:.4}", c / base), format!("{:.1}%", miss_rate * 100.0)],
        );
    }
    println!("(the paper's ~28-entry budget sits below needle's 32-buffer working set)\n");
}

fn ablation_page_invalidation() {
    println!("== Ablation 4: liveness tracker pageInvalidOpt (Algorithm 1) ==\n");
    let cfg = PtrConfig::default();
    print_row(
        "allocation mix",
        &["table peak (off)".into(), "table peak (on)".into(), "pages".into()],
    );
    for (label, sizes) in [
        ("small buffers (1 KiB x 512)", vec![1024u64; 512]),
        ("large buffers (128 KiB x 64)", vec![128 * 1024; 64]),
        ("mixed", {
            let mut v = vec![1024u64; 256];
            v.extend(vec![128 * 1024u64; 32]);
            v
        }),
    ] {
        let run = |opt: bool| {
            let mut tracker = if opt {
                LivenessTracker::with_page_invalidation(cfg, 64 * 1024)
            } else {
                LivenessTracker::new(cfg)
            };
            let mut alloc = GlobalAllocator::new(
                cfg,
                AlignmentPolicy::PowerOfTwo,
                layout::GLOBAL_BASE,
                16 << 30,
            );
            let mut ptrs = Vec::new();
            for &s in &sizes {
                let raw = alloc.alloc(s).unwrap();
                tracker.on_malloc(DevicePtr::from_raw(raw)).unwrap();
                ptrs.push(raw);
            }
            for raw in ptrs {
                tracker.on_free(DevicePtr::from_raw(raw)).unwrap();
            }
            tracker
        };
        let off = run(false);
        let on = run(true);
        print_row(
            label,
            &[
                format!("{}", off.peak_table_len()),
                format!("{}", on.peak_table_len()),
                format!("{}", on.invalidated_page_count()),
            ],
        );
    }
    println!("(pageInvalidOpt keeps large buffers out of the membership table entirely)");
    println!();
}

fn ablation_statelessness() {
    println!("== Ablation 5: in-pointer metadata vs in-memory metadata (§IV-B1) ==\n");
    print_row("workload", &["LMI (stateless)".into(), "bounds table, no cache".into()]);
    for name in ["bert", "bfs", "needle"] {
        let w = spec(name);
        let base = cycles(&w, Mechanism::Baseline);
        let lmi = cycles(&w, Mechanism::Lmi);
        // The strawman: every global access fetches its bounds entry from
        // memory (GPUShield with a zero-entry RCache).
        let prepared = prepare(&w, AlignmentPolicy::CudaDefault);
        let mut shield = GpuShield::with_rcache_entries(0);
        for &(b, s) in &prepared.buffers {
            shield.register_buffer(b, s);
        }
        let mut gpu = Gpu::new(GpuConfig::small());
        let table = gpu.run(&prepared.launch, &mut shield).cycles as f64;
        print_row(name, &[format!("{:.4}", lmi / base), format!("{:.4}", table / base)]);
    }
    println!("(the cost LMI's in-pointer extents avoid: per-access bounds-metadata traffic)");
}
