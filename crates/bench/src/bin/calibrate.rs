//! Internal calibration probe: prints normalized overheads for a few
//! representative workloads so mechanism parameters can be tuned against
//! the paper's targets before running the full figure harnesses.

use lmi_bench::{normalized, print_row, Mechanism};
use lmi_workloads::all_workloads;

fn main() {
    let names: Vec<String> = std::env::args().skip(1).collect();
    let all = all_workloads();
    let picks: Vec<_> = if names.is_empty() {
        ["hotspot", "needle", "LSTM", "gaussian", "swin", "bert", "bfs"]
            .iter()
            .map(|n| all.iter().find(|w| w.name == *n).unwrap())
            .collect()
    } else {
        all.iter().filter(|w| names.iter().any(|n| n == w.name)).collect()
    };
    print_row(
        "workload",
        &["LMI", "GPUShield", "Baggy", "LMI-DBI", "memcheck"]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
    );
    for w in picks {
        let cols = [
            Mechanism::Lmi,
            Mechanism::GpuShield,
            Mechanism::BaggySoftware,
            Mechanism::LmiDbi,
            Mechanism::Memcheck,
        ]
        .iter()
        .map(|&m| format!("{:.4}", normalized(w, m)))
        .collect::<Vec<_>>();
        print_row(w.name, &cols);
    }
}
