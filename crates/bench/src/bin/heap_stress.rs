//! Device-heap stress harness: the abstract's "thousands of concurrent
//! threads perform memory operations across buffers in heap and local
//! memory" scenario. Every thread `malloc`s a variable-size buffer, touches
//! it through a hint-marked pointer, and frees it, each iteration — and LMI
//! must stay violation-free and near-zero-overhead while doing per-thread
//! fine-grained checking that GPUShield's coarse heap region cannot.

use lmi_alloc::AlignmentPolicy;
use lmi_sim::{Gpu, GpuConfig, LmiMechanism, NullMechanism};
use lmi_workloads::{malloc_stress_workload, prepare};

fn main() {
    let spec = malloc_stress_workload();
    println!(
        "heap stress: {} threads x {} iterations of malloc/use/free\n",
        spec.blocks * spec.threads_per_block,
        spec.iters
    );

    let prepared = prepare(&spec, AlignmentPolicy::CudaDefault);
    let mut gpu = Gpu::with_heap_policy(GpuConfig::small(), AlignmentPolicy::CudaDefault);
    let base = gpu.run(&prepared.launch, &mut NullMechanism);

    let prepared = prepare(&spec, AlignmentPolicy::PowerOfTwo);
    let mut gpu = Gpu::with_heap_policy(GpuConfig::small(), AlignmentPolicy::PowerOfTwo);
    let mut mech = LmiMechanism::default_config();
    let lmi = gpu.run(&prepared.launch, &mut mech);

    println!("baseline: {} cycles, {} mallocs, {} frees", base.cycles, base.mallocs, base.frees);
    println!("LMI:      {} cycles, {} mallocs, {} frees", lmi.cycles, lmi.mallocs, lmi.frees);
    println!(
        "LMI overhead: {:+.3}%  (violations: {}, pointers poisoned: {})",
        (lmi.cycles as f64 / base.cycles as f64 - 1.0) * 100.0,
        lmi.violations.len(),
        mech.poisoned_count
    );
    println!("device heap after run: {} live allocations (all freed)", gpu.heap().stats().live);
    assert!(lmi.violations.is_empty(), "benign stress must be violation-free");
    assert_eq!(gpu.heap().stats().live, 0);
    assert_eq!(lmi.mallocs, lmi.frees);
    println!("\npaper claim reproduced: per-thread heap checking at negligible cost,");
    println!("with no bounds-metadata memory traffic (the extent rides in the pointer).");
}
