//! Regenerates paper Fig. 1: ratio of memory instructions per region
//! (LDG/STG vs LDS/STS vs LDL/STL) for every Table V workload, measured by
//! executing each kernel on the simulator and counting warp-level
//! loads/stores.

use lmi_bench::report::{self, ReportOpts};
use lmi_bench::{print_row, run_workload, Mechanism};
use lmi_isa::MemSpace;
use lmi_telemetry::Json;
use lmi_workloads::all_workloads;

fn main() {
    let opts = ReportOpts::from_env();
    let rows: Vec<(&'static str, [f64; 3])> = all_workloads()
        .iter()
        .map(|spec| {
            let stats = run_workload(spec, Mechanism::Baseline);
            (
                spec.name,
                [
                    stats.mem_ratio(MemSpace::Global),
                    stats.mem_ratio(MemSpace::Shared),
                    stats.mem_ratio(MemSpace::Local),
                ],
            )
        })
        .collect();

    if opts.json {
        let mut out = Vec::new();
        for (name, [g, s, l]) in &rows {
            out.push(
                Json::obj()
                    .with("workload", *name)
                    .with("global", *g)
                    .with("shared", *s)
                    .with("local", *l),
            );
        }
        report::emit(&report::envelope(
            "fig01_region_mix",
            Json::obj().with("rows", Json::Arr(out)),
        ));
        return;
    }

    println!("Fig. 1 — memory instructions per region (measured)\n");
    print_row(
        "workload",
        &["global", "shared", "local"].iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    );
    for (name, ratios) in &rows {
        let cols = ratios.iter().map(|r| format!("{:5.1}%", r * 100.0)).collect::<Vec<_>>();
        print_row(name, &cols);
    }
    println!(
        "\npaper call-outs: bert/decoding are global-dominant; lud_cuda and \
         needle issue >80% shared-memory operations."
    );
}
