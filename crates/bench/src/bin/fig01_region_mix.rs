//! Regenerates paper Fig. 1: ratio of memory instructions per region
//! (LDG/STG vs LDS/STS vs LDL/STL) for every Table V workload, measured by
//! executing each kernel on the simulator and counting warp-level
//! loads/stores.

use lmi_bench::{print_row, run_workload, Mechanism};
use lmi_isa::MemSpace;
use lmi_workloads::all_workloads;

fn main() {
    println!("Fig. 1 — memory instructions per region (measured)\n");
    print_row(
        "workload",
        &["global", "shared", "local"].iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    );
    for spec in all_workloads() {
        let stats = run_workload(&spec, Mechanism::Baseline);
        let cols = [MemSpace::Global, MemSpace::Shared, MemSpace::Local]
            .iter()
            .map(|&s| format!("{:5.1}%", stats.mem_ratio(s) * 100.0))
            .collect::<Vec<_>>();
        print_row(spec.name, &cols);
    }
    println!(
        "\npaper call-outs: bert/decoding are global-dominant; lud_cuda and \
         needle issue >80% shared-memory operations."
    );
}
