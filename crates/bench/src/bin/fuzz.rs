//! Differential conformance fuzzer.
//!
//! Drives `lmi-conformance` from the command line: generates safe kernels
//! over the full IR surface, injects one defect per class into each, and
//! runs every case through the mechanism × engine oracle matrix. Any
//! failing case is auto-shrunk (when the failure is a surviving LMI
//! detection) and printed as a ready-to-paste regression test.
//!
//! ```text
//! fuzz [--quick] [--cases N] [--seed S] [--json] [--corpus DIR]
//!      [--full-matrix] [--mask-defect CLASS]
//! ```
//!
//! * `--quick` — 200 cases on the reduced engine matrix (the CI smoke).
//! * `--cases N` — explicit case budget (a case = one oracle invocation).
//! * `--seed S` — base seed (default 3405691582).
//! * `--json` — machine-readable report envelope on stdout.
//! * `--corpus DIR` — replay `*.json` cases from DIR first; persist any
//!   new failing case there.
//! * `--full-matrix` — all four engine points instead of the quick two.
//! * `--mask-defect CLASS` — treat LMI detections of CLASS as unexpected
//!   (manufactures failures; exercises the shrinker end to end).

use std::collections::BTreeMap;
use std::process::ExitCode;

use lmi_bench::report;
use lmi_conformance::{
    build, case_from_json, case_to_json, generate, lmi_run, mutate, run_case, shrink, Defect,
    DefectClass, OracleConfig, Recipe, ALL_CLASSES,
};
use lmi_telemetry::{Json, SplitMix64};

const DEFAULT_CASES: usize = 200;
const DEFAULT_SEED: u64 = 0xCAFE_BABE;

struct Opts {
    cases: usize,
    seed: u64,
    json: bool,
    corpus: Option<String>,
    full_matrix: bool,
    masked: Option<DefectClass>,
}

fn parse_opts() -> Result<Opts, String> {
    let mut opts = Opts {
        cases: DEFAULT_CASES,
        seed: DEFAULT_SEED,
        json: false,
        corpus: None,
        full_matrix: false,
        masked: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.cases = DEFAULT_CASES,
            "--cases" => {
                let v = args.next().ok_or("--cases needs a value")?;
                opts.cases = v.parse().map_err(|_| format!("bad --cases value: {v}"))?;
            }
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                opts.seed = v.parse().map_err(|_| format!("bad --seed value: {v}"))?;
            }
            "--json" => opts.json = true,
            "--corpus" => opts.corpus = Some(args.next().ok_or("--corpus needs a directory")?),
            "--full-matrix" => opts.full_matrix = true,
            "--mask-defect" => {
                let v = args.next().ok_or("--mask-defect needs a class")?;
                opts.masked = Some(
                    DefectClass::parse(&v).ok_or_else(|| format!("unknown defect class: {v}"))?,
                );
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(opts)
}

#[derive(Default)]
struct ClassTally {
    injected: usize,
    detected_by_lmi: usize,
}

struct Failure {
    seed: u64,
    class: Option<DefectClass>,
    message: String,
    shrunk: Option<ShrunkInfo>,
}

struct ShrunkInfo {
    recipe_ops: usize,
    ir_ops: usize,
    test_source: String,
}

struct Session {
    cfg: OracleConfig,
    cases: usize,
    recipes: usize,
    false_positives: usize,
    tallies: BTreeMap<&'static str, ClassTally>,
    failures: Vec<Failure>,
    persisted: usize,
    corpus_dir: Option<String>,
}

impl Session {
    /// Runs one case through the oracle, tallying detection coverage and
    /// shrinking/persisting failures.
    fn run(&mut self, recipe: &Recipe, defect: Option<&Defect>) {
        self.cases += 1;
        match run_case(recipe, defect, &self.cfg) {
            Ok(rep) => {
                if let Some(d) = defect {
                    let tally = self.tallies.entry(d.class.label()).or_default();
                    tally.injected += 1;
                    let lmi_hit = rep.compile_rejected
                        || rep
                            .mechanisms
                            .iter()
                            .any(|m| m.mechanism == lmi_conformance_lmi() && m.detected);
                    if lmi_hit {
                        tally.detected_by_lmi += 1;
                    }
                }
            }
            Err(fail) => {
                if defect.is_none() {
                    self.false_positives += 1;
                }
                let shrunk = defect.and_then(|d| self.try_shrink(recipe, d));
                self.persist(recipe, defect, &fail.to_string());
                self.failures.push(Failure {
                    seed: recipe.seed,
                    class: defect.map(|d| d.class),
                    message: fail.to_string(),
                    shrunk,
                });
            }
        }
    }

    /// Shrinks a failing defect case when the failure is a surviving LMI
    /// detection (the masked-class scenario); other failure shapes are
    /// persisted un-shrunk, since recipe reduction would not preserve them.
    fn try_shrink(&self, recipe: &Recipe, defect: &Defect) -> Option<ShrunkInfo> {
        let point = *self.cfg.points.first()?;
        let fails = if defect.class == DefectClass::IntToPtrEscape {
            true
        } else {
            let func = build(recipe, Some(defect));
            lmi_run(&func, &recipe.globals, point).map(|s| s.violated()).unwrap_or(false)
        };
        if !fails {
            return None;
        }
        let rep = shrink(recipe, defect, point);
        Some(ShrunkInfo {
            recipe_ops: rep.recipe.ops.len(),
            ir_ops: rep.op_count,
            test_source: rep.to_test_source(),
        })
    }

    fn persist(&mut self, recipe: &Recipe, defect: Option<&Defect>, message: &str) {
        let Some(dir) = &self.corpus_dir else { return };
        let entry = case_to_json(recipe, defect, Some(message));
        let class = defect.map(|d| d.class.label()).unwrap_or("safe");
        let path = format!("{dir}/case-{:016x}-{class}.json", recipe.seed);
        if let Err(e) = std::fs::write(&path, entry.to_pretty()) {
            eprintln!("warning: could not persist {path}: {e}");
        } else {
            self.persisted += 1;
        }
    }
}

/// The LMI column of the matrix (avoids importing the enum variant at the
/// use site above).
fn lmi_conformance_lmi() -> lmi_conformance::MechanismKind {
    lmi_conformance::MechanismKind::Lmi
}

fn replay_corpus(session: &mut Session, dir: &str) -> usize {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    let mut paths: Vec<_> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    let mut replayed = 0;
    for path in paths {
        let Ok(text) = std::fs::read_to_string(&path) else { continue };
        let Ok(doc) = lmi_telemetry::json::parse(&text) else {
            eprintln!("warning: skipping malformed corpus entry {}", path.display());
            continue;
        };
        let Some((recipe, defect)) = case_from_json(&doc) else {
            eprintln!("warning: skipping incompatible corpus entry {}", path.display());
            continue;
        };
        session.run(&recipe, defect.as_ref());
        replayed += 1;
    }
    replayed
}

fn main() -> ExitCode {
    let opts = match parse_opts() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("fuzz: {e}");
            return ExitCode::from(2);
        }
    };
    let mut cfg = if opts.full_matrix { OracleConfig::full() } else { OracleConfig::quick() };
    cfg.masked = opts.masked;

    if let Some(dir) = &opts.corpus {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("fuzz: cannot create corpus dir {dir}: {e}");
            return ExitCode::from(2);
        }
    }

    let mut session = Session {
        cfg,
        cases: 0,
        recipes: 0,
        false_positives: 0,
        tallies: BTreeMap::new(),
        failures: Vec::new(),
        persisted: 0,
        corpus_dir: opts.corpus.clone(),
    };

    let replayed = match &opts.corpus {
        Some(dir) => replay_corpus(&mut session, dir),
        None => 0,
    };

    // Each recipe yields 1 safe case + one mutant per defect class.
    let mut rng = SplitMix64::new(opts.seed);
    while session.cases < opts.cases {
        let seed = opts.seed.wrapping_add(session.recipes as u64);
        let safe = generate(seed);
        session.recipes += 1;
        session.run(&safe, None);
        for class in ALL_CLASSES {
            if session.cases >= opts.cases {
                break;
            }
            let (mutant, defect) = mutate(&safe, class, &mut rng);
            session.run(&mutant, Some(&defect));
        }
    }

    let spatial_injected: usize = session
        .tallies
        .iter()
        .filter(|(k, _)| DefectClass::parse(k).is_some_and(|c| c.is_spatial()))
        .map(|(_, t)| t.injected)
        .sum();
    let spatial_detected: usize = session
        .tallies
        .iter()
        .filter(|(k, _)| DefectClass::parse(k).is_some_and(|c| c.is_spatial()))
        .map(|(_, t)| t.detected_by_lmi)
        .sum();

    if opts.json {
        let mut detections = Json::obj();
        for (class, t) in &session.tallies {
            detections.set(
                class,
                Json::obj().with("injected", t.injected).with("detected_by_lmi", t.detected_by_lmi),
            );
        }
        let points: Vec<Json> = session
            .cfg
            .points
            .iter()
            .map(|p| Json::obj().with("sim_threads", p.sim_threads).with("mem_banks", p.mem_banks))
            .collect();
        let failures: Vec<Json> = session
            .failures
            .iter()
            .map(|f| {
                let mut j = Json::obj()
                    .with("seed", f.seed)
                    .with("class", f.class.map(|c| Json::from(c.label())).unwrap_or(Json::Null))
                    .with("message", f.message.as_str());
                if let Some(s) = &f.shrunk {
                    j.set(
                        "shrunk",
                        Json::obj()
                            .with("recipe_ops", s.recipe_ops)
                            .with("ir_ops", s.ir_ops)
                            .with("test_source", s.test_source.as_str()),
                    );
                }
                j
            })
            .collect();
        let body = Json::obj()
            .with("cases", session.cases)
            .with("recipes", session.recipes)
            .with("seed", opts.seed)
            .with(
                "matrix",
                Json::obj()
                    .with(
                        "mechanisms",
                        session.cfg.mechanisms.iter().map(|m| m.label()).collect::<Vec<_>>(),
                    )
                    .with("points", Json::Arr(points)),
            )
            .with("masked", opts.masked.map(|c| Json::from(c.label())).unwrap_or(Json::Null))
            .with("detections", detections)
            .with("false_positives", session.false_positives)
            .with(
                "spatial_detection_rate",
                if spatial_injected == 0 {
                    1.0
                } else {
                    spatial_detected as f64 / spatial_injected as f64
                },
            )
            .with("failures", Json::Arr(failures))
            .with(
                "corpus",
                Json::obj().with("replayed", replayed).with("persisted", session.persisted),
            );
        report::emit(&report::envelope("fuzz", body));
    } else {
        println!(
            "conformance fuzz: {} cases ({} recipes, {} corpus replays) on {} mechanisms x {} engine points",
            session.cases,
            session.recipes,
            replayed,
            session.cfg.mechanisms.len(),
            session.cfg.points.len()
        );
        for (class, t) in &session.tallies {
            println!(
                "  {class:<16} injected {:>4}  lmi-detected {:>4}",
                t.injected, t.detected_by_lmi
            );
        }
        println!("  false positives: {}", session.false_positives);
        if session.failures.is_empty() {
            println!("  all oracle invariants held");
        }
        for f in &session.failures {
            println!(
                "\nFAIL seed={} class={}: {}",
                f.seed,
                f.class.map(|c| c.label()).unwrap_or("safe"),
                f.message
            );
            if let Some(s) = &f.shrunk {
                println!(
                    "  shrunk to {} recipe op(s), {} IR ops; reproducer:\n",
                    s.recipe_ops, s.ir_ops
                );
                println!("{}", s.test_source);
            }
        }
    }

    if session.failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
