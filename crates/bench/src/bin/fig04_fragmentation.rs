//! Regenerates paper Fig. 4: memory overhead caused by 2ⁿ-aligned memory
//! buffers, measured as the peak-RSS increase of the LMI allocator over the
//! CUDA-default allocator on each Rodinia benchmark's allocation profile.

use lmi_bench::{geomean, print_row};
use lmi_workloads::prepare::{fragmentation_overhead, profile_peak_rss};
use lmi_workloads::rodinia_workloads;

fn main() {
    println!("Fig. 4 — memory overhead of 2^n-aligned buffers (peak RSS)\n");
    print_row(
        "benchmark",
        &["base RSS", "LMI RSS", "overhead"].iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    );
    let mut factors = Vec::new();
    for spec in rodinia_workloads() {
        let base = profile_peak_rss(&spec, lmi_alloc::AlignmentPolicy::CudaDefault);
        let lmi = profile_peak_rss(&spec, lmi_alloc::AlignmentPolicy::PowerOfTwo);
        let overhead = fragmentation_overhead(&spec);
        factors.push(1.0 + overhead);
        print_row(
            spec.name,
            &[
                format!("{base}"),
                format!("{lmi}"),
                format!("{:6.1}%", overhead * 100.0),
            ],
        );
    }
    let geo = geomean(factors) - 1.0;
    println!("\ngeomean overhead: {:.2}%  (paper: 18.73%)", geo * 100.0);
    println!("paper call-outs:  backprop 85.9%, needle 92.9%, hotspot/srad negligible");
}
