//! Regenerates paper Fig. 4: memory overhead caused by 2ⁿ-aligned memory
//! buffers, measured as the peak-RSS increase of the LMI allocator over the
//! CUDA-default allocator on each Rodinia benchmark's allocation profile.

use lmi_bench::report::{self, ReportOpts};
use lmi_bench::{geomean, print_row};
use lmi_telemetry::Json;
use lmi_workloads::prepare::{fragmentation_overhead, profile_peak_rss};
use lmi_workloads::rodinia_workloads;

fn main() {
    let opts = ReportOpts::from_env();
    let rows: Vec<(&'static str, u64, u64, f64)> = rodinia_workloads()
        .iter()
        .map(|spec| {
            let base = profile_peak_rss(spec, lmi_alloc::AlignmentPolicy::CudaDefault);
            let lmi = profile_peak_rss(spec, lmi_alloc::AlignmentPolicy::PowerOfTwo);
            let overhead = fragmentation_overhead(spec);
            (spec.name, base, lmi, overhead)
        })
        .collect();
    let geo = geomean(rows.iter().map(|&(_, _, _, o)| 1.0 + o)) - 1.0;

    if opts.json {
        let mut out = Vec::new();
        for &(name, base, lmi, overhead) in &rows {
            out.push(
                Json::obj()
                    .with("benchmark", name)
                    .with("base_rss", base)
                    .with("lmi_rss", lmi)
                    .with("overhead", overhead),
            );
        }
        report::emit(&report::envelope(
            "fig04_fragmentation",
            Json::obj().with("rows", Json::Arr(out)).with("geomean_overhead", geo),
        ));
        return;
    }

    println!("Fig. 4 — memory overhead of 2^n-aligned buffers (peak RSS)\n");
    print_row(
        "benchmark",
        &["base RSS", "LMI RSS", "overhead"].iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    );
    for &(name, base, lmi, overhead) in &rows {
        print_row(
            name,
            &[format!("{base}"), format!("{lmi}"), format!("{:6.1}%", overhead * 100.0)],
        );
    }
    println!("\ngeomean overhead: {:.2}%  (paper: 18.73%)", geo * 100.0);
    println!("paper call-outs:  backprop 85.9%, needle 92.9%, hotspot/srad negligible");
}
