//! Developer diagnostic: decomposes a workload's LMI overhead into its
//! program-variant and mechanism components, and reports where the cycles
//! go under each mechanism.
//!
//! Usage: `cargo run --release -p lmi-bench --bin probe [workload]`

use lmi_alloc::AlignmentPolicy;
use lmi_sim::{Gpu, GpuConfig, LmiMechanism, NullMechanism};
use lmi_workloads::{all_workloads, prepare, PreparedWorkload};

fn run(prep: &PreparedWorkload, lmi_mech: bool, phase: u64) -> (u64, lmi_sim::SimStats) {
    let mut launch = prep.launch.clone();
    launch.phase = phase;
    let mut gpu = Gpu::new(GpuConfig::small());
    let stats = if lmi_mech {
        gpu.run(&launch, &mut LmiMechanism::default_config())
    } else {
        gpu.run(&launch, &mut NullMechanism)
    };
    (stats.cycles, stats)
}

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "hotspot".into());
    let w = all_workloads()
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("unknown workload `{name}`"));

    let base_prep = prepare(&w, AlignmentPolicy::CudaDefault);
    let lmi_prep = prepare(&w, AlignmentPolicy::PowerOfTwo);

    println!("{name}: per-phase cycles (baseline program vs LMI program, both unchecked)");
    for phase in 0..4u64 {
        let (c1, _) = run(&base_prep, false, phase);
        let (c2, _) = run(&lmi_prep, false, phase);
        println!(
            "  phase {phase}: base {c1:>8}  lmi-prog {c2:>8}  ratio {:.4}",
            c2 as f64 / c1 as f64
        );
    }

    let (a, _) = run(&base_prep, false, 0);
    let (b, _) = run(&lmi_prep, false, 0);
    let (c, stats) = run(&lmi_prep, true, 0);
    println!("\ndecomposition at phase 0:");
    println!("  program-variant effect: {:+.4}%", (b as f64 / a as f64 - 1.0) * 100.0);
    println!("  mechanism effect:       {:+.4}%", (c as f64 / b as f64 - 1.0) * 100.0);
    println!("  total:                  {:+.4}%", (c as f64 / a as f64 - 1.0) * 100.0);
    println!("\nLMI run statistics:\n{stats}");
}
