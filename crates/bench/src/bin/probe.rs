//! Developer diagnostic: decomposes a workload's LMI overhead into its
//! program-variant and mechanism components, and reports where the cycles
//! go under each mechanism.
//!
//! Usage: `cargo run --release -p lmi-bench --bin probe [workload] [--json] [--trace out.json]`
//!
//! With `--json`, one machine-readable document is printed instead of the
//! tables: per-phase cycles, the overhead decomposition, the full LMI-run
//! statistics (IPC, cache hit rates, stall breakdown), the scoped counter
//! registry, and a violation demo whose forensics record shows the
//! poisoning pc and the poison-to-fault latency. With `--trace`, the LMI
//! run's kernel timeline is written as Chrome trace-event JSON.

use lmi_alloc::AlignmentPolicy;
use lmi_bench::report::{self, ReportOpts};
use lmi_core::{DevicePtr, PtrConfig};
use lmi_isa::{abi, HintBits, Instruction, MemRef, ProgramBuilder, Reg};
use lmi_mem::layout;
use lmi_sim::{Gpu, GpuConfig, Launch, LmiMechanism, NullMechanism, SimStats};
use lmi_telemetry::{Json, TelemetrySink};
use lmi_workloads::{all_workloads, prepare, PreparedWorkload};

fn run(prep: &PreparedWorkload, lmi_mech: bool, phase: u64) -> (u64, SimStats) {
    let mut launch = prep.launch.clone();
    launch.phase = phase;
    let mut gpu = Gpu::new(GpuConfig::small());
    let stats = if lmi_mech {
        gpu.run(&launch, &mut LmiMechanism::default_config())
    } else {
        gpu.run(&launch, &mut NullMechanism)
    };
    (stats.cycles, stats)
}

/// A deliberately violating kernel: `p += 256` (marked) escapes a 256-byte
/// buffer, then the dereference trips the EC. Its stats carry the
/// forensics record the `--json` report surfaces.
fn violation_demo() -> SimStats {
    let cfg = PtrConfig::default();
    let buf = DevicePtr::encode(layout::GLOBAL_BASE + 0x10000, 256, &cfg).unwrap().raw();
    let mut b = ProgramBuilder::new("oob-demo");
    b.push(Instruction::ldc(Reg(4), abi::LAUNCH_BANK, abi::param_offset(0), 8));
    b.push(Instruction::iadd64(Reg(4), Reg(4), 256).with_hints(HintBits::check_operand(0)));
    b.push(Instruction::mov(Reg(0), 1));
    b.push(Instruction::stg(MemRef::new(Reg(4), 0, 4), Reg(0)));
    b.push(Instruction::exit());
    let launch = Launch::new(b.build()).grid(1).block(1).param(buf);
    let mut gpu = Gpu::new(GpuConfig::security());
    gpu.run(&launch, &mut LmiMechanism::default_config())
}

fn main() {
    let opts = ReportOpts::from_env();
    let name = opts.positional.first().cloned().unwrap_or_else(|| "hotspot".into());
    let w = all_workloads()
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("unknown workload `{name}`"));

    let base_prep = prepare(&w, AlignmentPolicy::CudaDefault);
    let lmi_prep = prepare(&w, AlignmentPolicy::PowerOfTwo);

    let mut phases = Vec::new();
    for phase in 0..4u64 {
        let (c1, _) = run(&base_prep, false, phase);
        let (c2, _) = run(&lmi_prep, false, phase);
        phases.push((phase, c1, c2));
    }

    let (a, _) = run(&base_prep, false, 0);
    let (b, _) = run(&lmi_prep, false, 0);

    // The headline LMI run goes through the telemetered path so the report
    // carries the counter registry (and, with `--trace`, the timeline).
    let mut sink = if opts.trace_path.is_some() {
        TelemetrySink::with_trace_capacity(1 << 16)
    } else {
        TelemetrySink::counters_only()
    };
    let mut launch = lmi_prep.launch.clone();
    launch.phase = 0;
    let mut gpu = Gpu::new(GpuConfig::small());
    let stats = gpu.run_with_telemetry(&launch, &mut LmiMechanism::default_config(), &mut sink);
    let c = stats.cycles;
    opts.write_trace(&sink.tracer.chrome_trace());

    let demo = violation_demo();

    if opts.json {
        let mut phase_rows = Vec::new();
        for &(phase, c1, c2) in &phases {
            phase_rows.push(
                Json::obj()
                    .with("phase", phase)
                    .with("base_cycles", c1)
                    .with("lmi_program_cycles", c2)
                    .with("ratio", c2 as f64 / c1 as f64),
            );
        }
        let body = Json::obj()
            .with("workload", name.as_str())
            .with("phases", Json::Arr(phase_rows))
            .with(
                "decomposition_pct",
                Json::obj()
                    .with("program_variant", (b as f64 / a as f64 - 1.0) * 100.0)
                    .with("mechanism", (c as f64 / b as f64 - 1.0) * 100.0)
                    .with("total", (c as f64 / a as f64 - 1.0) * 100.0),
            )
            .with("lmi_run", stats.to_json())
            .with("counters", sink.counters.to_json())
            .with("violation_demo", demo.to_json());
        report::emit(&report::envelope("probe", body));
        return;
    }

    println!("{name}: per-phase cycles (baseline program vs LMI program, both unchecked)");
    for &(phase, c1, c2) in &phases {
        println!(
            "  phase {phase}: base {c1:>8}  lmi-prog {c2:>8}  ratio {:.4}",
            c2 as f64 / c1 as f64
        );
    }
    println!("\ndecomposition at phase 0:");
    println!("  program-variant effect: {:+.4}%", (b as f64 / a as f64 - 1.0) * 100.0);
    println!("  mechanism effect:       {:+.4}%", (c as f64 / b as f64 - 1.0) * 100.0);
    println!("  total:                  {:+.4}%", (c as f64 / a as f64 - 1.0) * 100.0);
    println!("\nLMI run statistics:\n{stats}");
    println!("\nviolation demo (escaping pointer, then dereference):\n{demo}");
}
