//! Regenerates paper Table VI and the §XI-C synthesis results: the OCU's
//! gate-equivalent area (from the structural netlist), SRAM needs,
//! verification scope, critical path, fmax, and the register-slice count at
//! GPU clock rates.

use lmi_bench::print_row;
use lmi_core::hw::{comparison_rows, emit_verilog, DatapathWidth, OcuNetlist};

fn main() {
    if std::env::args().any(|a| a == "--verilog") {
        print!("{}", emit_verilog(&OcuNetlist::new(DatapathWidth::W32)));
        return;
    }
    println!("Table VI — hardware overhead comparison\n");
    print_row(
        "mechanism",
        &["gates (GE)", "SRAM (B)", "verify scope"]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
    );
    for row in comparison_rows() {
        print_row(
            row.name,
            &[
                format!("{:.0}{}", row.gates_ge, row.granularity.suffix()),
                format!("{}", row.sram_bytes),
                row.to_be_verified.to_string(),
            ],
        );
    }

    println!("\n§XI-C — OCU synthesis (structural netlist, 45 nm-class cells)\n");
    for width in [DatapathWidth::W32, DatapathWidth::W64] {
        let n = OcuNetlist::new(width);
        println!("OCU ({:?} datapath):", width);
        for stage in n.stages() {
            println!(
                "  {:<38} {:>7.1} GE   {:>6.0} ps",
                stage.name,
                stage.ge(lmi_core::hw::CellLibrary),
                stage.delay_ps(lmi_core::hw::CellLibrary)
            );
        }
        println!(
            "  total {:.1} GE; critical path {:.0} ps -> fmax {:.3} GHz; \
             at 3 GHz: {} register slices, {}-cycle check latency\n",
            n.area_ge(),
            n.critical_path_ps(),
            n.fmax_ghz(),
            n.register_slices(3.0),
            n.latency_cycles(3.0)
        );
    }
    println!(
        "paper: 153 GE/thread, 0 SRAM, 0.63 ns critical path (fmax 1.587 GHz), \
         two register slices -> three-cycle delay."
    );
    println!("(run with --verilog to emit the OCU as structural RTL)");
}
