//! Regenerates paper Table III: the security-coverage matrix over the 38
//! violation test cases. Also prints the §XII-C liveness-tracking ablation
//! column.

use lmi_bench::print_row;
use lmi_security::table::{coverage, run_matrix, MECHANISMS};

fn main() {
    println!("Table III — security evaluation (38 reconstructed test cases)\n");
    let rows = run_matrix();
    let mut header = vec!["total".to_string()];
    header.extend(MECHANISMS.iter().map(|m| m.to_string()));
    print_row("violation test", &header);

    for row in &rows {
        let mut cols = vec![format!("{}", row.total)];
        cols.extend(row.detected.iter().map(|d| format!("{d}")));
        print_row(row.class.label(), &cols);
    }

    println!();
    for (label, spatial) in [("spatial", true), ("temporal", false)] {
        let mut cols = vec![String::new()];
        for m in 0..MECHANISMS.len() {
            let (det, total) = coverage(&rows, m, spatial);
            cols.push(format!("{:.1}%", det as f64 / total as f64 * 100.0));
        }
        print_row(&format!("{label} coverage"), &cols);
    }

    println!(
        "\npaper rows (GMOD/GPUShield/cuCatch/LMI): Global 1/2/2/2, Heap 0/1/0/3, \
         Local 0/2/6/8, Shared 0/0/5/6, Intra 0/0/0/0;"
    );
    println!(
        "temporal: UAF 0/0/4/4, UAS 0/0/4/4, invalid/double free 2+2 for all. \
         (The paper's printed percentages use a 21-test denominator that is \
         inconsistent with its own row counts; the percentages above are \
         computed from the actual totals.)"
    );
}
