//! Regenerates paper Fig. 12: normalized execution time of Baggy Bounds
//! Checking (software, naively ported to the GPU), GPUShield, and LMI over
//! the 28 Table V benchmarks on the simulator.

use lmi_bench::{geomean, mean, normalized, print_row, Mechanism};
use lmi_workloads::all_workloads;

fn main() {
    println!("Fig. 12 — normalized execution time (baseline = 1.0)\n");
    print_row(
        "workload",
        &["Baggy", "GPUShield", "LMI"].iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    );
    let mut baggy_all = Vec::new();
    let mut shield_all = Vec::new();
    let mut lmi_all = Vec::new();
    for spec in all_workloads() {
        let baggy = normalized(&spec, Mechanism::BaggySoftware);
        let shield = normalized(&spec, Mechanism::GpuShield);
        let lmi = normalized(&spec, Mechanism::Lmi);
        baggy_all.push(baggy);
        shield_all.push(shield);
        lmi_all.push(lmi);
        print_row(
            spec.name,
            &[format!("{baggy:.4}"), format!("{shield:.4}"), format!("{lmi:.4}")],
        );
    }
    println!();
    print_row(
        "arithmetic mean",
        &[
            format!("{:.4}", mean(baggy_all.iter().copied())),
            format!("{:.4}", mean(shield_all.iter().copied())),
            format!("{:.4}", mean(lmi_all.iter().copied())),
        ],
    );
    print_row(
        "geometric mean",
        &[
            format!("{:.4}", geomean(baggy_all.iter().copied())),
            format!("{:.4}", geomean(shield_all.iter().copied())),
            format!("{:.4}", geomean(lmi_all.iter().copied())),
        ],
    );
    let baggy_peak = baggy_all.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "\nBaggy peak: {:.2}x; LMI average overhead: {:.3}%",
        baggy_peak,
        (mean(lmi_all.iter().copied()) - 1.0) * 100.0
    );
    println!(
        "paper: LMI 0.22% average; GPUShield competitive except needle (+42.5%) \
         and LSTM (+24.0%); Baggy 87% average, up to 503% on compute-bound kernels."
    );
}
