//! Regenerates paper Fig. 12: normalized execution time of Baggy Bounds
//! Checking (software, naively ported to the GPU), GPUShield, and LMI over
//! the 28 Table V benchmarks on the simulator.

use lmi_bench::report::{self, ReportOpts};
use lmi_bench::{geomean, mean, normalized, print_row, Mechanism};
use lmi_telemetry::Json;
use lmi_workloads::all_workloads;

fn main() {
    let opts = ReportOpts::from_env();
    let rows: Vec<(&'static str, f64, f64, f64)> = all_workloads()
        .iter()
        .map(|spec| {
            (
                spec.name,
                normalized(spec, Mechanism::BaggySoftware),
                normalized(spec, Mechanism::GpuShield),
                normalized(spec, Mechanism::Lmi),
            )
        })
        .collect();
    let baggy_all: Vec<f64> = rows.iter().map(|r| r.1).collect();
    let shield_all: Vec<f64> = rows.iter().map(|r| r.2).collect();
    let lmi_all: Vec<f64> = rows.iter().map(|r| r.3).collect();

    if opts.json {
        let mut out = Vec::new();
        for &(name, baggy, shield, lmi) in &rows {
            out.push(
                Json::obj()
                    .with("workload", name)
                    .with("baggy", baggy)
                    .with("gpushield", shield)
                    .with("lmi", lmi),
            );
        }
        let body = Json::obj()
            .with("rows", Json::Arr(out))
            .with(
                "mean",
                Json::obj()
                    .with("baggy", mean(baggy_all.iter().copied()))
                    .with("gpushield", mean(shield_all.iter().copied()))
                    .with("lmi", mean(lmi_all.iter().copied())),
            )
            .with(
                "geomean",
                Json::obj()
                    .with("baggy", geomean(baggy_all.iter().copied()))
                    .with("gpushield", geomean(shield_all.iter().copied()))
                    .with("lmi", geomean(lmi_all.iter().copied())),
            )
            .with("lmi_avg_overhead_pct", (mean(lmi_all.iter().copied()) - 1.0) * 100.0);
        report::emit(&report::envelope("fig12_hw_comparison", body));
        return;
    }

    println!("Fig. 12 — normalized execution time (baseline = 1.0)\n");
    print_row(
        "workload",
        &["Baggy", "GPUShield", "LMI"].iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    );
    for &(name, baggy, shield, lmi) in &rows {
        print_row(name, &[format!("{baggy:.4}"), format!("{shield:.4}"), format!("{lmi:.4}")]);
    }
    println!();
    print_row(
        "arithmetic mean",
        &[
            format!("{:.4}", mean(baggy_all.iter().copied())),
            format!("{:.4}", mean(shield_all.iter().copied())),
            format!("{:.4}", mean(lmi_all.iter().copied())),
        ],
    );
    print_row(
        "geometric mean",
        &[
            format!("{:.4}", geomean(baggy_all.iter().copied())),
            format!("{:.4}", geomean(shield_all.iter().copied())),
            format!("{:.4}", geomean(lmi_all.iter().copied())),
        ],
    );
    let baggy_peak = baggy_all.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "\nBaggy peak: {:.2}x; LMI average overhead: {:.3}%",
        baggy_peak,
        (mean(lmi_all.iter().copied()) - 1.0) * 100.0
    );
    println!(
        "paper: LMI 0.22% average; GPUShield competitive except needle (+42.5%) \
         and LSTM (+24.0%); Baggy 87% average, up to 503% on compute-bound kernels."
    );
}
