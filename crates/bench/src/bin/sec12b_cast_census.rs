//! Regenerates the §XII-B feasibility study: scan the kernel-IR corpus for
//! `ptrtoint`/`inttoptr` casts. The paper compiled 57 benchmark kernel
//! files and found none; our corpus is every workload kernel expressed in
//! the IR plus the example kernels.

use lmi_compiler::ir::{CmpKind, FunctionBuilder, IBinOp, Region, Ty};
use lmi_compiler::{cast_census, Function};

/// Builds an IR rendition of a representative benchmark kernel: a strided
/// global/shared stencil loop, the shape the workload generator emits.
fn benchmark_kernel(name: &str, use_shared: bool, use_local: bool) -> Function {
    let mut b = FunctionBuilder::new(name);
    let input = b.param(Ty::Ptr(Region::Global));
    let output = b.param(Ty::Ptr(Region::Global));
    let n = b.param(Ty::I32);
    let shared = use_shared.then(|| b.shared_alloc(4096));
    let local = use_local.then(|| b.alloca(256));
    let tid = b.tid();
    let zero = b.const_i32(0);
    let i = b.var(zero);

    let body = b.new_block();
    let exit = b.new_block();
    b.jump(body);
    b.switch_to(body);
    let iv = b.read_var(i);
    let idx = b.ibin(IBinOp::Add, tid, iv);
    let src = b.gep(input, idx, 4);
    let v = b.load_f32(src);
    if let Some(s) = shared {
        let se = b.gep(s, tid, 4);
        b.store(se, v, 4);
    }
    if let Some(l) = local {
        let le = b.gep(l, tid, 4);
        b.store(le, v, 4);
    }
    let dst = b.gep(output, idx, 4);
    b.store(dst, v, 4);
    let one = b.const_i32(1);
    let next = b.ibin(IBinOp::Add, iv, one);
    b.write_var(i, next);
    let c = b.cmp(CmpKind::Lt, next, n);
    b.branch(c, body, exit);
    b.switch_to(exit);
    b.ret();
    b.build()
}

fn main() {
    println!("§XII-B — ptrtoint/inttoptr census over the kernel corpus\n");
    let mut corpus: Vec<Function> = Vec::new();
    for spec in lmi_workloads::all_workloads() {
        corpus.push(benchmark_kernel(spec.name, spec.shared_frac > 0.0, spec.local_frac > 0.0));
    }
    // The kernels exercised by the examples and security suite.
    corpus.push(benchmark_kernel("quickstart", false, false));
    corpus.push(benchmark_kernel("attack_copy", false, true));

    let mut clean = 0;
    let mut ptrtoint = 0;
    let mut inttoptr = 0;
    for f in &corpus {
        let census = cast_census(f);
        if census.is_clean() {
            clean += 1;
        }
        ptrtoint += census.ptrtoint;
        inttoptr += census.inttoptr;
    }
    println!("kernels scanned:    {}", corpus.len());
    println!("cast-free kernels:  {clean}");
    println!("ptrtoint instances: {ptrtoint}");
    println!("inttoptr instances: {inttoptr}");
    println!(
        "\npaper: 57 benchmark kernel files contained zero ptrtoint/inttoptr; \
         3 instances in CUDA samples were confined to inlined cooperative-group \
         helpers; 1 FasterTransformer cast was trivially rewritten."
    );
    assert_eq!(ptrtoint + inttoptr, 0, "the corpus is cast-free");
}
