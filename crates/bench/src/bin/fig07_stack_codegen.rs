//! Regenerates paper Fig. 7: the compiled stack-allocation sequence for the
//! `dummy` kernel, unprotected vs. LMI (stack top read from `c[0x0][0x28]`,
//! frame reserved by subtraction — rounded to a power of two under LMI).

use lmi_bench::report::{self, ReportOpts};
use lmi_compiler::ir::FunctionBuilder;
use lmi_compiler::{compile, CompileOptions};
use lmi_telemetry::Json;

fn main() {
    let opts = ReportOpts::from_env();

    // __global__ void dummy2(int size) { char buf[0x60]; }   (Fig. 7a)
    let build = || {
        let mut b = FunctionBuilder::new("dummy2");
        let _size = b.param(lmi_compiler::ir::Ty::I32);
        let _buf = b.alloca(0x60);
        b.ret();
        b.build()
    };

    let base = compile(&build(), CompileOptions::baseline()).unwrap();
    let lmi = compile(&build(), CompileOptions::default()).unwrap();

    if opts.json {
        report::emit(&report::envelope(
            "fig07_stack_codegen",
            Json::obj()
                .with(
                    "base",
                    Json::obj()
                        .with("frame_bytes", base.frame_bytes)
                        .with("listing", format!("{}", base.program)),
                )
                .with(
                    "lmi",
                    Json::obj()
                        .with("frame_bytes", lmi.frame_bytes)
                        .with("listing", format!("{}", lmi.program)),
                ),
        ));
        return;
    }

    println!("Fig. 7 — stack memory allocation codegen\n");
    println!("(b) unprotected build — frame = {} bytes:", base.frame_bytes);
    print!("{}", base.program);

    println!(
        "\n(c) LMI build — 0x60 (96) bytes rounded to {} bytes, extent embedded:",
        lmi.frame_bytes
    );
    print!("{}", lmi.program);
    println!(
        "\nNote the LDC of the stack top from c[0x0][0x28] and the frame\n\
         subtraction, exactly as in the paper's SASS listing; under LMI the\n\
         OR instruction stamps the buffer's extent into the pointer's high\n\
         register and scope exit clears it (the AND before EXIT)."
    );
}
