//! Regenerates paper Fig. 5: the CUDA kernel `malloc`'s buffer groups and
//! chunk-unit fragmentation, compared with LMI's power-of-two policy —
//! showing that the device heap fragments substantially *before* LMI is
//! applied (§IV-E: "memory fragmentation of up to 50%, as seen in LMI").

use lmi_alloc::{AlignmentPolicy, DeviceHeap};
use lmi_bench::print_row;
use lmi_core::PtrConfig;
use lmi_mem::layout;

fn main() {
    println!("Fig. 5 — kernel malloc buffer groups and chunk units\n");
    let cfg = PtrConfig::default();

    print_row(
        "request",
        &["chunk unit", "base reserves", "LMI reserves"]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
    );
    for size in [16u64, 64, 240, 500, 1024, 1104, 2000, 4000, 8000] {
        let base = DeviceHeap::new(cfg, AlignmentPolicy::CudaDefault, layout::HEAP_BASE, 1, 1 << 20);
        let lmi = DeviceHeap::new(cfg, AlignmentPolicy::PowerOfTwo, layout::HEAP_BASE, 1, 1 << 20);
        base.malloc(0, size).unwrap();
        lmi.malloc(0, size).unwrap();
        print_row(
            &format!("malloc({size})"),
            &[
                format!("{}", DeviceHeap::chunk_unit(size)),
                format!("{}", base.stats().reserved),
                format!("{}", lmi.stats().reserved),
            ],
        );
    }

    // A warp-wide allocation storm (Fig. 3): 32 threads allocate variable
    // sizes concurrently across buffer groups.
    println!("\nwarp-wide variable-size allocation (Fig. 3):");
    for policy in [AlignmentPolicy::CudaDefault, AlignmentPolicy::PowerOfTwo] {
        let heap = DeviceHeap::new(cfg, policy, layout::HEAP_BASE, 8, 1 << 20);
        for tid in 0..32usize {
            heap.malloc(tid, (tid as u64 + 1) * 4).unwrap();
        }
        let s = heap.stats();
        println!(
            "  {policy:?}: requested {} B, reserved {} B (+{:.0}% incl. headers), {} groups",
            s.requested,
            s.reserved,
            s.fragmentation() * 100.0,
            heap.group_count()
        );
    }
}
