//! Regenerates paper Fig. 5: the CUDA kernel `malloc`'s buffer groups and
//! chunk-unit fragmentation, compared with LMI's power-of-two policy —
//! showing that the device heap fragments substantially *before* LMI is
//! applied (§IV-E: "memory fragmentation of up to 50%, as seen in LMI").

use lmi_alloc::{AlignmentPolicy, DeviceHeap};
use lmi_bench::print_row;
use lmi_bench::report::{self, ReportOpts};
use lmi_core::PtrConfig;
use lmi_mem::layout;
use lmi_telemetry::Json;

fn main() {
    let opts = ReportOpts::from_env();
    let cfg = PtrConfig::default();

    let sizes = [16u64, 64, 240, 500, 1024, 1104, 2000, 4000, 8000];
    let rows: Vec<(u64, u64, u64, u64)> = sizes
        .iter()
        .map(|&size| {
            let base =
                DeviceHeap::new(cfg, AlignmentPolicy::CudaDefault, layout::HEAP_BASE, 1, 1 << 20);
            let lmi =
                DeviceHeap::new(cfg, AlignmentPolicy::PowerOfTwo, layout::HEAP_BASE, 1, 1 << 20);
            base.malloc(0, size).unwrap();
            lmi.malloc(0, size).unwrap();
            (size, DeviceHeap::chunk_unit(size), base.stats().reserved, lmi.stats().reserved)
        })
        .collect();

    // A warp-wide allocation storm (Fig. 3): 32 threads allocate variable
    // sizes concurrently across buffer groups.
    let storm: Vec<(AlignmentPolicy, u64, u64, f64, usize)> =
        [AlignmentPolicy::CudaDefault, AlignmentPolicy::PowerOfTwo]
            .iter()
            .map(|&policy| {
                let heap = DeviceHeap::new(cfg, policy, layout::HEAP_BASE, 8, 1 << 20);
                for tid in 0..32usize {
                    heap.malloc(tid, (tid as u64 + 1) * 4).unwrap();
                }
                let s = heap.stats();
                (policy, s.requested, s.reserved, s.fragmentation(), heap.group_count())
            })
            .collect();

    if opts.json {
        let mut out = Vec::new();
        for &(size, unit, base, lmi) in &rows {
            out.push(
                Json::obj()
                    .with("request", size)
                    .with("chunk_unit", unit)
                    .with("base_reserves", base)
                    .with("lmi_reserves", lmi),
            );
        }
        let mut storm_out = Vec::new();
        for &(policy, requested, reserved, frag, groups) in &storm {
            storm_out.push(
                Json::obj()
                    .with("policy", format!("{policy:?}"))
                    .with("requested", requested)
                    .with("reserved", reserved)
                    .with("fragmentation", frag)
                    .with("groups", groups as u64),
            );
        }
        report::emit(&report::envelope(
            "fig05_kernel_malloc",
            Json::obj().with("rows", Json::Arr(out)).with("warp_storm", Json::Arr(storm_out)),
        ));
        return;
    }

    println!("Fig. 5 — kernel malloc buffer groups and chunk units\n");
    print_row(
        "request",
        &["chunk unit", "base reserves", "LMI reserves"]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
    );
    for &(size, unit, base, lmi) in &rows {
        print_row(
            &format!("malloc({size})"),
            &[format!("{unit}"), format!("{base}"), format!("{lmi}")],
        );
    }

    println!("\nwarp-wide variable-size allocation (Fig. 3):");
    for &(policy, requested, reserved, frag, groups) in &storm {
        println!(
            "  {policy:?}: requested {requested} B, reserved {reserved} B \
             (+{:.0}% incl. headers), {groups} groups",
            frag * 100.0,
        );
    }
}
