//! Allocation auditing: a counting global allocator.
//!
//! The cycle loop's "zero allocations per cycle" claim (see DESIGN.md,
//! *Hot path & allocation discipline*) is enforced empirically: a binary
//! installs [`CountingAlloc`] as its `#[global_allocator]`, runs the same
//! seeded workload at two iteration counts, and asserts the total
//! allocation counts are **equal** — every allocation belongs to setup
//! (launch lowering, warp tables, pool warm-up), none to steady state.
//!
//! Counting is process-global and lock-free (one relaxed atomic per
//! alloc), cheap enough that `simbench` keeps it installed while timing
//! and reports `allocs_per_kcycle` next to `kips`.
//!
//! ```no_run
//! use lmi_bench::alloc_audit::CountingAlloc;
//!
//! #[global_allocator]
//! static ALLOC: CountingAlloc = CountingAlloc::new();
//!
//! let before = CountingAlloc::allocations();
//! // ... run the region under audit ...
//! let delta = CountingAlloc::allocations() - before;
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide count of heap allocations since program start.
///
/// Static (not per-instance) so `CountingAlloc::allocations()` works
/// without a reference to the installed allocator.
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Bytes requested across all allocations since program start.
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);

/// A [`System`]-backed global allocator that counts every allocation.
///
/// `realloc` counts as one allocation (it may move); `dealloc` is not
/// counted — the audit cares about allocator traffic, not live bytes.
pub struct CountingAlloc;

impl CountingAlloc {
    /// A new counting allocator (const, for `#[global_allocator]`).
    pub const fn new() -> CountingAlloc {
        CountingAlloc
    }

    /// Number of heap allocations made by the process so far.
    pub fn allocations() -> u64 {
        ALLOCATIONS.load(Ordering::Relaxed)
    }

    /// Total bytes requested by the process so far.
    pub fn allocated_bytes() -> u64 {
        ALLOCATED_BYTES.load(Ordering::Relaxed)
    }
}

impl Default for CountingAlloc {
    fn default() -> CountingAlloc {
        CountingAlloc::new()
    }
}

// SAFETY: delegates directly to `System`, which upholds the `GlobalAlloc`
// contract; the counters are side effects with no aliasing.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}
