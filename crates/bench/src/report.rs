//! Shared machine-readable reporting for the bench binaries.
//!
//! Every binary under `src/bin/` accepts `--json`: instead of (or in
//! addition to) the human tables, it prints one JSON document built with
//! `lmi-telemetry`'s hand-rolled encoder, so CI and plotting scripts can
//! consume the numbers without scraping text.

use lmi_telemetry::Json;

/// Command-line switches shared by all bench binaries.
#[derive(Debug, Clone, Default)]
pub struct ReportOpts {
    /// Emit a JSON document on stdout instead of the human tables.
    pub json: bool,
    /// Write a Chrome trace of the last simulation to this path.
    pub trace_path: Option<String>,
    /// Non-flag arguments, in order (e.g. a workload name).
    pub positional: Vec<String>,
}

impl ReportOpts {
    /// Parses `--json` and `--trace <path>` out of `std::env::args`;
    /// everything else lands in [`ReportOpts::positional`].
    pub fn from_env() -> Self {
        let mut opts = ReportOpts::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--json" => opts.json = true,
                "--trace" => opts.trace_path = args.next(),
                _ => opts.positional.push(arg),
            }
        }
        opts
    }

    /// Writes `trace` (a Chrome trace document) to `--trace <path>`, if
    /// given. Errors are reported on stderr, not fatal — a failed trace
    /// write should not sink the measurement run.
    pub fn write_trace(&self, trace: &Json) {
        if let Some(path) = &self.trace_path {
            if let Err(e) = std::fs::write(path, trace.to_pretty()) {
                eprintln!("warning: could not write trace to {path}: {e}");
            } else {
                eprintln!("trace written to {path} (load in https://ui.perfetto.dev)");
            }
        }
    }
}

/// Standard envelope: every binary's JSON output carries the experiment
/// name so multi-document pipelines can tell reports apart.
pub fn envelope(experiment: &str, body: Json) -> Json {
    Json::obj().with("experiment", experiment).with("schema_version", 1u64).with("report", body)
}

/// Prints the document compactly on stdout (one line, easy to pipe).
pub fn emit(doc: &Json) {
    println!("{}", doc.to_compact());
}

/// Short git revision of the working tree (`-dirty` suffixed when the
/// tree has local changes), falling back to `GITHUB_SHA` then "unknown".
/// Stamped into the committed benchmark baselines for provenance.
pub fn git_rev() -> String {
    let out = std::process::Command::new("git").args(["rev-parse", "--short", "HEAD"]).output();
    if let Ok(out) = out {
        if out.status.success() {
            let mut rev = String::from_utf8_lossy(&out.stdout).trim().to_string();
            let dirty = std::process::Command::new("git").args(["status", "--porcelain"]).output();
            if dirty.map(|d| !d.stdout.is_empty()).unwrap_or(false) {
                rev.push_str("-dirty");
            }
            return rev;
        }
    }
    match std::env::var("GITHUB_SHA") {
        Ok(sha) => sha.chars().take(12).collect(),
        Err(_) => "unknown".to_string(),
    }
}
