//! # lmi-bench — experiment harness
//!
//! Shared machinery for the figure/table regeneration binaries (one binary
//! per paper table/figure, see `src/bin/`) and the hand-rolled
//! micro-benchmarks (`benches/`). The per-experiment index lives in
//! `DESIGN.md`; measured-vs-paper numbers are recorded in `EXPERIMENTS.md`.

pub mod alloc_audit;
pub mod harness;
pub mod report;

use lmi_alloc::AlignmentPolicy;
use lmi_baselines::{instrument_baggy, instrument_lmi_dbi, instrument_memcheck, GpuShield};
use lmi_sim::{Gpu, GpuConfig, LmiMechanism, NullMechanism, SimStats};
use lmi_workloads::{prepare, PreparedWorkload, WorkloadSpec};

/// The protection mechanism a run is executed under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mechanism {
    /// Unprotected baseline.
    Baseline,
    /// LMI in hardware (OCU + EC).
    Lmi,
    /// GPUShield (region bounds table + RCache).
    GpuShield,
    /// Baggy Bounds software checks.
    BaggySoftware,
    /// LMI implemented via NVBit-style DBI.
    LmiDbi,
    /// Compute-Sanitizer memcheck via DBI.
    Memcheck,
}

impl Mechanism {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Mechanism::Baseline => "baseline",
            Mechanism::Lmi => "LMI",
            Mechanism::GpuShield => "GPUShield",
            Mechanism::BaggySoftware => "BaggyBounds",
            Mechanism::LmiDbi => "LMI-DBI",
            Mechanism::Memcheck => "memcheck",
        }
    }
}

fn prepared_for(spec: &WorkloadSpec, mechanism: Mechanism) -> PreparedWorkload {
    let policy = match mechanism {
        // LMI and Baggy need 2ⁿ-aligned, extent-carrying pointers.
        Mechanism::Lmi | Mechanism::BaggySoftware => AlignmentPolicy::PowerOfTwo,
        _ => AlignmentPolicy::CudaDefault,
    };
    let mut prepared = prepare(spec, policy);
    match mechanism {
        Mechanism::BaggySoftware => {
            prepared.launch.program = instrument_baggy(&prepared.launch.program);
        }
        Mechanism::LmiDbi => {
            prepared.launch.program = instrument_lmi_dbi(&prepared.launch.program);
        }
        Mechanism::Memcheck => {
            prepared.launch.program = instrument_memcheck(&prepared.launch.program);
        }
        _ => {}
    }
    prepared
}

/// Runs `spec` once under `mechanism` on the scaled-down (8-SM) Table IV
/// configuration; returns the statistics.
pub fn run_workload(spec: &WorkloadSpec, mechanism: Mechanism) -> SimStats {
    let prepared = prepared_for(spec, mechanism);
    let mut gpu = Gpu::with_heap_policy(
        GpuConfig::small(),
        match mechanism {
            Mechanism::Lmi | Mechanism::BaggySoftware => AlignmentPolicy::PowerOfTwo,
            _ => AlignmentPolicy::CudaDefault,
        },
    );
    let stats = match mechanism {
        Mechanism::Lmi => {
            let mut m = LmiMechanism::default_config();
            gpu.run(&prepared.launch, &mut m)
        }
        Mechanism::GpuShield => {
            let mut m = GpuShield::new();
            prepared.register_with(&mut ShieldAdapter(&mut m));
            gpu.run(&prepared.launch, &mut m)
        }
        _ => gpu.run(&prepared.launch, &mut NullMechanism),
    };
    assert!(
        stats.violations.is_empty(),
        "{} under {}: benign workload must not fault: {:?}",
        spec.name,
        mechanism.name(),
        stats.violations.first()
    );
    stats
}

struct ShieldAdapter<'a>(&'a mut GpuShield);

impl lmi_workloads::prepare::RegisterBuffers for ShieldAdapter<'_> {
    fn register_buffer(&mut self, base: u64, size: u64) {
        self.0.register_buffer(base, size);
    }
}

/// Launch phases averaged over for hardware-mechanism timing (marginalizes
/// scheduler-resonance noise; the mechanisms themselves are deterministic).
pub const PHASES: [u64; 4] = [0, 3, 7, 12];

fn run_at_phase(spec: &WorkloadSpec, mechanism: Mechanism, phase: u64) -> SimStats {
    let mut prepared = prepared_for(spec, mechanism);
    prepared.launch.phase = phase;
    let mut gpu = Gpu::with_heap_policy(
        GpuConfig::small(),
        match mechanism {
            Mechanism::Lmi | Mechanism::BaggySoftware => AlignmentPolicy::PowerOfTwo,
            _ => AlignmentPolicy::CudaDefault,
        },
    );
    match mechanism {
        Mechanism::Lmi => {
            let mut m = LmiMechanism::default_config();
            gpu.run(&prepared.launch, &mut m)
        }
        Mechanism::GpuShield => {
            let mut m = GpuShield::new();
            prepared.register_with(&mut ShieldAdapter(&mut m));
            gpu.run(&prepared.launch, &mut m)
        }
        _ => gpu.run(&prepared.launch, &mut NullMechanism),
    }
}

/// Simulated-cycle count of `spec` under `mechanism`: phase-averaged for
/// the hardware mechanisms, single-phase (with the §XI-B JIT factor) for
/// the DBI tools whose overheads dwarf phase noise.
pub fn cycles(spec: &WorkloadSpec, mechanism: Mechanism) -> f64 {
    match mechanism {
        Mechanism::LmiDbi | Mechanism::Memcheck => {
            run_workload(spec, mechanism).cycles as f64 * lmi_baselines::JIT_OVERHEAD
        }
        Mechanism::BaggySoftware => run_workload(spec, mechanism).cycles as f64,
        _ => {
            let sum: u64 = PHASES.iter().map(|&ph| run_at_phase(spec, mechanism, ph).cycles).sum();
            sum as f64 / PHASES.len() as f64
        }
    }
}

/// Execution time normalized to the unprotected baseline (the paper's
/// Fig. 12 / Fig. 13 metric).
pub fn normalized(spec: &WorkloadSpec, mechanism: Mechanism) -> f64 {
    let spec = match mechanism {
        // DBI runs execute 20-60x more instructions; measure them (and
        // their baseline) at reduced scale to keep runs tractable.
        Mechanism::LmiDbi | Mechanism::Memcheck => spec.scaled_down(4),
        _ => spec.clone(),
    };
    cycles(&spec, mechanism) / cycles(&spec, Mechanism::Baseline)
}

/// Geometric mean.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let (sum, n) = values.into_iter().fold((0.0f64, 0usize), |(s, n), v| (s + v.ln(), n + 1));
    if n == 0 {
        1.0
    } else {
        (sum / n as f64).exp()
    }
}

/// Arithmetic mean.
pub fn mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let (sum, n) = values.into_iter().fold((0.0f64, 0usize), |(s, n), v| (s + v, n + 1));
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Formats an aligned row: name column then fixed-width numeric columns.
pub fn format_row(name: &str, cols: &[String]) -> String {
    let mut row = format!("{name:<24}");
    for c in cols {
        row.push_str(&format!(" {c:>12}"));
    }
    row
}

/// Prints an aligned row: name column then fixed-width numeric columns.
pub fn print_row(name: &str, cols: &[String]) {
    println!("{}", format_row(name, cols));
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmi_workloads::all_workloads;

    fn spec(name: &str) -> WorkloadSpec {
        all_workloads().into_iter().find(|w| w.name == name).unwrap()
    }

    #[test]
    fn geomean_and_mean_basics() {
        assert!((geomean([1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((mean([1.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(std::iter::empty()), 1.0);
    }

    #[test]
    fn lmi_overhead_is_negligible_on_a_representative_workload() {
        let w = spec("hotspot");
        let overhead = normalized(&w, Mechanism::Lmi) - 1.0;
        assert!(overhead.abs() < 0.02, "LMI overhead {overhead}");
    }

    #[test]
    fn gpushield_suffers_on_needle_but_not_on_friendly_workloads() {
        let needle = normalized(&spec("needle"), Mechanism::GpuShield) - 1.0;
        let hotspot = normalized(&spec("hotspot"), Mechanism::GpuShield) - 1.0;
        assert!(needle > 0.10, "needle RCache thrash overhead {needle}");
        assert!(hotspot < needle / 2.0, "hotspot {hotspot} vs needle {needle}");
    }

    #[test]
    fn baggy_costs_much_more_than_lmi() {
        let w = spec("gaussian");
        let baggy = normalized(&w, Mechanism::BaggySoftware);
        let lmi = normalized(&w, Mechanism::Lmi);
        assert!(baggy > 1.3, "baggy on pointer-heavy kernel: {baggy}");
        assert!(lmi < 1.05, "lmi: {lmi}");
    }

    #[test]
    fn dbi_tools_cost_an_order_of_magnitude() {
        let w = spec("bfs");
        let lmi_dbi = normalized(&w, Mechanism::LmiDbi);
        let memcheck = normalized(&w, Mechanism::Memcheck);
        assert!(lmi_dbi > 3.0, "LMI-DBI {lmi_dbi}");
        assert!(memcheck > 2.0, "memcheck {memcheck}");
        assert!(lmi_dbi >= memcheck, "LMI-DBI instruments strictly more sites");
    }
}
