//! Benchmarks of the LMI allocators — the power-of-two policy's software
//! cost versus the baseline policy, and concurrent device-heap throughput
//! (thousands of threads allocating simultaneously is the scenario LMI is
//! designed around, paper §IV-B1).

use lmi_alloc::{AlignmentPolicy, DeviceHeap, GlobalAllocator};
use lmi_bench::harness::{bench_with_setup, black_box};
use lmi_core::PtrConfig;
use lmi_mem::layout;

fn main() {
    let cfg = PtrConfig::default();
    for (label, policy) in
        [("base", AlignmentPolicy::CudaDefault), ("lmi", AlignmentPolicy::PowerOfTwo)]
    {
        bench_with_setup(
            &format!("global_alloc_free/{label}"),
            || GlobalAllocator::new(cfg, policy, layout::GLOBAL_BASE, 1 << 30),
            |mut a| {
                for size in [100u64, 4096, 65552, 300] {
                    let p = a.alloc(black_box(size)).unwrap();
                    a.free(p).unwrap();
                }
            },
        );
    }

    bench_with_setup(
        "device_heap/warp_malloc_free",
        || DeviceHeap::new(cfg, AlignmentPolicy::PowerOfTwo, layout::HEAP_BASE, 8, 1 << 20),
        |heap| {
            let mut ptrs = Vec::with_capacity(32);
            for tid in 0..32usize {
                ptrs.push(heap.malloc(tid, (tid as u64 + 1) * 4).unwrap());
            }
            for p in ptrs {
                heap.free(p).unwrap();
            }
        },
    );
}
