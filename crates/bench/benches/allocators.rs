//! Criterion benchmarks of the LMI allocators — the power-of-two policy's
//! software cost versus the baseline policy, and concurrent device-heap
//! throughput (thousands of threads allocating simultaneously is the
//! scenario LMI is designed around, paper §IV-B1).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lmi_alloc::{AlignmentPolicy, DeviceHeap, GlobalAllocator};
use lmi_core::PtrConfig;
use lmi_mem::layout;

fn bench_global(c: &mut Criterion) {
    let cfg = PtrConfig::default();
    for (label, policy) in [
        ("base", AlignmentPolicy::CudaDefault),
        ("lmi", AlignmentPolicy::PowerOfTwo),
    ] {
        c.bench_function(&format!("global_alloc_free/{label}"), |b| {
            b.iter_batched(
                || GlobalAllocator::new(cfg, policy, layout::GLOBAL_BASE, 1 << 30),
                |mut a| {
                    for size in [100u64, 4096, 65552, 300] {
                        let p = a.alloc(black_box(size)).unwrap();
                        a.free(p).unwrap();
                    }
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
}

fn bench_device_heap(c: &mut Criterion) {
    let cfg = PtrConfig::default();
    c.bench_function("device_heap/warp_malloc_free", |b| {
        b.iter_batched(
            || DeviceHeap::new(cfg, AlignmentPolicy::PowerOfTwo, layout::HEAP_BASE, 8, 1 << 20),
            |heap| {
                let mut ptrs = Vec::with_capacity(32);
                for tid in 0..32usize {
                    ptrs.push(heap.malloc(tid, (tid as u64 + 1) * 4).unwrap());
                }
                for p in ptrs {
                    heap.free(p).unwrap();
                }
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_global, bench_device_heap);
criterion_main!(benches);
