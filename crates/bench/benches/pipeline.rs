//! Benchmarks of the simulation pipeline: microcode codec throughput,
//! cache-model access rate, and end-to-end simulator instruction
//! throughput on a small kernel.

use lmi_bench::harness::{bench, bench_throughput, bench_with_setup, black_box};
use lmi_isa::{ComputeCapability, HintBits, Instruction, MemRef, Microcode, ProgramBuilder, Reg};
use lmi_mem::{Cache, CacheConfig, SparseMemory};
use lmi_sim::{Gpu, GpuConfig, Launch, LmiMechanism};

fn program() -> lmi_isa::Program {
    // A small compute+memory kernel: measures simulated instructions per
    // wall-clock second, the figure that bounds full-benchmark runtimes.
    let mut b = ProgramBuilder::new("bench");
    b.push(Instruction::s2r(Reg(0), lmi_isa::op::SpecialReg::TidX));
    b.push(Instruction::ldc(Reg(4), lmi_isa::abi::LAUNCH_BANK, lmi_isa::abi::param_offset(0), 8));
    for i in 0..64 {
        b.push(
            Instruction::lea64(Reg(6), Reg(4), Reg(0), 2).with_hints(HintBits::check_operand(0)),
        );
        if i % 4 == 0 {
            b.push(Instruction::stg(MemRef::new(Reg(6), 0, 4), Reg(0)));
        } else {
            b.push(Instruction::ldg(Reg(8), MemRef::new(Reg(6), 0, 4)));
        }
        b.push(Instruction::ffma(Reg(9), Reg(9), Reg(10), Reg(8)));
    }
    b.push(Instruction::exit());
    b.build()
}

fn main() {
    let ins = Instruction::iadd64(Reg(4), Reg(4), 256).with_hints(HintBits::check_operand(0));
    bench("microcode/encode", || {
        black_box(Microcode::encode(black_box(&ins), ComputeCapability::Cc80).unwrap());
    });
    let word = Microcode::encode(&ins, ComputeCapability::Cc80).unwrap();
    bench("microcode/decode", || {
        black_box(black_box(word).decode(ComputeCapability::Cc80).unwrap());
    });

    // Functional-memory hot path: whole-word accesses with the last-page
    // cache, against the byte-at-a-time pattern the store used to take
    // (one page-table probe per byte — the second number is what every
    // 8-byte access cost before the word fast path).
    let mut mem = SparseMemory::new();
    for i in 0..4096u64 {
        mem.write(0x10_0000 + i * 8, i, 8);
    }
    bench("mem/read64_word_fast_path", || {
        let mut acc = 0u64;
        for i in 0..4096u64 {
            acc = acc.wrapping_add(mem.read(black_box(0x10_0000 + i * 8), 8));
        }
        black_box(acc);
    });
    bench("mem/read64_per_byte", || {
        let mut acc = 0u64;
        for i in 0..4096u64 {
            let addr = black_box(0x10_0000 + i * 8);
            let mut v = 0u64;
            for b in 0..8u64 {
                v |= (mem.read_u8(addr + b) as u64) << (8 * b);
            }
            acc = acc.wrapping_add(v);
        }
        black_box(acc);
    });

    bench_with_setup(
        "cache/l1_access",
        || Cache::new(CacheConfig::l1_default()),
        |mut cache| {
            for i in 0..256u64 {
                cache.access(black_box(i * 128));
            }
        },
    );

    let prog = program();
    let instrs = prog.len() as u64 * 32; // 32 warps
    let buf = lmi_core::DevicePtr::encode(
        lmi_mem::layout::GLOBAL_BASE,
        256 * 1024,
        &lmi_core::PtrConfig::default(),
    )
    .unwrap()
    .raw();
    bench_throughput("sim/warp_instructions", instrs, || {
        let launch = Launch::new(prog.clone()).grid(8).block(128).param(buf);
        let mut gpu = Gpu::new(GpuConfig::small());
        let mut mech = LmiMechanism::default_config();
        black_box(gpu.run(&launch, &mut mech));
    });
}
