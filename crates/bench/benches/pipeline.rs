//! Criterion benchmarks of the simulation pipeline: microcode codec
//! throughput, cache-model access rate, and end-to-end simulator
//! instruction throughput on a small kernel.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use lmi_isa::{ComputeCapability, HintBits, Instruction, MemRef, Microcode, ProgramBuilder, Reg};
use lmi_mem::{Cache, CacheConfig};
use lmi_sim::{Gpu, GpuConfig, Launch, LmiMechanism};

fn bench_microcode(c: &mut Criterion) {
    let ins = Instruction::iadd64(Reg(4), Reg(4), 256).with_hints(HintBits::check_operand(0));
    c.bench_function("microcode/encode", |b| {
        b.iter(|| Microcode::encode(black_box(&ins), ComputeCapability::Cc80))
    });
    let word = Microcode::encode(&ins, ComputeCapability::Cc80).unwrap();
    c.bench_function("microcode/decode", |b| {
        b.iter(|| black_box(word).decode(ComputeCapability::Cc80))
    });
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("cache/l1_access", |b| {
        b.iter_batched(
            || Cache::new(CacheConfig::l1_default()),
            |mut cache| {
                for i in 0..256u64 {
                    cache.access(black_box(i * 128));
                }
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_sim(c: &mut Criterion) {
    // A small compute+memory kernel: measures simulated instructions per
    // wall-clock second, the figure that bounds full-benchmark runtimes.
    fn program() -> lmi_isa::Program {
        let mut b = ProgramBuilder::new("bench");
        b.push(Instruction::s2r(Reg(0), lmi_isa::op::SpecialReg::TidX));
        b.push(Instruction::ldc(Reg(4), lmi_isa::abi::LAUNCH_BANK, lmi_isa::abi::param_offset(0), 8));
        for i in 0..64 {
            b.push(Instruction::lea64(Reg(6), Reg(4), Reg(0), 2).with_hints(HintBits::check_operand(0)));
            if i % 4 == 0 {
                b.push(Instruction::stg(MemRef::new(Reg(6), 0, 4), Reg(0)));
            } else {
                b.push(Instruction::ldg(Reg(8), MemRef::new(Reg(6), 0, 4)));
            }
            b.push(Instruction::ffma(Reg(9), Reg(9), Reg(10), Reg(8)));
        }
        b.push(Instruction::exit());
        b.build()
    }
    let prog = program();
    let instrs = prog.len() as u64 * 32; // 32 warps
    let buf = lmi_core::DevicePtr::encode(lmi_mem::layout::GLOBAL_BASE, 256 * 1024, &lmi_core::PtrConfig::default())
        .unwrap()
        .raw();
    let mut group = c.benchmark_group("sim");
    group.throughput(Throughput::Elements(instrs));
    group.bench_function("warp_instructions", |b| {
        b.iter(|| {
            let launch = Launch::new(prog.clone()).grid(8).block(128).param(buf);
            let mut gpu = Gpu::new(GpuConfig::small());
            let mut mech = LmiMechanism::default_config();
            gpu.run(&launch, &mut mech)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_microcode, bench_cache, bench_sim);
criterion_main!(benches);
