//! Benchmarks of the toolchain components: IR compilation with the LMI
//! pass, binary instrumentation, the security matrix, and the
//! hardware-model queries.

use lmi_baselines::{instrument_baggy, instrument_memcheck};
use lmi_bench::harness::{bench, black_box};
use lmi_compiler::ir::{CmpKind, FunctionBuilder, IBinOp, Region, Ty};
use lmi_compiler::{compile, CompileOptions};
use lmi_core::hw::{DatapathWidth, OcuNetlist};
use lmi_security::table::run_matrix;
use lmi_workloads::{all_workloads, generate};

fn saxpy_ir() -> lmi_compiler::Function {
    let mut b = FunctionBuilder::new("saxpy");
    let x = b.param(Ty::Ptr(Region::Global));
    let y = b.param(Ty::Ptr(Region::Global));
    let n = b.param(Ty::I32);
    let tid = b.tid();
    let zero = b.const_i32(0);
    let i = b.var(zero);
    let body = b.new_block();
    let exit = b.new_block();
    b.jump(body);
    b.switch_to(body);
    let iv = b.read_var(i);
    let idx = b.ibin(IBinOp::Add, tid, iv);
    let xe = b.gep(x, idx, 4);
    let xv = b.load_f32(xe);
    let ye = b.gep(y, idx, 4);
    let yv = b.load_f32(ye);
    let s = b.fadd(xv, yv);
    b.store(ye, s, 4);
    let one = b.const_i32(1);
    let next = b.ibin(IBinOp::Add, iv, one);
    b.write_var(i, next);
    let c = b.cmp(CmpKind::Lt, next, n);
    b.branch(c, body, exit);
    b.switch_to(exit);
    b.ret();
    b.build()
}

fn main() {
    let func = saxpy_ir();
    bench("compiler/lmi_build", || {
        black_box(compile(black_box(&func), CompileOptions::default()).unwrap());
    });
    bench("compiler/optimized_build", || {
        black_box(compile(black_box(&func), CompileOptions::optimized()).unwrap());
    });

    let spec = all_workloads().into_iter().find(|w| w.name == "bert").unwrap();
    let program = generate(&spec);
    bench("instrument/baggy", || {
        black_box(instrument_baggy(black_box(&program)));
    });
    bench("instrument/memcheck", || {
        black_box(instrument_memcheck(black_box(&program)));
    });

    bench("security/table3_matrix", || {
        black_box(run_matrix());
    });

    bench("hw/netlist_synthesis", || {
        let n = OcuNetlist::new(black_box(DatapathWidth::W32));
        black_box((n.area_ge(), n.critical_path_ps(), n.latency_cycles(3.0)));
    });
}
