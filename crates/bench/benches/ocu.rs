//! Microbenchmarks of LMI's core hardware-model operations: the OCU
//! check, the EC check, and the pointer codec. These are the hot paths of
//! every simulated instruction, so their software cost bounds the
//! simulator's throughput.

use lmi_bench::harness::{bench, black_box};
use lmi_core::{DevicePtr, ExtentChecker, Ocu, PtrConfig};

fn main() {
    let cfg = PtrConfig::default();
    let ocu = Ocu::new(cfg);
    let p = DevicePtr::encode(0x1_0000_0000, 4096, &cfg).unwrap().raw();

    bench("ocu/check_in_bounds", || {
        black_box(ocu.check_marked(black_box(p), black_box(p + 128)));
    });
    bench("ocu/check_escape", || {
        black_box(ocu.check_marked(black_box(p), black_box(p + 8192)));
    });

    let ec = ExtentChecker::new(cfg);
    bench("ec/check_valid", || {
        black_box(ec.check_access(black_box(p)).is_ok());
    });
    let dead = DevicePtr::from_raw(p).invalidated().raw();
    bench("ec/check_poisoned", || {
        black_box(ec.check_access(black_box(dead)).is_ok());
    });

    bench("ptr/encode", || {
        black_box(DevicePtr::encode(black_box(0x40_0000), black_box(1000), &cfg).unwrap());
    });
    let enc = DevicePtr::encode(0x40_0000, 1000, &cfg).unwrap();
    bench("ptr/base_recovery", || {
        black_box(black_box(enc).base(&cfg));
    });
    bench("ptr/um_bits", || {
        black_box(black_box(enc).um_bits(&cfg));
    });
}
