//! Criterion microbenchmarks of LMI's core hardware-model operations: the
//! OCU check, the EC check, and the pointer codec. These are the hot paths
//! of every simulated instruction, so their software cost bounds the
//! simulator's throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lmi_core::{DevicePtr, ExtentChecker, Ocu, PtrConfig};

fn bench_ocu(c: &mut Criterion) {
    let cfg = PtrConfig::default();
    let ocu = Ocu::new(cfg);
    let p = DevicePtr::encode(0x1_0000_0000, 4096, &cfg).unwrap().raw();

    c.bench_function("ocu/check_in_bounds", |b| {
        b.iter(|| ocu.check_marked(black_box(p), black_box(p + 128)))
    });
    c.bench_function("ocu/check_escape", |b| {
        b.iter(|| ocu.check_marked(black_box(p), black_box(p + 8192)))
    });

    let ec = ExtentChecker::new(cfg);
    c.bench_function("ec/check_valid", |b| b.iter(|| ec.check_access(black_box(p))));
    let dead = DevicePtr::from_raw(p).invalidated().raw();
    c.bench_function("ec/check_poisoned", |b| b.iter(|| ec.check_access(black_box(dead))));
}

fn bench_codec(c: &mut Criterion) {
    let cfg = PtrConfig::default();
    c.bench_function("ptr/encode", |b| {
        b.iter(|| DevicePtr::encode(black_box(0x40_0000), black_box(1000), &cfg))
    });
    let p = DevicePtr::encode(0x40_0000, 1000, &cfg).unwrap();
    c.bench_function("ptr/base_recovery", |b| b.iter(|| black_box(p).base(&cfg)));
    c.bench_function("ptr/um_bits", |b| b.iter(|| black_box(p).um_bits(&cfg)));
}

criterion_group!(benches, bench_ocu, bench_codec);
criterion_main!(benches);
