//! Single-defect mutation: takes a safe recipe and injects exactly one
//! classified memory-safety defect.
//!
//! Spatial defects are baked into the recipe itself (one op's offset is
//! pushed outside the envelope); temporal and cast defects are structural
//! and consumed by [`crate::recipe::build`].

use lmi_telemetry::SplitMix64;

use crate::recipe::{Loc, Recipe};

/// Element delta past the end used by far-spatial mutants: ~800 bytes past
/// the buffer, beyond any canary guard but (for heap/local) still inside
/// the coarse single-region checks that miss it.
pub const FAR_DELTA: u32 = 199;

/// The injected defect taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DefectClass {
    /// Out-of-bounds access starting at the first element past the
    /// *protection granule* — the buffer's size rounded up to LMI's
    /// minimum 2ⁿ extent (K = 256 B). Overflows inside the rounding
    /// padding are the paper's documented intra-object blind spot (Table
    /// III's all-zero row) and are deliberately not generated.
    SpatialNear,
    /// Out-of-bounds access [`FAR_DELTA`] elements past the buffer.
    SpatialFar,
    /// Dereference of a heap pointer after `free` (§VIII: the LMI pass
    /// nullifies the extent at the free, so the dangling access faults).
    Uaf,
    /// Second `free` of the same heap allocation (§IX-B: validated by the
    /// device-runtime allocator under every mechanism).
    DoubleFree,
    /// A forbidden `inttoptr` cast — rejected at compile time under LMI's
    /// correct-by-construction rule (§XII-B), not a runtime fault.
    IntToPtrEscape,
}

/// Every class, in a stable order (the fuzz matrix iterates this).
pub const ALL_CLASSES: [DefectClass; 5] = [
    DefectClass::SpatialNear,
    DefectClass::SpatialFar,
    DefectClass::Uaf,
    DefectClass::DoubleFree,
    DefectClass::IntToPtrEscape,
];

impl DefectClass {
    /// Stable label (CLI flags, corpus JSON, reports).
    pub fn label(self) -> &'static str {
        match self {
            DefectClass::SpatialNear => "spatial-near",
            DefectClass::SpatialFar => "spatial-far",
            DefectClass::Uaf => "uaf",
            DefectClass::DoubleFree => "double-free",
            DefectClass::IntToPtrEscape => "inttoptr-escape",
        }
    }

    /// Parses a [`DefectClass::label`].
    pub fn parse(s: &str) -> Option<DefectClass> {
        ALL_CLASSES.iter().copied().find(|c| c.label() == s)
    }

    /// `true` for the two spatial classes.
    pub fn is_spatial(self) -> bool {
        matches!(self, DefectClass::SpatialNear | DefectClass::SpatialFar)
    }
}

/// One injected defect: a class plus the recipe op it targets (the op
/// index is meaningless for `DoubleFree` and `IntToPtrEscape`, which are
/// structural).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Defect {
    /// The defect class.
    pub class: DefectClass,
    /// Index into `recipe.ops` of the mutated/target op.
    pub op: usize,
}

/// Mutates `recipe` to carry exactly one `class` defect; returns the
/// mutated recipe and its [`Defect`] descriptor.
///
/// The mutation keeps the rest of the recipe intact where it can; temporal
/// classes force a straight-line, non-divergent shape (so the injected
/// `free` executes exactly once before the dangling access) and force a
/// heap buffer into recipes that had none.
pub fn mutate(recipe: &Recipe, class: DefectClass, rng: &mut SplitMix64) -> (Recipe, Defect) {
    let mut r = recipe.clone();
    match class {
        DefectClass::SpatialNear | DefectClass::SpatialFar => {
            let target = rng.below(r.ops.len() as u64) as usize;
            let op = &mut r.ops[target];
            let elems = match op.loc {
                Loc::Global(i) => r.globals[i as usize].elems,
                Loc::Shared => r.shared_elems,
                Loc::Local => r.local_elems,
                Loc::Heap => r.heap_elems,
            };
            // The lowest accessed element sits exactly one granule-rounded
            // buffer past the base for every executing thread, so detection
            // cannot depend on which divergent arm runs, and small heap
            // buffers (< 256 B) don't degenerate into padding accesses the
            // mechanisms legitimately allow.
            let granule_elems = (lmi_core::PtrConfig::default().min_align() / 4) as u32;
            let past_end = elems.max(granule_elems);
            op.off =
                if class == DefectClass::SpatialNear { past_end } else { past_end + FAR_DELTA };
            (r, Defect { class, op: target })
        }
        DefectClass::Uaf => {
            if r.heap_elems == 0 {
                r.heap_elems = 16;
            }
            r.outer_trips = 0;
            r.inner_trips = 0;
            r.divergent = false;
            let target = match r.ops.iter().position(|op| op.loc == Loc::Heap) {
                Some(i) => i,
                None => {
                    // Retarget the last op at the heap buffer.
                    let i = r.ops.len() - 1;
                    let op = &mut r.ops[i];
                    op.loc = Loc::Heap;
                    op.off = 0;
                    op.wide = false;
                    i
                }
            };
            (r, Defect { class, op: target })
        }
        DefectClass::DoubleFree => {
            if r.heap_elems == 0 {
                r.heap_elems = 16;
            }
            (r, Defect { class, op: 0 })
        }
        DefectClass::IntToPtrEscape => (r, Defect { class, op: 0 }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recipe::{build, generate};

    #[test]
    fn labels_round_trip() {
        for c in ALL_CLASSES {
            assert_eq!(DefectClass::parse(c.label()), Some(c));
        }
        assert_eq!(DefectClass::parse("nope"), None);
    }

    #[test]
    fn spatial_mutants_escape_the_envelope() {
        let mut rng = SplitMix64::new(7);
        for seed in 0..50 {
            let safe = generate(seed);
            for class in [DefectClass::SpatialNear, DefectClass::SpatialFar] {
                let (mutant, defect) = mutate(&safe, class, &mut rng);
                let op = &mutant.ops[defect.op];
                assert!(op.off >= mutant.elems_of(op.loc), "offset must be out of bounds");
                // The mutant still builds (the envelope is a semantic
                // property, not a builder precondition).
                build(&mutant, Some(&defect));
            }
        }
    }

    #[test]
    fn temporal_mutants_always_have_a_heap() {
        let mut rng = SplitMix64::new(8);
        for seed in 0..50 {
            let safe = generate(seed);
            for class in [DefectClass::Uaf, DefectClass::DoubleFree] {
                let (mutant, defect) = mutate(&safe, class, &mut rng);
                assert!(mutant.heap_elems > 0);
                if class == DefectClass::Uaf {
                    assert_eq!(mutant.ops[defect.op].loc, Loc::Heap);
                    assert_eq!(mutant.outer_trips, 0);
                }
                build(&mutant, Some(&defect));
            }
        }
    }
}
