//! Automatic case reduction: delta-debugging over the recipe, then over
//! the built function's IR instruction stream.
//!
//! The shrinker answers one question over and over — *does the reduced
//! case still fail?* — where "fail" means "LMI still detects the injected
//! defect" (or, for the `inttoptr` class, "the compiler still rejects the
//! kernel"). Every probe is a deterministic single-point run, so the
//! shrink trajectory is bit-identical across engine configurations.

use lmi_compiler::ir::{Function, InstKind, Terminator, ValueId};
use lmi_compiler::{compile, CompileError, CompileOptions};

use crate::defect::{Defect, DefectClass};
use crate::oracle::{lmi_run, EnginePoint};
use crate::recipe::{build, BufSpec, Loc, Recipe};

/// A minimized failing case.
#[derive(Debug, Clone)]
pub struct Reproducer {
    /// The recipe-level minimum (rebuilds the phase-1 kernel).
    pub recipe: Recipe,
    /// The defect, with its op index remapped to the shrunk op list.
    pub defect: Defect,
    /// The IR-level minimum after phase 2 (op removal below what the
    /// recipe can express).
    pub function: Function,
    /// Instruction count of [`Reproducer::function`].
    pub op_count: usize,
}

/// `true` when the case still fails: the compiler rejects the cast class,
/// or an LMI-only run at `point` records a violation.
fn still_fails(
    func: &Function,
    globals: &[BufSpec],
    class: DefectClass,
    point: EnginePoint,
) -> bool {
    if class == DefectClass::IntToPtrEscape {
        return matches!(
            compile(func, CompileOptions::default()),
            Err(CompileError::IntToPtrForbidden { .. })
        );
    }
    match lmi_run(func, globals, point) {
        Ok(stats) => stats.violated(),
        Err(_) => false,
    }
}

fn recipe_fails(recipe: &Recipe, defect: &Defect, point: EnginePoint) -> bool {
    let func = build(recipe, Some(defect));
    still_fails(&func, &recipe.globals, defect.class, point)
}

/// Removes `ops[lo..hi]` from the recipe, remapping the defect's target op
/// index. Returns `None` when the target itself would be removed (for
/// classes where the target matters).
fn without_ops(recipe: &Recipe, defect: &Defect, lo: usize, hi: usize) -> Option<(Recipe, Defect)> {
    let targeted = matches!(
        defect.class,
        DefectClass::SpatialNear | DefectClass::SpatialFar | DefectClass::Uaf
    );
    if targeted && (lo..hi).contains(&defect.op) {
        return None;
    }
    let mut r = recipe.clone();
    r.ops.drain(lo..hi);
    let mut d = *defect;
    if targeted {
        if d.op >= hi {
            d.op -= hi - lo;
        }
    } else {
        d.op = 0;
    }
    Some((r, d))
}

/// Phase 1a: chunked delta-debugging over the op list.
fn ddmin_ops(recipe: &mut Recipe, defect: &mut Defect, point: EnginePoint) {
    let mut chunk = recipe.ops.len().div_ceil(2).max(1);
    loop {
        let mut removed_any = false;
        let mut lo = 0;
        while lo < recipe.ops.len() {
            let hi = (lo + chunk).min(recipe.ops.len());
            if let Some((r, d)) = without_ops(recipe, defect, lo, hi) {
                if recipe_fails(&r, &d, point) {
                    *recipe = r;
                    *defect = d;
                    removed_any = true;
                    continue; // same lo, next chunk shifted into place
                }
            }
            lo = hi;
        }
        if removed_any {
            continue; // retry at the same granularity
        }
        if chunk == 1 {
            break;
        }
        chunk = (chunk / 2).max(1);
    }
}

/// Phase 1b: structural simplifications — kill loops and divergence, drop
/// buffers no remaining op uses.
fn simplify_structure(recipe: &mut Recipe, defect: &mut Defect, point: EnginePoint) {
    let attempt = |recipe: &mut Recipe, defect: &Defect, f: &dyn Fn(&mut Recipe)| {
        let mut r = recipe.clone();
        f(&mut r);
        if r != *recipe && recipe_fails(&r, defect, point) {
            *recipe = r;
        }
    };
    attempt(recipe, defect, &|r| {
        r.outer_trips = 0;
        r.inner_trips = 0;
    });
    attempt(recipe, defect, &|r| r.inner_trips = 0);
    attempt(recipe, defect, &|r| r.divergent = false);
    if !recipe.ops.iter().any(|op| op.loc == Loc::Shared) {
        attempt(recipe, defect, &|r| r.shared_elems = 0);
    }
    if !recipe.ops.iter().any(|op| op.loc == Loc::Local) {
        attempt(recipe, defect, &|r| r.local_elems = 0);
    }
    let temporal = matches!(defect.class, DefectClass::Uaf | DefectClass::DoubleFree);
    if !temporal && !recipe.ops.iter().any(|op| op.loc == Loc::Heap) {
        attempt(recipe, defect, &|r| r.heap_elems = 0);
    }
    // Globals can only be truncated from the top (ops index them by
    // position, and buffer 0 receives the published accumulator).
    let max_used = recipe
        .ops
        .iter()
        .filter_map(|op| match op.loc {
            Loc::Global(i) => Some(i as usize),
            _ => None,
        })
        .max()
        .unwrap_or(0);
    if max_used + 1 < recipe.globals.len() {
        attempt(recipe, defect, &|r| r.globals.truncate(max_used + 1));
    }
}

/// Operand values an instruction reads.
fn operands(kind: &InstKind) -> Vec<ValueId> {
    match *kind {
        InstKind::Malloc { size } => vec![size],
        InstKind::Free { ptr } => vec![ptr],
        InstKind::Gep { ptr, index, .. } => vec![ptr, index],
        InstKind::IBin { a, b, .. } | InstKind::FBin { a, b, .. } | InstKind::Cmp { a, b, .. } => {
            vec![a, b]
        }
        InstKind::Load { ptr, .. } => vec![ptr],
        InstKind::Store { ptr, value, .. } => vec![ptr, value],
        InstKind::PtrToInt { ptr } => vec![ptr],
        InstKind::IntToPtr { value, .. } => vec![value],
        InstKind::WriteVar { value, .. } => vec![value],
        InstKind::Invalidate { ptr } => vec![ptr],
        _ => Vec::new(),
    }
}

/// `true` when the listed instruction at `blocks[b].insts[i]` can be
/// dropped from the schedule: nothing still listed consumes its value, no
/// terminator branches on it, and (for variable writes) no surviving read
/// observes the variable.
fn removable(func: &Function, b: usize, i: usize) -> bool {
    let id = func.blocks[b].insts[i];
    for (bb, ii, other) in func.iter_insts() {
        if (bb, ii) == (b, i) {
            continue;
        }
        if operands(&func.insts[other].kind).contains(&id) {
            return false;
        }
    }
    for block in &func.blocks {
        if let Terminator::Branch { cond, .. } = block.term {
            if cond == id {
                return false;
            }
        }
    }
    if let InstKind::WriteVar { var, .. } = func.insts[id].kind {
        let read_elsewhere = func.iter_insts().any(|(bb, ii, other)| {
            (bb, ii) != (b, i) && func.insts[other].kind == InstKind::ReadVar(var)
        });
        if read_elsewhere {
            return false;
        }
    }
    true
}

/// Phase 2: IR-level delta — greedily unschedule instructions (dead values
/// and droppable effects) while the case keeps failing.
fn ddmin_ir(func: &mut Function, globals: &[BufSpec], class: DefectClass, point: EnginePoint) {
    loop {
        let mut removed_any = false;
        for b in 0..func.blocks.len() {
            let mut i = func.blocks[b].insts.len();
            while i > 0 {
                i -= 1;
                if !removable(func, b, i) {
                    continue;
                }
                let id = func.blocks[b].insts.remove(i);
                if still_fails(func, globals, class, point) {
                    removed_any = true;
                } else {
                    func.blocks[b].insts.insert(i, id);
                }
            }
        }
        if !removed_any {
            return;
        }
    }
}

/// Shrinks a failing `(recipe, defect)` case to a minimal reproducer.
///
/// # Panics
///
/// Panics if the input case does not fail to begin with — the shrinker's
/// contract is "preserve the failure", which an already-passing case makes
/// meaningless.
pub fn shrink(recipe: &Recipe, defect: &Defect, point: EnginePoint) -> Reproducer {
    assert!(
        recipe_fails(recipe, defect, point),
        "shrink() requires a failing case (class {}, seed {})",
        defect.class.label(),
        recipe.seed
    );
    let mut r = recipe.clone();
    let mut d = *defect;
    ddmin_ops(&mut r, &mut d, point);
    simplify_structure(&mut r, &mut d, point);
    ddmin_ops(&mut r, &mut d, point); // structure removal may free more ops

    let mut func = build(&r, Some(&d));
    ddmin_ir(&mut func, &r.globals, d.class, point);
    debug_assert!(still_fails(&func, &r.globals, d.class, point));
    let op_count = func.op_count();
    Reproducer { recipe: r, defect: d, function: func, op_count }
}

fn loc_literal(loc: Loc) -> String {
    match loc {
        Loc::Global(i) => format!("Loc::Global({i})"),
        Loc::Shared => "Loc::Shared".into(),
        Loc::Local => "Loc::Local".into(),
        Loc::Heap => "Loc::Heap".into(),
    }
}

impl Reproducer {
    /// Renders the minimized case as a ready-to-paste regression test: the
    /// phase-1 recipe as a literal, the seed in the test name, and the
    /// class-appropriate assertion.
    pub fn to_test_source(&self) -> String {
        let r = &self.recipe;
        let globals = r
            .globals
            .iter()
            .map(|b| format!("BufSpec {{ elems: {} }}", b.elems))
            .collect::<Vec<_>>()
            .join(", ");
        let ops = r
            .ops
            .iter()
            .map(|op| {
                format!(
                    "OpSpec {{ loc: {}, off: {}, wide: {}, store: {}, arm: {} }}",
                    loc_literal(op.loc),
                    op.off,
                    op.wide,
                    op.store,
                    op.arm
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        let assertion = if self.defect.class == DefectClass::IntToPtrEscape {
            "    let func = build(&recipe, Some(&defect));\n\
             \x20   assert!(\n\
             \x20       matches!(\n\
             \x20           lmi::compiler::compile(&func, lmi::compiler::CompileOptions::default()),\n\
             \x20           Err(lmi::compiler::CompileError::IntToPtrForbidden { .. })\n\
             \x20       ),\n\
             \x20       \"the compiler must reject the forged pointer\"\n\
             \x20   );"
                .to_string()
        } else {
            format!(
                "    let func = build(&recipe, Some(&defect));\n\
                 \x20   let point = EnginePoint {{ sim_threads: 1, mem_banks: 1 }};\n\
                 \x20   let stats = lmi_run(&func, &recipe.globals, point).expect(\"compiles\");\n\
                 \x20   assert!(stats.violated(), \"lmi must detect the {} defect\");",
                self.defect.class.label()
            )
        };
        format!(
            "// Auto-shrunk reproducer: seed {seed}, class {class}, {ops_n} recipe op(s),\n\
             // {ir_n} IR ops after instruction-level reduction.\n\
             #[test]\n\
             fn shrunk_{class_ident}_seed_{seed}() {{\n\
             \x20   use lmi::conformance::*;\n\
             \x20   let recipe = Recipe {{\n\
             \x20       seed: {seed},\n\
             \x20       globals: vec![{globals}],\n\
             \x20       shared_elems: {shared},\n\
             \x20       local_elems: {local},\n\
             \x20       heap_elems: {heap},\n\
             \x20       outer_trips: {outer},\n\
             \x20       inner_trips: {inner},\n\
             \x20       divergent: {divergent},\n\
             \x20       ops: vec![{ops}],\n\
             \x20   }};\n\
             \x20   let defect = Defect {{ class: DefectClass::{class_variant:?}, op: {op} }};\n\
             {assertion}\n\
             }}\n",
            seed = r.seed,
            class = self.defect.class.label(),
            class_ident = self.defect.class.label().replace('-', "_"),
            class_variant = self.defect.class,
            ops_n = r.ops.len(),
            ir_n = self.op_count,
            globals = globals,
            shared = r.shared_elems,
            local = r.local_elems,
            heap = r.heap_elems,
            outer = r.outer_trips,
            inner = r.inner_trips,
            divergent = r.divergent,
            op = self.defect.op,
            ops = ops,
            assertion = assertion,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defect::{mutate, ALL_CLASSES};
    use crate::recipe::generate;
    use lmi_telemetry::SplitMix64;

    const P: EnginePoint = EnginePoint { sim_threads: 1, mem_banks: 1 };

    #[test]
    fn shrunk_cases_still_fail_and_get_small() {
        let mut rng = SplitMix64::new(99);
        for seed in [3u64, 17, 54] {
            let safe = generate(seed);
            for class in ALL_CLASSES {
                let (mutant, defect) = mutate(&safe, class, &mut rng);
                let rep = shrink(&mutant, &defect, P);
                assert!(
                    still_fails(&rep.function, &rep.recipe.globals, class, P),
                    "seed {seed} class {} lost its failure in shrinking",
                    class.label()
                );
                assert!(
                    rep.op_count <= 12,
                    "seed {seed} class {} shrank to {} IR ops (> 12)",
                    class.label(),
                    rep.op_count
                );
                assert!(rep.recipe.ops.len() <= mutant.ops.len());
            }
        }
    }

    #[test]
    fn reproducer_source_mentions_seed_and_class() {
        let mut rng = SplitMix64::new(5);
        let (mutant, defect) =
            mutate(&generate(7), crate::defect::DefectClass::SpatialNear, &mut rng);
        let rep = shrink(&mutant, &defect, P);
        let src = rep.to_test_source();
        assert!(src.contains("seed 7"));
        assert!(src.contains("spatial-near"));
        assert!(src.contains("#[test]"));
        assert!(src.contains("Recipe {"));
    }
}
