//! Corpus serialization: recipes (and their injected defects) round-trip
//! through the workspace's dependency-free JSON value, so the fuzz binary
//! can persist failing cases and replay them in later runs.

use lmi_telemetry::Json;

use crate::defect::{Defect, DefectClass};
use crate::recipe::{BufSpec, Loc, OpSpec, Recipe};

/// Corpus entry schema tag; bump on incompatible format changes.
pub const CORPUS_SCHEMA: &str = "lmi-conformance-corpus-v1";

fn loc_to_json(loc: Loc) -> Json {
    match loc {
        Loc::Global(i) => Json::from(format!("g{i}")),
        Loc::Shared => Json::from("shared"),
        Loc::Local => Json::from("local"),
        Loc::Heap => Json::from("heap"),
    }
}

fn loc_from_json(v: &Json) -> Option<Loc> {
    match v.as_str()? {
        "shared" => Some(Loc::Shared),
        "local" => Some(Loc::Local),
        "heap" => Some(Loc::Heap),
        s => s.strip_prefix('g')?.parse().ok().map(Loc::Global),
    }
}

/// Encodes one corpus entry: the recipe, the defect (absent for safe
/// cases), and an optional failure message from the oracle.
pub fn case_to_json(recipe: &Recipe, defect: Option<&Defect>, failure: Option<&str>) -> Json {
    let ops: Vec<Json> = recipe
        .ops
        .iter()
        .map(|op| {
            Json::obj()
                .with("loc", loc_to_json(op.loc))
                .with("off", op.off)
                .with("wide", op.wide)
                .with("store", op.store)
                .with("arm", u64::from(op.arm))
        })
        .collect();
    let recipe_json = Json::obj()
        .with("globals", recipe.globals.iter().map(|b| b.elems).collect::<Vec<_>>())
        .with("shared_elems", recipe.shared_elems)
        .with("local_elems", recipe.local_elems)
        .with("heap_elems", recipe.heap_elems)
        .with("outer_trips", u64::from(recipe.outer_trips))
        .with("inner_trips", u64::from(recipe.inner_trips))
        .with("divergent", recipe.divergent)
        .with("ops", Json::Arr(ops));
    let mut entry = Json::obj()
        .with("schema", CORPUS_SCHEMA)
        .with("seed", recipe.seed)
        .with("recipe", recipe_json);
    match defect {
        Some(d) => {
            entry.set("class", d.class.label());
            entry.set("op", d.op);
        }
        None => {
            entry.set("class", Json::Null);
        }
    }
    if let Some(msg) = failure {
        entry.set("failure", msg);
    }
    entry
}

/// Decodes a corpus entry; `None` on schema mismatch or malformed fields.
pub fn case_from_json(entry: &Json) -> Option<(Recipe, Option<Defect>)> {
    if entry.get("schema")?.as_str()? != CORPUS_SCHEMA {
        return None;
    }
    let r = entry.get("recipe")?;
    let globals = r
        .get("globals")?
        .items()
        .iter()
        .map(|g| g.as_u64().map(|e| BufSpec { elems: e as u32 }))
        .collect::<Option<Vec<_>>>()?;
    let ops = r
        .get("ops")?
        .items()
        .iter()
        .map(|op| {
            Some(OpSpec {
                loc: loc_from_json(op.get("loc")?)?,
                off: op.get("off")?.as_u64()? as u32,
                wide: matches!(op.get("wide")?, Json::Bool(true)),
                store: matches!(op.get("store")?, Json::Bool(true)),
                arm: op.get("arm")?.as_u64()? as u8,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    let recipe = Recipe {
        seed: entry.get("seed")?.as_u64()?,
        globals,
        shared_elems: r.get("shared_elems")?.as_u64()? as u32,
        local_elems: r.get("local_elems")?.as_u64()? as u32,
        heap_elems: r.get("heap_elems")?.as_u64()? as u32,
        outer_trips: r.get("outer_trips")?.as_u64()? as u8,
        inner_trips: r.get("inner_trips")?.as_u64()? as u8,
        divergent: matches!(r.get("divergent")?, Json::Bool(true)),
        ops,
    };
    let defect = match entry.get("class") {
        None | Some(Json::Null) => None,
        Some(c) => Some(Defect {
            class: DefectClass::parse(c.as_str()?)?,
            op: entry.get("op")?.as_u64()? as usize,
        }),
    };
    Some((recipe, defect))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defect::{mutate, ALL_CLASSES};
    use crate::recipe::generate;
    use lmi_telemetry::json::parse;
    use lmi_telemetry::SplitMix64;

    #[test]
    fn safe_cases_round_trip() {
        for seed in 0..50 {
            let recipe = generate(seed);
            let text = case_to_json(&recipe, None, None).to_compact();
            let back = parse(&text).expect("corpus entries are valid JSON");
            let (decoded, defect) = case_from_json(&back).expect("round trip");
            assert_eq!(decoded, recipe);
            assert_eq!(defect, None);
        }
    }

    #[test]
    fn defective_cases_round_trip_with_failure_message() {
        let mut rng = SplitMix64::new(11);
        for seed in 0..20 {
            let safe = generate(seed);
            for class in ALL_CLASSES {
                let (mutant, defect) = mutate(&safe, class, &mut rng);
                let text = case_to_json(&mutant, Some(&defect), Some("boom")).to_compact();
                let back = parse(&text).expect("valid JSON");
                assert_eq!(back.get("failure").and_then(|f| f.as_str()), Some("boom"));
                let (decoded, d) = case_from_json(&back).expect("round trip");
                assert_eq!(decoded, mutant);
                assert_eq!(d, Some(defect));
            }
        }
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let recipe = generate(1);
        let entry = case_to_json(&recipe, None, None).with("schema", "something-else");
        assert!(case_from_json(&entry).is_none());
    }
}
