//! The differential oracle matrix.
//!
//! Each case (a recipe, optionally carrying one injected defect) is run
//! across protection mechanisms × engine configurations
//! (`sim_threads` × `mem_banks`) and checked against three invariants:
//!
//! * **Transparency** — on safe cases no mechanism fires and every
//!   mechanism produces bit-identical global-buffer contents.
//! * **Detection by class** — each mechanism detects exactly the defect
//!   classes its design covers (LMI all of them; the baselines their
//!   documented subsets).
//! * **Engine determinism** — per mechanism, statistics and post-run
//!   memory are bit-identical at every engine configuration.

use lmi_alloc::AlignmentPolicy;
use lmi_baselines::{instrument_baggy, CanaryAllocator, GpuShield};
use lmi_compiler::ir::Function;
use lmi_compiler::{compile, CompileError, CompileOptions};
use lmi_core::{DevicePtr, PtrConfig, TemporalKind, Violation};
use lmi_mem::layout;
use lmi_sim::{Gpu, GpuConfig, Launch, LmiMechanism, MemorySnapshot, NullMechanism, SimStats};
use lmi_telemetry::SplitMix64;

use crate::defect::{Defect, DefectClass};
use crate::recipe::{build, BufSpec, Loc, Recipe, THREADS};

/// Spacing between global buffers: leaves canary headroom and a large
/// unregistered gap that near- and far-OOB accesses land in.
const BUFFER_STRIDE: u64 = 0x10_0000;

/// Heap window captured for the engine-determinism comparison (covers
/// every allocation 32 threads can make in one case).
const HEAP_WINDOW: u64 = 0x1_0000;

/// The mechanisms the oracle can differentially compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MechanismKind {
    /// Unprotected baseline binary.
    Null,
    /// LMI build under the OCU/EC mechanism.
    Lmi,
    /// Baseline binary under GPUShield's region bounds table.
    GpuShield,
    /// LMI build rewritten with Baggy Bounds software checks (semantically
    /// neutral sequences — it detects nothing at runtime here, it is the
    /// perf baseline; the oracle asserts it stays transparent).
    Baggy,
    /// Baseline binary with canary-guarded global buffers scanned at the
    /// kernel-end synchronization point.
    Canary,
}

/// Every mechanism, in the matrix' stable order.
pub const ALL_MECHANISMS: [MechanismKind; 5] = [
    MechanismKind::Null,
    MechanismKind::Lmi,
    MechanismKind::GpuShield,
    MechanismKind::Baggy,
    MechanismKind::Canary,
];

impl MechanismKind {
    /// Stable label (reports, corpus JSON).
    pub fn label(self) -> &'static str {
        match self {
            MechanismKind::Null => "null",
            MechanismKind::Lmi => "lmi",
            MechanismKind::GpuShield => "gpushield",
            MechanismKind::Baggy => "baggy",
            MechanismKind::Canary => "canary",
        }
    }
}

/// One engine configuration of the determinism matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnginePoint {
    /// Worker threads for the parallel engine.
    pub sim_threads: usize,
    /// Address-interleaved memory banks.
    pub mem_banks: usize,
}

/// The issue-mandated engine matrix: `sim_threads` {1,2} × `mem_banks`
/// {1,4}.
pub fn full_points() -> Vec<EnginePoint> {
    vec![
        EnginePoint { sim_threads: 1, mem_banks: 1 },
        EnginePoint { sim_threads: 2, mem_banks: 1 },
        EnginePoint { sim_threads: 1, mem_banks: 4 },
        EnginePoint { sim_threads: 2, mem_banks: 4 },
    ]
}

/// Oracle configuration: which mechanisms and engine points to run, and an
/// optional *masked* defect class (a test hook: LMI detections of the
/// masked class are treated as unexpected, manufacturing the failing cases
/// the shrinker minimizes).
#[derive(Debug, Clone)]
pub struct OracleConfig {
    /// Mechanism columns of the matrix.
    pub mechanisms: Vec<MechanismKind>,
    /// Engine points (the first is the determinism reference).
    pub points: Vec<EnginePoint>,
    /// Treat LMI detections of this class as failures (shrinker fodder).
    pub masked: Option<DefectClass>,
}

impl OracleConfig {
    /// The full mechanism × engine matrix.
    pub fn full() -> OracleConfig {
        OracleConfig { mechanisms: ALL_MECHANISMS.to_vec(), points: full_points(), masked: None }
    }

    /// A budget-friendly matrix for debug-mode tests: all mechanisms, two
    /// engine points spanning both axes.
    pub fn quick() -> OracleConfig {
        OracleConfig {
            mechanisms: ALL_MECHANISMS.to_vec(),
            points: vec![
                EnginePoint { sim_threads: 1, mem_banks: 1 },
                EnginePoint { sim_threads: 2, mem_banks: 4 },
            ],
            masked: None,
        }
    }
}

/// What the oracle expects of one mechanism on one case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expect {
    /// The mechanism must fire.
    Detect,
    /// The mechanism must stay silent.
    Miss,
}

/// The documented coverage matrix: which mechanism must catch which defect
/// (paper Table III distilled to the generator's classes).
pub fn expectation(kind: MechanismKind, defect: Option<&Defect>, recipe: &Recipe) -> Expect {
    let Some(d) = defect else {
        // Safe-by-construction case: any detection is a false positive.
        return Expect::Miss;
    };
    match d.class {
        // The device-runtime allocator validates frees under every
        // mechanism (§IX-B).
        DefectClass::DoubleFree => Expect::Detect,
        // Only LMI's extent nullification poisons the dangling pointer;
        // GPUShield's coarse heap region and the canaries miss it.
        DefectClass::Uaf => {
            if kind == MechanismKind::Lmi {
                Expect::Detect
            } else {
                Expect::Miss
            }
        }
        DefectClass::SpatialNear | DefectClass::SpatialFar => {
            let op = &recipe.ops[d.op];
            match kind {
                MechanismKind::Lmi => Expect::Detect,
                MechanismKind::Null | MechanismKind::Baggy => Expect::Miss,
                // Region bounds tables catch escapes from registered
                // global buffers; shared is unprotected and heap/local are
                // single coarse regions.
                MechanismKind::GpuShield => {
                    if matches!(op.loc, Loc::Global(_)) {
                        Expect::Detect
                    } else {
                        Expect::Miss
                    }
                }
                // Canaries see adjacent *stores* to guarded global
                // buffers. An else-arm mutant's lowest lane starts 64 B
                // past the end — exactly past the guard — so only mutants
                // whose lane 0..15 executes can trip it.
                MechanismKind::Canary => {
                    let adjacent_store = matches!(op.loc, Loc::Global(_))
                        && d.class == DefectClass::SpatialNear
                        && op.store
                        && !(recipe.divergent && op.arm == 1);
                    if adjacent_store {
                        Expect::Detect
                    } else {
                        Expect::Miss
                    }
                }
            }
        }
        // Rejected at compile time; run_case never reaches the matrix.
        DefectClass::IntToPtrEscape => Expect::Miss,
    }
}

/// Per-mechanism observation of one case.
#[derive(Debug, Clone)]
pub struct MechanismReport {
    /// Which mechanism.
    pub mechanism: MechanismKind,
    /// `true` if it fired (a recorded violation or a damaged canary).
    pub detected: bool,
    /// Poison→fault forensic records attributed during the run.
    pub forensics: usize,
    /// Mnemonic of the poisoning instruction of the first forensic record.
    pub poison_op: Option<&'static str>,
    /// Poison-to-fault latency in cycles of the first forensic record.
    pub poison_latency: Option<u64>,
}

/// The oracle's verdict on one case.
#[derive(Debug, Clone)]
pub struct CaseReport {
    /// `true` when the defect was rejected at compile time (the
    /// `inttoptr` class) — the matrix never ran.
    pub compile_rejected: bool,
    /// Per-mechanism observations (empty when `compile_rejected`).
    pub mechanisms: Vec<MechanismReport>,
}

/// A failed oracle invariant, with enough context to report and shrink.
#[derive(Debug, Clone)]
pub struct CaseFailure {
    /// The mechanism the invariant failed on, if attributable.
    pub mechanism: Option<MechanismKind>,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for CaseFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.mechanism {
            Some(m) => write!(f, "[{}] {}", m.label(), self.message),
            None => f.write_str(&self.message),
        }
    }
}

/// Base addresses of the case's global buffers.
pub fn global_bases(n: usize) -> Vec<u64> {
    (0..n as u64).map(|i| layout::GLOBAL_BASE + (i + 1) * BUFFER_STRIDE).collect()
}

/// The deterministic input image: every global buffer filled from the
/// recipe's seed. Built once per case and restored into each fresh GPU, so
/// every mechanism and engine point starts from identical memory.
pub fn seed_image(recipe: &Recipe) -> MemorySnapshot {
    let bases = global_bases(recipe.globals.len());
    let mut rng = SplitMix64::new(recipe.seed ^ 0x5EED_1A6E);
    let regions = recipe
        .globals
        .iter()
        .zip(&bases)
        .map(|(buf, &base)| {
            let mut bytes = vec![0u8; buf.elems as usize * 4];
            for chunk in bytes.chunks_mut(8) {
                let v = rng.next_u64().to_le_bytes();
                chunk.copy_from_slice(&v[..chunk.len()]);
            }
            (base, bytes)
        })
        .collect();
    MemorySnapshot { regions }
}

struct RunResult {
    stats: SimStats,
    /// Global buffers + heap window (engine-determinism comparison).
    full_image: MemorySnapshot,
    /// Global buffers only (cross-mechanism transparency comparison; heap
    /// layouts legitimately differ between alignment policies).
    global_image: MemorySnapshot,
    canary_hit: bool,
}

fn run_one(
    kind: MechanismKind,
    point: EnginePoint,
    recipe: &Recipe,
    base_program: &lmi_isa::Program,
    lmi_program: &lmi_isa::Program,
    baggy_program: &lmi_isa::Program,
    image: &MemorySnapshot,
) -> RunResult {
    let mut cfg =
        GpuConfig::small().with_sim_threads(point.sim_threads).with_mem_banks(point.mem_banks);
    cfg.halt_on_violation = true;

    let policy = match kind {
        MechanismKind::Lmi | MechanismKind::Baggy => AlignmentPolicy::PowerOfTwo,
        _ => AlignmentPolicy::CudaDefault,
    };
    let mut gpu = Gpu::with_heap_policy(cfg, policy);
    gpu.restore(image);

    let bases = global_bases(recipe.globals.len());
    let mut canary = CanaryAllocator::new();
    if kind == MechanismKind::Canary {
        for (buf, &base) in recipe.globals.iter().zip(&bases) {
            canary.guard(&mut gpu.memory, base, u64::from(buf.elems) * 4);
        }
    }

    let program = match kind {
        MechanismKind::Lmi => lmi_program,
        MechanismKind::Baggy => baggy_program,
        _ => base_program,
    };
    let mut launch = Launch::new(program.clone()).grid(1).block(THREADS as usize);
    let ptr_cfg = PtrConfig::default();
    let encode_params = matches!(kind, MechanismKind::Lmi | MechanismKind::Baggy);
    for (buf, &base) in recipe.globals.iter().zip(&bases) {
        let raw = if encode_params {
            DevicePtr::encode(base, u64::from(buf.elems) * 4, &ptr_cfg)
                .expect("aligned power-of-two buffer encodes")
                .raw()
        } else {
            base
        };
        launch = launch.param(raw);
    }

    let stats = match kind {
        MechanismKind::Lmi => {
            let mut mech = LmiMechanism::default_config();
            gpu.run(&launch, &mut mech)
        }
        MechanismKind::GpuShield => {
            let mut mech = GpuShield::new();
            for (buf, &base) in recipe.globals.iter().zip(&bases) {
                mech.register_buffer(base, u64::from(buf.elems) * 4);
            }
            gpu.run(&launch, &mut mech)
        }
        _ => gpu.run(&launch, &mut NullMechanism),
    };

    let global_ranges: Vec<(u64, u64)> = recipe
        .globals
        .iter()
        .zip(&bases)
        .map(|(buf, &base)| (base, u64::from(buf.elems) * 4))
        .collect();
    let mut full_ranges = global_ranges.clone();
    full_ranges.push((layout::HEAP_BASE, HEAP_WINDOW));

    let canary_hit = kind == MechanismKind::Canary && !canary.scan(&gpu.memory).is_empty();
    RunResult {
        full_image: gpu.snapshot(&full_ranges),
        global_image: gpu.snapshot(&global_ranges),
        stats,
        canary_hit,
    }
}

/// Runs one case through the whole oracle matrix.
///
/// Returns the per-mechanism report, or the first violated invariant as a
/// [`CaseFailure`] (the shrinker's input).
pub fn run_case(
    recipe: &Recipe,
    defect: Option<&Defect>,
    cfg: &OracleConfig,
) -> Result<CaseReport, CaseFailure> {
    if defect.is_none() {
        recipe.assert_safe();
    }
    let func = build(recipe, defect);

    // The §XII-B cast class must die in the compiler — under *both* build
    // modes — before any simulation happens.
    if defect.map(|d| d.class) == Some(DefectClass::IntToPtrEscape) {
        for options in [CompileOptions::baseline(), CompileOptions::default()] {
            match compile(&func, options) {
                Err(CompileError::IntToPtrForbidden { .. }) => {}
                Err(e) => {
                    return Err(CaseFailure {
                        mechanism: None,
                        message: format!("inttoptr mutant rejected with the wrong error: {e}"),
                    })
                }
                Ok(_) => {
                    return Err(CaseFailure {
                        mechanism: None,
                        message: "inttoptr mutant was accepted by the compiler".into(),
                    })
                }
            }
        }
        return Ok(CaseReport { compile_rejected: true, mechanisms: Vec::new() });
    }

    let fail =
        |mechanism: Option<MechanismKind>, message: String| CaseFailure { mechanism, message };
    let base_bin = compile(&func, CompileOptions::baseline())
        .map_err(|e| fail(None, format!("baseline compile failed: {e}")))?;
    let lmi_bin = compile(&func, CompileOptions::default())
        .map_err(|e| fail(None, format!("lmi compile failed: {e}")))?;
    let baggy_program = instrument_baggy(&lmi_bin.program);
    let image = seed_image(recipe);

    let mut reports = Vec::new();
    let mut safe_reference: Option<(MechanismKind, MemorySnapshot)> = None;
    for &kind in &cfg.mechanisms {
        let mut reference: Option<RunResult> = None;
        for &point in &cfg.points {
            let run = run_one(
                kind,
                point,
                recipe,
                &base_bin.program,
                &lmi_bin.program,
                &baggy_program,
                &image,
            );
            match &reference {
                None => reference = Some(run),
                Some(r) => {
                    if r.stats != run.stats {
                        return Err(fail(
                            Some(kind),
                            format!(
                                "engine statistics diverge at sim_threads={} mem_banks={}",
                                point.sim_threads, point.mem_banks
                            ),
                        ));
                    }
                    if r.full_image != run.full_image || r.canary_hit != run.canary_hit {
                        return Err(fail(
                            Some(kind),
                            format!(
                                "post-run memory diverges at sim_threads={} mem_banks={}",
                                point.sim_threads, point.mem_banks
                            ),
                        ));
                    }
                }
            }
        }
        let run = reference.expect("at least one engine point");
        let detected = run.stats.violated() || run.canary_hit;

        let mut expect = expectation(kind, defect, recipe);
        let masked =
            kind == MechanismKind::Lmi && defect.is_some() && cfg.masked == defect.map(|d| d.class);
        if masked {
            expect = Expect::Miss;
        }
        match expect {
            Expect::Detect if !detected => {
                return Err(fail(
                    Some(kind),
                    format!(
                        "missed a {} defect",
                        defect.expect("detect implies defect").class.label()
                    ),
                ));
            }
            Expect::Miss if detected => {
                let what = match defect {
                    None => "false positive on a safe-by-construction case".to_string(),
                    Some(d) => format!("unexpected detection of a {} defect", d.class.label()),
                };
                return Err(fail(Some(kind), what));
            }
            _ => {}
        }

        // Class-specific semantic checks on top of the detect/miss bit.
        if let Some(d) = defect {
            if detected && d.class == DefectClass::DoubleFree && run.stats.violated() {
                let ok = run
                    .stats
                    .violations
                    .iter()
                    .any(|v| v.violation == Violation::Temporal(TemporalKind::DoubleFree));
                if !ok {
                    return Err(fail(
                        Some(kind),
                        format!(
                            "double free classified as {:?}",
                            run.stats.violations[0].violation
                        ),
                    ));
                }
            }
            if kind == MechanismKind::Lmi && d.class == DefectClass::Uaf && !masked {
                // §VIII forensics: the extent nullification at the free is
                // the recorded poison, and the dangling dereference is the
                // matched fault with a positive latency.
                let rec = run.stats.forensics.first().ok_or_else(|| {
                    fail(Some(kind), "use-after-free fault carries no forensic record".into())
                })?;
                if rec.poison.op != "FREE" {
                    return Err(fail(
                        Some(kind),
                        format!("UAF poison attributed to {} instead of FREE", rec.poison.op),
                    ));
                }
                if rec.latency_cycles() == 0 {
                    return Err(fail(Some(kind), "poison-to-fault latency is zero".into()));
                }
            }
        }

        // Transparency: on safe cases every mechanism must leave identical
        // global-buffer contents.
        if defect.is_none() {
            match &safe_reference {
                None => safe_reference = Some((kind, run.global_image.clone())),
                Some((ref_kind, ref_image)) => {
                    if *ref_image != run.global_image {
                        return Err(fail(
                            Some(kind),
                            format!(
                                "global buffers diverge from the {} run on a safe case",
                                ref_kind.label()
                            ),
                        ));
                    }
                }
            }
        }

        let first = run.stats.forensics.first();
        reports.push(MechanismReport {
            mechanism: kind,
            detected,
            forensics: run.stats.forensics.len(),
            poison_op: first.map(|r| r.poison.op),
            poison_latency: first.map(|r| r.latency_cycles()),
        });
    }
    Ok(CaseReport { compile_rejected: false, mechanisms: reports })
}

/// Compiles `func` as an LMI build and runs it under the LMI mechanism at
/// one engine point — the shrinker's cheap "does it still fail?" probe.
pub fn lmi_run(
    func: &Function,
    globals: &[BufSpec],
    point: EnginePoint,
) -> Result<SimStats, CompileError> {
    let bin = compile(func, CompileOptions::default())?;
    let mut cfg =
        GpuConfig::small().with_sim_threads(point.sim_threads).with_mem_banks(point.mem_banks);
    cfg.halt_on_violation = true;
    let mut gpu = Gpu::new(cfg);
    let bases = global_bases(globals.len());
    let ptr_cfg = PtrConfig::default();
    let mut launch = Launch::new(bin.program).grid(1).block(THREADS as usize);
    for (buf, &base) in globals.iter().zip(&bases) {
        let raw = DevicePtr::encode(base, u64::from(buf.elems) * 4, &ptr_cfg)
            .expect("aligned power-of-two buffer encodes")
            .raw();
        launch = launch.param(raw);
    }
    let mut mech = LmiMechanism::default_config();
    Ok(gpu.run(&launch, &mut mech))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defect::{mutate, ALL_CLASSES};
    use crate::recipe::generate;
    use lmi_telemetry::SplitMix64;

    #[test]
    fn matrix_holds_on_a_few_cases() {
        let cfg = OracleConfig::quick();
        let mut rng = SplitMix64::new(1);
        for seed in 0..4 {
            let safe = generate(seed);
            let report =
                run_case(&safe, None, &cfg).unwrap_or_else(|f| panic!("seed {seed} safe: {f}"));
            assert!(report.mechanisms.iter().all(|m| !m.detected));
            for class in ALL_CLASSES {
                let (mutant, defect) = mutate(&safe, class, &mut rng);
                run_case(&mutant, Some(&defect), &cfg)
                    .unwrap_or_else(|f| panic!("seed {seed} {}: {f}", class.label()));
            }
        }
    }

    #[test]
    fn masking_turns_detection_into_failure() {
        let mut cfg = OracleConfig::quick();
        cfg.masked = Some(DefectClass::SpatialNear);
        let mut rng = SplitMix64::new(2);
        let (mutant, defect) = mutate(&generate(0), DefectClass::SpatialNear, &mut rng);
        let failure = run_case(&mutant, Some(&defect), &cfg)
            .expect_err("masked LMI detection must surface as a failure");
        assert_eq!(failure.mechanism, Some(MechanismKind::Lmi));
    }
}
