//! Generative kernel recipes with a safety envelope.
//!
//! A [`Recipe`] is a small, serializable description of one random kernel
//! over the full `lmi-compiler` IR surface: multiple global buffers passed
//! as parameters, a static shared buffer, a stack buffer, per-thread device
//! `malloc`/`free`, nested loops, a divergent branch, and mixed-width
//! (4- and 8-byte, line-straddling) loads and stores.
//!
//! The generator only emits recipes inside the *safety envelope*: every
//! access index is bounded so the kernel is provably in-bounds by
//! construction (see [`Recipe::assert_safe`]). The mutation layer in
//! [`crate::defect`] then injects exactly one classified defect by stepping
//! outside the envelope.

use lmi_compiler::ir::{CmpKind, Function, FunctionBuilder, IBinOp, Region, Ty, ValueId};
use lmi_telemetry::SplitMix64;

use crate::defect::{Defect, DefectClass};

/// Threads per launch: one full warp (`grid(1).block(32)`), so divergence
/// splits the warp in half and warp-level accesses stay deterministic.
pub const THREADS: u32 = 32;

/// A global kernel-argument buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufSpec {
    /// Buffer size in 4-byte elements. Always a power of two, so the LMI
    /// extent equals the footprint and the first byte past the end escapes
    /// the encoded bounds.
    pub elems: u32,
}

/// Which buffer an access targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loc {
    /// Global buffer `i` (kernel parameter `i`).
    Global(u8),
    /// The static shared buffer.
    Shared,
    /// The per-thread stack buffer.
    Local,
    /// The per-thread device-heap buffer.
    Heap,
}

impl Loc {
    /// `true` when the access index is `tid`-scaled (global/shared buffers
    /// are shared across the warp; local/heap buffers are per-thread).
    pub fn tid_indexed(self) -> bool {
        matches!(self, Loc::Global(_) | Loc::Shared)
    }
}

/// One memory access in the kernel body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpSpec {
    /// Target buffer.
    pub loc: Loc,
    /// Element offset. For `tid`-indexed buffers the accessed element is
    /// `tid + off` (narrow) or `2*tid + off` (wide, so 8-byte lanes never
    /// overlap); for per-thread buffers it is `off` directly.
    pub off: u32,
    /// 8-byte access (width 8 straddles a cache line when 4-aligned only).
    pub wide: bool,
    /// Store (`true`) or load (`false`).
    pub store: bool,
    /// Divergent arm: 0 = `tid < 16` branch, 1 = `tid >= 16` branch,
    /// 2 = both (emitted after reconvergence). Ignored when the recipe is
    /// not divergent.
    pub arm: u8,
}

/// A complete kernel description. `build` expands it deterministically
/// into an IR [`Function`]; equal recipes produce equal kernels.
#[derive(Debug, Clone, PartialEq)]
pub struct Recipe {
    /// Generator seed (carried for reproducer rendering).
    pub seed: u64,
    /// Global buffers (at least one; buffer 0 receives the published
    /// accumulator).
    pub globals: Vec<BufSpec>,
    /// Shared-buffer elements (0 = no shared buffer).
    pub shared_elems: u32,
    /// Stack-buffer elements (0 = no stack buffer).
    pub local_elems: u32,
    /// Device-heap buffer elements per thread (0 = no heap use).
    pub heap_elems: u32,
    /// Outer loop trip count (0 = straight line).
    pub outer_trips: u8,
    /// Inner (nested) loop trip count (0 = no inner loop).
    pub inner_trips: u8,
    /// Split the warp on `tid < 16` around the body ops.
    pub divergent: bool,
    /// The access sequence.
    pub ops: Vec<OpSpec>,
}

impl Recipe {
    /// Element count of the buffer `loc` refers to.
    pub fn elems_of(&self, loc: Loc) -> u32 {
        match loc {
            Loc::Global(i) => self.globals[i as usize].elems,
            Loc::Shared => self.shared_elems,
            Loc::Local => self.local_elems,
            Loc::Heap => self.heap_elems,
        }
    }

    /// Highest element index `op` can touch (inclusive).
    fn max_index(op: &OpSpec) -> u32 {
        let span = if op.wide { 2 } else { 1 };
        if op.loc.tid_indexed() {
            let stride = if op.wide { 2 } else { 1 };
            op.off + stride * (THREADS - 1) + span
        } else {
            op.off + span
        }
    }

    /// Panics unless every op stays inside its buffer — the generator's
    /// safety envelope, re-checked so a generator bug cannot masquerade as
    /// a mechanism false positive.
    pub fn assert_safe(&self) {
        for (i, op) in self.ops.iter().enumerate() {
            let elems = self.elems_of(op.loc);
            assert!(elems > 0, "op {i} targets an absent buffer ({:?})", op.loc);
            assert!(
                Recipe::max_index(op) <= elems,
                "op {i} escapes its buffer: {:?} reaches element {} of {elems}",
                op,
                Recipe::max_index(op)
            );
        }
    }

    /// `true` when any op targets the device heap.
    pub fn uses_heap(&self) -> bool {
        self.heap_elems > 0
    }
}

/// Draws an in-envelope offset for an op shape.
fn safe_off(rng: &mut SplitMix64, loc: Loc, wide: bool, elems: u32) -> u32 {
    let limit = if loc.tid_indexed() {
        let stride = if wide { 2u32 } else { 1 };
        elems - (stride * (THREADS - 1) + if wide { 2 } else { 1 })
    } else {
        elems - if wide { 2 } else { 1 }
    };
    rng.below(limit as u64 + 1) as u32
}

/// Generates a random recipe inside the safety envelope.
pub fn generate(seed: u64) -> Recipe {
    let mut rng = SplitMix64::new(seed);
    let globals: Vec<BufSpec> =
        (0..rng.range(1, 4)).map(|_| BufSpec { elems: 64 << rng.below(5) }).collect();
    let shared_elems = if rng.chance(0.6) { 64 << rng.below(3) } else { 0 };
    let local_elems = if rng.chance(0.6) { 64 << rng.below(2) } else { 0 };
    let heap_elems = if rng.chance(0.6) { 16 << rng.below(3) } else { 0 };
    let divergent = rng.chance(0.5);
    let outer_trips = if rng.chance(0.5) { rng.range(1, 4) as u8 } else { 0 };
    let inner_trips = if outer_trips > 0 && rng.chance(0.4) { rng.range(1, 3) as u8 } else { 0 };

    let mut locs = vec![];
    for i in 0..globals.len() {
        locs.push(Loc::Global(i as u8));
    }
    if shared_elems > 0 {
        locs.push(Loc::Shared);
    }
    if local_elems > 0 {
        locs.push(Loc::Local);
    }
    if heap_elems > 0 {
        locs.push(Loc::Heap);
    }

    let mut recipe = Recipe {
        seed,
        globals,
        shared_elems,
        local_elems,
        heap_elems,
        outer_trips,
        inner_trips,
        divergent,
        ops: Vec::new(),
    };
    for _ in 0..rng.range(2, 9) {
        let loc = *rng.choose(&locs);
        let wide = rng.chance(0.25);
        let op = OpSpec {
            loc,
            off: safe_off(&mut rng, loc, wide, recipe.elems_of(loc)),
            wide,
            store: rng.chance(0.5),
            arm: rng.below(3) as u8,
        };
        recipe.ops.push(op);
    }
    recipe.assert_safe();
    recipe
}

/// Expands a recipe (and an optional injected defect) into a well-typed
/// kernel [`Function`].
///
/// Spatial defects are already baked into the recipe's offsets by
/// [`crate::defect::mutate`]; temporal and cast defects change the emitted
/// structure here: `Uaf` frees the heap pointer right before the target op,
/// `DoubleFree` frees it twice in the epilogue, and `IntToPtrEscape` emits
/// a forbidden `inttoptr` cast the compiler must reject.
pub fn build(recipe: &Recipe, defect: Option<&Defect>) -> Function {
    let class = defect.map(|d| d.class);
    let mut b = FunctionBuilder::new("conformance");

    let globals: Vec<ValueId> =
        recipe.globals.iter().map(|_| b.param(Ty::Ptr(Region::Global))).collect();
    let tid = b.tid();
    let zero = b.const_i32(0);
    let one = b.const_i32(1);
    let local_ptr = (recipe.local_elems > 0).then(|| b.alloca(u64::from(recipe.local_elems) * 4));
    let shared_ptr =
        (recipe.shared_elems > 0).then(|| b.shared_alloc(u64::from(recipe.shared_elems) * 4));
    let heap_ptr = (recipe.heap_elems > 0).then(|| {
        let size = b.const_i32(recipe.heap_elems as i32 * 4);
        b.malloc(size)
    });
    let acc = b.var(zero);

    let outer_iter = (recipe.outer_trips > 0).then(|| b.var(zero));
    let inner_iter = (recipe.inner_trips > 0).then(|| b.var(zero));

    let outer_body = outer_iter.map(|iter| {
        let body = b.new_block();
        b.jump(body);
        b.switch_to(body);
        // Reset the inner counter at each outer iteration.
        if let Some(inner) = inner_iter {
            b.write_var(inner, zero);
        }
        (iter, body)
    });
    let inner_body = inner_iter.map(|iter| {
        let body = b.new_block();
        b.jump(body);
        b.switch_to(body);
        (iter, body)
    });

    let emit_op = |b: &mut FunctionBuilder, index: usize, op: &OpSpec| {
        if class == Some(DefectClass::Uaf) && defect.map(|d| d.op) == Some(index) {
            // The injected temporal defect: the buffer dies here, the
            // access below dangles.
            b.free(heap_ptr.expect("Uaf mutation forces a heap buffer"));
        }
        let base = match op.loc {
            Loc::Global(i) => globals[i as usize],
            Loc::Shared => shared_ptr.expect("op targets an absent shared buffer"),
            Loc::Local => local_ptr.expect("op targets an absent stack buffer"),
            Loc::Heap => heap_ptr.expect("op targets an absent heap buffer"),
        };
        let off = b.const_i32(op.off as i32);
        let index_v = if op.loc.tid_indexed() {
            let scaled = if op.wide { b.ibin(IBinOp::Add, tid, tid) } else { tid };
            b.ibin(IBinOp::Add, scaled, off)
        } else {
            off
        };
        let elem = b.gep(base, index_v, 4);
        match (op.wide, op.store) {
            (true, true) => {
                let v = b.const_i64(0x5AD0_F00D_0000_0001 + index as i64);
                b.store(elem, v, 8);
            }
            (true, false) => {
                // The i64 result cannot feed the i32 accumulator; the load
                // itself is the point (width-8 path, line straddling).
                let _ = b.load_i64(elem);
            }
            (false, true) => {
                let v = b.read_var(acc);
                b.store(elem, v, 4);
            }
            (false, false) => {
                let v = b.load_i32(elem);
                let cur = b.read_var(acc);
                let folded =
                    b.ibin(if index.is_multiple_of(2) { IBinOp::Add } else { IBinOp::Xor }, cur, v);
                b.write_var(acc, folded);
            }
        }
    };

    if recipe.divergent {
        let half = b.const_i32(THREADS as i32 / 2);
        let cond = b.cmp(CmpKind::Lt, tid, half);
        let then_b = b.new_block();
        let else_b = b.new_block();
        let merge = b.new_block();
        b.branch(cond, then_b, else_b);
        b.switch_to(then_b);
        for (i, op) in recipe.ops.iter().enumerate().filter(|(_, op)| op.arm == 0) {
            emit_op(&mut b, i, op);
        }
        b.jump(merge);
        b.switch_to(else_b);
        for (i, op) in recipe.ops.iter().enumerate().filter(|(_, op)| op.arm == 1) {
            emit_op(&mut b, i, op);
        }
        b.jump(merge);
        b.switch_to(merge);
        for (i, op) in recipe.ops.iter().enumerate().filter(|(_, op)| op.arm >= 2) {
            emit_op(&mut b, i, op);
        }
    } else {
        for (i, op) in recipe.ops.iter().enumerate() {
            emit_op(&mut b, i, op);
        }
    }

    // Loop latches, innermost first (do-while shape: trips >= 1 iterations).
    if let Some((iter, body)) = inner_body {
        let iv = b.read_var(iter);
        let next = b.ibin(IBinOp::Add, iv, one);
        b.write_var(iter, next);
        let n = b.const_i32(recipe.inner_trips as i32);
        let c = b.cmp(CmpKind::Lt, next, n);
        let after = b.new_block();
        b.branch(c, body, after);
        b.switch_to(after);
    }
    if let Some((iter, body)) = outer_body {
        let iv = b.read_var(iter);
        let next = b.ibin(IBinOp::Add, iv, one);
        b.write_var(iter, next);
        let n = b.const_i32(recipe.outer_trips as i32);
        let c = b.cmp(CmpKind::Lt, next, n);
        let after = b.new_block();
        b.branch(c, body, after);
        b.switch_to(after);
    }

    // Epilogue: release the heap buffer (unless the defect already freed
    // it, or *is* the double free), publish the accumulator.
    if let Some(hp) = heap_ptr {
        match class {
            Some(DefectClass::Uaf) => {}
            Some(DefectClass::DoubleFree) => {
                b.free(hp);
                b.free(hp);
            }
            _ => b.free(hp),
        }
    }
    if class == Some(DefectClass::IntToPtrEscape) {
        let forged = b.const_i64(lmi_mem::layout::GLOBAL_BASE as i64);
        let p = b.int_to_ptr(forged, Region::Global);
        let v = b.read_var(acc);
        b.store(p, v, 4);
    }
    let out = b.gep(globals[0], tid, 4);
    let v = b.read_var(acc);
    b.store(out, v, 4);
    b.ret();
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_recipes_stay_in_envelope_and_build() {
        for seed in 0..200 {
            let r = generate(seed);
            r.assert_safe();
            assert!(!r.globals.is_empty());
            assert!(!r.ops.is_empty());
            let f = build(&r, None);
            assert!(f.op_count() > 0);
        }
    }

    #[test]
    fn build_is_deterministic() {
        let r = generate(42);
        assert_eq!(build(&r, None), build(&r, None));
    }

    #[test]
    fn generator_covers_the_ir_surface() {
        let mut saw = (false, false, false, false, false, false, false);
        for seed in 0..400 {
            let r = generate(seed);
            saw.0 |= r.globals.len() > 1;
            saw.1 |= r.shared_elems > 0;
            saw.2 |= r.local_elems > 0;
            saw.3 |= r.heap_elems > 0;
            saw.4 |= r.divergent;
            saw.5 |= r.inner_trips > 0;
            saw.6 |= r.ops.iter().any(|o| o.wide);
        }
        assert!(saw.0, "multi-buffer params");
        assert!(saw.1, "shared buffers");
        assert!(saw.2, "stack buffers");
        assert!(saw.3, "device heap");
        assert!(saw.4, "divergence");
        assert!(saw.5, "nested loops");
        assert!(saw.6, "line-straddling widths");
    }
}
