//! # lmi-conformance — generative conformance fuzzing for the LMI stack
//!
//! This crate closes the loop between the compiler, the simulator, and the
//! protection mechanisms with a differential fuzzer:
//!
//! * [`recipe`] generates random kernels over the full `lmi-compiler` IR
//!   surface — multi-buffer parameters, shared/stack/heap regions, nested
//!   loops, divergent branches, line-straddling widths — inside a *safety
//!   envelope* that makes every generated kernel provably in-bounds.
//! * [`defect`] mutates a safe recipe to inject exactly one classified
//!   memory-safety defect (spatial near/far, use-after-free, double free,
//!   forbidden `inttoptr` cast).
//! * [`oracle`] runs each case across the mechanism × engine matrix (Null,
//!   LMI, GPUShield, Baggy, canary × `sim_threads` × `mem_banks`) and
//!   checks transparency, detection-by-class, and bit-identical engine
//!   behavior.
//! * [`mod@shrink`] delta-debugs any failing case — first over the recipe,
//!   then over the built IR — down to a minimal reproducer it renders as a
//!   ready-to-paste regression test.
//! * [`corpus`] round-trips cases through JSON for corpus persistence.
//!
//! The `fuzz` binary in `crates/bench` drives these pieces from the
//! command line; `tests/differential_fuzz.rs` and `tests/conformance.rs`
//! pin the invariants in CI.

#![warn(missing_docs)]

pub mod corpus;
pub mod defect;
pub mod oracle;
pub mod recipe;
pub mod shrink;

pub use corpus::{case_from_json, case_to_json, CORPUS_SCHEMA};
pub use defect::{mutate, Defect, DefectClass, ALL_CLASSES, FAR_DELTA};
pub use oracle::{
    expectation, full_points, lmi_run, run_case, CaseFailure, CaseReport, EnginePoint, Expect,
    MechanismKind, MechanismReport, OracleConfig, ALL_MECHANISMS,
};
pub use recipe::{build, generate, BufSpec, Loc, OpSpec, Recipe, THREADS};
pub use shrink::{shrink, Reproducer};
