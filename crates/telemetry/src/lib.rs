//! # lmi-telemetry — observability for the LMI simulation pipeline
//!
//! The paper's evaluation (Figs. 1–13, Table II) is built from instruction,
//! memory and check counters; this crate is where those measurements live
//! once the simulator produces them:
//!
//! * [`CounterRegistry`] — structured counters with per-SM, per-warp and
//!   per-mechanism scopes, absorbing what `SimStats` used to lump together;
//! * [`EventTracer`] — a bounded ring buffer of kernel-timeline events
//!   (warp launch/retire, memory transactions, OCU checks, EC faults) that
//!   exports Chrome trace-event JSON loadable in Perfetto;
//! * [`ForensicsLog`] — provenance for LMI's delayed termination (§XII-A):
//!   when the OCU poisons a pointer the poisoning pc/op is recorded, and
//!   when the EC later faults, the poison-to-fault latency in cycles and
//!   instructions is reported alongside the faulting lane;
//! * [`json`] — a hand-rolled JSON value, serializer and parser (no serde;
//!   keeps the workspace buildable offline) used by the bench binaries'
//!   `--json` reports and by CI's validity check;
//! * [`prng`] — a tiny deterministic SplitMix64 generator used for trace
//!   sampling and by the workspace's randomized property tests (replacing
//!   the external `proptest`/`rand` dependencies);
//! * [`profiler`] — log-bucketed latency [`Histogram`]s with exact merge,
//!   hot-PC tables and warp-state occupancy profiles filled by the
//!   engine's cycle-driven sampling hook;
//! * [`export`] — [`MetricsFrame`], a diffable snapshot of every counter,
//!   histogram and profile, rendered as Prometheus text exposition or as
//!   a JSON document.
//!
//! The crate depends only on `std`, so every other crate — including the
//! leaf ISA crate — can use it from tests without dependency cycles.

pub mod export;
pub mod forensics;
pub mod json;
pub mod prng;
pub mod profiler;
pub mod registry;
pub mod tracer;

pub use export::{parse_prometheus, MetricsFrame, PromSample};
pub use forensics::{FaultEvent, ForensicsLog, ForensicsRecord, PoisonEvent};
pub use json::Json;
pub use prng::SplitMix64;
pub use profiler::{
    Histogram, HistogramRegistry, KernelProfile, PcProfile, SmProfile, SmSample, WarpState,
    WARP_STATES, WARP_STATE_NAMES,
};
pub use registry::{CounterRegistry, Scope};
pub use tracer::{EventTracer, TraceEventKind, TraceRecord};

/// Everything the simulator emits during one run, bundled so the pipeline
/// threads a single `&mut TelemetrySink` instead of three references.
#[derive(Debug)]
pub struct TelemetrySink {
    /// Scoped counters.
    pub counters: CounterRegistry,
    /// Kernel-timeline ring buffer.
    pub tracer: EventTracer,
    /// Poison-to-fault provenance.
    pub forensics: ForensicsLog,
}

impl TelemetrySink {
    /// A sink with timeline tracing enabled (ring capacity `trace_capacity`).
    pub fn with_trace_capacity(trace_capacity: usize) -> TelemetrySink {
        TelemetrySink {
            counters: CounterRegistry::new(),
            tracer: EventTracer::new(trace_capacity),
            forensics: ForensicsLog::new(),
        }
    }

    /// A sink that keeps counters and forensics but drops timeline events —
    /// the default for untraced runs, where per-event recording would cost
    /// more than the simulation itself.
    pub fn counters_only() -> TelemetrySink {
        TelemetrySink {
            counters: CounterRegistry::new(),
            tracer: EventTracer::disabled(),
            forensics: ForensicsLog::new(),
        }
    }

    /// A sink that drops counters and timeline events but still collects
    /// forensics (poison/fault provenance is cheap — it only fires on
    /// violations — and `SimStats` reports it even on untelemetered runs).
    pub fn disabled() -> TelemetrySink {
        TelemetrySink {
            counters: CounterRegistry::disabled(),
            tracer: EventTracer::disabled(),
            forensics: ForensicsLog::new(),
        }
    }
}

impl Default for TelemetrySink {
    fn default() -> TelemetrySink {
        TelemetrySink::counters_only()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_sink_keeps_counters_but_not_events() {
        let mut sink = TelemetrySink::default();
        sink.counters.add(Scope::Gpu, "cycles", 10);
        sink.tracer.complete("x", TraceEventKind::MemTransaction, 0, 0, 0, 5);
        assert_eq!(sink.counters.get(Scope::Gpu, "cycles"), 10);
        assert_eq!(sink.tracer.len(), 0, "disabled tracer records nothing");
    }
}
