//! A hand-rolled JSON value, serializer and recursive-descent parser.
//!
//! The bench binaries need machine-readable output (`--json`) and the
//! tracer needs Chrome trace-event export, but pulling in `serde` would
//! break the workspace's offline build. The subset implemented here is
//! full RFC 8259 output and a strict parser used by tests and by the
//! `jsonlint` CI helper to verify that what we emit actually parses.

use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order so reports are stable
/// and diffable across runs.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A signed integer (emitted without a decimal point).
    Int(i64),
    /// An unsigned integer (emitted without a decimal point).
    UInt(u64),
    /// A finite float. Non-finite values serialize as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (insertion-ordered key/value pairs).
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::UInt(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

impl Json {
    /// An empty object, to be filled with [`Json::set`].
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Inserts (or replaces) `key` in an object; panics on non-objects.
    pub fn set(&mut self, key: &str, value: impl Into<Json>) -> &mut Json {
        match self {
            Json::Obj(pairs) => {
                let value = value.into();
                if let Some(pair) = pairs.iter_mut().find(|(k, _)| k == key) {
                    pair.1 = value;
                } else {
                    pairs.push((key.to_string(), value));
                }
                self
            }
            _ => panic!("Json::set on a non-object"),
        }
    }

    /// Builder-style [`Json::set`].
    pub fn with(mut self, key: &str, value: impl Into<Json>) -> Json {
        self.set(key, value);
        self
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array.
    pub fn items(&self) -> &[Json] {
        match self {
            Json::Arr(items) => items,
            _ => &[],
        }
    }

    /// Numeric view (integers widen losslessly for the magnitudes we emit).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::UInt(v) => Some(*v as f64),
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Unsigned view.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            Json::Int(v) if *v >= 0 => Some(*v as u64),
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Compact serialization.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Two-space-indented serialization (what the `--json` reports emit).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Num(v) if v.is_finite() => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    // Keep integral floats readable but unmistakably float.
                    let _ = write!(out, "{v:.1}");
                } else {
                    let _ = write!(out, "{v}");
                }
            }
            Json::Num(_) => out.push_str("null"),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, depth| {
                    items[i].write(out, indent, depth);
                });
            }
            Json::Obj(pairs) => {
                write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i, depth| {
                    write_escaped(out, &pairs[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    pairs[i].1.write(out, indent, depth);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            for _ in 0..width * (depth + 1) {
                out.push(' ');
            }
        }
        item(out, i, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON document (trailing whitespace allowed,
/// anything else after the value is an error).
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing content after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonError {
        JsonError { at: self.pos, message: message.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            // Explicit arms for the two IEEE tokens lenient parsers let
            // through: exports must never emit them, so accepting them
            // here would hide a corrupted document.
            Some(b'N') => Err(self.error("`NaN` is not valid JSON")),
            Some(b'I') => Err(self.error("`Infinity` is not valid JSON")),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            // Surrogates are not emitted by our writer;
                            // decode the BMP scalar or reject.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("surrogate \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.error("raw control character")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this
                    // boundary arithmetic is safe).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| {
            let before = p.pos;
            while matches!(p.peek(), Some(b'0'..=b'9')) {
                p.pos += 1;
            }
            p.pos > before
        };
        if !digits(self) {
            if self.peek() == Some(b'I') {
                return Err(self.error("`-Infinity` is not valid JSON"));
            }
            return Err(self.error("expected digits"));
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !digits(self) {
                return Err(self.error("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(self.error("expected exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
        }
        match text.parse::<f64>() {
            // `1e999` parses to infinity; a document that overflows f64
            // is rejected rather than silently saturated.
            Ok(v) if v.is_finite() => Ok(Json::Num(v)),
            Ok(_) => Err(self.error("number out of range")),
            Err(_) => Err(self.error("bad number")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let doc = Json::obj()
            .with("name", "probe")
            .with("cycles", 12345u64)
            .with("ipc", 1.25)
            .with("neg", -3i64)
            .with("flags", Json::Arr(vec![Json::Bool(true), Json::Null]))
            .with("nested", Json::obj().with("k", "v\" \\ \n end"));
        for text in [doc.to_compact(), doc.to_pretty()] {
            assert_eq!(parse(&text).unwrap(), doc, "{text}");
        }
    }

    #[test]
    fn preserves_u64_precision_beyond_f64() {
        let v = Json::UInt(u64::MAX);
        assert_eq!(parse(&v.to_compact()).unwrap(), v);
    }

    #[test]
    fn set_replaces_existing_keys() {
        let mut o = Json::obj().with("a", 1u64);
        o.set("a", 2u64);
        assert_eq!(o.get("a").and_then(Json::as_u64), Some(2));
        assert_eq!(o.items().len(), 0, "object, not array");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "01x", "\"unterminated", "1 2", "{'a':1}"] {
            assert!(parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn escapes_control_characters() {
        let s = Json::Str("\u{1}\t".into());
        assert_eq!(s.to_compact(), "\"\\u0001\\t\"");
        assert_eq!(parse(&s.to_compact()).unwrap(), s);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_compact(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_compact(), "null");
    }

    #[test]
    fn rejects_non_finite_tokens_with_clear_errors() {
        for (doc, expect) in [
            ("NaN", "`NaN` is not valid JSON"),
            ("Infinity", "`Infinity` is not valid JSON"),
            ("-Infinity", "`-Infinity` is not valid JSON"),
            ("{\"v\": NaN}", "`NaN` is not valid JSON"),
            ("[1, Infinity]", "`Infinity` is not valid JSON"),
            ("1e999", "number out of range"),
            ("-1e999", "number out of range"),
        ] {
            let err = parse(doc).unwrap_err().to_string();
            assert!(err.contains(expect), "{doc:?} -> {err}");
        }
        // Large-but-finite exponents still parse.
        assert_eq!(parse("1e308").unwrap(), Json::Num(1e308));
    }
}
