//! Validates JSON on stdin (or a file argument) with the crate's own
//! parser. Exit 0 on valid input, 1 with a diagnostic otherwise. CI pipes
//! the bench binaries' `--json` output through this to catch drift in the
//! hand-rolled exporter.
//!
//! Usage: `probe --json | jsonlint`  or  `jsonlint trace.json`

use std::io::Read;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut text = String::new();
    let source = match std::env::args().nth(1) {
        Some(path) => match std::fs::read_to_string(&path) {
            Ok(t) => {
                text = t;
                path
            }
            Err(e) => {
                eprintln!("jsonlint: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => {
            if let Err(e) = std::io::stdin().read_to_string(&mut text) {
                eprintln!("jsonlint: cannot read stdin: {e}");
                return ExitCode::FAILURE;
            }
            "<stdin>".to_string()
        }
    };
    match lmi_telemetry::json::parse(&text) {
        Ok(_) => {
            eprintln!("jsonlint: {source}: valid ({} bytes)", text.len());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("jsonlint: {source}: {e}");
            ExitCode::FAILURE
        }
    }
}
