//! A bounded ring-buffer kernel-timeline tracer with Chrome trace-event
//! export.
//!
//! The simulator reports spans (warp launch→retire, memory transactions
//! with their latency, OCU checks, EC faults) as they complete. The ring
//! keeps the most recent `capacity` records — long simulations cannot
//! grow memory without bound — and [`EventTracer::chrome_trace`] renders
//! whatever survived as Chrome trace-event JSON: load the file in
//! [Perfetto](https://ui.perfetto.dev) (or `chrome://tracing`) and the
//! timeline shows one process per SM and one thread per warp, with
//! cycles as the time unit.

use std::collections::VecDeque;

use crate::json::Json;

/// What a trace record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A warp's residency from launch to retire.
    WarpSpan,
    /// One coalesced memory transaction (span covers its latency).
    MemTransaction,
    /// An OCU check on a hint-marked integer instruction.
    OcuCheck,
    /// The OCU poisoned a pointer (instant).
    OcuPoison,
    /// The EC faulted a dereference (instant).
    EcFault,
    /// A device-heap malloc/free call.
    HeapCall,
    /// A scheduler stall sample (instant).
    Stall,
    /// One kernel's residency on its SM partition, from admission to the
    /// retirement of its last warp (`lmi-runtime` stream timelines).
    KernelSpan,
    /// One copy-engine transfer (H2D or D2H), spanning its modeled
    /// latency + bandwidth cost.
    CopySpan,
    /// Tracer bookkeeping (instant) — e.g. the `dropped_events` marker
    /// the export synthesizes when the ring wrapped.
    Meta,
}

impl TraceEventKind {
    /// Chrome trace category string.
    pub fn category(self) -> &'static str {
        match self {
            TraceEventKind::WarpSpan => "warp",
            TraceEventKind::MemTransaction => "mem",
            TraceEventKind::OcuCheck => "ocu",
            TraceEventKind::OcuPoison => "ocu",
            TraceEventKind::EcFault => "ec",
            TraceEventKind::HeapCall => "heap",
            TraceEventKind::Stall => "sched",
            TraceEventKind::KernelSpan => "stream",
            TraceEventKind::CopySpan => "copy",
            TraceEventKind::Meta => "trace",
        }
    }

    /// `true` for zero-duration (instant, phase `i`) events.
    pub fn is_instant(self) -> bool {
        matches!(
            self,
            TraceEventKind::OcuPoison
                | TraceEventKind::EcFault
                | TraceEventKind::Stall
                | TraceEventKind::Meta
        )
    }
}

/// One record in the ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Display name.
    pub name: &'static str,
    /// Event kind (category + phase).
    pub kind: TraceEventKind,
    /// SM index (rendered as the Chrome `pid`).
    pub sm: usize,
    /// Warp index (rendered as the Chrome `tid`).
    pub warp: usize,
    /// Start cycle.
    pub start: u64,
    /// Duration in cycles (0 for instants).
    pub dur: u64,
    /// Optional key/value detail (pc, address, violation kind, …).
    pub args: Vec<(&'static str, u64)>,
}

/// The bounded tracer.
#[derive(Debug, Clone)]
pub struct EventTracer {
    ring: VecDeque<TraceRecord>,
    capacity: usize,
    /// Records evicted after the ring filled.
    dropped: u64,
    /// Start cycle of the first evicted record — where the visible
    /// timeline stops being complete.
    first_drop_start: Option<u64>,
    enabled: bool,
}

impl EventTracer {
    /// A tracer retaining at most `capacity` records (at least 1).
    pub fn new(capacity: usize) -> EventTracer {
        EventTracer {
            ring: VecDeque::with_capacity(capacity.clamp(1, 1 << 20)),
            capacity: capacity.max(1),
            dropped: 0,
            first_drop_start: None,
            enabled: true,
        }
    }

    /// A tracer that records nothing (constant-time no-op on every hook).
    pub fn disabled() -> EventTracer {
        EventTracer {
            ring: VecDeque::new(),
            capacity: 0,
            dropped: 0,
            first_drop_start: None,
            enabled: false,
        }
    }

    /// `true` if recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records a completed span.
    pub fn complete(
        &mut self,
        name: &'static str,
        kind: TraceEventKind,
        sm: usize,
        warp: usize,
        start: u64,
        dur: u64,
    ) {
        self.push(TraceRecord { name, kind, sm, warp, start, dur, args: Vec::new() });
    }

    /// Records a completed span with detail arguments.
    #[allow(clippy::too_many_arguments)] // mirrors the trace-event tuple
    pub fn complete_with(
        &mut self,
        name: &'static str,
        kind: TraceEventKind,
        sm: usize,
        warp: usize,
        start: u64,
        dur: u64,
        args: &[(&'static str, u64)],
    ) {
        if !self.enabled {
            return;
        }
        self.push(TraceRecord { name, kind, sm, warp, start, dur, args: args.to_vec() });
    }

    /// Records an instant event.
    pub fn instant(
        &mut self,
        name: &'static str,
        kind: TraceEventKind,
        sm: usize,
        warp: usize,
        at: u64,
        args: &[(&'static str, u64)],
    ) {
        if !self.enabled {
            return;
        }
        self.push(TraceRecord { name, kind, sm, warp, start: at, dur: 0, args: args.to_vec() });
    }

    fn push(&mut self, record: TraceRecord) {
        if !self.enabled {
            return;
        }
        if self.ring.len() == self.capacity {
            let evicted = self.ring.pop_front();
            if self.dropped == 0 {
                self.first_drop_start = evicted.map(|r| r.start);
            }
            self.dropped += 1;
        }
        self.ring.push_back(record);
    }

    /// Records currently retained.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// `true` if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Records evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained records in arrival order.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.ring.iter()
    }

    /// Renders the Chrome trace-event document:
    /// `{"displayTimeUnit": "ms", "traceEvents": [...]}`, with events
    /// sorted by timestamp (Perfetto tolerates unsorted input, but our
    /// golden tests — and humans reading the raw file — should not have
    /// to). One cycle maps to one microsecond of trace time.
    pub fn chrome_trace(&self) -> Json {
        // When the ring wrapped, a single visible marker at the cycle of
        // the first eviction says so in-timeline — overflow used to be
        // discoverable only from the top-level `droppedEvents` field,
        // which trace viewers don't surface.
        let marker = (self.dropped > 0).then(|| TraceRecord {
            name: "dropped_events",
            kind: TraceEventKind::Meta,
            sm: 0,
            warp: 0,
            start: self.first_drop_start.unwrap_or(0),
            dur: 0,
            args: vec![("count", self.dropped)],
        });
        let mut records: Vec<&TraceRecord> = self.ring.iter().chain(marker.as_ref()).collect();
        records.sort_by_key(|r| (r.start, r.sm, r.warp));
        let mut events = Vec::with_capacity(records.len());
        for r in records {
            let mut ev = Json::obj()
                .with("name", r.name)
                .with("cat", r.kind.category())
                .with("ph", if r.kind.is_instant() { "i" } else { "X" })
                .with("ts", r.start)
                .with("pid", r.sm)
                .with("tid", r.warp);
            if r.kind.is_instant() {
                ev.set("s", "t"); // instant scope: thread
            } else {
                ev.set("dur", r.dur);
            }
            if !r.args.is_empty() {
                let mut args = Json::obj();
                for (k, v) in &r.args {
                    args.set(k, *v);
                }
                ev.set("args", args);
            }
            events.push(ev);
        }
        Json::obj()
            .with("displayTimeUnit", "ms")
            .with("traceEvents", Json::Arr(events))
            .with("droppedEvents", self.dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut t = EventTracer::new(2);
        for i in 0..5u64 {
            t.complete("tx", TraceEventKind::MemTransaction, 0, 0, i * 10, 3);
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
        let starts: Vec<u64> = t.records().map(|r| r.start).collect();
        assert_eq!(starts, vec![30, 40], "latest records survive");
    }

    #[test]
    fn chrome_trace_sorts_and_labels() {
        let mut t = EventTracer::new(16);
        t.complete("warp0", TraceEventKind::WarpSpan, 1, 0, 50, 100);
        t.instant("poison", TraceEventKind::OcuPoison, 0, 3, 10, &[("pc", 7)]);
        let doc = t.chrome_trace();
        let events = doc.get("traceEvents").unwrap().items();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("ts").and_then(Json::as_u64), Some(10), "sorted by ts");
        assert_eq!(events[0].get("ph").and_then(Json::as_str), Some("i"));
        assert_eq!(events[0].get("args").and_then(|a| a.get("pc")).and_then(Json::as_u64), Some(7));
        assert_eq!(events[1].get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(events[1].get("dur").and_then(Json::as_u64), Some(100));
    }

    #[test]
    fn wrapped_ring_surfaces_a_dropped_events_marker() {
        let mut t = EventTracer::new(2);
        for i in 0..5u64 {
            t.complete("tx", TraceEventKind::MemTransaction, 1, 2, i * 10, 3);
        }
        let doc = t.chrome_trace();
        let events = doc.get("traceEvents").unwrap().items();
        assert_eq!(events.len(), t.len() + 1, "retained records plus the marker");
        let marker = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("dropped_events"))
            .expect("marker present");
        assert_eq!(marker.get("cat").and_then(Json::as_str), Some("trace"));
        assert_eq!(marker.get("ph").and_then(Json::as_str), Some("i"));
        assert_eq!(marker.get("s").and_then(Json::as_str), Some("t"));
        // Anchored at the first eviction (record with start 0 was evicted
        // first), counting every eviction since.
        assert_eq!(marker.get("ts").and_then(Json::as_u64), Some(0));
        let count = marker.get("args").and_then(|a| a.get("count")).and_then(Json::as_u64);
        assert_eq!(count, Some(3));
        assert_eq!(doc.get("droppedEvents").and_then(Json::as_u64), Some(3));

        // No drops → no marker.
        let mut clean = EventTracer::new(16);
        clean.complete("tx", TraceEventKind::MemTransaction, 0, 0, 0, 1);
        let doc = clean.chrome_trace();
        assert_eq!(doc.get("traceEvents").unwrap().items().len(), 1);
    }

    #[test]
    fn disabled_tracer_is_inert() {
        let mut t = EventTracer::disabled();
        t.instant("x", TraceEventKind::EcFault, 0, 0, 1, &[]);
        t.complete("y", TraceEventKind::WarpSpan, 0, 0, 0, 9);
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
    }
}
