//! Violation forensics for delayed termination (paper §XII-A).
//!
//! LMI's OCU never faults at the point of the bug: it silently clears the
//! pointer's extent, and the program only dies later — possibly much
//! later — when the poisoned pointer is dereferenced and the EC faults.
//! Great for false-positive avoidance, terrible for debugging: the fault
//! site tells you nothing about *where the pointer went bad*.
//!
//! This log closes that gap. Every OCU poisoning records its pc, opcode
//! and cycle, keyed by the (sm, warp, lane) that produced it; when the EC
//! later faults on that lane, the pending poison is matched into a
//! [`ForensicsRecord`] carrying the poison-to-fault latency in cycles and
//! in warp-level instructions — the measurable form of the paper's
//! delayed-termination story.

use std::collections::HashMap;

use crate::json::Json;

/// One OCU poisoning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoisonEvent {
    /// SM where the marked instruction executed.
    pub sm: usize,
    /// Warp index within the SM.
    pub warp: usize,
    /// Lane within the warp.
    pub lane: usize,
    /// Program counter of the poisoning instruction.
    pub pc: usize,
    /// Mnemonic of the poisoning instruction (e.g. `IADD64`).
    pub op: &'static str,
    /// Cycle of the poisoning issue.
    pub cycle: u64,
    /// Warp-level instructions issued (GPU-wide) at poison time.
    pub instr_index: u64,
}

/// One EC fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// SM where the dereference faulted.
    pub sm: usize,
    /// Warp index within the SM.
    pub warp: usize,
    /// Faulting lane.
    pub lane: usize,
    /// Program counter of the faulting load/store.
    pub pc: usize,
    /// Cycle of the faulting issue.
    pub cycle: u64,
    /// Warp-level instructions issued (GPU-wide) at fault time.
    pub instr_index: u64,
}

/// A matched poison→fault pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForensicsRecord {
    /// The poisoning.
    pub poison: PoisonEvent,
    /// The fault.
    pub fault: FaultEvent,
}

impl ForensicsRecord {
    /// Cycles between poisoning and fault.
    pub fn latency_cycles(&self) -> u64 {
        self.fault.cycle.saturating_sub(self.poison.cycle)
    }

    /// Warp-level instructions issued between poisoning and fault.
    pub fn latency_instructions(&self) -> u64 {
        self.fault.instr_index.saturating_sub(self.poison.instr_index)
    }

    /// JSON export of one record.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with(
                "poison",
                Json::obj()
                    .with("pc", self.poison.pc)
                    .with("op", self.poison.op)
                    .with("sm", self.poison.sm)
                    .with("warp", self.poison.warp)
                    .with("lane", self.poison.lane)
                    .with("cycle", self.poison.cycle),
            )
            .with(
                "fault",
                Json::obj()
                    .with("pc", self.fault.pc)
                    .with("sm", self.fault.sm)
                    .with("warp", self.fault.warp)
                    .with("lane", self.fault.lane)
                    .with("cycle", self.fault.cycle),
            )
            .with("latency_cycles", self.latency_cycles())
            .with("latency_instructions", self.latency_instructions())
    }
}

/// The provenance log.
#[derive(Debug, Clone, Default)]
pub struct ForensicsLog {
    /// Latest unconsumed poisoning per (sm, warp, lane). A lane that
    /// poisons twice before faulting keeps the most recent — matching the
    /// hardware, where the second clobber overwrites the register.
    pending: HashMap<(usize, usize, usize), PoisonEvent>,
    matched: Vec<ForensicsRecord>,
    /// Faults with no recorded poisoning on that lane (e.g. a pointer
    /// invalidated by `free`, or poison handed across lanes through
    /// memory — provenance the in-register scheme cannot see).
    unattributed: Vec<FaultEvent>,
}

impl ForensicsLog {
    /// An empty log.
    pub fn new() -> ForensicsLog {
        ForensicsLog::default()
    }

    /// Records an OCU poisoning.
    pub fn record_poison(&mut self, event: PoisonEvent) {
        self.pending.insert((event.sm, event.warp, event.lane), event);
    }

    /// Records an EC fault, matching it to the lane's pending poisoning
    /// if one exists. Returns the matched record, if any.
    pub fn record_fault(&mut self, event: FaultEvent) -> Option<ForensicsRecord> {
        match self.pending.remove(&(event.sm, event.warp, event.lane)) {
            Some(poison) => {
                let record = ForensicsRecord { poison, fault: event };
                self.matched.push(record);
                Some(record)
            }
            None => {
                self.unattributed.push(event);
                None
            }
        }
    }

    /// Matched poison→fault records, in fault order.
    pub fn records(&self) -> &[ForensicsRecord] {
        &self.matched
    }

    /// Faults that could not be attributed to an in-register poisoning.
    pub fn unattributed(&self) -> &[FaultEvent] {
        &self.unattributed
    }

    /// Poisonings still awaiting a dereference (delayed termination that
    /// never terminated — the Fig. 14 loop-idiom case).
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// JSON export of the whole log.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("records", Json::Arr(self.matched.iter().map(ForensicsRecord::to_json).collect()))
            .with("unattributed_faults", self.unattributed.len())
            .with("pending_poisons", self.pending.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poison(lane: usize, cycle: u64, instr: u64) -> PoisonEvent {
        PoisonEvent { sm: 0, warp: 1, lane, pc: 4, op: "IADD64", cycle, instr_index: instr }
    }

    fn fault(lane: usize, cycle: u64, instr: u64) -> FaultEvent {
        FaultEvent { sm: 0, warp: 1, lane, pc: 9, cycle, instr_index: instr }
    }

    #[test]
    fn matches_poison_to_fault_with_latencies() {
        let mut log = ForensicsLog::new();
        log.record_poison(poison(3, 100, 40));
        let rec = log.record_fault(fault(3, 250, 55)).expect("matched");
        assert_eq!(rec.latency_cycles(), 150);
        assert_eq!(rec.latency_instructions(), 15);
        assert_eq!(log.records().len(), 1);
        assert_eq!(log.pending_count(), 0);
    }

    #[test]
    fn fault_on_an_unpoisoned_lane_is_unattributed() {
        let mut log = ForensicsLog::new();
        log.record_poison(poison(0, 10, 1));
        assert!(log.record_fault(fault(7, 20, 2)).is_none());
        assert_eq!(log.unattributed().len(), 1);
        assert_eq!(log.pending_count(), 1, "lane 0 poison still pending");
    }

    #[test]
    fn repoisoning_keeps_the_latest() {
        let mut log = ForensicsLog::new();
        log.record_poison(poison(2, 10, 5));
        log.record_poison(poison(2, 90, 30));
        let rec = log.record_fault(fault(2, 100, 31)).unwrap();
        assert_eq!(rec.poison.cycle, 90);
        assert_eq!(rec.latency_cycles(), 10);
    }

    #[test]
    fn json_export_carries_the_acceptance_fields() {
        let mut log = ForensicsLog::new();
        log.record_poison(poison(1, 7, 3));
        log.record_fault(fault(1, 19, 8));
        let j = log.to_json();
        let rec = &j.get("records").unwrap().items()[0];
        assert_eq!(rec.get("poison").and_then(|p| p.get("pc")).and_then(Json::as_u64), Some(4));
        assert_eq!(rec.get("latency_cycles").and_then(Json::as_u64), Some(12));
    }
}
