//! Deterministic sampling profiles and log-bucketed latency histograms.
//!
//! The counter registry answers "how much, in total"; this module answers
//! the two questions totals cannot: *where do cycles go* (hot PCs, warp
//! states, occupancy — [`SmSample`] / [`SmProfile`] / [`KernelProfile`])
//! and *what does the tail look like* (latency distributions —
//! [`Histogram`]). Both are built from integers only and merge by plain
//! addition, so the simulator's determinism guarantee extends to them:
//! per-thread shards merged in canonical order are bit-identical to a
//! serial run, and no export can ever contain a NaN or infinity.
//!
//! # Bucket scheme
//!
//! [`Histogram`] uses log₂ buckets with [`HIST_SUB_BUCKETS`] linear
//! sub-buckets per octave (an HDR-style layout): values 0–7 land in exact
//! buckets, and every larger bucket spans at most 25% of its lower bound,
//! so reported quantiles overestimate the true value by < 25% while the
//! whole table stays a fixed 252-slot array. `count`, `sum`, `min` and
//! `max` are tracked exactly; merge is bucket-wise addition, which is
//! associative and order-independent by construction.

use std::collections::BTreeMap;

use crate::json::Json;
use crate::registry::Scope;

/// Sub-bucket resolution bits per octave (4 linear sub-buckets).
const HIST_SUB_BITS: u32 = 2;

/// Linear sub-buckets per octave.
pub const HIST_SUB_BUCKETS: usize = 1 << HIST_SUB_BITS;

/// Total bucket count: 4 exact buckets for 0–3, then 4 sub-buckets for
/// each of the 62 remaining octaves of the `u64` range.
pub const HIST_BUCKETS: usize = 63 * HIST_SUB_BUCKETS;

/// Bucket index of a value (total order, no gaps).
fn bucket_of(v: u64) -> usize {
    if v < HIST_SUB_BUCKETS as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let octave = msb - HIST_SUB_BITS + 1;
    let sub = (v >> (msb - HIST_SUB_BITS)) & (HIST_SUB_BUCKETS as u64 - 1);
    octave as usize * HIST_SUB_BUCKETS + sub as usize
}

/// Inclusive `(low, high)` value range of bucket `i`.
fn bucket_bounds(i: usize) -> (u64, u64) {
    if i < HIST_SUB_BUCKETS {
        return (i as u64, i as u64);
    }
    let octave = (i / HIST_SUB_BUCKETS) as u32;
    let sub = (i % HIST_SUB_BUCKETS) as u64;
    let msb = octave + HIST_SUB_BITS - 1;
    let width = 1u64 << (msb - HIST_SUB_BITS);
    let low = (1u64 << msb) + sub * width;
    // `low + (width - 1)` — the top bucket ends exactly at `u64::MAX`,
    // so adding the full width first would overflow.
    (low, low + (width - 1))
}

/// A log-bucketed latency histogram with exact count/sum/min/max and
/// lossless merge (see the module docs for the bucket scheme).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram { buckets: [0; HIST_BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Records one observation.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation (exact; 0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket holding the rank-`⌈q·count⌉` observation, clamped to the
    /// exact `[min, max]` envelope (so `quantile(1.0)` is the exact max).
    /// Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_bounds(i).1.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Folds `other` into `self`. Bucket-wise addition: associative,
    /// commutative, and exactly equal to having recorded every
    /// observation into one histogram in any order.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The delta histogram `self − earlier` (for diffable snapshots taken
    /// from the same monotonically-growing source). Bucket counts
    /// subtract exactly; `min`/`max` of the delta are re-derived from the
    /// surviving bucket bounds, so they are bucket-resolution
    /// approximations rather than exact observations.
    pub fn diff(&self, earlier: &Histogram) -> Histogram {
        let mut out = Histogram::new();
        for (i, (&a, &b)) in self.buckets.iter().zip(&earlier.buckets).enumerate() {
            let d = a.saturating_sub(b);
            if d > 0 {
                out.buckets[i] = d;
                let (lo, hi) = bucket_bounds(i);
                out.min = out.min.min(lo);
                out.max = out.max.max(hi.min(self.max));
            }
        }
        out.count = self.count.saturating_sub(earlier.count);
        out.sum = self.sum.saturating_sub(earlier.sum);
        out
    }

    /// Non-empty buckets as `(low, high, count)`, ascending.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets.iter().enumerate().filter(|(_, &n)| n > 0).map(|(i, &n)| {
            let (lo, hi) = bucket_bounds(i);
            (lo, hi, n)
        })
    }

    /// JSON export: summary quantiles plus the non-empty buckets.
    pub fn to_json(&self) -> Json {
        let buckets = self
            .nonzero_buckets()
            .map(|(lo, _, n)| Json::Arr(vec![Json::UInt(lo), Json::UInt(n)]))
            .collect();
        Json::obj()
            .with("count", self.count)
            .with("sum", self.sum)
            .with("min", self.min())
            .with("max", self.max)
            .with("mean", self.mean())
            .with("p50", self.p50())
            .with("p95", self.p95())
            .with("p99", self.p99())
            .with("buckets", Json::Arr(buckets))
    }
}

/// Scoped histograms, mirroring [`crate::CounterRegistry`]'s keying.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramRegistry {
    hists: BTreeMap<(Scope, &'static str), Histogram>,
    enabled: bool,
}

impl Default for HistogramRegistry {
    fn default() -> HistogramRegistry {
        HistogramRegistry::new()
    }
}

impl HistogramRegistry {
    /// An empty, recording registry.
    pub fn new() -> HistogramRegistry {
        HistogramRegistry { hists: BTreeMap::new(), enabled: true }
    }

    /// A registry that ignores every write.
    pub fn disabled() -> HistogramRegistry {
        HistogramRegistry { hists: BTreeMap::new(), enabled: false }
    }

    /// `true` if writes are recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one observation into the named histogram.
    pub fn record(&mut self, scope: Scope, name: &'static str, v: u64) {
        if !self.enabled {
            return;
        }
        self.hists.entry((scope, name)).or_default().record(v);
    }

    /// The named histogram, if anything was recorded there.
    pub fn get(&self, scope: Scope, name: &'static str) -> Option<&Histogram> {
        self.hists.get(&(scope, name))
    }

    /// All histograms, sorted by scope then name.
    pub fn iter(&self) -> impl Iterator<Item = (Scope, &'static str, &Histogram)> + '_ {
        self.hists.iter().map(|(&(s, n), h)| (s, n, h))
    }

    /// Number of distinct histograms.
    pub fn len(&self) -> usize {
        self.hists.len()
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.hists.is_empty()
    }

    /// Folds another registry into this one, histogram-wise.
    pub fn merge(&mut self, other: &HistogramRegistry) {
        for (&key, h) in &other.hists {
            self.hists.entry(key).or_default().merge(h);
        }
    }

    /// The delta registry `self − earlier`, histogram-wise; histograms
    /// whose delta is empty are omitted.
    pub fn diff(&self, earlier: &HistogramRegistry) -> HistogramRegistry {
        let mut out = HistogramRegistry::new();
        for (&(scope, name), h) in &self.hists {
            let d = match earlier.hists.get(&(scope, name)) {
                Some(e) => h.diff(e),
                None => h.clone(),
            };
            if !d.is_empty() {
                out.hists.insert((scope, name), d);
            }
        }
        out
    }

    /// JSON export grouped by scope label, like the counter registry.
    pub fn to_json(&self) -> Json {
        let mut out = Json::obj();
        let mut current: Option<(Scope, Json)> = None;
        for (scope, name, h) in self.iter() {
            match &mut current {
                Some((s, obj)) if *s == scope => {
                    obj.set(name, h.to_json());
                }
                _ => {
                    if let Some((s, obj)) = current.take() {
                        out.set(&s.label(), obj);
                    }
                    current = Some((scope, Json::obj().with(name, h.to_json())));
                }
            }
        }
        if let Some((s, obj)) = current {
            out.set(&s.label(), obj);
        }
        out
    }
}

/// What a resident warp was doing when a sample fired. Feeds the
/// stall-breakdown rows of the `profile` report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarpState {
    /// Issued an instruction this cycle.
    Issued,
    /// Eligible but lost scheduler arbitration.
    Ready,
    /// Waiting on an ALU-produced register or predicate.
    Scoreboard,
    /// Waiting on an in-flight memory result.
    LsuBusy,
    /// Waiting on a pending OCU verdict.
    OcuVerdict,
    /// In the launch/dispatch ramp (or past the program end, about to
    /// retire at its next issue slot).
    Ramp,
    /// Parked at a block barrier.
    Barrier,
    /// Retired.
    Retired,
}

/// Number of [`WarpState`] variants.
pub const WARP_STATES: usize = 8;

/// Display/metric names, indexed by [`WarpState::index`].
pub const WARP_STATE_NAMES: [&str; WARP_STATES] =
    ["issued", "ready", "scoreboard", "lsu_busy", "ocu_verdict", "ramp", "barrier", "retired"];

impl WarpState {
    /// Index into [`WARP_STATE_NAMES`] and the state-count arrays.
    pub fn index(self) -> usize {
        match self {
            WarpState::Issued => 0,
            WarpState::Ready => 1,
            WarpState::Scoreboard => 2,
            WarpState::LsuBusy => 3,
            WarpState::OcuVerdict => 4,
            WarpState::Ramp => 5,
            WarpState::Barrier => 6,
            WarpState::Retired => 7,
        }
    }

    /// Metric name.
    pub fn name(self) -> &'static str {
        WARP_STATE_NAMES[self.index()]
    }
}

/// One SM's snapshot at one sampled cycle, recorded thread-locally in the
/// engine's phase A and absorbed into a [`KernelProfile`] during the
/// single-threaded apply phase.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SmSample {
    /// Resident-warp counts per [`WarpState`].
    pub states: [u64; WARP_STATES],
    /// `(pc, warps)` issued this cycle, ascending by pc.
    pub pcs: Vec<(u32, u32)>,
}

/// A hot-PC table: samples per program counter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PcProfile {
    counts: BTreeMap<u32, u64>,
}

impl PcProfile {
    /// Adds `n` samples at `pc`.
    pub fn record(&mut self, pc: u32, n: u64) {
        *self.counts.entry(pc).or_insert(0) += n;
    }

    /// Samples at one pc.
    pub fn get(&self, pc: u32) -> u64 {
        self.counts.get(&pc).copied().unwrap_or(0)
    }

    /// Total samples across all PCs.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// `true` if no pc was ever sampled.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// All `(pc, samples)` entries, ascending by pc.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.counts.iter().map(|(&pc, &n)| (pc, n))
    }

    /// The `k` hottest PCs, descending by sample count (ties by pc).
    pub fn top_k(&self, k: usize) -> Vec<(u32, u64)> {
        let mut all: Vec<(u32, u64)> = self.iter().collect();
        all.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }

    /// Folds another table into this one.
    pub fn merge(&mut self, other: &PcProfile) {
        for (pc, n) in other.iter() {
            self.record(pc, n);
        }
    }

    /// The delta table `self − earlier` (zero entries omitted).
    pub fn diff(&self, earlier: &PcProfile) -> PcProfile {
        let mut out = PcProfile::default();
        for (pc, n) in self.iter() {
            let d = n.saturating_sub(earlier.get(pc));
            if d > 0 {
                out.record(pc, d);
            }
        }
        out
    }
}

/// Accumulated samples of one SM.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SmProfile {
    /// Sample events absorbed.
    pub samples: u64,
    /// Warp-state sample counts, indexed by [`WarpState::index`].
    pub states: [u64; WARP_STATES],
    /// Hot-PC table of issued instructions.
    pub pcs: PcProfile,
}

impl SmProfile {
    /// Absorbs one sample.
    pub fn absorb(&mut self, sample: &SmSample) {
        self.samples += 1;
        for (s, &n) in self.states.iter_mut().zip(&sample.states) {
            *s += n;
        }
        for &(pc, n) in &sample.pcs {
            self.pcs.record(pc, n as u64);
        }
    }

    /// Folds another SM profile into this one.
    pub fn merge(&mut self, other: &SmProfile) {
        self.samples += other.samples;
        for (s, &n) in self.states.iter_mut().zip(&other.states) {
            *s += n;
        }
        self.pcs.merge(&other.pcs);
    }

    /// Warp-state samples that were *live* (anything but retired).
    pub fn live_states(&self) -> u64 {
        self.states[..WarpState::Retired.index()].iter().sum()
    }

    /// Mean resident (non-retired) warps per sample — the occupancy the
    /// sampler observed.
    pub fn avg_occupancy(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.live_states() as f64 / self.samples as f64
        }
    }

    fn diff(&self, earlier: &SmProfile) -> SmProfile {
        let mut states = [0u64; WARP_STATES];
        for (d, (&a, &b)) in states.iter_mut().zip(self.states.iter().zip(&earlier.states)) {
            *d = a.saturating_sub(b);
        }
        SmProfile {
            samples: self.samples.saturating_sub(earlier.samples),
            states,
            pcs: self.pcs.diff(&earlier.pcs),
        }
    }

    fn to_json(&self) -> Json {
        let mut states = Json::obj();
        for (name, &n) in WARP_STATE_NAMES.iter().zip(&self.states) {
            states.set(name, n);
        }
        let pcs = self
            .pcs
            .iter()
            .map(|(pc, n)| Json::Arr(vec![Json::UInt(pc as u64), Json::UInt(n)]))
            .collect();
        Json::obj()
            .with("samples", self.samples)
            .with("avg_occupancy", self.avg_occupancy())
            .with("states", states)
            .with("pcs", Json::Arr(pcs))
    }
}

/// One kernel's whole sampling profile: per-SM shards keyed by SM index.
/// Lives in `SimStats`, so it inherits the determinism contract (and the
/// `PartialEq` the determinism suite compares with).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KernelProfile {
    /// Sampling period in cycles (0 = sampling was off).
    pub period: u64,
    /// Per-SM accumulated samples.
    pub per_sm: BTreeMap<usize, SmProfile>,
}

impl KernelProfile {
    /// `true` if no sample was ever absorbed.
    pub fn is_empty(&self) -> bool {
        self.per_sm.is_empty()
    }

    /// Absorbs one phase-A sample from SM `sm`.
    pub fn absorb(&mut self, sm: usize, sample: &SmSample) {
        self.per_sm.entry(sm).or_default().absorb(sample);
    }

    /// Folds another profile into this one, SM-wise.
    pub fn merge(&mut self, other: &KernelProfile) {
        if self.period == 0 {
            self.period = other.period;
        }
        for (&sm, p) in &other.per_sm {
            self.per_sm.entry(sm).or_default().merge(p);
        }
    }

    /// Total samples across every SM.
    pub fn samples(&self) -> u64 {
        self.per_sm.values().map(|p| p.samples).sum()
    }

    /// Warp-state totals across every SM.
    pub fn states(&self) -> [u64; WARP_STATES] {
        let mut out = [0u64; WARP_STATES];
        for p in self.per_sm.values() {
            for (o, &n) in out.iter_mut().zip(&p.states) {
                *o += n;
            }
        }
        out
    }

    /// The hot-PC table aggregated across every SM.
    pub fn pcs(&self) -> PcProfile {
        let mut out = PcProfile::default();
        for p in self.per_sm.values() {
            out.merge(&p.pcs);
        }
        out
    }

    /// The `k` hottest PCs across every SM.
    pub fn top_pcs(&self, k: usize) -> Vec<(u32, u64)> {
        self.pcs().top_k(k)
    }

    /// Mean occupancy across sampled SMs (0.0 when empty).
    pub fn avg_occupancy(&self) -> f64 {
        let samples = self.samples();
        if samples == 0 {
            0.0
        } else {
            let live: u64 = self.per_sm.values().map(SmProfile::live_states).sum();
            live as f64 / samples as f64
        }
    }

    /// The delta profile `self − earlier` (empty SM shards omitted).
    pub fn diff(&self, earlier: &KernelProfile) -> KernelProfile {
        let mut out = KernelProfile { period: self.period, per_sm: BTreeMap::new() };
        for (&sm, p) in &self.per_sm {
            let d = match earlier.per_sm.get(&sm) {
                Some(e) => p.diff(e),
                None => p.clone(),
            };
            if d.samples > 0 {
                out.per_sm.insert(sm, d);
            }
        }
        out
    }

    /// JSON export: period, totals, and the per-SM shards.
    pub fn to_json(&self) -> Json {
        let mut states = Json::obj();
        for (name, &n) in WARP_STATE_NAMES.iter().zip(&self.states()) {
            states.set(name, n);
        }
        let top = self
            .top_pcs(usize::MAX)
            .into_iter()
            .map(|(pc, n)| Json::Arr(vec![Json::UInt(pc as u64), Json::UInt(n)]))
            .collect();
        let mut per_sm = Json::obj();
        for (&sm, p) in &self.per_sm {
            per_sm.set(&format!("sm{sm}"), p.to_json());
        }
        Json::obj()
            .with("period", self.period)
            .with("samples", self.samples())
            .with("avg_occupancy", self.avg_occupancy())
            .with("states", states)
            .with("pcs", Json::Arr(top))
            .with("per_sm", per_sm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prng::SplitMix64;

    #[test]
    fn buckets_are_contiguous_and_monotonic() {
        let mut last = 0;
        for i in 0..HIST_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= hi, "bucket {i}");
            if i > 0 {
                assert_eq!(lo, last + 1, "bucket {i} starts where {} ended", i - 1);
            }
            assert_eq!(bucket_of(lo), i);
            assert_eq!(bucket_of(hi), i);
            last = hi;
        }
        assert_eq!(last, u64::MAX);
    }

    #[test]
    fn quantiles_bound_the_data_with_bucket_resolution() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.quantile(1.0), 1000, "p100 is the exact max");
        let p50 = h.p50();
        assert!((500..=640).contains(&p50), "p50 {p50} within one bucket of 500");
        let p99 = h.p99();
        assert!((990..=1000).contains(&p99), "p99 {p99}");
        assert!((h.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut rng = SplitMix64::new(0xB0C);
        let values: Vec<u64> = (0..500).map(|_| rng.below(100_000)).collect();
        let mut whole = Histogram::new();
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for (i, &v) in values.iter().enumerate() {
            whole.record(v);
            if i % 2 == 0 {
                a.record(v)
            } else {
                b.record(v)
            }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, whole);
        assert_eq!(ba, whole, "merge is commutative");
    }

    #[test]
    fn diff_recovers_the_increment() {
        let mut early = Histogram::new();
        early.record(10);
        let mut late = early.clone();
        late.record(700);
        late.record(701);
        let d = late.diff(&early);
        assert_eq!(d.count(), 2);
        assert_eq!(d.sum(), 1401);
        assert!(d.min() >= 640 && d.max() <= 767, "delta bounds at bucket resolution");
    }

    #[test]
    fn registry_scopes_are_independent_and_json_groups() {
        let mut r = HistogramRegistry::new();
        r.record(Scope::Stream(0), "kernel_exec_cycles", 100);
        r.record(Scope::Stream(0), "kernel_exec_cycles", 300);
        r.record(Scope::Tenant(1), "copy_cycles", 5);
        assert_eq!(r.get(Scope::Stream(0), "kernel_exec_cycles").unwrap().count(), 2);
        assert!(r.get(Scope::Stream(1), "kernel_exec_cycles").is_none());
        let j = r.to_json();
        let s0 = j.get("stream0").and_then(|s| s.get("kernel_exec_cycles")).unwrap();
        assert_eq!(s0.get("count").and_then(Json::as_u64), Some(2));
        assert!(j.get("tenant1").and_then(|t| t.get("copy_cycles")).is_some());
    }

    #[test]
    fn profile_absorb_merge_and_top_pcs() {
        let mut sample = SmSample::default();
        sample.states[WarpState::Issued.index()] = 2;
        sample.states[WarpState::Retired.index()] = 1;
        sample.pcs = vec![(3, 1), (7, 1)];
        let mut a = KernelProfile { period: 32, ..KernelProfile::default() };
        a.absorb(0, &sample);
        a.absorb(0, &sample);
        a.absorb(1, &sample);
        assert_eq!(a.samples(), 3);
        assert_eq!(a.states()[WarpState::Issued.index()], 6);
        assert_eq!(a.avg_occupancy(), 2.0, "2 live of 3 resident per sample");
        let mut b = KernelProfile::default();
        b.absorb(1, &sample);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.samples(), 4);
        assert_eq!(merged.period, 32);
        let top = merged.top_pcs(1);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0], (3, 4), "ties break toward the lower pc");
        let d = merged.diff(&a);
        assert_eq!(d.samples(), 1);
        assert_eq!(d.per_sm.len(), 1);
    }
}
