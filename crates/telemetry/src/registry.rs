//! A scoped counter registry.
//!
//! `SimStats` keeps the handful of headline numbers every run needs;
//! everything finer-grained — per-SM cache behavior, per-warp issue
//! counts, per-mechanism check/poison/fault tallies, scheduler stall
//! reasons — lands here, keyed by [`Scope`] and a static counter name.
//! The registry is a plain sorted map: cheap enough to update from the
//! simulator's issue loop, and its JSON export groups counters by scope
//! so reports stay readable.

use std::collections::BTreeMap;

use crate::json::Json;

/// Where a counter was measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Scope {
    /// Whole-GPU totals.
    Gpu,
    /// One streaming multiprocessor.
    Sm(usize),
    /// One warp on one SM.
    Warp {
        /// SM index.
        sm: usize,
        /// Warp index within the SM.
        warp: usize,
    },
    /// A memory-safety mechanism, by its reported name.
    Mechanism(&'static str),
    /// One host-runtime stream (`lmi-runtime`): kernels, copies and events
    /// submitted to the stream land here.
    Stream(usize),
    /// One runtime tenant: every stream owned by the tenant rolls up here,
    /// so cross-tenant attribution (who faulted, who moved the bytes)
    /// survives stream multiplexing.
    Tenant(usize),
}

impl Scope {
    /// A stable label for reports: `gpu`, `sm3`, `sm3/w12`, `mech:lmi`,
    /// `stream2`, `tenant1`.
    pub fn label(&self) -> String {
        match self {
            Scope::Gpu => "gpu".to_string(),
            Scope::Sm(sm) => format!("sm{sm}"),
            Scope::Warp { sm, warp } => format!("sm{sm}/w{warp}"),
            Scope::Mechanism(name) => format!("mech:{name}"),
            Scope::Stream(stream) => format!("stream{stream}"),
            Scope::Tenant(tenant) => format!("tenant{tenant}"),
        }
    }
}

/// The counter registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterRegistry {
    counters: BTreeMap<(Scope, &'static str), u64>,
    enabled: bool,
}

impl Default for CounterRegistry {
    fn default() -> CounterRegistry {
        CounterRegistry::new()
    }
}

impl CounterRegistry {
    /// An empty, recording registry.
    pub fn new() -> CounterRegistry {
        CounterRegistry { counters: BTreeMap::new(), enabled: true }
    }

    /// A registry that ignores every write — lets untelemetered simulation
    /// paths share the instrumented code without paying the map updates.
    pub fn disabled() -> CounterRegistry {
        CounterRegistry { counters: BTreeMap::new(), enabled: false }
    }

    /// `true` if writes are recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Adds `delta` to a counter (creating it at zero).
    pub fn add(&mut self, scope: Scope, name: &'static str, delta: u64) {
        if !self.enabled {
            return;
        }
        *self.counters.entry((scope, name)).or_insert(0) += delta;
    }

    /// Increments a counter by one.
    pub fn inc(&mut self, scope: Scope, name: &'static str) {
        self.add(scope, name, 1);
    }

    /// Reads a counter (zero if never written).
    pub fn get(&self, scope: Scope, name: &'static str) -> u64 {
        self.counters.get(&(scope, name)).copied().unwrap_or(0)
    }

    /// Sums `name` across every scope of any kind.
    pub fn sum(&self, name: &'static str) -> u64 {
        self.counters.iter().filter(|((_, n), _)| *n == name).map(|(_, v)| v).sum()
    }

    /// Sums `name` across all [`Scope::Sm`] scopes.
    pub fn sum_sms(&self, name: &'static str) -> u64 {
        self.counters
            .iter()
            .filter(|((s, n), _)| *n == name && matches!(s, Scope::Sm(_)))
            .map(|(_, v)| v)
            .sum()
    }

    /// All counters, sorted by scope then name.
    pub fn iter(&self) -> impl Iterator<Item = (Scope, &'static str, u64)> + '_ {
        self.counters.iter().map(|(&(s, n), &v)| (s, n, v))
    }

    /// Number of distinct counters.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Folds another registry into this one (used when merging per-phase
    /// runs into a campaign total).
    pub fn merge(&mut self, other: &CounterRegistry) {
        for (&key, &v) in &other.counters {
            *self.counters.entry(key).or_insert(0) += v;
        }
    }

    /// JSON export: `{ "gpu": {...}, "sm0": {...}, "mech:lmi": {...} }`.
    pub fn to_json(&self) -> Json {
        let mut out = Json::obj();
        let mut current: Option<(Scope, Json)> = None;
        for (scope, name, value) in self.iter() {
            match &mut current {
                Some((s, obj)) if *s == scope => {
                    obj.set(name, value);
                }
                _ => {
                    if let Some((s, obj)) = current.take() {
                        out.set(&s.label(), obj);
                    }
                    current = Some((scope, Json::obj().with(name, value)));
                }
            }
        }
        if let Some((s, obj)) = current {
            out.set(&s.label(), obj);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_counters_are_independent() {
        let mut r = CounterRegistry::new();
        r.inc(Scope::Sm(0), "issued");
        r.add(Scope::Sm(1), "issued", 4);
        r.inc(Scope::Mechanism("lmi"), "poisoned");
        assert_eq!(r.get(Scope::Sm(0), "issued"), 1);
        assert_eq!(r.get(Scope::Sm(1), "issued"), 4);
        assert_eq!(r.sum_sms("issued"), 5);
        assert_eq!(r.sum("issued"), 5);
        assert_eq!(r.get(Scope::Gpu, "issued"), 0, "unwritten counter reads zero");
    }

    #[test]
    fn merge_adds_counterwise() {
        let mut a = CounterRegistry::new();
        a.add(Scope::Gpu, "cycles", 10);
        let mut b = CounterRegistry::new();
        b.add(Scope::Gpu, "cycles", 5);
        b.inc(Scope::Sm(2), "stall.scoreboard");
        a.merge(&b);
        assert_eq!(a.get(Scope::Gpu, "cycles"), 15);
        assert_eq!(a.get(Scope::Sm(2), "stall.scoreboard"), 1);
    }

    #[test]
    fn json_groups_by_scope() {
        let mut r = CounterRegistry::new();
        r.add(Scope::Gpu, "cycles", 7);
        r.add(Scope::Sm(0), "issued", 3);
        r.add(Scope::Sm(0), "stall.scoreboard", 2);
        let j = r.to_json();
        assert_eq!(j.get("gpu").and_then(|g| g.get("cycles")).and_then(Json::as_u64), Some(7));
        let sm0 = j.get("sm0").unwrap();
        assert_eq!(sm0.get("issued").and_then(Json::as_u64), Some(3));
        assert_eq!(sm0.get("stall.scoreboard").and_then(Json::as_u64), Some(2));
    }
}
