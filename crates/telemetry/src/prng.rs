//! A deterministic SplitMix64 generator.
//!
//! Two jobs: (1) reservoir-style sampling decisions inside the tracer,
//! where reproducibility across runs matters more than statistical
//! sophistication; (2) the workspace's randomized property tests, which
//! previously pulled in `proptest`/`rand` — external dependencies the
//! offline build cannot fetch. SplitMix64 passes BigCrush for these
//! purposes and is four lines of code.

/// SplitMix64 (Steele, Lea & Flood 2014). Never returns correlated
/// streams for distinct seeds, and seed 0 is fine.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Lemire's multiply-shift rejection; bias is < 2^-64 without the
        // rejection loop, which is fine for tests and sampling — but the
        // loop keeps the distribution exact.
        loop {
            let x = self.next_u64();
            let (hi, lo) = {
                let wide = (x as u128) * (bound as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= bound || lo >= (bound.wrapping_neg() % bound) {
                return hi;
            }
        }
    }

    /// Uniform in `[lo, hi)`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        lo + self.below(hi - lo)
    }

    /// Uniform signed value in `[lo, hi)`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo < hi);
        lo.wrapping_add(self.below(hi.wrapping_sub(lo) as u64) as i64)
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniformly chosen element of `items`.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_stays_in_bounds_and_hits_everything_small() {
        let mut rng = SplitMix64::new(7);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let v = rng.below(8);
            assert!(v < 8);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 8 buckets hit in 1000 draws");
    }

    #[test]
    fn range_and_signed_range_respect_endpoints() {
        let mut rng = SplitMix64::new(9);
        for _ in 0..1000 {
            let v = rng.range(10, 20);
            assert!((10..20).contains(&v));
            let s = rng.range_i64(-5, 5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitMix64::new(3);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SplitMix64::new(1);
        assert!(!(0..100).any(|_| rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
    }
}
