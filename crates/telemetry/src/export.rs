//! Metrics export: Prometheus text exposition and JSON snapshots.
//!
//! [`MetricsFrame`] is an owned snapshot of every counter scope, every
//! histogram, and every sampling profile a run produced. It is *diffable*
//! (all sources are monotonic, so `later.diff(&earlier)` is the activity
//! in between), comparable (`PartialEq`, for the determinism suite), and
//! renders two ways:
//!
//! * [`MetricsFrame::to_json`] — a nested document built on the crate's
//!   hand-rolled encoder, the machine-readable side of `--json` reports;
//! * [`MetricsFrame::to_prometheus`] — the Prometheus text exposition
//!   format (`# TYPE` families, `{label="value"}` samples, cumulative
//!   `_bucket`/`_sum`/`_count` for histograms), so a scrape endpoint or a
//!   file-based collector can ingest the same numbers.
//!
//! [`parse_prometheus`] is the minimal counterpart parser used by the
//! observability tests to prove the exposition round-trips: every sample
//! it yields must match the JSON snapshot, name for name, label for
//! label, value for value. Neither direction can ever emit or accept a
//! NaN or infinity — all sources are integers (plus finite derived
//! rates).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::json::Json;
use crate::profiler::{HistogramRegistry, KernelProfile, WARP_STATE_NAMES};
use crate::registry::{CounterRegistry, Scope};

/// Prefix of every exported metric family.
const METRIC_PREFIX: &str = "lmi_";

/// Maps a counter/histogram name to a valid Prometheus metric name:
/// `lmi_` + the name with every character outside `[a-zA-Z0-9_:]`
/// replaced by `_` (e.g. `stall.scoreboard` → `lmi_stall_scoreboard`).
pub fn metric_name(name: &str) -> String {
    let mut out = String::with_capacity(METRIC_PREFIX.len() + name.len());
    out.push_str(METRIC_PREFIX);
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn sample_line(out: &mut String, name: &str, labels: &[(&str, String)], value: &str) {
    out.push_str(name);
    if !labels.is_empty() {
        out.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{k}=\"{}\"", escape_label(v));
        }
        out.push('}');
    }
    let _ = writeln!(out, " {value}");
}

/// One parsed exposition sample.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Metric name (family plus any `_bucket`/`_sum`/`_count` suffix).
    pub name: String,
    /// Label pairs in appearance order.
    pub labels: Vec<(String, String)>,
    /// Sample value (always finite).
    pub value: f64,
}

impl PromSample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

/// Parses Prometheus text exposition into its samples. `#` comment/type
/// lines and blank lines are skipped; anything else must be
/// `name[{labels}] value`. Rejects non-finite values — our exporters
/// never produce them, so one appearing means a corrupted document.
pub fn parse_prometheus(text: &str) -> Result<Vec<PromSample>, String> {
    let mut out = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |m: &str| format!("line {}: {m}: {line}", ln + 1);
        let (head, value_text) = match line.find('}') {
            Some(close) => {
                let v = line[close + 1..].trim();
                (&line[..close + 1], v)
            }
            None => {
                let sp = line.find(' ').ok_or_else(|| err("expected `name value`"))?;
                (&line[..sp], line[sp + 1..].trim())
            }
        };
        let (name, labels) = match head.find('{') {
            Some(open) => {
                let name = head[..open].to_string();
                let body = head[open + 1..].strip_suffix('}').ok_or_else(|| err("bad labels"))?;
                let mut labels = Vec::new();
                for pair in body.split(',').filter(|p| !p.is_empty()) {
                    let eq = pair.find('=').ok_or_else(|| err("label without `=`"))?;
                    let key = pair[..eq].trim().to_string();
                    let raw = pair[eq + 1..].trim();
                    let quoted = raw
                        .strip_prefix('"')
                        .and_then(|r| r.strip_suffix('"'))
                        .ok_or_else(|| err("unquoted label value"))?;
                    let mut val = String::new();
                    let mut escaped = false;
                    for c in quoted.chars() {
                        if escaped {
                            val.push(match c {
                                'n' => '\n',
                                other => other,
                            });
                            escaped = false;
                        } else if c == '\\' {
                            escaped = true;
                        } else {
                            val.push(c);
                        }
                    }
                    labels.push((key, val));
                }
                (name, labels)
            }
            None => (head.to_string(), Vec::new()),
        };
        if name.is_empty() {
            return Err(err("empty metric name"));
        }
        let value: f64 = value_text.parse().map_err(|_| err("bad value"))?;
        if !value.is_finite() {
            return Err(err("non-finite value"));
        }
        out.push(PromSample { name, labels, value });
    }
    Ok(out)
}

/// An owned, diffable snapshot of every counter, histogram and profile.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsFrame {
    /// Scoped counters.
    pub counters: CounterRegistry,
    /// Scoped latency histograms.
    pub histograms: HistogramRegistry,
    /// Sampling profiles, keyed by kernel (program) name.
    pub profiles: BTreeMap<String, KernelProfile>,
    /// Timeline records the bounded trace ring had to evict.
    pub dropped_trace_events: u64,
}

impl MetricsFrame {
    /// `true` if nothing at all was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.histograms.is_empty()
            && self.profiles.is_empty()
            && self.dropped_trace_events == 0
    }

    /// The delta frame `self − earlier`: counters and histograms
    /// subtract source-wise (all are monotonic), profiles subtract
    /// per-SM, zero entries are dropped.
    pub fn diff(&self, earlier: &MetricsFrame) -> MetricsFrame {
        let mut counters = CounterRegistry::new();
        for (scope, name, v) in self.counters.iter() {
            let d = v.saturating_sub(earlier.counters.get(scope, name));
            if d > 0 {
                counters.add(scope, name, d);
            }
        }
        let mut profiles = BTreeMap::new();
        for (name, p) in &self.profiles {
            let d = match earlier.profiles.get(name) {
                Some(e) => p.diff(e),
                None => p.clone(),
            };
            if !d.is_empty() {
                profiles.insert(name.clone(), d);
            }
        }
        MetricsFrame {
            counters,
            histograms: self.histograms.diff(&earlier.histograms),
            profiles,
            dropped_trace_events: self
                .dropped_trace_events
                .saturating_sub(earlier.dropped_trace_events),
        }
    }

    /// JSON snapshot of the whole frame.
    pub fn to_json(&self) -> Json {
        let mut profiles = Json::obj();
        for (name, p) in &self.profiles {
            profiles.set(name, p.to_json());
        }
        Json::obj()
            .with("counters", self.counters.to_json())
            .with("histograms", self.histograms.to_json())
            .with("profiles", profiles)
            .with("dropped_trace_events", self.dropped_trace_events)
    }

    /// Prometheus text exposition of the whole frame. Counter scopes
    /// become a `scope` label carrying [`Scope::label`] (the same key the
    /// JSON snapshot groups by); histograms render cumulative
    /// `_bucket{le=...}` series plus `_sum`/`_count`/`_min`/`_max`;
    /// profiles render per-kernel sample/state/pc series.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();

        // Counters, grouped into families so each gets one # TYPE line.
        let mut families: BTreeMap<String, Vec<(Scope, u64)>> = BTreeMap::new();
        for (scope, name, v) in self.counters.iter() {
            families.entry(metric_name(name)).or_default().push((scope, v));
        }
        for (family, samples) in &families {
            let _ = writeln!(out, "# TYPE {family} counter");
            for (scope, v) in samples {
                sample_line(&mut out, family, &[("scope", scope.label())], &v.to_string());
            }
        }

        // Histograms: one family per name, scopes as labels.
        let mut hist_families: BTreeMap<String, Vec<(Scope, &crate::profiler::Histogram)>> =
            BTreeMap::new();
        for (scope, name, h) in self.histograms.iter() {
            hist_families.entry(metric_name(name)).or_default().push((scope, h));
        }
        for (family, entries) in &hist_families {
            let _ = writeln!(out, "# TYPE {family} histogram");
            for (scope, h) in entries {
                let scope_label = scope.label();
                let mut cum = 0u64;
                for (_, hi, n) in h.nonzero_buckets() {
                    cum += n;
                    sample_line(
                        &mut out,
                        &format!("{family}_bucket"),
                        &[("scope", scope_label.clone()), ("le", hi.to_string())],
                        &cum.to_string(),
                    );
                }
                sample_line(
                    &mut out,
                    &format!("{family}_bucket"),
                    &[("scope", scope_label.clone()), ("le", "+Inf".to_string())],
                    &h.count().to_string(),
                );
                let scope_only = [("scope", scope_label)];
                sample_line(&mut out, &format!("{family}_sum"), &scope_only, &h.sum().to_string());
                sample_line(
                    &mut out,
                    &format!("{family}_count"),
                    &scope_only,
                    &h.count().to_string(),
                );
                sample_line(&mut out, &format!("{family}_min"), &scope_only, &h.min().to_string());
                sample_line(&mut out, &format!("{family}_max"), &scope_only, &h.max().to_string());
            }
        }

        // Profiles.
        if !self.profiles.is_empty() {
            let _ = writeln!(out, "# TYPE lmi_profile_samples counter");
            for (kernel, p) in &self.profiles {
                sample_line(
                    &mut out,
                    "lmi_profile_samples",
                    &[("kernel", kernel.clone())],
                    &p.samples().to_string(),
                );
            }
            let _ = writeln!(out, "# TYPE lmi_profile_warp_state counter");
            for (kernel, p) in &self.profiles {
                for (name, &n) in WARP_STATE_NAMES.iter().zip(&p.states()) {
                    sample_line(
                        &mut out,
                        "lmi_profile_warp_state",
                        &[("kernel", kernel.clone()), ("state", name.to_string())],
                        &n.to_string(),
                    );
                }
            }
            let _ = writeln!(out, "# TYPE lmi_profile_pc_samples counter");
            for (kernel, p) in &self.profiles {
                for (pc, n) in p.pcs().iter() {
                    sample_line(
                        &mut out,
                        "lmi_profile_pc_samples",
                        &[("kernel", kernel.clone()), ("pc", pc.to_string())],
                        &n.to_string(),
                    );
                }
            }
        }

        let _ = writeln!(out, "# TYPE lmi_trace_dropped_events counter");
        sample_line(
            &mut out,
            "lmi_trace_dropped_events",
            &[],
            &self.dropped_trace_events.to_string(),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::{SmSample, WarpState};

    fn sample_frame() -> MetricsFrame {
        let mut frame = MetricsFrame::default();
        frame.counters.add(Scope::Gpu, "cycles", 100);
        frame.counters.add(Scope::Sm(0), "stall.scoreboard", 7);
        frame.counters.add(Scope::Tenant(1), "violations", 2);
        frame.histograms.record(Scope::Stream(0), "kernel_exec_cycles", 120);
        frame.histograms.record(Scope::Stream(0), "kernel_exec_cycles", 90);
        let mut s = SmSample::default();
        s.states[WarpState::Issued.index()] = 3;
        s.pcs = vec![(4, 2)];
        let mut p = KernelProfile { period: 64, ..KernelProfile::default() };
        p.absorb(2, &s);
        frame.profiles.insert("hotspot".to_string(), p);
        frame.dropped_trace_events = 5;
        frame
    }

    #[test]
    fn exposition_parses_and_matches_the_frame() {
        let frame = sample_frame();
        let samples = parse_prometheus(&frame.to_prometheus()).unwrap();
        let find = |name: &str, scope: Option<&str>| -> f64 {
            samples
                .iter()
                .find(|s| s.name == name && s.label("scope") == scope)
                .unwrap_or_else(|| panic!("{name} {scope:?} missing"))
                .value
        };
        assert_eq!(find("lmi_cycles", Some("gpu")), 100.0);
        assert_eq!(find("lmi_stall_scoreboard", Some("sm0")), 7.0);
        assert_eq!(find("lmi_kernel_exec_cycles_count", Some("stream0")), 2.0);
        assert_eq!(find("lmi_kernel_exec_cycles_sum", Some("stream0")), 210.0);
        assert_eq!(find("lmi_trace_dropped_events", None), 5.0);
        let state = samples
            .iter()
            .find(|s| {
                s.name == "lmi_profile_warp_state"
                    && s.label("kernel") == Some("hotspot")
                    && s.label("state") == Some("issued")
            })
            .unwrap();
        assert_eq!(state.value, 3.0);
        // The +Inf bucket equals the count (the exposition invariant).
        let inf = samples
            .iter()
            .find(|s| s.name == "lmi_kernel_exec_cycles_bucket" && s.label("le") == Some("+Inf"))
            .unwrap();
        assert_eq!(inf.value, 2.0);
    }

    #[test]
    fn parser_rejects_malformed_and_non_finite_lines() {
        assert!(parse_prometheus("lmi_x{scope=gpu} 1").is_err(), "unquoted label");
        assert!(parse_prometheus("lmi_x NaN").is_err(), "NaN value");
        assert!(parse_prometheus("lmi_x Inf").is_err(), "infinite value");
        assert!(parse_prometheus("justonetoken").is_err());
        assert!(parse_prometheus("# a comment\n\nlmi_ok 4").unwrap().len() == 1);
    }

    #[test]
    fn diff_is_the_activity_between_snapshots() {
        let early = sample_frame();
        let mut late = early.clone();
        late.counters.add(Scope::Gpu, "cycles", 50);
        late.histograms.record(Scope::Stream(0), "kernel_exec_cycles", 500);
        let d = late.diff(&early);
        assert_eq!(d.counters.get(Scope::Gpu, "cycles"), 50);
        assert_eq!(d.counters.get(Scope::Sm(0), "stall.scoreboard"), 0, "unchanged drops out");
        let h = d.histograms.get(Scope::Stream(0), "kernel_exec_cycles").unwrap();
        assert_eq!(h.count(), 1);
        assert!(d.profiles.is_empty(), "unchanged profile drops out");
        assert_eq!(d.dropped_trace_events, 0);
        // JSON and exposition of the delta stay well-formed.
        assert!(crate::json::parse(&d.to_json().to_compact()).is_ok());
        assert!(parse_prometheus(&d.to_prometheus()).is_ok());
    }

    #[test]
    fn metric_names_are_sanitized() {
        assert_eq!(metric_name("stall.scoreboard"), "lmi_stall_scoreboard");
        assert_eq!(metric_name("l1.hits"), "lmi_l1_hits");
        assert_eq!(metric_name("kernel_exec_cycles"), "lmi_kernel_exec_cycles");
    }
}
