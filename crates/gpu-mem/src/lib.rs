//! # lmi-mem — GPU memory-hierarchy substrate
//!
//! The timing and functional memory model underneath the `lmi-sim`
//! cycle simulator, mirroring the MacSim configuration of paper Table IV:
//!
//! * [`cache`] — set-associative caches with LRU replacement (per-SM L1:
//!   96 KB, 30-cycle latency; shared L2: 4.5 MB, 24-way, 200-cycle latency);
//! * [`dram`] — an HBM-style DRAM model with fixed access latency plus a
//!   bandwidth-limiting transaction queue;
//! * [`hierarchy`] — configuration of the composed L1 → L2 → DRAM path;
//! * [`banks`] — the shared memory system (L2 slices + MSHRs + DRAM
//!   channel groups + backing store) sharded into address-interleaved
//!   banks so the simulator's shared-state apply can run bank-parallel;
//! * [`backing`] — a sparse functional byte store so kernels move real data
//!   (needed by the security suite to demonstrate actual corruption);
//! * [`layout`] — the virtual-address-space layout used by the allocators
//!   (global arena, device-heap arena, per-thread local windows).

pub mod backing;
pub mod banks;
pub mod cache;
pub mod dram;
pub mod hierarchy;
pub mod layout;

pub use backing::SparseMemory;
pub use banks::{max_supported_banks, BankRouter, BankedHierarchy, BankedMemory, MemBank};
pub use cache::{Cache, CacheConfig, CacheStats};
pub use dram::{Dram, DramConfig};
pub use hierarchy::HierarchyConfig;
