//! HBM-style DRAM timing model: fixed access latency plus a per-channel
//! bandwidth limit.

/// DRAM configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Capacity in bytes (Table IV: 8 GB HBM).
    pub capacity_bytes: u64,
    /// Access latency in core cycles once a transaction issues.
    pub access_latency: u32,
    /// Number of independent channels.
    pub channels: u32,
    /// Minimum core cycles between transactions on one channel
    /// (the bandwidth limit: one 128 B transaction per interval).
    pub channel_interval: u32,
    /// Transaction granularity in bytes.
    pub transaction_bytes: u64,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            capacity_bytes: 8 * 1024 * 1024 * 1024,
            access_latency: 350,
            channels: 32,
            channel_interval: 1,
            transaction_bytes: 128,
        }
    }
}

/// The DRAM device: tracks when each channel is next free.
#[derive(Debug, Clone)]
pub struct Dram {
    cfg: DramConfig,
    channel_free_at: Vec<u64>,
    transactions: u64,
}

impl Dram {
    /// Creates a DRAM with the given configuration.
    pub fn new(cfg: DramConfig) -> Dram {
        Dram { cfg, channel_free_at: vec![0; cfg.channels as usize], transactions: 0 }
    }

    /// The configuration.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Issues a transaction for `addr` at time `now`; returns the cycle the
    /// data is available. Channels interleave on transaction granularity.
    pub fn access(&mut self, addr: u64, now: u64) -> u64 {
        self.transactions += 1;
        let channel = ((addr / self.cfg.transaction_bytes) % self.cfg.channels as u64) as usize;
        let issue = self.channel_free_at[channel].max(now);
        self.channel_free_at[channel] = issue + self.cfg.channel_interval as u64;
        issue + self.cfg.access_latency as u64
    }

    /// Total transactions serviced.
    pub fn transactions(&self) -> u64 {
        self.transactions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unloaded_access_takes_fixed_latency() {
        let mut d = Dram::new(DramConfig::default());
        let ready = d.access(0x1000, 100);
        assert_eq!(ready, 100 + 350);
    }

    #[test]
    fn same_channel_back_to_back_queues() {
        let cfg = DramConfig { channels: 1, channel_interval: 4, ..DramConfig::default() };
        let mut d = Dram::new(cfg);
        let a = d.access(0, 0);
        let b = d.access(0, 0);
        assert_eq!(a, 350);
        assert_eq!(b, 4 + 350, "second transaction waits for the channel");
    }

    #[test]
    fn different_channels_proceed_in_parallel() {
        let cfg = DramConfig { channels: 2, channel_interval: 100, ..DramConfig::default() };
        let mut d = Dram::new(cfg);
        let a = d.access(0, 0);
        let b = d.access(128, 0); // next 128 B transaction -> channel 1
        assert_eq!(a, b, "independent channels do not queue on each other");
    }

    #[test]
    fn transaction_counter_accumulates() {
        let mut d = Dram::new(DramConfig::default());
        d.access(0, 0);
        d.access(4096, 0);
        assert_eq!(d.transactions(), 2);
    }
}
