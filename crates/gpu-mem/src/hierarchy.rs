//! The composed L1 → L2 → DRAM lookup path.

use std::collections::HashMap;

use crate::cache::{Cache, CacheConfig, CacheStats};
use crate::dram::{Dram, DramConfig};

/// Configuration of the full hierarchy (defaults follow paper Table IV).
#[derive(Debug, Clone, Copy)]
pub struct HierarchyConfig {
    /// Number of per-SM L1 caches.
    pub num_l1: usize,
    /// L1 geometry.
    pub l1: CacheConfig,
    /// L2 geometry.
    pub l2: CacheConfig,
    /// DRAM parameters.
    pub dram: DramConfig,
    /// Shared-memory access latency in cycles (L1-comparable, §II-A).
    pub shared_latency: u32,
}

impl HierarchyConfig {
    /// Table IV defaults for `num_l1` SMs.
    pub fn table4(num_l1: usize) -> HierarchyConfig {
        HierarchyConfig {
            num_l1,
            l1: CacheConfig::l1_default(),
            l2: CacheConfig::l2_default(),
            dram: DramConfig::default(),
            shared_latency: 25,
        }
    }
}

/// The memory hierarchy timing model.
#[derive(Debug)]
pub struct MemoryHierarchy {
    cfg: HierarchyConfig,
    l1: Vec<Cache>,
    l2: Cache,
    dram: Dram,
    /// MSHR-style merge of in-flight line fills: line -> fill-ready cycle.
    /// A request for a line already being fetched waits for that fill
    /// instead of issuing a redundant DRAM transaction.
    inflight: HashMap<u64, u64>,
    /// Merged (MSHR-hit) requests, for statistics.
    mshr_merges: u64,
}

impl MemoryHierarchy {
    /// Builds the hierarchy.
    pub fn new(cfg: HierarchyConfig) -> MemoryHierarchy {
        MemoryHierarchy {
            cfg,
            l1: (0..cfg.num_l1).map(|_| Cache::new(cfg.l1)).collect(),
            l2: Cache::new(cfg.l2),
            dram: Dram::new(cfg.dram),
            inflight: HashMap::new(),
            mshr_merges: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// Performs a DRAM-backed access (global/local/heap) from SM `sm`
    /// at time `now`; returns the completion cycle.
    ///
    /// # Panics
    ///
    /// Panics if `sm` is out of range.
    pub fn access_dram_backed(&mut self, sm: usize, addr: u64, now: u64) -> u64 {
        let l1 = &mut self.l1[sm];
        if l1.access(addr) {
            return now + self.cfg.l1.hit_latency as u64;
        }
        if self.l2.access(addr) {
            return now + self.cfg.l2.hit_latency as u64;
        }
        // MSHR merge: if this line is already being fetched, ride the fill.
        let line = addr & !(self.cfg.l2.line_bytes - 1);
        if let Some(&ready) = self.inflight.get(&line) {
            if ready > now {
                self.mshr_merges += 1;
                return ready;
            }
        }
        let data_at = self.dram.access(addr, now + self.cfg.l2.hit_latency as u64);
        self.inflight.insert(line, data_at);
        if self.inflight.len() > 4096 {
            self.inflight.retain(|_, &mut r| r > now);
        }
        data_at
    }

    /// MSHR-merged request count.
    pub fn mshr_merges(&self) -> u64 {
        self.mshr_merges
    }

    /// Performs a shared-memory access (fixed low latency, no cache path).
    pub fn access_shared(&self, now: u64) -> u64 {
        now + self.cfg.shared_latency as u64
    }

    /// An L2-latency access used for metadata fetches that bypass the L1
    /// (e.g. GPUShield bounds-table fills on RCache misses).
    pub fn metadata_fetch(&mut self, addr: u64, now: u64) -> u64 {
        if self.l2.access(addr) {
            return now + self.cfg.l2.hit_latency as u64;
        }
        let line = addr & !(self.cfg.l2.line_bytes - 1);
        if let Some(&ready) = self.inflight.get(&line) {
            if ready > now {
                self.mshr_merges += 1;
                return ready;
            }
        }
        let data_at = self.dram.access(addr, now + self.cfg.l2.hit_latency as u64);
        self.inflight.insert(line, data_at);
        data_at
    }

    /// Per-SM L1 statistics.
    pub fn l1_stats(&self, sm: usize) -> CacheStats {
        self.l1[sm].stats()
    }

    /// L2 statistics.
    pub fn l2_stats(&self) -> CacheStats {
        self.l2.stats()
    }

    /// Total DRAM transactions.
    pub fn dram_transactions(&self) -> u64 {
        self.dram.transactions()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> MemoryHierarchy {
        MemoryHierarchy::new(HierarchyConfig::table4(2))
    }

    #[test]
    fn cold_access_reaches_dram() {
        let mut h = small();
        let done = h.access_dram_backed(0, 0x10_0000, 0);
        // L1 miss + L2 miss: latency includes L2 lookup plus DRAM.
        assert!(done >= 200 + 350, "got {done}");
        assert_eq!(h.dram_transactions(), 1);
    }

    #[test]
    fn warm_access_hits_l1() {
        let mut h = small();
        h.access_dram_backed(0, 0x10_0000, 0);
        let done = h.access_dram_backed(0, 0x10_0000, 1000);
        assert_eq!(done, 1000 + 30);
    }

    #[test]
    fn l2_serves_other_sms_after_one_fill() {
        let mut h = small();
        h.access_dram_backed(0, 0x10_0000, 0);
        // A different SM misses its own L1 but hits the shared L2.
        let done = h.access_dram_backed(1, 0x10_0000, 1000);
        assert_eq!(done, 1000 + 200);
        assert_eq!(h.dram_transactions(), 1);
    }

    #[test]
    fn shared_memory_is_fast_and_uncached() {
        let h = small();
        assert_eq!(h.access_shared(500), 525);
        assert_eq!(h.dram_transactions(), 0);
    }

    #[test]
    fn metadata_fetch_uses_l2_path() {
        let mut h = small();
        let cold = h.metadata_fetch(0x40_0000, 0);
        assert!(cold >= 200 + 350);
        let warm = h.metadata_fetch(0x40_0000, 1000);
        assert_eq!(warm, 1000 + 200);
    }
}
