//! Configuration of the composed L1 → L2 → DRAM lookup path.
//!
//! The monolithic `MemoryHierarchy` struct that used to live here was
//! split for the bank-sharded memory pipeline: per-SM L1s now live with
//! their SMs (SM-local phase-A state in `lmi-sim`), and the shared L2 +
//! MSHR + DRAM state is sharded into address-interleaved banks in
//! [`crate::banks`].

use crate::cache::CacheConfig;
use crate::dram::DramConfig;

/// Configuration of the full hierarchy (defaults follow paper Table IV).
#[derive(Debug, Clone, Copy)]
pub struct HierarchyConfig {
    /// Number of per-SM L1 caches.
    pub num_l1: usize,
    /// L1 geometry.
    pub l1: CacheConfig,
    /// L2 geometry.
    pub l2: CacheConfig,
    /// DRAM parameters.
    pub dram: DramConfig,
    /// Shared-memory access latency in cycles (L1-comparable, §II-A).
    pub shared_latency: u32,
}

impl HierarchyConfig {
    /// Table IV defaults for `num_l1` SMs.
    pub fn table4(num_l1: usize) -> HierarchyConfig {
        HierarchyConfig {
            num_l1,
            l1: CacheConfig::l1_default(),
            l2: CacheConfig::l2_default(),
            dram: DramConfig::default(),
            shared_latency: 25,
        }
    }
}
