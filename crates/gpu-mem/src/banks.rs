//! Bank-sharded shared-memory-system state: L2 slices, MSHRs, DRAM
//! channel groups and the functional backing store, interleaved across N
//! address banks at cache-line granularity.
//!
//! Real GPUs partition exactly this structure (L2 slices striped across
//! memory partitions, each fronting its own DRAM channels), and the
//! simulator exploits the same property: a line's bank is a pure function
//! of its address, so the per-cycle shared-state apply can fan out across
//! banks with no cross-bank communication, while staying bit-identical to
//! the monolithic (1-bank) model.
//!
//! ## Routing and compaction
//!
//! With `N` banks and line size `L`, address `a` belongs to bank
//! `(a / L) % N` and is *compacted* inside the bank to
//! `((a / L) / N) * L + a % L`. Compaction keeps each bank's slice dense:
//!
//! * the per-bank L2 slice has `sets / N` sets, and
//!   `compact_line % (sets / N)` groups lines into exactly the same sets
//!   as `line % sets` did globally (requires `N | sets`);
//! * the per-bank DRAM slice has `channels / N` channels, and
//!   `compact_line % (channels / N)` groups lines onto exactly the same
//!   channels as `line % channels` did globally (requires `N | channels`);
//! * the per-bank [`SparseMemory`] sees a dense address space, so page
//!   occupancy does not blow up by `N`.
//!
//! Because set and channel grouping are preserved and requests are applied
//! in the same canonical order within each bank (a subsequence of the
//! global canonical order), hit/miss outcomes, evictions, MSHR merges and
//! channel queueing are identical for every valid `N`.

use std::collections::HashMap;

use crate::backing::SparseMemory;
use crate::cache::{Cache, CacheConfig, CacheStats};
use crate::dram::{Dram, DramConfig};
use crate::hierarchy::HierarchyConfig;

/// Pure-function address→bank routing shared by the timing and functional
/// sides (both must agree on who owns a byte).
#[derive(Debug, Clone, Copy)]
pub struct BankRouter {
    banks: u64,
    line_bytes: u64,
}

impl BankRouter {
    /// Builds a router over `banks` line-interleaved banks.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero or `line_bytes` is not a power of two.
    pub fn new(banks: usize, line_bytes: u64) -> BankRouter {
        assert!(banks > 0, "need at least one bank");
        assert!(line_bytes.is_power_of_two(), "line size must be a power of two");
        BankRouter { banks: banks as u64, line_bytes }
    }

    /// Number of banks routed over.
    pub fn num_banks(&self) -> usize {
        self.banks as usize
    }

    /// Line size used for interleaving.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// The bank owning `addr`.
    #[inline]
    pub fn bank_of(&self, addr: u64) -> usize {
        ((addr / self.line_bytes) % self.banks) as usize
    }

    /// Compacts `addr` into its bank's dense local address space.
    #[inline]
    pub fn localize(&self, addr: u64) -> u64 {
        if self.banks == 1 {
            return addr;
        }
        let line = addr / self.line_bytes;
        (line / self.banks) * self.line_bytes + (addr % self.line_bytes)
    }

    /// Splits an access of `width` bytes at `addr` at the line boundary:
    /// returns the width of the first part and, when the access straddles
    /// into the next line (hence possibly another bank), the address and
    /// width of the second part.
    #[inline]
    pub fn split(&self, addr: u64, width: u64) -> (u64, Option<(u64, u64)>) {
        let room = self.line_bytes - addr % self.line_bytes;
        if width <= room {
            (width, None)
        } else {
            (room, Some((addr + room, width - room)))
        }
    }
}

/// One memory bank: an L2 slice, its MSHRs, its DRAM channel group.
/// All addresses handed to a bank are *compacted* (see [`BankRouter`]).
#[derive(Debug)]
pub struct MemBank {
    l2: Cache,
    dram: Dram,
    /// MSHR-style merge of in-flight line fills: compacted line address →
    /// fill-ready cycle. A request for a line already being fetched rides
    /// that fill instead of issuing a redundant DRAM transaction.
    inflight: HashMap<u64, u64>,
    mshr_merges: u64,
}

/// MSHR map hygiene threshold: above this many tracked fills, entries
/// whose fill already completed are evicted.
const MSHR_RETAIN_THRESHOLD: usize = 4096;

impl MemBank {
    fn new(l2: CacheConfig, dram: DramConfig) -> MemBank {
        MemBank {
            l2: Cache::new(l2),
            dram: Dram::new(dram),
            inflight: HashMap::new(),
            mshr_merges: 0,
        }
    }

    /// An L2-backed access at time `now`; returns the completion cycle.
    ///
    /// This is the single shared fill path for both data-line fills (after
    /// an SM-local L1 miss) and metadata fetches that bypass the L1 (e.g.
    /// GPUShield bounds-table fills on RCache misses): L2 lookup, then
    /// MSHR merge, then DRAM. Both callers therefore share the MSHR
    /// eviction hygiene — the old split `metadata_fetch` copy of this loop
    /// skipped the `retain` and grew the in-flight map without bound on
    /// metadata-heavy runs.
    pub fn access(&mut self, local_addr: u64, now: u64) -> u64 {
        let l2_hit = self.l2.config().hit_latency as u64;
        if self.l2.access(local_addr) {
            return now + l2_hit;
        }
        let line = local_addr & !(self.l2.config().line_bytes - 1);
        if let Some(&ready) = self.inflight.get(&line) {
            if ready > now {
                self.mshr_merges += 1;
                return ready;
            }
        }
        let data_at = self.dram.access(local_addr, now + l2_hit);
        self.inflight.insert(line, data_at);
        if self.inflight.len() > MSHR_RETAIN_THRESHOLD {
            self.inflight.retain(|_, &mut r| r > now);
        }
        data_at
    }

    /// L2-slice statistics.
    pub fn l2_stats(&self) -> CacheStats {
        self.l2.stats()
    }

    /// DRAM transactions issued by this bank.
    pub fn dram_transactions(&self) -> u64 {
        self.dram.transactions()
    }

    /// MSHR-merged request count.
    pub fn mshr_merges(&self) -> u64 {
        self.mshr_merges
    }

    /// Number of fills currently tracked by the MSHR map (hygiene metric).
    pub fn inflight_len(&self) -> usize {
        self.inflight.len()
    }
}

/// The bank-sharded shared memory system: N [`MemBank`]s behind one
/// [`BankRouter`]. Replaces the monolithic L2 + MSHR + DRAM blob; per-SM
/// L1s live with their SMs now and never reach this structure.
#[derive(Debug)]
pub struct BankedHierarchy {
    cfg: HierarchyConfig,
    router: BankRouter,
    banks: Vec<MemBank>,
}

/// The largest bank count `≤ requested` the geometry supports: banks must
/// evenly divide both the L2 set count and the DRAM channel count, and
/// line-granular routing requires DRAM transactions to be line-sized.
pub fn max_supported_banks(cfg: &HierarchyConfig, requested: usize) -> usize {
    let requested = requested.max(1);
    if cfg.dram.transaction_bytes != cfg.l2.line_bytes {
        return 1;
    }
    let sets = cfg.l2.sets();
    let channels = cfg.dram.channels as u64;
    (1..=requested as u64)
        .rev()
        .find(|&n| sets.is_multiple_of(n) && channels.is_multiple_of(n))
        .unwrap_or(1) as usize
}

impl BankedHierarchy {
    /// Builds the sharded hierarchy with `banks` banks.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not support `banks` (see
    /// [`max_supported_banks`]).
    pub fn new(cfg: HierarchyConfig, banks: usize) -> BankedHierarchy {
        assert_eq!(
            max_supported_banks(&cfg, banks),
            banks,
            "geometry does not shard into {banks} banks \
             (L2 sets {}, DRAM channels {})",
            cfg.l2.sets(),
            cfg.dram.channels,
        );
        let n = banks as u64;
        let l2_slice = CacheConfig { capacity_bytes: cfg.l2.capacity_bytes / n, ..cfg.l2 };
        let dram_slice = DramConfig {
            capacity_bytes: cfg.dram.capacity_bytes / n,
            channels: cfg.dram.channels / banks as u32,
            ..cfg.dram
        };
        BankedHierarchy {
            cfg,
            router: BankRouter::new(banks, cfg.l2.line_bytes),
            banks: (0..banks).map(|_| MemBank::new(l2_slice, dram_slice)).collect(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// The address router (copy it freely; it is two words).
    pub fn router(&self) -> BankRouter {
        self.router
    }

    /// Number of banks.
    pub fn num_banks(&self) -> usize {
        self.banks.len()
    }

    /// The banks, for the engine's per-bank workers.
    pub fn banks_mut(&mut self) -> &mut [MemBank] {
        &mut self.banks
    }

    /// The banks, read-only.
    pub fn banks(&self) -> &[MemBank] {
        &self.banks
    }

    /// Routes and performs one L2-backed access (data-line fill after an
    /// L1 miss, or an L1-bypassing metadata fetch) at time `now`. This is
    /// the monolithic convenience entry point; the engine's bank workers
    /// route once and call [`MemBank::access`] directly.
    pub fn access(&mut self, addr: u64, now: u64) -> u64 {
        let bank = self.router.bank_of(addr);
        let local = self.router.localize(addr);
        self.banks[bank].access(local, now)
    }

    /// Performs a shared-memory access (fixed low latency, no cache path).
    pub fn access_shared(&self, now: u64) -> u64 {
        now + self.cfg.shared_latency as u64
    }

    /// L2 statistics summed across banks.
    pub fn l2_stats(&self) -> CacheStats {
        self.banks.iter().fold(CacheStats::default(), |acc, b| {
            let s = b.l2_stats();
            CacheStats { hits: acc.hits + s.hits, misses: acc.misses + s.misses }
        })
    }

    /// Total DRAM transactions across banks.
    pub fn dram_transactions(&self) -> u64 {
        self.banks.iter().map(|b| b.dram_transactions()).sum()
    }

    /// Total MSHR-merged requests across banks.
    pub fn mshr_merges(&self) -> u64 {
        self.banks.iter().map(|b| b.mshr_merges()).sum()
    }

    /// Total fills tracked by the MSHR maps (hygiene metric).
    pub fn inflight_len(&self) -> usize {
        self.banks.iter().map(|b| b.inflight_len()).sum()
    }
}

/// The functional byte store, sharded with the same line interleave as the
/// timing banks so each bank worker moves its own bytes with no locking.
///
/// Method-compatible with [`SparseMemory`]: host-side code (`gpu.memory`)
/// keeps reading and writing through the same API; accesses that straddle
/// a line boundary are split across the owning banks transparently.
#[derive(Debug)]
pub struct BankedMemory {
    router: BankRouter,
    banks: Vec<SparseMemory>,
}

impl BankedMemory {
    /// Builds a store sharded over `banks` banks at `line_bytes`
    /// granularity (must match the timing router).
    pub fn new(banks: usize, line_bytes: u64) -> BankedMemory {
        BankedMemory {
            router: BankRouter::new(banks, line_bytes),
            banks: (0..banks).map(|_| SparseMemory::new()).collect(),
        }
    }

    /// Number of banks.
    pub fn num_banks(&self) -> usize {
        self.banks.len()
    }

    /// The router (identical to the timing side's).
    pub fn router(&self) -> BankRouter {
        self.router
    }

    /// The per-bank stores, for the engine's bank workers.
    pub fn banks_mut(&mut self) -> &mut [SparseMemory] {
        &mut self.banks
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        self.banks[self.router.bank_of(addr)].read_u8(self.router.localize(addr))
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let bank = self.router.bank_of(addr);
        self.banks[bank].write_u8(self.router.localize(addr), value);
    }

    /// Reads `width` bytes little-endian (1, 2, 4 or 8).
    pub fn read(&self, addr: u64, width: u8) -> u64 {
        if self.banks.len() == 1 {
            return self.banks[0].read(addr, width);
        }
        let (w1, rest) = self.router.split(addr, width as u64);
        let lo = self.banks[self.router.bank_of(addr)].read(self.router.localize(addr), w1 as u8);
        match rest {
            None => lo,
            Some((addr2, w2)) => {
                let hi = self.banks[self.router.bank_of(addr2)]
                    .read(self.router.localize(addr2), w2 as u8);
                lo | (hi << (8 * w1))
            }
        }
    }

    /// Writes the low `width` bytes of `value` little-endian.
    pub fn write(&mut self, addr: u64, value: u64, width: u8) {
        if self.banks.len() == 1 {
            self.banks[0].write(addr, value, width);
            return;
        }
        let (w1, rest) = self.router.split(addr, width as u64);
        let bank = self.router.bank_of(addr);
        self.banks[bank].write(self.router.localize(addr), value, w1 as u8);
        if let Some((addr2, w2)) = rest {
            let bank2 = self.router.bank_of(addr2);
            self.banks[bank2].write(self.router.localize(addr2), value >> (8 * w1), w2 as u8);
        }
    }

    /// Writes a byte slice starting at `addr`.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        if self.banks.len() == 1 {
            self.banks[0].write_bytes(addr, bytes);
            return;
        }
        let mut addr = addr;
        let mut bytes = bytes;
        while !bytes.is_empty() {
            let (w, _) = self.router.split(addr, bytes.len() as u64);
            let (chunk, tail) = bytes.split_at(w as usize);
            let bank = self.router.bank_of(addr);
            self.banks[bank].write_bytes(self.router.localize(addr), chunk);
            addr += w;
            bytes = tail;
        }
    }

    /// Reads into a byte slice starting at `addr`.
    pub fn read_bytes(&self, addr: u64, out: &mut [u8]) {
        if self.banks.len() == 1 {
            self.banks[0].read_bytes(addr, out);
            return;
        }
        let mut addr = addr;
        let mut out = out;
        while !out.is_empty() {
            let (w, _) = self.router.split(addr, out.len() as u64);
            let (chunk, tail) = out.split_at_mut(w as usize);
            self.banks[self.router.bank_of(addr)].read_bytes(self.router.localize(addr), chunk);
            addr += w;
            out = tail;
        }
    }

    /// Fills `len` bytes starting at `addr` with `byte`.
    pub fn fill(&mut self, addr: u64, len: u64, byte: u8) {
        if self.banks.len() == 1 {
            self.banks[0].fill(addr, len, byte);
            return;
        }
        let mut addr = addr;
        let mut len = len;
        while len > 0 {
            let (w, _) = self.router.split(addr, len);
            let bank = self.router.bank_of(addr);
            self.banks[bank].fill(self.router.localize(addr), w, byte);
            addr += w;
            len -= w;
        }
    }

    /// Total resident pages across banks.
    pub fn resident_pages(&self) -> usize {
        self.banks.iter().map(|b| b.resident_pages()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table4() -> HierarchyConfig {
        HierarchyConfig::table4(2)
    }

    fn banked(n: usize) -> BankedHierarchy {
        BankedHierarchy::new(table4(), n)
    }

    #[test]
    fn cold_access_reaches_dram() {
        let mut h = banked(1);
        let done = h.access(0x10_0000, 0);
        // L2 miss: latency includes the L2 lookup plus DRAM.
        assert!(done >= 200 + 350, "got {done}");
        assert_eq!(h.dram_transactions(), 1);
    }

    #[test]
    fn warm_access_hits_l2() {
        let mut h = banked(1);
        h.access(0x10_0000, 0);
        let done = h.access(0x10_0000, 1000);
        assert_eq!(done, 1000 + 200);
        assert_eq!(h.dram_transactions(), 1);
    }

    #[test]
    fn shared_memory_is_fast_and_uncached() {
        let h = banked(1);
        assert_eq!(h.access_shared(500), 525);
        assert_eq!(h.dram_transactions(), 0);
    }

    #[test]
    fn max_supported_banks_respects_geometry() {
        let cfg = table4();
        // Table IV: 1536 L2 sets, 32 DRAM channels → powers of two up to
        // 32 all divide both.
        for n in [1usize, 2, 4, 8, 16, 32] {
            assert_eq!(max_supported_banks(&cfg, n), n);
        }
        // 3 divides 1536 but not 32 → clamps down to 2.
        assert_eq!(max_supported_banks(&cfg, 3), 2);
        // Requests past the channel count clamp to the largest divisor.
        assert_eq!(max_supported_banks(&cfg, 1000), 32);
        assert_eq!(max_supported_banks(&cfg, 0), 1);
        // Line-granular routing needs line-sized DRAM transactions.
        let mut odd = cfg;
        odd.dram.transaction_bytes = 64;
        assert_eq!(max_supported_banks(&odd, 8), 1);
    }

    /// The determinism cornerstone: for any valid bank count, every access
    /// returns the same completion cycle and the re-aggregated stats match
    /// the monolithic model bit for bit.
    #[test]
    fn sharded_timing_is_bit_identical_to_monolithic() {
        let mut mono = banked(1);
        let mut shards: Vec<BankedHierarchy> = [2usize, 4, 8].iter().map(|&n| banked(n)).collect();
        // A deterministic mix of streaming lines, re-walks (L2 hits),
        // same-cycle conflicts (MSHR merges) and channel collisions.
        let mut x = 0x1234_5678_9abc_def0u64;
        let mut now = 0u64;
        for i in 0..20_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let addr = (x >> 24) % (8 << 20);
            if i % 7 == 0 {
                now += 1;
            }
            let expect = mono.access(addr, now);
            for h in &mut shards {
                assert_eq!(h.access(addr, now), expect, "addr {addr:#x} at {now}");
            }
        }
        for h in &shards {
            assert_eq!(h.l2_stats(), mono.l2_stats());
            assert_eq!(h.dram_transactions(), mono.dram_transactions());
            assert_eq!(h.mshr_merges(), mono.mshr_merges());
        }
    }

    /// Regression for the MSHR leak: the old `metadata_fetch` never ran
    /// the `retain` hygiene pass, so a metadata-heavy run grew the
    /// in-flight map without bound. The shared fill path bounds it.
    #[test]
    fn mshr_inflight_map_stays_bounded() {
        let mut h = banked(1);
        let mut now = 0u64;
        for i in 0..100_000u64 {
            // Distinct lines, monotonically advancing time so old fills
            // complete and become evictable.
            now += 1;
            h.access(i * 128, now + 10_000);
        }
        assert!(
            h.inflight_len() <= MSHR_RETAIN_THRESHOLD + 1,
            "MSHR map leaked: {} entries",
            h.inflight_len()
        );
    }

    #[test]
    fn router_splits_at_line_boundaries() {
        let r = BankRouter::new(4, 128);
        assert_eq!(r.split(0, 8), (8, None));
        assert_eq!(r.split(120, 8), (8, None));
        assert_eq!(r.split(121, 8), (7, Some((128, 1))));
        assert_eq!(r.split(127, 4), (1, Some((128, 3))));
        // Adjacent lines land in adjacent banks; compaction is dense.
        assert_eq!(r.bank_of(0), 0);
        assert_eq!(r.bank_of(128), 1);
        assert_eq!(r.bank_of(4 * 128), 0);
        assert_eq!(r.localize(4 * 128 + 5), 128 + 5);
    }

    #[test]
    fn banked_store_round_trips_across_boundaries() {
        for n in [1usize, 2, 4] {
            let mut m = BankedMemory::new(n, 128);
            // Word round-trip, straddling a line boundary.
            m.write(125, 0x1122_3344_5566_7788, 8);
            assert_eq!(m.read(125, 8), 0x1122_3344_5566_7788);
            assert_eq!(m.read_u8(125), 0x88);
            assert_eq!(m.read_u8(132), 0x11);
            // Bulk round-trip spanning several lines and banks.
            let data: Vec<u8> = (0..1000u32).map(|i| (i * 7) as u8).collect();
            m.write_bytes(1000, &data);
            let mut back = vec![0u8; 1000];
            m.read_bytes(1000, &mut back);
            assert_eq!(back, data);
            m.fill(1100, 300, 0xAB);
            let mut filled = vec![0u8; 300];
            m.read_bytes(1100, &mut filled);
            assert!(filled.iter().all(|&b| b == 0xAB));
            assert!(m.resident_pages() > 0);
        }
    }

    /// Multi-tenant address slices (64 GiB-spaced, 4 GiB spans) must hash
    /// across every bank rather than pinning a tenant to one bank — the
    /// line interleave guarantees it for any span beyond a few lines.
    #[test]
    fn tenant_spans_cover_all_banks() {
        let r = BankRouter::new(8, 128);
        const GLOBAL_BASE: u64 = 0x0100_0000_0000;
        const TENANT_SPAN: u64 = 64 << 30;
        for tenant in 0..4u64 {
            let base = GLOBAL_BASE + tenant * TENANT_SPAN;
            let mut seen = [false; 8];
            for line in 0..8u64 {
                seen[r.bank_of(base + line * 128)] = true;
            }
            assert!(seen.iter().all(|&s| s), "tenant {tenant} pinned to a bank subset");
        }
    }
}
