//! Sparse functional byte store.
//!
//! The timing model ([`crate::hierarchy`]) decides *when* data arrives; this
//! store decides *what* the data is. It is sparse (4 KiB pages allocated on
//! first touch) so per-thread local windows and large arenas cost nothing
//! until used.
//!
//! The store is on the simulator's per-access hot path (every functional
//! load/store lands here), so it is organized for throughput: the page table
//! maps page numbers to slots in a dense page arena, a one-entry last-page
//! cache short-circuits the table for the overwhelmingly common
//! same-page-as-last-time case, and `read`/`write` move whole words with a
//! single lookup instead of one table probe per byte.

use std::cell::Cell;
use std::collections::hash_map::Entry;
use std::collections::HashMap;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
/// Sentinel page number for an empty last-page cache (no real page can use
/// it: it would need an address beyond the 64-bit space).
const NO_PAGE: u64 = u64::MAX;

/// A sparse byte-addressable memory.
#[derive(Debug, Clone)]
pub struct SparseMemory {
    /// Page number → slot in `store`.
    table: HashMap<u64, u32>,
    /// Dense page arena; slots are stable once allocated.
    store: Vec<Box<[u8; PAGE_SIZE]>>,
    /// Last `(page number, slot)` touched. A `Cell` so reads can refresh it;
    /// slots are stable, so a stale entry can only be `NO_PAGE`, never wrong.
    last: Cell<(u64, u32)>,
}

impl Default for SparseMemory {
    fn default() -> SparseMemory {
        SparseMemory { table: HashMap::new(), store: Vec::new(), last: Cell::new((NO_PAGE, 0)) }
    }
}

impl SparseMemory {
    /// An empty memory (all bytes read as zero).
    pub fn new() -> SparseMemory {
        SparseMemory::default()
    }

    /// Slot of `page_no` if it is resident, refreshing the last-page cache.
    #[inline]
    fn slot_of(&self, page_no: u64) -> Option<usize> {
        let (cached_no, cached_slot) = self.last.get();
        if cached_no == page_no {
            return Some(cached_slot as usize);
        }
        let slot = *self.table.get(&page_no)?;
        self.last.set((page_no, slot));
        Some(slot as usize)
    }

    /// Slot of `page_no`, materializing the page on first touch.
    #[inline]
    fn slot_mut(&mut self, page_no: u64) -> usize {
        let (cached_no, cached_slot) = self.last.get();
        if cached_no == page_no {
            return cached_slot as usize;
        }
        let slot = match self.table.entry(page_no) {
            Entry::Occupied(e) => *e.get(),
            Entry::Vacant(e) => {
                let slot = u32::try_from(self.store.len()).expect("page arena fits u32 slots");
                self.store.push(Box::new([0; PAGE_SIZE]));
                *e.insert(slot)
            }
        };
        self.last.set((page_no, slot));
        slot as usize
    }

    /// Reads one byte (untouched memory reads as zero).
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.slot_of(addr >> PAGE_SHIFT) {
            Some(slot) => self.store[slot][(addr as usize) & (PAGE_SIZE - 1)],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let slot = self.slot_mut(addr >> PAGE_SHIFT);
        self.store[slot][(addr as usize) & (PAGE_SIZE - 1)] = value;
    }

    /// Reads `width` bytes (≤ 8) little-endian.
    ///
    /// # Panics
    ///
    /// Panics if `width > 8`.
    pub fn read(&self, addr: u64, width: u8) -> u64 {
        assert!(width <= 8, "width {width} exceeds 8 bytes");
        let width = width as usize;
        let off = (addr as usize) & (PAGE_SIZE - 1);
        if off + width <= PAGE_SIZE {
            // Fast path: the whole word lives on one page — one lookup.
            match self.slot_of(addr >> PAGE_SHIFT) {
                Some(slot) => {
                    let mut buf = [0u8; 8];
                    buf[..width].copy_from_slice(&self.store[slot][off..off + width]);
                    u64::from_le_bytes(buf)
                }
                None => 0,
            }
        } else {
            let mut v = 0u64;
            for i in 0..width as u64 {
                v |= (self.read_u8(addr + i) as u64) << (8 * i);
            }
            v
        }
    }

    /// Writes the low `width` bytes (≤ 8) of `value` little-endian.
    ///
    /// # Panics
    ///
    /// Panics if `width > 8`.
    pub fn write(&mut self, addr: u64, value: u64, width: u8) {
        assert!(width <= 8, "width {width} exceeds 8 bytes");
        let width = width as usize;
        let off = (addr as usize) & (PAGE_SIZE - 1);
        if off + width <= PAGE_SIZE {
            let slot = self.slot_mut(addr >> PAGE_SHIFT);
            self.store[slot][off..off + width].copy_from_slice(&value.to_le_bytes()[..width]);
        } else {
            for i in 0..width as u64 {
                self.write_u8(addr + i, (value >> (8 * i)) as u8);
            }
        }
    }

    /// Copies `bytes` into `[addr, addr + bytes.len())`, whole pages at a
    /// time (host-side buffer staging uses this instead of a byte loop).
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        let mut cur = addr;
        let mut rest = bytes;
        while !rest.is_empty() {
            let off = (cur as usize) & (PAGE_SIZE - 1);
            let n = (PAGE_SIZE - off).min(rest.len());
            let slot = self.slot_mut(cur >> PAGE_SHIFT);
            self.store[slot][off..off + n].copy_from_slice(&rest[..n]);
            cur += n as u64;
            rest = &rest[n..];
        }
    }

    /// Reads `out.len()` bytes starting at `addr` (untouched pages read as
    /// zero), whole pages at a time.
    pub fn read_bytes(&self, addr: u64, out: &mut [u8]) {
        let mut cur = addr;
        let mut rest = out;
        while !rest.is_empty() {
            let off = (cur as usize) & (PAGE_SIZE - 1);
            let n = (PAGE_SIZE - off).min(rest.len());
            match self.slot_of(cur >> PAGE_SHIFT) {
                Some(slot) => rest[..n].copy_from_slice(&self.store[slot][off..off + n]),
                None => rest[..n].fill(0),
            }
            cur += n as u64;
            rest = &mut rest[n..];
        }
    }

    /// Fills `[addr, addr + len)` with `byte`, whole pages at a time.
    pub fn fill(&mut self, addr: u64, len: u64, byte: u8) {
        let mut cur = addr;
        let end = addr + len;
        while cur < end {
            let off = (cur as usize) & (PAGE_SIZE - 1);
            let n = ((PAGE_SIZE - off) as u64).min(end - cur) as usize;
            let slot = self.slot_mut(cur >> PAGE_SHIFT);
            self.store[slot][off..off + n].fill(byte);
            cur += n as u64;
        }
    }

    /// Number of 4 KiB pages materialized so far.
    pub fn resident_pages(&self) -> usize {
        self.store.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_memory_reads_zero() {
        let m = SparseMemory::new();
        assert_eq!(m.read(0xDEAD_BEEF, 8), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn read_back_what_was_written() {
        let mut m = SparseMemory::new();
        m.write(0x1000, 0x1122_3344_5566_7788, 8);
        assert_eq!(m.read(0x1000, 8), 0x1122_3344_5566_7788);
        assert_eq!(m.read(0x1000, 4), 0x5566_7788);
        assert_eq!(m.read(0x1004, 4), 0x1122_3344);
    }

    #[test]
    fn writes_spanning_pages_work() {
        let mut m = SparseMemory::new();
        let addr = (1 << 12) - 4; // last 4 bytes of page 0
        m.write(addr, 0xAABB_CCDD_EEFF_0011, 8);
        assert_eq!(m.read(addr, 8), 0xAABB_CCDD_EEFF_0011);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn narrow_write_does_not_clobber_neighbors() {
        let mut m = SparseMemory::new();
        m.write(0x2000, u64::MAX, 8);
        m.write(0x2002, 0, 2);
        assert_eq!(m.read(0x2000, 8), 0xFFFF_FFFF_0000_FFFF);
    }

    #[test]
    fn fill_sets_a_range() {
        let mut m = SparseMemory::new();
        m.fill(0x3000, 16, 0xCC);
        assert_eq!(m.read(0x3000, 8), 0xCCCC_CCCC_CCCC_CCCC);
        assert_eq!(m.read_u8(0x3010), 0);
    }

    #[test]
    fn fill_spanning_pages_sets_every_byte() {
        let mut m = SparseMemory::new();
        let addr = (1 << 12) - 8;
        m.fill(addr, 4096 + 16, 0xAB);
        assert_eq!(m.read_u8(addr), 0xAB);
        assert_eq!(m.read_u8(addr + 4096 + 15), 0xAB);
        assert_eq!(m.read_u8(addr + 4096 + 16), 0);
        assert_eq!(m.resident_pages(), 3);
    }

    #[test]
    fn bulk_bytes_round_trip_across_pages() {
        let mut m = SparseMemory::new();
        let addr = (1 << 12) * 3 - 100;
        let data: Vec<u8> = (0..300u32).map(|i| (i * 7) as u8).collect();
        m.write_bytes(addr, &data);
        let mut back = vec![0u8; 300];
        m.read_bytes(addr, &mut back);
        assert_eq!(back, data);
        // A hole between pages reads zero.
        let mut hole = [0xFFu8; 8];
        m.read_bytes(0x9_0000, &mut hole);
        assert_eq!(hole, [0; 8]);
    }

    #[test]
    fn clone_preserves_contents_and_cache_stays_coherent() {
        let mut m = SparseMemory::new();
        m.write(0x5000, 0x1234, 4);
        m.write(0x7000, 0x5678, 4); // cache now points at page 0x7
        let c = m.clone();
        assert_eq!(c.read(0x5000, 4), 0x1234);
        assert_eq!(c.read(0x7000, 4), 0x5678);
        m.write(0x5000, 0x9999, 4);
        assert_eq!(c.read(0x5000, 4), 0x1234, "clone is independent");
    }
}
