//! Sparse functional byte store.
//!
//! The timing model ([`crate::hierarchy`]) decides *when* data arrives; this
//! store decides *what* the data is. It is sparse (4 KiB pages allocated on
//! first touch) so per-thread local windows and large arenas cost nothing
//! until used.

use std::collections::HashMap;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// A sparse byte-addressable memory.
#[derive(Debug, Clone, Default)]
pub struct SparseMemory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl SparseMemory {
    /// An empty memory (all bytes read as zero).
    pub fn new() -> SparseMemory {
        SparseMemory::default()
    }

    fn page_mut(&mut self, addr: u64) -> &mut [u8; PAGE_SIZE] {
        self.pages.entry(addr >> PAGE_SHIFT).or_insert_with(|| Box::new([0; PAGE_SIZE]))
    }

    /// Reads one byte (untouched memory reads as zero).
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(page) => page[(addr as usize) & (PAGE_SIZE - 1)],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        self.page_mut(addr)[(addr as usize) & (PAGE_SIZE - 1)] = value;
    }

    /// Reads `width` bytes (≤ 8) little-endian.
    ///
    /// # Panics
    ///
    /// Panics if `width > 8`.
    pub fn read(&self, addr: u64, width: u8) -> u64 {
        assert!(width <= 8, "width {width} exceeds 8 bytes");
        let mut v = 0u64;
        for i in 0..width as u64 {
            v |= (self.read_u8(addr + i) as u64) << (8 * i);
        }
        v
    }

    /// Writes the low `width` bytes (≤ 8) of `value` little-endian.
    ///
    /// # Panics
    ///
    /// Panics if `width > 8`.
    pub fn write(&mut self, addr: u64, value: u64, width: u8) {
        assert!(width <= 8, "width {width} exceeds 8 bytes");
        for i in 0..width as u64 {
            self.write_u8(addr + i, (value >> (8 * i)) as u8);
        }
    }

    /// Fills `[addr, addr + len)` with `byte`.
    pub fn fill(&mut self, addr: u64, len: u64, byte: u8) {
        for i in 0..len {
            self.write_u8(addr + i, byte);
        }
    }

    /// Number of 4 KiB pages materialized so far.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_memory_reads_zero() {
        let m = SparseMemory::new();
        assert_eq!(m.read(0xDEAD_BEEF, 8), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn read_back_what_was_written() {
        let mut m = SparseMemory::new();
        m.write(0x1000, 0x1122_3344_5566_7788, 8);
        assert_eq!(m.read(0x1000, 8), 0x1122_3344_5566_7788);
        assert_eq!(m.read(0x1000, 4), 0x5566_7788);
        assert_eq!(m.read(0x1004, 4), 0x1122_3344);
    }

    #[test]
    fn writes_spanning_pages_work() {
        let mut m = SparseMemory::new();
        let addr = (1 << 12) - 4; // last 4 bytes of page 0
        m.write(addr, 0xAABB_CCDD_EEFF_0011, 8);
        assert_eq!(m.read(addr, 8), 0xAABB_CCDD_EEFF_0011);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn narrow_write_does_not_clobber_neighbors() {
        let mut m = SparseMemory::new();
        m.write(0x2000, u64::MAX, 8);
        m.write(0x2002, 0, 2);
        assert_eq!(m.read(0x2000, 8), 0xFFFF_FFFF_0000_FFFF);
    }

    #[test]
    fn fill_sets_a_range() {
        let mut m = SparseMemory::new();
        m.fill(0x3000, 16, 0xCC);
        assert_eq!(m.read(0x3000, 8), 0xCCCC_CCCC_CCCC_CCCC);
        assert_eq!(m.read_u8(0x3010), 0);
    }
}
