//! Virtual-address-space layout.
//!
//! GPU memory allocation provides virtually contiguous buffers per region
//! (paper §V-B); this module fixes where each region lives in the 57-bit
//! virtual address space so allocators and the simulator agree. Although
//! threads share the same *local* virtual addresses on real hardware (with
//! translation providing isolation, §II-A), the functional store here backs
//! each thread's window at a distinct offset — the model of that
//! translation.

/// Base of the `cudaMalloc` global arena.
pub const GLOBAL_BASE: u64 = 0x0100_0000_0000;

/// Base of the device-heap (`malloc`-in-kernel) arena.
pub const HEAP_BASE: u64 = 0x0200_0000_0000;

/// Base of the per-thread local/stack windows.
pub const LOCAL_BASE: u64 = 0x0300_0000_0000;

/// Base of the per-block shared-memory windows.
pub const SHARED_BASE: u64 = 0x0000_0100_0000;

/// Default per-thread local window (stack) size in bytes.
pub const DEFAULT_STACK_BYTES: u64 = 64 * 1024;

/// Default per-block shared-memory window size in bytes.
pub const SHARED_WINDOW_BYTES: u64 = 256 * 1024;

/// Physical backing address of thread `global_tid`'s local window.
pub fn local_window_base(global_tid: u64, stack_bytes: u64) -> u64 {
    LOCAL_BASE + global_tid * stack_bytes
}

/// Physical backing address of block `block_id`'s shared window.
pub fn shared_window_base(block_id: u64) -> u64 {
    SHARED_BASE + block_id * SHARED_WINDOW_BYTES
}

/// Classifies an address into its arena, if it falls into one.
pub fn region_of(addr: u64) -> Option<&'static str> {
    if (GLOBAL_BASE..HEAP_BASE).contains(&addr) {
        Some("global")
    } else if (HEAP_BASE..LOCAL_BASE).contains(&addr) {
        Some("heap")
    } else if addr >= LOCAL_BASE {
        Some("local")
    } else if addr >= SHARED_BASE {
        Some("shared")
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arenas_do_not_overlap() {
        const { assert!(GLOBAL_BASE < HEAP_BASE) };
        const { assert!(HEAP_BASE < LOCAL_BASE) };
        const { assert!(SHARED_BASE < GLOBAL_BASE) };
    }

    #[test]
    fn local_windows_are_disjoint() {
        let a = local_window_base(0, DEFAULT_STACK_BYTES);
        let b = local_window_base(1, DEFAULT_STACK_BYTES);
        assert_eq!(b - a, DEFAULT_STACK_BYTES);
    }

    #[test]
    fn region_classification() {
        assert_eq!(region_of(GLOBAL_BASE + 10), Some("global"));
        assert_eq!(region_of(HEAP_BASE), Some("heap"));
        assert_eq!(region_of(local_window_base(5, DEFAULT_STACK_BYTES)), Some("local"));
        assert_eq!(region_of(shared_window_base(2)), Some("shared"));
        assert_eq!(region_of(0x10), None);
    }
}
