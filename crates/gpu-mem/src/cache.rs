//! Set-associative cache timing model with LRU replacement.

/// Geometry and latency of a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Hit latency in cycles.
    pub hit_latency: u32,
}

impl CacheConfig {
    /// The paper's L1 data cache: 96 KB, 30-cycle latency (Table IV).
    pub fn l1_default() -> CacheConfig {
        CacheConfig { capacity_bytes: 96 * 1024, line_bytes: 128, ways: 8, hit_latency: 30 }
    }

    /// The paper's L2: 4.5 MB, 24-way, 200-cycle latency (Table IV).
    pub fn l2_default() -> CacheConfig {
        CacheConfig {
            capacity_bytes: 4_718_592, // 4.5 MiB
            line_bytes: 128,
            ways: 24,
            hit_latency: 200,
        }
    }

    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> u64 {
        self.capacity_bytes / (self.line_bytes * self.ways as u64)
    }
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of accesses that hit.
    pub hits: u64,
    /// Number of accesses that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]`; 0 when no accesses happened.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    last_used: u64,
    valid: bool,
}

/// A set-associative LRU cache (tags only; data lives in the backing store).
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<Line>>,
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Builds a cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the line size is not a power of two or the geometry yields
    /// zero sets.
    pub fn new(cfg: CacheConfig) -> Cache {
        assert!(cfg.line_bytes.is_power_of_two(), "line size must be a power of two");
        let sets = cfg.sets();
        assert!(sets > 0, "cache geometry yields zero sets");
        Cache {
            cfg,
            sets: vec![
                vec![Line { tag: 0, last_used: 0, valid: false }; cfg.ways as usize];
                sets as usize
            ],
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    fn index_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.cfg.line_bytes;
        ((line % self.sets.len() as u64) as usize, line / self.sets.len() as u64)
    }

    /// Looks up `addr`, filling the line on a miss. Returns `true` on hit.
    ///
    /// One pass over the set tracks the hit way and the LRU victim
    /// together (invalid ways sort as `last_used = 0`, first such way
    /// wins ties — same victim the old two-scan `find` + `min_by_key`
    /// picked).
    pub fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        let tick = self.tick;
        let (index, tag) = self.index_and_tag(addr);
        let set = &mut self.sets[index];
        let mut victim = 0usize;
        let mut victim_key = u64::MAX;
        for (way, line) in set.iter_mut().enumerate() {
            if line.valid && line.tag == tag {
                line.last_used = tick;
                self.stats.hits += 1;
                return true;
            }
            let key = if line.valid { line.last_used } else { 0 };
            if key < victim_key {
                victim_key = key;
                victim = way;
            }
        }
        self.stats.misses += 1;
        set[victim] = Line { tag, last_used: tick, valid: true };
        false
    }

    /// Probes without filling or counting (for tests and the RCache model).
    pub fn probe(&self, addr: u64) -> bool {
        let (index, tag) = self.index_and_tag(addr);
        self.sets[index].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Invalidates every line.
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            for line in set {
                line.valid = false;
            }
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets statistics (keeps contents).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets × 2 ways × 64 B lines = 256 B.
        Cache::new(CacheConfig { capacity_bytes: 256, line_bytes: 64, ways: 2, hit_latency: 1 })
    }

    #[test]
    fn geometry_matches_table4() {
        let l1 = CacheConfig::l1_default();
        assert_eq!(l1.capacity_bytes, 96 * 1024);
        assert_eq!(l1.hit_latency, 30);
        let l2 = CacheConfig::l2_default();
        assert_eq!(l2.ways, 24);
        assert_eq!(l2.hit_latency, 200);
        assert!(l2.sets() > 0);
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = tiny();
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x1020), "same 64 B line");
        assert_eq!(c.stats(), CacheStats { hits: 2, misses: 1 });
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = tiny();
        // Three lines mapping to set 0 (line addr multiples of 128 with bit6=0).
        c.access(0x0000);
        c.access(0x0080); // set 0? line 2 -> set 0
        assert!(c.access(0x0000), "still resident");
        c.access(0x0100); // third distinct tag in set 0 evicts 0x0080
        assert!(c.probe(0x0000), "recently used survives");
        assert!(!c.probe(0x0080), "LRU victim evicted");
    }

    #[test]
    fn capacity_is_respected() {
        let mut c = tiny();
        for i in 0..64 {
            c.access(i * 64);
        }
        let resident = (0..64).filter(|i| c.probe(i * 64)).count();
        assert!(resident <= 4, "at most sets*ways lines resident, got {resident}");
    }

    #[test]
    fn flush_invalidates_everything() {
        let mut c = tiny();
        c.access(0x1000);
        c.flush();
        assert!(!c.probe(0x1000));
    }

    /// The fused single-pass `access` must be observationally identical to
    /// the reference two-scan version (hit `find`, then victim
    /// `min_by_key`) it replaced: same hit/miss stream, same stats, same
    /// resident lines.
    #[test]
    fn single_pass_access_matches_two_scan_reference() {
        struct RefCache {
            c: Cache,
        }
        impl RefCache {
            fn access(&mut self, addr: u64) -> bool {
                self.c.tick += 1;
                let tick = self.c.tick;
                let (index, tag) = self.c.index_and_tag(addr);
                let set = &mut self.c.sets[index];
                if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
                    line.last_used = tick;
                    self.c.stats.hits += 1;
                    return true;
                }
                self.c.stats.misses += 1;
                let victim = set
                    .iter_mut()
                    .min_by_key(|l| if l.valid { l.last_used } else { 0 })
                    .expect("ways > 0");
                *victim = Line { tag, last_used: tick, valid: true };
                false
            }
        }
        let mut fused = tiny();
        let mut reference = RefCache { c: tiny() };
        // Deterministic pseudo-random address stream over a footprint a few
        // times the capacity, so hits, misses and evictions all occur.
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        for _ in 0..4096 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let addr = (x >> 33) % 1024;
            assert_eq!(fused.access(addr), reference.access(addr));
        }
        assert_eq!(fused.stats(), reference.c.stats());
        for addr in (0..1024).step_by(64) {
            assert_eq!(fused.probe(addr), reference.c.probe(addr), "addr {addr:#x}");
        }
    }

    #[test]
    fn hit_rate_reporting() {
        let mut c = tiny();
        assert_eq!(c.stats().hit_rate(), 0.0);
        c.access(0);
        c.access(0);
        c.access(0);
        assert!((c.stats().hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        c.reset_stats();
        assert_eq!(c.stats().accesses(), 0);
    }
}
