//! Randomized property tests for the memory substrate: cache
//! capacity/LRU invariants, DRAM queue monotonicity, and backing-store
//! read-your-writes. Seeded SplitMix64 keeps failures reproducible.

use lmi_mem::{Cache, CacheConfig, Dram, DramConfig, SparseMemory};
use lmi_telemetry::SplitMix64;

#[test]
fn cache_never_exceeds_capacity() {
    let mut rng = SplitMix64::new(0xCAC4E);
    for _ in 0..200 {
        let cfg = CacheConfig { capacity_bytes: 4096, line_bytes: 128, ways: 4, hit_latency: 1 };
        let mut cache = Cache::new(cfg);
        let count = rng.range(1, 300) as usize;
        let addrs: Vec<u64> = (0..count).map(|_| rng.below(1 << 20)).collect();
        for &a in &addrs {
            cache.access(a);
        }
        let lines: std::collections::HashSet<u64> = addrs.iter().map(|a| a / 128).collect();
        let resident = lines.iter().filter(|&&l| cache.probe(l * 128)).count();
        assert!(resident as u64 <= cfg.capacity_bytes / cfg.line_bytes);
    }
}

#[test]
fn repeated_accesses_eventually_hit() {
    let mut rng = SplitMix64::new(0x417);
    for _ in 0..500 {
        let addr = rng.below(1 << 30);
        let mut cache = Cache::new(CacheConfig::l1_default());
        cache.access(addr);
        assert!(cache.access(addr), "immediate re-access hits: addr={addr:#x}");
        assert!(cache.probe(addr));
    }
}

#[test]
fn mru_line_survives_any_single_fill() {
    // With associativity >= 2, touching one other line never evicts the
    // most recently used line.
    let mut rng = SplitMix64::new(0x324);
    for _ in 0..500 {
        let addr = rng.below(1 << 20);
        let other = rng.below(1 << 20);
        let mut cache = Cache::new(CacheConfig::l1_default());
        cache.access(addr);
        cache.access(other);
        assert!(cache.probe(addr), "addr={addr:#x} other={other:#x}");
    }
}

#[test]
fn dram_completion_is_monotone_in_issue_time() {
    let mut rng = SplitMix64::new(0xD4A);
    for _ in 0..500 {
        let addr = rng.below(1 << 24);
        let t1 = rng.below(10_000);
        let dt = rng.below(10_000);
        let mut d1 = Dram::new(DramConfig::default());
        let mut d2 = Dram::new(DramConfig::default());
        let r1 = d1.access(addr, t1);
        let r2 = d2.access(addr, t1 + dt);
        assert!(r2 >= r1, "later issue never completes earlier: addr={addr:#x} t1={t1} dt={dt}");
        assert!(r1 >= t1 + DramConfig::default().access_latency as u64);
    }
}

#[test]
fn dram_queue_orders_same_channel_requests() {
    let mut rng = SplitMix64::new(0x90E);
    for _ in 0..200 {
        let addr = rng.below(1 << 16);
        let n = rng.range(1, 50) as usize;
        let cfg = DramConfig { channels: 1, channel_interval: 3, ..DramConfig::default() };
        let mut d = Dram::new(cfg);
        let mut last = 0;
        for _ in 0..n {
            let r = d.access(addr, 0);
            assert!(r > last, "strictly increasing under a busy channel: addr={addr:#x}");
            last = r;
        }
    }
}

#[test]
fn backing_store_read_your_writes() {
    let mut rng = SplitMix64::new(0xBACC);
    for _ in 0..200 {
        let mut m = SparseMemory::new();
        let mut model: std::collections::HashMap<u64, u8> = Default::default();
        let count = rng.range(1, 60) as usize;
        for _ in 0..count {
            let addr = rng.below(1 << 16);
            let value = rng.next_u64();
            let width = *rng.choose(&[1u8, 2, 4, 8]);
            m.write(addr, value, width);
            for i in 0..width as u64 {
                model.insert(addr + i, (value >> (8 * i)) as u8);
            }
        }
        for (&addr, &byte) in &model {
            assert_eq!(m.read_u8(addr), byte, "addr={addr:#x}");
        }
    }
}
