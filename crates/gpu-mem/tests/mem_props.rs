//! Property tests for the memory substrate: cache capacity/LRU invariants,
//! DRAM queue monotonicity, and backing-store read-your-writes.

use lmi_mem::{Cache, CacheConfig, Dram, DramConfig, SparseMemory};
use proptest::prelude::*;

proptest! {
    #[test]
    fn cache_never_exceeds_capacity(
        addrs in proptest::collection::vec(0u64..(1 << 20), 1..300),
    ) {
        let cfg = CacheConfig { capacity_bytes: 4096, line_bytes: 128, ways: 4, hit_latency: 1 };
        let mut cache = Cache::new(cfg);
        for &a in &addrs {
            cache.access(a);
        }
        let lines: std::collections::HashSet<u64> =
            addrs.iter().map(|a| a / 128).collect();
        let resident = lines.iter().filter(|&&l| cache.probe(l * 128)).count();
        prop_assert!(resident as u64 <= cfg.capacity_bytes / cfg.line_bytes);
    }

    #[test]
    fn repeated_accesses_eventually_hit(addr in 0u64..(1 << 30)) {
        let mut cache = Cache::new(CacheConfig::l1_default());
        cache.access(addr);
        prop_assert!(cache.access(addr), "immediate re-access hits");
        prop_assert!(cache.probe(addr));
    }

    #[test]
    fn mru_line_survives_any_single_fill(
        addr in 0u64..(1 << 20),
        other in 0u64..(1 << 20),
    ) {
        // With associativity >= 2, touching one other line never evicts the
        // most recently used line.
        let mut cache = Cache::new(CacheConfig::l1_default());
        cache.access(addr);
        cache.access(other);
        prop_assert!(cache.probe(addr));
    }

    #[test]
    fn dram_completion_is_monotone_in_issue_time(
        addr in 0u64..(1 << 24),
        t1 in 0u64..10_000,
        dt in 0u64..10_000,
    ) {
        let mut d1 = Dram::new(DramConfig::default());
        let mut d2 = Dram::new(DramConfig::default());
        let r1 = d1.access(addr, t1);
        let r2 = d2.access(addr, t1 + dt);
        prop_assert!(r2 >= r1, "later issue never completes earlier");
        prop_assert!(r1 >= t1 + DramConfig::default().access_latency as u64);
    }

    #[test]
    fn dram_queue_orders_same_channel_requests(
        addr in 0u64..(1 << 16),
        n in 1usize..50,
    ) {
        let cfg = DramConfig { channels: 1, channel_interval: 3, ..DramConfig::default() };
        let mut d = Dram::new(cfg);
        let mut last = 0;
        for _ in 0..n {
            let r = d.access(addr, 0);
            prop_assert!(r > last, "strictly increasing under a busy channel");
            last = r;
        }
    }

    #[test]
    fn backing_store_read_your_writes(
        writes in proptest::collection::vec((0u64..(1 << 16), any::<u64>(), 1u8..=8), 1..60),
    ) {
        let mut m = SparseMemory::new();
        let mut model: std::collections::HashMap<u64, u8> = Default::default();
        for &(addr, value, width) in &writes {
            let width = match width { 1 | 2 | 4 | 8 => width, w => (w % 8).max(1) };
            m.write(addr, value, width);
            for i in 0..width as u64 {
                model.insert(addr + i, (value >> (8 * i)) as u8);
            }
        }
        for (&addr, &byte) in &model {
            prop_assert_eq!(m.read_u8(addr), byte);
        }
    }
}
