//! Runs the full case × mechanism matrix and renders paper Table III.

use crate::cases::{all_cases, CaseClass};
use crate::defense::Defense;
use crate::defense::{CuCatchDefense, GmodDefense, GpuShieldDefense, LmiDefense};

/// Detection counts for one Table III row under every mechanism.
#[derive(Debug, Clone)]
pub struct CoverageRow {
    /// Row label (e.g. "Global OoB").
    pub class: CaseClass,
    /// Number of test cases in the row.
    pub total: usize,
    /// Cases protected per mechanism, in [`MECHANISMS`] order.
    pub detected: Vec<usize>,
}

/// Mechanism column order (Table III plus the §XII-C ablation column).
pub const MECHANISMS: [&str; 5] = ["GMOD", "GPUShield", "cuCatch", "LMI", "LMI+liveness"];

fn fresh(defense_index: usize) -> Box<dyn Defense> {
    match defense_index {
        0 => Box::new(GmodDefense::new()),
        1 => Box::new(GpuShieldDefense::new()),
        2 => Box::new(CuCatchDefense::new()),
        3 => Box::new(LmiDefense::new()),
        4 => Box::new(LmiDefense::with_liveness()),
        _ => unreachable!(),
    }
}

/// Runs every case under every mechanism (a fresh instance per case, as
/// each test program runs in isolation); returns the per-row counts.
pub fn run_matrix() -> Vec<CoverageRow> {
    let classes = [
        CaseClass::GlobalOob,
        CaseClass::HeapOob,
        CaseClass::LocalOob,
        CaseClass::SharedOob,
        CaseClass::IntraOob,
        CaseClass::Uaf,
        CaseClass::Uas,
        CaseClass::InvalidFree,
        CaseClass::DoubleFree,
    ];
    let cases = all_cases();
    classes
        .iter()
        .map(|&class| {
            let row_cases: Vec<_> = cases.iter().filter(|c| c.class == class).collect();
            let detected = (0..MECHANISMS.len())
                .map(|m| {
                    row_cases
                        .iter()
                        .filter(|case| {
                            let mut d = fresh(m);
                            (case.run)(d.as_mut())
                        })
                        .count()
                })
                .collect();
            CoverageRow { class, total: row_cases.len(), detected }
        })
        .collect()
}

/// Sums a mechanism's protected-case count over the given rows.
pub fn coverage(rows: &[CoverageRow], mechanism: usize, spatial: bool) -> (usize, usize) {
    let mut detected = 0;
    let mut total = 0;
    for row in rows {
        if row.class.is_spatial() == spatial {
            detected += row.detected[mechanism];
            total += row.total;
        }
    }
    (detected, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(name: &str) -> usize {
        MECHANISMS.iter().position(|&m| m == name).unwrap()
    }

    fn row(rows: &[CoverageRow], class: CaseClass) -> &CoverageRow {
        rows.iter().find(|r| r.class == class).unwrap()
    }

    /// The central reproduction test: every cell of Table III.
    #[test]
    fn matrix_matches_table3() {
        let rows = run_matrix();
        let gmod = col("GMOD");
        let gs = col("GPUShield");
        let cu = col("cuCatch");
        let lmi = col("LMI");

        let check = |class: CaseClass, expect: [usize; 4]| {
            let r = row(&rows, class);
            let got = [r.detected[gmod], r.detected[gs], r.detected[cu], r.detected[lmi]];
            assert_eq!(got, expect, "{}: [GMOD, GPUShield, cuCatch, LMI]", class.label());
        };

        check(CaseClass::GlobalOob, [1, 2, 2, 2]);
        check(CaseClass::HeapOob, [0, 1, 0, 3]);
        check(CaseClass::LocalOob, [0, 2, 6, 8]);
        check(CaseClass::SharedOob, [0, 0, 5, 6]);
        check(CaseClass::IntraOob, [0, 0, 0, 0]);
        check(CaseClass::Uaf, [0, 0, 4, 4]);
        check(CaseClass::Uas, [0, 0, 4, 4]);
        check(CaseClass::InvalidFree, [2, 2, 2, 2]);
        check(CaseClass::DoubleFree, [2, 2, 2, 2]);
    }

    #[test]
    fn liveness_tracking_closes_immediate_copied_uaf() {
        let rows = run_matrix();
        let lmi = col("LMI");
        let lml = col("LMI+liveness");
        let uaf = row(&rows, CaseClass::Uaf);
        assert_eq!(uaf.detected[lmi], 4);
        assert_eq!(
            uaf.detected[lml], 6,
            "liveness tracking adds the two immediate copied-pointer cases"
        );
        // Spatial coverage is unchanged.
        let (s_lmi, _) = coverage(&rows, lmi, true);
        let (s_lml, _) = coverage(&rows, lml, true);
        assert_eq!(s_lmi, s_lml);
    }

    #[test]
    fn aggregate_coverage_matches_the_paper_ordering() {
        let rows = run_matrix();
        let spatial: Vec<usize> = (0..4).map(|m| coverage(&rows, m, true).0).collect();
        assert_eq!(spatial, vec![1, 5, 13, 19]);
        let temporal: Vec<usize> = (0..4).map(|m| coverage(&rows, m, false).0).collect();
        assert_eq!(temporal, vec![4, 4, 12, 12]);
    }
}
