//! The 38 violation test cases of paper Table III (reconstructed from the
//! cuCatch methodology, §IX).
//!
//! Each case is a function over [`Defense`]; it stages the allocations,
//! performs the attack, and reports whether the mechanism protected against
//! it. Attacks are expressed as *reaching a victim object*, with the delta
//! computed under the defense's own memory layout — an aligned allocator
//! moves the victim out of the attacker's power-of-two region, a shadow-tag
//! tool leaves the layout untouched.

use crate::defense::{overrun, poke, victim_delta, Defense, Outcome, Region};

/// Table III row classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CaseClass {
    /// Global-memory out-of-bounds.
    GlobalOob,
    /// Device-heap out-of-bounds.
    HeapOob,
    /// Local (stack) out-of-bounds.
    LocalOob,
    /// Shared-memory out-of-bounds.
    SharedOob,
    /// Intra-object (field-to-field) out-of-bounds.
    IntraOob,
    /// Use-after-free.
    Uaf,
    /// Use-after-scope.
    Uas,
    /// Invalid free.
    InvalidFree,
    /// Double free.
    DoubleFree,
}

impl CaseClass {
    /// Returns `true` for the spatial categories.
    pub fn is_spatial(self) -> bool {
        matches!(
            self,
            CaseClass::GlobalOob
                | CaseClass::HeapOob
                | CaseClass::LocalOob
                | CaseClass::SharedOob
                | CaseClass::IntraOob
        )
    }

    /// Table III row label.
    pub fn label(self) -> &'static str {
        match self {
            CaseClass::GlobalOob => "Global OoB",
            CaseClass::HeapOob => "Heap OoB",
            CaseClass::LocalOob => "Local OoB",
            CaseClass::SharedOob => "Shared OoB",
            CaseClass::IntraOob => "Intra OoB",
            CaseClass::Uaf => "UAF",
            CaseClass::Uas => "UAS",
            CaseClass::InvalidFree => "Invalid free",
            CaseClass::DoubleFree => "Double free",
        }
    }
}

/// A violation test case.
pub struct Case {
    /// Case identifier.
    pub name: &'static str,
    /// Table III row.
    pub class: CaseClass,
    /// Runs the case; returns `true` if the defense protected against it.
    pub run: fn(&mut dyn Defense) -> bool,
}

fn detected(outcome: Outcome, d: &mut dyn Defense) -> bool {
    outcome.faulted() || d.sync_scan()
}

// ---- spatial: global (2) --------------------------------------------------

fn g1_adjacent_overflow(d: &mut dyn Defense) -> bool {
    let a = d.alloc(Region::Global, 1024);
    let v = d.alloc(Region::Global, 1024);
    let delta = victim_delta(d, a, v);
    let p = d.ptr_to(a);
    let out = overrun(d, p, 1024, delta);
    detected(out, d)
}

fn g2_nonadjacent_write(d: &mut dyn Defense) -> bool {
    let a = d.alloc(Region::Global, 1024);
    let _spacer = d.alloc(Region::Global, 4096);
    let v = d.alloc(Region::Global, 1024);
    let delta = victim_delta(d, a, v);
    let p = d.ptr_to(a);
    let out = poke(d, p, delta);
    detected(out, d)
}

// ---- spatial: heap (3) ----------------------------------------------------

fn h1_adjacent_overflow(d: &mut dyn Defense) -> bool {
    let a = d.alloc(Region::Heap, 1024);
    let v = d.alloc(Region::Heap, 1024);
    let delta = victim_delta(d, a, v);
    let p = d.ptr_to(a);
    let out = overrun(d, p, 1024, delta);
    detected(out, d)
}

fn h2_nonadjacent_write(d: &mut dyn Defense) -> bool {
    let a = d.alloc(Region::Heap, 1024);
    let _spacer = d.alloc(Region::Heap, 8192);
    let v = d.alloc(Region::Heap, 1024);
    let delta = victim_delta(d, a, v);
    let p = d.ptr_to(a);
    let out = poke(d, p, delta);
    detected(out, d)
}

fn h3_beyond_heap(d: &mut dyn Defense) -> bool {
    let a = d.alloc(Region::Heap, 1024);
    let p = d.ptr_to(a);
    // Far outside the device-heap arena.
    let out = poke(d, p, 1 << 31);
    detected(out, d)
}

// ---- spatial: local (8) ---------------------------------------------------

fn l1_single_adjacent_in_frame(d: &mut dyn Defense) -> bool {
    // Unaligned 20-byte buffer underflowing into the frame's spill slot in
    // the shared shadow granule — the sub-granule case shadow tags miss.
    let a = d.alloc(Region::Local, 20);
    let spill = d.alloc(Region::Local, 8);
    let delta = victim_delta(d, a, spill);
    let p = d.ptr_to(a);
    let out = overrun(d, p, if delta > 0 { 20 } else { -1 }, delta);
    detected(out, d)
}

fn l2_single_nonadjacent_in_frame(d: &mut dyn Defense) -> bool {
    let a = d.alloc(Region::Local, 20);
    let _gap = d.alloc(Region::Local, 64);
    let spill = d.alloc(Region::Local, 8);
    let delta = victim_delta(d, a, spill);
    let p = d.ptr_to(a);
    let out = poke(d, p, delta);
    detected(out, d)
}

fn l3_sibling_adjacent_in_frame(d: &mut dyn Defense) -> bool {
    let a = d.alloc(Region::Local, 20);
    let v = d.alloc(Region::Local, 20);
    let delta = victim_delta(d, a, v);
    let p = d.ptr_to(a);
    let out = overrun(d, p, if delta > 0 { 20 } else { -1 }, delta);
    detected(out, d)
}

fn l4_sibling_nonadjacent_in_frame(d: &mut dyn Defense) -> bool {
    let a = d.alloc(Region::Local, 20);
    let _gap = d.alloc(Region::Local, 128);
    let v = d.alloc(Region::Local, 20);
    let delta = victim_delta(d, a, v);
    let p = d.ptr_to(a);
    let out = poke(d, p, delta);
    detected(out, d)
}

fn l5_cross_frame_adjacent(d: &mut dyn Defense) -> bool {
    let v = d.alloc(Region::Local, 32); // caller frame
    d.begin_frame();
    let a = d.alloc(Region::Local, 32);
    let delta = victim_delta(d, a, v);
    let p = d.ptr_to(a);
    let out = overrun(d, p, if delta > 0 { 32 } else { -1 }, delta);
    detected(out, d)
}

fn l6_cross_frame_nonadjacent(d: &mut dyn Defense) -> bool {
    let v = d.alloc(Region::Local, 32);
    let _pad = d.alloc(Region::Local, 512);
    d.begin_frame();
    let a = d.alloc(Region::Local, 32);
    let delta = victim_delta(d, a, v);
    let p = d.ptr_to(a);
    let out = poke(d, p, delta);
    detected(out, d)
}

fn l7_beyond_local_low(d: &mut dyn Defense) -> bool {
    let a = d.alloc(Region::Local, 64);
    let p = d.ptr_to(a);
    let out = poke(d, p, -(1 << 22));
    detected(out, d)
}

fn l8_beyond_local_high(d: &mut dyn Defense) -> bool {
    let a = d.alloc(Region::Local, 64);
    let p = d.ptr_to(a);
    let out = poke(d, p, 1 << 22);
    detected(out, d)
}

// ---- spatial: shared (6) --------------------------------------------------

fn s1_static_adjacent(d: &mut dyn Defense) -> bool {
    let a = d.alloc(Region::SharedStatic, 20);
    let v = d.alloc(Region::SharedStatic, 20);
    let delta = victim_delta(d, a, v);
    let p = d.ptr_to(a);
    let out = overrun(d, p, if delta > 0 { 20 } else { -1 }, delta);
    detected(out, d)
}

fn s2_static_nonadjacent(d: &mut dyn Defense) -> bool {
    let a = d.alloc(Region::SharedStatic, 256);
    let _gap = d.alloc(Region::SharedStatic, 1024);
    let v = d.alloc(Region::SharedStatic, 256);
    let delta = victim_delta(d, a, v);
    let p = d.ptr_to(a);
    let out = poke(d, p, delta);
    detected(out, d)
}

fn s3_beyond_shared(d: &mut dyn Defense) -> bool {
    let a = d.alloc(Region::SharedStatic, 256);
    let p = d.ptr_to(a);
    let out = poke(d, p, 1 << 22);
    detected(out, d)
}

fn s4_static_into_dynamic(d: &mut dyn Defense) -> bool {
    let a = d.alloc(Region::SharedStatic, 256);
    let v = d.alloc(Region::SharedDynamic, 512);
    let delta = victim_delta(d, a, v);
    let p = d.ptr_to(a);
    let out = poke(d, p, delta);
    detected(out, d)
}

fn s5_dynamic_beyond_pool(d: &mut dyn Defense) -> bool {
    let a = d.alloc(Region::SharedDynamic, 512);
    let p = d.ptr_to(a);
    // Far past the pool's end.
    let out = poke(d, p, 1 << 22);
    detected(out, d)
}

fn s6_dynamic_into_static(d: &mut dyn Defense) -> bool {
    let v = d.alloc(Region::SharedStatic, 256);
    let a = d.alloc(Region::SharedDynamic, 512);
    let delta = victim_delta(d, a, v);
    let p = d.ptr_to(a);
    let out = poke(d, p, delta);
    detected(out, d)
}

// ---- spatial: intra-object (3) --------------------------------------------

fn intra_case(d: &mut dyn Defense, field_offset: i64) -> bool {
    // One allocation modeling a struct; overflowing field A corrupts field
    // B inside the same object — invisible to all object-granular schemes.
    let obj = d.alloc(Region::Global, 64);
    let p = d.ptr_to(obj);
    let out = poke(d, p, field_offset);
    detected(out, d)
}

fn i1_adjacent_field(d: &mut dyn Defense) -> bool {
    intra_case(d, 16)
}

fn i2_nonadjacent_field(d: &mut dyn Defense) -> bool {
    intra_case(d, 48)
}

fn i3_struct_array_element(d: &mut dyn Defense) -> bool {
    intra_case(d, 36)
}

// ---- temporal: UAF (8) ----------------------------------------------------

fn uaf(d: &mut dyn Defense, region: Region, copied: bool, delayed: bool) -> bool {
    let a = d.alloc(region, 1024);
    let p = d.ptr_to(a);
    let access_ptr = if copied { d.derive(p, 4) } else { p };
    if d.free(p) {
        return true; // runtime rejected the free itself (not expected here)
    }
    if delayed {
        // The allocator recycles the region for a new allocation.
        let _b = d.alloc(region, 1024);
    }
    d.read(access_ptr, 4).faulted()
}

fn u1_global_imm_orig(d: &mut dyn Defense) -> bool {
    uaf(d, Region::Global, false, false)
}

fn u2_global_imm_copied(d: &mut dyn Defense) -> bool {
    uaf(d, Region::Global, true, false)
}

fn u3_global_delayed_orig(d: &mut dyn Defense) -> bool {
    uaf(d, Region::Global, false, true)
}

fn u4_global_delayed_copied(d: &mut dyn Defense) -> bool {
    uaf(d, Region::Global, true, true)
}

fn u5_heap_imm_orig(d: &mut dyn Defense) -> bool {
    uaf(d, Region::Heap, false, false)
}

fn u6_heap_imm_copied(d: &mut dyn Defense) -> bool {
    uaf(d, Region::Heap, true, false)
}

fn u7_heap_delayed_orig(d: &mut dyn Defense) -> bool {
    uaf(d, Region::Heap, false, true)
}

fn u8_heap_delayed_copied(d: &mut dyn Defense) -> bool {
    uaf(d, Region::Heap, true, true)
}

// ---- temporal: UAS (4) ----------------------------------------------------

fn uas(d: &mut dyn Defense, copied: bool, delayed: bool) -> bool {
    d.begin_frame();
    let a = d.alloc(Region::Local, 64);
    let p = d.ptr_to(a);
    let access_ptr = if copied { d.derive(p, 8) } else { p };
    d.end_frame();
    if delayed {
        // A new frame reuses the stack region.
        d.begin_frame();
        let _b = d.alloc(Region::Local, 64);
    }
    d.read(access_ptr, 4).faulted()
}

fn a1_imm_orig(d: &mut dyn Defense) -> bool {
    uas(d, false, false)
}

fn a2_imm_copied(d: &mut dyn Defense) -> bool {
    uas(d, true, false)
}

fn a3_delayed_orig(d: &mut dyn Defense) -> bool {
    uas(d, false, true)
}

fn a4_delayed_copied(d: &mut dyn Defense) -> bool {
    uas(d, true, true)
}

// ---- temporal: invalid free (2) -------------------------------------------

fn f1_interior_free(d: &mut dyn Defense) -> bool {
    let a = d.alloc(Region::Heap, 1024);
    let p = d.ptr_to(a);
    let interior = d.derive(p, 8);
    d.free(interior)
}

fn f2_wild_free(d: &mut dyn Defense) -> bool {
    let a = d.alloc(Region::Heap, 1024);
    let p = d.ptr_to(a);
    let wild = d.derive(p, 1 << 26);
    d.free(wild)
}

// ---- temporal: double free (2) --------------------------------------------

fn d1_immediate_double_free(d: &mut dyn Defense) -> bool {
    let a = d.alloc(Region::Heap, 1024);
    let p = d.ptr_to(a);
    assert!(!d.free(p), "first free is legitimate");
    d.free(p)
}

fn d2_delayed_double_free(d: &mut dyn Defense) -> bool {
    let a = d.alloc(Region::Heap, 1024);
    let p = d.ptr_to(a);
    assert!(!d.free(p));
    let _b = d.alloc(Region::Heap, 1024); // region recycled in between
    d.free(p)
}

// ---- benign negative controls ----------------------------------------------
//
// §XII-A's other half: a mechanism must not flag correct programs. Each
// control returns `true` when the defense stayed quiet.

fn benign_in_bounds_walk(d: &mut dyn Defense) -> bool {
    let a = d.alloc(Region::Global, 1024);
    let p = d.ptr_to(a);
    let mut quiet = true;
    for off in (0..1024).step_by(4) {
        let q = d.derive(p, off);
        quiet &= !d.write(q, 4).faulted();
        quiet &= !d.read(q, 4).faulted();
    }
    quiet && !d.sync_scan()
}

fn benign_loop_past_end_no_deref(d: &mut dyn Defense) -> bool {
    // Fig. 14: the pointer walks one past the end but is never used there.
    let a = d.alloc(Region::Heap, 256);
    let p = d.ptr_to(a);
    let mut quiet = true;
    for off in (0..256).step_by(4) {
        let q = d.derive(p, off);
        quiet &= !d.read(q, 4).faulted();
    }
    let _one_past = d.derive(p, 256); // derived, never dereferenced
    quiet && !d.sync_scan()
}

fn benign_alloc_free_realloc(d: &mut dyn Defense) -> bool {
    let a = d.alloc(Region::Heap, 512);
    let p = d.ptr_to(a);
    if d.free(p) {
        return false; // a valid free must not be rejected
    }
    let b = d.alloc(Region::Heap, 512);
    let q = d.ptr_to(b);
    !d.write(q, 4).faulted()
}

fn benign_stack_frames(d: &mut dyn Defense) -> bool {
    d.begin_frame();
    let a = d.alloc(Region::Local, 100);
    let p = d.ptr_to(a);
    let quiet = !d.write(p, 4).faulted();
    d.end_frame();
    // A fresh frame reusing the region is fully legitimate.
    d.begin_frame();
    let b = d.alloc(Region::Local, 100);
    let q = d.ptr_to(b);
    quiet && !d.write(q, 4).faulted()
}

fn benign_shared_use(d: &mut dyn Defense) -> bool {
    let s = d.alloc(Region::SharedStatic, 1024);
    let p = d.ptr_to(s);
    let q = d.derive(p, 1020);
    !d.write(q, 4).faulted()
}

/// Benign control programs: every mechanism must stay quiet on all of them
/// (returns `true` = no false positive).
pub fn benign_controls() -> Vec<Case> {
    use CaseClass::*;
    macro_rules! case {
        ($name:literal, $class:expr, $f:ident) => {
            Case { name: $name, class: $class, run: $f }
        };
    }
    vec![
        case!("benign-in-bounds-walk", GlobalOob, benign_in_bounds_walk),
        case!("benign-loop-past-end-no-deref", HeapOob, benign_loop_past_end_no_deref),
        case!("benign-alloc-free-realloc", Uaf, benign_alloc_free_realloc),
        case!("benign-stack-frames", Uas, benign_stack_frames),
        case!("benign-shared-use", SharedOob, benign_shared_use),
    ]
}

/// All 38 cases, in Table III order.
pub fn all_cases() -> Vec<Case> {
    use CaseClass::*;
    macro_rules! case {
        ($name:literal, $class:expr, $f:ident) => {
            Case { name: $name, class: $class, run: $f }
        };
    }
    vec![
        case!("g1-adjacent-overflow", GlobalOob, g1_adjacent_overflow),
        case!("g2-nonadjacent-write", GlobalOob, g2_nonadjacent_write),
        case!("h1-adjacent-overflow", HeapOob, h1_adjacent_overflow),
        case!("h2-nonadjacent-write", HeapOob, h2_nonadjacent_write),
        case!("h3-beyond-heap", HeapOob, h3_beyond_heap),
        case!("l1-single-adjacent-in-frame", LocalOob, l1_single_adjacent_in_frame),
        case!("l2-single-nonadjacent-in-frame", LocalOob, l2_single_nonadjacent_in_frame),
        case!("l3-sibling-adjacent-in-frame", LocalOob, l3_sibling_adjacent_in_frame),
        case!("l4-sibling-nonadjacent-in-frame", LocalOob, l4_sibling_nonadjacent_in_frame),
        case!("l5-cross-frame-adjacent", LocalOob, l5_cross_frame_adjacent),
        case!("l6-cross-frame-nonadjacent", LocalOob, l6_cross_frame_nonadjacent),
        case!("l7-beyond-local-low", LocalOob, l7_beyond_local_low),
        case!("l8-beyond-local-high", LocalOob, l8_beyond_local_high),
        case!("s1-static-adjacent", SharedOob, s1_static_adjacent),
        case!("s2-static-nonadjacent", SharedOob, s2_static_nonadjacent),
        case!("s3-beyond-shared", SharedOob, s3_beyond_shared),
        case!("s4-static-into-dynamic", SharedOob, s4_static_into_dynamic),
        case!("s5-dynamic-beyond-pool", SharedOob, s5_dynamic_beyond_pool),
        case!("s6-dynamic-into-static", SharedOob, s6_dynamic_into_static),
        case!("i1-adjacent-field", IntraOob, i1_adjacent_field),
        case!("i2-nonadjacent-field", IntraOob, i2_nonadjacent_field),
        case!("i3-struct-array-element", IntraOob, i3_struct_array_element),
        case!("u1-global-imm-orig", Uaf, u1_global_imm_orig),
        case!("u2-global-imm-copied", Uaf, u2_global_imm_copied),
        case!("u3-global-delayed-orig", Uaf, u3_global_delayed_orig),
        case!("u4-global-delayed-copied", Uaf, u4_global_delayed_copied),
        case!("u5-heap-imm-orig", Uaf, u5_heap_imm_orig),
        case!("u6-heap-imm-copied", Uaf, u6_heap_imm_copied),
        case!("u7-heap-delayed-orig", Uaf, u7_heap_delayed_orig),
        case!("u8-heap-delayed-copied", Uaf, u8_heap_delayed_copied),
        case!("a1-uas-imm-orig", Uas, a1_imm_orig),
        case!("a2-uas-imm-copied", Uas, a2_imm_copied),
        case!("a3-uas-delayed-orig", Uas, a3_delayed_orig),
        case!("a4-uas-delayed-copied", Uas, a4_delayed_copied),
        case!("f1-interior-free", InvalidFree, f1_interior_free),
        case!("f2-wild-free", InvalidFree, f2_wild_free),
        case!("d1-immediate-double-free", DoubleFree, d1_immediate_double_free),
        case!("d2-delayed-double-free", DoubleFree, d2_delayed_double_free),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_counts_match_table3_rows() {
        let cases = all_cases();
        let count = |c: CaseClass| cases.iter().filter(|k| k.class == c).count();
        assert_eq!(count(CaseClass::GlobalOob), 2);
        assert_eq!(count(CaseClass::HeapOob), 3);
        assert_eq!(count(CaseClass::LocalOob), 8);
        assert_eq!(count(CaseClass::SharedOob), 6);
        assert_eq!(count(CaseClass::IntraOob), 3);
        assert_eq!(count(CaseClass::Uaf), 8);
        assert_eq!(count(CaseClass::Uas), 4);
        assert_eq!(count(CaseClass::InvalidFree), 2);
        assert_eq!(count(CaseClass::DoubleFree), 2);
        assert_eq!(cases.len(), 38);
        assert_eq!(cases.iter().filter(|c| c.class.is_spatial()).count(), 22);
    }
}
