//! # lmi-security — the Table III violation test suite
//!
//! The paper evaluates security coverage with 22 spatial and 16 temporal
//! violation test cases (reconstructed from cuCatch's methodology) against
//! GMOD, GPUShield, cuCatch, and LMI. This crate reimplements the suite:
//!
//! * [`defense`] — the [`Defense`] abstraction plus its implementations —
//!   GMOD (canary), GPUShield (region table), cuCatch (shadow tags), LMI
//!   (OCU/EC over aligned allocators), and LMI with the §XII-C liveness
//!   tracker. Each mechanism exposes its own allocator layout and check
//!   path, so a test case written once runs faithfully under every
//!   mechanism (attacks are expressed as "reach the victim object", and
//!   each defense's *own layout* decides what that takes — the reason
//!   aligned allocation neutralizes attacks that shadow tags over an
//!   unchanged layout cannot);
//! * [`cases`] — the 38 test cases, grouped exactly as Table III;
//! * [`table`] — runs the matrix and renders Table III.

pub mod cases;
pub mod defense;
pub mod sim_cases;
pub mod table;

pub use cases::{all_cases, benign_controls, Case, CaseClass};
pub use defense::{
    CuCatchDefense, Defense, GmodDefense, GpuShieldDefense, Handle, LmiDefense, Outcome, Ptr,
};
pub use sim_cases::AttackOutcome;
pub use table::{run_matrix, CoverageRow};
