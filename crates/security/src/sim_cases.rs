//! End-to-end attack scenarios: real compiled kernels, run on the cycle
//! simulator under the LMI hardware mechanism.
//!
//! The [`crate::cases`] suite evaluates *detection semantics* through the
//! [`crate::Defense`] models (how the cuCatch/LMI papers built their
//! comparison tables); this module cross-validates the LMI column against
//! the full pipeline — IR → LMI pass → codegen → microcode → simulator →
//! OCU/EC — so the Table III results are backed by executed attacks, not
//! just models.

use lmi_compiler::ir::{CmpKind, FunctionBuilder, IBinOp, Region, Ty};
use lmi_compiler::{compile, CompileOptions};
use lmi_core::{DevicePtr, PtrConfig};
use lmi_mem::layout;
use lmi_sim::{Gpu, GpuConfig, Launch, LmiMechanism};

/// Outcome of an executed attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackOutcome {
    /// The mechanism faulted the attack.
    Detected,
    /// The attack ran to completion unnoticed.
    Missed,
}

fn run_lmi(kernel: &lmi_compiler::Function, params: &[u64]) -> AttackOutcome {
    let bin = compile(kernel, CompileOptions::default()).expect("attack kernels compile");
    let mut launch = Launch::new(bin.program).grid(1).block(32);
    for &p in params {
        launch = launch.param(p);
    }
    let mut gpu = Gpu::new(GpuConfig::security());
    let mut mech = LmiMechanism::default_config();
    let stats = gpu.run(&launch, &mut mech);
    if stats.violated() {
        AttackOutcome::Detected
    } else {
        AttackOutcome::Missed
    }
}

fn global_buffer(offset: u64, size: u64) -> u64 {
    let cfg = PtrConfig::default();
    DevicePtr::encode(layout::GLOBAL_BASE + offset, size, &cfg).expect("aligned test buffers").raw()
}

/// Global adjacent overflow: a copy loop runs one element too far.
pub fn attack_global_adjacent() -> AttackOutcome {
    let mut b = FunctionBuilder::new("global_adjacent");
    let data = b.param(Ty::Ptr(Region::Global));
    let tid = b.tid();
    let n = b.const_i32(1024 / 4); // buffer holds 256 elements
    let idx = b.ibin(IBinOp::Add, tid, n); // tid + 256: past the end
    let e = b.gep(data, idx, 4);
    b.store(e, tid, 4);
    b.ret();
    run_lmi(&b.build(), &[global_buffer(0, 1024)])
}

/// Global non-adjacent wild write.
pub fn attack_global_wild() -> AttackOutcome {
    let mut b = FunctionBuilder::new("global_wild");
    let data = b.param(Ty::Ptr(Region::Global));
    let far = b.const_i32(1 << 20);
    let e = b.gep(data, far, 4);
    let z = b.const_i32(0);
    b.store(e, z, 4);
    b.ret();
    run_lmi(&b.build(), &[global_buffer(0x10000, 1024)])
}

/// Device-heap overflow between two kernel allocations.
pub fn attack_heap_overflow() -> AttackOutcome {
    let mut b = FunctionBuilder::new("heap_overflow");
    let sz = b.const_i32(256);
    let a = b.malloc(sz);
    let _victim = b.malloc(sz);
    // Walk past `a`'s 256-byte region toward the victim.
    let far = b.const_i32(80); // element 80 * 4 = 320 > 256
    let e = b.gep(a, far, 4);
    let z = b.const_i32(0);
    b.store(e, z, 4);
    b.ret();
    run_lmi(&b.build(), &[])
}

/// Stack smash: loop overflows a 24-word buffer far past its region.
pub fn attack_stack_smash() -> AttackOutcome {
    let mut b = FunctionBuilder::new("stack_smash");
    let buf = b.alloca(96);
    let zero = b.const_i32(0);
    let i = b.var(zero);
    let body = b.new_block();
    let exit = b.new_block();
    b.jump(body);
    b.switch_to(body);
    let iv = b.read_var(i);
    let e = b.gep(buf, iv, 4);
    b.store(e, iv, 4);
    let one = b.const_i32(1);
    let next = b.ibin(IBinOp::Add, iv, one);
    b.write_var(i, next);
    let n = b.const_i32(100); // 100 words into a 24-word (256 B region) buffer
    let c = b.cmp(CmpKind::Lt, next, n);
    b.branch(c, body, exit);
    b.switch_to(exit);
    b.ret();
    run_lmi(&b.build(), &[])
}

/// Heap use-after-free through the original pointer.
pub fn attack_heap_uaf() -> AttackOutcome {
    let mut b = FunctionBuilder::new("heap_uaf");
    let sz = b.const_i32(256);
    let p = b.malloc(sz);
    b.free(p);
    let tid = b.tid();
    let e = b.gep(p, tid, 4);
    b.store(e, tid, 4);
    b.ret();
    run_lmi(&b.build(), &[])
}

/// Heap use-after-free through a copy made before the free — the
/// documented base-LMI miss (paper Fig. 11's pointer `C`).
pub fn attack_heap_uaf_copied() -> AttackOutcome {
    let mut b = FunctionBuilder::new("heap_uaf_copied");
    let sz = b.const_i32(256);
    let p = b.malloc(sz);
    let four = b.const_i32(4);
    let copy = b.ibin(IBinOp::Add, p, four);
    b.free(p);
    let z = b.const_i32(0);
    b.store(copy, z, 4);
    b.ret();
    run_lmi(&b.build(), &[])
}

/// Shared-memory overflow past a static buffer.
pub fn attack_shared_overflow() -> AttackOutcome {
    let mut b = FunctionBuilder::new("shared_overflow");
    let s = b.shared_alloc(1024);
    let far = b.const_i32(600); // element 600 * 4 = 2400 > 1024
    let e = b.gep(s, far, 4);
    let z = b.const_i32(0);
    b.store(e, z, 4);
    b.ret();
    run_lmi(&b.build(), &[])
}

/// In-bounds control: the whole pipeline must stay quiet.
pub fn benign_control() -> AttackOutcome {
    let mut b = FunctionBuilder::new("benign");
    let data = b.param(Ty::Ptr(Region::Global));
    let tid = b.tid();
    let e = b.gep(data, tid, 4);
    b.store(e, tid, 4);
    b.ret();
    run_lmi(&b.build(), &[global_buffer(0x20000, 1024)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn executed_attacks_match_the_table3_lmi_column() {
        assert_eq!(attack_global_adjacent(), AttackOutcome::Detected);
        assert_eq!(attack_global_wild(), AttackOutcome::Detected);
        assert_eq!(attack_heap_overflow(), AttackOutcome::Detected);
        assert_eq!(attack_stack_smash(), AttackOutcome::Detected);
        assert_eq!(attack_heap_uaf(), AttackOutcome::Detected);
        assert_eq!(attack_shared_overflow(), AttackOutcome::Detected);
        // The documented miss: copies made before free survive base LMI.
        assert_eq!(attack_heap_uaf_copied(), AttackOutcome::Missed);
        // And the control stays quiet.
        assert_eq!(benign_control(), AttackOutcome::Missed);
    }
}
