//! The mechanism-under-test abstraction.
//!
//! A test case manipulates *handles* (allocations) and *pointers* (register
//! values derived from allocations). Every operation routes through the
//! defense's own allocator layout and check path, so the same case source
//! yields mechanism-specific outcomes — mirroring how the paper compiles
//! one test program under each protection scheme.

/// Memory region of an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// `cudaMalloc` global buffer (kernel argument).
    Global,
    /// In-kernel `malloc` device-heap buffer.
    Heap,
    /// Stack (`alloca`) buffer in the current frame.
    Local,
    /// Statically declared shared-memory buffer.
    SharedStatic,
    /// A logical sub-buffer of the dynamically sized shared pool.
    SharedDynamic,
}

/// An allocation handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Handle(pub usize);

/// A pointer value handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ptr(pub usize);

/// Result of a memory access under a defense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The access proceeded unchecked.
    Allowed,
    /// The defense faulted the access.
    Faulted,
}

impl Outcome {
    /// Convenience predicate.
    pub fn faulted(self) -> bool {
        self == Outcome::Faulted
    }
}

/// A memory-safety mechanism under security evaluation.
pub trait Defense {
    /// Mechanism name (Table III column header).
    fn name(&self) -> &'static str;

    /// Allocates `size` bytes in `region`; local allocations join the
    /// current stack frame.
    fn alloc(&mut self, region: Region, size: u64) -> Handle;

    /// Base address of the allocation under this defense's layout.
    fn addr_of(&self, h: Handle) -> u64;

    /// The original pointer to an allocation.
    fn ptr_to(&mut self, h: Handle) -> Ptr;

    /// Pointer arithmetic: `p + delta` through the defense's checked
    /// pointer-update path (LMI's OCU). Returns the derived pointer.
    fn derive(&mut self, p: Ptr, delta: i64) -> Ptr;

    /// A `width`-byte write through `p`.
    fn write(&mut self, p: Ptr, width: u8) -> Outcome;

    /// A `width`-byte read through `p`.
    fn read(&mut self, p: Ptr, width: u8) -> Outcome;

    /// Runtime `free` of a heap/global allocation through pointer `p`.
    /// Returns `true` if the runtime rejected it (invalid/double free
    /// detection, provided by basic CUDA functions per §IX-B).
    fn free(&mut self, p: Ptr) -> bool;

    /// Enters a callee stack frame; subsequent local allocations belong to
    /// it until the matching [`Defense::end_frame`].
    fn begin_frame(&mut self);

    /// Ends the current stack frame (function return): all its local
    /// allocations go out of scope; the caller's frame becomes current.
    fn end_frame(&mut self);

    /// Synchronization-point scan (canary mechanisms); returns `true` if
    /// damage was detected.
    fn sync_scan(&mut self) -> bool {
        false
    }
}

/// Writes every byte position from `from` toward `to` inclusive (a
/// contiguous overrun, like a `memcpy` past the end — or a downward
/// underflow when `to < from`); returns `Faulted` as soon as any write
/// faults. This is the "adjacent" attack shape — it must cross whatever
/// sits between the buffer and the victim (canaries included).
pub fn overrun(d: &mut dyn Defense, base: Ptr, from: i64, to: i64) -> Outcome {
    let step = if to >= from { 1 } else { -1 };
    let mut off = from;
    loop {
        let p = d.derive(base, off);
        if d.write(p, 1).faulted() {
            return Outcome::Faulted;
        }
        if off == to {
            return Outcome::Allowed;
        }
        off += step;
    }
}

/// A single wild write at `delta` (the "non-adjacent" attack shape).
pub fn poke(d: &mut dyn Defense, base: Ptr, delta: i64) -> Outcome {
    let p = d.derive(base, delta);
    d.write(p, 4)
}

/// Delta (in bytes) from `attacker`'s base to `victim`'s base under the
/// defense's own layout — what an attacker's OOB index arithmetic must
/// produce to reach the victim.
pub fn victim_delta(d: &dyn Defense, attacker: Handle, victim: Handle) -> i64 {
    d.addr_of(victim) as i64 - d.addr_of(attacker) as i64
}
