//! The mechanism-under-test abstraction and its four implementations.
//!
//! A test case manipulates *handles* (allocations) and *pointers* (register
//! values derived from allocations). Every operation routes through the
//! defense's own allocator layout and check path, so the same case source
//! yields mechanism-specific outcomes — mirroring how the paper compiles
//! one test program under each protection scheme.
//!
//! The single [`Defense`] trait is consumed by both the Table III matrix
//! ([`crate::table`]) and the conformance oracle's model-level
//! cross-checks: GMOD (canary), GPUShield (region table), cuCatch (shadow
//! tags), LMI (OCU/EC over aligned allocators), and LMI with the §XII-C
//! liveness tracker all live here.

use std::collections::HashMap;

use lmi_alloc::{AlignmentPolicy, GlobalAllocator, SharedLayout, ThreadStack};
use lmi_baselines::canary::CanaryAllocator;
use lmi_baselines::cucatch::{CuCatch, Tag};
use lmi_core::{DevicePtr, ExtentChecker, LivenessTracker, Ocu, PtrConfig};
use lmi_mem::{layout, SparseMemory};

/// Memory region of an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// `cudaMalloc` global buffer (kernel argument).
    Global,
    /// In-kernel `malloc` device-heap buffer.
    Heap,
    /// Stack (`alloca`) buffer in the current frame.
    Local,
    /// Statically declared shared-memory buffer.
    SharedStatic,
    /// A logical sub-buffer of the dynamically sized shared pool.
    SharedDynamic,
}

/// An allocation handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Handle(pub usize);

/// A pointer value handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ptr(pub usize);

/// Result of a memory access under a defense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The access proceeded unchecked.
    Allowed,
    /// The defense faulted the access.
    Faulted,
}

impl Outcome {
    /// Convenience predicate.
    pub fn faulted(self) -> bool {
        self == Outcome::Faulted
    }
}

/// A memory-safety mechanism under security evaluation.
pub trait Defense {
    /// Mechanism name (Table III column header).
    fn name(&self) -> &'static str;

    /// Allocates `size` bytes in `region`; local allocations join the
    /// current stack frame.
    fn alloc(&mut self, region: Region, size: u64) -> Handle;

    /// Base address of the allocation under this defense's layout.
    fn addr_of(&self, h: Handle) -> u64;

    /// The original pointer to an allocation.
    fn ptr_to(&mut self, h: Handle) -> Ptr;

    /// Pointer arithmetic: `p + delta` through the defense's checked
    /// pointer-update path (LMI's OCU). Returns the derived pointer.
    fn derive(&mut self, p: Ptr, delta: i64) -> Ptr;

    /// A `width`-byte write through `p`.
    fn write(&mut self, p: Ptr, width: u8) -> Outcome;

    /// A `width`-byte read through `p`.
    fn read(&mut self, p: Ptr, width: u8) -> Outcome;

    /// Runtime `free` of a heap/global allocation through pointer `p`.
    /// Returns `true` if the runtime rejected it (invalid/double free
    /// detection, provided by basic CUDA functions per §IX-B).
    fn free(&mut self, p: Ptr) -> bool;

    /// Enters a callee stack frame; subsequent local allocations belong to
    /// it until the matching [`Defense::end_frame`].
    fn begin_frame(&mut self);

    /// Ends the current stack frame (function return): all its local
    /// allocations go out of scope; the caller's frame becomes current.
    fn end_frame(&mut self);

    /// Synchronization-point scan (canary mechanisms); returns `true` if
    /// damage was detected.
    fn sync_scan(&mut self) -> bool {
        false
    }
}

/// Writes every byte position from `from` toward `to` inclusive (a
/// contiguous overrun, like a `memcpy` past the end — or a downward
/// underflow when `to < from`); returns `Faulted` as soon as any write
/// faults. This is the "adjacent" attack shape — it must cross whatever
/// sits between the buffer and the victim (canaries included).
pub fn overrun(d: &mut dyn Defense, base: Ptr, from: i64, to: i64) -> Outcome {
    let step = if to >= from { 1 } else { -1 };
    let mut off = from;
    loop {
        let p = d.derive(base, off);
        if d.write(p, 1).faulted() {
            return Outcome::Faulted;
        }
        if off == to {
            return Outcome::Allowed;
        }
        off += step;
    }
}

/// A single wild write at `delta` (the "non-adjacent" attack shape).
pub fn poke(d: &mut dyn Defense, base: Ptr, delta: i64) -> Outcome {
    let p = d.derive(base, delta);
    d.write(p, 4)
}

/// Delta (in bytes) from `attacker`'s base to `victim`'s base under the
/// defense's own layout — what an attacker's OOB index arithmetic must
/// produce to reach the victim.
pub fn victim_delta(d: &dyn Defense, attacker: Handle, victim: Handle) -> i64 {
    d.addr_of(victim) as i64 - d.addr_of(attacker) as i64
}

// ---------------------------------------------------------------------------
// Implementations
// ---------------------------------------------------------------------------

/// A simple packed bump allocator with exact-fit recycling — the layout
/// non-aligned mechanisms run on.
#[derive(Debug)]
struct PackedArena {
    cursor: u64,
    end: u64,
    align: u64,
    free: HashMap<u64, Vec<u64>>,
}

impl PackedArena {
    fn new(base: u64, len: u64, align: u64) -> PackedArena {
        PackedArena { cursor: base, end: base + len, align, free: HashMap::new() }
    }

    fn alloc(&mut self, size: u64) -> u64 {
        if let Some(list) = self.free.get_mut(&size) {
            if let Some(base) = list.pop() {
                return base;
            }
        }
        let base = self.cursor.next_multiple_of(self.align);
        assert!(base + size <= self.end, "security arena exhausted");
        self.cursor = base + size;
        base
    }

    fn release(&mut self, base: u64, size: u64) {
        self.free.entry(size).or_default().push(base);
    }
}

#[derive(Debug, Clone, Copy)]
struct Alloc {
    region: Region,
    base: u64,
    size: u64,
    frame: usize,
    live: bool,
}

/// Shared bookkeeping: allocations, pointers, runtime free validation.
#[derive(Debug)]
struct Book {
    allocs: Vec<Alloc>,
    /// pointer -> (raw value, provenance handle)
    ptrs: Vec<(u64, usize)>,
    /// Stack of live frame ids; the last entry is the current frame.
    frames: Vec<usize>,
    next_frame: usize,
}

impl Default for Book {
    fn default() -> Self {
        Book { allocs: Vec::new(), ptrs: Vec::new(), frames: vec![0], next_frame: 1 }
    }
}

impl Book {
    fn current_frame(&self) -> usize {
        *self.frames.last().expect("at least the root frame")
    }

    fn begin_frame(&mut self) {
        self.frames.push(self.next_frame);
        self.next_frame += 1;
    }

    /// Pops the current frame; returns its id (the root frame never pops).
    fn pop_frame(&mut self) -> usize {
        if self.frames.len() > 1 {
            self.frames.pop().expect("non-root frame")
        } else {
            // Ending the root frame: retire it and move to a fresh one.
            let old = self.frames[0];
            self.frames[0] = self.next_frame;
            self.next_frame += 1;
            old
        }
    }

    fn add_alloc(&mut self, region: Region, base: u64, size: u64) -> Handle {
        let frame = self.current_frame();
        self.allocs.push(Alloc { region, base, size, frame, live: true });
        Handle(self.allocs.len() - 1)
    }

    fn add_ptr(&mut self, raw: u64, handle: usize) -> Ptr {
        self.ptrs.push((raw, handle));
        Ptr(self.ptrs.len() - 1)
    }

    /// Runtime invalid/double-free validation (CUDA provides this for every
    /// mechanism, §IX-B). Returns `Some(handle)` on a valid free, `None`
    /// (= detected) otherwise.
    fn runtime_free(&mut self, p: Ptr) -> Option<usize> {
        let (raw, handle) = self.ptrs[p.0];
        let addr = DevicePtr::from_raw(raw).addr();
        let a = self.allocs[handle];
        if !a.live || addr != a.base {
            return None; // double free or invalid (interior/wild) free
        }
        self.allocs[handle].live = false;
        Some(handle)
    }
}

// ---------------------------------------------------------------------------
// LMI
// ---------------------------------------------------------------------------

/// LMI under evaluation: real aligned allocators, the OCU on every derive,
/// the EC on every access, compiler-style nullification at free/scope end,
/// and optionally the §XII-C liveness tracker.
pub struct LmiDefense {
    cfg: PtrConfig,
    ocu: Ocu,
    ec: ExtentChecker,
    global: GlobalAllocator,
    heap: GlobalAllocator,
    stack: ThreadStack,
    shared: SharedLayout,
    shared_pool: Option<(u64, u64, u64)>, // (raw pool ptr, base, cursor)
    book: Book,
    tracker: Option<LivenessTracker>,
}

impl LmiDefense {
    /// Base LMI (paper §IV–§VIII).
    pub fn new() -> LmiDefense {
        Self::build(false)
    }

    /// LMI plus pointer liveness tracking (paper §XII-C).
    pub fn with_liveness() -> LmiDefense {
        Self::build(true)
    }

    fn build(track: bool) -> LmiDefense {
        let cfg = PtrConfig::default();
        LmiDefense {
            cfg,
            ocu: Ocu::new(cfg),
            ec: ExtentChecker::new(cfg),
            global: GlobalAllocator::new(
                cfg,
                AlignmentPolicy::PowerOfTwo,
                layout::GLOBAL_BASE,
                1 << 30,
            ),
            heap: GlobalAllocator::new(
                cfg,
                AlignmentPolicy::PowerOfTwo,
                layout::HEAP_BASE,
                1 << 30,
            ),
            stack: ThreadStack::new(cfg, AlignmentPolicy::PowerOfTwo, layout::LOCAL_BASE, 1 << 20),
            shared: SharedLayout::new(
                cfg,
                AlignmentPolicy::PowerOfTwo,
                layout::SHARED_BASE,
                192 * 1024,
            ),
            shared_pool: None,
            book: Book::default(),
            tracker: track.then(|| LivenessTracker::new(cfg)),
        }
    }

    fn check(&self, raw: u64) -> Outcome {
        if self.ec.check_access(raw).is_err() {
            return Outcome::Faulted;
        }
        if let Some(tracker) = &self.tracker {
            let p = DevicePtr::from_raw(raw);
            // The tracker covers heap/global objects (Algorithm 1 hooks
            // malloc/free); stack and shared lifetimes are compiler-managed.
            if p.is_valid(&self.cfg)
                && (p.addr() >= layout::GLOBAL_BASE && p.addr() < layout::LOCAL_BASE)
                && tracker.check_live(p).is_err()
            {
                return Outcome::Faulted;
            }
        }
        Outcome::Allowed
    }
}

impl Default for LmiDefense {
    fn default() -> Self {
        Self::new()
    }
}

impl Defense for LmiDefense {
    fn name(&self) -> &'static str {
        if self.tracker.is_some() {
            "LMI+liveness"
        } else {
            "LMI"
        }
    }

    fn alloc(&mut self, region: Region, size: u64) -> Handle {
        let raw = match region {
            Region::Global => self.global.alloc(size).expect("arena"),
            Region::Heap => self.heap.alloc(size).expect("arena"),
            Region::Local => self.stack.push(size).expect("stack"),
            Region::SharedStatic => self.shared.place_static(size).expect("shared"),
            Region::SharedDynamic => {
                // Sub-buffers carve the coarse pool: one extent for the
                // whole pool (paper §IX-A).
                if self.shared_pool.is_none() {
                    let raw = self.shared.place_dynamic_pool().expect("pool");
                    let base = DevicePtr::from_raw(raw).addr();
                    self.shared_pool = Some((raw, base, base));
                }
                let (raw_pool, pool_base, cursor) = self.shared_pool.unwrap();
                let sub = cursor;
                self.shared_pool = Some((raw_pool, pool_base, cursor + size.next_multiple_of(8)));
                // Pointer = pool pointer advanced to the sub-buffer.
                let delta = sub as i64 - pool_base as i64;
                let (derived, _) =
                    self.ocu.check_marked(raw_pool, raw_pool.wrapping_add(delta as u64));
                let h = self.book.add_alloc(region, sub, size);
                self.book.add_ptr(derived, h.0);
                return h;
            }
        };
        let base = DevicePtr::from_raw(raw).addr();
        let h = self.book.add_alloc(region, base, size);
        self.book.add_ptr(raw, h.0);
        if let Some(tracker) = &mut self.tracker {
            if matches!(region, Region::Global | Region::Heap) {
                let _ = tracker.on_malloc(DevicePtr::from_raw(raw));
            }
        }
        h
    }

    fn addr_of(&self, h: Handle) -> u64 {
        self.book.allocs[h.0].base
    }

    fn ptr_to(&mut self, h: Handle) -> Ptr {
        // The canonical pointer is the one created at allocation time: the
        // h-th allocation's first pointer. Find it by provenance.
        let idx = self
            .book
            .ptrs
            .iter()
            .position(|&(_, owner)| owner == h.0)
            .expect("allocation created a pointer");
        Ptr(idx)
    }

    fn derive(&mut self, p: Ptr, delta: i64) -> Ptr {
        let (raw, owner) = self.book.ptrs[p.0];
        let (out, _) = self.ocu.check_marked(raw, raw.wrapping_add(delta as u64));
        self.book.add_ptr(out, owner)
    }

    fn write(&mut self, p: Ptr, _width: u8) -> Outcome {
        self.check(self.book.ptrs[p.0].0)
    }

    fn read(&mut self, p: Ptr, _width: u8) -> Outcome {
        self.check(self.book.ptrs[p.0].0)
    }

    fn free(&mut self, p: Ptr) -> bool {
        let (raw, owner) = self.book.ptrs[p.0];
        // LMI's free() reads the extent to locate the buffer, so a pointer
        // whose extent was already nullified (earlier free) is rejected —
        // catching double frees even after the region was recycled.
        if !DevicePtr::from_raw(raw).is_valid(&self.cfg) {
            return true;
        }
        let region = self.book.allocs[owner].region;
        let result = match region {
            Region::Global => self.global.free(raw),
            Region::Heap => self.heap.free(raw),
            _ => return true, // freeing non-heap memory: invalid, rejected
        };
        match result {
            Ok(()) => {
                // Compiler-inserted extent nullification (§VIII) on the
                // pointer passed to free — copies are NOT nullified.
                self.book.ptrs[p.0].0 = lmi_core::invalidate_extent(raw);
                self.book.allocs[owner].live = false;
                if let Some(tracker) = &mut self.tracker {
                    let _ = tracker.on_free(DevicePtr::from_raw(raw));
                }
                false
            }
            Err(_) => true, // runtime detected invalid/double free
        }
    }

    fn begin_frame(&mut self) {
        self.book.begin_frame();
    }

    fn end_frame(&mut self) {
        // §VIII + §XII-B: pointers cannot be stored to memory, so the
        // compiler sees every value derived from a frame's allocas and
        // nullifies them all at scope exit.
        let frame = self.book.pop_frame();
        let dead: Vec<usize> = self
            .book
            .allocs
            .iter()
            .enumerate()
            .filter(|(_, a)| a.region == Region::Local && a.frame == frame && a.live)
            .map(|(i, _)| i)
            .collect();
        for &owner in &dead {
            self.book.allocs[owner].live = false;
            self.stack.pop();
        }
        for (raw, owner) in &mut self.book.ptrs {
            if dead.contains(owner) {
                *raw = lmi_core::invalidate_extent(*raw);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// GPUShield
// ---------------------------------------------------------------------------

/// GPUShield: fine-grained bounds for registered global (kernel-argument)
/// buffers, single-region checks for heap and stack, nothing for shared,
/// no temporal safety (the bounds table is not updated on free).
pub struct GpuShieldDefense {
    global: PackedArena,
    heap: PackedArena,
    stack: PackedArena,
    shared: PackedArena,
    book: Book,
    /// Registered per-buffer bounds (append-only: never cleared on free).
    regions: Vec<(u64, u64)>,
}

impl GpuShieldDefense {
    /// Fresh instance.
    pub fn new() -> GpuShieldDefense {
        GpuShieldDefense {
            global: PackedArena::new(layout::GLOBAL_BASE, 1 << 30, 256),
            heap: PackedArena::new(layout::HEAP_BASE, 1 << 30, 16),
            stack: PackedArena::new(layout::LOCAL_BASE, 1 << 20, 8),
            shared: PackedArena::new(layout::SHARED_BASE, 192 * 1024, 8),
            book: Book::default(),
            regions: Vec::new(),
        }
    }

    fn check(&self, raw: u64, owner: usize) -> Outcome {
        let addr = raw;
        match self.book.allocs[owner].region {
            Region::Global => {
                // Pointer tag identifies the buffer; the access is checked
                // against that buffer's registered bounds.
                let (base, size) = self.regions[self.region_index(owner)];
                if addr >= base && addr < base + size {
                    Outcome::Allowed
                } else {
                    Outcome::Faulted
                }
            }
            Region::Heap => {
                // One coarse region for the whole device heap (§IV-D).
                if (layout::HEAP_BASE..layout::HEAP_BASE + (1 << 30)).contains(&addr) {
                    Outcome::Allowed
                } else {
                    Outcome::Faulted
                }
            }
            Region::Local => {
                if (layout::LOCAL_BASE..layout::LOCAL_BASE + (1 << 20)).contains(&addr) {
                    Outcome::Allowed
                } else {
                    Outcome::Faulted
                }
            }
            // Shared memory is unprotected.
            Region::SharedStatic | Region::SharedDynamic => Outcome::Allowed,
        }
    }

    fn region_index(&self, owner: usize) -> usize {
        self.book.allocs.iter().take(owner).filter(|a| a.region == Region::Global).count()
    }
}

impl Default for GpuShieldDefense {
    fn default() -> Self {
        Self::new()
    }
}

impl Defense for GpuShieldDefense {
    fn name(&self) -> &'static str {
        "GPUShield"
    }

    fn alloc(&mut self, region: Region, size: u64) -> Handle {
        let base = match region {
            Region::Global => {
                let b = self.global.alloc(size);
                self.regions.push((b, size));
                b
            }
            Region::Heap => self.heap.alloc(size),
            Region::Local => self.stack.alloc(size),
            Region::SharedStatic | Region::SharedDynamic => self.shared.alloc(size),
        };
        let h = self.book.add_alloc(region, base, size);
        self.book.add_ptr(base, h.0);
        h
    }

    fn addr_of(&self, h: Handle) -> u64 {
        self.book.allocs[h.0].base
    }

    fn ptr_to(&mut self, h: Handle) -> Ptr {
        let idx = self
            .book
            .ptrs
            .iter()
            .position(|&(_, owner)| owner == h.0)
            .expect("allocation created a pointer");
        Ptr(idx)
    }

    fn derive(&mut self, p: Ptr, delta: i64) -> Ptr {
        let (raw, owner) = self.book.ptrs[p.0];
        self.book.add_ptr(raw.wrapping_add(delta as u64), owner)
    }

    fn write(&mut self, p: Ptr, _width: u8) -> Outcome {
        let (raw, owner) = self.book.ptrs[p.0];
        self.check(raw, owner)
    }

    fn read(&mut self, p: Ptr, _width: u8) -> Outcome {
        let (raw, owner) = self.book.ptrs[p.0];
        self.check(raw, owner)
    }

    fn free(&mut self, p: Ptr) -> bool {
        match self.book.runtime_free(p) {
            Some(owner) => {
                let a = self.book.allocs[owner];
                match a.region {
                    Region::Global => self.global.release(a.base, a.size),
                    Region::Heap => self.heap.release(a.base, a.size),
                    _ => {}
                }
                false
            }
            None => true,
        }
    }

    fn begin_frame(&mut self) {
        self.book.begin_frame();
    }

    fn end_frame(&mut self) {
        let frame = self.book.pop_frame();
        for a in &mut self.book.allocs {
            if a.region == Region::Local && a.frame == frame {
                a.live = false;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// cuCatch
// ---------------------------------------------------------------------------

/// cuCatch: shadow tags over the *unchanged* packed layout. Heap is
/// uncovered; stack objects are individually tagged but granule-limited.
pub struct CuCatchDefense {
    global: PackedArena,
    heap: PackedArena,
    stack: PackedArena,
    shared: PackedArena,
    tags: CuCatch,
    /// handle -> pointer tag
    handle_tags: Vec<Tag>,
    /// per-pointer tag (copies inherit provenance).
    ptr_tags: Vec<Tag>,
    pool_tag: Option<Tag>,
    pool: Option<(u64, u64)>,
    book: Book,
}

impl CuCatchDefense {
    /// Fresh instance.
    pub fn new() -> CuCatchDefense {
        CuCatchDefense {
            global: PackedArena::new(layout::GLOBAL_BASE, 1 << 30, 256),
            heap: PackedArena::new(layout::HEAP_BASE, 1 << 30, 16),
            // Stack objects pack at 4-byte alignment: sub-granule adjacency
            // is real here (the source of the two missed local cases).
            stack: PackedArena::new(layout::LOCAL_BASE, 1 << 20, 4),
            shared: PackedArena::new(layout::SHARED_BASE, 192 * 1024, 4),
            tags: CuCatch::new(),
            handle_tags: Vec::new(),
            ptr_tags: Vec::new(),
            pool_tag: None,
            pool: None,
            book: Book::default(),
        }
    }
}

impl Default for CuCatchDefense {
    fn default() -> Self {
        Self::new()
    }
}

impl Defense for CuCatchDefense {
    fn name(&self) -> &'static str {
        "cuCatch"
    }

    fn alloc(&mut self, region: Region, size: u64) -> Handle {
        let (base, tag) = match region {
            Region::Global => {
                let b = self.global.alloc(size);
                (b, self.tags.tag_buffer(b, size))
            }
            Region::Heap => (self.heap.alloc(size), self.tags.untagged()),
            Region::Local => {
                let b = self.stack.alloc(size);
                (b, self.tags.tag_buffer(b, size))
            }
            Region::SharedStatic => {
                let b = self.shared.alloc(size);
                (b, self.tags.tag_buffer(b, size))
            }
            Region::SharedDynamic => {
                // The dynamic pool carries a single tag.
                if self.pool.is_none() {
                    let pool_size = 64 * 1024;
                    let b = self.shared.alloc(pool_size);
                    self.pool = Some((b, b));
                    self.pool_tag = Some(self.tags.tag_dynamic_shared_pool(b, pool_size));
                }
                let (_, cursor) = self.pool.as_mut().unwrap();
                let b = *cursor;
                *cursor += size.next_multiple_of(8);
                (b, self.pool_tag.unwrap())
            }
        };
        let h = self.book.add_alloc(region, base, size);
        self.handle_tags.push(tag);
        self.book.add_ptr(base, h.0);
        self.ptr_tags.push(tag);
        h
    }

    fn addr_of(&self, h: Handle) -> u64 {
        self.book.allocs[h.0].base
    }

    fn ptr_to(&mut self, h: Handle) -> Ptr {
        let idx = self
            .book
            .ptrs
            .iter()
            .position(|&(_, owner)| owner == h.0)
            .expect("allocation created a pointer");
        Ptr(idx)
    }

    fn derive(&mut self, p: Ptr, delta: i64) -> Ptr {
        let (raw, owner) = self.book.ptrs[p.0];
        let tag = self.ptr_tags[p.0];
        let out = self.book.add_ptr(raw.wrapping_add(delta as u64), owner);
        self.ptr_tags.push(tag);
        out
    }

    fn write(&mut self, p: Ptr, _width: u8) -> Outcome {
        let (raw, _) = self.book.ptrs[p.0];
        if self.tags.check(self.ptr_tags[p.0], raw).is_err() {
            Outcome::Faulted
        } else {
            Outcome::Allowed
        }
    }

    fn read(&mut self, p: Ptr, width: u8) -> Outcome {
        self.write(p, width)
    }

    fn free(&mut self, p: Ptr) -> bool {
        match self.book.runtime_free(p) {
            Some(owner) => {
                let a = self.book.allocs[owner];
                self.tags.free(a.base);
                match a.region {
                    Region::Global => self.global.release(a.base, a.size),
                    Region::Heap => self.heap.release(a.base, a.size),
                    _ => {}
                }
                false
            }
            None => true,
        }
    }

    fn begin_frame(&mut self) {
        self.book.begin_frame();
    }

    fn end_frame(&mut self) {
        let frame = self.book.pop_frame();
        let dead: Vec<(u64, u64)> = self
            .book
            .allocs
            .iter_mut()
            .filter(|a| a.region == Region::Local && a.frame == frame && a.live)
            .map(|a| {
                a.live = false;
                (a.base, a.size)
            })
            .collect();
        for (base, size) in dead {
            self.tags.free(base);
            self.stack.release(base, size);
        }
    }
}

// ---------------------------------------------------------------------------
// GMOD
// ---------------------------------------------------------------------------

/// GMOD: canaries around global buffers, scanned at synchronization points;
/// writes really land in a functional memory so canary damage is physical.
pub struct GmodDefense {
    global: PackedArena,
    heap: PackedArena,
    stack: PackedArena,
    shared: PackedArena,
    memory: SparseMemory,
    canary: CanaryAllocator,
    book: Book,
}

impl GmodDefense {
    /// Fresh instance.
    pub fn new() -> GmodDefense {
        GmodDefense {
            // Leave canary headroom via a 512-byte packing pitch.
            global: PackedArena::new(layout::GLOBAL_BASE + 256, 1 << 30, 256),
            heap: PackedArena::new(layout::HEAP_BASE, 1 << 30, 16),
            stack: PackedArena::new(layout::LOCAL_BASE, 1 << 20, 8),
            shared: PackedArena::new(layout::SHARED_BASE, 192 * 1024, 8),
            memory: SparseMemory::new(),
            canary: CanaryAllocator::new(),
            book: Book::default(),
        }
    }
}

impl Default for GmodDefense {
    fn default() -> Self {
        Self::new()
    }
}

impl Defense for GmodDefense {
    fn name(&self) -> &'static str {
        "GMOD"
    }

    fn alloc(&mut self, region: Region, size: u64) -> Handle {
        let base = match region {
            Region::Global => {
                // Reserve canary space on both sides.
                let b = self.global.alloc(size + 2 * lmi_baselines::canary::CANARY_BYTES)
                    + lmi_baselines::canary::CANARY_BYTES;
                self.canary.guard(&mut self.memory, b, size);
                b
            }
            Region::Heap => self.heap.alloc(size),
            Region::Local => self.stack.alloc(size),
            Region::SharedStatic | Region::SharedDynamic => self.shared.alloc(size),
        };
        let h = self.book.add_alloc(region, base, size);
        self.book.add_ptr(base, h.0);
        h
    }

    fn addr_of(&self, h: Handle) -> u64 {
        self.book.allocs[h.0].base
    }

    fn ptr_to(&mut self, h: Handle) -> Ptr {
        let idx = self
            .book
            .ptrs
            .iter()
            .position(|&(_, owner)| owner == h.0)
            .expect("allocation created a pointer");
        Ptr(idx)
    }

    fn derive(&mut self, p: Ptr, delta: i64) -> Ptr {
        let (raw, owner) = self.book.ptrs[p.0];
        self.book.add_ptr(raw.wrapping_add(delta as u64), owner)
    }

    fn write(&mut self, p: Ptr, width: u8) -> Outcome {
        // No inline check — but the write physically lands, so canaries
        // record the damage for the next scan.
        let (raw, _) = self.book.ptrs[p.0];
        self.memory.write(raw, 0, width.min(8));
        Outcome::Allowed
    }

    fn read(&mut self, _p: Ptr, _width: u8) -> Outcome {
        Outcome::Allowed
    }

    fn free(&mut self, p: Ptr) -> bool {
        self.book.runtime_free(p).is_none()
    }

    fn begin_frame(&mut self) {
        self.book.begin_frame();
    }

    fn end_frame(&mut self) {
        let frame = self.book.pop_frame();
        for a in &mut self.book.allocs {
            if a.region == Region::Local && a.frame == frame {
                a.live = false;
            }
        }
    }

    fn sync_scan(&mut self) -> bool {
        !self.canary.scan(&self.memory).is_empty()
    }
}
