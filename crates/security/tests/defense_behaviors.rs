//! Behavioral unit tests of the individual [`Defense`] implementations —
//! the layout and detection properties Table III's cell values rest on.

use lmi_security::cases::all_cases;
use lmi_security::defense::{overrun, poke, victim_delta, Defense, Region};
use lmi_security::{CuCatchDefense, GmodDefense, GpuShieldDefense, LmiDefense};

#[test]
fn lmi_layout_moves_adjacent_victims_out_of_the_region() {
    let mut d = LmiDefense::new();
    let a = d.alloc(Region::Global, 1000); // rounds to 1024
    let v = d.alloc(Region::Global, 1000);
    let delta = victim_delta(&d, a, v);
    assert!(delta >= 1024, "aligned allocation separates the victim: {delta}");
}

#[test]
fn packed_layouts_keep_victims_adjacent() {
    let mut d = CuCatchDefense::new();
    let a = d.alloc(Region::Local, 20);
    let v = d.alloc(Region::Local, 20);
    let delta = victim_delta(&d, a, v);
    assert_eq!(delta.unsigned_abs(), 20, "cuCatch does not move objects");
}

#[test]
fn lmi_neutralizes_slack_writes_but_faults_region_escapes() {
    let mut d = LmiDefense::new();
    let a = d.alloc(Region::Global, 100); // 256-byte region
    let p = d.ptr_to(a);
    // Writes into the slack are unchecked but harmless (no other object).
    let slack = d.derive(p, 150);
    assert!(!d.write(slack, 4).faulted());
    // The first write past the region faults.
    let escape = d.derive(p, 256);
    assert!(d.write(escape, 4).faulted());
}

#[test]
fn cucatch_granule_aliasing_hides_subgranule_neighbors() {
    let mut d = CuCatchDefense::new();
    let a = d.alloc(Region::Local, 20);
    let v = d.alloc(Region::Local, 20);
    let delta = victim_delta(&d, a, v);
    let p = d.ptr_to(a);
    // The adjacent overrun rides the shared 16-byte granule: undetected.
    assert!(!overrun(&mut d, p, if delta > 0 { 20 } else { -1 }, delta).faulted());
    // A far poke into untagged memory is detected.
    assert!(poke(&mut d, p, 4096).faulted());
}

#[test]
fn gpushield_is_fine_grained_for_globals_only() {
    let mut d = GpuShieldDefense::new();
    let a = d.alloc(Region::Global, 1024);
    let _v = d.alloc(Region::Global, 1024);
    let p = d.ptr_to(a);
    assert!(poke(&mut d, p, 1024).faulted(), "past the registered bounds");
    // Heap: a single coarse region — intra-heap overflow invisible.
    let h = d.alloc(Region::Heap, 1024);
    let hp = d.ptr_to(h);
    assert!(!poke(&mut d, hp, 4096).faulted());
    assert!(poke(&mut d, hp, 1 << 31).faulted(), "beyond the heap arena");
}

#[test]
fn gmod_detects_only_on_scan_and_only_contiguous_writes() {
    let mut d = GmodDefense::new();
    let a = d.alloc(Region::Global, 256);
    let v = d.alloc(Region::Global, 256);
    let delta = victim_delta(&d, a, v);
    let p = d.ptr_to(a);
    // The overrun write itself is never faulted inline …
    assert!(!overrun(&mut d, p, 256, delta).faulted());
    // … the canary scan at the next sync point reports it.
    assert!(d.sync_scan());
}

#[test]
fn lmi_uas_nullifies_copies_too() {
    let mut d = LmiDefense::new();
    d.begin_frame();
    let a = d.alloc(Region::Local, 64);
    let p = d.ptr_to(a);
    let copy = d.derive(p, 8);
    d.end_frame();
    assert!(d.read(p, 4).faulted(), "original nullified at scope exit");
    assert!(d.read(copy, 4).faulted(), "compiler sees and nullifies copies");
}

#[test]
fn lmi_heap_uaf_misses_copies_without_liveness_tracking() {
    let mut base = LmiDefense::new();
    let a = base.alloc(Region::Heap, 256);
    let p = base.ptr_to(a);
    let copy = base.derive(p, 8);
    assert!(!base.free(p));
    assert!(base.read(p, 4).faulted(), "freed pointer faults");
    assert!(!base.read(copy, 4).faulted(), "copy slips through (Fig. 11)");

    let mut tracked = LmiDefense::with_liveness();
    let a = tracked.alloc(Region::Heap, 256);
    let p = tracked.ptr_to(a);
    let copy = tracked.derive(p, 8);
    assert!(!tracked.free(p));
    assert!(tracked.read(copy, 4).faulted(), "liveness tracking closes the hole");
}

#[test]
fn every_case_runs_on_every_defense_without_panicking() {
    for case in all_cases() {
        for which in 0..4 {
            let mut d: Box<dyn Defense> = match which {
                0 => Box::new(GmodDefense::new()),
                1 => Box::new(GpuShieldDefense::new()),
                2 => Box::new(CuCatchDefense::new()),
                _ => Box::new(LmiDefense::new()),
            };
            let _ = (case.run)(d.as_mut());
        }
    }
}

#[test]
fn lmi_detects_every_non_intra_spatial_case() {
    for case in all_cases()
        .iter()
        .filter(|c| c.class.is_spatial() && c.class != lmi_security::CaseClass::IntraOob)
    {
        let mut d = LmiDefense::new();
        assert!((case.run)(&mut d), "LMI must protect against {}", case.name);
    }
}

#[test]
fn no_mechanism_false_positives_on_benign_controls() {
    for case in lmi_security::benign_controls() {
        for which in 0..5 {
            let mut d: Box<dyn Defense> = match which {
                0 => Box::new(GmodDefense::new()),
                1 => Box::new(GpuShieldDefense::new()),
                2 => Box::new(CuCatchDefense::new()),
                3 => Box::new(LmiDefense::new()),
                _ => Box::new(LmiDefense::with_liveness()),
            };
            assert!((case.run)(d.as_mut()), "{} false-positived on {}", d.name(), case.name);
        }
    }
}
