//! Randomized property tests on the allocators: alignment, non-overlap,
//! RSS accounting, and recycling invariants under arbitrary alloc/free
//! interleavings. Seeded SplitMix64 keeps failures reproducible.

use lmi_alloc::{AlignmentPolicy, DeviceHeap, GlobalAllocator, ThreadStack};
use lmi_core::{DevicePtr, PtrConfig};
use lmi_telemetry::SplitMix64;

const ARENA: u64 = 0x0100_0000_0000;
const HEAP: u64 = 0x0200_0000_0000;
const STACK: u64 = 0x0300_0000_0000;

#[derive(Debug, Clone)]
enum Op {
    Alloc(u64),
    /// Free the n-th oldest live allocation (modulo live count).
    Free(usize),
}

fn ops(rng: &mut SplitMix64) -> Vec<Op> {
    let count = rng.range(1, 60) as usize;
    (0..count)
        .map(|_| {
            if rng.chance(0.5) {
                Op::Alloc(rng.range(1, 200_000))
            } else {
                Op::Free(rng.below(16) as usize)
            }
        })
        .collect()
}

#[test]
fn global_allocator_invariants() {
    let mut rng = SplitMix64::new(0xA110C);
    for case in 0..200 {
        let cfg = PtrConfig::default();
        let mut a = GlobalAllocator::new(cfg, AlignmentPolicy::PowerOfTwo, ARENA, 1 << 32);
        let mut live: Vec<(u64, u64)> = Vec::new(); // (raw, requested)
        for op in ops(&mut rng) {
            match op {
                Op::Alloc(size) => {
                    let raw = a.alloc(size).unwrap();
                    let p = DevicePtr::from_raw(raw);
                    // Alignment: base is aligned to the rounded size.
                    let rounded = cfg.round_up(size).unwrap();
                    assert_eq!(p.addr() % rounded, 0, "case {case}");
                    assert_eq!(p.size(&cfg), Some(rounded), "case {case}");
                    // Non-overlap with every live buffer.
                    for &(other, _) in &live {
                        let q = DevicePtr::from_raw(other);
                        let (b1, s1) = (p.addr(), rounded);
                        let (b2, s2) = (q.addr(), q.size(&cfg).unwrap());
                        assert!(
                            b1 + s1 <= b2 || b2 + s2 <= b1,
                            "case {case}: overlap {b1:#x}+{s1} vs {b2:#x}+{s2}"
                        );
                    }
                    live.push((raw, size));
                }
                Op::Free(n) => {
                    if !live.is_empty() {
                        let (raw, _) = live.remove(n % live.len());
                        assert!(a.free(raw).is_ok(), "case {case}");
                    }
                }
            }
            // RSS accounting matches the live set exactly.
            let expect: u64 = live.iter().map(|&(_, s)| cfg.round_up(s).unwrap()).sum();
            assert_eq!(a.rss().current, expect, "case {case}");
            assert_eq!(a.live_count(), live.len(), "case {case}");
        }
    }
}

#[test]
fn double_free_always_detected() {
    let mut rng = SplitMix64::new(0xD0B1E);
    for _ in 0..300 {
        let size = rng.range(1, 100_000);
        let cfg = PtrConfig::default();
        let mut a = GlobalAllocator::new(cfg, AlignmentPolicy::PowerOfTwo, ARENA, 1 << 32);
        let raw = a.alloc(size).unwrap();
        a.free(raw).unwrap();
        assert!(a.free(raw).is_err(), "size={size}");
    }
}

#[test]
fn device_heap_pointers_are_valid_and_disjoint() {
    let mut rng = SplitMix64::new(0x8EA9);
    for case in 0..150 {
        let cfg = PtrConfig::default();
        let heap = DeviceHeap::new(cfg, AlignmentPolicy::PowerOfTwo, HEAP, 8, 1 << 24);
        let mut regions: Vec<(u64, u64)> = Vec::new();
        let count = rng.range(1, 40) as usize;
        for tid in 0..count {
            let size = rng.range(1, 50_000);
            let raw = heap.malloc(tid, size).unwrap();
            let p = DevicePtr::from_raw(raw);
            assert!(p.is_valid(&cfg), "case {case} size={size}");
            let s = p.size(&cfg).unwrap();
            assert!(s >= size, "case {case} size={size}");
            assert_eq!(p.addr() % s, 0, "case {case} size={size}");
            for &(b2, s2) in &regions {
                assert!(p.addr() + s <= b2 || b2 + s2 <= p.addr(), "case {case}: overlap");
            }
            regions.push((p.addr(), s));
        }
    }
}

#[test]
fn stack_frames_nest_and_restore() {
    let mut rng = SplitMix64::new(0x57AC);
    for case in 0..200 {
        let cfg = PtrConfig::default();
        let mut stack = ThreadStack::new(cfg, AlignmentPolicy::PowerOfTwo, STACK, 1 << 20);
        let sp0 = stack.sp();
        let count = rng.range(1, 12) as usize;
        for _ in 0..count {
            let size = rng.range(1, 4_000);
            let raw = stack.push(size).unwrap();
            let p = DevicePtr::from_raw(raw);
            let s = p.size(&cfg).unwrap();
            assert_eq!(p.addr() % s, 0, "case {case}: frame self-aligned");
        }
        for _ in 0..count {
            stack.pop();
        }
        assert_eq!(stack.sp(), sp0, "case {case}: LIFO discipline restores sp");
    }
}

#[test]
fn policies_agree_on_power_of_two_sizes() {
    // Power-of-two requests cost the same under both policies — the
    // reason the perf workloads are layout-fair between runs.
    for exp in 8u32..22 {
        let cfg = PtrConfig::default();
        let size = 1u64 << exp;
        let mut base = GlobalAllocator::new(cfg, AlignmentPolicy::CudaDefault, ARENA, 1 << 32);
        let mut lmi = GlobalAllocator::new(cfg, AlignmentPolicy::PowerOfTwo, ARENA, 1 << 32);
        base.alloc(size).unwrap();
        lmi.alloc(size).unwrap();
        assert_eq!(base.rss().peak, lmi.rss().peak, "exp={exp}");
    }
}
