//! Property tests on the allocators: alignment, non-overlap, RSS
//! accounting, and recycling invariants under arbitrary alloc/free
//! interleavings.

use lmi_alloc::{AlignmentPolicy, DeviceHeap, GlobalAllocator, ThreadStack};
use lmi_core::{DevicePtr, PtrConfig};
use proptest::prelude::*;

const ARENA: u64 = 0x0100_0000_0000;
const HEAP: u64 = 0x0200_0000_0000;
const STACK: u64 = 0x0300_0000_0000;

#[derive(Debug, Clone)]
enum Op {
    Alloc(u64),
    /// Free the n-th oldest live allocation (modulo live count).
    Free(usize),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (1u64..200_000).prop_map(Op::Alloc),
            (0usize..16).prop_map(Op::Free),
        ],
        1..60,
    )
}

proptest! {
    #[test]
    fn global_allocator_invariants(ops in arb_ops()) {
        let cfg = PtrConfig::default();
        let mut a = GlobalAllocator::new(cfg, AlignmentPolicy::PowerOfTwo, ARENA, 1 << 32);
        let mut live: Vec<(u64, u64)> = Vec::new(); // (raw, requested)
        for op in ops {
            match op {
                Op::Alloc(size) => {
                    let raw = a.alloc(size).unwrap();
                    let p = DevicePtr::from_raw(raw);
                    // Alignment: base is aligned to the rounded size.
                    let rounded = cfg.round_up(size).unwrap();
                    prop_assert_eq!(p.addr() % rounded, 0);
                    prop_assert_eq!(p.size(&cfg), Some(rounded));
                    // Non-overlap with every live buffer.
                    for &(other, _) in &live {
                        let q = DevicePtr::from_raw(other);
                        let (b1, s1) = (p.addr(), rounded);
                        let (b2, s2) = (q.addr(), q.size(&cfg).unwrap());
                        prop_assert!(b1 + s1 <= b2 || b2 + s2 <= b1,
                            "overlap {:#x}+{} vs {:#x}+{}", b1, s1, b2, s2);
                    }
                    live.push((raw, size));
                }
                Op::Free(n) => {
                    if !live.is_empty() {
                        let (raw, _) = live.remove(n % live.len());
                        prop_assert!(a.free(raw).is_ok());
                    }
                }
            }
            // RSS accounting matches the live set exactly.
            let expect: u64 = live
                .iter()
                .map(|&(_, s)| cfg.round_up(s).unwrap())
                .sum();
            prop_assert_eq!(a.rss().current, expect);
            prop_assert_eq!(a.live_count(), live.len());
        }
    }

    #[test]
    fn double_free_always_detected(size in 1u64..100_000) {
        let cfg = PtrConfig::default();
        let mut a = GlobalAllocator::new(cfg, AlignmentPolicy::PowerOfTwo, ARENA, 1 << 32);
        let raw = a.alloc(size).unwrap();
        a.free(raw).unwrap();
        prop_assert!(a.free(raw).is_err());
    }

    #[test]
    fn device_heap_pointers_are_valid_and_disjoint(
        sizes in proptest::collection::vec(1u64..50_000, 1..40),
    ) {
        let cfg = PtrConfig::default();
        let heap = DeviceHeap::new(cfg, AlignmentPolicy::PowerOfTwo, HEAP, 8, 1 << 24);
        let mut regions: Vec<(u64, u64)> = Vec::new();
        for (tid, &size) in sizes.iter().enumerate() {
            let raw = heap.malloc(tid, size).unwrap();
            let p = DevicePtr::from_raw(raw);
            prop_assert!(p.is_valid(&cfg));
            let s = p.size(&cfg).unwrap();
            prop_assert!(s >= size);
            prop_assert_eq!(p.addr() % s, 0);
            for &(b2, s2) in &regions {
                prop_assert!(p.addr() + s <= b2 || b2 + s2 <= p.addr());
            }
            regions.push((p.addr(), s));
        }
    }

    #[test]
    fn stack_frames_nest_and_restore(sizes in proptest::collection::vec(1u64..4_000, 1..12)) {
        let cfg = PtrConfig::default();
        let mut stack = ThreadStack::new(cfg, AlignmentPolicy::PowerOfTwo, STACK, 1 << 20);
        let sp0 = stack.sp();
        let mut frames = Vec::new();
        for &size in &sizes {
            let raw = stack.push(size).unwrap();
            let p = DevicePtr::from_raw(raw);
            let s = p.size(&cfg).unwrap();
            prop_assert_eq!(p.addr() % s, 0, "frame self-aligned");
            frames.push(raw);
        }
        for _ in &sizes {
            stack.pop();
        }
        prop_assert_eq!(stack.sp(), sp0, "LIFO discipline restores sp");
    }

    #[test]
    fn policies_agree_on_power_of_two_sizes(exp in 8u32..22) {
        // Power-of-two requests cost the same under both policies — the
        // reason the perf workloads are layout-fair between runs.
        let cfg = PtrConfig::default();
        let size = 1u64 << exp;
        let mut base = GlobalAllocator::new(cfg, AlignmentPolicy::CudaDefault, ARENA, 1 << 32);
        let mut lmi = GlobalAllocator::new(cfg, AlignmentPolicy::PowerOfTwo, ARENA, 1 << 32);
        base.alloc(size).unwrap();
        lmi.alloc(size).unwrap();
        prop_assert_eq!(base.rss().peak, lmi.rss().peak);
    }
}
