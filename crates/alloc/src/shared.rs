//! Shared-memory allocation at kernel launch (paper §V-B, §IX-A).
//!
//! Shared memory is sized at launch; aligning it is the kernel driver's
//! job. LMI protects **statically allocated** shared objects individually
//! (each gets a 2ⁿ-aligned slot and an extent-carrying pointer) and treats
//! the **dynamic** pool as a single coarse region, because fine-grained
//! alignment would fragment the small shared-memory pool and dynamic layout
//! is owned by proprietary driver code (paper §IX-A).

use lmi_core::{DevicePtr, PtrConfig};

use crate::{AlignmentPolicy, AllocError};

/// The shared-memory layout of one thread block, fixed at launch.
#[derive(Debug, Clone)]
pub struct SharedLayout {
    cfg: PtrConfig,
    policy: AlignmentPolicy,
    window_base: u64,
    window_len: u64,
    cursor: u64,
    statics: Vec<(u64, u64, u64)>, // (base, requested, reserved)
    dynamic: Option<(u64, u64)>,   // (base, len) — coarse region
}

impl SharedLayout {
    /// Creates the layout over the block's shared window.
    ///
    /// # Panics
    ///
    /// Panics if the window is not K-aligned.
    pub fn new(
        cfg: PtrConfig,
        policy: AlignmentPolicy,
        window_base: u64,
        window_len: u64,
    ) -> SharedLayout {
        assert_eq!(window_base % cfg.min_align(), 0);
        SharedLayout {
            cfg,
            policy,
            window_base,
            window_len,
            cursor: window_base,
            statics: Vec::new(),
            dynamic: None,
        }
    }

    /// Places one static `__shared__` object of `size` bytes; returns its
    /// pointer (extent-carrying under LMI).
    ///
    /// # Errors
    ///
    /// [`AllocError::OutOfMemory`] when the window is full.
    pub fn place_static(&mut self, size: u64) -> Result<u64, AllocError> {
        let reserved = self.policy.round(size, &self.cfg);
        let align = self.policy.alignment_for(reserved, &self.cfg);
        let base = self.cursor.next_multiple_of(align);
        if base + reserved > self.window_base + self.window_len {
            return Err(AllocError::OutOfMemory);
        }
        self.cursor = base + reserved;
        self.statics.push((base, size, reserved));
        match self.policy {
            AlignmentPolicy::CudaDefault => Ok(base),
            AlignmentPolicy::PowerOfTwo => Ok(DevicePtr::encode(base, size, &self.cfg)
                .expect("driver aligns shared objects")
                .raw()),
        }
    }

    /// Reserves the rest of the window as the dynamic pool; returns a
    /// *coarse* pointer covering the whole pool (LMI's §IX-A fallback).
    ///
    /// # Errors
    ///
    /// [`AllocError::OutOfMemory`] if nothing remains.
    pub fn place_dynamic_pool(&mut self) -> Result<u64, AllocError> {
        let remaining_start = self.cursor.next_multiple_of(self.cfg.min_align());
        let end = self.window_base + self.window_len;
        if remaining_start >= end {
            return Err(AllocError::OutOfMemory);
        }
        let len = end - remaining_start;
        self.dynamic = Some((remaining_start, len));
        match self.policy {
            AlignmentPolicy::CudaDefault => Ok(remaining_start),
            AlignmentPolicy::PowerOfTwo => {
                // Coarse protection: the extent covers the whole pool; the
                // base must be aligned to the rounded pool size, so fall
                // back to the largest aligned sub-extent that fits.
                let mut size = self.cfg.round_up(len).unwrap_or(len);
                while !remaining_start.is_multiple_of(size) || size > len {
                    size /= 2;
                }
                Ok(DevicePtr::encode(remaining_start, size, &self.cfg)
                    .expect("aligned by construction")
                    .raw())
            }
        }
    }

    /// Total bytes consumed by static placements.
    pub fn static_bytes(&self) -> u64 {
        self.cursor - self.window_base
    }

    /// Ground truth: the static object containing `addr`.
    pub fn static_containing(&self, addr: u64) -> Option<(u64, u64, u64)> {
        self.statics
            .iter()
            .copied()
            .find(|&(base, _, reserved)| addr >= base && addr < base + reserved)
    }

    /// The dynamic pool, if placed.
    pub fn dynamic_pool(&self) -> Option<(u64, u64)> {
        self.dynamic
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: u64 = 0x0000_0100_0000;

    fn layout() -> SharedLayout {
        SharedLayout::new(PtrConfig::default(), AlignmentPolicy::PowerOfTwo, BASE, 48 * 1024)
    }

    #[test]
    fn statics_get_individual_extents() {
        let cfg = PtrConfig::default();
        let mut l = layout();
        let a = DevicePtr::from_raw(l.place_static(1000).unwrap());
        let b = DevicePtr::from_raw(l.place_static(2048).unwrap());
        assert_eq!(a.size(&cfg), Some(1024));
        assert_eq!(b.size(&cfg), Some(2048));
        assert!(a.addr() + 1024 <= b.addr());
    }

    #[test]
    fn dynamic_pool_gets_coarse_extent() {
        let cfg = PtrConfig::default();
        let mut l = layout();
        l.place_static(1024).unwrap();
        let pool = DevicePtr::from_raw(l.place_dynamic_pool().unwrap());
        assert!(pool.is_valid(&cfg));
        let (pool_base, pool_len) = l.dynamic_pool().unwrap();
        assert_eq!(pool.addr(), pool_base);
        assert!(pool.size(&cfg).unwrap() <= cfg.round_up(pool_len).unwrap());
    }

    #[test]
    fn window_exhaustion_detected() {
        let mut l =
            SharedLayout::new(PtrConfig::default(), AlignmentPolicy::PowerOfTwo, BASE, 2048);
        l.place_static(1024).unwrap();
        l.place_static(1024).unwrap();
        assert_eq!(l.place_static(1), Err(AllocError::OutOfMemory));
        assert_eq!(l.place_dynamic_pool(), Err(AllocError::OutOfMemory));
    }

    #[test]
    fn baseline_packs_at_256() {
        let mut l =
            SharedLayout::new(PtrConfig::default(), AlignmentPolicy::CudaDefault, BASE, 48 * 1024);
        let a = l.place_static(100).unwrap();
        let b = l.place_static(100).unwrap();
        assert_eq!(b - a, 256);
    }

    #[test]
    fn ground_truth_lookup() {
        let mut l = layout();
        let p = DevicePtr::from_raw(l.place_static(500).unwrap());
        let (base, req, res) = l.static_containing(p.addr() + 40).unwrap();
        assert_eq!((base, req, res), (p.addr(), 500, 512));
    }
}
