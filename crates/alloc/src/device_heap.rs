//! The in-kernel `malloc`/`free` analogue (paper Fig. 5 and §IV-E).
//!
//! CUDA's device allocator manages memory as **buffer groups**: allocations
//! are rounded to multiples of a *chunk unit* whose size depends on the
//! request (the paper observed multiples of 80 bytes for small requests and
//! 2208 bytes for larger ones), each carries an allocation header, and small
//! buffers share a *group header* so concurrent threads touch disjoint group
//! metadata. This pre-existing rounding is why the paper argues LMI's 2ⁿ
//! rounding adds little *additional* fragmentation on the device heap
//! (up to ~50 % already exists in the baseline).
//!
//! Groups are striped across threads (`thread_id % groups`) behind
//! independent locks, modeling Fig. 3's concurrent per-thread allocation.

use std::collections::HashMap;

use std::sync::Mutex;

use lmi_core::{DevicePtr, PtrConfig};

use crate::{AlignmentPolicy, AllocError};

/// Chunk unit for small requests (paper Fig. 5: multiples of 80 bytes).
pub const SMALL_CHUNK: u64 = 80;

/// Chunk unit for large requests (paper Fig. 5: multiples of 2208 bytes).
pub const LARGE_CHUNK: u64 = 2208;

/// Requests up to this size use the small chunk unit.
pub const SMALL_LIMIT: u64 = 1024;

/// Per-allocation header bytes maintained by the baseline allocator.
pub const ALLOC_HEADER: u64 = 16;

/// Per-group header bytes (shared by the allocations of one group).
pub const GROUP_HEADER: u64 = 32;

/// Aggregate statistics of the device heap.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceHeapStats {
    /// Raw bytes requested by live allocations.
    pub requested: u64,
    /// Bytes actually reserved (chunk rounding + headers).
    pub reserved: u64,
    /// Peak reserved bytes.
    pub peak_reserved: u64,
    /// Bytes spent on allocation and group headers.
    pub header_bytes: u64,
    /// Number of live allocations.
    pub live: u64,
}

impl DeviceHeapStats {
    /// Fragmentation of the live set: reserved / requested − 1.
    pub fn fragmentation(&self) -> f64 {
        if self.requested == 0 {
            0.0
        } else {
            self.reserved as f64 / self.requested as f64 - 1.0
        }
    }
}

#[derive(Debug, Default)]
struct Group {
    cursor: u64,
    live: HashMap<u64, (u64, u64)>, // base -> (requested, reserved)
    freed: Vec<u64>,                // bases already freed (double-free check)
    header_charged: bool,
}

/// The device heap: one instance serves all threads of a kernel.
#[derive(Debug)]
pub struct DeviceHeap {
    cfg: PtrConfig,
    policy: AlignmentPolicy,
    arena_base: u64,
    group_span: u64,
    groups: Vec<Mutex<Group>>,
    stats: Mutex<DeviceHeapStats>,
    /// Owning runtime tenant when this heap is one arena of a partitioned
    /// multi-tenant device heap (`lmi-runtime`). Attribution only.
    tenant: Option<usize>,
}

impl DeviceHeap {
    /// Creates a heap over `[arena_base, arena_base + groups * group_span)`.
    ///
    /// # Panics
    ///
    /// Panics if `groups == 0` or the spans are not K-aligned.
    pub fn new(
        cfg: PtrConfig,
        policy: AlignmentPolicy,
        arena_base: u64,
        groups: usize,
        group_span: u64,
    ) -> DeviceHeap {
        assert!(groups > 0, "at least one buffer group");
        assert_eq!(arena_base % cfg.min_align(), 0);
        assert_eq!(group_span % cfg.min_align(), 0);
        DeviceHeap {
            cfg,
            policy,
            arena_base,
            group_span,
            groups: (0..groups).map(|_| Mutex::new(Group::default())).collect(),
            stats: Mutex::new(DeviceHeapStats::default()),
            tenant: None,
        }
    }

    /// Tags the heap with its owning runtime tenant (builder style).
    pub fn with_tenant(mut self, tenant: usize) -> DeviceHeap {
        self.tenant = Some(tenant);
        self
    }

    /// The owning tenant, if the heap is tenant-tagged.
    pub fn tenant(&self) -> Option<usize> {
        self.tenant
    }

    /// The heap's arena as `[base, end)` — disjoint per tenant, so a raw
    /// device address attributes to at most one tenant heap.
    pub fn arena_range(&self) -> std::ops::Range<u64> {
        self.arena_base..self.arena_base + self.groups.len() as u64 * self.group_span
    }

    /// Number of buffer groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// The chunk unit the baseline allocator would use for `size`
    /// (paper Fig. 5).
    pub fn chunk_unit(size: u64) -> u64 {
        if size <= SMALL_LIMIT {
            SMALL_CHUNK
        } else {
            LARGE_CHUNK
        }
    }

    fn reserved_for(&self, size: u64) -> (u64, u64) {
        // Returns (reserved bytes, header bytes within them).
        match self.policy {
            AlignmentPolicy::CudaDefault => {
                let unit = Self::chunk_unit(size);
                let reserved = (size + ALLOC_HEADER).div_ceil(unit) * unit;
                (reserved, ALLOC_HEADER)
            }
            AlignmentPolicy::PowerOfTwo => {
                // LMI folds the header into the rounded region.
                let reserved = self.cfg.round_up(size.max(1)).unwrap_or(size);
                (reserved, 0)
            }
        }
    }

    /// Allocates `size` bytes on behalf of `thread_id`.
    ///
    /// # Errors
    ///
    /// [`AllocError::OutOfMemory`] when the thread's group is exhausted.
    pub fn malloc(&self, thread_id: usize, size: u64) -> Result<u64, AllocError> {
        let (reserved, header) = self.reserved_for(size);
        let gid = thread_id % self.groups.len();
        let group_base = self.arena_base + gid as u64 * self.group_span;
        let mut group = self.groups[gid].lock().unwrap();

        let align = self.policy.alignment_for(reserved, &self.cfg);
        let base = (group_base + group.cursor).next_multiple_of(align);
        if base + reserved > group_base + self.group_span {
            return Err(AllocError::OutOfMemory);
        }
        group.cursor = base + reserved - group_base;
        group.live.insert(base, (size, reserved));
        group.freed.retain(|b| *b != base);

        let mut stats = self.stats.lock().unwrap();
        stats.requested += size;
        stats.reserved += reserved;
        stats.header_bytes += header;
        if !group.header_charged && self.policy == AlignmentPolicy::CudaDefault {
            group.header_charged = true;
            stats.reserved += GROUP_HEADER;
            stats.header_bytes += GROUP_HEADER;
        }
        stats.live += 1;
        stats.peak_reserved = stats.peak_reserved.max(stats.reserved);
        drop(stats);
        drop(group);

        match self.policy {
            AlignmentPolicy::CudaDefault => Ok(base),
            AlignmentPolicy::PowerOfTwo => Ok(DevicePtr::encode(base, size, &self.cfg)
                .expect("group allocations are aligned and in range")
                .raw()),
        }
    }

    /// Frees an allocation made by any thread.
    ///
    /// # Errors
    ///
    /// [`AllocError::DoubleFree`] / [`AllocError::InvalidFree`] as detected
    /// by the runtime (paper §IX-B: provided by basic CUDA functions).
    pub fn free(&self, raw: u64) -> Result<(), AllocError> {
        let addr = DevicePtr::from_raw(raw).addr();
        if addr < self.arena_base
            || addr >= self.arena_base + self.groups.len() as u64 * self.group_span
        {
            return Err(AllocError::InvalidFree(addr));
        }
        let gid = ((addr - self.arena_base) / self.group_span) as usize;
        let mut group = self.groups[gid].lock().unwrap();
        match group.live.remove(&addr) {
            Some((requested, reserved)) => {
                group.freed.push(addr);
                let mut stats = self.stats.lock().unwrap();
                stats.requested -= requested;
                stats.reserved -= reserved;
                stats.live -= 1;
                Ok(())
            }
            None if group.freed.contains(&addr) => Err(AllocError::DoubleFree(addr)),
            None => Err(AllocError::InvalidFree(addr)),
        }
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> DeviceHeapStats {
        *self.stats.lock().unwrap()
    }

    /// Ground truth for the security suite: the live heap buffer containing
    /// `addr` as `(base, requested, reserved)`.
    pub fn buffer_containing(&self, addr: u64) -> Option<(u64, u64, u64)> {
        let span = self.groups.len() as u64 * self.group_span;
        if addr < self.arena_base || addr >= self.arena_base + span {
            return None;
        }
        let gid = ((addr - self.arena_base) / self.group_span) as usize;
        let group = self.groups[gid].lock().unwrap();
        group
            .live
            .iter()
            .find(|(base, (_, reserved))| addr >= **base && addr < **base + reserved)
            .map(|(base, (req, res))| (*base, *req, *res))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ARENA: u64 = 0x0200_0000_0000;

    fn heap(policy: AlignmentPolicy) -> DeviceHeap {
        DeviceHeap::new(PtrConfig::default(), policy, ARENA, 4, 1 << 20)
    }

    #[test]
    fn baseline_rounds_to_chunk_units() {
        let h = heap(AlignmentPolicy::CudaDefault);
        // 64 B + 16 B header rounds to one 80 B chunk (Fig. 5).
        h.malloc(0, 64).unwrap();
        let s = h.stats();
        assert_eq!(s.reserved, 80 + GROUP_HEADER);
        // 2000 B + header rounds to one 2208 B chunk.
        h.malloc(0, 2000).unwrap();
        assert_eq!(h.stats().reserved, 80 + 2208 + GROUP_HEADER);
    }

    #[test]
    fn baseline_fragmentation_can_approach_fifty_percent() {
        let h = heap(AlignmentPolicy::CudaDefault);
        // 1104-byte requests reserve 2208 — ~50 % waste plus headers
        // ("memory fragmentation of up to 50%", §IV-E).
        for t in 0..16 {
            h.malloc(t, 1104).unwrap();
        }
        let frag = h.stats().fragmentation();
        assert!(frag > 0.45 && frag < 1.2, "got {frag}");
    }

    #[test]
    fn lmi_rounds_to_powers_of_two() {
        let cfg = PtrConfig::default();
        let h = heap(AlignmentPolicy::PowerOfTwo);
        let p = h.malloc(3, 600).unwrap();
        let ptr = DevicePtr::from_raw(p);
        assert_eq!(ptr.size(&cfg), Some(1024));
        assert_eq!(ptr.addr() % 1024, 0);
    }

    #[test]
    fn threads_land_in_distinct_groups() {
        let h = heap(AlignmentPolicy::PowerOfTwo);
        let p0 = h.malloc(0, 256).unwrap();
        let p1 = h.malloc(1, 256).unwrap();
        let span = 1 << 20;
        let g0 = (DevicePtr::from_raw(p0).addr() - ARENA) / span;
        let g1 = (DevicePtr::from_raw(p1).addr() - ARENA) / span;
        assert_ne!(g0, g1, "warp neighbors use different buffer groups (Fig. 3/5)");
    }

    #[test]
    fn variable_sizes_per_thread_like_fig3() {
        // Each lane of a warp allocates tid * 4 bytes (paper Fig. 3).
        let cfg = PtrConfig::default();
        let h = heap(AlignmentPolicy::PowerOfTwo);
        for tid in 1..32usize {
            let p = h.malloc(tid, tid as u64 * 4).unwrap();
            let ptr = DevicePtr::from_raw(p);
            assert!(ptr.is_valid(&cfg));
            assert_eq!(ptr.size(&cfg), Some(cfg.round_up(tid as u64 * 4).unwrap()));
        }
        assert_eq!(h.stats().live, 31);
    }

    #[test]
    fn free_and_double_free() {
        let h = heap(AlignmentPolicy::PowerOfTwo);
        let p = h.malloc(0, 512).unwrap();
        h.free(p).unwrap();
        assert!(matches!(h.free(p), Err(AllocError::DoubleFree(_))));
        assert!(matches!(h.free(0xDEAD), Err(AllocError::InvalidFree(_))));
    }

    #[test]
    fn concurrent_malloc_from_many_threads() {
        use std::sync::Arc;
        let h = Arc::new(heap(AlignmentPolicy::PowerOfTwo));
        let mut handles = Vec::new();
        for t in 0..8usize {
            let h = Arc::clone(&h);
            handles.push(std::thread::spawn(move || {
                let mut ptrs = Vec::new();
                for i in 0..50u64 {
                    ptrs.push(h.malloc(t, 64 + i * 8).unwrap());
                }
                for p in ptrs {
                    h.free(p).unwrap();
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(h.stats().live, 0);
        assert_eq!(h.stats().requested, 0);
    }

    #[test]
    fn ground_truth_lookup() {
        let h = heap(AlignmentPolicy::PowerOfTwo);
        let p = h.malloc(0, 500).unwrap();
        let addr = DevicePtr::from_raw(p).addr();
        let (base, req, res) = h.buffer_containing(addr + 100).unwrap();
        assert_eq!((base, req, res), (addr, 500, 512));
        assert!(h.buffer_containing(addr + 512).is_none());
    }
}
