//! The host-side global-memory allocator (`cudaMalloc`/`cudaFree` analogue,
//! paper §V-B).
//!
//! Under the [`AlignmentPolicy::PowerOfTwo`] policy the allocator rounds
//! every request to the smallest 2ⁿ size, places it at a 2ⁿ-aligned address,
//! and embeds the 5-bit extent in the returned pointer. `free` validates the
//! pointer (invalid-free / double-free detection is provided by the basic
//! CUDA runtime, paper §IX-B) and recycles the region.
//!
//! The allocator tracks **peak RSS** under both policies so Fig. 4's
//! fragmentation overhead (`LMI RSS / base RSS − 1`) can be measured
//! directly.

use std::collections::{BTreeMap, HashMap};

use lmi_core::{DevicePtr, PtrConfig};

use crate::{AlignmentPolicy, AllocError};

/// Resident-set accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RssStats {
    /// Currently reserved bytes.
    pub current: u64,
    /// High-water mark of reserved bytes.
    pub peak: u64,
    /// Sum of raw requested bytes for live allocations.
    pub requested: u64,
}

impl RssStats {
    fn add(&mut self, reserved: u64, requested: u64) {
        self.current += reserved;
        self.requested += requested;
        self.peak = self.peak.max(self.current);
    }

    fn remove(&mut self, reserved: u64, requested: u64) {
        self.current -= reserved;
        self.requested -= requested;
    }
}

#[derive(Debug, Clone, Copy)]
struct LiveAlloc {
    reserved: u64,
    requested: u64,
}

/// A global-arena allocator with free-list recycling.
#[derive(Debug)]
pub struct GlobalAllocator {
    cfg: PtrConfig,
    policy: AlignmentPolicy,
    arena_base: u64,
    arena_end: u64,
    cursor: u64,
    live: HashMap<u64, LiveAlloc>,
    /// Free regions keyed by reserved size (exact-fit recycling).
    free: BTreeMap<u64, Vec<u64>>,
    rss: RssStats,
    alloc_count: u64,
    /// Owning runtime tenant, if this arena is one slice of a partitioned
    /// multi-tenant address space (`lmi-runtime`). Pure attribution
    /// metadata: allocation behaviour is unchanged.
    tenant: Option<usize>,
}

impl GlobalAllocator {
    /// Creates an allocator over `[arena_base, arena_base + arena_len)`.
    ///
    /// # Panics
    ///
    /// Panics if `arena_base` is not aligned to the minimum allocation size.
    pub fn new(
        cfg: PtrConfig,
        policy: AlignmentPolicy,
        arena_base: u64,
        arena_len: u64,
    ) -> GlobalAllocator {
        assert_eq!(arena_base % cfg.min_align(), 0, "arena base must be K-aligned");
        GlobalAllocator {
            cfg,
            policy,
            arena_base,
            arena_end: arena_base + arena_len,
            cursor: arena_base,
            live: HashMap::new(),
            free: BTreeMap::new(),
            rss: RssStats::default(),
            alloc_count: 0,
            tenant: None,
        }
    }

    /// Tags the arena with its owning runtime tenant (builder style).
    pub fn with_tenant(mut self, tenant: usize) -> GlobalAllocator {
        self.tenant = Some(tenant);
        self
    }

    /// The owning tenant, if the arena is tenant-tagged.
    pub fn tenant(&self) -> Option<usize> {
        self.tenant
    }

    /// `true` if `addr` falls inside this arena's address range — the
    /// runtime's "whose memory is this?" attribution primitive.
    pub fn owns(&self, addr: u64) -> bool {
        (self.arena_base..self.arena_end).contains(&addr)
    }

    /// A convenience constructor over the standard global arena
    /// (see `lmi_mem::layout`'s constants — callers pass the base).
    pub fn policy(&self) -> AlignmentPolicy {
        self.policy
    }

    /// The pointer-format configuration.
    pub fn config(&self) -> &PtrConfig {
        &self.cfg
    }

    /// The arena's base address.
    pub fn arena_base(&self) -> u64 {
        self.arena_base
    }

    /// Allocates `size` bytes; returns the raw pointer value (with extent
    /// metadata under the `PowerOfTwo` policy, a bare address otherwise).
    ///
    /// # Errors
    ///
    /// [`AllocError::OutOfMemory`] when the arena is exhausted and
    /// [`AllocError::SizeTooLarge`] past the device limit.
    pub fn alloc(&mut self, size: u64) -> Result<u64, AllocError> {
        if self.policy == AlignmentPolicy::PowerOfTwo && size > self.cfg.max_size() {
            return Err(AllocError::SizeTooLarge(size));
        }
        let reserved = self.policy.round(size, &self.cfg);
        let align = self.policy.alignment_for(reserved, &self.cfg);

        let base = if let Some(list) = self.free.get_mut(&reserved) {
            let base = list.pop().expect("non-empty free list");
            if list.is_empty() {
                self.free.remove(&reserved);
            }
            base
        } else {
            let base = self.cursor.next_multiple_of(align);
            if base + reserved > self.arena_end {
                return Err(AllocError::OutOfMemory);
            }
            self.cursor = base + reserved;
            base
        };

        self.live.insert(base, LiveAlloc { reserved, requested: size });
        self.rss.add(reserved, size);
        self.alloc_count += 1;

        match self.policy {
            AlignmentPolicy::CudaDefault => Ok(base),
            AlignmentPolicy::PowerOfTwo => Ok(DevicePtr::encode(base, size, &self.cfg)
                .expect("allocator produces aligned in-range addresses")
                .raw()),
        }
    }

    /// Frees an allocation. Accepts the raw pointer returned by
    /// [`GlobalAllocator::alloc`]; under LMI the extent is ignored for
    /// lookup (the address identifies the buffer).
    ///
    /// # Errors
    ///
    /// * [`AllocError::InvalidFree`] if the address is not an allocation
    ///   base (including interior pointers);
    /// * [`AllocError::DoubleFree`] if the allocation was already freed.
    pub fn free(&mut self, raw: u64) -> Result<(), AllocError> {
        let addr = DevicePtr::from_raw(raw).addr();
        match self.live.remove(&addr) {
            Some(info) => {
                self.rss.remove(info.reserved, info.requested);
                self.free.entry(info.reserved).or_default().push(addr);
                Ok(())
            }
            None => {
                // Distinguish double free (previously live, now recycled or
                // freed) from a wild/interior pointer.
                let was_ours = self.free.values().any(|list| list.contains(&addr));
                if was_ours {
                    Err(AllocError::DoubleFree(addr))
                } else {
                    Err(AllocError::InvalidFree(addr))
                }
            }
        }
    }

    /// RSS statistics under the active policy.
    pub fn rss(&self) -> RssStats {
        self.rss
    }

    /// Number of live allocations.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Total allocations performed.
    pub fn alloc_count(&self) -> u64 {
        self.alloc_count
    }

    /// Ground truth for the security suite: the live buffer containing
    /// `addr`, as `(base, requested_size, reserved_size)`.
    pub fn buffer_containing(&self, addr: u64) -> Option<(u64, u64, u64)> {
        self.live
            .iter()
            .find(|(base, info)| addr >= **base && addr < **base + info.reserved)
            .map(|(base, info)| (*base, info.requested, info.reserved))
    }

    /// Returns `true` if `addr` falls within the *requested* bytes of a live
    /// buffer (the paper's notion of an in-bounds access).
    pub fn in_requested_bounds(&self, addr: u64) -> bool {
        self.buffer_containing(addr)
            .map(|(base, requested, _)| addr < base + requested.max(1))
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ARENA: u64 = 0x0100_0000_0000;

    fn lmi() -> GlobalAllocator {
        GlobalAllocator::new(PtrConfig::default(), AlignmentPolicy::PowerOfTwo, ARENA, 1 << 30)
    }

    fn base() -> GlobalAllocator {
        GlobalAllocator::new(PtrConfig::default(), AlignmentPolicy::CudaDefault, ARENA, 1 << 30)
    }

    #[test]
    fn lmi_pointers_carry_extent_and_alignment() {
        let cfg = PtrConfig::default();
        let mut a = lmi();
        let raw = a.alloc(1000).unwrap();
        let p = DevicePtr::from_raw(raw);
        assert_eq!(p.size(&cfg), Some(1024));
        assert_eq!(p.addr() % 1024, 0, "1024-byte aligned");
    }

    #[test]
    fn base_pointers_are_bare_256_aligned_addresses() {
        let mut a = base();
        let raw = a.alloc(1000).unwrap();
        assert_eq!(DevicePtr::from_raw(raw).extent(), 0);
        assert_eq!(raw % 256, 0);
    }

    #[test]
    fn allocations_never_overlap() {
        let mut a = lmi();
        let mut regions = Vec::new();
        for size in [100u64, 257, 1024, 5000, 300, 70000] {
            let raw = a.alloc(size).unwrap();
            let p = DevicePtr::from_raw(raw);
            let cfg = PtrConfig::default();
            regions.push((p.addr(), p.size(&cfg).unwrap()));
        }
        for (i, &(b1, s1)) in regions.iter().enumerate() {
            for &(b2, s2) in &regions[i + 1..] {
                assert!(b1 + s1 <= b2 || b2 + s2 <= b1, "overlap: {b1:#x}+{s1} vs {b2:#x}+{s2}");
            }
        }
    }

    #[test]
    fn rss_reflects_policy_fragmentation() {
        let mut l = lmi();
        let mut b = base();
        // 1032-byte allocations: base reserves 1280, LMI reserves 2048.
        for _ in 0..10 {
            l.alloc(1032).unwrap();
            b.alloc(1032).unwrap();
        }
        assert_eq!(b.rss().peak, 12_800);
        assert_eq!(l.rss().peak, 20_480);
        let overhead = l.rss().peak as f64 / b.rss().peak as f64 - 1.0;
        assert!((overhead - 0.6).abs() < 1e-9);
    }

    #[test]
    fn free_recycles_regions() {
        let mut a = lmi();
        let p1 = a.alloc(512).unwrap();
        let addr1 = DevicePtr::from_raw(p1).addr();
        a.free(p1).unwrap();
        let p2 = a.alloc(500).unwrap(); // same 512 size class
        assert_eq!(DevicePtr::from_raw(p2).addr(), addr1, "region recycled");
        assert_eq!(a.live_count(), 1);
    }

    #[test]
    fn double_free_and_invalid_free_detected() {
        let mut a = lmi();
        let p = a.alloc(256).unwrap();
        a.free(p).unwrap();
        assert_eq!(a.free(p), Err(AllocError::DoubleFree(DevicePtr::from_raw(p).addr())));
        assert_eq!(a.free(ARENA + 0xDEAD00), Err(AllocError::InvalidFree(ARENA + 0xDEAD00)));
        // Interior pointers are not valid free targets.
        let q = a.alloc(1024).unwrap();
        assert!(matches!(a.free(q + 8), Err(AllocError::InvalidFree(_))));
    }

    #[test]
    fn rss_drops_after_free() {
        let mut a = lmi();
        let p = a.alloc(4096).unwrap();
        assert_eq!(a.rss().current, 4096);
        a.free(p).unwrap();
        assert_eq!(a.rss().current, 0);
        assert_eq!(a.rss().peak, 4096, "peak persists");
    }

    #[test]
    fn out_of_memory_is_reported() {
        let mut a =
            GlobalAllocator::new(PtrConfig::default(), AlignmentPolicy::PowerOfTwo, ARENA, 4096);
        a.alloc(2048).unwrap();
        a.alloc(2048).unwrap();
        assert_eq!(a.alloc(256), Err(AllocError::OutOfMemory));
    }

    #[test]
    fn ground_truth_lookup() {
        let mut a = lmi();
        let p = a.alloc(1000).unwrap();
        let addr = DevicePtr::from_raw(p).addr();
        assert!(a.in_requested_bounds(addr + 999));
        assert!(!a.in_requested_bounds(addr + 1000), "past requested bytes");
        let (base, requested, reserved) = a.buffer_containing(addr + 1001).unwrap();
        assert_eq!((base, requested, reserved), (addr, 1000, 1024));
    }
}
