//! Per-thread stack (local-memory) allocation (paper Fig. 7).
//!
//! On a real GPU the driver writes the stack top into constant bank 0 and
//! the compiler reserves frames by subtracting from it (`IADD3 R1, R1,
//! -0x60, RZ`). Under LMI the driver first aligns the stack top and the
//! compiler subtracts sizes **rounded up to powers of two**, so every stack
//! buffer is 2ⁿ-aligned and its pointer carries an extent.

use lmi_core::{DevicePtr, PtrConfig};

use crate::{AlignmentPolicy, AllocError};

/// One thread's downward-growing stack.
#[derive(Debug, Clone)]
pub struct ThreadStack {
    cfg: PtrConfig,
    policy: AlignmentPolicy,
    window_base: u64,
    sp: u64,
    frames: Vec<(u64, u64)>, // (buffer base, reserved size)
}

impl ThreadStack {
    /// A stack over the window `[window_base, window_base + len)`, with the
    /// stack pointer starting at the top.
    ///
    /// # Panics
    ///
    /// Panics if the window is not K-aligned (the driver aligns it, §V-B).
    pub fn new(cfg: PtrConfig, policy: AlignmentPolicy, window_base: u64, len: u64) -> ThreadStack {
        assert_eq!(window_base % cfg.min_align(), 0);
        assert_eq!(len % cfg.min_align(), 0);
        ThreadStack { cfg, policy, window_base, sp: window_base + len, frames: Vec::new() }
    }

    /// The current stack pointer.
    pub fn sp(&self) -> u64 {
        self.sp
    }

    /// Reserves a stack buffer of `size` bytes (an `alloca`); returns its
    /// pointer — extent-carrying under the `PowerOfTwo` policy.
    ///
    /// # Errors
    ///
    /// [`AllocError::OutOfMemory`] on stack overflow (the window is fixed).
    pub fn push(&mut self, size: u64) -> Result<u64, AllocError> {
        let reserved = self.policy.round(size, &self.cfg);
        let align = self.policy.alignment_for(reserved, &self.cfg);
        // Subtract then align downward, like the compiler-emitted IADD3.
        let base = (self.sp - reserved) & !(align - 1);
        if base < self.window_base {
            return Err(AllocError::OutOfMemory);
        }
        self.sp = base;
        self.frames.push((base, reserved));
        match self.policy {
            AlignmentPolicy::CudaDefault => Ok(base),
            AlignmentPolicy::PowerOfTwo => Ok(DevicePtr::encode(base, size, &self.cfg)
                .expect("frame base is aligned by construction")
                .raw()),
        }
    }

    /// Pops the most recent buffer (scope exit). The *caller* (compiler
    /// pass) is responsible for nullifying pointers into it (§VIII).
    ///
    /// # Panics
    ///
    /// Panics if no frame is live.
    pub fn pop(&mut self) -> u64 {
        let (base, reserved) = self.frames.pop().expect("pop on empty stack");
        self.sp = base + reserved;
        base
    }

    /// Bytes currently reserved in the window.
    pub fn used(&self) -> u64 {
        self.frames.iter().map(|&(_, r)| r).sum()
    }

    /// Ground truth: the live stack buffer containing `addr`.
    pub fn buffer_containing(&self, addr: u64) -> Option<(u64, u64)> {
        self.frames.iter().copied().find(|&(base, reserved)| addr >= base && addr < base + reserved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const WINDOW: u64 = 0x0300_0000_0000;
    const LEN: u64 = 64 * 1024;

    fn lmi() -> ThreadStack {
        ThreadStack::new(PtrConfig::default(), AlignmentPolicy::PowerOfTwo, WINDOW, LEN)
    }

    #[test]
    fn fig7_example_96_bytes() {
        // `int buf[24]` = 96 bytes: baseline reserves 0x60-ish (256 here due
        // to K), LMI rounds to 256 and aligns.
        let cfg = PtrConfig::default();
        let mut s = lmi();
        let p = s.push(96).unwrap();
        let ptr = DevicePtr::from_raw(p);
        assert_eq!(ptr.size(&cfg), Some(256));
        assert_eq!(ptr.addr() % 256, 0);
        assert!(ptr.addr() >= WINDOW && ptr.addr() < WINDOW + LEN);
    }

    #[test]
    fn frames_nest_downward_without_overlap() {
        let mut s = lmi();
        let a = DevicePtr::from_raw(s.push(300).unwrap());
        let b = DevicePtr::from_raw(s.push(100).unwrap());
        let cfg = PtrConfig::default();
        assert!(b.addr() + b.size(&cfg).unwrap() <= a.addr(), "stack grows down");
    }

    #[test]
    fn pop_restores_the_stack_pointer() {
        let mut s = lmi();
        let sp0 = s.sp();
        s.push(512).unwrap();
        s.push(256).unwrap();
        s.pop();
        s.pop();
        assert_eq!(s.sp(), sp0);
        assert_eq!(s.used(), 0);
    }

    #[test]
    fn overflow_is_detected() {
        let mut s =
            ThreadStack::new(PtrConfig::default(), AlignmentPolicy::PowerOfTwo, WINDOW, 1024);
        s.push(512).unwrap();
        s.push(256).unwrap();
        s.push(256).unwrap();
        assert_eq!(s.push(1), Err(AllocError::OutOfMemory));
    }

    #[test]
    fn baseline_policy_returns_bare_pointers() {
        let mut s =
            ThreadStack::new(PtrConfig::default(), AlignmentPolicy::CudaDefault, WINDOW, LEN);
        let p = s.push(96).unwrap();
        assert_eq!(DevicePtr::from_raw(p).extent(), 0);
    }

    #[test]
    fn ground_truth_lookup() {
        let mut s = lmi();
        let p = DevicePtr::from_raw(s.push(100).unwrap());
        assert!(s.buffer_containing(p.addr() + 50).is_some());
        s.pop();
        assert!(s.buffer_containing(p.addr() + 50).is_none(), "dead after pop");
    }
}
