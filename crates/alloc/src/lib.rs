//! # lmi-alloc — power-of-two-aligned GPU memory allocators
//!
//! The runtime half of LMI (paper §V): every memory type gets an allocation
//! policy that produces 2ⁿ-aligned buffers and embeds the extent into the
//! returned pointer.
//!
//! * [`global`] — the `cudaMalloc`/`cudaFree` analogue over the global
//!   arena, with peak-RSS accounting used to reproduce the fragmentation
//!   study of paper Fig. 4;
//! * [`device_heap`] — the in-kernel `malloc`/`free` analogue: a
//!   buffer-group allocator with chunk units and shared group headers
//!   mirroring CUDA's allocator (paper Fig. 5), thread-striped so warps can
//!   allocate concurrently (paper Fig. 3);
//! * [`stack`] — per-thread stack frames, power-of-two aligned as the LMI
//!   compiler emits them (paper Fig. 7);
//! * [`shared`] — per-block shared-memory allocation, aligned by the
//!   "driver" at kernel launch.
//!
//! Each allocator runs under an [`AlignmentPolicy`]: `CudaDefault` (256-byte
//! granularity — the unprotected baseline) or `PowerOfTwo` (LMI). The RSS
//! delta between the two policies *is* the paper's memory-fragmentation
//! metric.

pub mod device_heap;
pub mod global;
pub mod shared;
pub mod stack;

use lmi_core::PtrConfig;

/// Size-rounding policy applied by an allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlignmentPolicy {
    /// CUDA's default 256-byte allocation granularity (baseline).
    CudaDefault,
    /// LMI's power-of-two rounding with in-pointer extent metadata.
    PowerOfTwo,
}

impl AlignmentPolicy {
    /// Rounds a requested size according to the policy.
    pub fn round(self, size: u64, cfg: &PtrConfig) -> u64 {
        let size = size.max(1);
        match self {
            AlignmentPolicy::CudaDefault => {
                let k = cfg.min_align();
                size.div_ceil(k) * k
            }
            AlignmentPolicy::PowerOfTwo => cfg.round_up(size).unwrap_or(size),
        }
    }

    /// The address alignment the policy guarantees for a rounded size.
    pub fn alignment_for(self, rounded: u64, cfg: &PtrConfig) -> u64 {
        match self {
            AlignmentPolicy::CudaDefault => cfg.min_align(),
            AlignmentPolicy::PowerOfTwo => rounded.max(cfg.min_align()),
        }
    }
}

/// Errors from the allocators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// The arena is exhausted.
    OutOfMemory,
    /// The requested size exceeds the device limit.
    SizeTooLarge(u64),
    /// `free` of a pointer that is not a live allocation base.
    InvalidFree(u64),
    /// Second `free` of the same allocation.
    DoubleFree(u64),
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::OutOfMemory => write!(f, "arena exhausted"),
            AllocError::SizeTooLarge(s) => write!(f, "allocation of {s} bytes exceeds limit"),
            AllocError::InvalidFree(a) => write!(f, "invalid free of {a:#x}"),
            AllocError::DoubleFree(a) => write!(f, "double free of {a:#x}"),
        }
    }
}

impl std::error::Error for AllocError {}

pub use device_heap::{DeviceHeap, DeviceHeapStats};
pub use global::{GlobalAllocator, RssStats};
pub use shared::SharedLayout;
pub use stack::ThreadStack;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounding_policies_differ_exactly_as_fig4_expects() {
        let cfg = PtrConfig::default();
        // A power-of-two-plus-header allocation (the backprop/needle case):
        // base rounds 1032 -> 1280, LMI doubles it to 2048.
        assert_eq!(AlignmentPolicy::CudaDefault.round(1032, &cfg), 1280);
        assert_eq!(AlignmentPolicy::PowerOfTwo.round(1032, &cfg), 2048);
        // An already-aligned allocation costs the same under both.
        assert_eq!(AlignmentPolicy::CudaDefault.round(4096, &cfg), 4096);
        assert_eq!(AlignmentPolicy::PowerOfTwo.round(4096, &cfg), 4096);
    }

    #[test]
    fn alignment_guarantees() {
        let cfg = PtrConfig::default();
        assert_eq!(AlignmentPolicy::CudaDefault.alignment_for(1280, &cfg), 256);
        assert_eq!(AlignmentPolicy::PowerOfTwo.alignment_for(2048, &cfg), 2048);
    }
}
