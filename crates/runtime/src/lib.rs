//! # lmi-runtime — an asynchronous host runtime over the LMI simulator
//!
//! The paper evaluates LMI one kernel at a time; real GPU deployments —
//! and the multi-tenant threat model its §XIII sketches — run *many*
//! kernels, from many clients, concurrently. This crate is the missing
//! host layer: a CUDA-like runtime with
//!
//! * [`Runtime`] — streams ([`StreamId`]) as in-order work queues, events
//!   ([`EventId`]) for cross-stream dependencies, and a
//!   `cudaDeviceSynchronize`-style [`Runtime::synchronize`] fixpoint that
//!   drains everything deterministically;
//! * [`Tenant`] — per-client allocator arenas (disjoint global/heap
//!   slices) and a per-client LMI mechanism instance, so a violation is
//!   attributable to the tenant and stream that caused it;
//! * [`CopyConfig`] — a first-order H2D/D2H DMA cost model (latency +
//!   bandwidth, one engine per direction) so copies overlap compute;
//! * [`scheduler::partition_sms`] — demand-proportional spatial
//!   partitioning: every stream with a kernel ready joins a *cohort* that
//!   runs in one resident simulation over disjoint SM partitions
//!   (`lmi_sim::Gpu::run_resident`), contending for the shared L2/DRAM.
//!
//! Everything is driven by simulated cycles, never host time, so a
//! runtime program produces bit-identical [`RuntimeReport`]s, counters
//! and event stamps at any `sim_threads` setting — the property the
//! workspace's determinism suite pins down.
//!
//! ## Example
//!
//! ```
//! use lmi_isa::{Instruction, ProgramBuilder};
//! use lmi_runtime::Runtime;
//! use lmi_sim::{GpuConfig, Launch};
//!
//! let mut rt = Runtime::new(GpuConfig::small());
//! let tenant = rt.add_tenant(true); // LMI-protected
//! let stream = rt.create_stream(tenant)?;
//! let buf = rt.malloc(tenant, 1024)?;
//!
//! let mut b = ProgramBuilder::new("noop");
//! b.push(Instruction::exit());
//! rt.memcpy_h2d(stream, buf, &[1, 2, 3])?;
//! rt.launch(stream, Launch::new(b.build()).grid(2).block(64).param(buf))?;
//! rt.synchronize()?;
//! assert_eq!(rt.report().kernels.len(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod copy;
pub mod metrics;
pub mod runtime;
pub mod scheduler;
pub mod stream;
pub mod tenant;

pub use copy::CopyConfig;
pub use metrics::{MetricsSnapshot, TenantSlo};
pub use runtime::{CopyReport, KernelReport, Runtime, RuntimeReport, SubmitError, SyncError};
pub use stream::{CopyHandle, EventId, StreamId};
pub use tenant::{Tenant, TenantMechanism};

/// A multi-tenant runtime session. The serving-layer docs (and the
/// metrics surface) talk about *sessions*; `Session` is that name for
/// [`Runtime`] — `Session::metrics_snapshot()` is the observability
/// entry point.
pub type Session = Runtime;
