//! The runtime core: stream submission, the copy engines, and the
//! cohort scheduler that multiplexes kernels onto disjoint SM partitions.
//!
//! # Execution model
//!
//! Host calls ([`Runtime::memcpy_h2d`], [`Runtime::launch`], …) only
//! *enqueue* work; nothing simulates until [`Runtime::synchronize`].
//! Synchronize runs a fixpoint loop over three deterministic steps:
//!
//! 1. **Events** — `RecordEvent` at a stream head stamps the event with
//!    the stream's logical clock; `WaitEvent` blocks the stream until the
//!    event is stamped, then advances the clock to the stamp.
//! 2. **Copies** — each direction has one engine; among streams whose
//!    head is a copy of that direction, the engine picks the transfer
//!    with the least `(start_cycle, stream_id)` and serializes it.
//! 3. **Kernels** — every stream with a kernel at its head joins a
//!    *cohort*: the GPU's SMs are split into disjoint partitions
//!    proportional to warp demand ([`crate::scheduler::partition_sms`])
//!    and the whole cohort runs in **one** resident engine invocation
//!    ([`Gpu::run_resident`]), so concurrent kernels contend for the
//!    shared L2/DRAM while keeping per-kernel mechanisms and stats.
//!
//! Every decision is a pure function of queue contents and simulated
//! cycles — never host time or host thread interleaving — so a runtime
//! program produces bit-identical reports at any `sim_threads` setting.

use std::collections::BTreeMap;
use std::ops::Range;

use lmi_alloc::AllocError;
use lmi_core::DevicePtr;
use lmi_sim::{Gpu, GpuConfig, Launch, LaunchError, ResidentKernel, SimStats};
use lmi_telemetry::{
    CounterRegistry, EventTracer, HistogramRegistry, Json, KernelProfile, MetricsFrame, Scope,
    TelemetrySink, TraceEventKind,
};

use crate::copy::CopyConfig;
use crate::metrics::{MetricsSnapshot, TenantSlo};
use crate::scheduler::partition_sms;
use crate::stream::{CopyHandle, EventId, StreamId, StreamOp, StreamState};
use crate::tenant::{Tenant, TenantMechanism};

/// Why a host submission was rejected (the queue is left untouched).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// No stream with this id exists.
    UnknownStream(StreamId),
    /// No event with this id exists.
    UnknownEvent(EventId),
    /// No tenant with this id exists.
    UnknownTenant(usize),
    /// The launch cannot run on this GPU even alone; satellite of the
    /// paper's robustness story — a bad tenant must not crash the
    /// simulation, it gets a typed rejection.
    Launch(LaunchError),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::UnknownStream(s) => write!(f, "unknown stream {s}"),
            SubmitError::UnknownEvent(e) => write!(f, "unknown event {e}"),
            SubmitError::UnknownTenant(t) => write!(f, "unknown tenant {t}"),
            SubmitError::Launch(e) => write!(f, "launch rejected: {e}"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why [`Runtime::synchronize`] could not drain the queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncError {
    /// A stream is blocked on an event that no remaining op will record.
    Deadlock {
        /// The first blocked stream (lowest id).
        stream: StreamId,
        /// The event it waits on, if its head op is a wait.
        event: Option<EventId>,
    },
}

impl std::fmt::Display for SyncError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SyncError::Deadlock { stream, event: Some(e) } => {
                write!(f, "deadlock: stream {stream} waits on event {e}, never recorded")
            }
            SyncError::Deadlock { stream, event: None } => {
                write!(f, "deadlock: stream {stream} cannot make progress")
            }
        }
    }
}

impl std::error::Error for SyncError {}

/// One kernel execution, as the runtime scheduled it.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelReport {
    /// Stream that submitted the kernel.
    pub stream: StreamId,
    /// Tenant owning that stream.
    pub tenant: usize,
    /// Kernel (program) name.
    pub name: String,
    /// SM partition the kernel ran on.
    pub partition: Range<usize>,
    /// Absolute cycle the kernel was admitted.
    pub started_at: u64,
    /// Absolute cycle its last warp retired.
    pub completed_at: u64,
    /// Per-kernel statistics (cycles measured from admission).
    pub stats: SimStats,
}

/// One copy-engine transfer, as the runtime scheduled it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CopyReport {
    /// Stream that submitted the copy.
    pub stream: StreamId,
    /// Tenant owning that stream.
    pub tenant: usize,
    /// `true` for host→device.
    pub h2d: bool,
    /// Modeled payload size.
    pub bytes: u64,
    /// Absolute cycle the engine accepted the transfer.
    pub started_at: u64,
    /// Absolute cycle the transfer finished.
    pub completed_at: u64,
}

/// Everything the runtime executed, in completion order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RuntimeReport {
    /// Kernel executions.
    pub kernels: Vec<KernelReport>,
    /// Copy-engine transfers.
    pub copies: Vec<CopyReport>,
    /// Cycle at which the last queued op finished (the makespan of the
    /// whole submitted program).
    pub total_cycles: u64,
}

impl RuntimeReport {
    /// Machine-readable export (used by `runtimebench --json`).
    pub fn to_json(&self) -> Json {
        let kernels = self
            .kernels
            .iter()
            .map(|k| {
                Json::obj()
                    .with("stream", k.stream as u64)
                    .with("tenant", k.tenant as u64)
                    .with("name", k.name.as_str())
                    .with("sm_first", k.partition.start as u64)
                    .with("sm_count", k.partition.len() as u64)
                    .with("started_at", k.started_at)
                    .with("completed_at", k.completed_at)
                    .with("cycles", k.stats.cycles)
                    .with("violations", k.stats.violations.len() as u64)
            })
            .collect();
        let copies = self
            .copies
            .iter()
            .map(|c| {
                Json::obj()
                    .with("stream", c.stream as u64)
                    .with("tenant", c.tenant as u64)
                    .with("dir", if c.h2d { "h2d" } else { "d2h" })
                    .with("bytes", c.bytes)
                    .with("started_at", c.started_at)
                    .with("completed_at", c.completed_at)
            })
            .collect();
        Json::obj()
            .with("total_cycles", self.total_cycles)
            .with("kernels", Json::Arr(kernels))
            .with("copies", Json::Arr(copies))
    }
}

/// The asynchronous host runtime (the `cudaStream_t` layer of the
/// reproduction).
pub struct Runtime {
    gpu: Gpu,
    copy_cfg: CopyConfig,
    tenants: Vec<Tenant>,
    streams: Vec<StreamState>,
    /// `events[e]` is the cycle event `e` was recorded at, once recorded.
    events: Vec<Option<u64>>,
    /// Cycle at which the previous kernel cohort drained (cohorts do not
    /// overlap on the SMs; copies overlap freely).
    gpu_free_at: u64,
    h2d_busy_until: u64,
    d2h_busy_until: u64,
    d2h_results: Vec<Option<Vec<u64>>>,
    report: RuntimeReport,
    sink: TelemetrySink,
    /// Latency histograms: kernel queue-wait / execution, copy durations
    /// and poison-to-fault, each at GPU, stream and tenant scope.
    hists: HistogramRegistry,
    /// Sampling profiles merged across launches, keyed by kernel name
    /// (empty unless the GPU config sets `sample_period`).
    profiles: BTreeMap<String, KernelProfile>,
}

impl Runtime {
    /// A runtime over a fresh GPU, counters on, timeline tracing off.
    pub fn new(cfg: GpuConfig) -> Runtime {
        Runtime {
            gpu: Gpu::new(cfg),
            copy_cfg: CopyConfig::default(),
            tenants: Vec::new(),
            streams: Vec::new(),
            events: Vec::new(),
            gpu_free_at: 0,
            h2d_busy_until: 0,
            d2h_busy_until: 0,
            d2h_results: Vec::new(),
            report: RuntimeReport::default(),
            sink: TelemetrySink::counters_only(),
            hists: HistogramRegistry::new(),
            profiles: BTreeMap::new(),
        }
    }

    /// Enables timeline tracing (kernel/copy spans plus the simulator's
    /// warp/memory spans) with the given ring capacity.
    pub fn with_tracing(mut self, capacity: usize) -> Runtime {
        self.sink = TelemetrySink::with_trace_capacity(capacity);
        self
    }

    /// Overrides the copy-engine cost model.
    pub fn with_copy_config(mut self, copy_cfg: CopyConfig) -> Runtime {
        self.copy_cfg = copy_cfg;
        self
    }

    /// Registers a tenant; `protected` selects LMI vs the unprotected
    /// baseline. Returns the tenant id.
    pub fn add_tenant(&mut self, protected: bool) -> usize {
        let id = self.tenants.len();
        self.tenants.push(if protected { Tenant::protected(id) } else { Tenant::unprotected(id) });
        id
    }

    /// Creates a stream owned by `tenant`.
    pub fn create_stream(&mut self, tenant: usize) -> Result<StreamId, SubmitError> {
        if tenant >= self.tenants.len() {
            return Err(SubmitError::UnknownTenant(tenant));
        }
        let id = self.streams.len();
        self.streams.push(StreamState::new(id, tenant));
        Ok(id)
    }

    /// Creates an (unrecorded) event.
    pub fn create_event(&mut self) -> EventId {
        self.events.push(None);
        self.events.len() - 1
    }

    /// A tenant, by id.
    pub fn tenant(&self, id: usize) -> &Tenant {
        &self.tenants[id]
    }

    /// Mutable tenant access (host-side allocation against the tenant's
    /// own arena, e.g. `lmi_workloads::prepare_in`).
    pub fn tenant_mut(&mut self, id: usize) -> &mut Tenant {
        &mut self.tenants[id]
    }

    /// Allocates `size` bytes in the tenant's global arena
    /// (`cudaMalloc`); the returned pointer carries LMI extent bits when
    /// the tenant is protected.
    pub fn malloc(&mut self, tenant: usize, size: u64) -> Result<u64, AllocError> {
        self.tenants[tenant].alloc(size)
    }

    /// Frees a tenant allocation; returns the extent-invalidated pointer.
    pub fn free(&mut self, tenant: usize, ptr: u64) -> Result<u64, AllocError> {
        self.tenants[tenant].free(ptr)
    }

    fn check_stream(&self, stream: StreamId) -> Result<(), SubmitError> {
        if stream >= self.streams.len() {
            return Err(SubmitError::UnknownStream(stream));
        }
        Ok(())
    }

    fn check_event(&self, event: EventId) -> Result<(), SubmitError> {
        if event >= self.events.len() {
            return Err(SubmitError::UnknownEvent(event));
        }
        Ok(())
    }

    /// Enqueues a host→device copy of `words` to the device pointer
    /// `dst` (extent bits tolerated; 8 bytes per word).
    pub fn memcpy_h2d(
        &mut self,
        stream: StreamId,
        dst: u64,
        words: &[u64],
    ) -> Result<(), SubmitError> {
        self.check_stream(stream)?;
        let bytes = words.len() as u64 * 8;
        self.streams[stream].ops.push_back(StreamOp::H2D { ptr: dst, bytes, data: words.to_vec() });
        Ok(())
    }

    /// Enqueues a device→host copy of `bytes` from `src`; redeem the
    /// handle with [`Runtime::copy_result`] after synchronizing.
    pub fn memcpy_d2h(
        &mut self,
        stream: StreamId,
        src: u64,
        bytes: u64,
    ) -> Result<CopyHandle, SubmitError> {
        self.check_stream(stream)?;
        let handle = CopyHandle(self.d2h_results.len());
        self.d2h_results.push(None);
        self.streams[stream].ops.push_back(StreamOp::D2H { ptr: src, bytes, handle });
        Ok(handle)
    }

    /// Enqueues a kernel launch. The launch is validated against the
    /// whole GPU up front — geometry *and* decodability: a kernel that
    /// could never run (or whose program carries corrupted immediates)
    /// is rejected *now* (and counted under `rejected` for the stream
    /// and tenant) instead of panicking inside the simulator.
    pub fn launch(&mut self, stream: StreamId, launch: Launch) -> Result<(), SubmitError> {
        self.check_stream(stream)?;
        let checked = launch.validate(self.gpu.config()).and_then(|()| {
            lmi_isa::DecodedStream::lower(&launch.program).map(|_| ()).map_err(Into::into)
        });
        if let Err(e) = checked {
            let tenant = self.streams[stream].tenant;
            self.sink.counters.inc(Scope::Stream(stream), "rejected");
            self.sink.counters.inc(Scope::Tenant(tenant), "rejected");
            return Err(SubmitError::Launch(e));
        }
        self.streams[stream].kernel_seq += 1;
        self.streams[stream].ops.push_back(StreamOp::Kernel { launch: Box::new(launch) });
        Ok(())
    }

    /// Enqueues an event record: when reached, the event is stamped with
    /// the stream's clock (every prior op's completion cycle).
    pub fn record_event(&mut self, stream: StreamId, event: EventId) -> Result<(), SubmitError> {
        self.check_stream(stream)?;
        self.check_event(event)?;
        self.streams[stream].ops.push_back(StreamOp::RecordEvent { event });
        Ok(())
    }

    /// Enqueues an event wait: the stream stalls until the event is
    /// recorded (by any stream), then resumes no earlier than the
    /// recorded cycle. Unlike CUDA's capture-at-call semantics, an
    /// unrecorded event *blocks* — which is what cross-stream dependency
    /// graphs want, and keeps the schedule independent of host call
    /// order.
    pub fn wait_event(&mut self, stream: StreamId, event: EventId) -> Result<(), SubmitError> {
        self.check_stream(stream)?;
        self.check_event(event)?;
        self.streams[stream].ops.push_back(StreamOp::WaitEvent { event });
        Ok(())
    }

    /// Drains every stream to completion (`cudaDeviceSynchronize`).
    ///
    /// Deterministic: the resulting report, counters and event stamps
    /// depend only on what was submitted, never on `sim_threads`.
    pub fn synchronize(&mut self) -> Result<(), SyncError> {
        loop {
            let mut progress = false;
            self.drain_event_ops(&mut progress);
            self.schedule_copies(&mut progress);
            self.admit_cohort(&mut progress);
            if progress {
                continue;
            }
            if let Some(s) = self.streams.iter().find(|s| !s.ops.is_empty()) {
                let event = match s.ops.front() {
                    Some(StreamOp::WaitEvent { event }) => Some(*event),
                    _ => None,
                };
                return Err(SyncError::Deadlock { stream: s.id, event });
            }
            break;
        }
        self.report.total_cycles = self
            .streams
            .iter()
            .map(|s| s.ready_at)
            .chain([self.gpu_free_at, self.h2d_busy_until, self.d2h_busy_until])
            .max()
            .unwrap_or(0);
        Ok(())
    }

    /// Step 1: retire record/wait ops at stream heads.
    fn drain_event_ops(&mut self, progress: &mut bool) {
        for i in 0..self.streams.len() {
            loop {
                let head = match self.streams[i].ops.front() {
                    Some(StreamOp::RecordEvent { event }) => (true, *event),
                    Some(StreamOp::WaitEvent { event }) => (false, *event),
                    _ => break,
                };
                match head {
                    (true, e) => {
                        self.events[e] = Some(self.streams[i].ready_at);
                        self.streams[i].ops.pop_front();
                        *progress = true;
                    }
                    (false, e) => match self.events[e] {
                        Some(at) => {
                            let s = &mut self.streams[i];
                            s.ready_at = s.ready_at.max(at);
                            s.ops.pop_front();
                            *progress = true;
                        }
                        None => break,
                    },
                }
            }
        }
    }

    /// Step 2: serialize head-of-stream copies onto the two DMA engines,
    /// earliest `(start, stream)` first.
    fn schedule_copies(&mut self, progress: &mut bool) {
        loop {
            let mut any = false;
            for h2d in [true, false] {
                let busy = if h2d { self.h2d_busy_until } else { self.d2h_busy_until };
                let mut best: Option<(u64, StreamId)> = None;
                for s in &self.streams {
                    let head_matches = matches!(
                        (s.ops.front(), h2d),
                        (Some(StreamOp::H2D { .. }), true) | (Some(StreamOp::D2H { .. }), false)
                    );
                    if head_matches {
                        let cand = (s.ready_at.max(busy), s.id);
                        if best.is_none_or(|b| cand < b) {
                            best = Some(cand);
                        }
                    }
                }
                if let Some((start, sid)) = best {
                    self.execute_copy(sid, start, h2d);
                    any = true;
                    *progress = true;
                }
            }
            if !any {
                break;
            }
        }
    }

    fn execute_copy(&mut self, sid: StreamId, start: u64, h2d: bool) {
        let tenant = self.streams[sid].tenant;
        let op = self.streams[sid].ops.pop_front().expect("caller checked the head op");
        let (bytes, end) = match op {
            StreamOp::H2D { ptr, bytes, data } => {
                let end = start + self.copy_cfg.cost(bytes);
                let addr = DevicePtr::from_raw(ptr).addr();
                for (i, w) in data.iter().enumerate() {
                    self.gpu.memory.write(addr + 8 * i as u64, *w, 8);
                }
                self.h2d_busy_until = end;
                (bytes, end)
            }
            StreamOp::D2H { ptr, bytes, handle } => {
                let end = start + self.copy_cfg.cost(bytes);
                let addr = DevicePtr::from_raw(ptr).addr();
                let words = bytes.div_ceil(8) as usize;
                let mut out = Vec::with_capacity(words);
                for i in 0..words {
                    out.push(self.gpu.memory.read(addr + 8 * i as u64, 8));
                }
                self.d2h_results[handle.0] = Some(out);
                self.d2h_busy_until = end;
                (bytes, end)
            }
            _ => unreachable!("caller checked the head op"),
        };
        self.streams[sid].ready_at = end;
        for scope in [Scope::Gpu, Scope::Stream(sid), Scope::Tenant(tenant)] {
            self.hists.record(scope, "copy_cycles", end - start);
        }
        self.sink.counters.inc(Scope::Stream(sid), "copies");
        self.sink.counters.add(Scope::Stream(sid), "copy_bytes", bytes);
        self.sink.counters.inc(Scope::Tenant(tenant), "copies");
        self.sink.counters.add(Scope::Tenant(tenant), "copy_bytes", bytes);
        // Copy engines render as pseudo-SMs after the real ones.
        let engine = self.gpu.config().num_sms + usize::from(!h2d);
        self.sink.tracer.complete_with(
            if h2d { "memcpy h2d" } else { "memcpy d2h" },
            TraceEventKind::CopySpan,
            engine,
            sid,
            start,
            end - start,
            &[("stream", sid as u64), ("tenant", tenant as u64), ("bytes", bytes)],
        );
        self.report.copies.push(CopyReport {
            stream: sid,
            tenant,
            h2d,
            bytes,
            started_at: start,
            completed_at: end,
        });
    }

    /// Step 3: run every head-of-stream kernel as one resident cohort on
    /// disjoint SM partitions.
    fn admit_cohort(&mut self, progress: &mut bool) {
        let num_sms = self.gpu.config().num_sms;
        let mut cohort: Vec<StreamId> = self
            .streams
            .iter()
            .filter(|s| matches!(s.ops.front(), Some(StreamOp::Kernel { .. })))
            .map(|s| s.id)
            .take(num_sms)
            .collect();
        if cohort.is_empty() {
            return;
        }
        let demand = |streams: &[StreamState], sid: StreamId| -> usize {
            match streams[sid].ops.front() {
                Some(StreamOp::Kernel { launch }) => launch.grid_blocks * launch.warps_per_block(),
                _ => unreachable!("cohort members have a kernel at head"),
            }
        };
        let mut demands: Vec<usize> =
            cohort.iter().map(|&sid| demand(&self.streams, sid)).collect();
        let mut parts = partition_sms(num_sms, &demands);
        // A kernel whose proportional slice is too narrow (its fullest SM
        // would overflow warp capacity) is deferred to a later, smaller
        // cohort; a cohort of one spans the full GPU, which the launch was
        // validated against at submit time.
        while cohort.len() > 1 {
            let mut dropped = None;
            for (i, &sid) in cohort.iter().enumerate() {
                let fits = match self.streams[sid].ops.front() {
                    Some(StreamOp::Kernel { launch }) => {
                        launch.validate_on(self.gpu.config(), parts[i].len()).is_ok()
                    }
                    _ => unreachable!("cohort members have a kernel at head"),
                };
                if !fits {
                    dropped = Some(i);
                    break;
                }
            }
            match dropped {
                Some(i) => {
                    cohort.remove(i);
                    demands.remove(i);
                    parts = partition_sms(num_sms, &demands);
                }
                None => break,
            }
        }
        // Admission: a kernel starts when its stream is ready and the
        // previous cohort has drained; the cohort's earliest start is the
        // engine's cycle origin, everyone else gets a start offset.
        let starts: Vec<u64> =
            cohort.iter().map(|&sid| self.streams[sid].ready_at.max(self.gpu_free_at)).collect();
        let origin = *starts.iter().min().expect("cohort is non-empty");
        // Two streams of the same tenant may both be in the cohort, but a
        // tenant has one mechanism. Mechanisms are `Copy`: each job runs
        // on a scratch copy and the poison deltas merge back afterwards.
        let mut scratch: Vec<TenantMechanism> =
            cohort.iter().map(|&sid| self.tenants[self.streams[sid].tenant].mechanism).collect();
        let baseline: Vec<u64> = scratch.iter().map(TenantMechanism::poisoned_count).collect();
        let outcome = {
            let Runtime { gpu, tenants, streams, sink, .. } = self;
            let mut jobs: Vec<ResidentKernel<'_>> = Vec::with_capacity(cohort.len());
            for (((&sid, part), &start), mech) in
                cohort.iter().zip(&parts).zip(&starts).zip(scratch.iter_mut())
            {
                let launch = match streams[sid].ops.front() {
                    Some(StreamOp::Kernel { launch }) => &**launch,
                    _ => unreachable!("cohort members have a kernel at head"),
                };
                jobs.push(ResidentKernel {
                    launch,
                    mechanism: mech.as_dyn(),
                    heap: Some(&tenants[streams[sid].tenant].heap),
                    partition: part.clone(),
                    start_offset: start - origin,
                });
            }
            gpu.run_resident(&mut jobs, sink)
                .expect("cohort launches validated at submit and admission")
        };
        self.gpu_free_at = origin + outcome.makespan;
        for ((i, &sid), outcome) in cohort.iter().enumerate().zip(outcome.kernels) {
            let tenant = self.streams[sid].tenant;
            let delta = scratch[i].poisoned_count() - baseline[i];
            if let TenantMechanism::Lmi(m) = &mut self.tenants[tenant].mechanism {
                m.poisoned_count += delta;
            }
            let launch = match self.streams[sid].ops.pop_front() {
                Some(StreamOp::Kernel { launch }) => launch,
                _ => unreachable!("cohort members have a kernel at head"),
            };
            let started = starts[i];
            let completed = origin + outcome.completed_at;
            // The stream was ready at `ready_at`; the kernel only started
            // once the previous cohort drained — that gap is queue wait.
            let queue_wait = started.saturating_sub(self.streams[sid].ready_at);
            self.streams[sid].ready_at = completed;
            let stats = outcome.stats;
            let violations = stats.violations.len() as u64;
            for scope in [Scope::Gpu, Scope::Stream(sid), Scope::Tenant(tenant)] {
                self.hists.record(scope, "kernel_queue_wait", queue_wait);
                self.hists.record(scope, "kernel_exec_cycles", completed - started);
                for rec in &stats.forensics {
                    self.hists.record(scope, "poison_to_fault", rec.latency_cycles());
                }
            }
            if !stats.profile.is_empty() {
                self.profiles.entry(launch.program.name.clone()).or_default().merge(&stats.profile);
            }
            self.sink.counters.inc(Scope::Stream(sid), "kernels");
            self.sink.counters.add(Scope::Stream(sid), "kernel_cycles", stats.cycles);
            self.sink.counters.add(Scope::Stream(sid), "violations", violations);
            self.sink.counters.inc(Scope::Tenant(tenant), "kernels");
            self.sink.counters.add(Scope::Tenant(tenant), "kernel_cycles", stats.cycles);
            self.sink.counters.add(Scope::Tenant(tenant), "violations", violations);
            self.sink.tracer.complete_with(
                "kernel",
                TraceEventKind::KernelSpan,
                parts[i].start,
                sid,
                started,
                completed.saturating_sub(started).max(1),
                &[
                    ("stream", sid as u64),
                    ("tenant", tenant as u64),
                    ("sm_first", parts[i].start as u64),
                    ("sm_count", parts[i].len() as u64),
                    ("violations", violations),
                ],
            );
            self.report.kernels.push(KernelReport {
                stream: sid,
                tenant,
                name: launch.program.name.clone(),
                partition: parts[i].clone(),
                started_at: started,
                completed_at: completed,
                stats,
            });
        }
        *progress = true;
    }

    /// The data a synchronized D2H copy delivered (`None` before the copy
    /// has run).
    pub fn copy_result(&self, handle: CopyHandle) -> Option<&[u64]> {
        self.d2h_results.get(handle.0)?.as_deref()
    }

    /// The cycle an event was recorded at (`None` if unrecorded).
    pub fn event_time(&self, event: EventId) -> Option<u64> {
        self.events.get(event).copied().flatten()
    }

    /// Everything executed so far.
    pub fn report(&self) -> &RuntimeReport {
        &self.report
    }

    /// The scoped counter registry (per-stream / per-tenant attribution).
    pub fn counters(&self) -> &CounterRegistry {
        &self.sink.counters
    }

    /// The timeline tracer (empty unless [`Runtime::with_tracing`]).
    pub fn tracer(&self) -> &EventTracer {
        &self.sink.tracer
    }

    /// The latency histograms (kernel queue-wait / execution, copy
    /// durations, poison-to-fault) at GPU, stream and tenant scope.
    pub fn histograms(&self) -> &HistogramRegistry {
        &self.hists
    }

    /// Sampling profiles merged across launches, keyed by kernel name
    /// (empty unless the GPU config sets `sample_period`).
    pub fn profiles(&self) -> &BTreeMap<String, KernelProfile> {
        &self.profiles
    }

    /// An owned, diffable snapshot of everything the session measured:
    /// every counter scope, histogram and profile, plus the per-tenant
    /// SLO table (violation/rejection rates, execution-latency tails).
    /// Take one before and one after a workload and
    /// [`MetricsSnapshot::diff`] isolates that workload's activity.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let frame = MetricsFrame {
            counters: self.sink.counters.clone(),
            histograms: self.hists.clone(),
            profiles: self.profiles.clone(),
            dropped_trace_events: self.sink.tracer.dropped(),
        };
        let tenants = TenantSlo::from_frame(&frame, self.tenants.len());
        MetricsSnapshot { frame, total_cycles: self.report.total_cycles, tenants }
    }

    /// The underlying GPU (inspection: memory, caches, heap).
    pub fn gpu(&self) -> &Gpu {
        &self.gpu
    }

    /// Reads device memory through a (possibly extent-tagged) pointer.
    pub fn read(&self, ptr: u64, offset: u64, width: u8) -> u64 {
        self.gpu.memory.read(DevicePtr::from_raw(ptr).addr() + offset, width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmi_isa::{abi, Instruction, MemRef, ProgramBuilder, Reg};

    fn store_tid_kernel(name: &str) -> Launch {
        let mut b = ProgramBuilder::new(name);
        b.push(Instruction::s2r(Reg(0), lmi_isa::op::SpecialReg::TidX));
        b.push(Instruction::ldc(Reg(4), abi::LAUNCH_BANK, abi::param_offset(0), 8));
        b.push(Instruction::lea64(Reg(6), Reg(4), Reg(0), 3));
        b.push(Instruction::stg(MemRef::new(Reg(6), 0, 8), Reg(0)));
        b.push(Instruction::exit());
        Launch::new(b.build()).grid(2).block(64)
    }

    #[test]
    fn copy_kernel_copy_roundtrip() {
        let mut rt = Runtime::new(GpuConfig::small());
        let t = rt.add_tenant(true);
        let s = rt.create_stream(t).unwrap();
        let buf = rt.malloc(t, 2048).unwrap();
        rt.memcpy_h2d(s, buf, &vec![7u64; 128]).unwrap();
        rt.launch(s, store_tid_kernel("tids").param(buf)).unwrap();
        let out = rt.memcpy_d2h(s, buf, 1024).unwrap();
        rt.synchronize().unwrap();
        let words = rt.copy_result(out).unwrap();
        assert_eq!(words.len(), 128);
        // TidX is block-local, so both blocks write slots 0..64; the tail
        // keeps the h2d fill value.
        for (i, &w) in words.iter().enumerate() {
            let expect = if i < 64 { i as u64 } else { 7 };
            assert_eq!(w, expect, "word {i}");
        }
        let r = rt.report();
        assert_eq!(r.kernels.len(), 1);
        assert_eq!(r.copies.len(), 2);
        // In-order stream: h2d < kernel < d2h.
        assert!(r.copies[0].completed_at <= r.kernels[0].started_at);
        assert!(r.kernels[0].completed_at <= r.copies[1].started_at);
        assert_eq!(rt.counters().get(Scope::Stream(s), "kernels"), 1);
        assert_eq!(rt.counters().get(Scope::Tenant(t), "copies"), 2);
    }

    #[test]
    fn two_streams_share_the_gpu_spatially() {
        let mut rt = Runtime::new(GpuConfig::small());
        let ta = rt.add_tenant(true);
        let tb = rt.add_tenant(true);
        let sa = rt.create_stream(ta).unwrap();
        let sb = rt.create_stream(tb).unwrap();
        let a = rt.malloc(ta, 2048).unwrap();
        let b = rt.malloc(tb, 2048).unwrap();
        rt.launch(sa, store_tid_kernel("a").param(a)).unwrap();
        rt.launch(sb, store_tid_kernel("b").param(b)).unwrap();
        rt.synchronize().unwrap();
        let r = rt.report();
        assert_eq!(r.kernels.len(), 2);
        let (ka, kb) = (&r.kernels[0], &r.kernels[1]);
        assert!(ka.partition.end <= kb.partition.start || kb.partition.end <= ka.partition.start);
        // Admitted together: both start at cycle 0 and overlap in time.
        assert_eq!(ka.started_at, 0);
        assert_eq!(kb.started_at, 0);
        // Both tenants' data landed.
        assert_eq!(rt.read(a, 8, 8), 1);
        assert_eq!(rt.read(b, 8, 8), 1);
    }

    #[test]
    fn events_order_work_across_streams() {
        let mut rt = Runtime::new(GpuConfig::small());
        let t = rt.add_tenant(false);
        let s0 = rt.create_stream(t).unwrap();
        let s1 = rt.create_stream(t).unwrap();
        let buf = rt.malloc(t, 2048).unwrap();
        let ev = rt.create_event();
        rt.launch(s0, store_tid_kernel("producer").param(buf)).unwrap();
        rt.record_event(s0, ev).unwrap();
        rt.wait_event(s1, ev).unwrap();
        rt.launch(s1, store_tid_kernel("consumer").param(buf)).unwrap();
        rt.synchronize().unwrap();
        let r = rt.report();
        assert_eq!(r.kernels.len(), 2);
        let at = rt.event_time(ev).unwrap();
        assert_eq!(at, r.kernels[0].completed_at, "event stamps the producer's finish");
        assert!(r.kernels[1].started_at >= at, "consumer admitted after the event");
    }

    #[test]
    fn waiting_on_an_unrecorded_event_deadlocks() {
        let mut rt = Runtime::new(GpuConfig::small());
        let t = rt.add_tenant(false);
        let s = rt.create_stream(t).unwrap();
        let ev = rt.create_event();
        rt.wait_event(s, ev).unwrap();
        assert_eq!(rt.synchronize(), Err(SyncError::Deadlock { stream: s, event: Some(ev) }));
    }

    #[test]
    fn impossible_launch_is_rejected_not_panicked() {
        let mut rt = Runtime::new(GpuConfig::small());
        let t = rt.add_tenant(true);
        let s = rt.create_stream(t).unwrap();
        let mut b = ProgramBuilder::new("huge");
        b.push(Instruction::exit());
        let cap = rt.gpu().config().max_warps_per_sm;
        let launch = Launch::new(b.build()).grid(1).block((cap + 1) * 32);
        let err = rt.launch(s, launch).unwrap_err();
        assert!(matches!(err, SubmitError::Launch(LaunchError::BlockTooLarge { .. })));
        assert_eq!(rt.counters().get(Scope::Stream(s), "rejected"), 1);
        rt.synchronize().unwrap();
        assert!(rt.report().kernels.is_empty());
    }

    #[test]
    fn unknown_ids_are_rejected() {
        let mut rt = Runtime::new(GpuConfig::small());
        assert_eq!(rt.create_stream(0), Err(SubmitError::UnknownTenant(0)));
        let t = rt.add_tenant(true);
        let s = rt.create_stream(t).unwrap();
        assert_eq!(rt.memcpy_h2d(9, 0, &[]), Err(SubmitError::UnknownStream(9)));
        assert_eq!(rt.record_event(s, 5), Err(SubmitError::UnknownEvent(5)));
    }
}
