//! Spatial SM partitioning for concurrent-kernel cohorts.
//!
//! When several streams have a kernel ready, the runtime runs them
//! *concurrently* by splitting the GPU's SMs into disjoint contiguous
//! partitions, one per kernel — the MIG/MPS-style spatial sharing the
//! paper's multi-tenant discussion assumes. Shares are proportional to
//! each kernel's warp demand (largest-remainder rounding, every kernel
//! gets at least one SM), and the whole computation is pure integer
//! arithmetic over the cohort — deterministic by construction.

use std::ops::Range;

/// Splits `num_sms` SMs into one contiguous partition per demand entry,
/// proportionally to the demands, each at least one SM wide.
///
/// # Panics
///
/// Panics if `demands` is empty or has more entries than `num_sms` (the
/// admission layer caps cohorts at `num_sms` members).
pub fn partition_sms(num_sms: usize, demands: &[usize]) -> Vec<Range<usize>> {
    assert!(!demands.is_empty(), "cohort cannot be empty");
    assert!(demands.len() <= num_sms, "more kernels than SMs");
    let n = demands.len();
    let total: usize = demands.iter().map(|&d| d.max(1)).sum();
    let spare = num_sms - n; // after everyone's guaranteed single SM
                             // Largest-remainder apportionment of the spare SMs.
    let mut sizes: Vec<usize> = Vec::with_capacity(n);
    let mut remainders: Vec<(usize, usize)> = Vec::with_capacity(n); // (remainder, index)
    let mut assigned = 0;
    for (i, &d) in demands.iter().enumerate() {
        let d = d.max(1);
        let exact = spare * d;
        sizes.push(1 + exact / total);
        assigned += exact / total;
        remainders.push((exact % total, i));
    }
    // Hand the leftover SMs to the largest remainders; ties break toward
    // the earlier (lower-index) kernel so the result is order-stable.
    remainders.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    for &(_, i) in remainders.iter().take(spare - assigned) {
        sizes[i] += 1;
    }
    let mut out = Vec::with_capacity(n);
    let mut start = 0;
    for size in sizes {
        out.push(start..start + size);
        start += size;
    }
    debug_assert_eq!(start, num_sms, "partitions tile the GPU exactly");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_demands_split_evenly() {
        let p = partition_sms(8, &[4, 4]);
        assert_eq!(p, vec![0..4, 4..8]);
    }

    #[test]
    fn shares_follow_demand() {
        let p = partition_sms(8, &[6, 2]);
        assert_eq!(p, vec![0..6, 6..8]);
    }

    #[test]
    fn every_kernel_gets_at_least_one_sm() {
        let p = partition_sms(4, &[1000, 1, 1, 1]);
        assert_eq!(p, vec![0..1, 1..2, 2..3, 3..4]);
    }

    #[test]
    fn partitions_tile_and_are_disjoint() {
        for demands in [vec![3, 5, 2], vec![1, 1, 1], vec![7, 1], vec![2, 2, 2, 2, 2]] {
            let p = partition_sms(16, &demands);
            let mut covered = [false; 16];
            for r in &p {
                for sm in r.clone() {
                    assert!(!covered[sm], "overlap at SM {sm} in {p:?}");
                    covered[sm] = true;
                }
            }
            assert!(covered.iter().all(|&c| c), "gap in {p:?}");
        }
    }

    #[test]
    fn single_kernel_takes_the_whole_gpu() {
        assert_eq!(partition_sms(8, &[5]), vec![0..8]);
    }
}
