//! The copy-engine cost model.
//!
//! Real GPUs move H2D/D2H traffic through dedicated DMA engines that run
//! concurrently with compute; what the runtime needs from them is a
//! *deterministic completion cycle* for every transfer so streams can
//! overlap copies with kernels. The model is intentionally first-order:
//! a fixed submission latency plus a bandwidth term, one engine per
//! direction, transfers serialized per engine in scheduling order.

/// Copy-engine parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CopyConfig {
    /// Fixed per-transfer cost in cycles (driver submission + DMA setup).
    pub latency_cycles: u64,
    /// Sustained bandwidth in bytes per GPU cycle. At 2 GHz, 16 B/cycle
    /// models a ~32 GB/s PCIe-class link.
    pub bytes_per_cycle: u64,
}

impl Default for CopyConfig {
    fn default() -> CopyConfig {
        CopyConfig { latency_cycles: 800, bytes_per_cycle: 16 }
    }
}

impl CopyConfig {
    /// Cycles a transfer of `bytes` occupies its engine.
    pub fn cost(&self, bytes: u64) -> u64 {
        self.latency_cycles + bytes.div_ceil(self.bytes_per_cycle.max(1)).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_is_latency_plus_bandwidth() {
        let c = CopyConfig { latency_cycles: 100, bytes_per_cycle: 16 };
        assert_eq!(c.cost(0), 101, "even an empty transfer pays setup");
        assert_eq!(c.cost(16), 101);
        assert_eq!(c.cost(17), 102);
        assert_eq!(c.cost(1 << 20), 100 + (1 << 16));
    }
}
