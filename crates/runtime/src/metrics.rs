//! The session metrics surface: [`MetricsSnapshot`] and the per-tenant
//! SLO table.
//!
//! A snapshot is the runtime's [`lmi_telemetry::MetricsFrame`] (counters,
//! histograms, profiles, trace-drop count) plus session framing: the
//! total makespan and one [`TenantSlo`] row per tenant with the
//! serving-style signals a multi-tenant operator watches — violation and
//! rejection rates, and execution-latency tails. Snapshots are cheap
//! owned copies, so the diffing pattern is two calls:
//!
//! ```text
//! let before = rt.metrics_snapshot();
//! /* submit + synchronize a workload */
//! let delta = rt.metrics_snapshot().diff(&before);
//! ```

use lmi_telemetry::{Json, MetricsFrame, Scope};

/// Serving signals for one tenant, derived from the frame's tenant-scope
/// counters and histograms.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSlo {
    /// Tenant id.
    pub tenant: usize,
    /// Kernels executed.
    pub kernels: u64,
    /// Launches rejected at submit (validation failures).
    pub rejected: u64,
    /// Memory-safety violations across the tenant's kernels.
    pub violations: u64,
    /// Violations per executed kernel (0 when no kernels ran).
    pub violation_rate: f64,
    /// Rejected launches per submitted launch (0 when nothing was
    /// submitted).
    pub rejection_rate: f64,
    /// Median kernel execution latency in cycles.
    pub exec_p50: u64,
    /// 99th-percentile kernel execution latency in cycles.
    pub exec_p99: u64,
    /// Worst kernel execution latency in cycles.
    pub exec_max: u64,
    /// 99th-percentile queue wait (stream ready → kernel admitted).
    pub queue_p99: u64,
}

impl TenantSlo {
    /// Builds the SLO table for tenants `0..count` from a frame.
    pub fn from_frame(frame: &MetricsFrame, count: usize) -> Vec<TenantSlo> {
        (0..count)
            .map(|t| {
                let scope = Scope::Tenant(t);
                let kernels = frame.counters.get(scope, "kernels");
                let rejected = frame.counters.get(scope, "rejected");
                let violations = frame.counters.get(scope, "violations");
                let exec = frame.histograms.get(scope, "kernel_exec_cycles");
                let queue = frame.histograms.get(scope, "kernel_queue_wait");
                let rate =
                    |num: u64, den: u64| if den == 0 { 0.0 } else { num as f64 / den as f64 };
                TenantSlo {
                    tenant: t,
                    kernels,
                    rejected,
                    violations,
                    violation_rate: rate(violations, kernels),
                    rejection_rate: rate(rejected, kernels + rejected),
                    exec_p50: exec.map(|h| h.p50()).unwrap_or(0),
                    exec_p99: exec.map(|h| h.p99()).unwrap_or(0),
                    exec_max: exec.map(|h| h.max()).unwrap_or(0),
                    queue_p99: queue.map(|h| h.p99()).unwrap_or(0),
                }
            })
            .collect()
    }

    /// JSON row.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("tenant", self.tenant as u64)
            .with("kernels", self.kernels)
            .with("rejected", self.rejected)
            .with("violations", self.violations)
            .with("violation_rate", self.violation_rate)
            .with("rejection_rate", self.rejection_rate)
            .with("exec_p50", self.exec_p50)
            .with("exec_p99", self.exec_p99)
            .with("exec_max", self.exec_max)
            .with("queue_p99", self.queue_p99)
    }
}

/// Everything one session measured, as an owned diffable value.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Counters, histograms, profiles and trace-drop accounting.
    pub frame: MetricsFrame,
    /// Makespan of the synchronized program so far, in cycles.
    pub total_cycles: u64,
    /// Per-tenant SLO rows, index = tenant id.
    pub tenants: Vec<TenantSlo>,
}

impl MetricsSnapshot {
    /// The activity between two snapshots: monotonic sources subtract,
    /// the SLO table is recomputed over the delta frame.
    pub fn diff(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let frame = self.frame.diff(&earlier.frame);
        let tenants = TenantSlo::from_frame(&frame, self.tenants.len());
        MetricsSnapshot {
            frame,
            total_cycles: self.total_cycles.saturating_sub(earlier.total_cycles),
            tenants,
        }
    }

    /// JSON snapshot: the frame plus session framing.
    pub fn to_json(&self) -> Json {
        self.frame
            .to_json()
            .with("total_cycles", self.total_cycles)
            .with("tenants", Json::Arr(self.tenants.iter().map(TenantSlo::to_json).collect()))
    }

    /// Prometheus text exposition: the frame plus session gauges
    /// (`lmi_session_total_cycles`, per-tenant SLO rates).
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = self.frame.to_prometheus();
        let _ = writeln!(out, "# TYPE lmi_session_total_cycles gauge");
        let _ = writeln!(out, "lmi_session_total_cycles {}", self.total_cycles);
        if !self.tenants.is_empty() {
            let _ = writeln!(out, "# TYPE lmi_tenant_violation_rate gauge");
            for t in &self.tenants {
                let _ = writeln!(
                    out,
                    "lmi_tenant_violation_rate{{tenant=\"{}\"}} {}",
                    t.tenant, t.violation_rate
                );
            }
            let _ = writeln!(out, "# TYPE lmi_tenant_rejection_rate gauge");
            for t in &self.tenants {
                let _ = writeln!(
                    out,
                    "lmi_tenant_rejection_rate{{tenant=\"{}\"}} {}",
                    t.tenant, t.rejection_rate
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmi_telemetry::parse_prometheus;

    fn frame_with_tenant_activity() -> MetricsFrame {
        let mut f = MetricsFrame::default();
        f.counters.add(Scope::Tenant(0), "kernels", 4);
        f.counters.add(Scope::Tenant(0), "violations", 1);
        f.counters.add(Scope::Tenant(0), "rejected", 1);
        for v in [100, 200, 300, 400] {
            f.histograms.record(Scope::Tenant(0), "kernel_exec_cycles", v);
        }
        f
    }

    #[test]
    fn slo_rates_and_tails_come_from_the_frame() {
        let slo = &TenantSlo::from_frame(&frame_with_tenant_activity(), 2)[0];
        assert_eq!(slo.kernels, 4);
        assert_eq!(slo.violation_rate, 0.25);
        assert_eq!(slo.rejection_rate, 0.2, "1 rejected of 5 submitted");
        assert!(slo.exec_p50 >= 100 && slo.exec_p50 <= slo.exec_p99);
        assert_eq!(slo.exec_max, 400);
        // A tenant with no activity reads all zeros, not NaN.
        let idle = &TenantSlo::from_frame(&frame_with_tenant_activity(), 2)[1];
        assert_eq!(idle.violation_rate, 0.0);
        assert_eq!(idle.exec_max, 0);
    }

    #[test]
    fn snapshot_diff_and_exports_stay_consistent() {
        let a = MetricsSnapshot {
            frame: frame_with_tenant_activity(),
            total_cycles: 1000,
            tenants: TenantSlo::from_frame(&frame_with_tenant_activity(), 1),
        };
        let mut later_frame = frame_with_tenant_activity();
        later_frame.counters.add(Scope::Tenant(0), "kernels", 1);
        later_frame.histograms.record(Scope::Tenant(0), "kernel_exec_cycles", 900);
        let b = MetricsSnapshot {
            frame: later_frame.clone(),
            total_cycles: 2500,
            tenants: TenantSlo::from_frame(&later_frame, 1),
        };
        let d = b.diff(&a);
        assert_eq!(d.total_cycles, 1500);
        assert_eq!(d.tenants[0].kernels, 1);
        assert_eq!(d.tenants[0].exec_max, 900, "only the new kernel remains");
        // Both exports of the delta parse.
        let json = d.to_json().to_compact();
        assert!(lmi_telemetry::json::parse(&json).is_ok());
        let samples = parse_prometheus(&d.to_prometheus()).unwrap();
        assert!(samples.iter().any(|s| s.name == "lmi_session_total_cycles" && s.value == 1500.0));
    }
}
