//! Runtime tenants: isolated allocator arenas plus a per-tenant mechanism.
//!
//! Spatial multi-tenancy on a shared GPU (paper §XIII discusses MIG-style
//! partitioning) needs more than disjoint SM partitions: each tenant must
//! own a slice of the global and device-heap address spaces, and its
//! kernels must run under its *own* mechanism instance so a violation is
//! attributable to the tenant that caused it. This module carves those
//! slices and bundles them with an [`LmiMechanism`] (or [`NullMechanism`]
//! for an unprotected tenant).

use lmi_alloc::{AlignmentPolicy, AllocError, DeviceHeap, GlobalAllocator};
use lmi_core::PtrConfig;
use lmi_mem::layout;
use lmi_sim::{LmiMechanism, Mechanism, NullMechanism};

/// Bytes of global-arena address space per tenant (4 GiB slices of the
/// 1 TiB global region: room for 256 tenants).
pub const TENANT_GLOBAL_SPAN: u64 = 4 << 30;

/// Device-heap buffer groups per tenant.
pub const TENANT_HEAP_GROUPS: usize = 64;

/// Bytes per device-heap buffer group (64 × 16 MiB = 1 GiB heap arena per
/// tenant).
pub const TENANT_HEAP_GROUP_SPAN: u64 = 16 * 1024 * 1024;

/// The per-tenant protection mechanism.
#[derive(Debug, Clone, Copy)]
pub enum TenantMechanism {
    /// LMI end to end: extent-tagged pointers, OCU + EC on every launch.
    Lmi(LmiMechanism),
    /// The unprotected baseline.
    Unprotected(NullMechanism),
}

impl TenantMechanism {
    /// The trait-object view the simulator consumes.
    pub fn as_dyn(&mut self) -> &mut dyn Mechanism {
        match self {
            TenantMechanism::Lmi(m) => m,
            TenantMechanism::Unprotected(m) => m,
        }
    }

    /// Pointers poisoned so far (0 for unprotected tenants).
    pub fn poisoned_count(&self) -> u64 {
        match self {
            TenantMechanism::Lmi(m) => m.poisoned_count,
            TenantMechanism::Unprotected(_) => 0,
        }
    }
}

/// One tenant: a global-memory arena slice, a device-heap slice, and the
/// mechanism guarding its kernels.
pub struct Tenant {
    id: usize,
    /// Host-side `cudaMalloc` arena (tenant-tagged slice).
    pub allocator: GlobalAllocator,
    /// Device-side `malloc` heap (tenant-tagged slice).
    pub heap: DeviceHeap,
    /// This tenant's mechanism. Persistent across launches so counters
    /// like `poisoned_count` accumulate per tenant.
    pub mechanism: TenantMechanism,
}

impl Tenant {
    /// A tenant with LMI protection end to end.
    pub fn protected(id: usize) -> Tenant {
        Tenant::with_policy(id, AlignmentPolicy::PowerOfTwo)
    }

    /// An unprotected tenant (the baseline; still arena-isolated).
    pub fn unprotected(id: usize) -> Tenant {
        Tenant::with_policy(id, AlignmentPolicy::CudaDefault)
    }

    fn with_policy(id: usize, policy: AlignmentPolicy) -> Tenant {
        let cfg = PtrConfig::default();
        let global_base = layout::GLOBAL_BASE + id as u64 * TENANT_GLOBAL_SPAN;
        let heap_base =
            layout::HEAP_BASE + id as u64 * TENANT_HEAP_GROUPS as u64 * TENANT_HEAP_GROUP_SPAN;
        let mechanism = match policy {
            AlignmentPolicy::PowerOfTwo => TenantMechanism::Lmi(LmiMechanism::new(cfg)),
            AlignmentPolicy::CudaDefault => TenantMechanism::Unprotected(NullMechanism),
        };
        Tenant {
            id,
            allocator: GlobalAllocator::new(cfg, policy, global_base, TENANT_GLOBAL_SPAN)
                .with_tenant(id),
            heap: DeviceHeap::new(
                cfg,
                policy,
                heap_base,
                TENANT_HEAP_GROUPS,
                TENANT_HEAP_GROUP_SPAN,
            )
            .with_tenant(id),
            mechanism,
        }
    }

    /// The tenant id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// `true` if the tenant's kernels run under LMI.
    pub fn is_protected(&self) -> bool {
        matches!(self.mechanism, TenantMechanism::Lmi(_))
    }

    /// `cudaMalloc` in this tenant's arena slice.
    pub fn alloc(&mut self, size: u64) -> Result<u64, AllocError> {
        self.allocator.alloc(size)
    }

    /// `cudaFree`; returns the extent-invalidated pointer value.
    pub fn free(&mut self, ptr: u64) -> Result<u64, AllocError> {
        self.allocator.free(ptr)?;
        Ok(lmi_core::invalidate_extent(ptr))
    }

    /// `true` if `addr` lies in this tenant's global or heap arena — the
    /// "whose memory was targeted?" half of violation attribution.
    pub fn owns(&self, addr: u64) -> bool {
        self.allocator.owns(addr) || self.heap.arena_range().contains(&addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmi_core::DevicePtr;

    #[test]
    fn tenant_arenas_are_disjoint() {
        let mut a = Tenant::protected(0);
        let mut b = Tenant::protected(1);
        let pa = a.alloc(4096).unwrap();
        let pb = b.alloc(4096).unwrap();
        assert!(a.owns(DevicePtr::from_raw(pa).addr()));
        assert!(!a.owns(DevicePtr::from_raw(pb).addr()));
        assert!(b.owns(DevicePtr::from_raw(pb).addr()));
        assert!(!b.owns(DevicePtr::from_raw(pa).addr()));
        assert!(!a.heap.arena_range().contains(&b.heap.arena_range().start));
    }

    #[test]
    fn protected_tenant_pointers_carry_extents() {
        let cfg = PtrConfig::default();
        let mut t = Tenant::protected(3);
        let p = t.alloc(1000).unwrap();
        assert_eq!(DevicePtr::from_raw(p).size(&cfg), Some(1024));
        let mut u = Tenant::unprotected(4);
        let q = u.alloc(1000).unwrap();
        assert_eq!(DevicePtr::from_raw(q).extent(), 0);
    }

    #[test]
    fn arena_tags_name_their_tenant() {
        let t = Tenant::protected(7);
        assert_eq!(t.allocator.tenant(), Some(7));
        assert_eq!(t.heap.tenant(), Some(7));
    }
}
