//! Streams: in-order work queues, and the ops they carry.

use std::collections::VecDeque;

use lmi_sim::Launch;

/// Identifies a stream within its [`crate::Runtime`].
pub type StreamId = usize;

/// Identifies an event within its [`crate::Runtime`].
pub type EventId = usize;

/// A handle to the result of an asynchronous D2H copy; redeem it after
/// [`crate::Runtime::synchronize`] with [`crate::Runtime::copy_result`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CopyHandle(pub(crate) usize);

/// One queued operation.
pub(crate) enum StreamOp {
    /// Host→device copy: `data` words land at `ptr` when the transfer
    /// completes; `bytes` drives the cost model (it may exceed the payload
    /// for cost-only traffic).
    H2D { ptr: u64, bytes: u64, data: Vec<u64> },
    /// Device→host copy of `bytes` starting at `ptr`, delivered through
    /// the handle's result slot.
    D2H { ptr: u64, bytes: u64, handle: CopyHandle },
    /// A kernel launch.
    Kernel { launch: Box<Launch> },
    /// Completes instantly, stamping the event with the stream's current
    /// ready cycle.
    RecordEvent { event: EventId },
    /// Blocks the stream until the event has been recorded (possibly by
    /// another stream), then advances the stream's clock to the event's.
    WaitEvent { event: EventId },
}

/// One in-order work queue, owned by a tenant.
pub(crate) struct StreamState {
    pub id: StreamId,
    pub tenant: usize,
    pub ops: VecDeque<StreamOp>,
    /// Simulated cycle at which every completed op of this stream had
    /// finished — the stream's logical clock.
    pub ready_at: u64,
    /// Kernels submitted to this stream so far (label for reports).
    pub kernel_seq: usize,
}

impl StreamState {
    pub fn new(id: StreamId, tenant: usize) -> StreamState {
        StreamState { id, tenant, ops: VecDeque::new(), ready_at: 0, kernel_seq: 0 }
    }
}
