//! Benchmark specifications (paper Table V) with per-benchmark parameters
//! calibrated from the paper's own measurements.

/// Benchmark suite of origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// Rodinia heterogeneous-computing suite.
    Rodinia,
    /// Tango DNN benchmark suite.
    Tango,
    /// NVIDIA FasterTransformer kernels.
    FasterTransformer,
    /// Autonomous-driving models (BEVerse, DETR, MOTR, Segformer).
    Ad,
}

impl Suite {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Suite::Rodinia => "Rodinia",
            Suite::Tango => "Tango",
            Suite::FasterTransformer => "FasterTransformer",
            Suite::Ad => "AD",
        }
    }
}

/// A synthetic benchmark specification.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Benchmark name (Table V).
    pub name: &'static str,
    /// Suite of origin.
    pub suite: Suite,
    /// Fraction of memory instructions targeting global memory (Fig. 1).
    pub global_frac: f64,
    /// Fraction targeting shared memory (Fig. 1).
    pub shared_frac: f64,
    /// Fraction targeting local memory (Fig. 1).
    pub local_frac: f64,
    /// FFMA-class compute operations per memory operation.
    pub compute_per_mem: u32,
    /// Marked pointer-arithmetic operations per memory operation (×2
    /// fixed-point: 2 = one pointer op per mem op).
    pub ptr_ops_per_mem_x2: u32,
    /// `false` → unit-stride (coalesced) global accesses; `true` → each
    /// lane touches its own cache line.
    pub uncoalesced: bool,
    /// Number of distinct global kernel-argument buffers.
    pub num_buffers: usize,
    /// Cycle through all buffers on successive accesses (thrashes
    /// GPUShield's RCache — the `needle`/`LSTM` pattern).
    pub rcache_hostile: bool,
    /// Main-loop iterations.
    pub iters: u32,
    /// Thread blocks launched.
    pub blocks: usize,
    /// Threads per block.
    pub threads_per_block: usize,
    /// Host allocation-size profile `(bytes, count)` (Fig. 4).
    pub alloc_profile: &'static [(u64, u32)],
    /// The kernel also exercises device-side `malloc`/`free`.
    pub uses_kernel_malloc: bool,
    /// Block-wide barrier at the end of each iteration (wavefront
    /// algorithms like needle; sequential time steps like LSTM) — exposes
    /// per-iteration latency that warp scheduling cannot hide.
    pub barrier_per_iter: bool,
}

impl WorkloadSpec {
    /// Pointer ops per memory op as a float.
    pub fn ptr_ops_per_mem(&self) -> f64 {
        self.ptr_ops_per_mem_x2 as f64 / 2.0
    }

    /// A smaller copy of the spec (fewer iterations and blocks) for
    /// expensive instrumented runs (the DBI tools execute 20–60× more
    /// instructions). Normalized ratios are preserved because the baseline
    /// is measured at the same scale.
    pub fn scaled_down(&self, factor: u32) -> WorkloadSpec {
        let mut spec = self.clone();
        spec.iters = (self.iters / factor).max(2);
        spec.blocks = (self.blocks / factor as usize).max(8);
        spec
    }
}

macro_rules! spec {
    ($name:literal, $suite:expr, g=$g:expr, s=$s:expr, l=$l:expr,
     cpm=$cpm:expr, ppm2=$ppm:expr, unco=$unco:expr, bufs=$bufs:expr,
     hostile=$hostile:expr, profile=$profile:expr) => {
        WorkloadSpec {
            name: $name,
            suite: $suite,
            global_frac: $g,
            shared_frac: $s,
            local_frac: $l,
            compute_per_mem: $cpm,
            ptr_ops_per_mem_x2: $ppm,
            uncoalesced: $unco,
            num_buffers: $bufs,
            rcache_hostile: $hostile,
            iters: 12,
            blocks: 32,
            threads_per_block: 256,
            alloc_profile: $profile,
            uses_kernel_malloc: false,
            barrier_per_iter: $hostile,
        }
    };
}

/// Allocation profiles calibrated against paper Fig. 4 (backprop 85.9 %,
/// needle 92.9 %, hotspot/srad negligible, 18.73 % geometric mean).
mod profiles {
    pub const BACKPROP: &[(u64, u32)] = &[(65552, 16), (131072, 1), (32768, 1)]; // 85.9%
    pub const BFS: &[(u64, u32)] = &[(600000, 1), (1048576, 3)]; // 12.0%
    pub const DWT2D: &[(u64, u32)] = &[(300000, 2), (524288, 3)]; // 20.6%
    pub const GAUSSIAN: &[(u64, u32)] = &[(40000, 2), (65536, 4)]; // 14.8%
    pub const HOTSPOT: &[(u64, u32)] = &[(1048576, 4), (262144, 2)]; // 0.0%
    pub const LAVAMD: &[(u64, u32)] = &[(900000, 1), (1048576, 2)]; // 5.0%
    pub const LUD: &[(u64, u32)] = &[(700000, 1), (1048576, 2)]; // 12.5%
    pub const NEEDLE: &[(u64, u32)] = &[(16400, 16), (8192, 1), (2048, 1), (1024, 1)]; // 93.0%
    pub const NN: &[(u64, u32)] = &[(350000, 2), (524288, 2)]; // 19.9%
    pub const PF_FLOAT: &[(u64, u32)] = &[(150000, 2), (262144, 3)]; // 20.6%
    pub const PF_NAIVE: &[(u64, u32)] = &[(150000, 2), (131072, 5)]; // 23.5%
    pub const PATHFINDER: &[(u64, u32)] = &[(90000, 2), (131072, 4)]; // 11.6%
    pub const SC_GPU: &[(u64, u32)] = &[(500000, 2), (524288, 2)]; // 2.3%
    pub const SRAD1: &[(u64, u32)] = &[(524288, 4), (4096, 4)]; // 0.0%
    pub const SRAD2: &[(u64, u32)] = &[(262144, 8), (8192, 2)]; // 0.0%
    /// Model-style profile: large power-of-two weight tensors.
    pub const MODEL: &[(u64, u32)] = &[(4194304, 4), (1048576, 8)];
}

/// All 28 benchmarks of Table V.
pub fn all_workloads() -> Vec<WorkloadSpec> {
    use profiles::*;
    use Suite::*;
    let mut all = vec![
        spec!(
            "backprop",
            Rodinia,
            g = 0.55,
            s = 0.40,
            l = 0.05,
            cpm = 2,
            ppm2 = 2,
            unco = false,
            bufs = 4,
            hostile = false,
            profile = BACKPROP
        ),
        spec!(
            "bfs",
            Rodinia,
            g = 0.90,
            s = 0.05,
            l = 0.05,
            cpm = 1,
            ppm2 = 4,
            unco = true,
            bufs = 4,
            hostile = false,
            profile = BFS
        ),
        spec!(
            "dwt2d",
            Rodinia,
            g = 0.60,
            s = 0.35,
            l = 0.05,
            cpm = 3,
            ppm2 = 2,
            unco = false,
            bufs = 4,
            hostile = false,
            profile = DWT2D
        ),
        spec!(
            "gaussian",
            Rodinia,
            g = 0.85,
            s = 0.10,
            l = 0.05,
            cpm = 1,
            ppm2 = 12,
            unco = false,
            bufs = 4,
            hostile = false,
            profile = GAUSSIAN
        ),
        spec!(
            "hotspot",
            Rodinia,
            g = 0.45,
            s = 0.50,
            l = 0.05,
            cpm = 4,
            ppm2 = 2,
            unco = false,
            bufs = 4,
            hostile = false,
            profile = HOTSPOT
        ),
        spec!(
            "lavaMD",
            Rodinia,
            g = 0.40,
            s = 0.55,
            l = 0.05,
            cpm = 6,
            ppm2 = 2,
            unco = false,
            bufs = 4,
            hostile = false,
            profile = LAVAMD
        ),
        spec!(
            "lud_cuda",
            Rodinia,
            g = 0.15,
            s = 0.85,
            l = 0.00,
            cpm = 2,
            ppm2 = 2,
            unco = false,
            bufs = 4,
            hostile = false,
            profile = LUD
        ),
        spec!(
            "needle",
            Rodinia,
            g = 0.12,
            s = 0.85,
            l = 0.03,
            cpm = 1,
            ppm2 = 2,
            unco = true,
            bufs = 32,
            hostile = true,
            profile = NEEDLE
        ),
        spec!(
            "nn",
            Rodinia,
            g = 0.95,
            s = 0.00,
            l = 0.05,
            cpm = 1,
            ppm2 = 2,
            unco = false,
            bufs = 4,
            hostile = false,
            profile = NN
        ),
        spec!(
            "particlefilter_float",
            Rodinia,
            g = 0.70,
            s = 0.20,
            l = 0.10,
            cpm = 2,
            ppm2 = 2,
            unco = false,
            bufs = 4,
            hostile = false,
            profile = PF_FLOAT
        ),
        spec!(
            "particlefilter_naive",
            Rodinia,
            g = 0.85,
            s = 0.05,
            l = 0.10,
            cpm = 1,
            ppm2 = 2,
            unco = false,
            bufs = 4,
            hostile = false,
            profile = PF_NAIVE
        ),
        spec!(
            "pathfinder",
            Rodinia,
            g = 0.30,
            s = 0.65,
            l = 0.05,
            cpm = 2,
            ppm2 = 2,
            unco = false,
            bufs = 4,
            hostile = false,
            profile = PATHFINDER
        ),
        spec!(
            "sc_gpu",
            Rodinia,
            g = 0.80,
            s = 0.15,
            l = 0.05,
            cpm = 2,
            ppm2 = 2,
            unco = false,
            bufs = 4,
            hostile = false,
            profile = SC_GPU
        ),
        spec!(
            "srad_v1",
            Rodinia,
            g = 0.70,
            s = 0.25,
            l = 0.05,
            cpm = 3,
            ppm2 = 2,
            unco = false,
            bufs = 4,
            hostile = false,
            profile = SRAD1
        ),
        spec!(
            "srad_v2",
            Rodinia,
            g = 0.65,
            s = 0.30,
            l = 0.05,
            cpm = 3,
            ppm2 = 2,
            unco = false,
            bufs = 4,
            hostile = false,
            profile = SRAD2
        ),
        // Tango
        spec!(
            "AlexNet",
            Tango,
            g = 0.70,
            s = 0.25,
            l = 0.05,
            cpm = 8,
            ppm2 = 2,
            unco = false,
            bufs = 4,
            hostile = false,
            profile = MODEL
        ),
        spec!(
            "CifarNet",
            Tango,
            g = 0.75,
            s = 0.20,
            l = 0.05,
            cpm = 6,
            ppm2 = 2,
            unco = false,
            bufs = 4,
            hostile = false,
            profile = MODEL
        ),
        spec!(
            "GRU",
            Tango,
            g = 0.80,
            s = 0.15,
            l = 0.05,
            cpm = 4,
            ppm2 = 2,
            unco = false,
            bufs = 4,
            hostile = false,
            profile = MODEL
        ),
        spec!(
            "LSTM",
            Tango,
            g = 0.55,
            s = 0.40,
            l = 0.05,
            cpm = 4,
            ppm2 = 2,
            unco = true,
            bufs = 33,
            hostile = true,
            profile = MODEL
        ),
        // FasterTransformer
        spec!(
            "bert",
            FasterTransformer,
            g = 0.97,
            s = 0.02,
            l = 0.01,
            cpm = 10,
            ppm2 = 2,
            unco = false,
            bufs = 6,
            hostile = false,
            profile = MODEL
        ),
        spec!(
            "decoding",
            FasterTransformer,
            g = 0.96,
            s = 0.03,
            l = 0.01,
            cpm = 8,
            ppm2 = 2,
            unco = false,
            bufs = 6,
            hostile = false,
            profile = MODEL
        ),
        spec!(
            "swin",
            FasterTransformer,
            g = 0.85,
            s = 0.12,
            l = 0.03,
            cpm = 12,
            ppm2 = 1,
            unco = false,
            bufs = 6,
            hostile = false,
            profile = MODEL
        ),
        spec!(
            "wenet_decoder",
            FasterTransformer,
            g = 0.90,
            s = 0.08,
            l = 0.02,
            cpm = 8,
            ppm2 = 2,
            unco = false,
            bufs = 6,
            hostile = false,
            profile = MODEL
        ),
        spec!(
            "wenet_encoder",
            FasterTransformer,
            g = 0.90,
            s = 0.08,
            l = 0.02,
            cpm = 9,
            ppm2 = 2,
            unco = false,
            bufs = 6,
            hostile = false,
            profile = MODEL
        ),
        // Autonomous driving
        spec!(
            "BEVerse",
            Ad,
            g = 0.88,
            s = 0.10,
            l = 0.02,
            cpm = 10,
            ppm2 = 2,
            unco = false,
            bufs = 6,
            hostile = false,
            profile = MODEL
        ),
        spec!(
            "DETR",
            Ad,
            g = 0.90,
            s = 0.08,
            l = 0.02,
            cpm = 10,
            ppm2 = 2,
            unco = false,
            bufs = 6,
            hostile = false,
            profile = MODEL
        ),
        spec!(
            "MOTR",
            Ad,
            g = 0.88,
            s = 0.10,
            l = 0.02,
            cpm = 9,
            ppm2 = 2,
            unco = false,
            bufs = 6,
            hostile = false,
            profile = MODEL
        ),
        spec!(
            "segformer",
            Ad,
            g = 0.90,
            s = 0.08,
            l = 0.02,
            cpm = 11,
            ppm2 = 2,
            unco = false,
            bufs = 6,
            hostile = false,
            profile = MODEL
        ),
    ];
    // needle issues few global ops per iteration; lengthen it so the
    // RCache-hostile cycle covers more distinct buffers than the RCache
    // holds (the paper's 42.5% scenario). Its wavefront parallelism also
    // means low occupancy — one block per SM — so latency hiding cannot
    // absorb the bounds-fetch stalls.
    if let Some(needle) = all.iter_mut().find(|w| w.name == "needle") {
        needle.iters = 32;
        needle.blocks = 8;
        needle.threads_per_block = 128;
    }
    // LSTM's sequential time steps cap its parallelism similarly, though
    // less severely (paper: +24.0% under GPUShield vs needle's +42.5%).
    if let Some(lstm) = all.iter_mut().find(|w| w.name == "LSTM") {
        lstm.blocks = 32;
        lstm.threads_per_block = 256;
    }
    all
}

/// The 15 Rodinia benchmarks (the Fig. 4 fragmentation study population).
pub fn rodinia_workloads() -> Vec<WorkloadSpec> {
    all_workloads().into_iter().filter(|w| w.suite == Suite::Rodinia).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_has_28_benchmarks() {
        let all = all_workloads();
        assert_eq!(all.len(), 28);
        assert_eq!(all.iter().filter(|w| w.suite == Suite::Rodinia).count(), 15);
        assert_eq!(all.iter().filter(|w| w.suite == Suite::Tango).count(), 4);
        assert_eq!(all.iter().filter(|w| w.suite == Suite::FasterTransformer).count(), 5);
        assert_eq!(all.iter().filter(|w| w.suite == Suite::Ad).count(), 4);
    }

    #[test]
    fn region_fractions_are_sane() {
        for w in all_workloads() {
            let sum = w.global_frac + w.shared_frac + w.local_frac;
            assert!((0.99..=1.01).contains(&sum), "{}: fractions sum to {sum}", w.name);
        }
    }

    #[test]
    fn fig1_callouts_hold() {
        let all = all_workloads();
        let get = |n: &str| all.iter().find(|w| w.name == n).unwrap();
        assert!(get("bert").global_frac > 0.9, "bert is global-dominant");
        assert!(get("decoding").global_frac > 0.9);
        assert!(get("lud_cuda").shared_frac > 0.8, "lud_cuda >80% shared");
        assert!(get("needle").shared_frac > 0.8, "needle >80% shared");
    }

    #[test]
    fn rcache_hostile_benchmarks_are_needle_and_lstm() {
        let hostile: Vec<&str> =
            all_workloads().iter().filter(|w| w.rcache_hostile).map(|w| w.name).collect();
        assert_eq!(hostile, vec!["needle", "LSTM"]);
    }

    #[test]
    fn names_are_unique() {
        let all = all_workloads();
        let mut names: Vec<_> = all.iter().map(|w| w.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), all.len());
    }
}

/// A device-heap stress workload (not part of Table V): every thread
/// allocates, touches, and frees a variable-size buffer each iteration —
/// the "thousands of concurrent threads perform memory operations across
/// buffers in heap and local memory" scenario of the paper's abstract.
pub fn malloc_stress_workload() -> WorkloadSpec {
    let mut spec = all_workloads().into_iter().find(|w| w.name == "bfs").expect("bfs exists");
    spec.name = "malloc_stress";
    spec.uses_kernel_malloc = true;
    spec.iters = 6;
    spec.blocks = 16;
    spec
}

#[cfg(test)]
mod stress_tests {
    use super::*;

    #[test]
    fn stress_spec_enables_kernel_malloc() {
        let s = malloc_stress_workload();
        assert!(s.uses_kernel_malloc);
        assert!(
            all_workloads().iter().all(|w| !w.uses_kernel_malloc),
            "Table V workloads stay faithful to their host-allocated form"
        );
    }
}
