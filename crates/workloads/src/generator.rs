//! Expands a [`WorkloadSpec`] into an executable kernel.
//!
//! The generated kernel is a fully unrolled stream of *memory slots*. Each
//! slot: (1) loads a buffer base pointer from the parameter bank (cycling
//! through all registered buffers — the RCache-hostile benchmarks touch
//! more distinct buffers than GPUShield's RCache holds), (2) computes a
//! masked, always-in-bounds index, (3) performs the hint-marked pointer
//! arithmetic, (4) issues the load/store, and (5) runs the spec's FFMA
//! compute payload. Extra marked pointer ops model pointer-arithmetic-heavy
//! kernels (`gaussian`); sub-1 densities model access-reuse-heavy kernels
//! (`swin`).

use lmi_core::PtrConfig;
use lmi_isa::{abi, HintBits, Instruction, MemRef, Opcode, Program, ProgramBuilder, Reg};

use crate::spec::WorkloadSpec;

/// Size of each global perf buffer (power of two so the unprotected and
/// LMI allocators produce identical layouts — a fair timing comparison).
pub const PERF_BUF_BYTES: u64 = 256 * 1024;

/// Per-thread local scratch used by workloads with local traffic.
pub const LOCAL_BYTES: u64 = 4096;

/// Static shared memory used by workloads with shared traffic.
pub const SHARED_BYTES: u64 = 16 * 1024;

/// Memory slots per unrolled iteration.
pub const SLOTS_PER_ITER: usize = 20;

const TID: Reg = Reg(0);
const IDX: Reg = Reg(1);
const LBASE: Reg = Reg(2); // pair
const SBASE: Reg = Reg(4); // pair
const VAL: Reg = Reg(6);
const FB: Reg = Reg(7);
const FC: Reg = Reg(8);
const GBASE: Reg = Reg(12); // pair, reloaded per global slot
const ADDR: Reg = Reg(14); // pair
const PSCRATCH: Reg = Reg(16); // pair for extra marked pointer ops
const LOADED: Reg = Reg(9); // load destination, consumed by the compute chain
const HEAPPTR: Reg = Reg(18); // pair: per-iteration device-heap allocation
const HEAPSZ: Reg = Reg(10); // requested malloc size

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Space {
    Global,
    Shared,
    Local,
}

/// Deterministic per-iteration slot assignment matching the Fig. 1 mix:
/// Bresenham-style interleaving so the regions mix within an iteration
/// rather than running in phases.
fn slot_spaces(spec: &WorkloadSpec) -> Vec<Space> {
    let n = SLOTS_PER_ITER;
    let g = (spec.global_frac * n as f64).round() as usize;
    let s = ((spec.shared_frac * n as f64).round() as usize).min(n - g);
    let l = n - g - s;
    let targets = [(Space::Global, g), (Space::Shared, s), (Space::Local, l)];
    let mut emitted = [0usize; 3];
    let mut out = Vec::with_capacity(n);
    for k in 1..=n {
        // Pick the space that is furthest behind its proportional quota.
        let (best, _) = targets
            .iter()
            .enumerate()
            .filter(|&(i, &(_, t))| emitted[i] < t)
            .map(|(i, &(_, t))| (i, (t * k) as i64 - (emitted[i] * n) as i64))
            .max_by_key(|&(_, deficit)| deficit)
            .expect("quotas sum to n");
        emitted[best] += 1;
        out.push(targets[best].0);
    }
    out
}

fn extent_bits_for(bytes: u64) -> i32 {
    let cfg = PtrConfig::default();
    let extent = cfg.extent_for_size(bytes).expect("workload buffers fit the limit");
    (extent as i32) << 27
}

/// Generates the LMI-protected kernel variant for `spec`.
pub fn generate(spec: &WorkloadSpec) -> Program {
    generate_variant(spec, true)
}

/// Generates a kernel variant: with `embed_extents` the prologue stamps the
/// statically known extents into the local/shared base pointers (the only
/// instruction-stream difference between the protected and unprotected
/// builds — the hint bits are present in both, they are free metadata).
pub fn generate_variant(spec: &WorkloadSpec, embed_extents: bool) -> Program {
    let mut b = ProgramBuilder::new(spec.name);
    b.local_bytes(LOCAL_BYTES as u32);
    b.shared_bytes(SHARED_BYTES as u32);

    let spaces = slot_spaces(spec);
    let uses_shared = spaces.contains(&Space::Shared);
    let uses_local = spaces.contains(&Space::Local);

    // Prologue.
    b.push(Instruction::s2r(TID, lmi_isa::op::SpecialReg::TidX));
    b.push(Instruction::mov(VAL, 1.5f32.to_bits() as i32));
    b.push(Instruction::mov(FB, 1.0001f32.to_bits() as i32));
    b.push(Instruction::mov(FC, 0.25f32.to_bits() as i32));
    if uses_local {
        b.push(Instruction::ldc(LBASE, abi::LAUNCH_BANK, abi::STACK_TOP_OFFSET, 8));
        b.push(Instruction::iadd64(LBASE, LBASE, -(LOCAL_BYTES as i32)));
        if embed_extents {
            b.push(Instruction::int2(
                Opcode::Or,
                LBASE.pair_high(),
                LBASE.pair_high(),
                extent_bits_for(LOCAL_BYTES),
            ));
        }
    }
    if uses_shared {
        b.push(Instruction::ldc(SBASE, abi::LAUNCH_BANK, abi::SHARED_BASE_OFFSET, 8));
        if embed_extents {
            b.push(Instruction::int2(
                Opcode::Or,
                SBASE.pair_high(),
                SBASE.pair_high(),
                extent_bits_for(SHARED_BYTES),
            ));
        }
    }

    let ppm = spec.ptr_ops_per_mem();
    // Sub-1 densities reuse one address for several accesses.
    let accesses_per_ptr = if ppm < 1.0 { (1.0 / ppm).round() as usize } else { 1 };
    let extra_marked = if ppm > 1.0 { ppm.round() as usize - 1 } else { 0 };

    let mut global_instance = 0usize; // cycles through buffers
    let mut slot_instance = 0usize;
    for iter in 0..spec.iters {
        if spec.uses_kernel_malloc {
            // Fig. 3: every thread allocates its own (variable-size) buffer,
            // touches it, and frees it — thousands of concurrent heap calls.
            b.push(Instruction::int2(Opcode::And, HEAPSZ, TID, 63));
            b.push(Instruction::int2(Opcode::Shl, HEAPSZ, HEAPSZ, 2));
            b.push(Instruction::iadd3(HEAPSZ, HEAPSZ, 64 + (iter as i32 % 5) * 16));
            b.push(Instruction::malloc(HEAPPTR, HEAPSZ));
            b.push(Instruction::int2(Opcode::And, IDX, TID, 15));
            b.push(
                Instruction::lea64(ADDR, HEAPPTR, IDX, 2).with_hints(HintBits::check_operand(0)),
            );
            b.push(Instruction::stg(MemRef::new(ADDR, 0, 4), TID));
            b.push(Instruction::ldg(LOADED, MemRef::new(ADDR, 0, 4)));
            b.push(Instruction::free(HEAPPTR));
        }
        for &space in &spaces {
            let (base, elem_mask): (Reg, i32) = match space {
                Space::Global => {
                    let param = global_instance % spec.num_buffers.max(1);
                    global_instance += 1;
                    b.push(Instruction::ldc(GBASE, abi::LAUNCH_BANK, abi::param_offset(param), 8));
                    (GBASE, (PERF_BUF_BYTES / 4 - 1) as i32)
                }
                Space::Shared => (SBASE, (SHARED_BYTES / 4 - 1) as i32),
                // Kernels touch a small hot region of their stacks; the
                // full window would span 32x that after lane interleaving.
                Space::Local => (LBASE, 63),
            };

            // Index: coalesced lanes sit adjacent; uncoalesced lanes are a
            // cache line apart.
            if space == Space::Local {
                // Per-thread local arrays are indexed uniformly across the
                // warp (each lane owns its interleaved copy), so the warp's
                // accesses coalesce into one transaction.
                b.push(Instruction::mov(IDX, (slot_instance * 11 % 64) as i32));
            } else if spec.uncoalesced && space == Space::Global {
                // Lane-strided accesses: 16 transactions per warp, but a
                // tight per-buffer footprint (2 KB) that stays L1-resident
                // across buffer-cycling rounds — the L1-hit/RCache-miss
                // pattern behind GPUShield's needle/LSTM overheads (§XI-A).
                b.push(Instruction::int2(Opcode::And, IDX, TID, 31));
                b.push(Instruction::int2(Opcode::Shl, IDX, IDX, 4));
                b.push(Instruction::iadd3(IDX, IDX, (slot_instance % 4) as i32));
            } else if spec.rcache_hostile {
                b.push(Instruction::iadd3(IDX, TID, (slot_instance % 64) as i32));
            } else {
                b.push(Instruction::iadd3(IDX, TID, (slot_instance * 37 % 1024) as i32));
            }
            b.push(Instruction::int2(Opcode::And, IDX, IDX, elem_mask));

            // The hint-marked pointer arithmetic (LMI's OCU check site).
            b.push(Instruction::lea64(ADDR, base, IDX, 2).with_hints(HintBits::check_operand(0)));
            for e in 0..extra_marked {
                b.push(
                    Instruction::iadd64(PSCRATCH, base, (e as i32 + 1) * 4)
                        .with_hints(HintBits::check_operand(0)),
                );
            }

            for access in 0..accesses_per_ptr {
                let mem = MemRef::new(ADDR, access as i32 * 4, 4);
                let is_store = (slot_instance + access) % 4 == 3;
                let ins = match (space, is_store) {
                    (Space::Global, false) => Instruction::ldg(LOADED, mem),
                    (Space::Global, true) => Instruction::stg(mem, VAL),
                    (Space::Shared, false) => Instruction::lds(LOADED, mem),
                    (Space::Shared, true) => Instruction::sts(mem, VAL),
                    (Space::Local, false) => Instruction::ldl(LOADED, mem),
                    (Space::Local, true) => Instruction::stl(mem, VAL),
                };
                b.push(ins);
            }

            // The first compute op consumes the loaded value so memory
            // latency is architecturally visible (dead loads hide stalls).
            for c in 0..spec.compute_per_mem {
                if c == 0 {
                    b.push(Instruction::ffma(VAL, VAL, FB, LOADED));
                } else {
                    b.push(Instruction::ffma(VAL, VAL, FB, FC));
                }
            }
            slot_instance += 1;
        }
        if spec.barrier_per_iter {
            b.push(Instruction::bar());
        }
    }
    b.push(Instruction::exit());
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::all_workloads;
    use lmi_isa::MemSpace;

    fn spec(name: &str) -> WorkloadSpec {
        all_workloads().into_iter().find(|w| w.name == name).unwrap()
    }

    #[test]
    fn every_workload_generates_and_assembles() {
        for w in all_workloads() {
            let p = generate(&w);
            assert!(!p.is_empty(), "{}", w.name);
            assert!(p.regs_per_thread <= 32, "{} uses {} regs", w.name, p.regs_per_thread);
            p.assemble(lmi_isa::ComputeCapability::Cc80)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        }
    }

    #[test]
    fn static_mem_mix_tracks_the_spec() {
        for w in all_workloads() {
            let p = generate(&w);
            let count = |space| {
                p.instructions
                    .iter()
                    .filter(|i| i.opcode.mem_space() == Some(space) && i.opcode.is_mem())
                    .count() as f64
            };
            let g = count(MemSpace::Global);
            let s = count(MemSpace::Shared);
            let l = count(MemSpace::Local);
            let total = g + s + l;
            assert!(
                (g / total - w.global_frac).abs() < 0.08,
                "{}: global {} vs {}",
                w.name,
                g / total,
                w.global_frac
            );
            assert!((s / total - w.shared_frac).abs() < 0.08, "{}", w.name);
        }
    }

    #[test]
    fn hostile_workloads_cycle_many_buffers() {
        let p = generate(&spec("needle"));
        let mut params: Vec<u16> = p
            .instructions
            .iter()
            .filter(|i| i.opcode == lmi_isa::Opcode::Ldc)
            .filter_map(|i| match i.srcs[0] {
                lmi_isa::Operand::Const { offset, .. } if offset >= abi::PARAM_BASE_OFFSET => {
                    Some(offset)
                }
                _ => None,
            })
            .collect();
        params.sort_unstable();
        params.dedup();
        assert!(params.len() > 28, "needle touches {} distinct buffers", params.len());
    }

    #[test]
    fn gaussian_is_pointer_op_dense_and_swin_is_sparse() {
        let g = generate(&spec("gaussian"));
        let s = generate(&spec("swin"));
        let ratio = |p: &Program| p.hinted_count() as f64 / p.mem_count() as f64;
        assert!(ratio(&g) > 3.0, "gaussian check:mem ratio {}", ratio(&g));
        assert!(ratio(&s) < 0.8, "swin check:mem ratio {}", ratio(&s));
    }

    #[test]
    fn generated_kernels_mark_only_wide_int_ops() {
        for w in all_workloads() {
            let p = generate(&w);
            for i in &p.instructions {
                if i.hints.activate {
                    assert!(i.opcode.is_wide(), "{}: {} marked", w.name, i.opcode);
                }
            }
        }
    }
}
