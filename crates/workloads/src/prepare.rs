//! Host-side preparation: buffer allocation, launch construction, and the
//! Fig. 4 fragmentation measurement.

use lmi_alloc::{AlignmentPolicy, GlobalAllocator};
use lmi_core::{DevicePtr, PtrConfig};
use lmi_mem::layout;
use lmi_sim::Launch;

use crate::generator::{self, PERF_BUF_BYTES};
use crate::spec::WorkloadSpec;

/// Minimal trait so `prepare` can register buffers with GPUShield without a
/// circular crate dependency (`lmi-baselines` depends on `lmi-sim`, and the
/// bench harness wires both together).
pub(crate) mod lmi_baselines_shim {
    /// Anything with a GPUShield-style bounds-table registration call.
    pub trait GpuShieldLike {
        /// Registers a kernel-argument buffer region.
        fn register_buffer(&mut self, base: u64, size: u64);
    }
}

pub use lmi_baselines_shim::GpuShieldLike as RegisterBuffers;

/// A workload ready to run: launch descriptor plus buffer ground truth.
#[derive(Debug, Clone)]
pub struct PreparedWorkload {
    /// The launch (program, geometry, parameters).
    pub launch: Launch,
    /// `(base address, requested size)` of each kernel-argument buffer.
    pub buffers: Vec<(u64, u64)>,
}

impl PreparedWorkload {
    /// Registers every kernel-argument buffer with a GPUShield-style
    /// bounds table.
    pub fn register_with(&self, shield: &mut impl RegisterBuffers) {
        for &(base, size) in &self.buffers {
            shield.register_buffer(base, size);
        }
    }
}

/// Allocates the workload's buffers under `policy` and builds the launch.
pub fn prepare(spec: &WorkloadSpec, policy: AlignmentPolicy) -> PreparedWorkload {
    let cfg = PtrConfig::default();
    let mut alloc = GlobalAllocator::new(cfg, policy, layout::GLOBAL_BASE, 8 << 30);
    let program = generator::generate_variant(spec, policy == AlignmentPolicy::PowerOfTwo);
    let mut launch = Launch::new(program).grid(spec.blocks).block(spec.threads_per_block);
    let mut buffers = Vec::with_capacity(spec.num_buffers);
    for _ in 0..spec.num_buffers {
        let raw = alloc.alloc(PERF_BUF_BYTES).expect("perf arena is large enough");
        buffers.push((DevicePtr::from_raw(raw).addr(), PERF_BUF_BYTES));
        launch = launch.param(raw);
    }
    PreparedWorkload { launch, buffers }
}

/// Runs the spec's Fig. 4 allocation profile under `policy`; returns the
/// peak RSS in bytes.
pub fn profile_peak_rss(spec: &WorkloadSpec, policy: AlignmentPolicy) -> u64 {
    let cfg = PtrConfig::default();
    let mut alloc = GlobalAllocator::new(cfg, policy, layout::GLOBAL_BASE, 8 << 30);
    for &(size, count) in spec.alloc_profile {
        for _ in 0..count {
            alloc.alloc(size).expect("profile fits the arena");
        }
    }
    alloc.rss().peak
}

/// Fig. 4's metric: LMI peak RSS over baseline peak RSS, minus one.
pub fn fragmentation_overhead(spec: &WorkloadSpec) -> f64 {
    let base = profile_peak_rss(spec, AlignmentPolicy::CudaDefault) as f64;
    let lmi = profile_peak_rss(spec, AlignmentPolicy::PowerOfTwo) as f64;
    lmi / base - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{all_workloads, rodinia_workloads};

    fn spec(name: &str) -> WorkloadSpec {
        all_workloads().into_iter().find(|w| w.name == name).unwrap()
    }

    #[test]
    fn prepared_buffers_match_params() {
        let p = prepare(&spec("backprop"), AlignmentPolicy::PowerOfTwo);
        assert_eq!(p.buffers.len(), p.launch.params.len());
        for (&(base, _), &param) in p.buffers.iter().zip(&p.launch.params) {
            assert_eq!(DevicePtr::from_raw(param).addr(), base);
            assert!(DevicePtr::from_raw(param).is_valid(&PtrConfig::default()));
        }
    }

    #[test]
    fn baseline_params_carry_no_extents() {
        let p = prepare(&spec("bfs"), AlignmentPolicy::CudaDefault);
        for &param in &p.launch.params {
            assert_eq!(DevicePtr::from_raw(param).extent(), 0);
        }
    }

    #[test]
    fn fig4_named_benchmarks_match_the_paper() {
        let ov = |n: &str| fragmentation_overhead(&spec(n));
        assert!((ov("backprop") - 0.859).abs() < 0.01, "backprop {}", ov("backprop"));
        assert!((ov("needle") - 0.929).abs() < 0.012, "needle {}", ov("needle"));
        assert!(ov("hotspot") < 0.005, "hotspot {}", ov("hotspot"));
        assert!(ov("srad_v1") < 0.005);
        assert!(ov("srad_v2") < 0.005);
    }

    #[test]
    fn fig4_geomean_is_near_18_73_percent() {
        let rodinia = rodinia_workloads();
        let lnsum: f64 = rodinia.iter().map(|w| (1.0 + fragmentation_overhead(w)).ln()).sum();
        let geomean = (lnsum / rodinia.len() as f64).exp() - 1.0;
        assert!((geomean - 0.1873).abs() < 0.02, "geomean fragmentation {geomean} vs paper 0.1873");
    }
}
