//! Multi-stream traffic specifications for the `lmi-runtime` layer.
//!
//! A [`TrafficMix`] describes a whole *host program* rather than a single
//! kernel: several streams, each owned by a tenant, each submitting an
//! upload → kernel → readback pipeline built from one of the Table V
//! workload specs. The runtime benches and determinism tests replay the
//! same mix at different `sim_threads`/stream counts and compare results.
//!
//! This crate cannot depend on `lmi-runtime` (the runtime's dev-tests use
//! these specs), so a mix only *describes* traffic; [`prepare_in`] does
//! the per-tenant half of the work — building the kernel against buffers
//! carved from a caller-supplied allocator arena instead of the fixed
//! whole-GPU arena that [`crate::prepare()`] assumes.

use lmi_alloc::GlobalAllocator;
use lmi_core::DevicePtr;
use lmi_sim::Launch;

use crate::generator::{self, PERF_BUF_BYTES};
use crate::prepare::PreparedWorkload;
use crate::spec::{all_workloads, WorkloadSpec};

/// One stream's submissions within a [`TrafficMix`].
#[derive(Debug, Clone)]
pub struct StreamTraffic {
    /// Table V workload name the kernel is generated from.
    pub workload: &'static str,
    /// Tenant index within the mix (streams sharing a tenant share an
    /// arena and a mechanism).
    pub tenant: usize,
    /// 8-byte words uploaded into the first buffer before the kernel.
    pub h2d_words: usize,
    /// Bytes read back from the first buffer after the kernel.
    pub d2h_bytes: u64,
    /// `scaled_down` factor applied to the spec (1 = full size).
    pub scale: u32,
}

/// A whole multi-stream host program.
#[derive(Debug, Clone)]
pub struct TrafficMix {
    /// Mix name (benchmark dimension key).
    pub name: &'static str,
    /// Tenant protection flags; `tenants.len()` tenants, index = id.
    pub tenants: Vec<bool>,
    /// One entry per stream, in creation order.
    pub streams: Vec<StreamTraffic>,
}

impl TrafficMix {
    /// Resolves a stream's workload spec (scaled).
    pub fn spec_of(&self, stream: usize) -> WorkloadSpec {
        let t = &self.streams[stream];
        let spec = all_workloads()
            .into_iter()
            .find(|w| w.name == t.workload)
            .unwrap_or_else(|| panic!("unknown workload {:?}", t.workload));
        if t.scale > 1 {
            spec.scaled_down(t.scale)
        } else {
            spec
        }
    }
}

/// Builds the kernel for `spec` with its buffers allocated from `alloc` —
/// the tenant-arena variant of [`crate::prepare()`]. The allocator's policy
/// decides whether parameters carry LMI extents.
pub fn prepare_in(spec: &WorkloadSpec, alloc: &mut GlobalAllocator) -> PreparedWorkload {
    let embed = alloc.policy() == lmi_alloc::AlignmentPolicy::PowerOfTwo;
    let program = generator::generate_variant(spec, embed);
    let mut launch = Launch::new(program).grid(spec.blocks).block(spec.threads_per_block);
    let mut buffers = Vec::with_capacity(spec.num_buffers);
    for _ in 0..spec.num_buffers {
        let raw = alloc.alloc(PERF_BUF_BYTES).expect("tenant arena fits the workload buffers");
        buffers.push((DevicePtr::from_raw(raw).addr(), PERF_BUF_BYTES));
        launch = launch.param(raw);
    }
    PreparedWorkload { launch, buffers }
}

/// The canned mixes the runtime bench sweeps. Workloads are chosen for
/// contrast: `bfs` is global-dominant and uncoalesced, `hotspot` is
/// compute-heavy, `needle` is shared-memory/barrier-bound, `srad_v1`
/// mixes global and local traffic.
pub fn runtime_mixes() -> Vec<TrafficMix> {
    vec![
        TrafficMix {
            name: "solo",
            tenants: vec![true],
            streams: vec![StreamTraffic {
                workload: "hotspot",
                tenant: 0,
                h2d_words: 4096,
                d2h_bytes: 4096,
                scale: 2,
            }],
        },
        TrafficMix {
            name: "dual-tenant",
            tenants: vec![true, true],
            streams: vec![
                StreamTraffic {
                    workload: "hotspot",
                    tenant: 0,
                    h2d_words: 4096,
                    d2h_bytes: 4096,
                    scale: 2,
                },
                StreamTraffic {
                    workload: "bfs",
                    tenant: 1,
                    h2d_words: 4096,
                    d2h_bytes: 4096,
                    scale: 2,
                },
            ],
        },
        TrafficMix {
            name: "quad-stream",
            tenants: vec![true, true],
            streams: vec![
                StreamTraffic {
                    workload: "hotspot",
                    tenant: 0,
                    h2d_words: 2048,
                    d2h_bytes: 2048,
                    scale: 4,
                },
                StreamTraffic {
                    workload: "bfs",
                    tenant: 0,
                    h2d_words: 2048,
                    d2h_bytes: 2048,
                    scale: 4,
                },
                StreamTraffic {
                    workload: "needle",
                    tenant: 1,
                    h2d_words: 2048,
                    d2h_bytes: 2048,
                    scale: 4,
                },
                StreamTraffic {
                    workload: "srad_v1",
                    tenant: 1,
                    h2d_words: 2048,
                    d2h_bytes: 2048,
                    scale: 4,
                },
            ],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmi_alloc::AlignmentPolicy;
    use lmi_core::PtrConfig;
    use lmi_mem::layout;

    #[test]
    fn mixes_reference_real_workloads_and_tenants() {
        for mix in runtime_mixes() {
            assert!(!mix.streams.is_empty());
            for (i, s) in mix.streams.iter().enumerate() {
                assert!(s.tenant < mix.tenants.len(), "{}: stream {i} tenant", mix.name);
                let spec = mix.spec_of(i);
                assert!(spec.blocks > 0 && spec.num_buffers > 0);
            }
        }
    }

    #[test]
    fn prepare_in_allocates_from_the_given_arena() {
        let base = layout::GLOBAL_BASE + (64 << 30);
        let mut alloc =
            GlobalAllocator::new(PtrConfig::default(), AlignmentPolicy::PowerOfTwo, base, 1 << 30);
        let spec = runtime_mixes()[0].spec_of(0);
        let p = prepare_in(&spec, &mut alloc);
        assert_eq!(p.buffers.len(), p.launch.params.len());
        for &(addr, _) in &p.buffers {
            assert!(addr >= base && addr < base + (1 << 30), "buffer in the tenant arena");
        }
        for &param in &p.launch.params {
            assert!(DevicePtr::from_raw(param).extent() > 0, "protected params carry extents");
        }
    }
}
