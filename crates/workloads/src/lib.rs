//! # lmi-workloads — the synthetic benchmark suite (paper Table V)
//!
//! The paper evaluates on 28 CUDA benchmarks (Rodinia, Tango,
//! FasterTransformer, and four autonomous-driving models) whose binaries
//! and traces are not reproducible here. Each benchmark is therefore
//! re-expressed as a **parameterized synthetic kernel**: a [`spec`] records
//! the properties that actually drive the paper's results —
//!
//! * the memory-region instruction mix (Fig. 1: e.g. `bert`/`decoding` are
//!   global-dominant, `lud_cuda`/`needle` issue > 80 % shared-memory ops);
//! * compute intensity and pointer-arithmetic density (drives Baggy
//!   Bounds' and the DBI tools' instruction-injection overheads);
//! * the access/coalescing pattern and the number of distinct buffers
//!   (drives GPUShield's RCache behaviour on `needle`/`LSTM`);
//! * the host allocation-size profile (Fig. 4 fragmentation, tuned so the
//!   published per-benchmark overheads and the 18.73 % geometric mean are
//!   reproduced);
//!
//! and [`generator`] expands the spec into an executable [`lmi_isa`]
//! program plus launch geometry ([`prepare()`](prepare())).

pub mod generator;
pub mod prepare;
pub mod spec;
pub mod traffic;

pub use generator::generate;
pub use prepare::{prepare, PreparedWorkload};
pub use spec::{all_workloads, malloc_stress_workload, rodinia_workloads, Suite, WorkloadSpec};
pub use traffic::{prepare_in, runtime_mixes, StreamTraffic, TrafficMix};
