//! Randomized property tests for the binary-rewriting engine: under
//! arbitrary injection patterns, control flow is preserved — every branch
//! still lands on the instruction it originally targeted. Seeded
//! SplitMix64 keeps failures reproducible.

use lmi_baselines::instrument;
use lmi_isa::instr::CmpOp;
use lmi_isa::reg::PredReg;
use lmi_isa::{Instruction, Opcode, Operand, Program, ProgramBuilder, Reg};
use lmi_telemetry::SplitMix64;

/// Builds a program with `n` filler instructions and branches at chosen
/// positions targeting chosen original indices.
fn build_program(n: usize, branches: &[(usize, usize)]) -> Program {
    let mut b = ProgramBuilder::new("p");
    let branch_at: std::collections::HashMap<usize, usize> = branches.iter().copied().collect();
    for pc in 0..n {
        if let Some(&target) = branch_at.get(&pc) {
            b.push(
                Instruction::bra(target as i32)
                    .with_pred(lmi_isa::Predicate { reg: PredReg(0), negated: false }),
            );
        } else {
            match pc % 3 {
                0 => b.push(Instruction::iadd3(Reg(2), Reg(2), 1)),
                1 => b.push(Instruction::mov(Reg(3), pc as i32)),
                _ => b.push(Instruction::isetp(PredReg(0), Reg(2), CmpOp::Lt, 100)),
            };
        }
    }
    b.push(Instruction::exit());
    b.build()
}

/// One test case: program length, branch (position, target) pairs, and a
/// per-pc injection mask.
fn case(rng: &mut SplitMix64) -> (usize, Vec<(usize, usize)>, Vec<bool>) {
    let n = rng.range(5, 40) as usize;
    let branches = (0..rng.below(5))
        .map(|_| (rng.below(n as u64) as usize, rng.below(n as u64 + 1) as usize))
        .collect();
    let inject_at = (0..=n).map(|_| rng.chance(0.5)).collect();
    (n, branches, inject_at)
}

#[test]
fn branch_targets_survive_arbitrary_injection() {
    let mut rng = SplitMix64::new(0xB4A);
    for case_idx in 0..300 {
        let (n, branches, inject_at) = case(&mut rng);
        let original = build_program(n, &branches);
        let out = instrument(&original, |_, pc| {
            if inject_at.get(pc).copied().unwrap_or(false) {
                vec![Instruction::nop(), Instruction::nop()]
            } else {
                Vec::new()
            }
        });

        // Reconstruct the old->new position map independently.
        let mut new_pos = Vec::new();
        let mut cursor = 0usize;
        for pc in 0..original.len() {
            new_pos.push(cursor);
            cursor += 1 + if inject_at.get(pc).copied().unwrap_or(false) { 2 } else { 0 };
        }
        new_pos.push(cursor);

        // Every original instruction sits at its mapped position …
        for (pc, ins) in original.instructions.iter().enumerate() {
            let moved = &out.instructions[new_pos[pc]];
            if ins.opcode == Opcode::Bra {
                assert_eq!(moved.opcode, Opcode::Bra, "case {case_idx}");
                // … and every branch points at the mapped target.
                let old_target = match ins.srcs[0] {
                    Operand::Imm(t) => t as usize,
                    _ => unreachable!(),
                };
                let new_target = match moved.srcs[0] {
                    Operand::Imm(t) => t as usize,
                    _ => unreachable!(),
                };
                assert_eq!(new_target, new_pos[old_target.min(original.len())], "case {case_idx}");
            } else {
                assert_eq!(moved, ins, "case {case_idx}");
            }
        }
    }
}

#[test]
fn injection_count_is_exact() {
    let mut rng = SplitMix64::new(0x171);
    for case_idx in 0..300 {
        let (n, branches, inject_at) = case(&mut rng);
        let original = build_program(n, &branches);
        let injected_total: usize =
            (0..original.len()).filter(|&pc| inject_at.get(pc).copied().unwrap_or(false)).count()
                * 2;
        let out = instrument(&original, |_, pc| {
            if inject_at.get(pc).copied().unwrap_or(false) {
                vec![Instruction::nop(), Instruction::nop()]
            } else {
                Vec::new()
            }
        });
        assert_eq!(out.len(), original.len() + injected_total, "case {case_idx}");
    }
}
