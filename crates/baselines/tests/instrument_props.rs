//! Property tests for the binary-rewriting engine: under arbitrary
//! injection patterns, control flow is preserved — every branch still
//! lands on the instruction it originally targeted.

use lmi_baselines::instrument;
use lmi_isa::instr::CmpOp;
use lmi_isa::reg::PredReg;
use lmi_isa::{Instruction, Opcode, Operand, Program, ProgramBuilder, Reg};
use proptest::prelude::*;

/// Builds a program with `n` filler instructions and branches at chosen
/// positions targeting chosen original indices.
fn build_program(n: usize, branches: &[(usize, usize)]) -> Program {
    let mut b = ProgramBuilder::new("p");
    let branch_at: std::collections::HashMap<usize, usize> =
        branches.iter().copied().collect();
    for pc in 0..n {
        if let Some(&target) = branch_at.get(&pc) {
            b.push(
                Instruction::bra(target as i32)
                    .with_pred(lmi_isa::Predicate { reg: PredReg(0), negated: false }),
            );
        } else {
            match pc % 3 {
                0 => b.push(Instruction::iadd3(Reg(2), Reg(2), 1)),
                1 => b.push(Instruction::mov(Reg(3), pc as i32)),
                _ => b.push(Instruction::isetp(PredReg(0), Reg(2), CmpOp::Lt, 100)),
            };
        }
    }
    b.push(Instruction::exit());
    b.build()
}

fn arb_case() -> impl Strategy<Value = (usize, Vec<(usize, usize)>, Vec<bool>)> {
    (5usize..40).prop_flat_map(|n| {
        (
            Just(n),
            proptest::collection::vec((0..n, 0..=n), 0..5),
            proptest::collection::vec(any::<bool>(), n + 1),
        )
    })
}

proptest! {
    #[test]
    fn branch_targets_survive_arbitrary_injection((n, branches, inject_at) in arb_case()) {
        let original = build_program(n, &branches);
        let out = instrument(&original, |_, pc| {
            if inject_at.get(pc).copied().unwrap_or(false) {
                vec![Instruction::nop(), Instruction::nop()]
            } else {
                Vec::new()
            }
        });

        // Reconstruct the old->new position map independently.
        let mut new_pos = Vec::new();
        let mut cursor = 0usize;
        for pc in 0..original.len() {
            new_pos.push(cursor);
            cursor += 1 + if inject_at.get(pc).copied().unwrap_or(false) { 2 } else { 0 };
        }
        new_pos.push(cursor);

        // Every original instruction sits at its mapped position …
        for (pc, ins) in original.instructions.iter().enumerate() {
            let moved = &out.instructions[new_pos[pc]];
            if ins.opcode == Opcode::Bra {
                prop_assert_eq!(moved.opcode, Opcode::Bra);
                // … and every branch points at the mapped target.
                let old_target = match ins.srcs[0] {
                    Operand::Imm(t) => t as usize,
                    _ => unreachable!(),
                };
                let new_target = match moved.srcs[0] {
                    Operand::Imm(t) => t as usize,
                    _ => unreachable!(),
                };
                prop_assert_eq!(new_target, new_pos[old_target.min(original.len())]);
            } else {
                prop_assert_eq!(moved, ins);
            }
        }
    }

    #[test]
    fn injection_count_is_exact((n, branches, inject_at) in arb_case()) {
        let original = build_program(n, &branches);
        let injected_total: usize = (0..original.len())
            .filter(|&pc| inject_at.get(pc).copied().unwrap_or(false))
            .count()
            * 2;
        let out = instrument(&original, |_, pc| {
            if inject_at.get(pc).copied().unwrap_or(false) {
                vec![Instruction::nop(), Instruction::nop()]
            } else {
                Vec::new()
            }
        });
        prop_assert_eq!(out.len(), original.len() + injected_total);
    }
}
