//! Binary-rewriting engine: inject instruction sequences after selected
//! instructions, fixing up branch targets.

use lmi_isa::{Instruction, Opcode, Operand, Program};

/// Rewrites `program`, appending `inject(ins, pc)`'s sequence immediately
/// after each instruction, and remapping all branch targets to the new
/// instruction positions.
///
/// # Panics
///
/// Panics if an injected sequence contains a branch (injected code must be
/// straight-line) or if the rewritten program would exceed the register
/// budget recorded in `regs_per_thread`.
pub fn instrument(
    program: &Program,
    mut inject: impl FnMut(&Instruction, usize) -> Vec<Instruction>,
) -> Program {
    let n = program.instructions.len();
    // First pass: compute the new position of every old pc.
    let mut new_pos = Vec::with_capacity(n + 1);
    let mut cursor = 0usize;
    let mut sequences: Vec<Vec<Instruction>> = Vec::with_capacity(n);
    for (pc, ins) in program.instructions.iter().enumerate() {
        new_pos.push(cursor);
        let seq = inject(ins, pc);
        assert!(
            seq.iter().all(|i| i.opcode != Opcode::Bra),
            "injected sequences must be straight-line"
        );
        cursor += 1 + seq.len();
        sequences.push(seq);
    }
    new_pos.push(cursor); // branch-past-the-end stays valid

    // Second pass: emit with remapped branch targets.
    let mut out = Program::new(program.name.clone());
    out.shared_bytes = program.shared_bytes;
    out.local_bytes = program.local_bytes;
    let mut max_reg = program.regs_per_thread.saturating_sub(1);
    for (pc, ins) in program.instructions.iter().enumerate() {
        let mut ins = ins.clone();
        if ins.opcode == Opcode::Bra {
            if let Operand::Imm(t) = ins.srcs[0] {
                let t = (t.max(0) as usize).min(n);
                ins.srcs[0] = Operand::Imm(new_pos[t] as i32);
            }
        }
        out.instructions.push(ins);
        for injected in &sequences[pc] {
            for r in injected.dest_regs().into_iter().chain(injected.source_regs()) {
                if !r.is_zero_reg() {
                    max_reg = max_reg.max(r.0);
                }
            }
            out.instructions.push(injected.clone());
        }
    }
    assert!(max_reg <= 126, "instrumented program exceeds the register file");
    out.regs_per_thread = max_reg + 1;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmi_isa::instr::CmpOp;
    use lmi_isa::reg::PredReg;
    use lmi_isa::{ProgramBuilder, Reg};

    fn looped_program() -> Program {
        let mut b = ProgramBuilder::new("loop");
        b.push(Instruction::mov(Reg(2), 0));
        let top = b.label();
        b.push(Instruction::iadd3(Reg(2), Reg(2), 1));
        b.push(Instruction::isetp(PredReg(0), Reg(2), CmpOp::Lt, 4));
        b.branch_if(top, PredReg(0), false);
        b.push(Instruction::exit());
        b.build()
    }

    #[test]
    fn no_injection_is_identity() {
        let p = looped_program();
        let out = instrument(&p, |_, _| Vec::new());
        assert_eq!(out.instructions, p.instructions);
    }

    #[test]
    fn branch_targets_are_remapped() {
        let p = looped_program();
        // Inject two NOPs after every IADD3.
        let out = instrument(&p, |ins, _| {
            if ins.opcode == Opcode::Iadd3 {
                vec![Instruction::nop(), Instruction::nop()]
            } else {
                Vec::new()
            }
        });
        assert_eq!(out.len(), p.len() + 2);
        // The loop branch originally targeted pc 1 (the IADD3); the IADD3 is
        // still at position 1 (only code after it shifted).
        let bra = out.instructions.iter().find(|i| i.opcode == Opcode::Bra).unwrap();
        assert_eq!(bra.srcs[0], Operand::Imm(1));
        // Behavior check: the loop still runs 4 iterations (simulated in
        // lmi-sim integration tests; here we check static structure).
        assert_eq!(out.instructions[1].opcode, Opcode::Iadd3);
        assert_eq!(out.instructions[2].opcode, Opcode::Nop);
    }

    #[test]
    fn forward_branch_remaps_too() {
        let mut b = ProgramBuilder::new("fwd");
        b.push(Instruction::isetp(PredReg(0), Reg(0), CmpOp::Eq, 0));
        let skip = b.forward_branch_if(PredReg(0), false);
        b.push(Instruction::mov(Reg(2), 1));
        b.bind(skip);
        b.push(Instruction::exit());
        let p = b.build();
        let out = instrument(&p, |ins, _| {
            if ins.opcode == Opcode::Mov {
                vec![Instruction::nop()]
            } else {
                Vec::new()
            }
        });
        let bra = out.instructions.iter().find(|i| i.opcode == Opcode::Bra).unwrap();
        // Old target 3 (EXIT) moved to 4.
        assert_eq!(bra.srcs[0], Operand::Imm(4));
    }

    #[test]
    fn register_budget_is_tracked() {
        let p = looped_program();
        let out = instrument(&p, |ins, _| {
            if ins.opcode == Opcode::Iadd3 {
                vec![Instruction::mov(Reg(100), 0)]
            } else {
                Vec::new()
            }
        });
        assert_eq!(out.regs_per_thread, 101);
    }

    #[test]
    #[should_panic(expected = "straight-line")]
    fn injected_branches_are_rejected() {
        let p = looped_program();
        let _ = instrument(&p, |_, _| vec![Instruction::bra(0)]);
    }
}
