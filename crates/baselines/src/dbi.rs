//! NVBit-style dynamic binary instrumentation (paper §X-B, Fig. 13).
//!
//! DBI tools can't add cheap inline checks: every instrumentation site
//! calls into a device function, which means saving live registers to
//! local memory, running the check, and restoring — dozens of dynamic
//! instructions per site. Two tools are modeled:
//!
//! * **LMI-DBI** — instruments every *pointer-handling* instruction (the
//!   positions the compiler's hint bits identify) *and* every load/store
//!   (the EC check). This is why its overhead tracks the ratio of LMI
//!   bound checks to LD/ST instructions (paper: 67.14 for `gaussian`,
//!   28.13 for `swin`).
//! * **memcheck** — Compute-Sanitizer-style tripwire checks around
//!   loads/stores only.
//!
//! JIT recompilation overhead is small (paper: ~5 % via `perf`, matching
//! NVBit's reported 4 %) and is applied as the separate [`JIT_OVERHEAD`]
//! factor by the harness.

use lmi_isa::{abi, Instruction, MemRef, MemSpace, Opcode, Program, Reg};

use crate::instrument::instrument;

/// Multiplicative JIT-compilation overhead applied once per run.
pub const JIT_OVERHEAD: f64 = 1.05;

/// Integer instructions in the instrumentation stub (beyond the
/// save/restore memory traffic).
pub const STUB_INT_OPS: usize = 150;

/// Builds the instrumentation-call sequence: spill two live registers to
/// the local stack, run the check stub, restore.
fn call_seq(scratch: Reg) -> Vec<Instruction> {
    let sp = scratch; // pair s:s+1 — reloaded stack top
    let v0 = Reg(scratch.0 + 2);
    let v1 = Reg(scratch.0 + 3);
    let mut seq = Vec::with_capacity(STUB_INT_OPS + 16);
    // Prologue: locate the instrumentation stack and spill the live
    // registers an NVBit callback must preserve. The spill slots sit deep
    // below the kernel's own frame so they never collide with it.
    const SPILL_BASE: i32 = -28672;
    const SPILL_SLOTS: i32 = 6;
    seq.push(Instruction::ldc(sp, abi::LAUNCH_BANK, abi::STACK_TOP_OFFSET, 8));
    for slot in 0..SPILL_SLOTS {
        let reg = if slot % 2 == 0 { v0 } else { v1 };
        seq.push(Instruction::stl(MemRef::new(sp, SPILL_BASE - slot * 4, 4), reg));
    }
    // The check body: address extraction, mask/compare work.
    for i in 0..STUB_INT_OPS {
        let op = match i % 4 {
            0 => Opcode::Shr,
            1 => Opcode::And,
            2 => Opcode::Xor,
            _ => Opcode::Iadd3,
        };
        if op == Opcode::Iadd3 {
            seq.push(Instruction::iadd3(v0, v0, 1));
        } else {
            seq.push(Instruction::int2(op, v0, v0, v1));
        }
    }
    // Epilogue: restore.
    for slot in 0..SPILL_SLOTS {
        let reg = if slot % 2 == 0 { v0 } else { v1 };
        seq.push(Instruction::ldl(reg, MemRef::new(sp, SPILL_BASE - slot * 4, 4)));
    }
    seq
}

fn is_checked_mem(ins: &Instruction) -> bool {
    // Instructions accessing global/shared/local memory (paper §X-B uses
    // NVBit's getMemorySpace to find LDG/STG/LDS/STS/LDL/STL).
    ins.opcode.is_mem() && ins.opcode.mem_space() != Some(MemSpace::Const)
}

/// Instruments a program the way the LMI-DBI tool does: a check call after
/// every pointer-handling instruction and after every load/store.
pub fn instrument_lmi_dbi(program: &Program) -> Program {
    let scratch = Reg(program.regs_per_thread.min(118));
    let mut out = instrument(program, |ins, _| {
        if (ins.hints.activate && ins.opcode.class() == lmi_isa::OpcodeClass::IntAlu)
            || is_checked_mem(ins)
        {
            call_seq(scratch)
        } else {
            Vec::new()
        }
    });
    for ins in &mut out.instructions {
        ins.hints = lmi_isa::HintBits::NONE;
    }
    out
}

/// Instruments a program the way Compute Sanitizer's memcheck does:
/// tripwire checks around loads/stores only.
pub fn instrument_memcheck(program: &Program) -> Program {
    let scratch = Reg(program.regs_per_thread.min(118));
    let mut out =
        instrument(
            program,
            |ins, _| if is_checked_mem(ins) { call_seq(scratch) } else { Vec::new() },
        );
    for ins in &mut out.instructions {
        ins.hints = lmi_isa::HintBits::NONE;
    }
    out
}

/// The static check-site counts of a program: `(lmi_dbi_sites, mem_sites)`.
/// Their ratio drives the Fig. 13 crossovers.
pub fn check_site_counts(program: &Program) -> (usize, usize) {
    let mem = program.instructions.iter().filter(|i| is_checked_mem(i)).count();
    let marked = program
        .instructions
        .iter()
        .filter(|i| i.hints.activate && i.opcode.class() == lmi_isa::OpcodeClass::IntAlu)
        .count();
    (marked + mem, mem)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmi_isa::{HintBits, ProgramBuilder};

    fn program() -> Program {
        let mut b = ProgramBuilder::new("p");
        b.push(Instruction::iadd64(Reg(4), Reg(4), 4).with_hints(HintBits::check_operand(0)));
        b.push(Instruction::ldg(Reg(8), MemRef::new(Reg(4), 0, 4)));
        b.push(Instruction::stg(MemRef::new(Reg(4), 0, 4), Reg(8)));
        b.push(Instruction::ffma(Reg(10), Reg(10), Reg(11), Reg(12)));
        b.push(Instruction::exit());
        b.build()
    }

    #[test]
    fn lmi_dbi_instruments_pointer_ops_and_mem() {
        let p = program();
        let seq = call_seq(Reg(20)).len();
        let out = instrument_lmi_dbi(&p);
        assert_eq!(out.len(), p.len() + 3 * seq, "3 sites: 1 marked + 2 mem");
    }

    #[test]
    fn memcheck_instruments_mem_only() {
        let p = program();
        let seq = call_seq(Reg(20)).len();
        let out = instrument_memcheck(&p);
        assert_eq!(out.len(), p.len() + 2 * seq, "2 mem sites");
    }

    #[test]
    fn lmi_dbi_always_instruments_at_least_as_much_as_memcheck() {
        let p = program();
        let (lmi_sites, mem_sites) = check_site_counts(&p);
        assert!(lmi_sites >= mem_sites);
        assert_eq!((lmi_sites, mem_sites), (3, 2));
    }

    #[test]
    fn stub_contains_spill_and_restore() {
        let seq = call_seq(Reg(20));
        assert!(seq.iter().any(|i| i.opcode == Opcode::Stl));
        assert!(seq.iter().any(|i| i.opcode == Opcode::Ldl));
        assert!(seq.len() > STUB_INT_OPS);
    }
}
