//! GPUShield (ISCA'22): region-based hardware bounds checking.
//!
//! GPUShield registers the bounds of kernel-argument buffers in a bounds
//! table and tags pointers with the buffer index. At each global-memory
//! access the LSU looks the entry up in a small per-SM **RCache**; a hit is
//! free (parallel lookup), a miss stalls the access while the entry is
//! fetched from the L2-resident bounds table. Because the RCache is much
//! smaller than the L1 data cache, uncoalesced accesses that still hit the
//! L1 can miss the RCache — the paper identifies exactly this as the source
//! of GPUShield's 42.5 % (`needle`) and 24.0 % (`LSTM`) overheads.
//!
//! Heap and local (stack) memory are treated as *single large regions*
//! (paper §IV-D), so intra-heap and intra-stack overflows go undetected —
//! the limitation LMI fixes. Shared memory is unprotected.

use std::collections::HashMap;

use lmi_core::Violation;
use lmi_isa::MemSpace;
use lmi_mem::{layout, Cache, CacheConfig};
use lmi_sim::{Mechanism, MemAccessCtx, MemCheck};

/// Synthetic address of the in-memory bounds table (for RCache miss
/// fills routed through the L2).
const BOUNDS_TABLE_BASE: u64 = 0x00F0_0000_0000;

/// Bytes per bounds-table entry.
const ENTRY_BYTES: u64 = 32;

/// A registered kernel-argument buffer region.
#[derive(Debug, Clone, Copy)]
struct Region {
    base: u64,
    size: u64,
}

/// The GPUShield mechanism.
///
/// The RCache is **per warp** (Table VI budgets it at 910 B/W): each warp
/// keeps its own handful of bounds entries, so there is no cross-warp
/// reuse — the property that makes buffer-cycling workloads thrash it.
#[derive(Debug)]
pub struct GpuShield {
    regions: Vec<Region>,
    rcache_entries: u64,
    rcaches: HashMap<u64, Cache>,
    /// RCache lookups that hit.
    pub rcache_hits: u64,
    /// RCache lookups that missed (each stalls on an L2 fetch).
    pub rcache_misses: u64,
    /// Violations detected.
    pub faults: u64,
}

impl Default for GpuShield {
    fn default() -> Self {
        GpuShield::new()
    }
}

impl GpuShield {
    /// A GPUShield instance with the paper's RCache budget (~910 B per
    /// warp ⇒ a few dozen entries; modeled as a small direct-mapped cache).
    pub fn new() -> GpuShield {
        GpuShield::with_rcache_entries(28)
    }

    /// Custom per-warp RCache capacity in entries (ablation).
    pub fn with_rcache_entries(entries: u64) -> GpuShield {
        GpuShield {
            regions: Vec::new(),
            rcache_entries: entries,
            rcaches: HashMap::new(),
            rcache_hits: 0,
            rcache_misses: 0,
            faults: 0,
        }
    }

    fn warp_rcache(&mut self, warp: u64) -> Option<&mut Cache> {
        let entries = self.rcache_entries;
        if entries == 0 {
            // No RCache at all: the §IV-B1 strawman where every bounds
            // check is an in-memory metadata access.
            return None;
        }
        Some(self.rcaches.entry(warp).or_insert_with(|| {
            Cache::new(CacheConfig {
                capacity_bytes: entries * ENTRY_BYTES,
                line_bytes: ENTRY_BYTES,
                ways: 2,
                hit_latency: 1,
            })
        }))
    }

    /// Registers a kernel-argument buffer in the bounds table.
    pub fn register_buffer(&mut self, base: u64, size: u64) {
        self.regions.push(Region { base, size });
    }

    fn region_index_of(&self, vaddr: u64) -> Option<usize> {
        self.regions.iter().position(|r| vaddr >= r.base && vaddr < r.base + r.size)
    }

    /// Region-level spatial check used by the security suite directly.
    pub fn check_global(&self, vaddr: u64) -> bool {
        self.region_index_of(vaddr).is_some()
    }
}

impl Mechanism for GpuShield {
    fn name(&self) -> &'static str {
        "gpushield"
    }

    fn on_mem_access(&mut self, ctx: &MemAccessCtx) -> MemCheck {
        match ctx.space {
            MemSpace::Global => {
                // Heap addresses travel through LDG too; GPUShield treats
                // the whole device heap as one region.
                if (layout::HEAP_BASE..layout::LOCAL_BASE).contains(&ctx.vaddr) {
                    return MemCheck::allow();
                }
                match self.region_index_of(ctx.vaddr) {
                    Some(index) => {
                        let entry = BOUNDS_TABLE_BASE + index as u64 * ENTRY_BYTES;
                        let warp = ctx.global_tid / 32;
                        let hit = self.warp_rcache(warp).map(|c| c.access(entry)).unwrap_or(false);
                        if hit {
                            self.rcache_hits += 1;
                            MemCheck::allow()
                        } else {
                            self.rcache_misses += 1;
                            MemCheck {
                                violation: None,
                                extra_cycles: 0,
                                metadata_addr: Some(entry),
                            }
                        }
                    }
                    None => {
                        // Outside every registered buffer: fault — but only
                        // if any buffer is registered (otherwise the kernel
                        // predates registration and is unprotected).
                        if self.regions.is_empty() {
                            MemCheck::allow()
                        } else {
                            self.faults += 1;
                            MemCheck::fault(Violation::Spatial { addr: ctx.vaddr })
                        }
                    }
                }
            }
            MemSpace::Local => {
                // Single-region stack check: anywhere in the local arena of
                // this thread's window span is fine; escaping the arena
                // entirely faults.
                if ctx.vaddr >= layout::LOCAL_BASE {
                    MemCheck::allow()
                } else {
                    self.faults += 1;
                    MemCheck::fault(Violation::Spatial { addr: ctx.vaddr })
                }
            }
            // Shared memory and constant memory are unprotected.
            MemSpace::Shared | MemSpace::Const => MemCheck::allow(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(space: MemSpace, vaddr: u64) -> MemAccessCtx {
        MemAccessCtx {
            space,
            raw: vaddr,
            vaddr,
            width: 4,
            is_store: false,
            global_tid: 0,
            pc: 0,
            lane: 0,
            issue_index: 0,
        }
    }

    #[test]
    fn registered_buffer_accesses_pass() {
        let mut gs = GpuShield::new();
        gs.register_buffer(layout::GLOBAL_BASE, 4096);
        let check = gs.on_mem_access(&ctx(MemSpace::Global, layout::GLOBAL_BASE + 100));
        assert!(check.violation.is_none());
    }

    #[test]
    fn out_of_all_regions_faults() {
        let mut gs = GpuShield::new();
        gs.register_buffer(layout::GLOBAL_BASE, 4096);
        let check = gs.on_mem_access(&ctx(MemSpace::Global, layout::GLOBAL_BASE + 5000));
        assert!(check.violation.is_some());
        assert_eq!(gs.faults, 1);
    }

    #[test]
    fn first_lookup_misses_rcache_then_hits() {
        let mut gs = GpuShield::new();
        gs.register_buffer(layout::GLOBAL_BASE, 4096);
        let a = ctx(MemSpace::Global, layout::GLOBAL_BASE);
        let first = gs.on_mem_access(&a);
        assert!(first.metadata_addr.is_some(), "miss fetches the bounds entry");
        let second = gs.on_mem_access(&a);
        assert_eq!(second.metadata_addr, None, "RCache hit");
        assert_eq!((gs.rcache_hits, gs.rcache_misses), (1, 1));
    }

    #[test]
    fn many_buffers_thrash_the_rcache() {
        let mut gs = GpuShield::with_rcache_entries(4);
        for i in 0..64u64 {
            gs.register_buffer(layout::GLOBAL_BASE + i * 8192, 8192);
        }
        // Round-robin over 64 buffers with a 4-entry RCache: ~every lookup
        // misses.
        for round in 0..4 {
            for i in 0..64u64 {
                let _ = gs
                    .on_mem_access(&ctx(MemSpace::Global, layout::GLOBAL_BASE + i * 8192 + round));
            }
        }
        assert!(gs.rcache_misses > gs.rcache_hits * 10, "thrashing dominates");
    }

    #[test]
    fn heap_and_stack_are_single_coarse_regions() {
        let mut gs = GpuShield::new();
        gs.register_buffer(layout::GLOBAL_BASE, 4096);
        // Any heap address passes — intra-heap overflows are invisible.
        assert!(gs
            .on_mem_access(&ctx(MemSpace::Global, layout::HEAP_BASE + 0x1234))
            .violation
            .is_none());
        // Any local-arena address passes, even another thread's window.
        assert!(gs
            .on_mem_access(&ctx(MemSpace::Local, layout::LOCAL_BASE + 0x9999))
            .violation
            .is_none());
        // Escaping the local arena downward faults.
        assert!(gs
            .on_mem_access(&ctx(MemSpace::Local, layout::LOCAL_BASE - 8))
            .violation
            .is_some());
    }

    #[test]
    fn shared_memory_is_unprotected() {
        let mut gs = GpuShield::new();
        gs.register_buffer(layout::GLOBAL_BASE, 64);
        assert!(gs
            .on_mem_access(&ctx(MemSpace::Shared, layout::SHARED_BASE + 0xFFFF))
            .violation
            .is_none());
    }
}
