//! cuCatch's shadow-tag detection model (PLDI'23), reconstructed from the
//! paper's description for the Table III security comparison.
//!
//! cuCatch tags memory at 16-byte granularity in a shadow table and
//! compares the pointer's tag against the shadow tag on access. Coverage
//! properties reproduced here:
//!
//! * **global** buffers are individually tagged (full spatial coverage);
//! * the **device heap** (in-kernel `malloc`) is *not* covered (paper
//!   §II-D: "cuCatch does not protect kernel heap memory");
//! * **local** memory is tagged at *frame* granularity, so overflows
//!   between two buffers inside the same frame are invisible while
//!   cross-frame and out-of-local accesses are caught;
//! * **shared** memory: statically declared buffers are individually
//!   tagged, the dynamically allocated pool carries a single tag;
//! * **temporal**: freeing retags the granules, so immediate UAF/UAS is
//!   caught; reallocation assigns a fresh tag, so stale pointers to
//!   recycled global memory are caught too.

use std::collections::HashMap;

use lmi_core::{TemporalKind, Violation};

/// Shadow-tag granule size.
pub const GRANULE: u64 = 16;

/// Tag assigned to freed granules.
const FREED_TAG: u32 = u32::MAX;

/// A tag value attached to a pointer at allocation time.
pub type Tag = u32;

/// The cuCatch shadow-tag state.
#[derive(Debug, Default)]
pub struct CuCatch {
    shadow: HashMap<u64, Tag>,
    next_tag: Tag,
    /// base -> (tag, size) for retagging on free.
    live: HashMap<u64, (Tag, u64)>,
}

impl CuCatch {
    /// Fresh state.
    pub fn new() -> CuCatch {
        CuCatch { next_tag: 1, ..CuCatch::default() }
    }

    fn paint(&mut self, base: u64, size: u64, tag: Tag) {
        for g in (base / GRANULE)..(base + size).div_ceil(GRANULE) {
            let fully_inside = g * GRANULE >= base && (g + 1) * GRANULE <= base + size;
            if fully_inside {
                self.shadow.insert(g, tag);
            } else {
                // A granule shared with a neighboring object keeps the tag
                // of whoever painted it first — shadow tagging cannot split
                // a 16-byte granule, which is exactly why sub-granule
                // adjacent overflows on unaligned stack objects escape
                // cuCatch (the two missed local cases of Table III).
                self.shadow.entry(g).or_insert(tag);
            }
        }
    }

    fn fresh_tag(&mut self) -> Tag {
        let t = self.next_tag;
        self.next_tag += 1;
        t
    }

    /// Tags an individually protected buffer (global or static shared);
    /// returns the pointer tag.
    pub fn tag_buffer(&mut self, base: u64, size: u64) -> Tag {
        let tag = self.fresh_tag();
        self.paint(base, size, tag);
        self.live.insert(base, (tag, size));
        tag
    }

    /// Tags a whole stack *frame* (cuCatch's local-memory granularity);
    /// every buffer in the frame shares the returned tag.
    pub fn tag_stack_frame(&mut self, base: u64, size: u64) -> Tag {
        self.tag_buffer(base, size)
    }

    /// Tags the dynamic shared-memory pool as a single object.
    pub fn tag_dynamic_shared_pool(&mut self, base: u64, size: u64) -> Tag {
        self.tag_buffer(base, size)
    }

    /// The device heap is uncovered: pointers get the wildcard tag that
    /// matches everything.
    pub fn untagged(&self) -> Tag {
        0
    }

    /// Frees/retires a tagged object: granules are retagged so stale
    /// pointers fault on the next access.
    pub fn free(&mut self, base: u64) {
        if let Some((_, size)) = self.live.remove(&base) {
            self.paint(base, size, FREED_TAG);
        }
    }

    /// Checks an access by a pointer carrying `tag` to `vaddr`.
    ///
    /// # Errors
    ///
    /// Returns the violation cuCatch would report.
    pub fn check(&self, tag: Tag, vaddr: u64) -> Result<(), Violation> {
        if tag == 0 {
            // Uncovered pointer (device heap): cuCatch cannot check it.
            return Ok(());
        }
        match self.shadow.get(&(vaddr / GRANULE)) {
            Some(&t) if t == tag => Ok(()),
            Some(&FREED_TAG) => Err(Violation::Temporal(TemporalKind::UseAfterFree)),
            _ => Err(Violation::Spatial { addr: vaddr }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: u64 = 0x0100_0000_0000;
    const B: u64 = 0x0100_0000_1000;

    #[test]
    fn in_bounds_accesses_pass() {
        let mut c = CuCatch::new();
        let tag = c.tag_buffer(A, 256);
        assert!(c.check(tag, A).is_ok());
        assert!(c.check(tag, A + 255).is_ok());
    }

    #[test]
    fn adjacent_and_wild_oob_are_caught_for_global() {
        let mut c = CuCatch::new();
        let tag = c.tag_buffer(A, 256);
        let _other = c.tag_buffer(A + 256, 256);
        assert!(c.check(tag, A + 256).is_err(), "adjacent buffer has another tag");
        assert!(c.check(tag, B + 4096).is_err(), "untagged memory mismatches");
    }

    #[test]
    fn heap_pointers_are_unchecked() {
        let c = CuCatch::new();
        assert!(c.check(c.untagged(), 0xDEAD_BEEF).is_ok());
    }

    #[test]
    fn same_frame_overflow_is_invisible() {
        // Two buffers in one 512 B frame share the frame tag: overflowing
        // from the first into the second goes undetected (Table III's two
        // missed local cases).
        let mut c = CuCatch::new();
        let frame_tag = c.tag_stack_frame(A, 512);
        let buf1_end_plus = A + 300; // inside buffer 2's bytes
        assert!(c.check(frame_tag, buf1_end_plus).is_ok(), "frame granularity hides it");
        assert!(c.check(frame_tag, A + 512).is_err(), "past the frame is caught");
    }

    #[test]
    fn immediate_uaf_is_caught_and_reports_temporal() {
        let mut c = CuCatch::new();
        let tag = c.tag_buffer(A, 256);
        c.free(A);
        assert_eq!(c.check(tag, A), Err(Violation::Temporal(TemporalKind::UseAfterFree)));
    }

    #[test]
    fn delayed_uaf_after_realloc_is_caught_for_global() {
        let mut c = CuCatch::new();
        let old = c.tag_buffer(A, 256);
        c.free(A);
        let new = c.tag_buffer(A, 256); // recycled region, fresh tag
        assert!(c.check(new, A).is_ok());
        assert!(c.check(old, A).is_err(), "stale tag mismatches the new one");
    }

    #[test]
    fn dynamic_shared_pool_is_one_object() {
        let mut c = CuCatch::new();
        let pool = c.tag_dynamic_shared_pool(B, 4096);
        // Intra-pool overflow between two logical sub-buffers: invisible.
        assert!(c.check(pool, B + 2048).is_ok());
        assert!(c.check(pool, B + 4096).is_err());
    }
}
