//! GMOD/clARMOR-style canary checking.
//!
//! Canary mechanisms surround each global buffer with guard words and scan
//! them at synchronization points (kernel end). They detect **adjacent
//! overwrites** of global buffers only: non-adjacent wild writes jump over
//! the canary region, reads never touch it, and heap/local/shared buffers
//! are not wrapped at all (paper Table III: GMOD detects 1 of 21 spatial
//! cases). Invalid-free/double-free detection comes from the allocator.

use lmi_mem::{BankedMemory, SparseMemory};

/// Canary region size on each side of a buffer.
pub const CANARY_BYTES: u64 = 64;

/// The guard byte pattern.
pub const CANARY_PATTERN: u8 = 0x5A;

/// A wrapped buffer: user region plus leading/trailing canaries.
#[derive(Debug, Clone, Copy)]
pub struct GuardedBuffer {
    /// Start of the user region.
    pub base: u64,
    /// User bytes.
    pub size: u64,
}

impl GuardedBuffer {
    /// Total footprint including canaries.
    pub fn footprint(&self) -> u64 {
        self.size + 2 * CANARY_BYTES
    }
}

/// A functional store canaries can be painted into and scanned back out
/// of — implemented by the flat [`SparseMemory`] and by the simulator's
/// address-interleaved [`BankedMemory`], so the same canary bookkeeping
/// serves both the model-level defenses and live simulator runs in the
/// conformance oracle.
pub trait CanaryMemory {
    /// Fills `len` bytes at `addr` with `byte`.
    fn fill_bytes(&mut self, addr: u64, len: u64, byte: u8);
    /// Reads `out.len()` bytes starting at `addr`.
    fn read_into(&self, addr: u64, out: &mut [u8]);
}

impl CanaryMemory for SparseMemory {
    fn fill_bytes(&mut self, addr: u64, len: u64, byte: u8) {
        self.fill(addr, len, byte);
    }

    fn read_into(&self, addr: u64, out: &mut [u8]) {
        self.read_bytes(addr, out);
    }
}

impl CanaryMemory for BankedMemory {
    fn fill_bytes(&mut self, addr: u64, len: u64, byte: u8) {
        self.fill(addr, len, byte);
    }

    fn read_into(&self, addr: u64, out: &mut [u8]) {
        self.read_bytes(addr, out);
    }
}

/// Canary bookkeeping for one kernel run.
#[derive(Debug, Default)]
pub struct CanaryAllocator {
    buffers: Vec<GuardedBuffer>,
}

impl CanaryAllocator {
    /// A fresh allocator.
    pub fn new() -> CanaryAllocator {
        CanaryAllocator::default()
    }

    /// Wraps the buffer at `base` with canaries, painting the guard bytes
    /// into `memory`. `base` must leave `CANARY_BYTES` of headroom (the
    /// canary allocator reserves it when placing buffers).
    pub fn guard(&mut self, memory: &mut impl CanaryMemory, base: u64, size: u64) {
        memory.fill_bytes(base - CANARY_BYTES, CANARY_BYTES, CANARY_PATTERN);
        memory.fill_bytes(base + size, CANARY_BYTES, CANARY_PATTERN);
        self.buffers.push(GuardedBuffer { base, size });
    }

    /// The synchronization-point scan: returns the buffers whose canaries
    /// were damaged (detected adjacent overflows).
    pub fn scan(&self, memory: &impl CanaryMemory) -> Vec<GuardedBuffer> {
        let mut detected = Vec::new();
        for buf in &self.buffers {
            let damaged = |start: u64| {
                let mut guard = [0u8; CANARY_BYTES as usize];
                memory.read_into(start, &mut guard);
                guard.iter().any(|&b| b != CANARY_PATTERN)
            };
            if damaged(buf.base - CANARY_BYTES) || damaged(buf.base + buf.size) {
                detected.push(*buf);
            }
        }
        detected
    }

    /// Number of guarded buffers.
    pub fn guarded_count(&self) -> usize {
        self.buffers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: u64 = 0x0100_0000_1000;

    #[test]
    fn adjacent_overflow_write_is_detected_at_scan() {
        let mut mem = SparseMemory::new();
        let mut canary = CanaryAllocator::new();
        canary.guard(&mut mem, BASE, 256);
        // In-bounds writes never trip it.
        mem.write(BASE + 100, 0xFF, 4);
        assert!(canary.scan(&mem).is_empty());
        // One byte past the end smashes the trailing canary.
        mem.write_u8(BASE + 256, 0x00);
        let hits = canary.scan(&mem);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].base, BASE);
    }

    #[test]
    fn underflow_hits_the_leading_canary() {
        let mut mem = SparseMemory::new();
        let mut canary = CanaryAllocator::new();
        canary.guard(&mut mem, BASE, 128);
        mem.write_u8(BASE - 1, 0x00);
        assert_eq!(canary.scan(&mem).len(), 1);
    }

    #[test]
    fn non_adjacent_write_is_missed() {
        let mut mem = SparseMemory::new();
        let mut canary = CanaryAllocator::new();
        canary.guard(&mut mem, BASE, 128);
        // A wild write far past the canary region: undetected (the GMOD
        // limitation in Table III).
        mem.write(BASE + 128 + CANARY_BYTES + 4096, 0xDEAD, 4);
        assert!(canary.scan(&mem).is_empty());
    }

    #[test]
    fn oob_read_is_invisible_to_canaries() {
        let mut mem = SparseMemory::new();
        let mut canary = CanaryAllocator::new();
        canary.guard(&mut mem, BASE, 128);
        let _ = mem.read(BASE + 130, 4); // adjacent OOB *read*
        assert!(canary.scan(&mem).is_empty());
    }
}
