//! Baggy Bounds Checking naively adapted to the GPU (paper §X-A).
//!
//! The original Baggy Bounds (64-bit variant) stores the size exponent in
//! the pointer's tag bits and validates every pointer-arithmetic result
//! with a short integer sequence: extract the extent, build the slot mask,
//! XOR old and new pointer, mask, and test. On a CPU this costs ~70 %; on a
//! GPU, where the check competes with real work for integer-ALU issue
//! slots, it is much worse (paper Fig. 12: 87 % average, up to 503 % on
//! compute-bound kernels).
//!
//! The injected sequence is semantically neutral (it computes the check
//! into scratch registers and sets a scratch predicate) so the instrumented
//! kernel's results are unchanged — exactly like injecting verification
//! SASS that never fires on correct runs.

use lmi_isa::instr::CmpOp;
use lmi_isa::reg::PredReg;
use lmi_isa::{Instruction, Opcode, Operand, Program, Reg};

use crate::instrument::instrument;

/// Number of instructions Baggy injects per pointer operation.
pub const BAGGY_SEQ_LEN: usize = 9;

/// Builds the Baggy check sequence for a pointer op writing pair `dst` with
/// source pair `src`, using scratch registers `s`/`s+1`.
fn baggy_seq(dst: Reg, src: Reg, scratch: Reg) -> Vec<Instruction> {
    let s = scratch;
    let t = Reg(scratch.0 + 1);
    let src_hi = if src.is_valid_pair_base() { src.pair_high() } else { src };
    let dst_hi = if dst.is_valid_pair_base() { dst.pair_high() } else { dst };
    vec![
        // extent = hi(src) >> 27
        Instruction::int2(Opcode::Shr, s, src_hi, 27),
        // slot size exponent = extent + 7 (K = 256)
        Instruction::iadd3(s, s, 7),
        // mask = ~(2^n - 1) over the low word (approximated in 32 bits)
        Instruction::int2(Opcode::Shl, t, t, s),
        // changed bits = old ^ new (low and high words)
        Instruction::int2(Opcode::Xor, t, src, dst),
        Instruction::int2(Opcode::Xor, t, src_hi, dst_hi),
        // violation = (changed & mask) != 0, folded over both halves
        Instruction::int2(Opcode::And, t, t, s),
        Instruction::int2(Opcode::Or, s, s, t),
        Instruction::int2(Opcode::Shr, s, s, 1),
        Instruction::isetp(PredReg(6), t, CmpOp::Ne, 0),
    ]
}

/// Instruments a program with Baggy Bounds software checks after every
/// pointer operation (identified by the compiler's hint bits, which the
/// rewriter consumes and clears — Baggy is software-only).
pub fn instrument_baggy(program: &Program) -> Program {
    let scratch = Reg(program.regs_per_thread.min(120));
    let mut out = instrument(program, |ins, _| {
        if ins.hints.activate && ins.opcode.is_wide() {
            let src = match ins.srcs[ins.hints.select as usize] {
                Operand::Reg(r) => r,
                _ => ins.srcs[0].as_reg().unwrap_or(ins.dst),
            };
            baggy_seq(ins.dst, src, scratch)
        } else {
            Vec::new()
        }
    });
    // Software-only: strip the hardware hint bits.
    for ins in &mut out.instructions {
        ins.hints = lmi_isa::HintBits::NONE;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmi_isa::{HintBits, ProgramBuilder};

    fn marked_program() -> Program {
        let mut b = ProgramBuilder::new("p");
        b.push(Instruction::mov(Reg(0), 1));
        b.push(Instruction::iadd64(Reg(4), Reg(4), 4).with_hints(HintBits::check_operand(0)));
        b.push(Instruction::iadd64(Reg(4), Reg(4), 4).with_hints(HintBits::check_operand(0)));
        b.push(Instruction::exit());
        b.build()
    }

    #[test]
    fn injects_seven_instructions_per_pointer_op() {
        let p = marked_program();
        let out = instrument_baggy(&p);
        assert_eq!(out.len(), p.len() + 2 * BAGGY_SEQ_LEN);
    }

    #[test]
    fn output_is_software_only() {
        let out = instrument_baggy(&marked_program());
        assert_eq!(out.hinted_count(), 0, "hint bits stripped");
    }

    #[test]
    fn unmarked_programs_are_untouched() {
        let mut b = ProgramBuilder::new("clean");
        b.push(Instruction::mov(Reg(0), 1));
        b.push(Instruction::exit());
        let p = b.build();
        assert_eq!(instrument_baggy(&p).len(), p.len());
    }
}
