//! # lmi-baselines — the mechanisms LMI is compared against
//!
//! Reimplementations (from their papers' descriptions, exactly as the
//! cuCatch and LMI authors did for their comparison tables) of:
//!
//! * [`gpushield`] — GPUShield (ISCA'22): hardware region-based bounds
//!   checking for kernel-argument buffers with a per-SM **RCache** whose
//!   misses stall loads/stores on an L2 bounds-table fetch — the effect
//!   behind its `needle`/`LSTM` overhead in paper Fig. 12; coarse
//!   single-region checks for heap and local memory.
//! * [`baggy`] — Baggy Bounds Checking (USENIX Sec'09) naively adapted to
//!   the GPU: a software pass injecting the bounds-check instruction
//!   sequence after every pointer operation (paper §X-A).
//! * [`dbi`] — an NVBit-style dynamic-binary-instrumentation engine: the
//!   LMI-DBI tool (checks after every pointer-handling and memory
//!   instruction) and a Compute-Sanitizer-memcheck-style tool (tripwire
//!   checks around loads/stores only), reproducing paper Fig. 13.
//! * [`canary`] — GMOD/clARMOR-style canary checking (detects adjacent
//!   overwrites at synchronization points only).
//! * [`cucatch`] — cuCatch's shadow-tag detection model (no device-heap
//!   coverage, immediate-only temporal detection).
//! * [`instrument`](mod@instrument) — the shared binary-rewriting engine
//!   (injection with branch-target remapping) underneath the software
//!   mechanisms.

pub mod baggy;
pub mod canary;
pub mod cucatch;
pub mod dbi;
pub mod gpushield;
pub mod instrument;

pub use baggy::instrument_baggy;
pub use canary::{CanaryAllocator, CanaryMemory};
pub use cucatch::CuCatch;
pub use dbi::{instrument_lmi_dbi, instrument_memcheck, JIT_OVERHEAD};
pub use gpushield::GpuShield;
pub use instrument::instrument;
