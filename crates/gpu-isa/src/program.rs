//! Kernel programs: instruction sequences plus launch metadata.

use std::fmt;

use crate::instr::Instruction;
use crate::microcode::{CodecError, ComputeCapability, Microcode};

/// A compiled kernel: a flat instruction sequence executed by every thread.
///
/// Branch targets are absolute instruction indices (resolved by
/// [`ProgramBuilder`] from labels). A program also records how many 32-bit
/// registers and how much per-block shared / per-thread local memory it
/// needs, which the simulator uses for occupancy and stack sizing.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Kernel name (for reports).
    pub name: String,
    /// The instruction stream.
    pub instructions: Vec<Instruction>,
    /// Number of 32-bit registers used per thread.
    pub regs_per_thread: u8,
    /// Static shared memory bytes per block.
    pub shared_bytes: u32,
    /// Local (stack) bytes per thread.
    pub local_bytes: u32,
}

impl Program {
    /// Creates an empty program.
    pub fn new(name: impl Into<String>) -> Program {
        Program { name: name.into(), ..Program::default() }
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Returns `true` if the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Assembles the program to 128-bit microcode words.
    ///
    /// # Errors
    ///
    /// Propagates the first [`CodecError`] encountered.
    pub fn assemble(&self, cc: ComputeCapability) -> Result<Vec<Microcode>, CodecError> {
        self.instructions.iter().map(|i| Microcode::encode(i, cc)).collect()
    }

    /// Number of instructions with the LMI activation hint set.
    pub fn hinted_count(&self) -> usize {
        self.instructions.iter().filter(|i| i.hints.activate).count()
    }

    /// Number of load/store instructions.
    pub fn mem_count(&self) -> usize {
        self.instructions.iter().filter(|i| i.opcode.is_mem()).count()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "// kernel {}", self.name)?;
        for (pc, ins) in self.instructions.iter().enumerate() {
            writeln!(f, "/*{pc:04}*/  {ins} ;")?;
        }
        Ok(())
    }
}

/// Incremental builder with label-based branching.
///
/// ```
/// use lmi_isa::{ProgramBuilder, Instruction, Reg};
/// use lmi_isa::instr::CmpOp;
/// use lmi_isa::reg::PredReg;
///
/// let mut b = ProgramBuilder::new("loop4");
/// b.push(Instruction::mov(Reg(0), 0));
/// let top = b.label();
/// b.push(Instruction::iadd3(Reg(0), Reg(0), 1));
/// b.push(Instruction::isetp(PredReg(0), Reg(0), CmpOp::Lt, 4));
/// b.branch_if(top, PredReg(0), false);
/// b.push(Instruction::exit());
/// let program = b.build();
/// assert_eq!(program.len(), 5);
/// ```
#[derive(Debug)]
pub struct ProgramBuilder {
    program: Program,
    max_reg: u8,
}

/// A branch target returned by [`ProgramBuilder::label`] or reserved by
/// [`ProgramBuilder::forward_branch_if`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

impl ProgramBuilder {
    /// Starts a new program.
    pub fn new(name: impl Into<String>) -> ProgramBuilder {
        ProgramBuilder { program: Program::new(name), max_reg: 0 }
    }

    /// Appends an instruction, tracking register usage.
    pub fn push(&mut self, ins: Instruction) -> &mut Self {
        for r in ins.dest_regs().into_iter().chain(ins.source_regs()) {
            if !r.is_zero_reg() {
                self.max_reg = self.max_reg.max(r.0);
            }
        }
        self.program.instructions.push(ins);
        self
    }

    /// A label at the current position (for backward branches).
    pub fn label(&self) -> Label {
        Label(self.program.instructions.len())
    }

    /// Emits a predicated backward/forward branch to `label`.
    pub fn branch_if(&mut self, label: Label, pred: crate::PredReg, negated: bool) -> &mut Self {
        let ins =
            Instruction::bra(label.0 as i32).with_pred(crate::Predicate { reg: pred, negated });
        self.push(ins)
    }

    /// Emits an unconditional branch to `label`.
    pub fn branch(&mut self, label: Label) -> &mut Self {
        self.push(Instruction::bra(label.0 as i32))
    }

    /// Reserves a forward branch slot; patch it later with
    /// [`ProgramBuilder::bind`].
    pub fn forward_branch_if(&mut self, pred: crate::PredReg, negated: bool) -> Label {
        let at = self.program.instructions.len();
        self.branch_if(Label(0), pred, negated);
        Label(at)
    }

    /// Binds a pending forward branch (created by
    /// [`ProgramBuilder::forward_branch_if`]) to the current position.
    ///
    /// # Panics
    ///
    /// Panics if `branch_at` does not point at a branch instruction.
    pub fn bind(&mut self, branch_at: Label) {
        let here = self.program.instructions.len() as i32;
        let ins = &mut self.program.instructions[branch_at.0];
        assert_eq!(ins.opcode, crate::Opcode::Bra, "bind target must be a branch");
        ins.srcs[0] = crate::Operand::Imm(here);
    }

    /// Sets static shared memory usage.
    pub fn shared_bytes(&mut self, bytes: u32) -> &mut Self {
        self.program.shared_bytes = bytes;
        self
    }

    /// Sets per-thread local (stack) usage.
    pub fn local_bytes(&mut self, bytes: u32) -> &mut Self {
        self.program.local_bytes = bytes;
        self
    }

    /// Finalizes the program.
    pub fn build(mut self) -> Program {
        self.program.regs_per_thread = self.max_reg.saturating_add(1);
        self.program
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::CmpOp;
    use crate::reg::{PredReg, Reg};
    use crate::MemRef;

    #[test]
    fn builder_tracks_register_usage() {
        let mut b = ProgramBuilder::new("t");
        b.push(Instruction::mov(Reg(9), 1));
        b.push(Instruction::exit());
        let p = b.build();
        assert_eq!(p.regs_per_thread, 10);
    }

    #[test]
    fn wide_dest_counts_pair_high() {
        let mut b = ProgramBuilder::new("t");
        b.push(Instruction::iadd64(Reg(10), Reg(4), 8));
        let p = b.build();
        assert_eq!(p.regs_per_thread, 12, "R11 is written as pair high");
    }

    #[test]
    fn forward_branch_binds_to_join_point() {
        let mut b = ProgramBuilder::new("t");
        b.push(Instruction::isetp(PredReg(0), Reg(0), CmpOp::Eq, 0));
        let skip = b.forward_branch_if(PredReg(0), false);
        b.push(Instruction::mov(Reg(1), 1));
        b.bind(skip);
        b.push(Instruction::exit());
        let p = b.build();
        assert_eq!(p.instructions[1].srcs[0], crate::Operand::Imm(3));
    }

    #[test]
    fn counters_count_hints_and_mem() {
        let mut b = ProgramBuilder::new("t");
        b.push(
            Instruction::iadd64(Reg(4), Reg(4), 4).with_hints(crate::HintBits::check_operand(0)),
        );
        b.push(Instruction::ldg(Reg(8), MemRef::new(Reg(4), 0, 4)));
        b.push(Instruction::exit());
        let p = b.build();
        assert_eq!(p.hinted_count(), 1);
        assert_eq!(p.mem_count(), 1);
    }

    #[test]
    fn assemble_round_trips_all_instructions() {
        let mut b = ProgramBuilder::new("t");
        b.push(Instruction::mov(Reg(0), 7));
        b.push(
            Instruction::iadd64(Reg(2), Reg(2), 8).with_hints(crate::HintBits::check_operand(0)),
        );
        b.push(Instruction::exit());
        let p = b.build();
        let words = p.assemble(crate::ComputeCapability::Cc80).unwrap();
        assert_eq!(words.len(), 3);
        for (w, i) in words.iter().zip(&p.instructions) {
            assert_eq!(&w.decode(crate::ComputeCapability::Cc80).unwrap(), i);
        }
    }

    #[test]
    fn display_contains_kernel_name_and_pcs() {
        let mut b = ProgramBuilder::new("dummy");
        b.push(Instruction::exit());
        let text = b.build().to_string();
        assert!(text.contains("kernel dummy"));
        assert!(text.contains("/*0000*/"));
        assert!(text.contains("EXIT"));
    }
}
