//! Opcodes and opcode classification.

use std::fmt;

use crate::space::MemSpace;

/// Instruction opcodes, modeled after the Volta/Ampere SASS subset that the
/// LMI paper's mechanisms interact with.
///
/// The integer opcodes are the ones a compiler uses for pointer arithmetic
/// (`IADD3`, `IMAD`, `LEA`, `MOV`, shifts and logic ops); LMI's OCU attaches
/// only to these (paper Fig. 10: "Bound-checking units are only required for
/// integer ALUs"). Floating-point opcodes exist so workloads exercise the
/// FPU pipeline, which carries no OCU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Opcode {
    // ---- integer ALU (32-bit) ----
    /// `d = a + b + c` (three-input integer add).
    Iadd3,
    /// `d = a * b + c` (integer multiply-add).
    Imad,
    /// `d = a` (32-bit move).
    Mov,
    /// `d = min/max(a, b)`; operand `c` selects min (0) or max (1).
    Imnmx,
    /// `d = a << b`.
    Shl,
    /// `d = a >> b` (logical).
    Shr,
    /// `d = a & b`.
    And,
    /// `d = a | b`.
    Or,
    /// `d = a ^ b`.
    Xor,
    /// Generic three-input logic op (models SASS `LOP3`); executes `a ^ b ^ c`.
    Lop3,
    /// Population count: `d = popcount(a)`.
    Popc,
    // ---- integer ALU (64-bit register pairs) ----
    /// `d:d+1 = a:a+1 + sext(b)` — 64-bit pointer add on a register pair.
    Iadd64,
    /// `d:d+1 = a:a+1` — 64-bit move between register pairs.
    Mov64,
    /// `d:d+1 = a:a+1 + (sext(b) << c)` — load effective address.
    Lea64,
    // ---- predicate ----
    /// Set predicate: `p = cmp(a, b)` with the comparison in operand `c`
    /// (see [`crate::instr::CmpOp`] encoding).
    Isetp,
    // ---- floating point ----
    /// `d = a + b` (f32).
    Fadd,
    /// `d = a * b` (f32).
    Fmul,
    /// `d = a * b + c` (f32 fused multiply-add).
    Ffma,
    /// Multi-function unit op (rcp/sqrt/exp approximation); executes `1/a`.
    Mufu,
    // ---- memory ----
    /// Load from global memory.
    Ldg,
    /// Store to global memory.
    Stg,
    /// Load from shared memory.
    Lds,
    /// Store to shared memory.
    Sts,
    /// Load from local (stack) memory.
    Ldl,
    /// Store to local (stack) memory.
    Stl,
    /// Load from constant memory (kernel parameters, stack pointer base).
    Ldc,
    // ---- runtime intrinsics ----
    /// Device-heap allocation: `dst:dst+1 = malloc(a)` — models the call
    /// into CUDA's device runtime allocator (paper Fig. 3/5).
    Malloc,
    /// Device-heap free: `free(a:a+1)`.
    Free,
    // ---- control ----
    /// Relative branch (target = imm operand), optionally predicated.
    Bra,
    /// Thread-block-wide barrier.
    Bar,
    /// Read a special register (operand `a` is a [`SpecialReg`] selector).
    S2r,
    /// Terminate the thread.
    Exit,
    /// No operation.
    Nop,
}

/// Coarse functional-unit classification of an opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpcodeClass {
    /// Integer ALU — the only unit carrying an OCU.
    IntAlu,
    /// Floating-point unit.
    Fpu,
    /// Load/store unit — carries the Extent Checker (EC).
    Mem,
    /// Branch/barrier/special.
    Control,
}

impl Opcode {
    /// All opcodes, in microcode-encoding order.
    pub const ALL: [Opcode; 31] = [
        Opcode::Iadd3,
        Opcode::Imad,
        Opcode::Mov,
        Opcode::Imnmx,
        Opcode::Shl,
        Opcode::Shr,
        Opcode::And,
        Opcode::Or,
        Opcode::Xor,
        Opcode::Lop3,
        Opcode::Popc,
        Opcode::Iadd64,
        Opcode::Mov64,
        Opcode::Lea64,
        Opcode::Isetp,
        Opcode::Fadd,
        Opcode::Fmul,
        Opcode::Ffma,
        Opcode::Mufu,
        Opcode::Ldg,
        Opcode::Stg,
        Opcode::Lds,
        Opcode::Sts,
        Opcode::Ldl,
        Opcode::Stl,
        Opcode::Ldc,
        Opcode::Malloc,
        Opcode::Free,
        Opcode::Bra,
        Opcode::Bar,
        Opcode::S2r,
    ];

    /// The functional unit that executes this opcode.
    pub fn class(self) -> OpcodeClass {
        use Opcode::*;
        match self {
            Iadd3 | Imad | Mov | Imnmx | Shl | Shr | And | Or | Xor | Lop3 | Popc | Iadd64
            | Mov64 | Lea64 | Isetp => OpcodeClass::IntAlu,
            Fadd | Fmul | Ffma | Mufu => OpcodeClass::Fpu,
            Ldg | Stg | Lds | Sts | Ldl | Stl | Ldc | Malloc | Free => OpcodeClass::Mem,
            Bra | Bar | S2r | Exit | Nop => OpcodeClass::Control,
        }
    }

    /// Returns `true` for integer-ALU opcodes that can legally carry the LMI
    /// activation hint bit (the OCU only exists next to integer ALUs).
    pub fn can_carry_hints(self) -> bool {
        self.class() == OpcodeClass::IntAlu
    }

    /// Returns `true` for loads (memory reads).
    pub fn is_load(self) -> bool {
        matches!(self, Opcode::Ldg | Opcode::Lds | Opcode::Ldl | Opcode::Ldc)
    }

    /// Returns `true` for stores (memory writes).
    pub fn is_store(self) -> bool {
        matches!(self, Opcode::Stg | Opcode::Sts | Opcode::Stl)
    }

    /// Returns `true` for any memory access instruction.
    pub fn is_mem(self) -> bool {
        self.is_load() || self.is_store()
    }

    /// Returns `true` for 64-bit register-pair integer ops.
    pub fn is_wide(self) -> bool {
        matches!(self, Opcode::Iadd64 | Opcode::Mov64 | Opcode::Lea64)
    }

    /// The memory space implied by a load/store opcode, if any.
    pub fn mem_space(self) -> Option<MemSpace> {
        match self {
            Opcode::Ldg | Opcode::Stg => Some(MemSpace::Global),
            Opcode::Lds | Opcode::Sts => Some(MemSpace::Shared),
            Opcode::Ldl | Opcode::Stl => Some(MemSpace::Local),
            Opcode::Ldc => Some(MemSpace::Const),
            _ => None,
        }
    }

    /// SASS-style mnemonic.
    pub fn mnemonic(self) -> &'static str {
        use Opcode::*;
        match self {
            Iadd3 => "IADD3",
            Imad => "IMAD",
            Mov => "MOV",
            Imnmx => "IMNMX",
            Shl => "SHL",
            Shr => "SHR",
            And => "AND",
            Or => "OR",
            Xor => "XOR",
            Lop3 => "LOP3",
            Popc => "POPC",
            Iadd64 => "IADD64",
            Mov64 => "MOV64",
            Lea64 => "LEA64",
            Isetp => "ISETP",
            Fadd => "FADD",
            Fmul => "FMUL",
            Ffma => "FFMA",
            Mufu => "MUFU",
            Ldg => "LDG",
            Stg => "STG",
            Lds => "LDS",
            Sts => "STS",
            Ldl => "LDL",
            Stl => "STL",
            Ldc => "LDC",
            Malloc => "MALLOC",
            Free => "FREE",
            Bra => "BRA",
            Bar => "BAR",
            S2r => "S2R",
            Exit => "EXIT",
            Nop => "NOP",
        }
    }

    pub(crate) fn to_bits(self) -> u8 {
        match self {
            Opcode::Exit => 40,
            Opcode::Nop => 41,
            other => {
                Opcode::ALL.iter().position(|&op| op == other).expect("opcode present in ALL") as u8
            }
        }
    }

    pub(crate) fn from_bits(bits: u8) -> Option<Opcode> {
        match bits {
            40 => Some(Opcode::Exit),
            41 => Some(Opcode::Nop),
            n => Opcode::ALL.get(n as usize).copied(),
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Special registers readable with [`Opcode::S2r`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpecialReg {
    /// Thread index within the block (x dimension).
    TidX,
    /// Block index within the grid (x dimension).
    CtaIdX,
    /// Threads per block (x dimension).
    NtidX,
    /// Lane index within the warp.
    LaneId,
    /// Warp index within the SM.
    WarpId,
}

impl SpecialReg {
    /// Selector value used as the immediate operand of `S2R`.
    pub fn selector(self) -> i64 {
        match self {
            SpecialReg::TidX => 0,
            SpecialReg::CtaIdX => 1,
            SpecialReg::NtidX => 2,
            SpecialReg::LaneId => 3,
            SpecialReg::WarpId => 4,
        }
    }

    /// Inverse of [`SpecialReg::selector`].
    pub fn from_selector(sel: i64) -> Option<SpecialReg> {
        match sel {
            0 => Some(SpecialReg::TidX),
            1 => Some(SpecialReg::CtaIdX),
            2 => Some(SpecialReg::NtidX),
            3 => Some(SpecialReg::LaneId),
            4 => Some(SpecialReg::WarpId),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_bits_round_trip() {
        for op in Opcode::ALL {
            assert_eq!(Opcode::from_bits(op.to_bits()), Some(op), "{op}");
        }
        assert_eq!(Opcode::from_bits(Opcode::Exit.to_bits()), Some(Opcode::Exit));
        assert_eq!(Opcode::from_bits(Opcode::Nop.to_bits()), Some(Opcode::Nop));
        assert_eq!(Opcode::from_bits(99), None);
    }

    #[test]
    fn opcode_bits_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for op in Opcode::ALL.iter().chain([Opcode::Exit, Opcode::Nop].iter()) {
            assert!(seen.insert(op.to_bits()), "duplicate encoding for {op}");
        }
    }

    #[test]
    fn only_int_alu_carries_hints() {
        assert!(Opcode::Iadd3.can_carry_hints());
        assert!(Opcode::Iadd64.can_carry_hints());
        assert!(Opcode::Mov64.can_carry_hints());
        assert!(!Opcode::Fadd.can_carry_hints());
        assert!(!Opcode::Ldg.can_carry_hints());
        assert!(!Opcode::Bra.can_carry_hints());
    }

    #[test]
    fn mem_space_mapping_matches_fig1_classification() {
        assert_eq!(Opcode::Ldg.mem_space(), Some(MemSpace::Global));
        assert_eq!(Opcode::Stg.mem_space(), Some(MemSpace::Global));
        assert_eq!(Opcode::Lds.mem_space(), Some(MemSpace::Shared));
        assert_eq!(Opcode::Sts.mem_space(), Some(MemSpace::Shared));
        assert_eq!(Opcode::Ldl.mem_space(), Some(MemSpace::Local));
        assert_eq!(Opcode::Stl.mem_space(), Some(MemSpace::Local));
        assert_eq!(Opcode::Iadd3.mem_space(), None);
    }

    #[test]
    fn special_reg_selectors_round_trip() {
        for sr in [
            SpecialReg::TidX,
            SpecialReg::CtaIdX,
            SpecialReg::NtidX,
            SpecialReg::LaneId,
            SpecialReg::WarpId,
        ] {
            assert_eq!(SpecialReg::from_selector(sr.selector()), Some(sr));
        }
        assert_eq!(SpecialReg::from_selector(42), None);
    }
}
