//! Architectural register names.
//!
//! Like SASS, the ISA exposes 32-bit general-purpose registers `R0..R126` plus
//! the hardwired zero register `RZ`. A 64-bit value (such as a pointer with
//! its in-pointer extent metadata, paper Fig. 6) occupies the *pair*
//! `(Rn, Rn+1)`: `Rn` holds the low word and `Rn+1` the high word that
//! contains the extent bits.

use std::fmt;

/// Maximum usable general-purpose register index (`R126`).
pub const MAX_GPR: u8 = 126;

/// Index of the hardwired zero register `RZ`.
pub const RZ_INDEX: u8 = 127;

/// A 32-bit general-purpose register.
///
/// `Reg(127)` is the hardwired zero register [`Reg::RZ`]; writes to it are
/// discarded and reads return zero.
///
/// ```
/// use lmi_isa::Reg;
/// assert!(Reg::RZ.is_zero_reg());
/// assert_eq!(Reg(4).pair_high(), Reg(5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u8);

impl Reg {
    /// The hardwired zero register.
    pub const RZ: Reg = Reg(RZ_INDEX);

    /// Returns `true` if this is the hardwired zero register.
    pub fn is_zero_reg(self) -> bool {
        self.0 == RZ_INDEX
    }

    /// The high half of the 64-bit register pair anchored at `self`.
    ///
    /// # Panics
    ///
    /// Panics if `self` is `RZ` or the last usable register (no pair exists).
    pub fn pair_high(self) -> Reg {
        assert!(self.0 < MAX_GPR, "register {self} has no pair high register");
        Reg(self.0 + 1)
    }

    /// Returns `true` if the register index is valid as the base of a 64-bit
    /// pair.
    pub fn is_valid_pair_base(self) -> bool {
        self.0 < MAX_GPR
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero_reg() {
            write!(f, "RZ")
        } else {
            write!(f, "R{}", self.0)
        }
    }
}

/// A 1-bit predicate register (`P0..P6`); `PT` (index 7) is hardwired true.
///
/// ```
/// use lmi_isa::PredReg;
/// assert!(PredReg::PT.is_true_reg());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PredReg(pub u8);

impl PredReg {
    /// The hardwired always-true predicate register.
    pub const PT: PredReg = PredReg(7);

    /// Returns `true` if this is the hardwired true predicate.
    pub fn is_true_reg(self) -> bool {
        self.0 == 7
    }
}

impl fmt::Display for PredReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_true_reg() {
            write!(f, "PT")
        } else {
            write!(f, "P{}", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rz_is_zero_reg() {
        assert!(Reg::RZ.is_zero_reg());
        assert!(!Reg(0).is_zero_reg());
    }

    #[test]
    fn pair_high_is_next_register() {
        assert_eq!(Reg(10).pair_high(), Reg(11));
        assert_eq!(Reg(0).pair_high(), Reg(1));
    }

    #[test]
    #[should_panic(expected = "no pair")]
    fn rz_has_no_pair() {
        let _ = Reg::RZ.pair_high();
    }

    #[test]
    fn pair_base_validity() {
        assert!(Reg(0).is_valid_pair_base());
        assert!(Reg(125).is_valid_pair_base());
        assert!(!Reg(126).is_valid_pair_base());
        assert!(!Reg::RZ.is_valid_pair_base());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Reg(3).to_string(), "R3");
        assert_eq!(Reg::RZ.to_string(), "RZ");
        assert_eq!(PredReg(0).to_string(), "P0");
        assert_eq!(PredReg::PT.to_string(), "PT");
    }
}
