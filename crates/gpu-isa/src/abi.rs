//! The kernel ABI: constant-bank layout shared by the compiler backend and
//! the simulator's kernel launcher.
//!
//! Like CUDA, kernel launch state is passed through constant bank 0: the
//! stack top (paper Fig. 7 reads it from `c[0x0][0x28]`), the block's
//! shared-memory window base, and the kernel parameters.

/// Constant bank holding launch state.
pub const LAUNCH_BANK: u8 = 0;

/// Offset of the per-thread stack top (8 bytes) — `c[0x0][0x28]`, as in
/// paper Fig. 7. The value is thread-dependent: reading it models the
/// per-thread local-memory translation of real GPUs.
pub const STACK_TOP_OFFSET: u16 = 0x28;

/// Offset of the per-block shared-memory window base (8 bytes).
pub const SHARED_BASE_OFFSET: u16 = 0x30;

/// Offset of the first kernel parameter; each parameter takes one 8-byte
/// slot (CUDA places parameters at `c[0x0][0x160]` on recent architectures).
pub const PARAM_BASE_OFFSET: u16 = 0x160;

/// Constant-bank offset of parameter `index`.
pub fn param_offset(index: usize) -> u16 {
    PARAM_BASE_OFFSET + (index as u16) * 8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_slots_are_8_bytes_apart() {
        assert_eq!(param_offset(0), 0x160);
        assert_eq!(param_offset(3), 0x160 + 24);
    }

    #[test]
    fn launch_fields_do_not_overlap_params() {
        const { assert!(STACK_TOP_OFFSET + 8 <= SHARED_BASE_OFFSET) };
        const { assert!(SHARED_BASE_OFFSET + 8 <= PARAM_BASE_OFFSET) };
    }
}
