//! GPU memory spaces.

use std::fmt;

/// The memory region targeted by a load/store instruction.
///
/// The GPU memory hierarchy is heterogeneous (paper §II-A): global memory is
/// shared by all threads and kernels, shared memory is per thread block,
/// local (stack) memory is per thread, and the device heap (kernel-side
/// `malloc`) lives in global DRAM but is allocated per thread. Constant
/// memory is read-only and excluded from the threat model, but is still
/// needed to read kernel parameters and the stack pointer (paper Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MemSpace {
    /// Global device memory (`LDG`/`STG`), allocated with `cudaMalloc`.
    Global,
    /// Per-block shared memory (`LDS`/`STS`).
    Shared,
    /// Per-thread local/stack memory (`LDL`/`STL`).
    Local,
    /// Read-only constant memory (`LDC`), e.g. kernel parameter bank `c[0x0]`.
    Const,
}

impl MemSpace {
    /// All load/store-addressable spaces, in a stable order.
    pub const ALL: [MemSpace; 4] =
        [MemSpace::Global, MemSpace::Shared, MemSpace::Local, MemSpace::Const];

    /// Short mnemonic suffix used in disassembly (`G`, `S`, `L`, `C`).
    pub fn suffix(self) -> &'static str {
        match self {
            MemSpace::Global => "G",
            MemSpace::Shared => "S",
            MemSpace::Local => "L",
            MemSpace::Const => "C",
        }
    }

    /// Returns `true` for spaces that are attack targets in the paper's
    /// threat model (global, shared, local — registers/constant/texture are
    /// excluded, §II-A).
    pub fn is_protected(self) -> bool {
        !matches!(self, MemSpace::Const)
    }

    /// Encoding used in the microcode `space` field.
    pub(crate) fn to_bits(self) -> u8 {
        match self {
            MemSpace::Global => 0,
            MemSpace::Shared => 1,
            MemSpace::Local => 2,
            MemSpace::Const => 3,
        }
    }

    pub(crate) fn from_bits(bits: u8) -> Option<MemSpace> {
        match bits {
            0 => Some(MemSpace::Global),
            1 => Some(MemSpace::Shared),
            2 => Some(MemSpace::Local),
            3 => Some(MemSpace::Const),
            _ => None,
        }
    }
}

impl fmt::Display for MemSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            MemSpace::Global => "global",
            MemSpace::Shared => "shared",
            MemSpace::Local => "local",
            MemSpace::Const => "const",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_round_trip() {
        for space in MemSpace::ALL {
            assert_eq!(MemSpace::from_bits(space.to_bits()), Some(space));
        }
        assert_eq!(MemSpace::from_bits(4), None);
    }

    #[test]
    fn const_is_not_protected() {
        assert!(MemSpace::Global.is_protected());
        assert!(MemSpace::Shared.is_protected());
        assert!(MemSpace::Local.is_protected());
        assert!(!MemSpace::Const.is_protected());
    }
}
