//! A text assembler for the SASS-like ISA.
//!
//! Parses the same syntax the disassembler ([`Program`]'s `Display`)
//! prints, so kernels can be written, stored, and round-tripped as text —
//! the workflow real SASS tooling (`cuobjdump`/`nvdisasm`) supports and the
//! paper's §VI analysis relies on.
//!
//! ```
//! use lmi_isa::asm::assemble;
//!
//! let program = assemble("oob_demo", r#"
//!     LDC R4, [RZ+0x160]
//!     IADD64.A0 R4, R4, 0x100
//!     STG [R4], R0
//!     EXIT
//! "#)?;
//! assert_eq!(program.len(), 4);
//! assert_eq!(program.hinted_count(), 1);
//! # Ok::<(), lmi_isa::asm::AsmError>(())
//! ```

use std::fmt;

use crate::instr::{CmpOp, HintBits, Instruction, MemRef, Operand, Predicate};
use crate::op::{Opcode, SpecialReg};
use crate::program::Program;
use crate::reg::{PredReg, Reg};

/// Assembly parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, AsmError> {
    Err(AsmError { line, message: message.into() })
}

fn parse_int(tok: &str, line: usize) -> Result<i64, AsmError> {
    let tok = tok.trim();
    let (neg, body) = match tok.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, tok),
    };
    let value = if let Some(hex) = body.strip_prefix("0x") {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse::<i64>()
    };
    match value {
        Ok(v) => Ok(if neg { -v } else { v }),
        Err(_) => err(line, format!("invalid integer `{tok}`")),
    }
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, AsmError> {
    let tok = tok.trim();
    if tok.eq_ignore_ascii_case("RZ") {
        return Ok(Reg::RZ);
    }
    match tok.strip_prefix('R').and_then(|n| n.parse::<u8>().ok()) {
        Some(n) if n <= 127 => Ok(Reg(n)),
        _ => err(line, format!("invalid register `{tok}`")),
    }
}

fn parse_pred_reg(tok: &str, line: usize) -> Result<PredReg, AsmError> {
    let tok = tok.trim();
    if tok.eq_ignore_ascii_case("PT") {
        return Ok(PredReg::PT);
    }
    match tok.strip_prefix('P').and_then(|n| n.parse::<u8>().ok()) {
        Some(n) if n <= 7 => Ok(PredReg(n)),
        _ => err(line, format!("invalid predicate register `{tok}`")),
    }
}

fn parse_operand(tok: &str, line: usize) -> Result<Operand, AsmError> {
    let tok = tok.trim();
    if tok == "-" {
        return Ok(Operand::None);
    }
    if tok.starts_with('R') || tok.eq_ignore_ascii_case("RZ") {
        return Ok(Operand::Reg(parse_reg(tok, line)?));
    }
    if let Some(rest) = tok.strip_prefix("c[") {
        // c[bank][offset]
        let mut parts = rest.splitn(2, "][");
        let bank = parts.next().unwrap_or("");
        let offset = parts
            .next()
            .and_then(|s| s.strip_suffix(']'))
            .ok_or_else(|| AsmError { line, message: format!("malformed const `{tok}`") })?;
        return Ok(Operand::Const {
            bank: parse_int(bank, line)? as u8,
            offset: parse_int(offset, line)? as u16,
        });
    }
    Ok(Operand::Imm(parse_int(tok, line)? as i32))
}

/// Parses `[Rn]` / `[Rn+0x10]` / `[Rn+-0x8]` into `(reg, offset)`.
fn parse_memref(tok: &str, line: usize) -> Result<(Reg, i32), AsmError> {
    let inner = tok
        .trim()
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| AsmError { line, message: format!("malformed address `{tok}`") })?;
    match inner.split_once('+') {
        Some((reg, off)) => Ok((parse_reg(reg, line)?, parse_int(off, line)? as i32)),
        None => Ok((parse_reg(inner, line)?, 0)),
    }
}

fn strip_line(raw: &str) -> &str {
    // Drop `/*0001*/` position markers, `;` terminators, and `//` comments.
    let mut s = raw.trim();
    if let Some(end) = s.strip_prefix("/*").and_then(|r| r.find("*/").map(|i| &r[i + 2..])) {
        s = end.trim();
    }
    if let Some(i) = s.find("//") {
        s = &s[..i];
    }
    s.trim().trim_end_matches(';').trim()
}

/// Assembles a program from text. Lines hold one instruction each; blank
/// lines, `//` comments, `;` terminators, and `/*pc*/` markers are ignored.
/// Branch targets are absolute instruction indices, as in the disassembly.
///
/// # Errors
///
/// Returns the first [`AsmError`] encountered.
pub fn assemble(name: &str, text: &str) -> Result<Program, AsmError> {
    let mut program = Program::new(name);
    let mut max_reg = 0u8;
    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let s = strip_line(raw);
        if s.is_empty() {
            continue;
        }
        let ins = parse_instruction(s, line)?;
        for r in ins.dest_regs().into_iter().chain(ins.source_regs()) {
            if !r.is_zero_reg() {
                max_reg = max_reg.max(r.0);
            }
        }
        program.instructions.push(ins);
    }
    program.regs_per_thread = max_reg.saturating_add(1);
    Ok(program)
}

fn parse_instruction(s: &str, line: usize) -> Result<Instruction, AsmError> {
    // Optional guard predicate: `@P0` / `@!P3`.
    let (pred, s) = if let Some(rest) = s.strip_prefix('@') {
        let (ptok, rest) = rest
            .split_once(char::is_whitespace)
            .ok_or_else(|| AsmError { line, message: "predicate without opcode".into() })?;
        let negated = ptok.starts_with('!');
        let reg = parse_pred_reg(ptok.trim_start_matches('!'), line)?;
        (Some(Predicate { reg, negated }), rest.trim())
    } else {
        (None, s)
    };

    let (mnemonic, rest) = match s.split_once(char::is_whitespace) {
        Some((m, r)) => (m, r.trim()),
        None => (s, ""),
    };
    // Hint suffix: `IADD64.A0` / `LEA64.A1`.
    let (mnemonic, hints) = match mnemonic.split_once('.') {
        Some((base, suffix)) if suffix.starts_with('A') => {
            let select = suffix[1..]
                .parse::<u8>()
                .ok()
                .filter(|&v| v <= 1)
                .ok_or_else(|| AsmError { line, message: format!("bad hint `{suffix}`") })?;
            (base, HintBits::check_operand(select))
        }
        _ => (mnemonic, HintBits::NONE),
    };

    let args: Vec<&str> = if rest.is_empty() { Vec::new() } else { split_args(rest) };
    let need = |n: usize| -> Result<(), AsmError> {
        if args.len() == n {
            Ok(())
        } else {
            err(line, format!("{mnemonic} expects {n} operands, got {}", args.len()))
        }
    };

    let upper = mnemonic.to_ascii_uppercase();
    let mut ins = match upper.as_str() {
        "IADD3" => {
            // Accepts the 2-input shorthand and the full SASS three-input
            // form (`IADD3 R1, R1, -0x60, RZ`).
            if args.len() != 3 && args.len() != 4 {
                return err(line, format!("IADD3 expects 3 or 4 operands, got {}", args.len()));
            }
            let mut i = Instruction::iadd3(
                parse_reg(args[0], line)?,
                parse_operand(args[1], line)?,
                parse_operand(args[2], line)?,
            );
            i.srcs[2] =
                if args.len() == 4 { parse_operand(args[3], line)? } else { Operand::Reg(Reg::RZ) };
            i
        }
        "IMAD" => {
            need(4)?;
            Instruction::imad(
                parse_reg(args[0], line)?,
                parse_operand(args[1], line)?,
                parse_operand(args[2], line)?,
                parse_operand(args[3], line)?,
            )
        }
        "MOV" => {
            need(2)?;
            Instruction::mov(parse_reg(args[0], line)?, parse_operand(args[1], line)?)
        }
        "MOV64" => {
            need(2)?;
            Instruction::mov64(parse_reg(args[0], line)?, parse_reg(args[1], line)?)
        }
        "IADD64" => {
            need(3)?;
            Instruction::iadd64(
                parse_reg(args[0], line)?,
                parse_reg(args[1], line)?,
                parse_operand(args[2], line)?,
            )
        }
        "LEA64" => {
            need(4)?;
            Instruction::lea64(
                parse_reg(args[0], line)?,
                parse_reg(args[1], line)?,
                parse_operand(args[2], line)?,
                parse_int(args[3], line)? as u8,
            )
        }
        "SHL" | "SHR" | "AND" | "OR" | "XOR" => {
            need(3)?;
            let op = match upper.as_str() {
                "SHL" => Opcode::Shl,
                "SHR" => Opcode::Shr,
                "AND" => Opcode::And,
                "OR" => Opcode::Or,
                _ => Opcode::Xor,
            };
            Instruction::int2(
                op,
                parse_reg(args[0], line)?,
                parse_operand(args[1], line)?,
                parse_operand(args[2], line)?,
            )
        }
        "FADD" | "FMUL" => {
            need(3)?;
            let op = if upper == "FADD" { Opcode::Fadd } else { Opcode::Fmul };
            Instruction::float2(
                op,
                parse_reg(args[0], line)?,
                parse_operand(args[1], line)?,
                parse_operand(args[2], line)?,
            )
        }
        "IMNMX" | "LOP3" => {
            need(4)?;
            let op = if upper == "IMNMX" { Opcode::Imnmx } else { Opcode::Lop3 };
            let mut i = Instruction::int2(
                op,
                parse_reg(args[0], line)?,
                parse_operand(args[1], line)?,
                parse_operand(args[2], line)?,
            );
            i.srcs[2] = parse_operand(args[3], line)?;
            i
        }
        "POPC" => {
            need(2)?;
            Instruction::int2(
                Opcode::Popc,
                parse_reg(args[0], line)?,
                parse_operand(args[1], line)?,
                Operand::None,
            )
        }
        "MUFU" => {
            need(2)?;
            Instruction::float2(
                Opcode::Mufu,
                parse_reg(args[0], line)?,
                parse_operand(args[1], line)?,
                Operand::None,
            )
        }
        "FFMA" => {
            need(4)?;
            Instruction::ffma(
                parse_reg(args[0], line)?,
                parse_operand(args[1], line)?,
                parse_operand(args[2], line)?,
                parse_operand(args[3], line)?,
            )
        }
        "ISETP" => {
            need(4)?;
            let cmp = match args[2].trim().to_ascii_uppercase().as_str() {
                "EQ" => CmpOp::Eq,
                "NE" => CmpOp::Ne,
                "LT" => CmpOp::Lt,
                "LE" => CmpOp::Le,
                "GT" => CmpOp::Gt,
                "GE" => CmpOp::Ge,
                other => return err(line, format!("bad comparison `{other}`")),
            };
            Instruction::isetp(
                parse_pred_reg(args[0], line)?,
                parse_operand(args[1], line)?,
                cmp,
                parse_operand(args[3], line)?,
            )
        }
        "LDG" | "LDS" | "LDL" => {
            need(2)?;
            let dst = parse_reg(args[0], line)?;
            let (addr, off) = parse_memref(args[1], line)?;
            let mem = MemRef::new(addr, off, 4);
            match upper.as_str() {
                "LDG" => Instruction::ldg(dst, mem),
                "LDS" => Instruction::lds(dst, mem),
                _ => Instruction::ldl(dst, mem),
            }
        }
        "STG" | "STS" | "STL" => {
            need(2)?;
            let (addr, off) = parse_memref(args[0], line)?;
            let val = parse_reg(args[1], line)?;
            let mem = MemRef::new(addr, off, 4);
            match upper.as_str() {
                "STG" => Instruction::stg(mem, val),
                "STS" => Instruction::sts(mem, val),
                _ => Instruction::stl(mem, val),
            }
        }
        "LDC" => {
            need(2)?;
            let dst = parse_reg(args[0], line)?;
            if args[1].trim().starts_with('[') {
                // Disassembly form: `LDC R4, [RZ+0x160]` (bank 0 implied).
                let (_, off) = parse_memref(args[1], line)?;
                Instruction::ldc(dst, 0, off as u16, 8)
            } else {
                match parse_operand(args[1], line)? {
                    Operand::Const { bank, offset } => Instruction::ldc(dst, bank, offset, 8),
                    _ => return err(line, "LDC expects a constant-bank operand"),
                }
            }
        }
        "MALLOC" => {
            need(2)?;
            Instruction::malloc(parse_reg(args[0], line)?, parse_operand(args[1], line)?)
        }
        "FREE" => {
            need(1)?;
            Instruction::free(parse_reg(args[0], line)?)
        }
        "S2R" => {
            need(2)?;
            let sel = parse_int(args[1], line)?;
            let special = SpecialReg::from_selector(sel)
                .ok_or_else(|| AsmError { line, message: format!("bad special reg {sel}") })?;
            Instruction::s2r(parse_reg(args[0], line)?, special)
        }
        "BRA" => {
            need(1)?;
            Instruction::bra(parse_int(args[0], line)? as i32)
        }
        "BAR" => Instruction::bar(),
        "EXIT" => Instruction::exit(),
        "NOP" => Instruction::nop(),
        other => return err(line, format!("unknown mnemonic `{other}`")),
    };

    if hints.activate {
        if !ins.opcode.can_carry_hints() {
            return err(line, format!("{} cannot carry an .A hint", ins.opcode));
        }
        ins = ins.with_hints(hints);
    }
    if let Some(p) = pred {
        ins = ins.with_pred(p);
    }
    Ok(ins)
}

fn split_args(s: &str) -> Vec<&str> {
    // Split on commas that are not inside brackets.
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '[' => depth += 1,
            ']' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                out.push(s[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(s[start..].trim());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_a_small_kernel() {
        let p = assemble(
            "k",
            r#"
            // write tid to data[tid]
            S2R R0, 0
            LDC R4, c[0x0][0x160]
            LEA64.A0 R6, R4, R0, 2
            STG [R6], R0
            EXIT
            "#,
        )
        .unwrap();
        assert_eq!(p.len(), 5);
        assert_eq!(p.hinted_count(), 1);
        assert_eq!(p.instructions[2].opcode, Opcode::Lea64);
        assert_eq!(p.instructions[2].hints.select, 0);
    }

    #[test]
    fn round_trips_the_disassembly() {
        let src = r#"
            MOV R2, 0x0
            IADD3 R2, R2, 0x1
            ISETP P0, R2, LT, 0xa
            @P0 BRA 1
            IADD64.A1 R4, R6, R4
            LDG R8, [R4+0x10]
            STL [R2+-0x8], R8
            EXIT
        "#;
        let p1 = assemble("rt", src).unwrap();
        // Re-assemble the printed disassembly; ISETP prints its cmp as an
        // immediate, so compare structurally via a second parse of p1's
        // own operands instead of its Display for that instruction.
        for ins in &p1.instructions {
            let _ = ins.to_string(); // printable
        }
        assert_eq!(p1.len(), 8);
        assert!(p1.instructions[3].pred.is_some());
        assert_eq!(p1.instructions[4].hints.select, 1);
        assert_eq!(p1.instructions[6].mem.unwrap().offset, -8);
    }

    #[test]
    fn position_markers_and_semicolons_are_ignored() {
        let p = assemble("k", "/*0000*/  MOV R1, 0x5 ;\n/*0001*/  EXIT ;").unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.instructions[0].srcs[0], Operand::Imm(5));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("k", "MOV R1, 0x5\nBOGUS R1").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("BOGUS"));
        let e = assemble("k", "FADD.A0 R1, R2, R3").unwrap_err();
        assert!(e.message.contains("hint"));
        let e = assemble("k", "MOV R200, 0").unwrap_err();
        assert!(e.message.contains("register"));
    }

    #[test]
    fn extended_alu_mnemonics_parse() {
        let p = assemble(
            "ext",
            "IMNMX R1, R2, R3, 0x1\nLOP3 R4, R5, R6, R7\nPOPC R8, R9\nMUFU R10, R11\nEXIT",
        )
        .unwrap();
        assert_eq!(p.instructions[0].opcode, Opcode::Imnmx);
        assert_eq!(p.instructions[1].opcode, Opcode::Lop3);
        assert_eq!(p.instructions[2].opcode, Opcode::Popc);
        assert_eq!(p.instructions[3].opcode, Opcode::Mufu);
    }

    #[test]
    fn assembled_programs_encode_to_microcode() {
        let p = assemble("k", "IADD64.A0 R4, R4, 0x100\nEXIT").unwrap();
        let words = p.assemble(crate::ComputeCapability::Cc80).unwrap();
        assert!(words[0].activate_bit());
    }
}
